.PHONY: all build test bench bench-quick bench-smoke bench-trajectory bench-xl serve loadgen examples clean fmt

all: build test bench-smoke

build:
	dune build @all

test:
	dune runtest

# Full paper reproduction + extension experiments + micro-benchmarks.
bench:
	dune exec bench/main.exe -- --bechamel

bench-quick:
	dune exec bench/main.exe -- --quick

# Tiny-scale trajectory run (< 30 s): allocation assertions, no JSON.
# Also runs as part of `dune runtest` via the alias in bench/dune.
bench-smoke:
	dune exec bench/trajectory.exe -- --smoke

# Full trajectory pass: writes BENCH_PR10.json with the PR 9 numbers
# merged in as baselines.
bench-trajectory:
	dune exec bench/trajectory.exe -- --scale 40 --baseline BENCH_PR9.json --out BENCH_PR10.json

# Trajectory plus the out-of-core scale:xl series: streamed 10M-edge
# datagen, external-memory D(k) build under a 512 MiB OCaml heap cap,
# O(1) mmap opens, and mmap-backed queries — each xl bench in a fresh
# process with its peak RSS recorded in the JSON.
bench-xl:
	dune exec bench/trajectory.exe -- --scale 40 --xl --baseline BENCH_PR9.json --out BENCH_PR10.json

# Serve the pinned XMark dataset over TCP (dkserve protocol, DESIGN.md 9).
serve:
	dune exec dkindex-server -- --xmark 40 --port 7411 --workers 2 --snapshot auction.index

# Drive a running server: throughput + latency percentiles.
loadgen:
	dune exec dkindex-loadgen -- --port 7411 --xmark 40 -c 4 -n 2000

examples:
	dune exec examples/quickstart.exe
	dune exec examples/movie_db.exe
	dune exec examples/auction_workload.exe
	dune exec examples/adaptive_updates.exe
	dune exec examples/branching_queries.exe
	dune exec examples/self_tuning.exe

clean:
	dune clean
