.PHONY: all build test bench bench-quick examples clean fmt

all: build

build:
	dune build @all

test:
	dune runtest

# Full paper reproduction + extension experiments + micro-benchmarks.
bench:
	dune exec bench/main.exe -- --bechamel

bench-quick:
	dune exec bench/main.exe -- --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/movie_db.exe
	dune exec examples/auction_workload.exe
	dune exec examples/adaptive_updates.exe
	dune exec examples/branching_queries.exe
	dune exec examples/self_tuning.exe

clean:
	dune clean
