(* Quickstart: parse an XML document, build a D(k)-index, run a few
   path queries, and update the index in place.

   Run with: dune exec examples/quickstart.exe *)

open Dkindex_xml
open Dkindex_core

let document =
  {|<?xml version="1.0"?>
<library>
  <shelf topic="databases">
    <book id="b1"><title>Structural Summaries</title><author>Chen</author></book>
    <book id="b2"><title>Path Indexing</title><author>Lim</author></book>
  </shelf>
  <shelf topic="systems">
    <book id="b3"><title>Adaptive Indexes</title><author>Ong</author>
      <cites ref="b1"/>
    </book>
  </shelf>
  <journal id="j1"><title>SIGMOD 2003</title><cites ref="b3"/></journal>
</library>|}

let () =
  (* 1. Parse the document and load it as a data graph: elements become
     labeled nodes, text becomes VALUE leaves, and the ref attributes
     become reference edges (the graph is not a tree). *)
  let doc = Xml_parser.parse_string document in
  let graph = Xml_to_graph.graph_of_doc doc in
  Format.printf "data graph: %a@." Dkindex_graph.Data_graph.pp_stats
    (Dkindex_graph.Data_graph.stats graph);

  (* 2. Declare which labels the query load cares about, and how long
     the paths reaching them are.  `title` is queried through paths of
     up to 3 edges (e.g. library.shelf.book.title), `author` only via
     book.author. *)
  let reqs = [ ("title", 3); ("author", 1) ] in
  let index = Dk_index.build graph ~reqs in
  Format.printf "D(k)-index: %s@." (Index_graph.stats_line index);

  (* 3. Run path queries.  Queries match anywhere in the graph (the
     usual // semantics). *)
  let run q =
    let result = Query_eval.eval_path_strings index q in
    Format.printf "query %-28s -> %d nodes, cost %a@."
      (String.concat "." q)
      (List.length result.Query_eval.nodes)
      Dkindex_pathexpr.Cost.pp result.Query_eval.cost
  in
  run [ "book"; "title" ];
  run [ "shelf"; "book"; "author" ];
  (* `cites` elements reference other books: this query crosses a
     reference edge, which the graph model treats like any other. *)
  run [ "book"; "cites"; "book"; "title" ];

  (* 4. General regular path expressions work too. *)
  let expr = Dkindex_pathexpr.Path_parser.parse "library._?.book.title" in
  let result = Query_eval.eval_expr index expr in
  Format.printf "regex %-28s -> %d nodes@." "library._?.book.title"
    (List.length result.Query_eval.nodes);

  (* ... and branching tree patterns with value predicates: structure
     is answered from the index, payloads are settled by validation. *)
  let pattern = Dkindex_pathexpr.Tree_pattern.parse {|//book[./title[.="Path Indexing"]]|} in
  let result = Query_eval.eval_pattern index pattern in
  Format.printf "pattern %-26s -> %d nodes@." {|//book[./title[.="..."]]|}
    (List.length result.Query_eval.nodes);

  (* 5. The index absorbs data updates in place: add a citation edge
     and query again — no rebuild. *)
  let j1 =
    Dkindex_graph.Data_graph.fold_nodes graph ~init:(-1) ~f:(fun acc u ->
        if String.equal (Dkindex_graph.Data_graph.label_name graph u) "journal" then u else acc)
  and b2 =
    Dkindex_graph.Data_graph.fold_nodes graph ~init:(-1) ~f:(fun acc u ->
        if
          String.equal (Dkindex_graph.Data_graph.label_name graph u) "book"
          && acc < 0
        then u
        else acc)
  in
  Dk_update.add_edge index j1 b2;
  Format.printf "after adding journal -> book edge:@.";
  run [ "journal"; "book"; "title" ]
