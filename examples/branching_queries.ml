(* Branching path queries (tree patterns) and the F&B-index — the
   covering index the paper's future-work section points at.

   Plain path indexes (label-split, A(k), D(k)) can evaluate a tree
   pattern only approximately and must validate candidates against the
   data graph; the F&B-index, stable forwards and backwards, answers
   the same patterns exactly from its extents alone.

   Run with: dune exec examples/branching_queries.exe *)

open Dkindex_graph
open Dkindex_core
module Tree_pattern = Dkindex_pathexpr.Tree_pattern
module Cost = Dkindex_pathexpr.Cost

let () =
  let g = Dkindex_datagen.Xmark.graph ~scale:100 () in
  Format.printf "auction site: %a@.@." Data_graph.pp_stats (Data_graph.stats g);

  let patterns =
    [
      (* auctions with a bidder, their item references *)
      "//open_auction[./bidder]/itemref";
      (* people who watch an auction and have an address: their cities *)
      "//person[./watches][./address]/address/city";
      (* items in some category, with mail in the box *)
      "//item[./incategory][.//mail]/name";
      (* branching + descendant axes mixed *)
      "//open_auction[.//personref]//increase";
    ]
  in

  let one = One_index.build g in
  let fb = Fb_index.build g in
  Format.printf "1-index: %d nodes;  F&B-index: %d nodes (the covering price)@.@."
    (Index_graph.n_nodes one) (Index_graph.n_nodes fb);

  Format.printf "%-48s %8s %14s %14s@." "pattern" "answers" "1-idx+validate" "F&B direct";
  List.iter
    (fun src ->
      let pattern = Tree_pattern.parse src in
      let validated = Query_eval.eval_pattern one pattern in
      let direct = Query_eval.eval_pattern ~validate:false fb pattern in
      assert (validated.Query_eval.nodes = direct.Query_eval.nodes);
      Format.printf "%-48s %8d %14d %14d@." src
        (List.length direct.Query_eval.nodes)
        (Cost.total validated.Query_eval.cost)
        (Cost.total direct.Query_eval.cost))
    patterns;
  Format.printf
    "@.Both strategies return identical answers; the F&B column pays no@.validation (data visits = 0) because its extents cover branching queries.@."
