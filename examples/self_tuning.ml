(* A self-tuning index: the Tuner watches the query stream through a
   sliding window, promotes labels the load starts reaching through
   longer paths, and demotes the index when it outgrows its budget —
   automating the periodic promote/demote passes of Section 5.

   The scenario: a NASA metadata store whose users first browse dataset
   titles (short paths), then shift to provenance digging (long paths
   into revision history), then move on.

   Run with: dune exec examples/self_tuning.exe *)

open Dkindex_graph
open Dkindex_core
module Tuner = Dkindex_workload.Tuner
module Cost = Dkindex_pathexpr.Cost
module Prng = Dkindex_datagen.Prng

let phase tuner name queries =
  let total = ref 0 and n = ref 0 in
  List.iter
    (fun q ->
      let r = Tuner.observe tuner q in
      total := !total + Cost.total r.Query_eval.cost;
      incr n)
    queries;
  Format.printf "%-28s avg cost %7.1f   index size %5d@." name
    (float_of_int !total /. float_of_int (max 1 !n))
    (Index_graph.n_nodes (Tuner.index tuner));
  let actions = Tuner.run_maintenance tuner in
  List.iter (fun a -> Format.printf "    maintenance: %a@." Tuner.pp_action a) actions

let repeat rng qs count =
  List.init count (fun _ -> Prng.choose rng (Array.of_list qs))

let () =
  let g = Dkindex_datagen.Nasa.graph ~scale:120 () in
  let pool = Data_graph.pool g in
  let q names = Array.of_list (List.map (fun n -> Option.get (Label.Pool.find_opt pool n)) names) in
  (* Start from the cheapest possible index: label-split, k = 0. *)
  let tuner =
    Tuner.create
      ~config:{ Tuner.default_config with window = 120; size_budget = Some 1200 }
      (Label_split.build g)
  in
  let rng = Prng.create ~seed:17 in

  let browsing =
    [ q [ "dataset"; "title" ]; q [ "dataset"; "altname" ]; q [ "keywords"; "keyword" ] ]
  in
  let provenance =
    [
      q [ "dataset"; "history"; "revision"; "date"; "year" ];
      q [ "dataset"; "history"; "ingest"; "creator" ];
      q [ "dataset"; "reference"; "source"; "journal"; "title" ];
    ]
  in
  let fields = [ q [ "tableHead"; "fields"; "field"; "name" ] ] in

  Format.printf "phase 1: browsing (short paths)@.";
  phase tuner "  browsing, cold" (repeat rng browsing 100);
  phase tuner "  browsing, tuned" (repeat rng browsing 100);

  Format.printf "@.phase 2: provenance digging (long paths)@.";
  phase tuner "  provenance, cold" (repeat rng provenance 100);
  phase tuner "  provenance, tuned" (repeat rng provenance 100);

  Format.printf "@.phase 3: field lookups (medium paths)@.";
  phase tuner "  fields, cold" (repeat rng fields 100);
  phase tuner "  fields, tuned" (repeat rng fields 100);
  Format.printf
    "@.Promotion reacts to each shift; the size budget keeps the index from@.accumulating refinement for workloads that have moved on.@."
