(* The movie database of the paper's Figure 1, built with the graph
   Builder API: a movieDB with directors, actors and movies, where
   reference edges (ID/IDREF) from actors to the movies they star in
   make the data a general graph, not a tree.

   The example reproduces the paper's Section 3 observations:
   - the query director.movie.title returns the titles of directed
     movies;
   - movieDB.(_)?.movie.actor.name tolerates the irregular nesting
     (movies appear both directly under movieDB and under directors);
   - two movie nodes are bisimilar iff the label paths into them agree
     (nodes reached through actors are not bisimilar to tree-only
     movies).

   Run with: dune exec examples/movie_db.exe *)

open Dkindex_graph
open Dkindex_core
module B = Builder

let () =
  let b = B.create () in
  let movie_db = B.add_child b ~parent:(B.root b) "movieDB" in
  (* Two directors with the movies they directed. *)
  let director1 = B.add_child b ~parent:movie_db "director" in
  let director2 = B.add_child b ~parent:movie_db "director" in
  let name_of parent =
    let n = B.add_child b ~parent "name" in
    ignore (B.add_value b ~parent:n)
  in
  name_of director1;
  name_of director2;
  let movie1 = B.add_child b ~parent:director1 "movie" in
  let movie2 = B.add_child b ~parent:director2 "movie" in
  (* A movie directly under movieDB: the irregularity the optional `_`
     in the paper's example query is there to bridge. *)
  let movie3 = B.add_child b ~parent:movie_db "movie" in
  let title_of parent =
    let t = B.add_child b ~parent "title" in
    ignore (B.add_value b ~parent:t);
    t
  in
  let title1 = title_of movie1 in
  let title2 = title_of movie2 in
  let _title3 = title_of movie3 in
  (* Actors under movieDB, with reference edges to the movies they act
     in, and actor credits inside movies. *)
  let actor1 = B.add_child b ~parent:movie_db "actor" in
  let actor2 = B.add_child b ~parent:movie_db "actor" in
  name_of actor1;
  name_of actor2;
  B.add_edge b actor1 movie1;
  B.add_edge b actor2 movie1;
  B.add_edge b actor2 movie3;
  let credit1 = B.add_child b ~parent:movie1 "actor" in
  let credit2 = B.add_child b ~parent:movie3 "actor" in
  name_of credit1;
  name_of credit2;
  let g = B.build b in
  Format.printf "movie graph: %a@.@." Data_graph.pp_stats (Data_graph.stats g);

  (* Build the D(k)-index for a load that asks for titles through
     directors (2 edges) and actor names through movies (3 edges). *)
  let reqs = [ ("title", 2); ("name", 3) ] in
  let index = Dk_index.build g ~reqs in
  Format.printf "D(k)-index: %s@.@." (Index_graph.stats_line index);

  let show_path q =
    let result = Query_eval.eval_path_strings index q in
    Format.printf "%-34s -> nodes %s@."
      (String.concat "." q)
      (String.concat "," (List.map string_of_int result.Query_eval.nodes))
  in
  (* The paper's first example query. *)
  show_path [ "director"; "movie"; "title" ];
  assert (
    (Query_eval.eval_path_strings index [ "director"; "movie"; "title" ]).Query_eval.nodes
    = List.sort compare [ title1; title2 ]);

  (* The paper's second example: the optional wildcard bridges the
     irregular nesting of movies. *)
  let expr = Dkindex_pathexpr.Path_parser.parse "movieDB.(_)?.movie.actor.name" in
  let result = Query_eval.eval_expr index expr in
  Format.printf "%-34s -> nodes %s@." "movieDB.(_)?.movie.actor.name"
    (String.concat "," (List.map string_of_int result.Query_eval.nodes));

  (* Bisimilarity: the two director-reached movies share an index node
     only if all label paths into them agree.  movie1 is referenced by
     actors while movie2 is not, so they are NOT bisimilar; in the
     1-index they are separated. *)
  let one = One_index.build g in
  Format.printf "@.1-index classes: movie1=%d movie2=%d movie3=%d@."
    (Index_graph.cls one movie1) (Index_graph.cls one movie2) (Index_graph.cls one movie3);
  assert (Index_graph.cls one movie1 <> Index_graph.cls one movie2);
  (* Under A(0) (labels only) all movies collapse. *)
  let a0 = Label_split.build g in
  assert (Index_graph.cls a0 movie1 = Index_graph.cls a0 movie2);
  assert (Index_graph.cls a0 movie1 = Index_graph.cls a0 movie3);
  Format.printf "A(0) collapses all movies into class %d@." (Index_graph.cls a0 movie1)
