(* Workload-aware indexing of an XMark-like auction site (the paper's
   motivating scenario): generate the data and a realistic query load,
   mine per-label similarity requirements, and compare the resulting
   D(k)-index against the uniform A(k) family.

   Run with: dune exec examples/auction_workload.exe *)

open Dkindex_graph
open Dkindex_core
module Cost = Dkindex_pathexpr.Cost

let () =
  let g = Dkindex_datagen.Xmark.graph ~scale:120 () in
  Format.printf "auction site: %a@.@." Data_graph.pp_stats (Data_graph.stats g);

  (* A workload of 100 paths of 2..5 labels: a few long navigations
     plus many branching variations, as in the paper's Section 6.1. *)
  let queries = Dkindex_workload.Query_gen.generate ~seed:7 g in
  Format.printf "sample queries:@.";
  List.iteri
    (fun i q ->
      if i < 5 then
        Format.printf "  %a@." (Dkindex_workload.Query_gen.pp_query g) q)
    queries;

  (* Mine the load: each queried label needs local similarity equal to
     the longest query reaching it, minus one. *)
  let reqs = Dkindex_workload.Miner.mine g queries in
  Format.printf "@.mined requirements (top 10 by k):@.";
  List.iteri
    (fun i (l, k) -> if i < 10 then Format.printf "  %-24s k >= %d@." l k)
    (List.sort (fun (_, a) (_, b) -> compare b a) reqs);

  (* Compare sizes and average query cost. *)
  let avg idx =
    let total =
      List.fold_left
        (fun acc q -> acc + Cost.total (Query_eval.eval_path idx q).Query_eval.cost)
        0 queries
    in
    float_of_int total /. float_of_int (List.length queries)
  in
  Format.printf "@.%-10s %10s %12s@." "index" "size" "avg cost";
  List.iter
    (fun k ->
      let ak = A_k_index.build g ~k in
      Format.printf "%-10s %10d %12.1f@."
        (Printf.sprintf "A(%d)" k)
        (Index_graph.n_nodes ak) (avg ak))
    [ 0; 1; 2; 3; 4 ];
  let dk = Dk_index.build g ~reqs in
  Format.printf "%-10s %10d %12.1f@." "D(k)" (Index_graph.n_nodes dk) (avg dk);
  Format.printf
    "@.D(k) spends index nodes only on labels the load queries deeply,@.so it is smaller than the sound A(4) yet needs no validation.@."
