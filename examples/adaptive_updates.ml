(* The full adaptive lifecycle of a D(k)-index (Section 5): build,
   absorb a stream of edge insertions cheaply, watch soundness (and
   performance) degrade, promote back to the mined requirements, then
   demote when the workload loses interest in deep paths.

   Run with: dune exec examples/adaptive_updates.exe *)

open Dkindex_graph
open Dkindex_core
module Cost = Dkindex_pathexpr.Cost
module Prng = Dkindex_datagen.Prng

let avg idx queries =
  let total =
    List.fold_left
      (fun acc q -> acc + Cost.total (Query_eval.eval_path idx q).Query_eval.cost)
      0 queries
  in
  float_of_int total /. float_of_int (List.length queries)

let report stage idx queries =
  Format.printf "%-34s size=%5d avg cost=%8.1f@." stage (Index_graph.n_nodes idx)
    (avg idx queries)

let () =
  let g = Dkindex_datagen.Nasa.graph ~scale:100 () in
  let queries = Dkindex_workload.Query_gen.generate ~seed:5 g in
  let reqs = Dkindex_workload.Miner.mine g queries in
  let idx = Dk_index.build g ~reqs in
  report "fresh D(k)" idx queries;

  (* A stream of 200 reference-edge insertions (new IDREFs appearing in
     the data).  Each one only lowers local similarities near the
     target index node — no partitioning, no data-graph scan. *)
  let rng = Prng.create ~seed:41 in
  let pool = Data_graph.pool g in
  let pick label =
    let nodes =
      match Label.Pool.find_opt pool label with
      | Some l -> Data_graph.nodes_with_label g l
      | None -> []
    in
    List.nth nodes (Prng.int rng (List.length nodes))
  in
  for _ = 1 to 200 do
    let src_label, dst_label = Prng.choose_list rng Dkindex_datagen.Nasa.ref_pairs in
    Dk_update.add_edge idx (pick src_label) (pick dst_label)
  done;
  report "after 200 edge insertions" idx queries;

  (* Periodic maintenance: promote every index node whose similarity
     fell below its requirement (Algorithm 6). *)
  Dk_tune.promote_to_requirements idx;
  report "after promoting" idx queries;

  (* The workload changes: deep navigation stops, only short lookups
     remain.  Demote (Theorem 2 rebuild) to shed the now-useless
     refinement. *)
  let shallow_reqs = List.map (fun (l, k) -> (l, min k 1)) reqs in
  let demoted = Dk_tune.demote idx ~reqs:shallow_reqs in
  report "after demoting to k <= 1" demoted queries;

  (* And a new document arrives: subgraph addition (Algorithm 3). *)
  let h = Dkindex_datagen.Nasa.doc ~seed:77 ~scale:10 () in
  let h_graph = Dkindex_xml.Xml_to_graph.graph_of_doc ~config:Dkindex_datagen.Nasa.config h in
  let g', idx' = Dk_update.add_subgraph demoted h_graph ~reqs:shallow_reqs in
  Format.printf "after inserting a new document:   data nodes %d -> %d, index size %d@."
    (Data_graph.n_nodes g) (Data_graph.n_nodes g') (Index_graph.n_nodes idx')
