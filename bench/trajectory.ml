(* Benchmark trajectory harness: a stable, machine-readable perf
   baseline for stacked PRs to regress against.

   Runs the micro-benchmark suite (best-of ns per op over repeated
   samples — timing noise on a shared machine is strictly additive, so
   the minimum is the robust estimator) plus a construction / query /
   update macro pass on XMark, and writes the results as JSON (default
   BENCH_PR9.json).  An optional [--baseline prev.json] merges a
   previous run into the output as per-benchmark {"baseline_ns",
   "after_ns"} pairs so a PR records its own before/after evidence.

   All workloads are pinned (fixed label paths, fixed requirements,
   PRNG-seeded update edges drawn from label buckets that are stable
   under adjacency-layout changes) so numbers are comparable across
   internal representation changes.

   [--smoke] runs a tiny scale (< 30 s) suitable for `dune runtest` /
   `make bench-smoke`, skips the JSON file, and additionally asserts
   the allocation discipline of the Kbisim signature pass and of the
   zero-copy wire framing (in-place decode, reused reply buffer). *)

open Dkindex_graph
open Dkindex_core
module Cost = Dkindex_pathexpr.Cost
module Server = Dkindex_server.Server
module Client = Dkindex_server.Client
module Wire = Dkindex_server.Wire
module Obuf = Dkindex_server.Obuf
module Wal = Dkindex_server.Wal
module Chaos = Dkindex_server.Chaos
module Checkpoint = Dkindex_server.Checkpoint

let scale = ref 40
let out_file = ref "BENCH_PR9.json"
let baseline_file = ref ""
let smoke = ref false
let no_out = ref false
let xl = ref false
let xl_edges = ref 10_000_000
let xl_heap_cap_mb = ref 512
let xl_child = ref ""
let xl_dir = ref ""

let spec =
  [
    ("--scale", Arg.Set_int scale, "N  XMark scale for the macro pass (default 40)");
    ("--out", Arg.Set_string out_file, "FILE  output JSON (default BENCH_PR9.json)");
    ( "--baseline",
      Arg.Set_string baseline_file,
      "FILE  merge a previous run as baseline_ns/after_ns pairs" );
    ("--smoke", Arg.Set smoke, "   tiny-scale smoke run: no JSON, allocation assertions");
    ("--no-out", Arg.Set no_out, "   measure and print, but write no file");
    ( "--xl",
      Arg.Set xl,
      "   run the out-of-core scale:xl series (streamed datagen, external build, mmap \
       query) with per-bench peak-RSS tracking" );
    ( "--xl-edges",
      Arg.Set_int xl_edges,
      "N  edge count for the xl random graph (default 10_000_000)" );
    ( "--xl-heap-cap-mb",
      Arg.Set_int xl_heap_cap_mb,
      "MB  fail the xl build bench if its peak OCaml heap exceeds this (default 512)" );
    ("--xl-child", Arg.Set_string xl_child, "NAME  (internal) run one xl bench and exit");
    ("--xl-dir", Arg.Set_string xl_dir, "DIR  (internal) working dir for --xl-child");
  ]

(* ------------------------------------------------------------------ *)
(* Host / process memory facts (Linux procfs; 0 where unavailable).    *)

let proc_status_kb field =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> 0
          | line ->
            if String.length line > String.length field
               && String.sub line 0 (String.length field) = field
            then
              Scanf.sscanf
                (String.sub line (String.length field) (String.length line - String.length field))
                " %d" (fun kb -> kb)
            else go ()
        in
        go ())

let peak_rss_bytes () = proc_status_kb "VmHWM:" * 1024

let host_total_ram_bytes () =
  match open_in "/proc/meminfo" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match input_line ic with
        | line -> ( try Scanf.sscanf line "MemTotal: %d kB" (fun kb -> kb * 1024) with _ -> 0)
        | exception End_of_file -> 0)

let page_size_bytes () =
  (* No getpagesize in the stdlib; mapped sections are 4096-aligned and
     that is the page size everywhere this runs, but ask getconf when
     available so the recorded metadata is honest. *)
  match Unix.open_process_in "getconf PAGE_SIZE 2>/dev/null" with
  | exception Unix.Unix_error _ -> 4096
  | ic -> (
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | _ -> ( match int_of_string_opt (String.trim line) with Some n when n > 0 -> n | _ -> 4096))

(* ------------------------------------------------------------------ *)
(* Timing: minimum ns/op over [reps] samples.  Each sample times a
   batch sized so that one sample lasts >= 2 ms, which keeps clock
   granularity noise < 1%; taking the minimum discards samples
   inflated by ambient load. *)

let now_ns () = Unix.gettimeofday () *. 1e9

let best_ns ?(reps = 9) f =
  (* Calibrate the batch size on a first untimed-ish run. *)
  let t0 = now_ns () in
  f ();
  let once = now_ns () -. t0 in
  let batch = max 1 (int_of_float (2e6 /. max 1.0 once)) in
  let samples =
    Array.init reps (fun _ ->
        let t0 = now_ns () in
        for _ = 1 to batch do
          f ()
        done;
        (now_ns () -. t0) /. float_of_int batch)
  in
  Array.sort compare samples;
  samples.(0)

(* Like [best_ns] but re-allocates fresh resources per sample and
   times [runs] applications of [f] on each (for mutating operations).
   One application can be under a microsecond — the clock's resolution
   — so each sample times a batch of [batch] fresh resources
   back-to-back, keeping the timed region in the tens of microseconds
   at least. *)
let best_ns_with_resource ?(reps = 21) ?(batch = 32) ~allocate ~runs f =
  let samples =
    Array.init reps (fun _ ->
        let rs = Array.init batch (fun _ -> allocate ()) in
        let t0 = now_ns () in
        Array.iter f rs;
        (now_ns () -. t0) /. float_of_int (runs * batch))
  in
  Array.sort compare samples;
  samples.(0)

(* [Gc.quick_stat] only refreshes [minor_words] at collection
   boundaries; the [Gc.minor_words] primitive reads the allocation
   pointer exactly. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Pinned workload *)

(* Label paths that exist in the XMark generator at every scale.  Kept
   as strings: eval_path_strings interns against the pool, so these are
   stable under any adjacency-layout change. *)
let query_paths =
  [
    [ "site"; "open_auctions"; "open_auction"; "bidder"; "personref" ];
    [ "site"; "people"; "person"; "profile"; "interest" ];
    [ "open_auction"; "bidder"; "increase" ];
    [ "site"; "closed_auctions"; "closed_auction"; "annotation"; "author" ];
    [ "person"; "watches"; "watch" ];
  ]

(* Fixed requirements: what a mined workload over paths like the above
   typically asks for, pinned so D(k) construction work is identical
   across runs. *)
let fixed_reqs =
  [
    ("personref", 4);
    ("bidder", 3);
    ("interest", 4);
    ("author", 4);
    ("watch", 2);
    ("itemref", 2);
    ("increase", 2);
    ("city", 3);
  ]

let intern_path pool path =
  match List.map (Label.Pool.find_opt pool) path with
  | codes when List.for_all Option.is_some codes ->
    Array.of_list (List.map Option.get codes)
  | _ -> invalid_arg ("trajectory: unknown label in query " ^ String.concat "." path)

(* The Section 6.2 random ID/IDREF edge additions, reproduced here so
   the harness does not depend on bench/experiments.ml internals.
   nodes_with_label returns increasing ids, so the drawn edges are
   stable across adjacency-layout changes. *)
let update_edges g ~count ~seed =
  let rng = Dkindex_datagen.Prng.create ~seed in
  let pool = Data_graph.pool g in
  let groups =
    List.filter_map
      (fun (src, dst) ->
        match (Label.Pool.find_opt pool src, Label.Pool.find_opt pool dst) with
        | Some ls, Some ld -> (
          match (Data_graph.nodes_with_label g ls, Data_graph.nodes_with_label g ld) with
          | [], _ | _, [] -> None
          | srcs, dsts -> Some (Array.of_list srcs, Array.of_list dsts))
        | _, _ -> None)
      Dkindex_datagen.Xmark.ref_pairs
  in
  let groups = Array.of_list groups in
  List.init count (fun _ ->
      let srcs, dsts = Dkindex_datagen.Prng.choose rng groups in
      (Dkindex_datagen.Prng.choose rng srcs, Dkindex_datagen.Prng.choose rng dsts))

(* ------------------------------------------------------------------ *)
(* JSON (minimal writer/reader for the flat shapes we emit) *)

type entry = {
  name : string;
  after_ns : float;
  baseline_ns : float option;
  rss_bytes : int option;  (* peak VmHWM of the forked runner, xl series only *)
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Reads {"benchmarks": {"name": {... "after_ns": N ...}, ...}} written
   by a previous run; tolerant of field order. *)
let read_baseline path =
  let text =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let table = Hashtbl.create 32 in
  (* Scan for  "name": { ... "after_ns": <float> ... }  pairs. *)
  let len = String.length text in
  let rec skip_ws i = if i < len && (text.[i] = ' ' || text.[i] = '\n' || text.[i] = '\t') then skip_ws (i + 1) else i in
  let rec scan i depth current =
    if i >= len then ()
    else
      match text.[i] with
      | '"' -> (
        let j = ref (i + 1) in
        let buf = Buffer.create 16 in
        while !j < len && text.[!j] <> '"' do
          if text.[!j] = '\\' && !j + 1 < len then begin
            Buffer.add_char buf text.[!j + 1];
            j := !j + 2
          end
          else begin
            Buffer.add_char buf text.[!j];
            incr j
          end
        done;
        let key = Buffer.contents buf in
        let k = skip_ws (!j + 1) in
        if k < len && text.[k] = ':' then begin
          let v = skip_ws (k + 1) in
          if v < len && text.[v] = '{' then scan (v + 1) (depth + 1) (Some key)
          else begin
            (* numeric or other scalar *)
            (if String.equal key "after_ns" || String.equal key "median_ns" then
               match current with
               | Some bench ->
                 let e = ref v in
                 while
                   !e < len
                   && (match text.[!e] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
                 do
                   incr e
                 done;
                 (try Hashtbl.replace table bench (float_of_string (String.sub text v (!e - v)))
                  with _ -> ())
               | None -> ());
            scan (k + 1) depth current
          end
        end
        else scan (!j + 1) depth current)
      | '}' -> scan (i + 1) (depth - 1) (if depth - 1 <= 2 then None else current)
      | _ -> scan (i + 1) depth current
  in
  scan 0 0 None;
  table

let write_json path ~entries ~macro =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"dkindex-bench-trajectory/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %d,\n" !scale);
  Buffer.add_string buf "  \"benchmarks\": {\n";
  let n = List.length entries in
  List.iteri
    (fun i e ->
      Buffer.add_string buf (Printf.sprintf "    \"%s\": {" (json_escape e.name));
      (match e.baseline_ns with
      | Some b ->
        Buffer.add_string buf
          (Printf.sprintf "\"baseline_ns\": %.1f, \"after_ns\": %.1f, \"speedup\": %.3f" b
             e.after_ns
             (if e.after_ns > 0.0 then b /. e.after_ns else 0.0))
      | None -> Buffer.add_string buf (Printf.sprintf "\"after_ns\": %.1f" e.after_ns));
      (match e.rss_bytes with
      | Some rss -> Buffer.add_string buf (Printf.sprintf ", \"rss_bytes\": %d" rss)
      | None -> ());
      Buffer.add_string buf (if i = n - 1 then "}\n" else "},\n"))
    entries;
  Buffer.add_string buf "  },\n  \"macro\": {\n";
  let nm = List.length macro in
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf (Printf.sprintf "    \"%s\": %s" (json_escape k) v);
      Buffer.add_string buf (if i = nm - 1 then "\n" else ",\n"))
    macro;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Allocation-discipline assertion (smoke mode): one Kbisim refinement
   round must not allocate per-parent list cells.  On a graph with m >>
   n the list-based refinement allocated >= 3m words; the signature
   pass writes into preallocated scratch, so the whole round stays well
   under m words once the O(n) result arrays are discounted. *)
let assert_refine_allocation () =
  let nodes = 2_000 and fan = 64 in
  let b = Builder.create () in
  let spine = Array.make nodes 0 in
  let node = ref (Builder.root b) in
  for i = 0 to nodes - 1 do
    node := Builder.add_child b ~parent:!node (if i mod 3 = 0 then "a" else "b");
    spine.(i) <- !node
  done;
  (* Dense extra edges: m ~ nodes * fan/2 without new nodes. *)
  let rng = Dkindex_datagen.Prng.create ~seed:7 in
  for _ = 1 to (nodes * fan / 2) do
    let u = spine.(Dkindex_datagen.Prng.int rng nodes)
    and v = spine.(Dkindex_datagen.Prng.int rng nodes) in
    Builder.add_edge b u v
  done;
  let g = Builder.build b in
  let m = Data_graph.n_edges g in
  let n = Data_graph.n_nodes g in
  let p = Kbisim.label_partition g in
  (* Warm up (tables, one refinement's worth of survivors). *)
  ignore (Kbisim.refine g p ~eligible:(fun _ -> true));
  let before = allocated_words () in
  let p1, _ = Kbisim.refine g p ~eligible:(fun _ -> true) in
  let words = allocated_words () -. before in
  let budget = float_of_int ((24 * n) + (16 * p1.Kbisim.n_classes) + 65_536) in
  Printf.printf "  refine allocation: %.0f words (m=%d, n=%d, budget=%.0f)\n%!" words m n
    budget;
  if words > float_of_int m || words > budget then
    failwith
      (Printf.sprintf
         "Kbisim.refine allocated %.0f words on a graph with m=%d edges — per-node/per-edge \
          allocation crept back into the signature pass"
         words m)

(* Zero-copy framing assertions (smoke mode): decoding a frame sitting
   inside a large connection buffer must allocate a small constant —
   independent of where it sits and of the buffer's size (no
   per-frame [Bytes.sub] of the payload, let alone the buffer) — and
   steady-state reply encoding into a reused [Obuf] must not allocate
   fresh buffers per frame. *)
let assert_framing_allocation () =
  let ob = Obuf.create 64 in
  Wire.encode_request ob ~id:7 Wire.Ping;
  let frame = Obuf.contents ob in
  let payload_len = String.length frame - 4 in
  let big = Bytes.make (1 lsl 20) '\xAA' in
  let pos = 123_457 in
  Bytes.blit_string frame 4 big pos payload_len;
  let big = Bytes.unsafe_to_string big in
  let decode_once () =
    match Wire.decode_request_at big ~pos ~len:payload_len with
    | Ok { Wire.id = 7; msg = Wire.Ping } -> ()
    | Ok _ -> failwith "framing smoke: in-place decode returned the wrong frame"
    | Error e -> failwith ("framing smoke: in-place decode failed: " ^ e)
  in
  decode_once ();
  let n = 10_000 in
  let before = allocated_words () in
  for _ = 1 to n do
    decode_once ()
  done;
  let per_decode = (allocated_words () -. before) /. float_of_int n in
  let reply_buf = Obuf.create 256 in
  Wire.encode_response reply_buf ~id:0 Wire.Pong;
  let before = allocated_words () in
  for i = 1 to n do
    Obuf.clear reply_buf;
    Wire.encode_response reply_buf ~id:i Wire.Pong
  done;
  let per_encode = (allocated_words () -. before) /. float_of_int n in
  Printf.printf "  framing allocation: %.1f words/decode, %.1f words/encode\n%!" per_decode
    per_encode;
  if per_decode > 64.0 then
    failwith
      (Printf.sprintf
         "decode_request_at allocated %.1f words per frame — a payload or buffer copy crept \
          back into the in-place decode path"
         per_decode);
  if per_encode > 16.0 then
    failwith
      (Printf.sprintf
         "encode_response allocated %.1f words per frame into a reused Obuf — per-frame \
          buffer churn crept back into the reply path"
         per_encode)

(* ------------------------------------------------------------------ *)
(* scale:xl bench bodies.  Each runs in a fresh process (re-exec'd with
   [--xl-child]) so VmHWM and top_heap_words are the bench's own.  The
   timed region excludes setup that a real consumer would amortize
   (opening an already-built container before querying it). *)

let xl_child_main name =
  let dir = !xl_dir in
  let gpath = Filename.concat dir "xl.dkc" in
  let ipath = Filename.concat dir "xl-idx.dkc" in
  let nodes = max 2 (!xl_edges / 5) in
  let extra = max 0 (!xl_edges - (nodes - 1)) in
  let ns =
    match name with
    | "xl:datagen-stream" ->
      let t0 = now_ns () in
      Dkindex_datagen.Random_graph.stream ~seed:77 ~nodes ~n_labels:12 ~extra_edges:extra
        ~value_fraction:0.02 ~tmp_dir:dir ~path:gpath ();
      now_ns () -. t0
    | "xl:build-external" ->
      let g = Container.open_graph gpath in
      let t0 = now_ns () in
      let idx = Dk_index.build ~mode:`External g ~reqs:[ ("l0", 2); ("l1", 2) ] in
      let ns = now_ns () -. t0 in
      Index_serial.save_container ipath idx;
      let heap = Gc.((quick_stat ()).top_heap_words) * (Sys.word_size / 8) in
      let cap = !xl_heap_cap_mb * 1024 * 1024 in
      if heap > cap then
        failwith
          (Printf.sprintf "peak heap %d MiB exceeds the %d MiB cap" (heap / 1048576)
             !xl_heap_cap_mb);
      ns
    | "xl:open-mmap" ->
      let t0 = now_ns () in
      let g = Container.open_graph gpath in
      let ns = now_ns () -. t0 in
      ignore (Data_graph.n_nodes g);
      ns
    | "xl:load-index-mmap" ->
      let t0 = now_ns () in
      let idx = Index_serial.load_container ipath in
      let ns = now_ns () -. t0 in
      ignore (Index_graph.n_nodes idx);
      ns
    | "xl:query-mmap" ->
      let idx = Index_serial.load_container ipath in
      let best = ref infinity in
      for _ = 1 to 3 do
        let t0 = now_ns () in
        ignore (Query_eval.eval_path_strings idx [ "l0"; "l1" ]);
        let ns = now_ns () -. t0 in
        if ns < !best then best := ns
      done;
      !best
    | other -> failwith ("unknown xl bench " ^ other)
  in
  let heap = Gc.((quick_stat ()).top_heap_words) * (Sys.word_size / 8) in
  Printf.printf "%.0f %d %d\n%!" ns (peak_rss_bytes ()) heap

(* ------------------------------------------------------------------ *)

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "bench/trajectory.exe";
  if not (String.equal !xl_child "") then begin
    xl_child_main !xl_child;
    exit 0
  end;
  if !smoke then begin
    (* Smallest scale where every pinned workload label occurs. *)
    scale := 8;
    no_out := true
  end;
  Printf.printf "trajectory: XMark scale %d%s\n%!" !scale (if !smoke then " (smoke)" else "");
  let g = Dkindex_datagen.Xmark.graph ~scale:!scale () in
  let pool = Data_graph.pool g in
  let queries = List.map (intern_path pool) query_paths in
  let q0 = List.hd queries in
  let reqs = fixed_reqs in
  let t_build0 = now_ns () in
  let words0 = allocated_words () in
  let dk = Dk_index.build g ~reqs in
  let build_words = allocated_words () -. words0 in
  let build_ms = (now_ns () -. t_build0) /. 1e6 in
  let a2 = A_k_index.build g ~k:2 in
  let n_updates = if !smoke then 10 else 50 in
  let edges = update_edges g ~count:n_updates ~seed:3 in
  let u1, v1 = List.hd edges in
  let iu = Index_graph.cls dk u1 and iv = Index_graph.cls dk v1 in
  let entries = ref [] in
  let bench name f =
    let ns = best_ns f in
    Printf.printf "  %-44s %12.0f ns/op\n%!" name ns;
    entries := { name; after_ns = ns; baseline_ns = None; rss_bytes = None } :: !entries
  in
  let bench_resource name ~allocate ~runs f =
    let ns = best_ns_with_resource ~allocate ~runs f in
    Printf.printf "  %-44s %12.0f ns/op\n%!" name ns;
    entries := { name; after_ns = ns; baseline_ns = None; rss_bytes = None } :: !entries
  in
  (* Figures 4/5: construction and query evaluation. *)
  bench "fig4/5:build-A(2)" (fun () -> ignore (A_k_index.build g ~k:2));
  bench "fig4/5:build-D(k)" (fun () -> ignore (Dk_index.build g ~reqs));
  bench "fig4/5:query-D(k)" (fun () -> ignore (Query_eval.eval_path dk q0));
  bench "fig4/5:query-A(2)" (fun () -> ignore (Query_eval.eval_path a2 q0));
  bench "fig4/5:query-data-naive" (fun () ->
      ignore (Dkindex_pathexpr.Matcher.eval_label_path g q0 ~cost:(Cost.create ())));
  (* Path-expression engine over the index. *)
  (let expr = Dkindex_pathexpr.Path_parser.parse "open_auction.(bidder|seller).personref?" in
   bench "fig4/5:query-expr-D(k)" (fun () -> ignore (Query_eval.eval_expr dk expr));
   (* Serving: one warm cross-query validation cache per benchmark —
      the steady state of a query server between index updates. *)
   let cache = Validation_cache.create dk in
   bench "serve:query-D(k)-cached" (fun () -> ignore (Query_eval.eval_path ~cache dk q0));
   bench "serve:query-expr-D(k)-cached" (fun () ->
       ignore (Query_eval.eval_expr ~cache dk expr)));
  (* Batch driver: the pinned workload cycled into a fixed batch, served
     over 1/2/4 domains.  Recorded per query so the entries compare
     directly with the single-query latencies above.  On a machine with
     fewer cores than domains the >1 entries measure scheduling overhead
     rather than speedup; the macro section records the host's core
     count for honest reading. *)
  (let batch = List.concat_map (fun q -> [ q; q; q; q ]) queries in
   let per_query ns = ns /. float_of_int (List.length batch) in
   List.iter
     (fun domains ->
       let name = Printf.sprintf "serve:batch-throughput-d%d" domains in
       let ns = best_ns (fun () -> ignore (Query_eval.eval_batch ~domains dk batch)) in
       let ns = per_query ns in
       Printf.printf "  %-44s %12.0f ns/query\n%!" name ns;
       entries := { name; after_ns = ns; baseline_ns = None; rss_bytes = None } :: !entries)
     [ 1; 2; 4 ]);
  (* Cost-based planner over the full index family.  Per pinned query:
     plan:best-single / plan:worst-single are the best / worst
     hand-picked single-index scan (min / max over the family of each
     query's best-of time, summed, then averaged per query), plan:auto
     is the planner end to end (statistics consultation + plan choice
     + execution), and plan:choose is the planning step alone.  No
     validation caches on either side, so the comparison is symmetric. *)
  let plan_facts = ref [] in
  (let module Plan = Dkindex_planner.Plan in
   let module Planner = Dkindex_planner.Planner in
   let one = One_index.build g in
   let ls = Label_split.build g in
   let fb = Fb_index.build g in
   let pl = Planner.create g in
   Planner.register pl ~name:"dk" dk;
   Planner.register pl ~name:"ak" a2;
   Planner.register pl ~name:"1-index" one;
   Planner.register pl ~name:"label-split" ls;
   Planner.register pl ~name:"fb" fb;
   Planner.observe_workload pl queries;
   let family = [ dk; a2; one; ls; fb ] in
   let nq = float_of_int (List.length queries) in
   let scan_ns =
     List.map
       (fun q ->
         List.map
           (fun idx -> best_ns (fun () -> ignore (Query_eval.eval_path ~strategy:`Auto idx q)))
           family)
       queries
   in
   let total f = List.fold_left (fun acc per_q -> acc +. f per_q) 0.0 scan_ns in
   let best = total (List.fold_left Float.min infinity) in
   let worst = total (List.fold_left Float.max 0.0) in
   let auto =
     List.fold_left
       (fun acc q -> acc +. best_ns (fun () -> ignore (Planner.eval_planned_path pl q)))
       0.0 queries
   in
   let choose =
     List.fold_left
       (fun acc q -> acc +. best_ns (fun () -> ignore (Planner.choose_path pl q)))
       0.0 queries
   in
   let record name ns =
     Printf.printf "  %-44s %12.0f ns/query\n%!" name ns;
     entries := { name; after_ns = ns; baseline_ns = None; rss_bytes = None } :: !entries
   in
   record "plan:auto" (auto /. nq);
   record "plan:best-single" (best /. nq);
   record "plan:worst-single" (worst /. nq);
   record "plan:choose" (choose /. nq);
   plan_facts :=
     [
       ("plan_auto_vs_best_ratio", Printf.sprintf "%.3f" (auto /. best));
       ("plan_worst_vs_auto_ratio", Printf.sprintf "%.3f" (worst /. auto));
       ("plan_choose_overhead_pct", Printf.sprintf "%.2f" (100.0 *. choose /. auto));
     ];
   if !smoke then begin
     (* Catalog consultation must stay O(1) words per planned query:
        array indexing into the swept rows, a bounded list of plan
        records, no per-extent or per-node work. *)
     let q = List.hd queries in
     ignore (Planner.choose_path pl q);
     let n = 1_000 in
     let before = allocated_words () in
     for _ = 1 to n do
       ignore (Planner.choose_path pl q)
     done;
     let per_choose = (allocated_words () -. before) /. float_of_int n in
     Printf.printf "  planner allocation: %.0f words/choose\n%!" per_choose;
     if per_choose > 2048.0 then
       failwith
         (Printf.sprintf
            "Planner.choose allocated %.0f words — catalog consultation is no longer O(1)"
            per_choose)
   end);
  (* Substrate: bisimulation refinement. *)
  bench "substrate:label-split" (fun () -> ignore (Label_split.build g));
  bench "substrate:1-index" (fun () -> ignore (One_index.build g));
  bench "substrate:1-index-paige-tarjan" (fun () -> ignore (Paige_tarjan.build_one_index g));
  (let deep =
     let b = Builder.create () in
     let node = ref (Builder.root b) in
     for _ = 1 to 2000 do
       node := Builder.add_child b ~parent:!node "a"
     done;
     Builder.build b
   in
   bench "substrate:deep-chain-hash-refinement" (fun () -> ignore (One_index.build deep)));
  (* Table 1: updates. *)
  bench "table1:update-local-similarity" (fun () ->
      ignore (Dk_update.update_local_similarity dk ~u:iu ~v:iv));
  bench_resource "table1:D(k)-add-edge"
    ~allocate:(fun () -> Dk_index.build (Data_graph.copy g) ~reqs)
    ~runs:n_updates
    (fun idx -> List.iter (fun (u, v) -> Dk_update.add_edge idx u v) edges);
  bench_resource "table1:A(2)-add-edge"
    ~allocate:(fun () -> A_k_index.build (Data_graph.copy g) ~k:2)
    ~runs:n_updates
    (fun idx -> List.iter (fun (u, v) -> Ak_update.add_edge idx ~k:2 u v) edges);
  bench_resource "table1:data-add-edge"
    ~allocate:(fun () -> Data_graph.copy g)
    ~runs:n_updates
    (fun h -> List.iter (fun (u, v) -> Data_graph.add_edge h u v) edges);
  bench "extB:demote-rebuild" (fun () -> ignore (Dk_index.rebuild dk ~reqs));
  (* Socket serving: an in-process dkserve instance on an ephemeral
     port (2 query workers + 1 mutator, the default deployment shape),
     driven by C concurrent client connections issuing synchronous
     query-path requests from the pinned workload.  ns/op is wall
     clock over the whole request volume — wire codec, loopback TCP,
     queueing and evaluation included.  Latency entry is the p99 of
     per-request round-trip times on one connection. *)
  (let port_box = Atomic.make 0 in
   let srv =
     Domain.spawn (fun () ->
         Server.run ~handle_signals:false
           ~on_ready:(fun p -> Atomic.set port_box p)
           {
             Server.default_config with
             port = 0;
             workers = 2;
             queue_depth = 1024;
             deadline_s = 0.0;
             idle_timeout_s = 0.0;
             read_progress_deadline_s = 0.5;
           }
           dk
         |> Result.get_ok)
   in
   while Atomic.get port_box = 0 do
     Unix.sleepf 0.002
   done;
   let port = Atomic.get port_box in
   let qstrings = Array.of_list query_paths in
   let request i =
     Wire.Query_path
       { flags = { no_cache = false }; labels = qstrings.(i mod Array.length qstrings) }
   in
   let expect_result i = function
     | Wire.Result _ -> ()
     | Wire.Error_reply { message; _ } ->
       failwith (Printf.sprintf "serve bench request %d: %s" i message)
     | _ -> failwith (Printf.sprintf "serve bench request %d: unexpected reply" i)
   in
   (* One timed pass: connect first, then a barrier, then the clock. *)
   let socket_pass ~conns ~requests =
     let ready = Atomic.make 0 and go = Atomic.make false in
     let doms =
       List.init conns (fun d ->
           Domain.spawn (fun () ->
               let c = Client.connect ~port () in
               Atomic.incr ready;
               while not (Atomic.get go) do
                 Domain.cpu_relax ()
               done;
               let i = ref d in
               while !i < requests do
                 expect_result !i (Client.call c (request !i));
                 i := !i + conns
               done;
               Client.close c))
     in
     while Atomic.get ready < conns do
       Unix.sleepf 0.001
     done;
     let t0 = now_ns () in
     Atomic.set go true;
     List.iter Domain.join doms;
     (now_ns () -. t0) /. float_of_int requests
   in
   let reps = if !smoke then 2 else 5 in
   let requests = if !smoke then 60 else 600 in
   List.iter
     (fun conns ->
       let name = Printf.sprintf "serve:socket-throughput-c%d" conns in
       let samples = Array.init reps (fun _ -> socket_pass ~conns ~requests) in
       Array.sort compare samples;
       let ns = samples.(0) in
       Printf.printf "  %-44s %12.0f ns/req\n%!" name ns;
       entries := { name; after_ns = ns; baseline_ns = None; rss_bytes = None } :: !entries)
     [ 1; 2; 4 ];
   (let requests = if !smoke then 60 else 1000 in
    let lat = Array.make requests 0.0 in
    let p99 () =
      let c = Client.connect ~port () in
      for i = 0 to requests - 1 do
        let t0 = now_ns () in
        expect_result i (Client.call c (request i));
        lat.(i) <- now_ns () -. t0
      done;
      Client.close c;
      Array.sort compare lat;
      lat.(requests * 99 / 100)
    in
    let samples = Array.init (if !smoke then 1 else 3) (fun _ -> p99 ()) in
    Array.sort compare samples;
    let ns = samples.(0) in
    Printf.printf "  %-44s %12.0f ns\n%!" "serve:socket-p99-latency" ns;
    entries :=
      { name = "serve:socket-p99-latency"; after_ns = ns; baseline_ns = None; rss_bytes = None } :: !entries);
   (* Pipelined throughput: one connection keeping [depth] requests in
      flight, replies matched by id (the inline fast path may reorder
      them).  The contrast with socket-throughput-c1 is the headroom
      the serving path has beyond one-request-per-RTT clients. *)
   (let depth = 8 in
    let pipelined_pass ~requests =
      let c = Client.connect ~port () in
      let inflight = Hashtbl.create (2 * depth) in
      let sent = ref 0 and completed = ref 0 in
      let t0 = now_ns () in
      while !completed < requests do
        while !sent < requests && Hashtbl.length inflight < depth do
          Hashtbl.replace inflight (Client.send c (request !sent)) !sent;
          incr sent
        done;
        let r = Client.recv c in
        (match Hashtbl.find_opt inflight r.Wire.id with
        | Some i ->
          Hashtbl.remove inflight r.Wire.id;
          expect_result i r.Wire.msg
        | None -> failwith "pipelined bench: reply with unknown id");
        incr completed
      done;
      let ns = (now_ns () -. t0) /. float_of_int requests in
      Client.close c;
      ns
    in
    let reps = if !smoke then 2 else 5 in
    let requests = if !smoke then 60 else 600 in
    let samples = Array.init reps (fun _ -> pipelined_pass ~requests) in
    Array.sort compare samples;
    let ns = samples.(0) in
    let name = Printf.sprintf "serve:pipelined-throughput-k%d" depth in
    Printf.printf "  %-44s %12.0f ns/req\n%!" name ns;
    entries := { name; after_ns = ns; baseline_ns = None; rss_bytes = None } :: !entries);
   (* Chaos overhead: p99 round-trip of a well-behaved connection routed
      through the chaos proxy (pass-through spec) while a slow-loris
      client holds a half-written frame open against the server,
      vs. the direct no-chaos p99 measured back to back.  The loris is
      evicted by the read-progress deadline; the well-behaved p99 is
      expected within 2x of the direct baseline (reported as
      baseline/after so the JSON carries the ratio, warned past 2x —
      shared CI machines make a hard failure here too flaky). *)
   (let requests = if !smoke then 60 else 1000 in
    let lat = Array.make requests 0.0 in
    let p99_via port =
      let c = Client.connect ~port () in
      for i = 0 to requests - 1 do
        let t0 = now_ns () in
        expect_result i (Client.call c (request i));
        lat.(i) <- now_ns () -. t0
      done;
      Client.close c;
      Array.sort compare lat;
      lat.(requests * 99 / 100)
    in
    let samples = Array.init (if !smoke then 1 else 3) (fun _ -> p99_via port) in
    Array.sort compare samples;
    let direct = samples.(0) in
    let px = Chaos.create ~seed:1 ~upstream:("127.0.0.1", port) Chaos.no_faults in
    let pxd = Domain.spawn (fun () -> Chaos.run px) in
    (* The slow loris: half a length prefix, then silence. *)
    let loris = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect loris (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let sent = Unix.write_substring loris "\000\000" 0 2 in
    if sent <> 2 then failwith "chaos bench: loris write";
    let samples =
      Array.init (if !smoke then 1 else 3) (fun _ -> p99_via (Chaos.port px))
    in
    Array.sort compare samples;
    let chaotic = samples.(0) in
    (* The loris must be evicted by the read-progress deadline. *)
    let evicted () =
      let c = Client.connect ~port () in
      let n =
        match Client.call c Wire.Stats with
        | Wire.Stats_reply kvs ->
          (match List.assoc_opt "evicted_slow_clients" kvs with
          | Some v -> int_of_string v
          | None -> failwith "chaos bench: no evicted_slow_clients stat")
        | _ -> failwith "chaos bench: stats not answered"
      in
      Client.close c;
      n
    in
    let t0 = Unix.gettimeofday () in
    while evicted () < 1 do
      if Unix.gettimeofday () -. t0 > 10.0 then
        failwith "chaos bench: slow-loris client not evicted within 10s";
      Unix.sleepf 0.05
    done;
    (try Unix.close loris with Unix.Unix_error _ -> ());
    Chaos.stop px;
    Domain.join pxd;
    let ratio = chaotic /. direct in
    Printf.printf "  %-44s %12.0f ns  (direct %.0f ns, x%.2f)%s\n%!"
      "serve:chaos-overhead" chaotic direct ratio
      (if ratio > 2.0 then "  WARNING: > 2x no-chaos baseline" else "");
    entries :=
      { name = "serve:chaos-overhead"; after_ns = chaotic;
        baseline_ns = Some direct; rss_bytes = None } :: !entries);
   (* Stop the server over its own wire and reclaim the domain. *)
   let c = Client.connect ~port () in
   (match Client.call c Wire.Shutdown with
   | Wire.Ok_reply _ -> ()
   | _ -> failwith "serve bench: shutdown not acknowledged");
   Client.close c;
   Domain.join srv);
  (* WAL overhead: acknowledged-write throughput through the whole
     server (socket, mutator, apply, WAL append + sync) under each
     sync policy, against a no-WAL baseline.  Each variant serves a
     fresh index (writes mutate it) and alternates add/remove of one
     absent ID/IDREF edge, so every request is an acknowledged
     mutation and the state returns to its start after every
     even-length pass.  All variants are live at once (so the
     process-wide domain count — which sets the stop-the-world
     minor-GC sync cost — is identical during every pass) and the
     timed passes are interleaved with the starting variant rotated
     each rep, so ambient-load drift and deferred page writeback hit
     every policy alike instead of biasing a fixed position in the
     cycle; checkpoint triggers are disabled so the number isolates
     the WAL cost (checkpoint I/O is on a background domain and off
     the ack path by construction). *)
  (let wal_requests = if !smoke then 40 else 500 in
   let wal_reps = if !smoke then 1 else 16 in
   let eu, ev =
     match List.filter (fun (u, v) -> not (Data_graph.has_edge g u v)) edges with
     | e :: _ -> e
     | [] -> failwith "wal bench: no absent update edge"
   in
   let mk_variant name sync =
     let idx = Dk_index.build (Data_graph.copy g) ~reqs in
     let dir = Filename.temp_file "dkwal" "" in
     Sys.remove dir;
     Unix.mkdir dir 0o755;
     let durability =
       Option.map
         (fun sync ->
           Checkpoint.start
             {
               (Checkpoint.default_config ~dir) with
               sync;
               checkpoint_records = 0;
               checkpoint_bytes = 0;
               checkpoint_interval_s = 0.0;
             }
             idx)
         sync
     in
     let port_box = Atomic.make 0 in
     let srv =
       Domain.spawn (fun () ->
           Server.run ~handle_signals:false ?durability
             ~on_ready:(fun p -> Atomic.set port_box p)
             {
               Server.default_config with
               port = 0;
               workers = 1;
               queue_depth = 1024;
               deadline_s = 0.0;
               idle_timeout_s = 0.0;
             }
             idx
           |> Result.get_ok)
     in
     while Atomic.get port_box = 0 do
       Unix.sleepf 0.002
     done;
     let c = Client.connect ~port:(Atomic.get port_box) () in
     (name, dir, c, srv, ref infinity)
   in
   let pass c =
     let t0 = now_ns () in
     for i = 0 to wal_requests - 1 do
       let req =
         if i land 1 = 0 then Wire.Add_edge { u = eu; v = ev }
         else Wire.Remove_edge { u = eu; v = ev }
       in
       match Client.call c req with
       | Wire.Ok_reply _ -> ()
       | Wire.Error_reply { message; _ } -> failwith ("wal bench: " ^ message)
       | _ -> failwith "wal bench: unexpected reply"
     done;
     (now_ns () -. t0) /. float_of_int wal_requests
   in
   let variants =
     [
       mk_variant "serve:wal-overhead-nowal" None;
       mk_variant "serve:wal-overhead-sync-never" (Some Wal.Never);
       mk_variant "serve:wal-overhead-sync-interval" (Some (Wal.Interval 64));
       mk_variant "serve:wal-overhead-sync-always" (Some Wal.Always);
     ]
   in
   let variants_arr = Array.of_list variants in
   let nv = Array.length variants_arr in
   List.iter (fun (_, _, c, _, _) -> ignore (pass c)) variants;
   for rep = 0 to wal_reps - 1 do
     for k = 0 to nv - 1 do
       let _, _, c, _, best = variants_arr.((rep + k) mod nv) in
       let ns = pass c in
       if ns < !best then best := ns
     done
   done;
   List.iter
     (fun (name, dir, c, srv, best) ->
       (match Client.call c Wire.Shutdown with
       | Wire.Ok_reply _ -> ()
       | _ -> failwith "wal bench: shutdown not acknowledged");
       Client.close c;
       Domain.join srv;
       rm_rf dir;
       Printf.printf "  %-44s %12.0f ns/write\n%!" name !best;
       entries := { name; after_ns = !best; baseline_ns = None; rss_bytes = None } :: !entries)
     variants);
  (* Scrub overhead: p99 query round-trip against a durable server
     whose integrity scrubber re-reads the whole data directory every
     50 ms — far more aggressive than any production cadence — vs the
     same server shape with scrubbing off, measured back to back.
     Digest/index access rides the mutator queue and the file re-reads
     ride the integrity domain, so the read path should see almost
     nothing: warned past 1.5x (shared CI machines make a hard failure
     too flaky). *)
  (let requests = if !smoke then 60 else 1000 in
   let lat = Array.make requests 0.0 in
   let qstrings = Array.of_list query_paths in
   let request i =
     Wire.Query_path
       { flags = { no_cache = false }; labels = qstrings.(i mod Array.length qstrings) }
   in
   let wedges =
     List.filteri
       (fun i _ -> i < 8)
       (List.filter (fun (u, v) -> not (Data_graph.has_edge g u v)) edges)
   in
   let measure ~scrub =
     let idx = Dk_index.build (Data_graph.copy g) ~reqs in
     let dir = Filename.temp_file "dkscrub" "" in
     Sys.remove dir;
     Unix.mkdir dir 0o755;
     let durability =
       Checkpoint.start { (Checkpoint.default_config ~dir) with sync = Wal.Interval 64 } idx
     in
     let port_box = Atomic.make 0 in
     let srv =
       Domain.spawn (fun () ->
           Server.run ~handle_signals:false ~durability
             ~on_ready:(fun p -> Atomic.set port_box p)
             {
               Server.default_config with
               port = 0;
               workers = 1;
               queue_depth = 1024;
               deadline_s = 0.0;
               idle_timeout_s = 0.0;
               scrub_interval_s = (if scrub then 0.05 else 0.0);
             }
             idx
           |> Result.get_ok)
     in
     while Atomic.get port_box = 0 do
       Unix.sleepf 0.002
     done;
     let c = Client.connect ~port:(Atomic.get port_box) () in
     (* give the scrubber real at-rest bytes: logged writes on top of
        the initial checkpoint (added then removed, so the served
        state is identical across variants) *)
     List.iter
       (fun (u, v) ->
         List.iter
           (fun req ->
             match Client.call c req with
             | Wire.Ok_reply _ -> ()
             | _ -> failwith "scrub bench: write refused")
           [ Wire.Add_edge { u; v }; Wire.Remove_edge { u; v } ])
       wedges;
     (if scrub then
        (* only time once passes are demonstrably happening *)
        let deadline = Unix.gettimeofday () +. 10.0 in
        let passes () =
          match Client.call c Wire.Stats with
          | Wire.Stats_reply kvs ->
            (match List.assoc_opt "scrub_passes" kvs with
            | Some v -> int_of_string v
            | None -> failwith "scrub bench: no scrub_passes stat")
          | _ -> failwith "scrub bench: stats not answered"
        in
        while passes () < 2 do
          if Unix.gettimeofday () > deadline then failwith "scrub bench: scrubber idle";
          Unix.sleepf 0.02
        done);
     let p99 () =
       for i = 0 to requests - 1 do
         let t0 = now_ns () in
         (match Client.call c (request i) with
         | Wire.Result _ -> ()
         | Wire.Error_reply { message; _ } -> failwith ("scrub bench: " ^ message)
         | _ -> failwith "scrub bench: unexpected reply");
         lat.(i) <- now_ns () -. t0
       done;
       Array.sort compare lat;
       lat.(requests * 99 / 100)
     in
     let samples = Array.init (if !smoke then 1 else 3) (fun _ -> p99 ()) in
     Array.sort compare samples;
     let ns = samples.(0) in
     (match Client.call c Wire.Shutdown with
     | Wire.Ok_reply _ -> ()
     | _ -> failwith "scrub bench: shutdown not acknowledged");
     Client.close c;
     Domain.join srv;
     rm_rf dir;
     ns
   in
   let direct = measure ~scrub:false in
   let scrubbed = measure ~scrub:true in
   let ratio = scrubbed /. direct in
   Printf.printf "  %-44s %12.0f ns  (no-scrub %.0f ns, x%.2f)%s\n%!"
     "serve:scrub-overhead" scrubbed direct ratio
     (if ratio > 1.5 then "  WARNING: > 1.5x no-scrub baseline" else "");
   entries :=
     {
       name = "serve:scrub-overhead";
       after_ns = scrubbed;
       baseline_ns = Some direct;
       rss_bytes = None;
     }
     :: !entries);
  (* Replication: aggregate read throughput against a primary plus 0/1/2
     caught-up replicas (driver domains round-robin their connections
     over the endpoints), and p99 replication lag in bytes-behind
     sampled on the replica after every acknowledged write.  All
     servers are in-process; on a host with fewer cores than domains
     the scaling entries measure scheduling overhead rather than
     speedup — same caveat as the batch-throughput family, and the
     macro section records the core count. *)
  (let mk_dir () =
     let dir = Filename.temp_file "dkrepl" "" in
     Sys.remove dir;
     Unix.mkdir dir 0o755;
     dir
   in
   let empty_index () =
     let pool = Label.Pool.create () in
     let root = Label.Pool.intern pool Label.root_name in
     let eg = Data_graph.make ~pool ~labels:[| root |] ~edges:[] () in
     Dk_index.build eg ~reqs:[]
   in
   let start_server ?replica_of index =
     let dir = mk_dir () in
     let durability =
       Checkpoint.start { (Checkpoint.default_config ~dir) with sync = Wal.Never } index
     in
     let port_box = Atomic.make 0 in
     let srv =
       Domain.spawn (fun () ->
           Server.run ~handle_signals:false ~durability ?replica_of ~hub_heartbeat_s:0.05
             ~on_ready:(fun p -> Atomic.set port_box p)
             {
               Server.default_config with
               port = 0;
               workers = 1;
               queue_depth = 1024;
               deadline_s = 0.0;
               idle_timeout_s = 0.0;
             }
             index
           |> Result.get_ok)
     in
     while Atomic.get port_box = 0 do
       Unix.sleepf 0.002
     done;
     (dir, Atomic.get port_box, srv)
   in
   let pdir, pport, psrv = start_server (Dk_index.build (Data_graph.copy g) ~reqs) in
   let replica i =
     start_server
       ~replica_of:
         (Dkindex_server.Replication.default_rconfig ~host:"127.0.0.1" ~port:pport
            ~replica_id:i)
       (empty_index ())
   in
   let r1dir, r1port, r1srv = replica 1 in
   let r2dir, r2port, r2srv = replica 2 in
   let wait_caught_up port =
     let c = Client.connect ~port () in
     let deadline = Unix.gettimeofday () +. 120.0 in
     let rec go () =
       let kvs =
         match Client.call c Wire.Stats with
         | Wire.Stats_reply kvs -> kvs
         | _ -> failwith "replication bench: Stats failed"
       in
       let v k = Option.value (List.assoc_opt k kvs) ~default:"" in
       if
         v "replication_connected" = "true"
         && v "replication_bytes_behind" = "0"
         && v "replication_applied_seq" <> "-1"
       then Client.close c
       else if Unix.gettimeofday () > deadline then
         failwith "replication bench: replica catch-up timed out"
       else begin
         Unix.sleepf 0.02;
         go ()
       end
     in
     go ()
   in
   wait_caught_up r1port;
   wait_caught_up r2port;
   let qstrings = Array.of_list query_paths in
   let request i =
     Wire.Query_path
       { flags = { no_cache = false }; labels = qstrings.(i mod Array.length qstrings) }
   in
   let expect_result i = function
     | Wire.Result _ -> ()
     | Wire.Error_reply { message; _ } ->
       failwith (Printf.sprintf "replication bench request %d: %s" i message)
     | _ -> failwith (Printf.sprintf "replication bench request %d: unexpected reply" i)
   in
   let read_pass ~ports ~requests =
     let conns = 4 in
     let n = Array.length ports in
     let ready = Atomic.make 0 and go = Atomic.make false in
     let doms =
       List.init conns (fun d ->
           Domain.spawn (fun () ->
               let c = Client.connect ~port:ports.(d mod n) () in
               Atomic.incr ready;
               while not (Atomic.get go) do
                 Domain.cpu_relax ()
               done;
               let i = ref d in
               while !i < requests do
                 expect_result !i (Client.call c (request !i));
                 i := !i + conns
               done;
               Client.close c))
     in
     while Atomic.get ready < conns do
       Unix.sleepf 0.001
     done;
     let t0 = now_ns () in
     Atomic.set go true;
     List.iter Domain.join doms;
     (now_ns () -. t0) /. float_of_int requests
   in
   let reps = if !smoke then 2 else 5 in
   let requests = if !smoke then 60 else 600 in
   let all_ports = [| pport; r1port; r2port |] in
   for nendp = 1 to 3 do
     let name = Printf.sprintf "serve:replica-read-scaling-%d" nendp in
     let ports = Array.sub all_ports 0 nendp in
     let samples = Array.init reps (fun _ -> read_pass ~ports ~requests) in
     Array.sort compare samples;
     let ns = samples.(0) in
     Printf.printf "  %-44s %12.0f ns/req\n%!" name ns;
     entries := { name; after_ns = ns; baseline_ns = None; rss_bytes = None } :: !entries
   done;
   (* Lag: alternate add/remove of one absent ID/IDREF edge (every
      request is an acknowledged mutation, state returns to its start),
      sampling the replica's bytes-behind right after each ack. *)
   (let n_writes = if !smoke then 30 else 300 in
    let eu, ev =
      match List.filter (fun (u, v) -> not (Data_graph.has_edge g u v)) edges with
      | e :: _ -> e
      | [] -> failwith "replication bench: no absent update edge"
    in
    let wc = Client.connect ~port:pport () in
    let sc = Client.connect ~port:r1port () in
    let lags = Array.make n_writes 0.0 in
    for i = 0 to n_writes - 1 do
      let req =
        if i land 1 = 0 then Wire.Add_edge { u = eu; v = ev }
        else Wire.Remove_edge { u = eu; v = ev }
      in
      (match Client.call wc req with
      | Wire.Ok_reply _ -> ()
      | Wire.Error_reply { message; _ } -> failwith ("replication bench write: " ^ message)
      | _ -> failwith "replication bench write: unexpected reply");
      let kvs =
        match Client.call sc Wire.Stats with
        | Wire.Stats_reply kvs -> kvs
        | _ -> failwith "replication bench: Stats failed"
      in
      lags.(i) <-
        float_of_string
          (Option.value (List.assoc_opt "replication_bytes_behind" kvs) ~default:"0")
    done;
    Client.close wc;
    Client.close sc;
    Array.sort compare lags;
    let p99 = lags.(n_writes * 99 / 100) in
    Printf.printf "  %-44s %12.0f bytes behind (p99)\n%!" "serve:replication-lag" p99;
    entries := { name = "serve:replication-lag"; after_ns = p99; baseline_ns = None; rss_bytes = None } :: !entries);
   let stop port srv dir =
     let c = Client.connect ~port () in
     (match Client.call c Wire.Shutdown with
     | Wire.Ok_reply _ -> ()
     | _ -> failwith "replication bench: shutdown not acknowledged");
     Client.close c;
     Domain.join srv;
     rm_rf dir
   in
   (* Replicas first: stopping the primary first would put their
      tailers into reconnect loops for no reason. *)
   stop r2port r2srv r2dir;
   stop r1port r1srv r1dir;
   stop pport psrv pdir);

  (* ---------------------------------------------------------------- *)
  (* scale:xl — the out-of-core tier.  Each bench re-execs this binary
     with [--xl-child NAME --xl-dir DIR] so its peak RSS (VmHWM) and
     peak OCaml heap start clean instead of inheriting the macro pass's
     high-water marks; the child prints "<ns> <rss_bytes> <heap_bytes>"
     on stdout. *)
  let run_child name dir =
    let r, w = Unix.pipe () in
    let args =
      [|
        Sys.executable_name; "--xl-child"; name; "--xl-dir"; dir;
        "--xl-edges"; string_of_int !xl_edges;
        "--xl-heap-cap-mb"; string_of_int !xl_heap_cap_mb;
      |]
    in
    let pid = Unix.create_process Sys.executable_name args Unix.stdin w Unix.stderr in
    Unix.close w;
    let ic = Unix.in_channel_of_descr r in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    (match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> failwith (name ^ ": xl bench child failed"));
    Scanf.sscanf line "%f %d %d" (fun ns rss heap -> (ns, rss, heap))
  in
  let xl_facts = ref [] in
  if !xl then begin
    let dir = Filename.temp_file "dkxl" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let record name =
      let ns, rss, heap = run_child name dir in
      Printf.printf "  %-34s %12.0f ns   rss %5d MiB   heap %5d MiB\n%!" name ns
        (rss / 1048576) (heap / 1048576);
      entries := { name; after_ns = ns; baseline_ns = None; rss_bytes = Some rss } :: !entries;
      (ns, rss, heap)
    in
    Printf.printf "scale:xl series: ~%d edges (fresh process per bench)\n%!" !xl_edges;
    ignore (record "xl:datagen-stream");
    let _, _, build_heap = record "xl:build-external" in
    ignore (record "xl:open-mmap");
    ignore (record "xl:load-index-mmap");
    ignore (record "xl:query-mmap");
    (* Shape facts, read from the finished container (O(1) open). *)
    let g = Container.open_graph (Filename.concat dir "xl.dkc") in
    xl_facts :=
      [
        ("xl_data_nodes", string_of_int (Data_graph.n_nodes g));
        ("xl_data_edges", string_of_int (Data_graph.n_edges g));
        ( "xl_container_bytes",
          string_of_int (Unix.stat (Filename.concat dir "xl.dkc")).Unix.st_size );
        ("xl_build_peak_heap_bytes", string_of_int build_heap);
        ("xl_heap_cap_bytes", string_of_int (!xl_heap_cap_mb * 1024 * 1024));
      ];
    rm_rf dir
  end;
  let entries = List.rev !entries in
  (* Macro pass facts. *)
  let query_cost =
    List.fold_left
      (fun acc q -> acc + Cost.total (Query_eval.eval_path dk q).Query_eval.cost)
      0 queries
  in
  let gstats = Data_graph.stats g in
  let macro =
    [
      ("data_nodes", string_of_int gstats.Data_graph.nodes);
      ("data_edges", string_of_int gstats.Data_graph.edges);
      ("dk_index_nodes", string_of_int (Index_graph.n_nodes dk));
      ("dk_index_edges", string_of_int (Index_graph.n_edges dk));
      ("a2_index_nodes", string_of_int (Index_graph.n_nodes a2));
      ("dk_build_ms", Printf.sprintf "%.1f" build_ms);
      ("dk_build_allocated_words", Printf.sprintf "%.0f" build_words);
      ("workload_query_cost_visits", string_of_int query_cost);
      ("n_update_edges", string_of_int n_updates);
      ("host_recommended_domains", string_of_int (Domain.recommended_domain_count ()));
      ("host_total_ram_bytes", string_of_int (host_total_ram_bytes ()));
      ("page_size_bytes", string_of_int (page_size_bytes ()));
      ("peak_rss_bytes", string_of_int (peak_rss_bytes ()));
      ("batch_queries", string_of_int (4 * List.length queries));
    ]
    @ !plan_facts
    @ !xl_facts
  in
  Printf.printf "  macro: %s\n%!"
    (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) macro));
  if !smoke then begin
    assert_refine_allocation ();
    assert_framing_allocation ();
    (* Exercise the update path end to end so harness bitrot (not just
       compile rot) fails the smoke run. *)
    let idx = Dk_index.build (Data_graph.copy g) ~reqs in
    List.iter (fun (u, v) -> Dk_update.add_edge idx u v) edges;
    Index_graph.check_invariants idx;
    (* Batch driver determinism: a 2-domain fan-out must reproduce the
       sequential answers bit for bit. *)
    let batch = queries @ queries in
    let seq = Query_eval.eval_batch ~domains:1 ~cache:false dk batch in
    let par = Query_eval.eval_batch ~domains:2 ~cache:false dk batch in
    Array.iteri
      (fun i r ->
        if
          r.Query_eval.nodes <> par.(i).Query_eval.nodes
          || Cost.total r.Query_eval.cost <> Cost.total par.(i).Query_eval.cost
        then failwith (Printf.sprintf "eval_batch diverged from sequential at query %d" i))
      seq;
    Printf.printf "trajectory smoke: OK\n%!"
  end;
  if not !no_out then begin
    let entries =
      if String.equal !baseline_file "" then entries
      else begin
        let table = read_baseline !baseline_file in
        (* Entries that measured their own baseline in-process (e.g.
           chaos-overhead's direct p99) keep it when the merged file
           has nothing for them. *)
        List.map
          (fun e ->
            match Hashtbl.find_opt table e.name with
            | Some _ as b -> { e with baseline_ns = b }
            | None -> e)
          entries
      end
    in
    write_json !out_file ~entries ~macro;
    Printf.printf "wrote %s\n%!" !out_file
  end
