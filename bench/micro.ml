(* Bechamel micro-benchmarks: one Test.make per table/figure driver,
   over a small fixed dataset so each run is sub-millisecond-to-
   millisecond scale.  Run with `bench/main.exe --bechamel`. *)

open Bechamel
open Toolkit
open Dkindex_graph
open Dkindex_core
module Cost = Dkindex_pathexpr.Cost

let tests () =
  let g = Dkindex_datagen.Xmark.graph ~scale:40 () in
  let queries = Dkindex_workload.Query_gen.generate g in
  let reqs = Dkindex_workload.Miner.mine g queries in
  let dk = Dk_index.build g ~reqs in
  let a2 = A_k_index.build g ~k:2 in
  let query = List.nth queries 0 in
  let u, v =
    match
      Experiments.random_update_edges
        { Experiments.ds_name = "Xmark"; graph = g; ref_pairs = Dkindex_datagen.Xmark.ref_pairs }
        ~count:1 ~seed:3
    with
    | [ (u, v) ] -> (u, v)
    | _ -> assert false
  in
  let iu = Index_graph.cls dk u and iv = Index_graph.cls dk v in
  [
    (* Figures 4/5: index construction and query evaluation. *)
    Test.make ~name:"fig4/5:build-A(2)" (Staged.stage (fun () -> A_k_index.build g ~k:2));
    Test.make ~name:"fig4/5:build-A(4)" (Staged.stage (fun () -> A_k_index.build g ~k:4));
    Test.make ~name:"fig4/5:build-D(k)" (Staged.stage (fun () -> Dk_index.build g ~reqs));
    Test.make ~name:"fig4/5:query-D(k)" (Staged.stage (fun () -> Query_eval.eval_path dk query));
    Test.make ~name:"fig4/5:query-A(2)" (Staged.stage (fun () -> Query_eval.eval_path a2 query));
    Test.make ~name:"fig4/5:query-data-naive"
      (Staged.stage (fun () ->
           Dkindex_pathexpr.Matcher.eval_label_path g query ~cost:(Cost.create ())));
    (* Regex engine comparison: NFA bitsets vs determinized automaton. *)
    (let pool = Dkindex_graph.Data_graph.pool g in
     let expr = Dkindex_pathexpr.Path_parser.parse "open_auction.(bidder|seller).personref?" in
     let nfa = Dkindex_pathexpr.Nfa.compile pool expr in
     Test.make ~name:"substrate:regex-NFA-eval"
       (Staged.stage (fun () -> Dkindex_pathexpr.Matcher.eval_nfa g nfa ~cost:(Cost.create ()))));
    (let pool = Dkindex_graph.Data_graph.pool g in
     let expr = Dkindex_pathexpr.Path_parser.parse "open_auction.(bidder|seller).personref?" in
     let dfa = Dkindex_pathexpr.Dfa.compile pool expr in
     Test.make ~name:"substrate:regex-DFA-eval"
       (Staged.stage (fun () -> Dkindex_pathexpr.Matcher.eval_dfa g dfa ~cost:(Cost.create ()))));
    (* Table 1: the read-only core of the D(k) edge update. *)
    Test.make ~name:"table1:update-local-similarity"
      (Staged.stage (fun () -> Dk_update.update_local_similarity dk ~u:iu ~v:iv));
    (* Table 1: full edge-addition updates on a fresh index per batch. *)
    Test.make_with_resource ~name:"table1:D(k)-add-edge" Test.multiple
      ~allocate:(fun () -> Dk_index.build (Data_graph.copy g) ~reqs)
      ~free:ignore
      (Staged.stage (fun idx -> Dk_update.add_edge idx u v));
    Test.make_with_resource ~name:"table1:A(2)-add-edge" Test.multiple
      ~allocate:(fun () -> A_k_index.build (Data_graph.copy g) ~k:2)
      ~free:ignore
      (Staged.stage (fun idx -> Ak_update.add_edge idx ~k:2 u v));
    (* ExtA/ExtB: tuning. *)
    Test.make ~name:"extB:demote-rebuild" (Staged.stage (fun () -> Dk_index.rebuild dk ~reqs));
    (* Figure 1/0-level substrate: bisimulation refinement. *)
    Test.make ~name:"substrate:label-split" (Staged.stage (fun () -> Label_split.build g));
    Test.make ~name:"substrate:1-index" (Staged.stage (fun () -> One_index.build g));
    Test.make ~name:"substrate:1-index-paige-tarjan"
      (Staged.stage (fun () -> Paige_tarjan.build_one_index g));
    (* Deep chains are the hash-refinement worst case (O(m d) rounds). *)
    (let deep =
       let b = Dkindex_graph.Builder.create () in
       let node = ref (Dkindex_graph.Builder.root b) in
       for _ = 1 to 2000 do
         node := Dkindex_graph.Builder.add_child b ~parent:!node "a"
       done;
       Dkindex_graph.Builder.build b
     in
     Test.make ~name:"substrate:deep-chain-hash-refinement"
       (Staged.stage (fun () -> One_index.build deep)));
    (let deep =
       let b = Dkindex_graph.Builder.create () in
       let node = ref (Dkindex_graph.Builder.root b) in
       for _ = 1 to 2000 do
         node := Dkindex_graph.Builder.add_child b ~parent:!node "a"
       done;
       Dkindex_graph.Builder.build b
     in
     Test.make ~name:"substrate:deep-chain-paige-tarjan"
       (Staged.stage (fun () -> Paige_tarjan.build_one_index deep)));
  ]

let run () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"dkindex" (tests ()))
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n== Bechamel micro-benchmarks (monotonic clock) ==\n";
  Printf.printf "  %-44s %16s %8s\n  %s\n" "benchmark" "time/run" "r^2"
    (String.make 72 '-');
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some [ e ] -> e | Some _ | None -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      let pretty =
        if estimate >= 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
        else if estimate >= 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
        else if estimate >= 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
        else Printf.sprintf "%.0f ns" estimate
      in
      Printf.printf "  %-44s %16s %8.3f\n" name pretty r2)
    rows
