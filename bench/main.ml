(* Reproduction harness: regenerates every table and figure of the
   paper's Section 6, plus the extension experiments listed in
   DESIGN.md.  `--bechamel` additionally runs micro-benchmarks. *)

let xmark_scale = ref 300
let nasa_scale = ref 250
let n_queries = ref 100
let n_updates = ref 100
let seed = ref 2003
let run_bechamel = ref false
let quick = ref false

let spec =
  [
    ("--xmark-scale", Arg.Set_int xmark_scale, "N  XMark scale, items (default 300)");
    ("--nasa-scale", Arg.Set_int nasa_scale, "N  NASA scale, datasets (default 250)");
    ("--queries", Arg.Set_int n_queries, "N  workload size (default 100, as the paper)");
    ("--updates", Arg.Set_int n_updates, "N  edge additions (default 100, as the paper)");
    ("--seed", Arg.Set_int seed, "N  master random seed (default 2003)");
    ("--bechamel", Arg.Set run_bechamel, "   also run Bechamel micro-benchmarks");
    ("--quick", Arg.Set quick, "   small scales for a fast smoke run");
  ]

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "bench/main.exe";
  if !quick then begin
    xmark_scale := 60;
    nasa_scale := 50;
    n_updates := 30
  end;
  Printf.printf "D(k)-index reproduction benchmarks\n";
  Printf.printf "scales: xmark=%d nasa=%d, queries=%d, updates=%d, seed=%d\n" !xmark_scale
    !nasa_scale !n_queries !n_updates !seed;
  let xmark = Experiments.make_xmark ~scale:!xmark_scale in
  let nasa = Experiments.make_nasa ~scale:!nasa_scale in
  List.iter
    (fun ds ->
      Printf.printf "%s data graph: %s\n" ds.Experiments.ds_name
        (Format.asprintf "%a" Dkindex_graph.Data_graph.pp_stats
           (Dkindex_graph.Data_graph.stats ds.Experiments.graph)))
    [ xmark; nasa ];
  (* Before updating (Figures 4 and 5). *)
  let comp_x = Experiments.build_competitors xmark ~n_queries:!n_queries ~seed:!seed in
  let comp_n = Experiments.build_competitors nasa ~n_queries:!n_queries ~seed:(!seed + 1) in
  Experiments.figure_before_updating ~fig:4 xmark comp_x;
  Experiments.figure_before_updating ~fig:5 nasa comp_n;
  (* Table 1: update efficiency.  The same competitors keep their
     updated state for Figures 6 and 7. *)
  let timing_x = Experiments.update_timings xmark comp_x ~n_updates:!n_updates ~seed:(!seed + 2) in
  let timing_n = Experiments.update_timings nasa comp_n ~n_updates:!n_updates ~seed:(!seed + 3) in
  Experiments.print_table1 ~n_updates:!n_updates timing_x timing_n;
  (* After updating (Figures 6 and 7). *)
  Experiments.figure_after_updating ~fig:6 xmark comp_x;
  Experiments.figure_after_updating ~fig:7 nasa comp_n;
  (* Extensions. *)
  Experiments.ext_promote xmark comp_x;
  Experiments.ext_promote nasa comp_n;
  Experiments.ext_demote xmark comp_x;
  Experiments.ext_demote nasa comp_n;
  Experiments.ext_subgraph xmark ~seed:(!seed + 4);
  Experiments.ext_sizes xmark;
  Experiments.ext_sizes nasa;
  Experiments.ext_sizes (Experiments.make_treebank ~scale:(!xmark_scale / 2));
  Experiments.ext_mining_ablation xmark comp_x;
  Experiments.ext_fb xmark;
  Experiments.ext_fb nasa;
  Experiments.ext_scaling ~name:"Xmark"
    ~make_graph:(fun ~scale -> Dkindex_datagen.Xmark.graph ~scale ())
    ~scales:(if !quick then [ 25; 50; 100 ] else [ 50; 100; 200; 400 ]);
  Experiments.ext_strategy xmark comp_x;
  Experiments.ext_strategy nasa comp_n;
  Experiments.ext_cracking xmark ~seed:(!seed + 5);
  Experiments.ext_cracking nasa ~seed:(!seed + 6);
  Experiments.ext_loading ~scale:(if !quick then 100 else 400);
  if !run_bechamel then Micro.run ()
