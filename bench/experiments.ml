(* Drivers for the paper's experiments (Section 6).  Each function
   prints the rows of one table or figure; bench/main.ml orchestrates.

   Figures 4-7 use the machine-independent cost model (nodes visited);
   Table 1 and the extension experiments report wall-clock time on the
   current host, where only the ordering and growth shape are expected
   to match the paper. *)

open Dkindex_graph
open Dkindex_core
module Cost = Dkindex_pathexpr.Cost
module Prng = Dkindex_datagen.Prng
module Query_gen = Dkindex_workload.Query_gen
module Miner = Dkindex_workload.Miner

type dataset = {
  ds_name : string;
  graph : Data_graph.t;
  ref_pairs : (string * string) list;
}

let make_xmark ~scale =
  { ds_name = "Xmark"; graph = Dkindex_datagen.Xmark.graph ~scale (); ref_pairs = Dkindex_datagen.Xmark.ref_pairs }

let make_nasa ~scale =
  { ds_name = "Nasa"; graph = Dkindex_datagen.Nasa.graph ~scale (); ref_pairs = Dkindex_datagen.Nasa.ref_pairs }

let make_treebank ~scale =
  {
    ds_name = "Treebank";
    graph = Dkindex_datagen.Treebank.graph ~scale ();
    ref_pairs = Dkindex_datagen.Treebank.ref_pairs;
  }

let time_of f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, (Unix.gettimeofday () -. t0) *. 1000.0)

(* Average query cost (nodes visited) over a workload. *)
let avg_cost idx queries =
  let total =
    List.fold_left
      (fun acc q -> acc + Cost.total (Query_eval.eval_path idx q).Query_eval.cost)
      0 queries
  in
  float_of_int total /. float_of_int (max 1 (List.length queries))

let hline = String.make 66 '-'

let print_perf_row name idx queries =
  Printf.printf "  %-8s %12d %18.1f\n" name (Index_graph.n_nodes idx) (avg_cost idx queries)

(* The random ID/IDREF edge insertions of Section 6.2: a (source label,
   target label) pair from the DTD, one random node from each group. *)
let random_update_edges ds ~count ~seed =
  let rng = Prng.create ~seed in
  let g = ds.graph in
  let pool = Data_graph.pool g in
  let groups =
    List.filter_map
      (fun (src, dst) ->
        match (Label.Pool.find_opt pool src, Label.Pool.find_opt pool dst) with
        | Some ls, Some ld -> (
          match (Data_graph.nodes_with_label g ls, Data_graph.nodes_with_label g ld) with
          | [], _ | _, [] -> None
          | srcs, dsts -> Some (Array.of_list srcs, Array.of_list dsts))
        | _, _ -> None)
      ds.ref_pairs
  in
  if groups = [] then invalid_arg "random_update_edges: no usable ID/IDREF pair";
  let groups = Array.of_list groups in
  List.init count (fun _ ->
      let srcs, dsts = Prng.choose rng groups in
      let u = Prng.choose rng srcs in
      let v = Prng.choose rng dsts in
      (u, v))

(* Build every compared index over its own copy of the data so updates
   stay independent. *)
type competitors = {
  aks : (int * Index_graph.t) list;  (* k, A(k) over a private copy *)
  dk : Index_graph.t;
  reqs : Dk_index.requirements;
  queries : Label.t array list;
}

let build_competitors ?(kmax = 4) ds ~n_queries ~seed =
  let queries = Query_gen.generate ~seed ~count:n_queries ds.graph in
  let reqs = Miner.mine ds.graph queries in
  let aks =
    List.init (kmax + 1) (fun k -> (k, A_k_index.build (Data_graph.copy ds.graph) ~k))
  in
  let dk = Dk_index.build (Data_graph.copy ds.graph) ~reqs in
  { aks; dk; reqs; queries }

(* Figures 4 and 5. *)
let figure_before_updating ~fig ds comp =
  Printf.printf "\n== Figure %d: evaluation performance before updating (%s) ==\n" fig
    ds.ds_name;
  Printf.printf "  %-8s %12s %18s\n  %s\n" "index" "size(nodes)" "avg cost(visits)" hline;
  List.iter (fun (k, ak) -> print_perf_row (Printf.sprintf "A(%d)" k) ak comp.queries) comp.aks;
  print_perf_row "D(k)" comp.dk comp.queries

(* Table 1 (applied to one dataset; main prints both columns). *)
type update_timing = { per_index : (string * float) list }

let update_timings ds comp ~n_updates ~seed =
  let edges = random_update_edges ds ~count:n_updates ~seed in
  let time_updates name apply = (name, snd (time_of (fun () -> List.iter apply edges))) in
  let ak_rows =
    List.filter_map
      (fun (k, ak) ->
        if k = 0 then None  (* A(0) never changes under edge addition *)
        else Some (time_updates (Printf.sprintf "A(%d)" k) (fun (u, v) -> Ak_update.add_edge ak ~k u v)))
      comp.aks
  in
  let dk_row = time_updates "D(k)" (fun (u, v) -> Dk_update.add_edge comp.dk u v) in
  { per_index = ak_rows @ [ dk_row ] }

let print_table1 ~n_updates xm nasa =
  Printf.printf "\n== Table 1: update efficiency, %d edge additions (total ms) ==\n" n_updates;
  Printf.printf "  %-8s %12s %12s\n  %s\n" "index" "Xmark" "Nasa" hline;
  List.iter2
    (fun (name, ms_x) (name', ms_n) ->
      assert (String.equal name name');
      Printf.printf "  %-8s %12.1f %12.1f\n" name ms_x ms_n)
    xm.per_index nasa.per_index

(* Figures 6 and 7: the competitors of Table 1 after their updates. *)
let figure_after_updating ~fig ds comp =
  Printf.printf "\n== Figure %d: evaluation performance after updating (%s) ==\n" fig
    ds.ds_name;
  Printf.printf "  %-8s %12s %18s\n  %s\n" "index" "size(nodes)" "avg cost(visits)" hline;
  List.iter (fun (k, ak) -> print_perf_row (Printf.sprintf "A(%d)" k) ak comp.queries) comp.aks;
  print_perf_row "D(k)" comp.dk comp.queries

(* Extension A: the promoting process (deferred to the paper's "full
   version"): promote the updated D(k)-index back to its mined
   requirements and re-measure. *)
let ext_promote ds comp =
  Printf.printf "\n== ExtA: promoting after updates (%s) ==\n" ds.ds_name;
  Printf.printf "  %-22s %12s %18s\n  %s\n" "state" "size(nodes)" "avg cost(visits)" hline;
  Printf.printf "  %-22s %12d %18.1f\n" "D(k) after updates" (Index_graph.n_nodes comp.dk)
    (avg_cost comp.dk comp.queries);
  let _, ms = time_of (fun () -> Dk_tune.promote_to_requirements comp.dk) in
  Printf.printf "  %-22s %12d %18.1f   (promote took %.1f ms)\n" "D(k) after promoting"
    (Index_graph.n_nodes comp.dk) (avg_cost comp.dk comp.queries) ms

(* Extension B: the demoting process: halve all requirements. *)
let ext_demote ds comp =
  Printf.printf "\n== ExtB: demoting (%s) ==\n" ds.ds_name;
  let halved = List.map (fun (l, k) -> (l, k / 2)) comp.reqs in
  let demoted, ms = time_of (fun () -> Dk_tune.demote comp.dk ~reqs:halved) in
  Printf.printf "  %-22s %12s %18s\n  %s\n" "state" "size(nodes)" "avg cost(visits)" hline;
  Printf.printf "  %-22s %12d %18.1f\n" "D(k) full reqs" (Index_graph.n_nodes comp.dk)
    (avg_cost comp.dk comp.queries);
  Printf.printf "  %-22s %12d %18.1f   (demote took %.1f ms)\n" "D(k) halved reqs"
    (Index_graph.n_nodes demoted) (avg_cost demoted comp.queries) ms

(* Extension C: subgraph addition (Algorithm 3) vs a scratch rebuild. *)
let ext_subgraph ds ~seed =
  Printf.printf "\n== ExtC: subgraph addition (%s) ==\n" ds.ds_name;
  let queries = Query_gen.generate ~seed ds.graph in
  let reqs = Miner.mine ds.graph queries in
  let idx = Dk_index.build (Data_graph.copy ds.graph) ~reqs in
  let h = Dkindex_datagen.Random_graph.graph ~seed:(seed + 7) ~nodes:500 ~n_labels:8 ~extra_edges:40 () in
  let (g', incremental), ms_inc = time_of (fun () -> Dk_update.add_subgraph idx h ~reqs) in
  let scratch, ms_scratch = time_of (fun () -> Dk_index.build g' ~reqs) in
  let equal =
    Index_graph.partition_signature incremental = Index_graph.partition_signature scratch
  in
  Printf.printf "  incremental (Alg 3): %.1f ms;  from scratch: %.1f ms;  identical: %b\n"
    ms_inc ms_scratch equal

(* Extension D: the size landscape across all summary structures. *)
let ext_sizes ds =
  Printf.printf "\n== ExtD: index sizes (%s, %d data nodes) ==\n" ds.ds_name
    (Data_graph.n_nodes ds.graph);
  let g = ds.graph in
  Printf.printf "  %-12s %12s\n  %s\n" "index" "size(nodes)" hline;
  Printf.printf "  %-12s %12d\n" "label-split" (Index_graph.n_nodes (Label_split.build g));
  List.iter
    (fun k ->
      Printf.printf "  %-12s %12d\n"
        (Printf.sprintf "A(%d)" k)
        (Index_graph.n_nodes (A_k_index.build g ~k)))
    [ 1; 2; 3; 4 ];
  Printf.printf "  %-12s %12d\n" "1-index" (Index_graph.n_nodes (One_index.build g));
  (match Dataguide.build ~max_states:200_000 g with
  | dg -> Printf.printf "  %-12s %12d\n" "DataGuide" (Dataguide.n_states dg)
  | exception Dataguide.Too_large n ->
    Printf.printf "  %-12s %12s\n" "DataGuide" (Printf.sprintf ">%d (aborted)" n));
  let queries = Query_gen.generate g in
  let reqs = Miner.mine g queries in
  Printf.printf "  %-12s %12d\n" "D(k)" (Index_graph.n_nodes (Dk_index.build g ~reqs))

(* Ablation: quantile-based mining (DESIGN.md's query-load sensitivity
   study): how much size does covering only part of the workload save,
   and what validation cost does the tail then pay? *)
let ext_mining_ablation ds comp =
  Printf.printf "\n== ExtE: requirement-mining ablation (%s) ==\n" ds.ds_name;
  Printf.printf "  %-22s %12s %18s\n  %s\n" "mining rule" "size(nodes)" "avg cost(visits)" hline;
  List.iter
    (fun q ->
      let reqs = Miner.mine_quantile ds.graph ~quantile:q comp.queries in
      let idx = Dk_index.build ds.graph ~reqs in
      Printf.printf "  %-22s %12d %18.1f\n"
        (Printf.sprintf "quantile %.2f" q)
        (Index_graph.n_nodes idx) (avg_cost idx comp.queries))
    [ 0.5; 0.75; 0.9; 1.0 ]

(* ExtF: branching path queries — the F&B-index (future work of the
   paper) vs validating through the 1-index. *)
let ext_fb ds =
  Printf.printf "\n== ExtF: branching path queries (%s) ==\n" ds.ds_name;
  let g = ds.graph in
  let one, ms_one = time_of (fun () -> One_index.build g) in
  let fb, ms_fb = time_of (fun () -> Fb_index.build g) in
  Printf.printf "  1-index: %d nodes (%.1f ms);  F&B-index: %d nodes (%.1f ms)\n"
    (Index_graph.n_nodes one) ms_one (Index_graph.n_nodes fb) ms_fb;
  let patterns =
    if String.equal ds.ds_name "Xmark" then
      [
        "//open_auction[./bidder]/itemref";
        "//person[./watches][./address]/address/city";
        "//item[./incategory][.//mail]/name";
      ]
    else
      [
        "//dataset[./history]/title";
        "//dataset[.//revision]//creator";
        "//tableHead[./tableLinks]/fields/field/name";
      ]
  in
  Printf.printf "  %-46s %8s %16s %12s\n  %s\n" "pattern" "answers" "1-idx+validate"
    "F&B direct" hline;
  List.iter
    (fun src ->
      let pattern = Dkindex_pathexpr.Tree_pattern.parse src in
      let validated = Query_eval.eval_pattern one pattern in
      let direct = Query_eval.eval_pattern ~validate:false fb pattern in
      assert (validated.Query_eval.nodes = direct.Query_eval.nodes);
      Printf.printf "  %-46s %8d %16d %12d\n" src
        (List.length direct.Query_eval.nodes)
        (Cost.total validated.Query_eval.cost)
        (Cost.total direct.Query_eval.cost))
    patterns

(* ExtG: construction-cost scaling — the O(km) claim of Section 4.2. *)
let ext_scaling ~make_graph ~name ~scales =
  Printf.printf "\n== ExtG: construction time scaling (%s) ==\n" name;
  Printf.printf "  %-8s %10s %12s %12s %12s %12s\n  %s\n" "scale" "nodes" "A(2) ms"
    "A(4) ms" "D(k) ms" "1-idx ms" hline;
  List.iter
    (fun scale ->
      let g : Data_graph.t = make_graph ~scale in
      let queries = Query_gen.generate ~seed:scale g in
      let reqs = Miner.mine g queries in
      let _, a2 = time_of (fun () -> A_k_index.build g ~k:2) in
      let _, a4 = time_of (fun () -> A_k_index.build g ~k:4) in
      let _, dk = time_of (fun () -> Dk_index.build g ~reqs) in
      let _, one = time_of (fun () -> One_index.build g) in
      Printf.printf "  %-8d %10d %12.1f %12.1f %12.1f %12.1f\n" scale
        (Data_graph.n_nodes g) a2 a4 dk one)
    scales

(* ExtH: bulk-loading — DOM parse + convert vs streaming SAX load. *)
let ext_loading ~scale =
  Printf.printf "\n== ExtH: bulk loading an XMark document (scale %d) ==\n" scale;
  let doc = Dkindex_datagen.Xmark.doc ~scale () in
  let text = Dkindex_xml.Xml_writer.doc_to_string doc in
  let config = Dkindex_datagen.Xmark.config in
  let (dom : Dkindex_xml.Xml_to_graph.result), ms_dom =
    time_of (fun () ->
        Dkindex_xml.Xml_to_graph.convert ~config (Dkindex_xml.Xml_parser.parse_string text))
  in
  let sax, ms_sax =
    time_of (fun () ->
        Dkindex_xml.Xml_to_graph.convert_events ~config (Dkindex_xml.Xml_sax.of_string text))
  in
  assert (
    Dkindex_graph.Serial.to_string dom.Dkindex_xml.Xml_to_graph.graph
    = Dkindex_graph.Serial.to_string sax.Dkindex_xml.Xml_to_graph.graph);
  Printf.printf "  document: %.1f MB;  DOM parse+convert: %.1f ms;  SAX stream: %.1f ms\n"
    (float_of_int (String.length text) /. 1e6)
    ms_dom ms_sax


(* ExtI: evaluation strategy — forward (the paper's) vs backward vs
   auto, over the same workload. *)
let ext_strategy ds comp =
  Printf.printf "\n== ExtI: evaluation strategy on the D(k)-index (%s) ==\n" ds.ds_name;
  let avg strategy =
    let total =
      List.fold_left
        (fun acc q ->
          acc + Cost.total (Query_eval.eval_path ~strategy comp.dk q).Query_eval.cost)
        0 comp.queries
    in
    float_of_int total /. float_of_int (max 1 (List.length comp.queries))
  in
  Printf.printf "  %-10s %18s\n  %s\n" "strategy" "avg cost(visits)" hline;
  Printf.printf "  %-10s %18.1f\n" "forward" (avg `Forward);
  Printf.printf "  %-10s %18.1f\n" "backward" (avg `Backward);
  Printf.printf "  %-10s %18.1f\n" "auto" (avg `Auto)

(* ExtJ: query-driven cracking — the paper's closing future-work remark
   ("combine update and evaluation").  A cold label-split index serves
   the workload twice, with and without reinvesting validation work;
   compare against the offline-mined D(k). *)
let ext_cracking ds ~seed =
  Printf.printf "\n== ExtJ: query-driven cracking (%s) ==\n" ds.ds_name;
  let queries = Query_gen.generate ~seed ds.graph in
  let total eval idx qs =
    List.fold_left (fun acc q -> acc + Cost.total (eval idx q).Query_eval.cost) 0 qs
  in
  let static = Label_split.build ds.graph in
  let cracked = Label_split.build ds.graph in
  let pass1_static = total Query_eval.eval_path static queries in
  let pass1_cracked = total Cracking.eval_path cracked queries in
  let pass2_static = total Query_eval.eval_path static queries in
  let pass2_cracked = total Cracking.eval_path cracked queries in
  let reqs = Miner.mine ds.graph queries in
  let offline = Dk_index.build ds.graph ~reqs in
  let pass_offline = total Query_eval.eval_path offline queries in
  Printf.printf "  %-26s %14s %14s %10s\n  %s\n" "configuration" "pass 1 cost" "pass 2 cost"
    "size" hline;
  Printf.printf "  %-26s %14d %14d %10d\n" "label-split, static" pass1_static pass2_static
    (Index_graph.n_nodes static);
  Printf.printf "  %-26s %14d %14d %10d\n" "label-split + cracking" pass1_cracked pass2_cracked
    (Index_graph.n_nodes cracked);
  Printf.printf "  %-26s %14d %14d %10d\n" "offline-mined D(k)" pass_offline pass_offline
    (Index_graph.n_nodes offline)
