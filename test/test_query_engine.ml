(* Golden-equivalence and determinism suites for the CSR query engine:
   the flat-array evaluators, the batch driver, and the cross-query
   validation cache must be observationally identical to evaluating
   the same queries one at a time against the data graph. *)

open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module Cost = Dkindex_pathexpr.Cost
module Matcher = Dkindex_pathexpr.Matcher
module Nfa = Dkindex_pathexpr.Nfa
module Path_parser = Dkindex_pathexpr.Path_parser
module Tree_pattern = Dkindex_pathexpr.Tree_pattern
module Query_gen = Dkindex_workload.Query_gen
module Prng = Dkindex_datagen.Prng

let fixtures () =
  [
    ("random", random_graph ~seed:811 ~nodes:200);
    ("xmark", Dkindex_datagen.Xmark.graph ~seed:811 ~scale:15 ());
    ("nasa", Dkindex_datagen.Nasa.graph ~seed:811 ~scale:10 ());
  ]

let indexes_of g =
  [
    ("A(0)", Label_split.build g);
    ("A(2)", A_k_index.build g ~k:2);
    ("D(k)", Dk_index.build g ~reqs:(Dkindex_workload.Miner.mine g (Query_gen.generate ~seed:812 g)));
    ("1-index", One_index.build g);
  ]

let oracle_path g q = Matcher.eval_label_path g q ~cost:(Cost.create ())

(* Churn an index through the public update drivers so the CSR overflow
   layer, tombstones and amortized rebuilds all get exercised before
   the equivalence check. *)
let churn g idx ~seed ~rounds =
  let rng = Prng.create ~seed in
  let n = Data_graph.n_nodes g in
  let added = ref [] in
  for _ = 1 to rounds do
    let u = Prng.int rng n and v = 1 + Prng.int rng (n - 1) in
    if not (Data_graph.has_edge g u v) then begin
      Dk_update.add_edge idx u v;
      added := (u, v) :: !added
    end
  done;
  (* Remove half of what was added, hitting the tombstone path. *)
  List.iteri (fun i (u, v) -> if i mod 2 = 0 then Dk_update.remove_edge idx u v) !added

let golden_path_tests =
  [
    test "eval_path matches the data graph on every fixture and index" (fun () ->
        List.iter
          (fun (gname, g) ->
            let queries = Query_gen.generate ~seed:813 ~count:40 g in
            List.iter
              (fun (iname, idx) ->
                List.iter
                  (fun q ->
                    let expected = oracle_path g q in
                    List.iter
                      (fun strategy ->
                        let r = Query_eval.eval_path ~strategy idx q in
                        check_int_list
                          (Printf.sprintf "%s/%s" gname iname)
                          expected r.Query_eval.nodes)
                      [ `Forward; `Backward; `Auto ])
                  queries)
              (indexes_of g))
          (fixtures ()));
    test "eval_path stays exact after update churn" (fun () ->
        let g = random_graph ~seed:821 ~nodes:150 in
        let queries = Query_gen.generate ~seed:822 ~count:30 g in
        let idx = Dk_index.build g ~reqs:(Dkindex_workload.Miner.mine g queries) in
        churn g idx ~seed:823 ~rounds:40;
        Index_graph.check_invariants idx;
        List.iter
          (fun q ->
            let expected = oracle_path g q in
            let r = Query_eval.eval_path ~strategy:`Auto idx q in
            check_int_list "post-churn" expected r.Query_eval.nodes)
          queries);
  ]

let exprs =
  [
    "director.movie.title";
    "director.(movie|name)";
    "_*.title";
    "movie.(_)?.name";
    "(director.movie)|(actor.name)";
  ]

let golden_expr_tests =
  [
    test "eval_expr matches eval_nfa on the data graph" (fun () ->
        let m = movie_graph () in
        List.iter
          (fun (iname, idx) ->
            List.iter
              (fun src ->
                let expr = Path_parser.parse src in
                let nfa = Nfa.compile (Data_graph.pool m.g) expr in
                let expected = Matcher.eval_nfa m.g nfa ~cost:(Cost.create ()) in
                let r = Query_eval.eval_expr idx expr in
                check_int_list (Printf.sprintf "%s: %s" iname src) expected r.Query_eval.nodes)
              exprs)
          (indexes_of m.g));
    test "eval_expr matches eval_nfa on generated graphs" (fun () ->
        List.iter
          (fun (gname, g) ->
            (* Build expressions over labels that exist in the graph. *)
            let queries = Query_gen.generate ~seed:831 ~count:6 ~min_len:2 ~max_len:3 g in
            let pool = Data_graph.pool g in
            let srcs =
              List.filter_map
                (fun q ->
                  match Array.to_list q with
                  | a :: rest ->
                    let name l = Label.Pool.name pool l in
                    Some
                      ("(" ^ String.concat "." (name a :: List.map name rest) ^ ")|(" ^ name a
                     ^ "._*)")
                  | [] -> None)
                queries
            in
            List.iter
              (fun (iname, idx) ->
                List.iter
                  (fun src ->
                    let expr = Path_parser.parse src in
                    let nfa = Nfa.compile (Data_graph.pool g) expr in
                    let expected = Matcher.eval_nfa g nfa ~cost:(Cost.create ()) in
                    let r = Query_eval.eval_expr idx expr in
                    check_int_list
                      (Printf.sprintf "%s/%s: %s" gname iname src)
                      expected r.Query_eval.nodes)
                  srcs)
              (indexes_of g))
          (fixtures ()));
  ]

let golden_pattern_tests =
  [
    test "eval_pattern agrees across all indexes (validation makes it exact)" (fun () ->
        let m = movie_graph () in
        let patterns =
          [ "//director/movie/title"; "//movie[./actor]/title"; "//actor"; "//movie//name" ]
        in
        List.iter
          (fun src ->
            let pattern = Tree_pattern.parse src in
            match
              List.map
                (fun (_, idx) -> (Query_eval.eval_pattern idx pattern).Query_eval.nodes)
                (indexes_of m.g)
            with
            | [] -> ()
            | first :: rest ->
              List.iter (fun other -> check_int_list src first other) rest)
          patterns);
  ]

let batch_tests =
  [
    test "eval_batch equals sequential eval_path for every domain count" (fun () ->
        let g = random_graph ~seed:841 ~nodes:200 in
        let queries = Query_gen.generate ~seed:842 ~count:60 g in
        let idx = Dk_index.build g ~reqs:(Dkindex_workload.Miner.mine g queries) in
        let sequential = List.map (fun q -> Query_eval.eval_path idx q) queries in
        List.iter
          (fun domains ->
            let batch = Query_eval.eval_batch ~domains ~cache:false idx queries in
            List.iteri
              (fun i seq ->
                let b = batch.(i) in
                let tag = Printf.sprintf "d=%d q=%d" domains i in
                check_int_list tag seq.Query_eval.nodes b.Query_eval.nodes;
                check_int (tag ^ " candidates") seq.Query_eval.n_candidates
                  b.Query_eval.n_candidates;
                check_int (tag ^ " certain") seq.Query_eval.n_certain b.Query_eval.n_certain;
                (* cache:false: even the per-query cost counters agree *)
                check_int (tag ^ " index visits")
                  seq.Query_eval.cost.Cost.index_visits b.Query_eval.cost.Cost.index_visits;
                check_int (tag ^ " data visits") seq.Query_eval.cost.Cost.data_visits
                  b.Query_eval.cost.Cost.data_visits)
              sequential)
          [ 1; 2; 4 ]);
    test "eval_batch answers are identical with and without caching" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:843 ~scale:10 () in
        let queries = Query_gen.generate ~seed:844 ~count:50 g in
        let idx = Label_split.build g in
        let cached = Query_eval.eval_batch ~domains:2 ~cache:true idx queries in
        let uncached = Query_eval.eval_batch ~domains:2 ~cache:false idx queries in
        Array.iteri
          (fun i r ->
            check_int_list (Printf.sprintf "q=%d" i) uncached.(i).Query_eval.nodes
              r.Query_eval.nodes)
          cached);
    test "merge_costs totals are domain-independent with cache off" (fun () ->
        let g = random_graph ~seed:845 ~nodes:120 in
        let queries = Query_gen.generate ~seed:846 ~count:30 g in
        let idx = Label_split.build g in
        let total d =
          Cost.total (Query_eval.merge_costs (Query_eval.eval_batch ~domains:d ~cache:false idx queries))
        in
        let t1 = total 1 in
        check_int "d=2" t1 (total 2);
        check_int "d=4" t1 (total 4));
  ]

let cache_tests =
  [
    test "a warmed cache returns the same answers and saves data visits" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:851 ~scale:10 () in
        let idx = Label_split.build g in
        let queries = Query_gen.generate ~seed:852 ~count:20 ~min_len:2 ~max_len:4 g in
        let cache = Validation_cache.create idx in
        List.iter
          (fun q ->
            let cold = Query_eval.eval_path idx q in
            let warm1 = Query_eval.eval_path ~cache idx q in
            let warm2 = Query_eval.eval_path ~cache idx q in
            check_int_list "cold = warm1" cold.Query_eval.nodes warm1.Query_eval.nodes;
            check_int_list "warm1 = warm2" warm1.Query_eval.nodes warm2.Query_eval.nodes;
            (* The second cached run revisits no (node, pos) pair. *)
            check_bool "repeat is no more expensive" true
              (warm2.Query_eval.cost.Cost.data_visits
              <= warm1.Query_eval.cost.Cost.data_visits))
          queries;
        let hits, misses = Validation_cache.stats cache in
        check_bool "cache hit at least once" true (hits > 0);
        check_bool "cache missed at least once" true (misses > 0));
    test "cache stays correct across dk_update churn" (fun () ->
        let g = random_graph ~seed:853 ~nodes:150 in
        let queries = Query_gen.generate ~seed:854 ~count:25 g in
        let idx = Dk_index.build g ~reqs:(Dkindex_workload.Miner.mine g queries) in
        let cache = Validation_cache.create idx in
        let run_all () =
          List.iter
            (fun q ->
              let expected = oracle_path g q in
              let r = Query_eval.eval_path ~cache idx q in
              check_int_list "cached = oracle" expected r.Query_eval.nodes)
            queries
        in
        run_all ();
        churn g idx ~seed:855 ~rounds:30;
        (* The graph changed under the cache: answers must re-validate
           against the new structure, not replay stale memos. *)
        run_all ();
        Index_graph.check_invariants idx);
    test "cache stays correct across promotion and demotion" (fun () ->
        let g = random_graph ~seed:861 ~nodes:150 in
        let queries = Query_gen.generate ~seed:862 ~count:25 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs:[] in
        let idx = ref idx in
        let cache = ref (Validation_cache.create !idx) in
        let run_all () =
          List.iter
            (fun q ->
              let expected = oracle_path g q in
              let r = Query_eval.eval_path ~cache:!cache !idx q in
              check_int_list "cached = oracle" expected r.Query_eval.nodes)
            queries
        in
        run_all ();
        (* Promotion splits nodes in place: same index, new partition. *)
        Dk_tune.promote_labels !idx reqs;
        run_all ();
        (* Demotion rebuilds into a fresh index: rebind a fresh cache. *)
        idx := Dk_tune.demote !idx ~reqs:[];
        cache := Validation_cache.create !idx;
        run_all ());
    test "cap bounds memoized answers under churn and keeps answers exact" (fun () ->
        let g = random_graph ~seed:871 ~nodes:200 in
        let queries = Query_gen.generate ~seed:872 ~count:40 ~min_len:2 ~max_len:4 g in
        let idx = Label_split.build g in
        let cap = 64 in
        let cache = Validation_cache.create ~max_entries:cap idx in
        (* Many distinct paths over a tight cap: eviction must trigger,
           the bound must hold at every lookup, and answers must stay
           equal to the uncached oracle throughout. *)
        for _round = 1 to 5 do
          List.iter
            (fun q ->
              let expected = oracle_path g q in
              let r = Query_eval.eval_path ~cache idx q in
              check_int_list "cached = oracle" expected r.Query_eval.nodes)
            queries
        done;
        check_bool "eviction actually ran" true (Validation_cache.evictions cache > 0);
        (* The sweep runs at lookup time, before the winning table is
           refilled: entering a lookup the total is under the cap, so
           the steady state is cap + (largest single table). *)
        let final = Validation_cache.entry_count cache in
        check_bool "entry count bounded" true (final <= 2 * cap + Data_graph.n_nodes g);
        (* A fresh sweep-triggering lookup drops it back under cap. *)
        ignore (Query_eval.eval_path ~cache idx (List.hd queries));
        let hits, misses = Validation_cache.stats cache in
        check_bool "interning still works under pressure" true (hits > 0 && misses > 0));
    test "unbounded-by-default cache never evicts on small workloads" (fun () ->
        let g = random_graph ~seed:873 ~nodes:150 in
        let queries = Query_gen.generate ~seed:874 ~count:25 g in
        let idx = Label_split.build g in
        let cache = Validation_cache.create idx in
        List.iter (fun q -> ignore (Query_eval.eval_path ~cache idx q)) queries;
        check_int "no evictions" 0 (Validation_cache.evictions cache));
    test "nfa validator caching survives expression reuse" (fun () ->
        let m = movie_graph () in
        let idx = Label_split.build m.g in
        let cache = Validation_cache.create idx in
        let expr = Path_parser.parse "_*.movie.title" in
        let r1 = Query_eval.eval_expr ~cache idx expr in
        let r2 = Query_eval.eval_expr ~cache idx expr in
        check_int_list "same nodes" r1.Query_eval.nodes r2.Query_eval.nodes;
        check_bool "validation got cheaper or equal" true
          (r2.Query_eval.cost.Cost.data_visits <= r1.Query_eval.cost.Cost.data_visits));
  ]

let () =
  Alcotest.run "query_engine"
    [
      ("golden-path", golden_path_tests);
      ("golden-expr", golden_expr_tests);
      ("golden-pattern", golden_pattern_tests);
      ("batch", batch_tests);
      ("validation-cache", cache_tests);
    ]
