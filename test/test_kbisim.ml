open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label

(* Partition of node ids as a canonical list of sorted classes. *)
let canonical (p : Kbisim.partition) =
  let buckets = Hashtbl.create 16 in
  Array.iteri
    (fun u c ->
      Hashtbl.replace buckets c (u :: Option.value (Hashtbl.find_opt buckets c) ~default:[]))
    p.Kbisim.cls;
  Hashtbl.fold (fun _ members acc -> List.sort compare members :: acc) buckets []
  |> List.sort compare

(* Reference partition: group nodes by pairwise k-bisimilarity. *)
let reference_partition g k =
  let bisim = k_bisimilar g in
  let n = Data_graph.n_nodes g in
  let classes = ref [] in
  for u = n - 1 downto 0 do
    let rec place = function
      | [] -> classes := [ u ] :: !classes
      | cls :: rest -> (
        match cls with
        | rep :: _ when bisim u rep k ->
          classes :=
            List.map (fun c -> if c == cls then u :: c else c) !classes;
          ignore rest
        | _ -> place rest)
    in
    place !classes
  done;
  List.sort compare (List.map (List.sort compare) !classes)

let label_partition_tests =
  [
    test "one class per label" (fun () ->
        let g = chain_graph [ "a"; "b"; "a" ] in
        let p = Kbisim.label_partition g in
        check_int "classes" 3 p.Kbisim.n_classes;
        check_int "a nodes share" p.Kbisim.cls.(1) p.Kbisim.cls.(3));
    test "root is class 0" (fun () ->
        let g = chain_graph [ "a" ] in
        check_int "root class" 0 (Kbisim.label_partition g).Kbisim.cls.(0));
    test "class_labels maps back" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let p = Kbisim.label_partition g in
        let labels = Kbisim.class_labels g p in
        check_string "root label" "ROOT"
          (Label.Pool.name (Data_graph.pool g) labels.(p.Kbisim.cls.(0))));
    test "parent_class of the initial partition is the identity" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let p = Kbisim.label_partition g in
        Array.iteri (fun i c -> check_int "identity" i c) p.Kbisim.parent_class);
  ]

let refine_tests =
  [
    test "refine separates same-label nodes with different parents" (fun () ->
        (* ROOT -> a -> x, ROOT -> b -> x: the two x's are 0-bisimilar
           but not 1-bisimilar. *)
        let b = Dkindex_graph.Builder.create () in
        let a = Dkindex_graph.Builder.add_child b ~parent:0 "a" in
        let bb = Dkindex_graph.Builder.add_child b ~parent:0 "b" in
        let x1 = Dkindex_graph.Builder.add_child b ~parent:a "x" in
        let x2 = Dkindex_graph.Builder.add_child b ~parent:bb "x" in
        let g = Dkindex_graph.Builder.build b in
        let p0 = Kbisim.label_partition g in
        check_int "x share at k=0" p0.Kbisim.cls.(x1) p0.Kbisim.cls.(x2);
        let p1, changed = Kbisim.refine g p0 ~eligible:(fun _ -> true) in
        check_bool "changed" true changed;
        check_bool "x split at k=1" true (p1.Kbisim.cls.(x1) <> p1.Kbisim.cls.(x2)));
    test "refine with nothing eligible changes nothing" (fun () ->
        let g = random_graph ~seed:21 ~nodes:80 in
        let p0 = Kbisim.label_partition g in
        let p1, changed = Kbisim.refine g p0 ~eligible:(fun _ -> false) in
        check_bool "unchanged" false changed;
        check_bool "same grouping" true (canonical p0 = canonical p1));
    test "parent_class maps each new class into its origin" (fun () ->
        let g = random_graph ~seed:22 ~nodes:60 in
        let p0 = Kbisim.label_partition g in
        let p1, _ = Kbisim.refine g p0 ~eligible:(fun _ -> true) in
        Array.iteri
          (fun u c1 ->
            check_int "origin" p0.Kbisim.cls.(u) p1.Kbisim.parent_class.(c1))
          p1.Kbisim.cls);
    test "refinement is monotone" (fun () ->
        let g = random_graph ~seed:23 ~nodes:100 in
        let p0 = Kbisim.label_partition g in
        let p1, _ = Kbisim.refine g p0 ~eligible:(fun _ -> true) in
        (* two nodes in the same class at k=1 were in the same class at k=0 *)
        Data_graph.iter_nodes g (fun u ->
            Data_graph.iter_nodes g (fun v ->
                if p1.Kbisim.cls.(u) = p1.Kbisim.cls.(v) then
                  check_int "coarser before" p0.Kbisim.cls.(u) p0.Kbisim.cls.(v))));
  ]

let k_partition_tests =
  [
    test "k_partition matches the definition on random graphs" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:40 in
            List.iter
              (fun k ->
                let fast = canonical (Kbisim.k_partition g ~k) in
                let slow = reference_partition g k in
                check_bool (Printf.sprintf "seed %d k=%d" seed k) true (fast = slow))
              [ 0; 1; 2; 3 ])
          [ 31; 32; 33 ]);
    test "k_partition matches the definition on a cyclic graph" (fun () ->
        let g, _, _, _ = cyclic_graph () in
        List.iter
          (fun k ->
            check_bool (Printf.sprintf "k=%d" k) true
              (canonical (Kbisim.k_partition g ~k) = reference_partition g k))
          [ 0; 1; 2; 3; 4 ]);
    test "k=0 is the label partition" (fun () ->
        let g = random_graph ~seed:34 ~nodes:50 in
        check_bool "equal" true
          (canonical (Kbisim.k_partition g ~k:0) = canonical (Kbisim.label_partition g)));
    test "partitions only refine as k grows" (fun () ->
        let g = random_graph ~seed:35 ~nodes:80 in
        let sizes = List.map (fun k -> (Kbisim.k_partition g ~k).Kbisim.n_classes) [ 0; 1; 2; 3; 4 ] in
        let rec ascending = function
          | a :: (b :: _ as rest) -> a <= b && ascending rest
          | _ -> true
        in
        check_bool "ascending" true (ascending sizes));
  ]

let domains_tests =
  [
    test "parallel key computation is bit-for-bit identical" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:5000 in
            let seq = Kbisim.k_partition g ~k:3 in
            let par = Kbisim.k_partition ~domains:3 g ~k:3 in
            check_bool "identical cls" true (seq.Kbisim.cls = par.Kbisim.cls);
            check_int "classes" seq.Kbisim.n_classes par.Kbisim.n_classes)
          [ 331; 332 ]);
    test "parallel stable partition matches sequential" (fun () ->
        let g = random_graph ~seed:333 ~nodes:5000 in
        let seq, r1 = Kbisim.stable_partition g in
        let par, r2 = Kbisim.stable_partition ~domains:4 g in
        check_bool "identical" true (seq.Kbisim.cls = par.Kbisim.cls);
        check_int "rounds" r1 r2);
    test "small graphs skip the parallel path" (fun () ->
        let g = random_graph ~seed:334 ~nodes:50 in
        let seq = Kbisim.k_partition g ~k:2 in
        let par = Kbisim.k_partition ~domains:8 g ~k:2 in
        check_bool "identical" true (seq.Kbisim.cls = par.Kbisim.cls));
  ]

let stable_tests =
  [
    test "stable partition is a fixpoint" (fun () ->
        let g = random_graph ~seed:41 ~nodes:120 in
        let p, _ = Kbisim.stable_partition g in
        let _, changed = Kbisim.refine g p ~eligible:(fun _ -> true) in
        check_bool "no further split" false changed);
    test "stable partition equals a deep k_partition" (fun () ->
        let g = random_graph ~seed:42 ~nodes:60 in
        let p, rounds = Kbisim.stable_partition g in
        check_bool "equal" true (canonical p = canonical (Kbisim.k_partition g ~k:(rounds + 3))));
    test "rounds on a chain equal its depth minus one" (fun () ->
        (* In ROOT -> a -> a -> a every refinement round separates one
           more a by its distance from the root. *)
        let g = chain_graph [ "a"; "a"; "a"; "a" ] in
        let _, rounds = Kbisim.stable_partition g in
        check_int "rounds" 3 rounds);
    test "a tree of distinct labels stabilizes immediately" (fun () ->
        let g = chain_graph [ "a"; "b"; "c" ] in
        let _, rounds = Kbisim.stable_partition g in
        check_int "rounds" 0 rounds);
  ]

let () =
  Alcotest.run "kbisim"
    [
      ("label_partition", label_partition_tests);
      ("refine", refine_tests);
      ("k_partition", k_partition_tests);
      ("stable", stable_tests);
      ("domains", domains_tests);
    ]
