(* dkserve tests.

   - Wire codec: encode/decode round-trips for every request/response
     kind; total decoding on random, truncated and mutated bytes
     (fuzz); framing (chunked reads, EOF, oversized frames).
   - Index_serial fidelity: after a random churn of edge additions,
     removals and promotions, a save/load round-trip answers every
     query exactly like the live index.
   - Smoke: a real forked server process on an ephemeral port serving
     mixed query/update traffic from concurrent clients, fuzzed with
     malformed frames, then drained with SIGTERM into a loadable
     snapshot. *)

open Dkindex_core
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module Path_ast = Dkindex_pathexpr.Path_ast
module Wire = Dkindex_server.Wire
module Obuf = Dkindex_server.Obuf
module Server = Dkindex_server.Server
module Client = Dkindex_server.Client
module Prng = Dkindex_datagen.Prng

let to_alcotest = QCheck_alcotest.to_alcotest

(* --------------------------------------------------------------- *)
(* Generators                                                        *)

let label_gen = QCheck.Gen.(map (Printf.sprintf "l%d") (int_bound 5))

let expr_gen =
  let open QCheck.Gen in
  let label = map (fun l -> Path_ast.Label l) label_gen in
  sized_size (int_bound 6) (fun n ->
      fix
        (fun self n ->
          if n <= 0 then oneof [ label; return Path_ast.Any ]
          else
            frequency
              [
                (2, label);
                (1, return Path_ast.Any);
                (3, map2 (fun a b -> Path_ast.Seq (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Path_ast.Alt (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map (fun a -> Path_ast.Opt a) (self (n - 1)));
                (1, map (fun a -> Path_ast.Star a) (self (n - 1)));
              ])
        n)

let flags_gen = QCheck.Gen.(map (fun no_cache -> { Wire.no_cache }) bool)
let labels_gen = QCheck.Gen.(list_size (int_range 1 5) label_gen)
let pairs_gen = QCheck.Gen.(list_size (int_bound 4) (pair label_gen (int_bound 6)))

(* WAL generation numbers: -1 (subscribe-from-scratch sentinel) or a
   plausible generation.  Offsets exercise the full u48 range. *)
let seq_gen = QCheck.Gen.(oneof [ return (-1); int_bound 1_000_000 ])

let offset48_gen =
  QCheck.Gen.(map2 (fun hi lo -> (hi lsl 32) lor lo) (int_bound 0xffff) (int_bound 0xfffffff))

let role_gen = QCheck.Gen.oneofl [ Wire.Primary; Wire.Replica ]

let request_gen : Wire.request QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      return Wire.Ping;
      map2 (fun flags expr -> Wire.Query { flags; expr }) flags_gen expr_gen;
      map2 (fun flags labels -> Wire.Query_path { flags; labels }) flags_gen labels_gen;
      map2
        (fun flags paths -> Wire.Batch_query { flags; paths })
        flags_gen
        (list_size (int_bound 5) labels_gen);
      map2 (fun u v -> Wire.Add_edge { u; v }) (int_bound 100000) (int_bound 100000);
      map2 (fun u v -> Wire.Remove_edge { u; v }) (int_bound 100000) (int_bound 100000);
      map2
        (fun graph reqs -> Wire.Add_subgraph { graph; reqs })
        (string_size (int_bound 60))
        pairs_gen;
      map (fun p -> Wire.Promote p) pairs_gen;
      map (fun p -> Wire.Demote p) pairs_gen;
      return Wire.Stats;
      return Wire.Snapshot;
      return Wire.Shutdown;
      (* The version byte is a u8; the codec must round-trip a Hello
         from any version, current or not. *)
      map2 (fun version epoch -> Wire.Hello { version; epoch }) (int_bound 255)
        (int_bound 1_000_000);
      map2
        (fun (replica_id, epoch) (seq, offset) ->
          Wire.Rep_subscribe { replica_id; epoch; seq; offset })
        (pair (int_bound 1000) (int_bound 1_000_000))
        (pair seq_gen offset48_gen);
      return Wire.Promote_primary;
      map2 (fun flags expr -> Wire.Query_planned { flags; expr }) flags_gen expr_gen;
      map (fun expr -> Wire.Explain { expr }) expr_gen;
      map2 (fun u v -> Wire.Has_edge { u; v }) (int_bound 1_000_000) (int_bound 1_000_000);
    ]

let result_gen =
  let open QCheck.Gen in
  map3
    (fun nodes (iv, dv, nc, ns) (generation, age_ms) ->
      {
        Wire.nodes = Array.of_list nodes;
        index_visits = iv;
        data_visits = dv;
        n_candidates = nc;
        n_certain = ns;
        generation;
        age_ms;
      })
    (list_size (int_bound 20) (int_bound 1_000_000))
    (quad (int_bound 1000) (int_bound 1000) (int_bound 1000) (int_bound 1000))
    (pair (int_bound 1_000_000) (int_bound 1_000_000))

let response_gen : Wire.response QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      return Wire.Pong;
      map (fun r -> Wire.Result r) result_gen;
      map (fun rs -> Wire.Batch_result (Array.of_list rs)) (list_size (int_bound 4) result_gen);
      map2
        (fun generation epoch -> Wire.Ok_reply { generation; epoch })
        (int_bound 1_000_000) (int_bound 1_000_000);
      map
        (fun kvs -> Wire.Stats_reply kvs)
        (list_size (int_bound 5) (pair (string_size (int_bound 10)) (string_size (int_bound 10))));
      map2
        (fun code message -> Wire.Error_reply { code; message })
        (oneofl [ `Protocol; `App; `Deadline; `Shutting_down; `Version; `Stale ])
        (string_size (int_bound 40));
      return Wire.Overloaded;
      return Wire.Read_only;
      map3
        (fun version epoch role -> Wire.Hello_reply { version; epoch; role })
        (int_bound 255) (int_bound 1_000_000) role_gen;
      map3
        (fun epoch (seq, offset) data -> Wire.Rep_records { epoch; seq; offset; data })
        (int_bound 1_000_000)
        (pair seq_gen offset48_gen)
        (string_size (int_bound 80));
      map3
        (fun epoch seq index -> Wire.Rep_snapshot { epoch; seq; index })
        (int_bound 1_000_000) seq_gen
        (string_size (int_bound 80));
      map3
        (fun epoch seq offset -> Wire.Rep_heartbeat { epoch; seq; offset })
        (int_bound 1_000_000) seq_gen offset48_gen;
      map2 (fun host port -> Wire.Not_primary { host; port }) (string_size (int_bound 20))
        (int_bound 0xffff);
      map (fun epoch -> Wire.Fenced { epoch }) (int_bound 1_000_000);
      map2
        (fun plan result -> Wire.Planned_result { plan; result })
        (string_size (int_bound 60))
        result_gen;
      map
        (fun lines -> Wire.Explain_reply lines)
        (list_size (int_bound 6) (string_size (int_bound 40)));
      map2
        (fun present (generation, age_ms) ->
          Wire.Edge_reply { present; generation; age_ms })
        bool
        (pair (int_bound 1_000_000) (int_bound 1_000_000));
    ]

let request_arb = QCheck.make request_gen
let response_arb = QCheck.make response_gen

let payload_of_frame frame = String.sub frame 4 (String.length frame - 4)

let encode_request_payload ~id req =
  let buf = Obuf.create 64 in
  Wire.encode_request buf ~id req;
  payload_of_frame (Obuf.contents buf)

let encode_response_payload ~id resp =
  let buf = Obuf.create 64 in
  Wire.encode_response buf ~id resp;
  payload_of_frame (Obuf.contents buf)

(* --------------------------------------------------------------- *)
(* Codec round-trips                                                 *)

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: request round-trip" request_arb (fun req ->
      match Wire.decode_request (encode_request_payload ~id:7 req) with
      | Ok { id; msg } -> id = 7 && msg = req
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: response round-trip" response_arb (fun resp ->
      match Wire.decode_response (encode_response_payload ~id:123456 resp) with
      | Ok { id; msg } -> id = 123456 && msg = resp
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_expr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: path expression round-trip"
    (QCheck.make ~print:Path_ast.to_string expr_gen) (fun expr ->
      let buf = Buffer.create 32 in
      Path_ast.encode buf expr;
      let s = Buffer.contents buf in
      match Path_ast.decode s ~pos:0 with
      | Ok (expr', pos) -> Path_ast.equal expr expr' && pos = String.length s
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

(* --------------------------------------------------------------- *)
(* Fuzz: decoders are total                                          *)

let no_exn f =
  match f () with
  | (_ : (_, string) result) -> true
  | exception e -> QCheck.Test.fail_reportf "decoder raised %s" (Printexc.to_string e)

let prop_fuzz_random_bytes =
  QCheck.Test.make ~count:2000 ~name:"wire: random bytes never crash decoders"
    QCheck.(make Gen.(string_size (int_bound 200)))
    (fun s ->
      no_exn (fun () -> Wire.decode_request s)
      && no_exn (fun () -> Wire.decode_response s)
      && no_exn (fun () ->
             match Path_ast.decode s ~pos:0 with
             | Ok _ -> Ok ()
             | Error e -> Error e))

let prop_fuzz_truncated =
  QCheck.Test.make ~count:500 ~name:"wire: strict prefixes are rejected, not crashed"
    QCheck.(pair request_arb (make Gen.(int_bound 1000)))
    (fun (req, cut) ->
      let payload = encode_request_payload ~id:1 req in
      let cut = cut mod max 1 (String.length payload) in
      if cut = String.length payload then true
      else
        match Wire.decode_request (String.sub payload 0 cut) with
        | Ok _ -> QCheck.Test.fail_reportf "strict prefix decoded successfully"
        | Error _ -> true
        | exception e -> QCheck.Test.fail_reportf "raised %s" (Printexc.to_string e))

let prop_fuzz_mutated =
  QCheck.Test.make ~count:1000 ~name:"wire: byte flips never crash the request decoder"
    QCheck.(triple request_arb (make Gen.(int_bound 10_000)) (make Gen.(int_bound 255)))
    (fun (req, pos, byte) ->
      let payload = Bytes.of_string (encode_request_payload ~id:1 req) in
      Bytes.set payload (pos mod Bytes.length payload) (Char.chr byte);
      no_exn (fun () -> Wire.decode_request (Bytes.to_string payload)))

(* --------------------------------------------------------------- *)
(* Framing                                                           *)

let string_reader ?(chunk = max_int) s =
  let pos = ref 0 in
  fun buf off len ->
    let n = min (min len chunk) (String.length s - !pos) in
    Bytes.blit_string s !pos buf off n;
    pos := !pos + n;
    n

let test_read_frame_chunked () =
  let payloads = [ "alpha"; ""; String.make 1000 'x' ] in
  let stream =
    String.concat "" (List.map Wire.frame_of_payload payloads)
  in
  List.iter
    (fun chunk ->
      let read = string_reader ~chunk stream in
      List.iter
        (fun expect ->
          match Wire.read_frame ~read () with
          | `Frame got -> Alcotest.(check string) "frame" expect got
          | _ -> Alcotest.fail "expected a frame")
        payloads;
      match Wire.read_frame ~read () with
      | `Eof -> ()
      | _ -> Alcotest.fail "expected EOF")
    [ 1; 3; max_int ]

let test_read_frame_oversized () =
  let stream = Wire.frame_of_payload (String.make 100 'y') in
  match Wire.read_frame ~max_frame:50 ~read:(string_reader stream) () with
  | `Oversized 100 -> ()
  | _ -> Alcotest.fail "expected `Oversized 100"

let test_read_frame_torn () =
  let stream = Wire.frame_of_payload "hello" in
  let torn = String.sub stream 0 (String.length stream - 2) in
  match Wire.read_frame ~read:(string_reader torn) () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on a torn frame"

(* --------------------------------------------------------------- *)
(* WAL: replay recovers exactly the longest valid record prefix      *)

module Wal = Dkindex_server.Wal

let mutation_gen : Wal.mutation QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map2 (fun u v -> Wal.Add_edge { u; v }) (int_bound 100000) (int_bound 100000);
      map2 (fun u v -> Wal.Remove_edge { u; v }) (int_bound 100000) (int_bound 100000);
      map2
        (fun graph reqs -> Wal.Add_subgraph { graph; reqs })
        (string_size (int_bound 60))
        pairs_gen;
      map (fun p -> Wal.Promote p) pairs_gen;
      map (fun p -> Wal.Demote p) pairs_gen;
    ]

let encode_stream muts =
  let buf = Buffer.create 256 in
  (* [ends.(i)] is the byte offset one past record i. *)
  let ends =
    List.map
      (fun m ->
        Wal.encode_mutation buf m;
        Buffer.length buf)
      muts
  in
  (Buffer.contents buf, ends)

(* The records wholly contained in the first [cut] bytes. *)
let expect_prefix muts ends cut =
  List.combine muts ends |> List.filter (fun (_, e) -> e <= cut) |> List.map fst

let stream_arb =
  QCheck.make
    ~print:(fun muts -> Printf.sprintf "<%d mutations>" (List.length muts))
    QCheck.Gen.(list_size (int_bound 20) mutation_gen)

let prop_wal_roundtrip =
  QCheck.Test.make ~count:300 ~name:"wal: encode/replay round-trip" stream_arb (fun muts ->
      let s, _ = encode_stream muts in
      let r = Wal.replay_string s in
      r.Wal.mutations = muts
      && r.valid_bytes = String.length s
      && r.torn_bytes = 0)

let prop_wal_truncation =
  QCheck.Test.make ~count:500
    ~name:"wal: any byte-level truncation recovers the longest valid prefix"
    QCheck.(pair stream_arb (make Gen.(int_bound 100_000)))
    (fun (muts, cut) ->
      let s, ends = encode_stream muts in
      let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
      let expected = expect_prefix muts ends cut in
      let r = Wal.replay_string (String.sub s 0 cut) in
      let valid_end = List.fold_left (fun acc e -> if e <= cut then e else acc) 0 ends in
      r.Wal.mutations = expected
      && r.valid_bytes = valid_end
      && r.torn_bytes = cut - valid_end)

let prop_wal_bitflip =
  QCheck.Test.make ~count:500
    ~name:"wal: a bit flip invalidates its record, keeps the prefix before it"
    QCheck.(
      triple
        (QCheck.make
           ~print:(fun muts -> Printf.sprintf "<%d mutations>" (List.length muts))
           Gen.(list_size (int_range 1 20) mutation_gen))
        (make Gen.(int_bound 100_000))
        (make Gen.(int_bound 7)))
    (fun (muts, pos, bit) ->
      let s, ends = encode_stream muts in
      let pos = pos mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      (* Everything strictly before the record containing [pos] must
         survive; the flipped record and everything after it is gone
         (replay cannot resynchronize past a bad record). *)
      let expected = expect_prefix muts ends pos in
      let r = Wal.replay_string (Bytes.to_string b) in
      r.Wal.mutations = expected)

let prop_wal_fuzz =
  QCheck.Test.make ~count:1000 ~name:"wal: replay of random bytes is total and canonical"
    QCheck.(make Gen.(string_size (int_bound 300)))
    (fun s ->
      match Wal.replay_string s with
      | r ->
        (* Whatever replay accepted must re-encode to exactly the
           bytes it consumed: the valid prefix is canonical. *)
        let buf = Buffer.create 64 in
        List.iter (Wal.encode_mutation buf) r.Wal.mutations;
        r.valid_bytes + r.torn_bytes = String.length s
        && Buffer.contents buf = String.sub s 0 r.valid_bytes
      | exception e -> QCheck.Test.fail_reportf "replay raised %s" (Printexc.to_string e))

(* --------------------------------------------------------------- *)
(* Index_serial round-trip fidelity under churn                      *)

let churn_queries =
  [ [ "l0" ]; [ "l1"; "l2" ]; [ "l0"; "l1" ]; [ "l2"; "l3"; "l0" ]; [ "l3"; "l3" ] ]

let check_same_answers ~what idx idx' =
  List.iter
    (fun q ->
      let a = Query_eval.eval_path_strings idx q in
      let b = Query_eval.eval_path_strings idx' q in
      let name = what ^ " " ^ String.concat "." q in
      Alcotest.(check (list int)) (name ^ ": nodes") a.Query_eval.nodes b.Query_eval.nodes;
      Alcotest.(check int) (name ^ ": n_candidates") a.n_candidates b.n_candidates;
      Alcotest.(check int) (name ^ ": n_certain") a.n_certain b.n_certain)
    churn_queries

let prop_serial_roundtrip_after_churn =
  QCheck.Test.make ~count:60 ~name:"index_serial: save/load after churn answers identically"
    QCheck.(
      make
        ~print:(fun (seed, nodes, ops) ->
          Printf.sprintf "seed=%d nodes=%d ops=%d" seed nodes ops)
        Gen.(triple (int_bound 10_000) (int_range 3 60) (int_bound 30)))
    (fun (seed, nodes, ops) ->
      let g =
        Dkindex_datagen.Random_graph.graph ~seed ~nodes ~n_labels:4
          ~extra_edges:(nodes / 3) ()
      in
      let idx = Dk_index.build g ~reqs:[ ("l0", 2); ("l1", 3) ] in
      let rng = Prng.create ~seed:(seed + 1) in
      let added = ref [] in
      for i = 1 to ops do
        match Prng.int rng 4 with
        | 0 | 1 ->
          let u = Prng.int rng nodes and v = Prng.int rng nodes in
          if u <> v && not (Data_graph.has_edge (Index_graph.data idx) u v) then begin
            Dk_update.add_edge idx u v;
            added := (u, v) :: !added
          end
        | 2 -> (
          match !added with
          | [] -> ()
          | (u, v) :: rest ->
            added := rest;
            Dk_update.remove_edge idx u v)
        | _ -> Dk_tune.promote_labels idx [ (Printf.sprintf "l%d" (i mod 4), 1 + (i mod 3)) ]
      done;
      let s = Index_serial.to_string idx in
      let idx' = Index_serial.of_string s in
      Index_graph.check_invariants idx';
      check_same_answers ~what:"churned" idx idx';
      (* A second trip is bit-stable: of_string normalizes to the
         canonical dense form that to_string emits. *)
      String.equal (Index_serial.to_string idx') s
      || QCheck.Test.fail_reportf "to_string/of_string not stable")

(* --------------------------------------------------------------- *)
(* Smoke: a real server process, real sockets                        *)

let build_smoke_dataset () =
  let g = Dkindex_datagen.Random_graph.graph ~seed:11 ~nodes:400 ~n_labels:5 ~extra_edges:160 () in
  let idx = Dk_index.build g ~reqs:[ ("l0", 2); ("l1", 3); ("l2", 2) ] in
  (g, idx)

let read_port_line fd =
  let buf = Buffer.create 16 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> failwith "server died before reporting its port"
    | _ -> if Bytes.get b 0 = '\n' then Buffer.contents buf else (Buffer.add_char buf (Bytes.get b 0); go ())
  in
  int_of_string (go ())

let expect_result = function
  | Wire.Result r -> r
  | Wire.Error_reply { message; _ } -> Alcotest.fail ("server error: " ^ message)
  | _ -> Alcotest.fail "expected Result"

let check_against_local idx client labels =
  let want = Query_eval.eval_path_strings idx labels in
  let got =
    expect_result (Client.call client (Wire.Query_path { flags = { no_cache = true }; labels }))
  in
  Alcotest.(check (list int)) ("query " ^ String.concat "." labels ^ ": nodes")
    want.Query_eval.nodes (Array.to_list got.Wire.nodes);
  Alcotest.(check int) "index_visits" want.cost.Dkindex_pathexpr.Cost.index_visits got.index_visits;
  Alcotest.(check int) "data_visits" want.cost.data_visits got.data_visits

let smoke_queries = [ [ "l0" ]; [ "l1"; "l2" ]; [ "l0"; "l1"; "l3" ]; [ "l4"; "l0" ] ]

let test_smoke () =
  let g, idx = build_smoke_dataset () in
  let snapshot = Filename.temp_file "dkserve_smoke" ".index" in
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* Child: the server process.  [_exit] so the forked alcotest
       runner never runs its own reporting. *)
    Unix.close r;
    let status =
      try
        match
          Server.run
            ~on_ready:(fun port ->
              let line = string_of_int port ^ "\n" in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w)
            {
              Server.default_config with
              port = 0;
              workers = 2;
              queue_depth = 64;
              idle_timeout_s = 30.0;
              snapshot_path = Some snapshot;
            }
            idx
        with
        | Ok () -> 0
        | Error _ -> 1
      with _ -> 1
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    let c1 = Client.connect ~port () in
    let c2 = Client.connect ~port () in
    (* Basic liveness and read traffic on two concurrent connections. *)
    (match Client.call c1 Wire.Ping with
    | Wire.Pong -> ()
    | _ -> Alcotest.fail "expected Pong");
    List.iter (check_against_local idx c1) smoke_queries;
    List.iter (check_against_local idx c2) smoke_queries;
    (* A general path expression through the same socket. *)
    let expr = Path_ast.(Seq (Label "l1", Star (Label "l2"))) in
    let got = expect_result (Client.call c2 (Wire.Query { flags = { no_cache = true }; expr })) in
    let want = Query_eval.eval_expr idx expr in
    Alcotest.(check (list int)) "expr nodes" want.Query_eval.nodes (Array.to_list got.Wire.nodes);
    (* The planned read path: same answers, plan reported; EXPLAIN is
       read-only and returns the ranked list. *)
    List.iter
      (fun labels ->
        let expr = Path_ast.seq_of_labels labels in
        let plan, got =
          match Client.call c1 (Wire.Query_planned { flags = { no_cache = true }; expr }) with
          | Wire.Planned_result { plan; result } -> (plan, result)
          | _ -> Alcotest.fail "expected Planned_result"
        in
        Alcotest.(check bool) "plan described" true (String.length plan > 0);
        let want = Query_eval.eval_path_strings idx labels in
        Alcotest.(check (list int))
          ("planned " ^ String.concat "." labels)
          want.Query_eval.nodes (Array.to_list got.Wire.nodes))
      smoke_queries;
    (match Client.call c2 (Wire.Explain { expr }) with
    | Wire.Explain_reply (header :: plans) ->
      Alcotest.(check bool) "explain has plans" true (List.length plans >= 1);
      Alcotest.(check bool) "explain header" true (String.length header > 0)
    | _ -> Alcotest.fail "expected Explain_reply");
    (match Client.call c1 Wire.Stats with
    | Wire.Stats_reply kvs ->
      Alcotest.(check string) "planned_queries counted"
        (string_of_int (List.length smoke_queries))
        (Option.value (List.assoc_opt "planned_queries" kvs) ~default:"missing");
      Alcotest.(check string) "explain counted" "1"
        (Option.value (List.assoc_opt "explain_queries" kvs) ~default:"missing");
      Alcotest.(check bool) "vcache counters exported" true
        (List.mem_assoc "vcache_hits" kvs)
    | _ -> Alcotest.fail "expected Stats_reply");
    (* Updates through the write path, replayed locally. *)
    let n = Data_graph.n_nodes g in
    let rng = Prng.create ~seed:99 in
    let applied = ref 0 in
    while !applied < 12 do
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v && not (Data_graph.has_edge g u v) then begin
        (match Client.call c1 (Wire.Add_edge { u; v }) with
        | Wire.Ok_reply _ -> ()
        | _ -> Alcotest.fail "expected Ok_reply");
        Dk_update.add_edge idx u v;
        incr applied
      end
    done;
    Index_graph.prepare_serving idx;
    List.iter (check_against_local idx c1) smoke_queries;
    List.iter (check_against_local idx c2) smoke_queries;
    (* An app-level error: out-of-range node. *)
    (match Client.call c2 (Wire.Add_edge { u = n + 50; v = 0 }) with
    | Wire.Error_reply { code = `App; _ } -> ()
    | _ -> Alcotest.fail "expected `App error");
    (* Stats. *)
    (match Client.call c1 Wire.Stats with
    | Wire.Stats_reply kvs ->
      Alcotest.(check bool) "stats has generation" true (List.mem_assoc "generation" kvs)
    | _ -> Alcotest.fail "expected Stats_reply");
    Client.close c2;
    (* SIGTERM: graceful drain, final snapshot, clean exit. *)
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    Alcotest.(check bool) "server exited cleanly" true (status = Unix.WEXITED 0);
    Client.close c1;
    let reloaded = Index_serial.load snapshot in
    Index_graph.check_invariants reloaded;
    List.iter
      (fun q ->
        let a = Query_eval.eval_path_strings idx q in
        let b = Query_eval.eval_path_strings reloaded q in
        Alcotest.(check (list int)) ("snapshot query " ^ String.concat "." q) a.Query_eval.nodes
          b.Query_eval.nodes)
      smoke_queries;
    Sys.remove snapshot

(* Malformed frames against a live server: every payload is answered
   with a protocol error (or the oversized frame closes the
   connection); the server stays alive throughout. *)
let test_smoke_protocol_errors () =
  let _g, idx = build_smoke_dataset () in
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let status =
      try
        match
          Server.run
            ~on_ready:(fun port ->
              let line = string_of_int port ^ "\n" in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w)
            { Server.default_config with port = 0; workers = 1; max_frame = 4096 }
            idx
        with
        | Ok () -> 0
        | Error _ -> 1
      with _ -> 1
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    (* Well-framed junk payloads: Error_reply `Protocol, connection
       stays usable. *)
    let c = Client.connect ~port () in
    let junk_conn = Client.connect ~port () in
    let rng = Prng.create ~seed:5 in
    for _ = 1 to 50 do
      let len = Prng.int rng 64 in
      let payload = String.init len (fun _ -> Char.chr (Prng.int rng 256)) in
      match Wire.decode_request payload with
      | Ok _ -> () (* a miracle frame; the server would serve it *)
      | Error _ -> (
        Client.send_raw_frame junk_conn payload;
        match Client.recv junk_conn with
        | { msg = Wire.Error_reply { code = `Protocol; _ }; _ } -> ()
        | _ -> Alcotest.fail "expected a protocol error")
    done;
    Client.close junk_conn;
    (* The server is still healthy. *)
    (match Client.call c Wire.Ping with
    | Wire.Pong -> ()
    | _ -> Alcotest.fail "expected Pong after junk barrage");
    (* Version negotiation: a Hello from another protocol version is
       refused with a typed error, not a decode failure, and the
       connection survives. *)
    let hello_v9 = encode_request_payload ~id:7777 (Wire.Hello { version = 9; epoch = 0 }) in
    Client.send_raw_frame c hello_v9;
    (match Client.recv c with
    | { Wire.id = 7777; msg = Wire.Error_reply { code = `Version; _ } } -> ()
    | _ -> Alcotest.fail "expected a `Version error for a mismatched Hello");
    (* A current-version Hello gets epoch and role back. *)
    (match Client.call c (Wire.Hello { version = Wire.version; epoch = 0 }) with
    | Wire.Hello_reply { version; epoch = 0; role = Wire.Primary } ->
      Alcotest.(check int) "hello echoes our version" Wire.version version
    | _ -> Alcotest.fail "expected Hello_reply");
    (* An oversized frame closes that connection but not the server. *)
    let big = Client.connect ~port () in
    Client.send_raw_frame big (String.make 10_000 'z');
    (match Client.recv big with
    | { msg = Wire.Error_reply { code = `Protocol; _ }; _ } -> ()
    | _ -> Alcotest.fail "expected protocol error for oversized frame"
    | exception Failure _ -> ());
    (match Client.recv big with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected the oversized connection to be closed");
    Client.close big;
    (match Client.call c Wire.Ping with
    | Wire.Pong -> ()
    | _ -> Alcotest.fail "expected Pong after oversized frame");
    (* Shutdown over the wire this time. *)
    (match Client.call c Wire.Shutdown with
    | Wire.Ok_reply _ -> ()
    | _ -> Alcotest.fail "expected Ok_reply for Shutdown");
    let _, status = Unix.waitpid [] pid in
    Alcotest.(check bool) "server exited cleanly" true (status = Unix.WEXITED 0);
    Client.close c

(* --------------------------------------------------------------- *)
(* Bqueue: the server's bounded MPMC queue                           *)

module Bqueue = Server.Bqueue

let prop_bqueue_no_loss_no_dup =
  QCheck.Test.make ~count:15
    ~name:"bqueue: concurrent push/pop neither loses nor duplicates"
    QCheck.(
      make
        ~print:(fun (p, n) -> Printf.sprintf "producers=%d per_producer=%d" p n)
        Gen.(pair (int_range 1 3) (int_range 1 150)))
    (fun (nprod, per_prod) ->
      let q = Bqueue.create 8 in
      let total = nprod * per_prod in
      let popped = Array.make total (-1) in
      let pop_count = Atomic.make 0 in
      let consumers =
        Array.init 2 (fun _ ->
            Domain.spawn (fun () ->
                let rec go () =
                  match Bqueue.pop q with
                  | Some v ->
                    popped.(Atomic.fetch_and_add pop_count 1) <- v;
                    go ()
                  | None -> ()
                in
                go ()))
      in
      let producers =
        Array.init nprod (fun p ->
            Domain.spawn (fun () ->
                for i = 0 to per_prod - 1 do
                  Bqueue.push q ((p * per_prod) + i)
                done))
      in
      Array.iter Domain.join producers;
      Bqueue.close q;
      Array.iter Domain.join consumers;
      (* Multiset equality with what was pushed: 0 .. total-1, each
         exactly once. *)
      if Atomic.get pop_count <> total then
        QCheck.Test.fail_reportf "popped %d of %d" (Atomic.get pop_count) total
      else begin
        let seen = Array.make total false in
        Array.for_all
          (fun v -> v >= 0 && v < total && not seen.(v) && (seen.(v) <- true; true))
          popped
      end)

let test_bqueue_sheds_at_capacity () =
  let q = Bqueue.create 2 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "full: shed" false (Bqueue.try_push q 3);
  Alcotest.(check int) "length" 2 (Bqueue.length q);
  (match Bqueue.pop q with Some 1 -> () | _ -> Alcotest.fail "expected FIFO head 1");
  Alcotest.(check bool) "room again" true (Bqueue.try_push q 3);
  Bqueue.close q;
  (match Bqueue.pop q with Some 2 -> () | _ -> Alcotest.fail "drain 2");
  (match Bqueue.pop q with Some 3 -> () | _ -> Alcotest.fail "drain 3");
  match Bqueue.pop q with
  | None -> ()
  | Some _ -> Alcotest.fail "closed+empty must pop None"

(* Deadline expiry: with one worker, a long batch plugs the read
   queue; a second batch pipelined behind it is older than the
   deadline by the time the worker dequeues it and must be answered
   `Deadline (never silently dropped).  If scheduling is so slow that
   the plug itself expires, the victim — enqueued in the same burst —
   has aged just as much, so the assertion holds on either path.  A
   Ping pipelined behind both is served inline off the event loop: it
   overtakes the queued batches entirely (no head-of-line blocking)
   and is matched to its request by frame id. *)
let test_deadline_expiry () =
  let _g, idx = build_smoke_dataset () in
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let status =
      try
        match
          Server.run
            ~on_ready:(fun port ->
              let line = string_of_int port ^ "\n" in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w)
            { Server.default_config with port = 0; workers = 1; deadline_s = 0.02 }
            idx
        with
        | Ok () -> 0
        | Error _ -> 1
      with _ -> 1
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    let c = Client.connect ~port () in
    let plug_path = [ "l1"; "l2"; "l3"; "l4" ] in
    let batch n =
      Wire.Batch_query { flags = { no_cache = true }; paths = List.init n (fun _ -> plug_path) }
    in
    let plug_id = Client.send c (batch 8000) in
    let victim_id = Client.send c (batch 4) in
    let ping_id = Client.send c Wire.Ping in
    (* The inline fast path answers the Ping immediately, ahead of the
       queued batches. *)
    let r1 = Client.recv c in
    Alcotest.(check int) "inline Ping overtakes the queued batches" ping_id r1.Wire.id;
    (match r1.Wire.msg with Wire.Pong -> () | _ -> Alcotest.fail "expected Pong");
    let r2 = Client.recv c in
    let r3 = Client.recv c in
    Alcotest.(check (list int)) "worker replies keep queue order" [ plug_id; victim_id ]
      [ r2.Wire.id; r3.Wire.id ];
    let deadline_hits = ref 0 in
    let handle = function
      | Wire.Error_reply { code = `Deadline; _ } -> incr deadline_hits
      | Wire.Batch_result _ -> ()
      | _ -> Alcotest.fail "unexpected response kind"
    in
    handle r2.Wire.msg;
    handle r3.Wire.msg;
    (match r3.Wire.msg with
    | Wire.Error_reply { code = `Deadline; _ } -> ()
    | _ -> Alcotest.fail "the queued second batch must expire");
    (match Client.call c Wire.Stats with
    | Wire.Stats_reply kvs ->
      let expired =
        int_of_string (Option.value (List.assoc_opt "deadline_expired" kvs) ~default:"0")
      in
      Alcotest.(check bool) "stats count the expiries" true (expired >= !deadline_hits)
    | _ -> Alcotest.fail "expected Stats_reply");
    (match Client.call c Wire.Shutdown with
    | Wire.Ok_reply _ -> ()
    | _ -> Alcotest.fail "expected Ok_reply for Shutdown");
    let _, status = Unix.waitpid [] pid in
    Client.close c;
    Alcotest.(check bool) "clean exit" true (status = Unix.WEXITED 0)

(* Pipelining over a real socket: one connection, many requests in
   flight.  Codifies the response-ordering contract that
   dkindex-loadgen --pipeline relies on: inline-served requests (Ping,
   Query, Query_path, Stats) are answered in send order relative to
   each other, queued Batch_query work may be overtaken by later
   inline requests, and every reply carries its request's frame id —
   a pipelining client correlates by id, never by arrival order. *)
let test_pipelined_ordering () =
  let _g, idx = build_smoke_dataset () in
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let status =
      try
        match
          Server.run
            ~on_ready:(fun port ->
              let line = string_of_int port ^ "\n" in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w)
            { Server.default_config with port = 0; workers = 1; deadline_s = 0.0 }
            idx
        with
        | Ok () -> 0
        | Error _ -> 1
      with _ -> 1
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    let c = Client.connect ~port () in
    (* Phase 1: a pure-inline pipeline of 8 queries is answered in
       send order, every answer bit-for-bit against the local oracle. *)
    let qs = smoke_queries @ smoke_queries in
    let ids =
      List.map
        (fun labels -> Client.send c (Wire.Query_path { flags = { no_cache = true }; labels }))
        qs
    in
    let rs = List.map (fun _ -> Client.recv c) ids in
    Alcotest.(check (list int)) "inline pipeline is FIFO" ids (List.map (fun d -> d.Wire.id) rs);
    List.iter2
      (fun labels d ->
        let want = Query_eval.eval_path_strings idx labels in
        match d.Wire.msg with
        | Wire.Result r ->
          Alcotest.(check (list int))
            ("pipelined " ^ String.concat "." labels ^ ": nodes")
            want.Query_eval.nodes (Array.to_list r.Wire.nodes)
        | _ -> Alcotest.fail "expected Result")
      qs rs;
    (* Phase 2: a Batch_query with an inline query pipelined behind it
       — replies are matched by id whatever the arrival order, and
       both answers are bit-for-bit. *)
    let batch_paths = List.init 64 (fun i -> List.nth smoke_queries (i mod 4)) in
    let bid = Client.send c (Wire.Batch_query { flags = { no_cache = true }; paths = batch_paths }) in
    let qid =
      Client.send c (Wire.Query_path { flags = { no_cache = true }; labels = [ "l0" ] })
    in
    let d1 = Client.recv c in
    let d2 = Client.recv c in
    let by_id = [ (d1.Wire.id, d1.Wire.msg); (d2.Wire.id, d2.Wire.msg) ] in
    Alcotest.(check bool) "both replies arrive with known ids" true
      (List.mem_assoc bid by_id && List.mem_assoc qid by_id);
    (match List.assoc bid by_id with
    | Wire.Batch_result results ->
      Alcotest.(check int) "batch result count" (List.length batch_paths) (Array.length results);
      List.iteri
        (fun i labels ->
          let want = Query_eval.eval_path_strings idx labels in
          Alcotest.(check (list int))
            (Printf.sprintf "batch[%d] nodes" i)
            want.Query_eval.nodes
            (Array.to_list results.(i).Wire.nodes))
        batch_paths
    | _ -> Alcotest.fail "expected Batch_result for the batch id");
    (match List.assoc qid by_id with
    | Wire.Result r ->
      let want = Query_eval.eval_path_strings idx [ "l0" ] in
      Alcotest.(check (list int)) "overtaking query nodes" want.Query_eval.nodes
        (Array.to_list r.Wire.nodes)
    | _ -> Alcotest.fail "expected Result for the query id");
    (match Client.call c Wire.Shutdown with
    | Wire.Ok_reply _ -> ()
    | _ -> Alcotest.fail "expected Ok_reply for Shutdown");
    let _, status = Unix.waitpid [] pid in
    Client.close c;
    Alcotest.(check bool) "clean exit" true (status = Unix.WEXITED 0)

(* Snapshot churn: reader domains hammer queries while the main
   thread streams edge updates through the write path.  Every answer
   — nodes and validation costs — must equal the oracle state after
   some prefix of the update stream: the atomic snapshot swap means a
   reader sees a fully-applied prefix, never a half-applied update
   (no torn reads).  Runs last among the forking tests: the parent
   spawns domains, and Unix.fork is off the table after that. *)
let test_snapshot_churn () =
  let g, idx = build_smoke_dataset () in
  (* A fixed stream of valid edge additions. *)
  let n = Data_graph.n_nodes g in
  let rng = Prng.create ~seed:7 in
  let updates = ref [] in
  while List.length !updates < 16 do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && (not (Data_graph.has_edge g u v)) && not (List.mem (u, v) !updates) then
      updates := !updates @ [ (u, v) ]
  done;
  let updates = !updates in
  (* Oracle signatures for every prefix of the stream: queries against
     the live server must match one of these bit-for-bit. *)
  let signature idx labels =
    let r = Query_eval.eval_path_strings idx labels in
    Printf.sprintf "%s|%d|%d|%d|%d"
      (String.concat "," (List.map string_of_int r.Query_eval.nodes))
      r.cost.Dkindex_pathexpr.Cost.index_visits r.cost.data_visits r.n_candidates r.n_certain
  in
  let allowed = List.map (fun q -> (q, Hashtbl.create 32)) smoke_queries in
  let record () =
    List.iter (fun (q, tbl) -> Hashtbl.replace tbl (signature idx q) ()) allowed
  in
  record ();
  List.iter
    (fun (u, v) ->
      Dk_update.add_edge idx u v;
      record ())
    updates;
  let _, fresh_idx = build_smoke_dataset () in
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let status =
      try
        match
          Server.run
            ~on_ready:(fun port ->
              let line = string_of_int port ^ "\n" in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w)
            { Server.default_config with port = 0; workers = 2; deadline_s = 0.0 }
            fresh_idx
        with
        | Ok () -> 0
        | Error _ -> 1
      with _ -> 1
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    let stop = Atomic.make false in
    let readers =
      List.init 2 (fun d ->
          Domain.spawn (fun () ->
              let c = Client.connect ~port () in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  let served = ref 0 and torn = ref [] in
                  let i = ref d in
                  while not (Atomic.get stop) do
                    let q, tbl = List.nth allowed (!i mod List.length allowed) in
                    (match
                       Client.call c (Wire.Query_path { flags = { no_cache = true }; labels = q })
                     with
                    | Wire.Result r ->
                      let got =
                        Printf.sprintf "%s|%d|%d|%d|%d"
                          (String.concat ","
                             (List.map string_of_int (Array.to_list r.Wire.nodes)))
                          r.Wire.index_visits r.Wire.data_visits r.Wire.n_candidates
                          r.Wire.n_certain
                      in
                      if not (Hashtbl.mem tbl got) then
                        torn := (String.concat "." q, got) :: !torn
                    | _ -> torn := (String.concat "." q, "non-Result reply") :: !torn);
                    incr served;
                    incr i
                  done;
                  (!served, !torn))))
    in
    let cw = Client.connect ~port () in
    List.iter
      (fun (u, v) ->
        (match Client.call cw (Wire.Add_edge { u; v }) with
        | Wire.Ok_reply _ -> ()
        | _ -> Alcotest.fail "expected Ok_reply for the churn update");
        (* Let readers land between swaps so many prefixes get
           observed. *)
        Unix.sleepf 0.005)
      updates;
    Unix.sleepf 0.02;
    Atomic.set stop true;
    let tallies = List.map Domain.join readers in
    let total = List.fold_left (fun a (s, _) -> a + s) 0 tallies in
    let torn = List.concat_map snd tallies in
    (match torn with
    | [] -> ()
    | (q, got) :: _ ->
      Alcotest.fail
        (Printf.sprintf "torn read: %d answer(s) match no prefix state; first: query %s got %s"
           (List.length torn) q got));
    Alcotest.(check bool) "readers made progress during churn" true (total > 20);
    (* Converged: the post-stream server answers equal the full-prefix
       oracle exactly. *)
    List.iter (check_against_local idx cw) smoke_queries;
    (match Client.call cw Wire.Shutdown with
    | Wire.Ok_reply _ -> ()
    | _ -> Alcotest.fail "expected Ok_reply for Shutdown");
    let _, status = Unix.waitpid [] pid in
    Client.close cw;
    Alcotest.(check bool) "clean exit" true (status = Unix.WEXITED 0)

(* --------------------------------------------------------------- *)
(* Rw_lock: a continuous read load cannot starve a writer            *)

module Rw_lock = Dkindex_server.Rw_lock

let test_rw_lock_writer_not_starved () =
  let l = Rw_lock.create () in
  let grants = Atomic.make 0 in
  let stop = Atomic.make false in
  let readers =
    Array.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Rw_lock.read l (fun () -> Atomic.incr grants)
            done))
  in
  (* Let the read load reach a steady state before the writer asks. *)
  while Atomic.get grants < 200 do
    Unix.sleepf 0.001
  done;
  let before = Atomic.get grants in
  (* Reads granted between the writer's request and its acquisition:
     with writer priority this is bounded by the readers already in
     flight (plus a few preemption windows), never thousands. *)
  let during = Rw_lock.write l (fun () -> Atomic.get grants - before) in
  Atomic.set stop true;
  Array.iter Domain.join readers;
  if during > 100 then
    Alcotest.fail
      (Printf.sprintf "writer waited through %d read grants: readers starve writers" during)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          to_alcotest prop_request_roundtrip;
          to_alcotest prop_response_roundtrip;
          to_alcotest prop_expr_roundtrip;
          to_alcotest prop_fuzz_random_bytes;
          to_alcotest prop_fuzz_truncated;
          to_alcotest prop_fuzz_mutated;
          Alcotest.test_case "read_frame: chunked reads" `Quick test_read_frame_chunked;
          Alcotest.test_case "read_frame: oversized" `Quick test_read_frame_oversized;
          Alcotest.test_case "read_frame: torn stream" `Quick test_read_frame_torn;
        ] );
      ( "wal",
        [
          to_alcotest prop_wal_roundtrip;
          to_alcotest prop_wal_truncation;
          to_alcotest prop_wal_bitflip;
          to_alcotest prop_wal_fuzz;
        ] );
      ("index_serial", [ to_alcotest prop_serial_roundtrip_after_churn ]);
      (* Forking tests must run before anything that spawns a domain:
         OCaml 5's Unix.fork refuses once other domains exist. *)
      ( "smoke",
        [
          Alcotest.test_case "mixed traffic, SIGTERM drain, snapshot" `Quick test_smoke;
          Alcotest.test_case "malformed frames, wire shutdown" `Quick test_smoke_protocol_errors;
          Alcotest.test_case "queued requests expire against the deadline" `Quick
            test_deadline_expiry;
          Alcotest.test_case "pipelined requests: FIFO inline, id-matched overtaking" `Quick
            test_pipelined_ordering;
          (* Last forking test: it spawns reader domains in the
             parent, after which Unix.fork is no longer available. *)
          Alcotest.test_case "no torn reads under snapshot churn" `Quick test_snapshot_churn;
        ] );
      ( "queue",
        [
          to_alcotest prop_bqueue_no_loss_no_dup;
          Alcotest.test_case "try_push sheds at capacity; close drains" `Quick
            test_bqueue_sheds_at_capacity;
        ] );
      ( "rw_lock",
        [
          Alcotest.test_case "writer acquires under continuous read load" `Quick
            test_rw_lock_writer_not_starved;
        ] );
    ]
