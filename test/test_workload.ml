open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Query_gen = Dkindex_workload.Query_gen
module Miner = Dkindex_workload.Miner
module Cost = Dkindex_pathexpr.Cost

let gen_tests =
  [
    test "produces the requested number of queries" (fun () ->
        let g = random_graph ~seed:231 ~nodes:200 in
        check_int "count" 100 (List.length (Query_gen.generate ~seed:231 g)));
    test "lengths stay within bounds" (fun () ->
        let g = random_graph ~seed:232 ~nodes:200 in
        List.iter
          (fun q ->
            let len = Array.length q in
            check_bool "2..5" true (len >= 2 && len <= 5))
          (Query_gen.generate ~seed:232 g));
    test "custom bounds are respected" (fun () ->
        let g = random_graph ~seed:233 ~nodes:200 in
        List.iter
          (fun q ->
            let len = Array.length q in
            check_bool "3..4" true (len >= 3 && len <= 4))
          (Query_gen.generate ~seed:233 ~count:40 ~min_len:3 ~max_len:4 g));
    test "every query has a non-empty answer" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:150 in
            List.iter
              (fun q ->
                let r = Dkindex_pathexpr.Matcher.eval_label_path g q ~cost:(Cost.create ()) in
                check_bool "non-empty" true (r <> []))
              (Query_gen.generate ~seed ~count:50 g))
          [ 234; 235 ]);
    test "deterministic per seed" (fun () ->
        let g = random_graph ~seed:236 ~nodes:150 in
        let a = Query_gen.generate ~seed:1 g and b = Query_gen.generate ~seed:1 g in
        check_bool "same" true (a = b);
        let c = Query_gen.generate ~seed:2 g in
        check_bool "seed matters" true (a <> c));
    test "includes long paths and shorter variations" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:8 ~scale:20 () in
        let queries = Query_gen.generate ~seed:237 g in
        let lengths = List.map Array.length queries in
        check_bool "has max-length paths" true (List.mem 5 lengths);
        check_bool "has shorter paths" true (List.exists (fun l -> l < 5) lengths));
    test "invalid length bounds are rejected" (fun () ->
        let g = random_graph ~seed:238 ~nodes:50 in
        check_bool "raises" true
          (match Query_gen.generate ~min_len:3 ~max_len:2 g with
          | _ -> false
          | exception Invalid_argument _ -> true));
    test "to_strings mirrors the label names" (fun () ->
        let g = random_graph ~seed:239 ~nodes:100 in
        let queries = Query_gen.generate ~seed:239 ~count:10 g in
        List.iter2
          (fun q names -> check_int "lengths" (Array.length q) (List.length names))
          queries (Query_gen.to_strings g queries));
  ]

let miner_tests =
  [
    test "requirement is the longest query length minus one" (fun () ->
        let g = chain_graph [ "a"; "b"; "c" ] in
        let q1 = labels_of_strings g [ "b"; "c" ] in
        let q2 = labels_of_strings g [ "a"; "b"; "c" ] in
        let q3 = labels_of_strings g [ "a"; "b" ] in
        let reqs = Miner.mine g [ q1; q2; q3 ] in
        check_int "c needs 2" 2 (List.assoc "c" reqs);
        check_int "b needs 1" 1 (List.assoc "b" reqs);
        check_bool "a unqueried as target" true (not (List.mem_assoc "a" reqs)));
    test "mined D(k) answers the whole load without validation" (fun () ->
        let g = random_graph ~seed:241 ~nodes:150 in
        let queries = Query_gen.generate ~seed:241 g in
        let reqs = Miner.mine g queries in
        let idx = Dkindex_core.Dk_index.build g ~reqs in
        List.iter
          (fun q ->
            check_int "sound" 0
              (Dkindex_core.Query_eval.eval_path idx q).Dkindex_core.Query_eval.n_candidates)
          queries);
    test "quantile 1.0 equals plain mining" (fun () ->
        let g = random_graph ~seed:242 ~nodes:150 in
        let queries = Query_gen.generate ~seed:242 g in
        check_bool "equal" true (Miner.mine g queries = Miner.mine_quantile g ~quantile:1.0 queries));
    test "lower quantiles never require more" (fun () ->
        let g = random_graph ~seed:243 ~nodes:150 in
        let queries = Query_gen.generate ~seed:243 g in
        let full = Miner.mine g queries in
        let half = Miner.mine_quantile g ~quantile:0.5 queries in
        List.iter
          (fun (l, k) -> check_bool l true (k <= List.assoc l full))
          half);
    test "invalid quantile is rejected" (fun () ->
        let g = chain_graph [ "a" ] in
        check_bool "raises" true
          (match Miner.mine_quantile g ~quantile:1.5 [] with
          | _ -> false
          | exception Invalid_argument _ -> true));
    test "empty workload mines nothing" (fun () ->
        let g = chain_graph [ "a" ] in
        check_bool "empty" true (Miner.mine g [] = []));
  ]

module Tuner = Dkindex_workload.Tuner
module Index_graph = Dkindex_core.Index_graph
module Label_split = Dkindex_core.Label_split
module Dk_index = Dkindex_core.Dk_index

let tuner_tests =
  [
    test "observe evaluates exactly and fills the window" (fun () ->
        let g = random_graph ~seed:281 ~nodes:120 in
        let tuner = Tuner.create (Label_split.build g) in
        let queries = Query_gen.generate ~seed:281 ~count:30 g in
        List.iter
          (fun q ->
            let r = Tuner.observe tuner q in
            let expected =
              Dkindex_pathexpr.Matcher.eval_label_path g q ~cost:(Cost.create ())
            in
            check_int_list "exact" expected r.Dkindex_core.Query_eval.nodes)
          queries;
        check_bool "requirements mined" true (Tuner.required_now tuner <> []));
    test "window slides" (fun () ->
        let g = chain_graph [ "a"; "b"; "c" ] in
        let tuner = Tuner.create ~config:{ Tuner.default_config with window = 5 } (Label_split.build g) in
        let qb = labels_of_strings g [ "a"; "b" ] in
        let qc = labels_of_strings g [ "b"; "c" ] in
        ignore (Tuner.observe tuner qb);
        for _ = 1 to 10 do
          ignore (Tuner.observe tuner qc)
        done;
        (* the b-targeting query has slid out *)
        check_bool "only c remains" true
          (List.for_all (fun (l, _) -> String.equal l "c") (Tuner.required_now tuner)));
    test "lagging labels are detected and promotion clears them" (fun () ->
        let g = random_graph ~seed:282 ~nodes:150 in
        let tuner = Tuner.create (Label_split.build g) in
        let queries = Query_gen.generate ~seed:282 ~count:50 g in
        List.iter (fun q -> ignore (Tuner.observe tuner q)) queries;
        check_bool "lagging on a k=0 index" true (Tuner.lagging tuner <> []);
        let actions = Tuner.run_maintenance tuner in
        check_bool "promoted" true
          (List.exists (function Tuner.Promoted _ -> true | Tuner.Demoted _ -> false) actions);
        check_bool "nothing lags afterwards" true (Tuner.lagging tuner = []);
        Index_graph.check_invariants (Tuner.index tuner));
    test "maintenance is idempotent on a stable load" (fun () ->
        let g = random_graph ~seed:283 ~nodes:120 in
        let tuner = Tuner.create (Label_split.build g) in
        List.iter
          (fun q -> ignore (Tuner.observe tuner q))
          (Query_gen.generate ~seed:283 ~count:40 g);
        ignore (Tuner.run_maintenance tuner);
        check_bool "second pass is a no-op" true (Tuner.run_maintenance tuner = []));
    test "promotion makes the window load validation-free" (fun () ->
        let g = random_graph ~seed:284 ~nodes:150 in
        let tuner = Tuner.create (Label_split.build g) in
        let queries = Query_gen.generate ~seed:284 ~count:40 g in
        List.iter (fun q -> ignore (Tuner.observe tuner q)) queries;
        ignore (Tuner.run_maintenance tuner);
        List.iter
          (fun q ->
            let r = Dkindex_core.Query_eval.eval_path (Tuner.index tuner) q in
            check_int "no validation" 0 r.Dkindex_core.Query_eval.n_candidates)
          queries);
    test "size budget triggers demotion" (fun () ->
        let g = random_graph ~seed:285 ~nodes:200 in
        (* Start from a needlessly refined index and a tiny budget. *)
        let big = Dkindex_core.One_index.build g in
        let budget = Index_graph.n_nodes (Label_split.build g) + 10 in
        let tuner =
          Tuner.create ~config:{ Tuner.default_config with size_budget = Some budget } big
        in
        (* Only short queries in the window. *)
        List.iter
          (fun q -> ignore (Tuner.observe tuner q))
          (Query_gen.generate ~seed:285 ~count:30 ~min_len:2 ~max_len:2 g);
        let actions = Tuner.run_maintenance tuner in
        check_bool "demoted" true
          (List.exists (function Tuner.Demoted _ -> true | Tuner.Promoted _ -> false) actions);
        check_bool "within reach of the budget" true
          (Index_graph.n_nodes (Tuner.index tuner) < Index_graph.n_nodes big);
        (* and the window load still answers exactly *)
        List.iter
          (fun q ->
            let r = Dkindex_core.Query_eval.eval_path (Tuner.index tuner) q in
            let expected =
              Dkindex_pathexpr.Matcher.eval_label_path g q ~cost:(Cost.create ())
            in
            check_int_list "exact" expected r.Dkindex_core.Query_eval.nodes)
          (Query_gen.generate ~seed:286 ~count:20 g));
    test "cold labels below the hot fraction are not promoted" (fun () ->
        let g = chain_graph [ "a"; "b"; "c" ] in
        let tuner =
          Tuner.create
            ~config:{ Tuner.default_config with window = 100; hot_fraction = 0.2 }
            (Dkindex_core.Label_split.build g)
        in
        (* 95 queries on c, 1 on b: b stays below 20% of the window *)
        for _ = 1 to 95 do
          ignore (Tuner.observe tuner (labels_of_strings g [ "b"; "c" ]))
        done;
        ignore (Tuner.observe tuner (labels_of_strings g [ "a"; "b" ]));
        let reqs = Tuner.required_now tuner in
        check_bool "c required" true (List.mem_assoc "c" reqs);
        check_bool "b not required" true (not (List.mem_assoc "b" reqs)));
    test "empty queries are ignored by the window" (fun () ->
        let g = chain_graph [ "a" ] in
        let tuner = Tuner.create (Dkindex_core.Label_split.build g) in
        ignore (Tuner.observe tuner [||]);
        check_bool "no requirements" true (Tuner.required_now tuner = []));
    test "invalid window rejected" (fun () ->
        let g = chain_graph [ "a" ] in
        check_bool "raises" true
          (match Tuner.create ~config:{ Tuner.default_config with window = 0 } (Label_split.build g) with
          | _ -> false
          | exception Invalid_argument _ -> true));
  ]

let () =
  Alcotest.run "workload"
    [ ("query_gen", gen_tests); ("miner", miner_tests); ("tuner", tuner_tests) ]
