open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label

(* ROOT -> a1, a2 -> b each; a1, a2 same label. *)
let diamond () =
  let b = Dkindex_graph.Builder.create () in
  let a1 = Dkindex_graph.Builder.add_child b ~parent:0 "a" in
  let a2 = Dkindex_graph.Builder.add_child b ~parent:0 "a" in
  let bb = Dkindex_graph.Builder.add_child b ~parent:a1 "b" in
  Dkindex_graph.Builder.add_edge b a2 bb;
  (Dkindex_graph.Builder.build b, a1, a2, bb)

let of_partition_tests =
  [
    test "label partition becomes one node per label" (fun () ->
        let g, _, _, _ = diamond () in
        let idx = Label_split.build g in
        check_int "nodes" 3 (Index_graph.n_nodes idx);
        check_int "edges: ROOT->a, a->b" 2 (Index_graph.n_edges idx));
    test "extents and cls are mutually consistent" (fun () ->
        let g, a1, a2, _ = diamond () in
        let idx = Label_split.build g in
        check_int "a1 a2 share" (Index_graph.cls idx a1) (Index_graph.cls idx a2);
        let nd = Index_graph.node idx (Index_graph.cls idx a1) in
        check_int "extent size" 2 nd.Index_graph.extent_size;
        Index_graph.check_invariants idx);
    test "root_node holds the data root" (fun () ->
        let g, _, _, _ = diamond () in
        let idx = Label_split.build g in
        let nd = Index_graph.node idx (Index_graph.root_node idx) in
        check_bool "contains 0" true (Array.mem 0 nd.Index_graph.extent));
    test "class mixing labels is rejected" (fun () ->
        let g, _, _, _ = diamond () in
        let cls = Array.make (Data_graph.n_nodes g) 0 in
        check_bool "raises" true
          (match
             Index_graph.of_partition g ~cls ~n_classes:1
               ~k_of_class:(fun _ -> 0)
               ~req_of_class:(fun _ -> 0)
           with
          | _ -> false
          | exception Invalid_argument _ -> true));
    test "empty class is rejected" (fun () ->
        let g, _, _, _ = diamond () in
        let p = Kbisim.label_partition g in
        check_bool "raises" true
          (match
             Index_graph.of_partition g ~cls:p.Kbisim.cls ~n_classes:(p.Kbisim.n_classes + 1)
               ~k_of_class:(fun _ -> 0)
               ~req_of_class:(fun _ -> 0)
           with
          | _ -> false
          | exception Invalid_argument _ -> true));
    test "nodes_with_label finds live nodes" (fun () ->
        let g, a1, _, _ = diamond () in
        let idx = Label_split.build g in
        let a = Data_graph.label g a1 in
        check_int_list "a class" [ Index_graph.cls idx a1 ] (Index_graph.nodes_with_label idx a));
  ]

let split_tests =
  [
    test "split rewires edges and cls" (fun () ->
        let g, a1, a2, bb = diamond () in
        let idx = Label_split.build g in
        let a_class = Index_graph.cls idx a1 in
        let fresh = Index_graph.split idx a_class [ [| a1 |]; [| a2 |] ] in
        check_int "two nodes" 2 (List.length fresh);
        check_bool "old dead" false (Index_graph.is_alive idx a_class);
        check_bool "cls updated" true (Index_graph.cls idx a1 <> Index_graph.cls idx a2);
        (* b's parents are now both fresh nodes. *)
        let b_cls = Index_graph.cls idx bb in
        check_int "b has two parents" 2 (List.length (Index_graph.parents_list idx b_cls));
        Index_graph.check_invariants idx);
    test "split with one group is the identity" (fun () ->
        let g, a1, _, _ = diamond () in
        let idx = Label_split.build g in
        let a_class = Index_graph.cls idx a1 in
        let nd = Index_graph.node idx a_class in
        check_int_list "same id" [ a_class ]
          (Index_graph.split idx a_class [ nd.Index_graph.extent ]));
    test "split validates coverage" (fun () ->
        let g, a1, _, _ = diamond () in
        let idx = Label_split.build g in
        let a_class = Index_graph.cls idx a1 in
        check_bool "short groups raise" true
          (match Index_graph.split idx a_class [ [| a1 |] ] with
          | _ -> false
          | exception Invalid_argument _ -> true));
    test "split updates nodes_with_label" (fun () ->
        let g, a1, a2, _ = diamond () in
        let idx = Label_split.build g in
        let a = Data_graph.label g a1 in
        ignore (Index_graph.split idx (Index_graph.cls idx a1) [ [| a1 |]; [| a2 |] ]);
        check_int "two live nodes" 2 (List.length (Index_graph.nodes_with_label idx a)));
    test "resolve follows split forwarding" (fun () ->
        let g, a1, a2, _ = diamond () in
        let idx = Label_split.build g in
        let a_class = Index_graph.cls idx a1 in
        let fresh = Index_graph.split idx a_class [ [| a1 |]; [| a2 |] ] in
        check_int_list "forwarded" (List.sort compare fresh)
          (List.sort compare (Index_graph.resolve idx a_class));
        check_int_list "live id resolves to itself" [ List.hd fresh ]
          (Index_graph.resolve idx (List.hd fresh)));
    test "resolve chains across repeated splits" (fun () ->
        let g = chain_graph [ "x"; "x"; "x" ] in
        let idx = Label_split.build g in
        let x_class = Index_graph.cls idx 1 in
        let fresh = Index_graph.split idx x_class [ [| 1 |]; [| 2; 3 |] ] in
        let second = List.nth fresh 1 in
        ignore (Index_graph.split idx second [ [| 2 |]; [| 3 |] ]);
        check_int "three leaves" 3 (List.length (Index_graph.resolve idx x_class)));
    test "dead node access raises" (fun () ->
        let g, a1, a2, _ = diamond () in
        let idx = Label_split.build g in
        let a_class = Index_graph.cls idx a1 in
        ignore (Index_graph.split idx a_class [ [| a1 |]; [| a2 |] ]);
        check_bool "raises" true
          (match Index_graph.node idx a_class with
          | _ -> false
          | exception Invalid_argument _ -> true));
    test "split handles self-loop classes" (fun () ->
        (* x -> x edge inside one class. *)
        let b = Dkindex_graph.Builder.create () in
        let x1 = Dkindex_graph.Builder.add_child b ~parent:0 "x" in
        let x2 = Dkindex_graph.Builder.add_child b ~parent:x1 "x" in
        let g = Dkindex_graph.Builder.build b in
        let idx = Label_split.build g in
        let c = Index_graph.cls idx x1 in
        check_bool "self loop" true (Index_graph.has_index_edge idx c c);
        ignore (Index_graph.split idx c [ [| x1 |]; [| x2 |] ]);
        Index_graph.check_invariants idx;
        check_bool "x1 -> x2 edge kept" true
          (Index_graph.has_index_edge idx (Index_graph.cls idx x1) (Index_graph.cls idx x2)));
  ]

let view_tests =
  [
    test "as_data_graph puts the root class first" (fun () ->
        let g, _, _, _ = diamond () in
        let idx = Label_split.build g in
        let derived, map = Index_graph.as_data_graph idx in
        check_int "derived root is index root" (Index_graph.root_node idx) map.(0);
        check_string "ROOT label" "ROOT" (Data_graph.label_name derived 0));
    test "as_data_graph preserves edges" (fun () ->
        let g = random_graph ~seed:51 ~nodes:100 in
        let idx = A_k_index.build g ~k:2 in
        let derived, map = Index_graph.as_data_graph idx in
        check_int "node count" (Index_graph.n_nodes idx) (Data_graph.n_nodes derived);
        check_int "edge count" (Index_graph.n_edges idx) (Data_graph.n_edges derived);
        Data_graph.iter_edges derived (fun du dv ->
            check_bool "edge exists in index" true
              (Index_graph.has_index_edge idx map.(du) map.(dv))));
    test "partition_signature detects equality and difference" (fun () ->
        let g = random_graph ~seed:52 ~nodes:80 in
        let a = A_k_index.build g ~k:2 and b = A_k_index.build g ~k:2 in
        check_bool "same" true
          (Index_graph.partition_signature a = Index_graph.partition_signature b);
        let c = A_k_index.build g ~k:3 in
        check_bool "k matters or partition differs" true
          (Index_graph.partition_signature a <> Index_graph.partition_signature c));
    test "check_invariants flags a Definition 3 violation" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let idx = A_k_index.build g ~k:1 in
        (* Force a child similarity far above its parent's. *)
        Index_graph.set_k idx (Index_graph.cls idx 2) 5;
        check_bool "raises" true
          (match Index_graph.check_invariants idx with
          | _ -> false
          | exception Failure _ -> true));
    test "max_k ignores the infinite 1-index similarity" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let one = One_index.build g in
        check_int "finite max" 0 (Index_graph.max_k one);
        let a2 = A_k_index.build g ~k:2 in
        check_int "uniform k" 2 (Index_graph.max_k a2));
    test "add_index_edge registers both directions" (fun () ->
        let g, a1, _, bb = diamond () in
        let idx = Label_split.build g in
        let r = Index_graph.root_node idx and b_cls = Index_graph.cls idx bb in
        ignore a1;
        Index_graph.add_index_edge idx b_cls r;
        check_bool "forward" true (Index_graph.has_index_edge idx b_cls r);
        check_bool "backward" true
          (List.mem b_cls (Index_graph.parents_list idx r)));
  ]

let compact_tests =
  [
    test "compact preserves the partition, k, req and edges" (fun () ->
        let g = random_graph ~seed:341 ~nodes:100 in
        let idx = Label_split.build g in
        (* churn: promote a few nodes to create dead slots *)
        ignore (Dk_tune.promote idx (Index_graph.cls idx 5) ~k:2);
        ignore (Dk_tune.promote idx (Index_graph.cls idx 9) ~k:1);
        let compacted = Index_graph.compact idx in
        Index_graph.check_invariants compacted;
        check_bool "same signature" true
          (Index_graph.partition_signature idx = Index_graph.partition_signature compacted);
        check_int "same size" (Index_graph.n_nodes idx) (Index_graph.n_nodes compacted);
        check_int "same edges" (Index_graph.n_edges idx) (Index_graph.n_edges compacted);
        (* dense ids: every id below n_nodes is alive *)
        for id = 0 to Index_graph.n_nodes compacted - 1 do
          check_bool "dense" true (Index_graph.is_alive compacted id)
        done);
    test "compact result answers queries identically" (fun () ->
        let g = random_graph ~seed:342 ~nodes:120 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:342 ~count:15 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        Dk_tune.promote_to_requirements idx;
        let compacted = Index_graph.compact idx in
        List.iter
          (fun q ->
            check_int_list "same"
              (Query_eval.eval_path idx q).Query_eval.nodes
              (Query_eval.eval_path compacted q).Query_eval.nodes)
          queries);
  ]

let stats_tests =
  [
    test "stats of the label-split diamond" (fun () ->
        let g, _, _, _ = diamond () in
        let s = Index_stats.compute (Label_split.build g) in
        check_int "nodes" 3 s.Index_stats.n_nodes;
        check_int "data nodes" 4 s.Index_stats.n_data_nodes;
        check_int "largest extent" 2 s.Index_stats.largest_extent;
        check_int "singletons" 2 s.Index_stats.singleton_extents;
        check_bool "compression" true (abs_float (s.Index_stats.compression -. (4.0 /. 3.0)) < 1e-9);
        (match s.Index_stats.k_histogram with
        | [ (0, 3) ] -> ()
        | _ -> Alcotest.fail "histogram");
        match
          List.find_opt (fun (name, _, _) -> String.equal name "a") s.Index_stats.label_rows
        with
        | Some (_, 1, 2) -> ()
        | Some _ | None -> Alcotest.fail "label rows");
    test "infinite similarity lands in the -1 bucket" (fun () ->
        let g, _, _, _ = diamond () in
        let s = Index_stats.compute (One_index.build g) in
        check_bool "has -1" true (List.mem_assoc (-1) s.Index_stats.k_histogram));
    test "pp renders" (fun () ->
        let g, _, _, _ = diamond () in
        let text = Format.asprintf "%a" Index_stats.pp (Index_stats.compute (Label_split.build g)) in
        check_bool "mentions compression" true
          (let needle = "compression" in
           let rec find i =
             i + String.length needle <= String.length text
             && (String.sub text i (String.length needle) = needle || find (i + 1))
           in
           find 0));
  ]

let () =
  Alcotest.run "index_graph"
    [
      ("of_partition", of_partition_tests);
      ("split", split_tests);
      ("views", view_tests);
      ("stats", stats_tests);
      ("compact", compact_tests);
    ]
