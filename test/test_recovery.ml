(* Crash-safety tests for dkserve's durability layer.

   - Crash harness: fork a real server with WAL + checkpointing on a
     scratch directory, drive a pipelined mutation stream over TCP,
     SIGKILL the process at a random point, recover from the
     directory, and require the recovered index to (a) contain at
     least every acknowledged mutation and at most the sent prefix,
     and (b) answer the query workload bit-for-bit (costs included)
     like an in-process oracle that applied exactly that prefix.
     Repeated for >= 20 random kill points across sync policies.
   - Fault injection: WAL write failure degrades the server to
     read-only (typed Read_only reply, reads keep working); a crash
     mid-checkpoint-write leaves only an ignorable .tmp; a corrupt
     newest checkpoint falls back one generation; a torn WAL tail is
     truncated, never fatal; an unwritable final snapshot at shutdown
     exits nonzero after socket cleanup. *)

open Dkindex_core
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module Wire = Dkindex_server.Wire
module Server = Dkindex_server.Server
module Client = Dkindex_server.Client
module Wal = Dkindex_server.Wal
module Checkpoint = Dkindex_server.Checkpoint
module Faults = Dkindex_server.Faults
module Prng = Dkindex_datagen.Prng

(* ----------------------------------------------------------------- *)
(* Scratch directories *)

let temp_dir () =
  let path = Filename.temp_file "dkrecovery" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* ----------------------------------------------------------------- *)
(* The deterministic base index and mutation stream.  Both the forked
   server and the in-process oracle rebuild this from the same seeds,
   so equality of [Index_serial.to_string] means equality of state. *)

let build_base () =
  let g = Dkindex_datagen.Random_graph.graph ~seed:23 ~nodes:300 ~n_labels:5 ~extra_edges:120 () in
  Dk_index.build g ~reqs:[ ("l0", 2); ("l1", 3); ("l2", 2) ]

let queries =
  [ [ "l0" ]; [ "l1"; "l2" ]; [ "l0"; "l1" ]; [ "l2"; "l3"; "l0" ]; [ "l3"; "l3" ]; [ "l4" ] ]

(* A stream that is valid at every prefix: additions of absent edges,
   removals only of edges the stream itself added, an occasional
   maintenance promote. *)
let make_stream ~seed ~count =
  let idx = build_base () in
  let g = Index_graph.data idx in
  let n = Data_graph.n_nodes g in
  let rng = Prng.create ~seed in
  let present = Hashtbl.create 64 in
  let added = ref [] in
  let has (u, v) = Data_graph.has_edge g u v || Hashtbl.mem present (u, v) in
  let rec fresh_edge tries =
    let e = (Prng.int rng n, Prng.int rng n) in
    if has e && tries < 50 then fresh_edge (tries + 1) else e
  in
  List.init count (fun _ ->
      match !added with
      | e :: rest when Prng.bool rng 0.25 ->
        added := rest;
        Hashtbl.remove present e;
        Wal.Remove_edge { u = fst e; v = snd e }
      | _ when Prng.bool rng 0.06 -> Wal.Promote []
      | _ ->
        let e = fresh_edge 0 in
        Hashtbl.replace present e ();
        added := e :: !added;
        Wal.Add_edge { u = fst e; v = snd e })

let request_of_mutation : Wal.mutation -> Wire.request = function
  | Wal.Add_edge { u; v } -> Wire.Add_edge { u; v }
  | Wal.Remove_edge { u; v } -> Wire.Remove_edge { u; v }
  | Wal.Add_subgraph { graph; reqs } -> Wire.Add_subgraph { graph; reqs }
  | Wal.Promote pairs -> Wire.Promote pairs
  | Wal.Demote reqs -> Wire.Demote reqs

let eval_all idx =
  Index_graph.prepare_serving idx;
  let pool = Data_graph.pool (Index_graph.data idx) in
  let interned =
    List.map (fun labels -> Array.of_list (List.map (Label.Pool.intern pool) labels)) queries
  in
  Query_eval.eval_batch ~domains:1 ~strategy:`Forward ~cache:false idx interned

let check_same_answers ~what a b =
  Array.iteri
    (fun i (x : Query_eval.result) ->
      let y = b.(i) in
      let name = Printf.sprintf "%s: query %d" what i in
      Alcotest.(check (list int)) (name ^ " nodes") x.Query_eval.nodes y.Query_eval.nodes;
      Alcotest.(check int)
        (name ^ " index_visits") x.cost.Dkindex_pathexpr.Cost.index_visits
        y.cost.Dkindex_pathexpr.Cost.index_visits;
      Alcotest.(check int)
        (name ^ " data_visits") x.cost.Dkindex_pathexpr.Cost.data_visits
        y.cost.Dkindex_pathexpr.Cost.data_visits;
      Alcotest.(check int) (name ^ " n_candidates") x.n_candidates y.n_candidates;
      Alcotest.(check int) (name ^ " n_certain") x.n_certain y.n_certain)
    a

let read_port_line fd =
  let buf = Buffer.create 16 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> failwith "server died before reporting its port"
    | _ ->
      if Bytes.get b 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        go ()
      end
  in
  int_of_string (go ())

(* Fork a durable server over [dir].  The child does exactly what
   dkindex-server does: recover, start the checkpoint manager, serve. *)
let fork_server ?wal_fault_spec ?cp_fault_spec ~dir ~sync ~checkpoint_records () =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let status =
      try
        let base = build_base () in
        let recovery = Checkpoint.recover ~dir () in
        let index = match recovery.Checkpoint.index with Some i -> i | None -> base in
        let cfg = { (Checkpoint.default_config ~dir) with sync; checkpoint_records } in
        let wal_faults = Option.map Faults.create wal_fault_spec in
        let checkpoint_faults = Option.map Faults.create cp_fault_spec in
        let d = Checkpoint.start ?wal_faults ?checkpoint_faults ~recovery cfg index in
        match
          Server.run ~handle_signals:false ~durability:d
            ~on_ready:(fun port ->
              let line = string_of_int port ^ "\n" in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w)
            { Server.default_config with port = 0; workers = 1; deadline_s = 0.0 }
            index
        with
        | Ok () -> 0
        | Error _ -> 1
      with _ -> 2
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    (pid, port)

(* ----------------------------------------------------------------- *)
(* The crash harness *)

let sync_policies = [| Wal.Never; Wal.Always; Wal.Interval 3 |]

let run_crash_trial ~trial stream =
  let rng = Prng.create ~seed:(1000 + trial) in
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sync = sync_policies.(trial mod Array.length sync_policies) in
  (* Tiny rotation threshold so kills land before, during and after
     checkpoint rotations, not just inside one long WAL. *)
  let pid, port = fork_server ~dir ~sync ~checkpoint_records:4 () in
  let c = Client.connect ~port () in
  List.iter (fun m -> ignore (Client.send c (request_of_mutation m))) stream;
  let total = List.length stream in
  let acked = ref 0 in
  let recv_acks limit =
    try
      while !acked < limit do
        match (Client.recv c).Wire.msg with
        | Wire.Ok_reply _ -> incr acked
        | Wire.Error_reply { message; _ } ->
          Alcotest.fail (Printf.sprintf "trial %d: mutation %d rejected: %s" trial !acked message)
        | _ -> Alcotest.fail (Printf.sprintf "trial %d: unexpected response" trial)
      done
    with Failure _ -> ()
  in
  (* Wait for a random number of acknowledgements, then kill -9. *)
  recv_acks (Prng.int rng (total + 1));
  Unix.kill pid Sys.sigkill;
  (* Acknowledgements already in flight still count: the client saw
     them, so the recovered server must remember them. *)
  recv_acks max_int;
  Client.close c;
  ignore (Unix.waitpid [] pid);
  let acked = !acked in
  let recovery = Checkpoint.recover ~dir () in
  let recovered =
    match recovery.Checkpoint.index with
    | Some i -> i
    | None -> Alcotest.fail (Printf.sprintf "trial %d: no recoverable state" trial)
  in
  Alcotest.(check int)
    (Printf.sprintf "trial %d: replay clean" trial)
    0 recovery.Checkpoint.replay_errors;
  let recovered_str = Index_serial.to_string recovered in
  (* The recovered state must be oracle(j) for some sent prefix j with
     acked <= j <= total: everything acknowledged survived, nothing
     beyond what was sent appeared. *)
  let oracle = build_base () in
  let rec find j idx =
    if j >= acked && Index_serial.to_string idx = recovered_str then Some (j, idx)
    else if j >= total then None
    else find (j + 1) (Checkpoint.apply_mutation idx (List.nth stream j))
  in
  match find 0 oracle with
  | None ->
    Alcotest.fail
      (Printf.sprintf "trial %d (sync=%s): recovered state matches no prefix in [%d, %d]" trial
         (Wal.sync_policy_to_string sync) acked total)
  | Some (j, oracle_idx) ->
    check_same_answers
      ~what:(Printf.sprintf "trial %d (sync=%s, acked %d, durable %d/%d)" trial
               (Wal.sync_policy_to_string sync) acked j total)
      (eval_all oracle_idx) (eval_all recovered)

let test_crash_harness () =
  let stream = make_stream ~seed:7 ~count:30 in
  for trial = 0 to 20 do
    run_crash_trial ~trial stream
  done

(* A killed server restarted on the same directory serves the
   recovered state and accepts new mutations. *)
let test_restart_continues () =
  let stream = make_stream ~seed:8 ~count:12 in
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let pid, port = fork_server ~dir ~sync:Wal.Always ~checkpoint_records:4 () in
  let c = Client.connect ~port () in
  List.iter
    (fun m ->
      match Client.call c (request_of_mutation m) with
      | Wire.Ok_reply _ -> ()
      | _ -> Alcotest.fail "mutation rejected before kill")
    stream;
  Unix.kill pid Sys.sigkill;
  Client.close c;
  ignore (Unix.waitpid [] pid);
  (* Restart on the same directory; it must serve base + stream. *)
  let pid, port = fork_server ~dir ~sync:Wal.Always ~checkpoint_records:4 () in
  let oracle =
    List.fold_left (fun idx m -> Checkpoint.apply_mutation idx m) (build_base ()) stream
  in
  let want = eval_all oracle in
  let c = Client.connect ~port () in
  List.iteri
    (fun i labels ->
      match Client.call c (Wire.Query_path { flags = { no_cache = true }; labels }) with
      | Wire.Result r ->
        let w = want.(i) in
        Alcotest.(check (list int)) "nodes" w.Query_eval.nodes (Array.to_list r.Wire.nodes);
        Alcotest.(check int) "index_visits" w.cost.Dkindex_pathexpr.Cost.index_visits
          r.Wire.index_visits;
        Alcotest.(check int) "data_visits" w.cost.Dkindex_pathexpr.Cost.data_visits
          r.Wire.data_visits
      | _ -> Alcotest.fail "expected Result after restart")
    queries;
  (match Client.call c (Wire.Add_edge { u = 0; v = 1 }) with
  | Wire.Ok_reply _ | Wire.Error_reply _ -> ()
  | _ -> Alcotest.fail "restarted server refused a write");
  (match Client.call c Wire.Shutdown with
  | Wire.Ok_reply _ -> ()
  | _ -> Alcotest.fail "expected Ok_reply for Shutdown");
  let _, status = Unix.waitpid [] pid in
  Client.close c;
  Alcotest.(check bool) "clean exit" true (status = Unix.WEXITED 0)

(* ----------------------------------------------------------------- *)
(* Fault injection *)

(* WAL write failure: the server degrades to read-only instead of
   crashing; queries keep working and stats report the state. *)
let test_read_only_degradation () =
  let stream = make_stream ~seed:9 ~count:6 in
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let pid, port =
    fork_server ~wal_fault_spec:(Faults.Fail_nth_write 3) ~dir ~sync:(Wal.Interval 64)
      ~checkpoint_records:1000 ()
  in
  let c = Client.connect ~port () in
  let replies =
    List.map (fun m -> Client.call c (request_of_mutation m)) stream
  in
  let oks = List.filter (function Wire.Ok_reply _ -> true | _ -> false) replies in
  let ros = List.filter (function Wire.Read_only -> true | _ -> false) replies in
  Alcotest.(check int) "two writes acknowledged before the fault" 2 (List.length oks);
  Alcotest.(check int) "the rest refused as Read_only" (List.length stream - 2)
    (List.length ros);
  (* Reads still work. *)
  (match Client.call c Wire.Ping with
  | Wire.Pong -> ()
  | _ -> Alcotest.fail "expected Pong in read-only mode");
  (match Client.call c (Wire.Query_path { flags = { no_cache = true }; labels = [ "l0" ] }) with
  | Wire.Result _ -> ()
  | _ -> Alcotest.fail "expected Result in read-only mode");
  (match Client.call c Wire.Stats with
  | Wire.Stats_reply kvs ->
    Alcotest.(check (option string)) "read_only stat" (Some "true")
      (List.assoc_opt "read_only" kvs);
    Alcotest.(check (option string)) "durability stat" (Some "wal+checkpoint")
      (List.assoc_opt "durability" kvs);
    Alcotest.(check bool) "wal_error recorded" true
      (match List.assoc_opt "wal_error" kvs with Some "" | None -> false | Some _ -> true)
  | _ -> Alcotest.fail "expected Stats_reply");
  (match Client.call c Wire.Shutdown with
  | Wire.Ok_reply _ -> ()
  | _ -> Alcotest.fail "expected Ok_reply for Shutdown");
  let _, status = Unix.waitpid [] pid in
  Client.close c;
  (* Read-only shutdown cannot checkpoint the unlogged tail, but it is
     still a clean exit: the durable prefix is exactly what was
     acknowledged. *)
  Alcotest.(check bool) "clean exit" true (status = Unix.WEXITED 0);
  let recovery = Checkpoint.recover ~dir () in
  Alcotest.(check bool) "recoverable" true (recovery.Checkpoint.index <> None)

(* ENOSPC on the final shutdown checkpoint: log-and-exit-nonzero, not
   an exception through the drain loop. *)
let test_shutdown_enospc_exits_nonzero () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let pid, port =
    (* Each checkpoint is two faulted writes (.index then its .crc
       sidecar), so write 3 is the shutdown checkpoint's snapshot. *)
    fork_server ~cp_fault_spec:(Faults.Fail_nth_write 3) ~dir ~sync:(Wal.Interval 64)
      ~checkpoint_records:1000 ()
  in
  let c = Client.connect ~port () in
  (match Client.call c (Wire.Add_edge { u = 0; v = 5 }) with
  | Wire.Ok_reply _ -> ()
  | _ -> Alcotest.fail "expected Ok_reply");
  (match Client.call c Wire.Shutdown with
  | Wire.Ok_reply _ -> ()
  | _ -> Alcotest.fail "expected Ok_reply for Shutdown");
  let _, status = Unix.waitpid [] pid in
  Client.close c;
  Alcotest.(check bool) "exits nonzero, does not raise" true (status = Unix.WEXITED 1);
  (* The WAL survived even though the final checkpoint did not. *)
  let recovery = Checkpoint.recover ~dir () in
  Alcotest.(check int) "wal replayed" 1 recovery.Checkpoint.replayed_records

(* Crash mid-checkpoint-write: the torn snapshot stays a .tmp that
   recovery ignores; the WAL carries the state. *)
let test_crash_during_checkpoint () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let stream = make_stream ~seed:10 ~count:4 in
  (match Unix.fork () with
  | 0 ->
    let idx = build_base () in
    let s0 = Index_serial.to_string idx in
    let cp_bytes = String.length s0 in
    (* The initial checkpoint writes the snapshot plus its CRC
       sidecar; the crash must land inside the *second* snapshot. *)
    let sidecar_bytes =
      String.length
        (Printf.sprintf "%d %d\n" (Wal.crc32 s0 0 cp_bytes) cp_bytes)
    in
    let faults = Faults.create (Faults.Crash_after_bytes (cp_bytes + sidecar_bytes + 7)) in
    let cfg = { (Checkpoint.default_config ~dir) with checkpoint_records = 1000 } in
    let d = Checkpoint.start ~checkpoint_faults:faults cfg idx in
    let idx =
      List.fold_left
        (fun i m ->
          let i' = Checkpoint.apply_mutation i m in
          Checkpoint.log_mutation d m;
          i')
        idx stream
    in
    (* Crashes via _exit inside the snapshot write. *)
    ignore (Checkpoint.checkpoint_now d idx);
    Unix._exit 3
  | pid ->
    let _, status = Unix.waitpid [] pid in
    Alcotest.(check bool) "crashed inside the checkpoint write" true
      (status = Unix.WEXITED Faults.exit_code));
  let recovery = Checkpoint.recover ~dir () in
  let recovered =
    match recovery.Checkpoint.index with
    | Some i -> i
    | None -> Alcotest.fail "no recoverable state"
  in
  Alcotest.(check int) "wal replayed over the surviving checkpoint" (List.length stream)
    recovery.Checkpoint.replayed_records;
  let oracle =
    List.fold_left (fun i m -> Checkpoint.apply_mutation i m) (build_base ()) stream
  in
  check_same_answers ~what:"crash during checkpoint" (eval_all oracle) (eval_all recovered)

(* Corrupt newest checkpoint: recovery falls back a generation and
   replays the WAL chain; corrupting every checkpoint still does not
   raise.  A torn WAL tail is truncated. *)
let test_corrupt_checkpoint_fallback () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let stream = make_stream ~seed:11 ~count:8 in
  let first, second =
    let rec split i = function
      | rest when i = 0 -> ([], rest)
      | m :: rest ->
        let a, b = split (i - 1) rest in
        (m :: a, b)
      | [] -> ([], [])
    in
    split 5 stream
  in
  let idx = build_base () in
  let cfg = { (Checkpoint.default_config ~dir) with checkpoint_records = 1000 } in
  let d = Checkpoint.start cfg idx in
  let log idx m =
    let idx' = Checkpoint.apply_mutation idx m in
    Checkpoint.log_mutation d m;
    idx'
  in
  let idx = List.fold_left log idx first in
  (match Checkpoint.checkpoint_now d idx with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("mid-run checkpoint failed: " ^ e));
  let idx = List.fold_left log idx second in
  (match Checkpoint.close d idx with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("close failed: " ^ e));
  let oracle =
    List.fold_left (fun i m -> Checkpoint.apply_mutation i m) (build_base ()) stream
  in
  let want = eval_all oracle in
  let newest_cp dir =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n ->
           String.starts_with ~prefix:"checkpoint-" n && Filename.check_suffix n ".index")
    |> List.sort compare |> List.rev |> List.hd
  in
  (* Clean recovery first. *)
  let r0 = Checkpoint.recover ~dir () in
  check_same_answers ~what:"clean recovery" want (eval_all (Option.get r0.Checkpoint.index));
  Alcotest.(check int) "no fallback needed" 0 r0.Checkpoint.fallback_checkpoints;
  (* Torn tail on the newest WAL: truncated, not fatal. *)
  let newest_wal =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> String.starts_with ~prefix:"wal-" n)
    |> List.sort compare |> List.rev |> List.hd
  in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 (Filename.concat dir newest_wal) in
  output_string oc "\x00\x00\x00\x30garbage-that-is-not-a-record";
  close_out oc;
  let r1 = Checkpoint.recover ~dir () in
  Alcotest.(check bool) "torn tail truncated" true (r1.Checkpoint.torn_bytes > 0);
  check_same_answers ~what:"torn-tail recovery" want (eval_all (Option.get r1.Checkpoint.index));
  (* Corrupt the newest checkpoint: fall back one generation. *)
  let cp1 = newest_cp dir in
  let oc = open_out (Filename.concat dir cp1) in
  output_string oc "dkindex-index 2\ncounts 1 1 1\ngarbage";
  close_out oc;
  let r2 = Checkpoint.recover ~dir () in
  Alcotest.(check int) "fell back one checkpoint" 1 r2.Checkpoint.fallback_checkpoints;
  check_same_answers ~what:"fallback recovery" want (eval_all (Option.get r2.Checkpoint.index));
  (* Corrupt every checkpoint: still no exception, just no state. *)
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> String.starts_with ~prefix:"checkpoint-" n)
  |> List.iter (fun n ->
         let oc = open_out (Filename.concat dir n) in
         output_string oc "not an index";
         close_out oc);
  let r3 = Checkpoint.recover ~dir () in
  Alcotest.(check bool) "all corrupt: index is None, no crash" true
    (r3.Checkpoint.index = None);
  Alcotest.(check int) "both skipped" 2 r3.Checkpoint.fallback_checkpoints

let () =
  Alcotest.run "recovery"
    [
      ( "crash",
        [
          Alcotest.test_case "21 random SIGKILL points recover exactly" `Slow
            test_crash_harness;
          Alcotest.test_case "restart on the same directory continues" `Quick
            test_restart_continues;
        ] );
      ( "faults",
        [
          Alcotest.test_case "wal failure degrades to read-only" `Quick
            test_read_only_degradation;
          Alcotest.test_case "shutdown ENOSPC exits nonzero" `Quick
            test_shutdown_enospc_exits_nonzero;
          Alcotest.test_case "crash during checkpoint write" `Quick
            test_crash_during_checkpoint;
          Alcotest.test_case "corrupt checkpoints fall back; torn tails truncate" `Quick
            test_corrupt_checkpoint_fallback;
        ] );
    ]
