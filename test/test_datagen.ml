open Dkindex_datagen
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label

let prng_tests =
  [
    test "same seed, same stream" (fun () ->
        let a = Prng.create ~seed:5 and b = Prng.create ~seed:5 in
        for _ = 1 to 50 do
          check_bool "equal" true (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b))
        done);
    test "different seeds diverge" (fun () ->
        let a = Prng.create ~seed:5 and b = Prng.create ~seed:6 in
        check_bool "diverge" false (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)));
    test "copy forks the stream" (fun () ->
        let a = Prng.create ~seed:5 in
        ignore (Prng.next_int64 a);
        let b = Prng.copy a in
        check_bool "same next" true (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)));
    test "int respects its bound" (fun () ->
        let rng = Prng.create ~seed:1 in
        for _ = 1 to 1000 do
          let v = Prng.int rng 7 in
          check_bool "in range" true (v >= 0 && v < 7)
        done);
    test "int hits every residue" (fun () ->
        let rng = Prng.create ~seed:2 in
        let seen = Array.make 5 false in
        for _ = 1 to 500 do
          seen.(Prng.int rng 5) <- true
        done;
        Array.iteri (fun i s -> check_bool (Printf.sprintf "residue %d" i) true s) seen);
    test "int rejects non-positive bounds" (fun () ->
        let rng = Prng.create ~seed:1 in
        check_bool "raises" true
          (match Prng.int rng 0 with _ -> false | exception Invalid_argument _ -> true));
    test "range is inclusive on both ends" (fun () ->
        let rng = Prng.create ~seed:3 in
        let lo = ref max_int and hi = ref min_int in
        for _ = 1 to 500 do
          let v = Prng.range rng 2 4 in
          if v < !lo then lo := v;
          if v > !hi then hi := v;
          check_bool "bounds" true (v >= 2 && v <= 4)
        done;
        check_int "lo" 2 !lo;
        check_int "hi" 4 !hi);
    test "float stays below its bound" (fun () ->
        let rng = Prng.create ~seed:4 in
        for _ = 1 to 500 do
          let v = Prng.float rng 2.5 in
          check_bool "bounds" true (v >= 0.0 && v < 2.5)
        done);
    test "bool at extremes" (fun () ->
        let rng = Prng.create ~seed:5 in
        for _ = 1 to 100 do
          check_bool "never" false (Prng.bool rng 0.0);
          check_bool "always" true (Prng.bool rng 1.0)
        done);
    test "choose only returns members" (fun () ->
        let rng = Prng.create ~seed:6 in
        for _ = 1 to 100 do
          check_bool "member" true (List.mem (Prng.choose rng [| 1; 2; 3 |]) [ 1; 2; 3 ])
        done);
    test "choose_list rejects empty" (fun () ->
        let rng = Prng.create ~seed:6 in
        check_bool "raises" true
          (match Prng.choose_list rng [] with _ -> false | exception Invalid_argument _ -> true));
    test "shuffle permutes" (fun () ->
        let rng = Prng.create ~seed:7 in
        let arr = Array.init 20 Fun.id in
        Prng.shuffle rng arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        check_bool "permutation" true (sorted = Array.init 20 Fun.id));
    test "geometric respects max" (fun () ->
        let rng = Prng.create ~seed:8 in
        for _ = 1 to 200 do
          check_bool "capped" true (Prng.geometric rng ~p:0.1 ~max:3 <= 3)
        done);
  ]

let contains_label g name = Option.is_some (Label.Pool.find_opt (Data_graph.pool g) name)

let ref_edges_exist g pairs =
  let pool = Data_graph.pool g in
  List.iter
    (fun (src, dst) ->
      match (Label.Pool.find_opt pool src, Label.Pool.find_opt pool dst) with
      | Some ls, Some ld ->
        let found = ref false in
        Data_graph.iter_edges g (fun u v ->
            if Label.equal (Data_graph.label g u) ls && Label.equal (Data_graph.label g v) ld
            then found := true);
        check_bool (Printf.sprintf "%s -> %s edge exists" src dst) true !found
      | _ -> Alcotest.failf "labels %s/%s missing" src dst)
    pairs

let xmark_tests =
  [
    test "deterministic for a fixed seed" (fun () ->
        let a = Xmark.doc ~seed:3 ~scale:5 () and b = Xmark.doc ~seed:3 ~scale:5 () in
        check_bool "equal docs" true (Dkindex_xml.Xml_ast.equal_doc a b));
    test "seed changes the document" (fun () ->
        let a = Xmark.doc ~seed:3 ~scale:5 () and b = Xmark.doc ~seed:4 ~scale:5 () in
        check_bool "different" false (Dkindex_xml.Xml_ast.equal_doc a b));
    test "scale grows the graph" (fun () ->
        let small = Xmark.graph ~seed:1 ~scale:10 () and big = Xmark.graph ~seed:1 ~scale:40 () in
        check_bool "monotone" true (Data_graph.n_nodes big > 2 * Data_graph.n_nodes small));
    test "no unresolved references, fully reachable" (fun () ->
        let result =
          Dkindex_xml.Xml_to_graph.convert ~config:Xmark.config (Xmark.doc ~seed:2 ~scale:20 ())
        in
        check_int "unresolved" 0 (List.length result.Dkindex_xml.Xml_to_graph.unresolved_refs);
        check_bool "has references" true (result.Dkindex_xml.Xml_to_graph.n_reference_edges > 0);
        check_int "unreachable" 0
          (Data_graph.stats result.Dkindex_xml.Xml_to_graph.graph).Data_graph.unreachable);
    test "schema labels are present" (fun () ->
        let g = Xmark.graph ~seed:2 ~scale:10 () in
        List.iter
          (fun l -> check_bool l true (contains_label g l))
          [ "site"; "regions"; "item"; "person"; "open_auction"; "closed_auction";
            "category"; "bidder"; "itemref"; "VALUE" ]);
    test "every declared ref pair occurs in the data" (fun () ->
        ref_edges_exist (Xmark.graph ~seed:2 ~scale:30 ()) Xmark.ref_pairs);
  ]

let nasa_tests =
  [
    test "deterministic for a fixed seed" (fun () ->
        let a = Nasa.doc ~seed:3 ~scale:5 () and b = Nasa.doc ~seed:3 ~scale:5 () in
        check_bool "equal docs" true (Dkindex_xml.Xml_ast.equal_doc a b));
    test "no unresolved references, fully reachable" (fun () ->
        let result =
          Dkindex_xml.Xml_to_graph.convert ~config:Nasa.config (Nasa.doc ~seed:2 ~scale:20 ())
        in
        check_int "unresolved" 0 (List.length result.Dkindex_xml.Xml_to_graph.unresolved_refs);
        check_int "unreachable" 0
          (Data_graph.stats result.Dkindex_xml.Xml_to_graph.graph).Data_graph.unreachable);
    test "deeper than XMark (the paper's reason for using it)" (fun () ->
        let x = Data_graph.stats (Xmark.graph ~seed:2 ~scale:30 ()) in
        let n = Data_graph.stats (Nasa.graph ~seed:2 ~scale:30 ()) in
        check_bool "deeper" true (n.Data_graph.max_depth > x.Data_graph.max_depth));
    test "exactly 8 reference kinds declared, all occurring" (fun () ->
        check_int "eight" 8 (List.length Nasa.ref_pairs);
        ref_edges_exist (Nasa.graph ~seed:2 ~scale:40 ()) Nasa.ref_pairs);
    test "schema labels are present" (fun () ->
        let g = Nasa.graph ~seed:2 ~scale:10 () in
        List.iter
          (fun l -> check_bool l true (contains_label g l))
          [ "datasets"; "dataset"; "reference"; "source"; "history"; "tableHead";
            "field"; "definition"; "para" ]);
  ]

let treebank_tests =
  [
    test "deterministic and loadable" (fun () ->
        let a = Treebank.doc ~seed:3 ~scale:5 () and b = Treebank.doc ~seed:3 ~scale:5 () in
        check_bool "equal" true (Dkindex_xml.Xml_ast.equal_doc a b);
        let result =
          Dkindex_xml.Xml_to_graph.convert ~config:Treebank.config (Treebank.doc ~seed:2 ~scale:20 ())
        in
        check_int "unresolved" 0 (List.length result.Dkindex_xml.Xml_to_graph.unresolved_refs);
        check_int "unreachable" 0
          (Data_graph.stats result.Dkindex_xml.Xml_to_graph.graph).Data_graph.unreachable);
    test "deeper than both XMark and NASA" (fun () ->
        let t = Data_graph.stats (Treebank.graph ~seed:2 ~scale:30 ()) in
        let x = Data_graph.stats (Xmark.graph ~seed:2 ~scale:30 ()) in
        let n = Data_graph.stats (Nasa.graph ~seed:2 ~scale:30 ()) in
        check_bool "deepest" true
          (t.Data_graph.max_depth > x.Data_graph.max_depth
          && t.Data_graph.max_depth > n.Data_graph.max_depth));
    test "grammar labels are present" (fun () ->
        let g = Treebank.graph ~seed:2 ~scale:10 () in
        List.iter
          (fun l -> check_bool l true (contains_label g l))
          [ "S"; "NP"; "VP"; "PP"; "SBAR"; "trace"; "VALUE" ]);
    test "the 1-index compresses poorly (the treebank effect)" (fun () ->
        let g = Treebank.graph ~seed:4 ~scale:50 () in
        let one = Dkindex_core.One_index.build g in
        let ratio =
          float_of_int (Dkindex_core.Index_graph.n_nodes one)
          /. float_of_int (Data_graph.n_nodes g)
        in
        (* on XMark this ratio is ~0.1; treebank's diversity keeps it high *)
        check_bool "poor compression" true (ratio > 0.25));
    test "trace references resolve to NP/WHNP" (fun () ->
        let g = Treebank.graph ~seed:5 ~scale:40 () in
        let pool = Data_graph.pool g in
        let trace = Option.get (Dkindex_graph.Label.Pool.find_opt pool "trace") in
        let checked = ref 0 in
        List.iter
          (fun t ->
            Data_graph.iter_children g t (fun target ->
                incr checked;
                check_bool "NP or WHNP" true
                  (List.mem (Data_graph.label_name g target) [ "NP"; "WHNP" ])))
          (Data_graph.nodes_with_label g trace);
        check_bool "some traces exist" true (!checked > 0));
  ]

let random_tests =
  [
    test "graph is fully reachable" (fun () ->
        let g = Random_graph.graph ~seed:3 ~nodes:200 ~n_labels:4 ~extra_edges:50 () in
        check_int "nodes" 200 (Data_graph.n_nodes g);
        check_int "unreachable" 0 (Data_graph.stats g).Data_graph.unreachable);
    test "tree has exactly n-1 edges" (fun () ->
        let g = Random_graph.tree ~seed:3 ~nodes:150 ~n_labels:4 () in
        check_int "edges" 149 (Data_graph.n_edges g));
    test "deterministic" (fun () ->
        let a = Random_graph.graph ~seed:9 ~nodes:100 ~n_labels:3 ~extra_edges:20 () in
        let b = Random_graph.graph ~seed:9 ~nodes:100 ~n_labels:3 ~extra_edges:20 () in
        check_string "same serialization" (Dkindex_graph.Serial.to_string a)
          (Dkindex_graph.Serial.to_string b));
    test "rejects zero nodes" (fun () ->
        check_bool "raises" true
          (match Random_graph.graph ~nodes:0 ~n_labels:1 ~extra_edges:0 () with
          | _ -> false
          | exception Invalid_argument _ -> true));
  ]

let () =
  Alcotest.run "datagen"
    [
      ("prng", prng_tests);
      ("xmark", xmark_tests);
      ("nasa", nasa_tests);
      ("treebank", treebank_tests);
      ("random_graph", random_tests);
    ]
