(* Chaos tests for dkserve: the nemesis proxy, the acknowledged-history
   checker, read-path fault injection, and the overload defenses.

   As in test_replication, every server (and every chaos proxy) runs in
   a forked child process — OCaml 5 forbids Unix.fork once a domain
   exists, so the parent stays single-threaded and drives plain
   blocking clients.

   The flagship cases fork a primary and two replicas behind seeded
   chaos proxies, drive a recorded operation history through the
   turbulence, and then require the checker's verdict: every
   acknowledged write present in the final converged state, reads
   monotonic per (connection, member), staleness bounded, epoch
   fencing respected.

   The checker itself is checked: seeded violations (a lost
   acknowledged write, an over-stale read, a generation that went
   backwards, a read that unsaw an edge, a post-fencing ack) must each
   be rejected. *)

open Dkindex_core
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module Container = Dkindex_graph.Container
module Wire = Dkindex_server.Wire
module Server = Dkindex_server.Server
module Client = Dkindex_server.Client
module Wal = Dkindex_server.Wal
module Checkpoint = Dkindex_server.Checkpoint
module Replication = Dkindex_server.Replication
module Faults = Dkindex_server.Faults
module Chaos = Dkindex_server.Chaos
module History = Dkindex_server.History
module Obuf = Dkindex_server.Obuf
module Prng = Dkindex_datagen.Prng

let to_alcotest = QCheck_alcotest.to_alcotest
let now () = Unix.gettimeofday ()

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ----------------------------------------------------------------- *)
(* Scratch directories *)

let temp_dir () =
  let path = Filename.temp_file "dkchaos" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* ----------------------------------------------------------------- *)
(* Deterministic base index (same seeds as test_replication) *)

let build_base () =
  let g =
    Dkindex_datagen.Random_graph.graph ~seed:23 ~nodes:300 ~n_labels:5 ~extra_edges:120 ()
  in
  Dk_index.build g ~reqs:[ ("l0", 2); ("l1", 3); ("l2", 2) ]

let empty_index () =
  let pool = Label.Pool.create () in
  let root = Label.Pool.intern pool Label.root_name in
  let g = Data_graph.make ~pool ~labels:[| root |] ~edges:[] () in
  Dk_index.build g ~reqs:[]

(* Node pairs absent from the base graph, pairwise distinct — the write
   stream of a nemesis schedule, and therefore exactly the edges whose
   durability the checker will judge. *)
let fresh_edges ~seed ~count =
  let g = Index_graph.data (build_base ()) in
  let n = Data_graph.n_nodes g in
  let rng = Prng.create ~seed in
  let seen = Hashtbl.create 64 in
  let rec pick () =
    let u = Prng.int rng n and v = Prng.int rng n in
    if u = v || Data_graph.has_edge g u v || Hashtbl.mem seen (u, v) then pick ()
    else begin
      Hashtbl.replace seen (u, v) ();
      (u, v)
    end
  in
  List.init count (fun _ -> pick ())

(* ----------------------------------------------------------------- *)
(* Forked servers and proxies *)

let read_port_line fd =
  let buf = Buffer.create 16 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> failwith "child died before reporting its port"
    | _ ->
      if Bytes.get b 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        go ()
      end
  in
  int_of_string (go ())

let fork_server ?(sync = Wal.Always) ?(checkpoint_records = 1000) ?replica_of
    ?(empty = false) ?hub_heartbeat_s ?(config_f = fun c -> c) ~dir () =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let status =
      try
        let base = if empty then empty_index () else build_base () in
        let recovery = Checkpoint.recover ~dir () in
        let index = match recovery.Checkpoint.index with Some i -> i | None -> base in
        let cfg = { (Checkpoint.default_config ~dir) with sync; checkpoint_records } in
        let d = Checkpoint.start ~recovery cfg index in
        match
          Server.run ~handle_signals:false ~durability:d ?replica_of ?hub_heartbeat_s
            ~on_ready:(fun port ->
              let line = string_of_int port ^ "\n" in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w)
            (config_f { Server.default_config with port = 0; workers = 1; deadline_s = 0.0 })
            index
        with
        | Ok () -> 0
        | Error _ -> 1
      with _ -> 2
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    (pid, port)

(* A chaos proxy in its own process: the parent must stay domain-free
   to keep forking, and Chaos.run blocks — so it lives in a child and
   dies by SIGKILL at cleanup. *)
let fork_chaos ~seed ~upstream spec_str =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let status =
      try
        let spec =
          match Chaos.spec_of_string spec_str with
          | Ok s -> s
          | Error m -> failwith m
        in
        let px = Chaos.create ~seed ~upstream spec in
        let line = string_of_int (Chaos.port px) ^ "\n" in
        ignore (Unix.write_substring w line 0 (String.length line));
        Unix.close w;
        Chaos.run px;
        0
      with _ -> 2
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    (pid, port)

let rconfig ?(replica_id = 1) ?(auto_promote = false) ?(failover_timeout_s = 3600.0)
    ?(staleness_bound_s = 3600.0) ~port () =
  {
    (Replication.default_rconfig ~host:"127.0.0.1" ~port ~replica_id) with
    auto_promote;
    failover_timeout_s;
    staleness_bound_s;
  }

let kill_quiet pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let stats c =
  match Client.call c Wire.Stats with
  | Wire.Stats_reply kvs -> kvs
  | _ -> Alcotest.fail "expected Stats_reply"

let stat kvs key = Option.value (List.assoc_opt key kvs) ~default:""

let wait_for ?(timeout_s = 60.0) ~what c pred =
  let deadline = now () +. timeout_s in
  let rec go () =
    let kvs = stats c in
    if pred kvs then kvs
    else if now () > deadline then
      Alcotest.fail
        (Printf.sprintf "timed out waiting for %s; last stats: %s" what
           (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)))
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let replica_caught_up kvs =
  stat kvs "replication_connected" = "true"
  && stat kvs "replication_bytes_behind" = "0"
  && int_of_string_opt (stat kvs "replication_applied_seq") <> Some (-1)

let primary_wal_position cp =
  let kvs = stats cp in
  (int_of_string (stat kvs "wal_seq"), int_of_string (stat kvs "wal_bytes"))

let replica_applied_to (pseq, poff) kvs =
  replica_caught_up kvs
  &&
  match
    ( int_of_string_opt (stat kvs "replication_primary_seq"),
      int_of_string_opt (stat kvs "replication_primary_offset") )
  with
  | Some kseq, Some koff -> kseq > pseq || (kseq = pseq && koff >= poff)
  | _ -> false

let wait_replica_applied ?timeout_s ~what cp cr =
  let pos = primary_wal_position cp in
  wait_for ?timeout_s ~what cr (replica_applied_to pos)

(* ----------------------------------------------------------------- *)
(* The recorded driver: writes with every outcome classified, each
   followed by a probe of a random previously-acknowledged edge. *)

let classify_write = function
  | Wire.Ok_reply { epoch; _ } -> `Acked epoch
  | Wire.Error_reply { message; _ } -> `Refused message
  | Wire.Overloaded -> `Refused "overloaded"
  | Wire.Read_only -> `Refused "read-only"
  | Wire.Not_primary _ -> `Refused "not primary"
  | Wire.Fenced { epoch } -> `Refused (Printf.sprintf "fenced at epoch %d" epoch)
  | _ -> `Refused "unexpected response kind"

let probe_outcome ~endpoint c u v =
  match Client.call c (Wire.Has_edge { u; v }) with
  | Wire.Edge_reply { present; generation; age_ms } ->
    History.Read_ok
      { present; generation; age_ms; endpoint; epoch = Client.server_epoch c }
  | Wire.Error_reply { message; _ } -> History.Refused message
  | _ -> History.Refused "unexpected response kind"
  | exception Client.Error e -> History.Ambiguous (Client.error_to_string e)

let drive ~rec_ ~conn ~rng c edges =
  let seq = ref 0 in
  let next_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let emit op invoked outcome =
    History.record rec_
      {
        History.conn;
        seq = next_seq ();
        op;
        invoked_at = invoked;
        completed_at = now ();
        outcome;
      }
  in
  let acked = ref [] in
  let nacked = ref 0 in
  List.iter
    (fun (u, v) ->
      let inv = now () in
      let outcome =
        match Client.call c (Wire.Add_edge { u; v }) with
        | resp -> (
          match classify_write resp with
          | `Acked epoch ->
            acked := (u, v) :: !acked;
            incr nacked;
            History.Acked { epoch }
          | `Refused r -> History.Refused r)
        | exception Client.Error e -> History.Ambiguous (Client.error_to_string e)
      in
      emit (History.Add_edge { u; v }) inv outcome;
      match !acked with
      | [] -> ()
      | l ->
        let pu, pv = List.nth l (Prng.int rng (List.length l)) in
        let inv = now () in
        emit (History.Probe { u = pu; v = pv }) inv (probe_outcome ~endpoint:0 c pu pv))
    edges;
  !nacked

let probe_all ~rec_ ~conn ~endpoint c edges =
  List.iteri
    (fun i (u, v) ->
      let inv = now () in
      History.record rec_
        {
          History.conn;
          seq = i;
          op = History.Probe { u; v };
          invoked_at = inv;
          completed_at = now ();
          outcome = probe_outcome ~endpoint c u v;
        })
    edges

(* The convergence sweep runs on a direct connection — a partitioned
   proxy must not be able to fake a lost write. *)
let final_sweep c edges =
  List.map
    (fun (u, v) ->
      match Client.call c (Wire.Has_edge { u; v }) with
      | Wire.Edge_reply { present; _ } -> (u, v, present)
      | _ -> Alcotest.fail "final sweep probe failed")
    edges

let require_consistent ~name ~staleness_bound_ms ~final rec_ =
  let report = History.check ~staleness_bound_ms ~final (History.entries rec_) in
  if not report.History.ok then
    Alcotest.fail (name ^ ":\n" ^ History.report_to_string report);
  report

(* ----------------------------------------------------------------- *)
(* 1. Nemesis spec round-trip *)

(* Delay/jitter in half-milliseconds and event times in quarter-seconds
   are dyadic, so spec_to_string's shortest-decimal rendering is exact
   and the round-trip can demand structural equality. *)
let spec_gen =
  let open QCheck.Gen in
  let half = map (fun n -> float_of_int n *. 0.5) (int_bound 20) in
  let quarter = map (fun n -> float_of_int n *. 0.25) (int_bound 40) in
  let conn_at = pair (int_range 1 8) (int_bound 100_000) in
  let event_gen =
    oneof
      [
        map2 (fun a d -> { Chaos.at_s = a; action = Chaos.Partition d }) quarter quarter;
        map2 (fun a d -> { Chaos.at_s = a; action = Chaos.Stall_all d }) quarter quarter;
        map (fun a -> { Chaos.at_s = a; action = Chaos.Reset_all }) quarter;
      ]
  in
  map2
    (fun (delay_ms, jitter_ms, bandwidth_bps) (truncate, reset, stall, events) ->
      { Chaos.delay_ms; jitter_ms; bandwidth_bps; truncate; reset; stall; events })
    (triple half half (oneof [ return 0; int_range 1 1_000_000 ]))
    (quad
       (list_size (int_bound 3) conn_at)
       (list_size (int_bound 3) conn_at)
       (list_size (int_bound 3) conn_at)
       (list_size (int_bound 3) event_gen))

let spec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"chaos: nemesis spec round-trips"
    (QCheck.make ~print:Chaos.spec_to_string spec_gen)
    (fun sp ->
      match Chaos.spec_of_string (Chaos.spec_to_string sp) with
      | Ok sp' -> sp' = sp
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" e)

let test_spec_errors () =
  List.iter
    (fun s ->
      match Chaos.spec_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "spec %S must be rejected" s))
    [ "delay"; "bw:0"; "bw:-3"; "truncate:0@5"; "reset:1"; "stall:1@x"; "partition:2";
      "wat:3"; "delay:-1"; "reset-all:oops" ];
  match Chaos.spec_of_string "" with
  | Ok sp -> Alcotest.(check bool) "empty spec = no faults" true (sp = Chaos.no_faults)
  | Error e -> Alcotest.fail e

(* ----------------------------------------------------------------- *)
(* 2. The checker is checked: a simulated valid history passes, and
   each seeded violation is rejected. *)

type sim = { sentries : History.entry list; sfinal : (int * int * bool) list }

let sim_bound_ms = 400

let simulate seed =
  let rng = Prng.create ~seed in
  let t = ref 0.0 in
  let gen = [| 1; 1 |] in
  let applied = Hashtbl.create 64 in
  let replica = Hashtbl.create 64 in
  let attempted = Hashtbl.create 64 in
  let epoch = ref 0 in
  let seqs = Array.make 8 0 in
  let out = ref [] in
  let emit conn op outcome =
    t := !t +. 1.0;
    let s = seqs.(conn) in
    seqs.(conn) <- s + 1;
    out :=
      {
        History.conn;
        seq = s;
        op;
        invoked_at = !t;
        completed_at = !t +. 0.5;
        outcome;
      }
      :: !out
  in
  let write conn (u, v) kind =
    Hashtbl.replace attempted (u, v) ();
    match kind with
    | `Ack ->
      Hashtbl.replace applied (u, v) ();
      gen.(0) <- gen.(0) + 1;
      emit conn (History.Add_edge { u; v }) (History.Acked { epoch = !epoch })
    | `Refuse -> emit conn (History.Add_edge { u; v }) (History.Refused "overloaded")
    | `Ambiguous applied_too ->
      if applied_too then begin
        Hashtbl.replace applied (u, v) ();
        gen.(0) <- gen.(0) + 1
      end;
      emit conn (History.Add_edge { u; v }) (History.Ambiguous "timed out")
  in
  let read conn endpoint (u, v) =
    let present = Hashtbl.mem (if endpoint = 0 then applied else replica) (u, v) in
    let age = if endpoint = 0 then 0 else Prng.int rng sim_bound_ms in
    emit conn (History.Probe { u; v })
      (History.Read_ok { present; generation = gen.(endpoint); age_ms = age; endpoint; epoch = !epoch })
  in
  let sync_replica () =
    Hashtbl.iter (fun k () -> Hashtbl.replace replica k ()) applied;
    gen.(1) <- gen.(0)
  in
  (* forced prefix: material every corruption needs *)
  write 1 (1000, 1) `Ack;
  read 1 0 (1000, 1);
  read 1 0 (1000, 1);
  for _ = 1 to 60 do
    let conn = 1 + Prng.int rng 3 in
    let e = (Prng.int rng 50, Prng.int rng 50) in
    match Prng.int rng 10 with
    | 0 | 1 | 2 -> write conn e `Ack
    | 3 -> write conn e `Refuse
    | 4 -> write conn e (`Ambiguous (Prng.bool rng 0.5))
    | 5 -> sync_replica ()
    | 6 | 7 -> read conn 0 e
    | _ -> read conn 1 e
  done;
  (* failover: everything later runs at epoch 1 *)
  epoch := 1;
  write 1 (1001, 1) `Ack;
  read 1 0 (1001, 1);
  let sfinal =
    Hashtbl.fold (fun (u, v) () acc -> (u, v, Hashtbl.mem applied (u, v)) :: acc) attempted []
  in
  { sentries = List.rev !out; sfinal }

let check_sim { sentries; sfinal } =
  History.check ~staleness_bound_ms:sim_bound_ms ~final:sfinal sentries

let last_time entries = List.fold_left (fun a e -> Float.max a e.History.completed_at) 0.0 entries

(* Each corruption returns the history the checker must reject, plus
   the violation text it must produce. *)
let corruptions =
  [
    ( "lost acknowledged write",
      fun sim ->
        {
          sim with
          sfinal =
            List.map
              (fun (u, v, p) -> if (u, v) = (1000, 1) then (u, v, false) else (u, v, p))
              sim.sfinal;
        } );
    ( "unprobed acknowledged write",
      fun sim ->
        { sim with sfinal = List.filter (fun (u, v, _) -> (u, v) <> (1000, 1)) sim.sfinal } );
    ( "staleness bound exceeded",
      fun sim ->
        let flipped = ref false in
        let sentries =
          List.map
            (fun e ->
              match e.History.outcome with
              | History.Read_ok { present; generation; age_ms = _; endpoint; epoch }
                when not !flipped ->
                flipped := true;
                {
                  e with
                  History.outcome =
                    History.Read_ok
                      { present; generation; age_ms = 1_000_000; endpoint; epoch };
                }
              | _ -> e)
            sim.sentries
        in
        { sim with sentries } );
    ( "non-monotonic read",
      fun sim ->
        (* the forced prefix is entries 0,1,2 on conn 1: write, read, read *)
        let nread = ref 0 in
        let sentries =
          List.map
            (fun e ->
              match e.History.outcome with
              | History.Read_ok { present; generation = _; age_ms; endpoint; epoch }
                when e.History.conn = 1 && !nread < 2 ->
                incr nread;
                if !nread = 2 then
                  {
                    e with
                    History.outcome =
                      History.Read_ok { present; generation = 0; age_ms; endpoint; epoch };
                  }
                else e
              | _ -> e)
            sim.sentries
        in
        { sim with sentries } );
    ( "read went backwards",
      fun sim ->
        let t = last_time sim.sentries +. 1.0 in
        let e =
          {
            History.conn = 1;
            seq = 100_000;
            op = History.Probe { u = 1000; v = 1 };
            invoked_at = t;
            completed_at = t +. 0.5;
            outcome =
              History.Read_ok
                { present = false; generation = 1_000_000; age_ms = 0; endpoint = 0; epoch = 1 };
          }
        in
        { sim with sentries = sim.sentries @ [ e ] } );
    ( "post-fencing ack",
      fun sim ->
        let t = last_time sim.sentries +. 1.0 in
        let e =
          {
            History.conn = 1;
            seq = 100_000;
            op = History.Add_edge { u = 2000; v = 2 };
            invoked_at = t;
            completed_at = t +. 0.5;
            outcome = History.Acked { epoch = 0 };
          }
        in
        { sentries = sim.sentries @ [ e ]; sfinal = (2000, 2, true) :: sim.sfinal } );
  ]

let checker_checks =
  QCheck.Test.make ~count:40 ~name:"history: checker accepts valid, rejects seeded violations"
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let clean = check_sim (simulate seed) in
      if not clean.History.ok then
        QCheck.Test.fail_reportf "clean history rejected:\n%s"
          (History.report_to_string clean);
      List.for_all
        (fun (expect, corrupt) ->
          let r = check_sim (corrupt (simulate seed)) in
          if r.History.ok then
            QCheck.Test.fail_reportf "seeded %S not caught" expect
          else if not (List.exists (contains ~sub:expect) r.History.violations) then
            QCheck.Test.fail_reportf "seeded %S caught with wrong message:\n%s" expect
              (History.report_to_string r)
          else true)
        corruptions)

let test_history_roundtrip () =
  let sim = simulate 42 in
  let tricky =
    {
      History.conn = 7;
      seq = 0;
      op = History.Add_edge { u = 1; v = 2 };
      invoked_at = 1.5;
      completed_at = 2.0;
      outcome = History.Ambiguous "conn reset: 50% done\tthen\nsilence";
    }
  in
  let entries = sim.sentries @ [ tricky ] in
  let path = Filename.temp_file "dkhist" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      History.save ~entries ~final:sim.sfinal path;
      let entries', final' = History.load path in
      Alcotest.(check int) "entry count" (List.length entries) (List.length entries');
      Alcotest.(check bool) "entries round-trip" true (entries = entries');
      Alcotest.(check bool) "final round-trips" true (sim.sfinal = final'))

(* ----------------------------------------------------------------- *)
(* 3. Read-path fault injection (Faults.read satellite) *)

let mutation_eq (a : Wal.mutation) b = a = b

let test_wal_read_faults () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir)
  @@ fun () ->
  let path = Filename.concat dir "wal-test.log" in
  let w = Wal.create ~sync:Wal.Always path in
  for i = 0 to 19 do
    Wal.append w (Wal.Add_edge { u = i; v = i + 1 })
  done;
  Wal.close w;
  let clean = Wal.replay path in
  Alcotest.(check int) "clean replay: all records" 20 (List.length clean.Wal.mutations);
  Alcotest.(check int) "clean replay: no torn tail" 0 clean.Wal.torn_bytes;
  (* short reads and EINTR storms are absorbed: identical replay *)
  let short = Wal.replay ~faults:(Faults.create (Faults.Short_read 3)) path in
  Alcotest.(check bool) "short reads: same mutations" true
    (List.for_all2 mutation_eq clean.Wal.mutations short.Wal.mutations);
  let eintr = Wal.replay ~faults:(Faults.create (Faults.Eintr_reads 5)) path in
  Alcotest.(check bool) "EINTR storm: same mutations" true
    (List.for_all2 mutation_eq clean.Wal.mutations eintr.Wal.mutations);
  (* a flipped bit lands in the CRC check: replay truncates to a prefix *)
  let flip =
    Wal.replay ~faults:(Faults.create (Faults.Flip_bit_after_bytes (clean.Wal.valid_bytes / 2))) path
  in
  let n = List.length flip.Wal.mutations in
  Alcotest.(check bool) "bit flip: replay truncated" true (n < 20);
  Alcotest.(check bool) "bit flip: torn tail reported" true (flip.Wal.torn_bytes > 0);
  List.iteri
    (fun i m ->
      Alcotest.(check bool) "bit flip: prefix property" true
        (mutation_eq m (List.nth clean.Wal.mutations i)))
    flip.Wal.mutations

let test_checkpoint_read_faults () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir)
  @@ fun () ->
  let write_cp seq idx =
    let path = Filename.concat dir (Printf.sprintf "checkpoint-%09d.index" seq) in
    let oc = open_out_bin path in
    output_string oc (Index_serial.to_string idx);
    close_out oc
  in
  let base = build_base () in
  let newer = Checkpoint.apply_mutation base (Wal.Add_edge { u = 1; v = 7 }) in
  write_cp 0 base;
  write_cp 1 newer;
  let r = Checkpoint.recover ~dir () in
  Alcotest.(check int) "clean recovery loads the newest" 1 r.Checkpoint.checkpoint_seq;
  Alcotest.(check int) "clean recovery: no fallback" 0 r.Checkpoint.fallback_checkpoints;
  (* a bit flip in the newest snapshot's header makes it unloadable;
     recovery falls back one generation instead of raising *)
  let r' =
    Checkpoint.recover ~read_faults:(Faults.create (Faults.Flip_bit_after_bytes 3)) ~dir ()
  in
  Alcotest.(check int) "fell back one generation" 1 r'.Checkpoint.fallback_checkpoints;
  Alcotest.(check int) "older checkpoint loaded" 0 r'.Checkpoint.checkpoint_seq;
  Alcotest.(check bool) "an index was recovered" true (r'.Checkpoint.index <> None)

let test_container_read_injector () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      Container.read_injector := Unix.read;
      rm_rf dir)
  @@ fun () ->
  let path = Filename.concat dir "g.dkc" in
  let g = Index_graph.data (build_base ()) in
  Container.save_graph g path;
  let n = Data_graph.n_nodes g in
  Alcotest.(check int) "clean open" n
    (Data_graph.n_nodes (Container.open_graph ~verify:true path));
  (* short reads are absorbed by the read loop *)
  (Container.read_injector := fun fd b off len -> Unix.read fd b off (min len 7));
  Alcotest.(check int) "short-read open" n
    (Data_graph.n_nodes (Container.open_graph ~verify:true path));
  (* EINTR storms are retried *)
  let calls = ref 0 in
  (Container.read_injector :=
     fun fd b off len ->
       incr calls;
       if !calls mod 3 = 1 then raise (Unix.Unix_error (Unix.EINTR, "read", "injected"));
       Unix.read fd b off len);
  Alcotest.(check int) "EINTR open" n
    (Data_graph.n_nodes (Container.open_graph ~verify:true path));
  (* a flipped bit in the header region fails validation, not silently *)
  let seen = ref 0 and tripped = ref false in
  (Container.read_injector :=
     fun fd b off len ->
       let k = Unix.read fd b off len in
       (if (not !tripped) && k > 0 && !seen + k > 40 then begin
          let i = min (off + max 0 (40 - !seen)) (off + k - 1) in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
          tripped := true
        end);
       seen := !seen + k;
       k);
  (match Container.open_graph ~verify:true path with
  | _ -> Alcotest.fail "corrupt container must not open"
  | exception Container.Error _ -> ());
  Container.read_injector := Unix.read

(* ----------------------------------------------------------------- *)
(* 4. retry_writes:false — an ambiguous write is never silently resent *)

let fake_server_reply fd id resp =
  let ob = Obuf.create 256 in
  Wire.encode_response ob ~id resp;
  let s = Obuf.contents ob in
  ignore (Unix.write_substring fd s 0 (String.length s))

let fake_server_read fd =
  match Wire.read_frame ~read:(fun b o l -> Unix.read fd b o l) () with
  | `Frame p -> ( match Wire.decode_request p with Ok d -> Some d | Error _ -> None)
  | `Eof | `Oversized _ -> None
  | exception _ -> None

let hello_reply = Wire.Hello_reply { version = Wire.version; epoch = 0; role = Wire.Primary }

(* A fake server that drops the first Add_edge after receiving it —
   sent but unacknowledged, the ambiguous case — then watches the
   healed connection: any Add_edge arriving there is a silent resend
   and the child exits 9. *)
let fork_ambiguous_write_server () =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let status =
      try
        let ls = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt ls Unix.SO_REUSEADDR true;
        Unix.bind ls (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.listen ls 4;
        let port =
          match Unix.getsockname ls with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> assert false
        in
        let line = string_of_int port ^ "\n" in
        ignore (Unix.write_substring w line 0 (String.length line));
        Unix.close w;
        let a, _ = Unix.accept ls in
        (match fake_server_read a with
        | Some { Wire.msg = Wire.Hello _; id } -> fake_server_reply a id hello_reply
        | _ -> Unix._exit 3);
        (match fake_server_read a with
        | Some { Wire.msg = Wire.Add_edge _; _ } -> Unix.close a
        | _ -> Unix._exit 4);
        let b, _ = Unix.accept ls in
        let rec serve () =
          match fake_server_read b with
          | None -> 0
          | Some { Wire.msg = Wire.Add_edge _; _ } -> 9
          | Some { Wire.msg = Wire.Hello _; id } ->
            fake_server_reply b id hello_reply;
            serve ()
          | Some { Wire.msg = Wire.Ping; id } ->
            fake_server_reply b id Wire.Pong;
            serve ()
          | Some { Wire.id; _ } ->
            fake_server_reply b id Wire.Pong;
            serve ()
        in
        serve ()
      with _ -> 2
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    (pid, port)

let test_write_never_resent () =
  let pid, port = fork_ambiguous_write_server () in
  Fun.protect ~finally:(fun () -> kill_quiet pid)
  @@ fun () ->
  (* a generous retry budget: reads would heal, but the write must not *)
  let c = Client.connect ~port ~attempts:3 ~retries:3 ~timeout_s:5.0 () in
  (match Client.call c (Wire.Add_edge { u = 1; v = 2 }) with
  | exception Client.Error (Client.Retryable _) -> ()
  | exception Client.Error (Client.Fatal m) ->
    Alcotest.fail ("ambiguous write surfaced as Fatal: " ^ m)
  | _ -> Alcotest.fail "ambiguous write must surface an error, not a response");
  (* the next (idempotent) op heals the connection; the fake server is
     now watching for a resent Add_edge *)
  (match Client.call c Wire.Ping with
  | Wire.Pong -> ()
  | _ -> Alcotest.fail "expected Pong after healing");
  Client.close c;
  let _, st = Unix.waitpid [] pid in
  match st with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED 9 -> Alcotest.fail "the un-acked write was silently resent"
  | _ -> Alcotest.fail "fake server died unexpectedly"

(* ----------------------------------------------------------------- *)
(* 5. Client circuit breaker *)

let test_circuit_breaker () =
  let dir = temp_dir () in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir)
  @@ fun () ->
  let ppid, pport = fork_server ~dir () in
  pids := [ ppid ];
  let c =
    Client.connect ~port:pport ~attempts:1 ~timeout_s:0.5 ~breaker_threshold:2
      ~breaker_cooldown_s:0.3 ()
  in
  (match Client.call c Wire.Ping with
  | Wire.Pong -> ()
  | _ -> Alcotest.fail "expected Pong");
  kill_quiet ppid;
  pids := [];
  let expect_retryable what =
    match Client.call c Wire.Ping with
    | exception Client.Error (Client.Retryable m) -> m
    | exception Client.Error (Client.Fatal m) -> Alcotest.fail (what ^ ": fatal: " ^ m)
    | _ -> Alcotest.fail (what ^ ": expected a Retryable failure")
  in
  ignore (expect_retryable "first failure");
  ignore (expect_retryable "second failure (trips the breaker)");
  Alcotest.(check bool) "breaker is open" true (Client.circuit_open c);
  Alcotest.(check int) "one open so far" 1 (Client.circuit_open_count c);
  let m = expect_retryable "fast failure" in
  Alcotest.(check bool) "fails fast with a breaker message" true
    (contains ~sub:"circuit breaker" m);
  (* after the cooldown, a half-open probe runs — and re-opens on failure *)
  Unix.sleepf 0.4;
  ignore (expect_retryable "half-open probe");
  Alcotest.(check int) "probe failure re-opened the breaker" 2 (Client.circuit_open_count c);
  Client.close c

(* ----------------------------------------------------------------- *)
(* 6. Overload defenses: slow-loris eviction and admission control *)

let test_slow_loris_eviction () =
  let dir = temp_dir () in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir)
  @@ fun () ->
  let ppid, pport =
    fork_server
      ~config_f:(fun c -> { c with Server.read_progress_deadline_s = 0.5; idle_timeout_s = 0.0 })
      ~dir ()
  in
  pids := [ ppid ];
  let healthy = Client.connect ~port:pport ~timeout_s:10.0 () in
  (match Client.call healthy Wire.Ping with
  | Wire.Pong -> ()
  | _ -> Alcotest.fail "expected Pong");
  (* the loris: two bytes of a length prefix, then silence *)
  let loris = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect loris (Unix.ADDR_INET (Unix.inet_addr_loopback, pport));
  ignore (Unix.write_substring loris "\000\000" 0 2);
  ignore
    (wait_for ~timeout_s:10.0 ~what:"slow-loris eviction" healthy (fun kvs ->
         int_of_string_opt (stat kvs "evicted_slow_clients") = Some 1));
  (* the evicted connection sees EOF (or a reset) *)
  Unix.setsockopt_float loris Unix.SO_RCVTIMEO 5.0;
  (match Unix.read loris (Bytes.create 1) 0 1 with
  | 0 -> ()
  | _ -> Alcotest.fail "loris connection must be closed"
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
  Unix.close loris;
  (* well-behaved traffic kept working throughout *)
  (match Client.call healthy Wire.Ping with
  | Wire.Pong -> ()
  | _ -> Alcotest.fail "healthy connection must survive the eviction");
  Client.close healthy

let test_admission_control () =
  let dir = temp_dir () in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir)
  @@ fun () ->
  let ppid, pport = fork_server ~config_f:(fun c -> { c with Server.max_conns = 2 }) ~dir () in
  pids := [ ppid ];
  let c1 = Client.connect ~port:pport ~timeout_s:10.0 () in
  let c2 = Client.connect ~port:pport ~timeout_s:10.0 () in
  (match Client.call c1 Wire.Ping with Wire.Pong -> () | _ -> Alcotest.fail "c1 ping");
  (match Client.call c2 Wire.Ping with Wire.Pong -> () | _ -> Alcotest.fail "c2 ping");
  (* the third connection is shed with a typed Overloaded, then closed *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, pport));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  (match Wire.read_frame ~read:(fun b o l -> Unix.read fd b o l) () with
  | `Frame p -> (
    match Wire.decode_response p with
    | Ok { Wire.msg = Wire.Overloaded; _ } -> ()
    | Ok _ -> Alcotest.fail "expected Overloaded at admission"
    | Error e -> Alcotest.fail ("undecodable admission reply: " ^ e))
  | `Eof -> Alcotest.fail "expected an Overloaded frame before close"
  | `Oversized _ -> Alcotest.fail "oversized admission reply");
  (match Unix.read fd (Bytes.create 1) 0 1 with
  | 0 -> ()
  | _ -> Alcotest.fail "rejected connection must be closed after Overloaded"
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
  Unix.close fd;
  let kvs = stats c1 in
  Alcotest.(check bool) "rejections counted" true
    (match int_of_string_opt (stat kvs "rejected_at_admission") with
    | Some n -> n >= 1
    | None -> false);
  (* the admitted connections are unharmed *)
  (match Client.call c2 Wire.Ping with Wire.Pong -> () | _ -> Alcotest.fail "c2 survives");
  Client.close c1;
  Client.close c2

(* ----------------------------------------------------------------- *)
(* 7. Nemesis schedules: primary + 2 replicas behind chaos proxies,
   each run ending checker-verified converged. *)

let run_schedule ~name ~seed ~client_spec ~repl_spec ~n_writes () =
  let dir_p = temp_dir () and dir_r1 = temp_dir () and dir_r2 = temp_dir () in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r1;
      rm_rf dir_r2)
  @@ fun () ->
  let ppid, pport = fork_server ~dir:dir_p ~hub_heartbeat_s:0.05 () in
  pids := ppid :: !pids;
  (* replicas tail the primary through their own chaos proxy *)
  let xpid, xport = fork_chaos ~seed:(seed * 7 + 1) ~upstream:("127.0.0.1", pport) repl_spec in
  pids := xpid :: !pids;
  let r1pid, r1port =
    fork_server ~dir:dir_r1 ~empty:true ~replica_of:(rconfig ~replica_id:1 ~port:xport ()) ()
  in
  pids := r1pid :: !pids;
  let r2pid, r2port =
    fork_server ~dir:dir_r2 ~empty:true ~replica_of:(rconfig ~replica_id:2 ~port:xport ()) ()
  in
  pids := r2pid :: !pids;
  (* the recorded client drives through its own chaos proxy *)
  let cxpid, cxport =
    fork_chaos ~seed:(seed * 7 + 2) ~upstream:("127.0.0.1", pport) client_spec
  in
  pids := cxpid :: !pids;
  let rec_ = History.recorder () in
  let rng = Prng.create ~seed in
  let edges = fresh_edges ~seed:(seed + 100) ~count:n_writes in
  let cx =
    Client.connect ~port:cxport ~attempts:4 ~retries:2 ~timeout_s:1.5 ~backoff_base_s:0.02
      ~backoff_max_s:0.25 ~seed ()
  in
  let nacked = drive ~rec_ ~conn:0 ~rng cx edges in
  (try Client.close cx with _ -> ());
  Alcotest.(check bool) (name ^ ": some writes were acknowledged") true (nacked > 0);
  (* converge and sweep over direct connections, bypassing the chaos *)
  let cp = Client.connect ~port:pport ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  let cr1 = Client.connect ~port:r1port ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  let cr2 = Client.connect ~port:r2port ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  ignore (wait_replica_applied ~what:(name ^ ": replica 1 catch-up") cp cr1);
  ignore (wait_replica_applied ~what:(name ^ ": replica 2 catch-up") cp cr2);
  probe_all ~rec_ ~conn:11 ~endpoint:1 cr1 edges;
  probe_all ~rec_ ~conn:12 ~endpoint:2 cr2 edges;
  let final = final_sweep cp edges in
  (* replica convergence: every successful replica read agrees with the
     final state (they were probed after catching up) *)
  let ftbl = Hashtbl.create 64 in
  List.iter (fun (u, v, p) -> Hashtbl.replace ftbl (u, v) p) final;
  List.iter
    (fun e ->
      match (e.History.op, e.History.outcome) with
      | History.Probe { u; v }, History.Read_ok { present; endpoint; _ }
        when e.History.conn >= 11 -> (
        match Hashtbl.find_opt ftbl (u, v) with
        | Some p ->
          if p <> present then
            Alcotest.fail
              (Printf.sprintf "%s: replica %d disagrees with the converged state on (%d,%d)"
                 name endpoint u v)
        | None -> ())
      | _ -> ())
    (History.entries rec_);
  let report = require_consistent ~name ~staleness_bound_ms:3_600_000 ~final rec_ in
  Alcotest.(check bool) (name ^ ": reads were checked") true (report.History.reads_checked > 0);
  Client.close cp;
  Client.close cr1;
  Client.close cr2

let test_nemesis_partition_heal () =
  run_schedule ~name:"partition-and-heal" ~seed:11
    ~client_spec:"delay:1~2,partition:0.4+1.5" ~repl_spec:"delay:1~1" ~n_writes:40 ()

let test_nemesis_truncate_stream () =
  run_schedule ~name:"truncate-mid-stream" ~seed:12 ~client_spec:"delay:1~1"
    ~repl_spec:"truncate:1@3000,truncate:2@5000" ~n_writes:30 ()

let test_nemesis_reset_storm () =
  run_schedule ~name:"reset-storm" ~seed:13
    ~client_spec:"delay:1~2,reset-all:0.3,reset-all:0.9" ~repl_spec:"delay:1~1" ~n_writes:40 ()

(* A two-second stall of the replication feed with a 300 ms staleness
   bound: mid-stall replica reads must be refused Stale rather than
   served over-stale, and the checker proves no served read ever
   exceeded the bound. *)
let test_nemesis_stall_staleness () =
  let dir_p = temp_dir () and dir_r1 = temp_dir () and dir_r2 = temp_dir () in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r1;
      rm_rf dir_r2)
  @@ fun () ->
  let ppid, pport = fork_server ~dir:dir_p ~hub_heartbeat_s:0.05 () in
  pids := ppid :: !pids;
  let t0 = now () in
  let xpid, xport = fork_chaos ~seed:99 ~upstream:("127.0.0.1", pport) "stall-all:4+2" in
  pids := xpid :: !pids;
  let r1pid, r1port =
    fork_server ~dir:dir_r1 ~empty:true
      ~replica_of:(rconfig ~replica_id:1 ~staleness_bound_s:0.3 ~port:xport ())
      ()
  in
  pids := r1pid :: !pids;
  let r2pid, r2port =
    fork_server ~dir:dir_r2 ~empty:true
      ~replica_of:(rconfig ~replica_id:2 ~staleness_bound_s:0.3 ~port:xport ())
      ()
  in
  pids := r2pid :: !pids;
  let rec_ = History.recorder () in
  let rng = Prng.create ~seed:4 in
  let edges = fresh_edges ~seed:4 ~count:12 in
  let cp = Client.connect ~port:pport ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  let nacked = drive ~rec_ ~conn:0 ~rng cp edges in
  Alcotest.(check int) "all direct writes acked" 12 nacked;
  let cr1 = Client.connect ~port:r1port ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  let cr2 = Client.connect ~port:r2port ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  ignore (wait_replica_applied ~what:"replica 1 catch-up before stall" cp cr1);
  ignore (wait_replica_applied ~what:"replica 2 catch-up before stall" cp cr2);
  (* probe both replicas through the stall window [t0+4, t0+6] *)
  let seq = ref 0 in
  let probe_one conn endpoint c =
    let u, v = List.nth edges (Prng.int rng (List.length edges)) in
    let inv = now () in
    History.record rec_
      {
        History.conn;
        seq = !seq;
        op = History.Probe { u; v };
        invoked_at = inv;
        completed_at = now ();
        outcome = probe_outcome ~endpoint c u v;
      }
  in
  while now () < t0 +. 6.5 do
    probe_one 11 1 cr1;
    probe_one 12 2 cr2;
    incr seq;
    Unix.sleepf 0.05
  done;
  let entries = History.entries rec_ in
  let nstale =
    List.length
      (List.filter
         (fun e ->
           match e.History.outcome with
           | History.Refused r -> contains ~sub:"staleness" r
           | _ -> false)
         entries)
  in
  Alcotest.(check bool) "mid-stall reads were refused as stale" true (nstale > 0);
  let nserved =
    List.length
      (List.filter
         (fun e ->
           match (e.History.outcome, e.History.conn) with
           | History.Read_ok _, c when c >= 11 -> true
           | _ -> false)
         entries)
  in
  Alcotest.(check bool) "some replica reads were served within the bound" true (nserved > 0);
  (* heal, converge, judge *)
  ignore (wait_replica_applied ~what:"replica 1 catch-up after heal" cp cr1);
  ignore (wait_replica_applied ~what:"replica 2 catch-up after heal" cp cr2);
  let final = final_sweep cp edges in
  ignore (require_consistent ~name:"stall-staleness" ~staleness_bound_ms:300 ~final rec_);
  Client.close cp;
  Client.close cr1;
  Client.close cr2

(* Heartbeats delayed past --failover-timeout: the replica's feed goes
   silent mid-run, it promotes itself to epoch 1, and a client carrying
   the new epoch fences the old primary — refusals, never a stale ack. *)
let test_nemesis_autopromote_fencing () =
  let dir_p = temp_dir () and dir_r1 = temp_dir () in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r1)
  @@ fun () ->
  let ppid, pport = fork_server ~dir:dir_p ~hub_heartbeat_s:0.05 () in
  pids := ppid :: !pids;
  let xpid, xport = fork_chaos ~seed:55 ~upstream:("127.0.0.1", pport) "stall-all:3+30" in
  pids := xpid :: !pids;
  let r1pid, r1port =
    fork_server ~dir:dir_r1 ~empty:true
      ~replica_of:(rconfig ~replica_id:1 ~auto_promote:true ~failover_timeout_s:0.7 ~port:xport ())
      ()
  in
  pids := r1pid :: !pids;
  let rec_ = History.recorder () in
  let rng = Prng.create ~seed:5 in
  let all_edges = fresh_edges ~seed:5 ~count:20 in
  let edges = List.filteri (fun i _ -> i < 15) all_edges in
  let edges2 = List.filteri (fun i _ -> i >= 15) all_edges in
  let cp = Client.connect ~port:pport ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  let nacked = drive ~rec_ ~conn:0 ~rng cp edges in
  Alcotest.(check int) "epoch-0 writes all acked" 15 nacked;
  let cr1 = Client.connect ~port:r1port ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  (* catch up if the stall hasn't hit yet; then the watchdog fires *)
  let pos = primary_wal_position cp in
  ignore
    (wait_for ~what:"replica catch-up or self-promotion" cr1 (fun kvs ->
         replica_applied_to pos kvs || stat kvs "role" = "primary"));
  let kvs = wait_for ~what:"auto-promotion" cr1 (fun kvs -> stat kvs "role" = "primary") in
  Alcotest.(check string) "self-promoted to epoch 1" "1" (stat kvs "epoch");
  (* observe the new epoch (a fresh client hellos at epoch 1)... *)
  let cr1b = Client.connect ~port:r1port ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  Alcotest.(check int) "hello reports epoch 1" 1 (Client.server_epoch cr1b);
  probe_all ~rec_ ~conn:11 ~endpoint:1 cr1b edges;
  (* ...then writes against the deposed primary are fenced, not acked *)
  let cp2 = Client.connect ~port:pport ~epoch:1 ~attempts:5 ~timeout_s:10.0 () in
  List.iteri
    (fun i (u, v) ->
      let inv = now () in
      let outcome =
        match Client.call cp2 (Wire.Add_edge { u; v }) with
        | resp -> (
          match classify_write resp with
          | `Acked epoch -> History.Acked { epoch }
          | `Refused r -> History.Refused r)
        | exception Client.Error e -> History.Ambiguous (Client.error_to_string e)
      in
      History.record rec_
        {
          History.conn = 2;
          seq = i;
          op = History.Add_edge { u; v };
          invoked_at = inv;
          completed_at = now ();
          outcome;
        })
    edges2;
  let entries = History.entries rec_ in
  let nfenced =
    List.length
      (List.filter
         (fun e ->
           match e.History.outcome with
           | History.Refused r -> contains ~sub:"fenced" r
           | _ -> false)
         entries)
  in
  Alcotest.(check int) "every post-promotion write was fenced" (List.length edges2) nfenced;
  (* the deposed primary holds every epoch-0 ack; sweep it *)
  let final = final_sweep cp all_edges in
  ignore
    (require_consistent ~name:"autopromote-fencing" ~staleness_bound_ms:3_600_000 ~final rec_);
  Client.close cp;
  Client.close cp2;
  Client.close cr1;
  Client.close cr1b

(* Failover under a reset storm: ambiguous writes pile up while the
   client path is being aborted, the primary is then killed, a replica
   is promoted, and the checker verifies every epoch-0 and epoch-1 ack
   against the new primary's converged state. *)
let test_nemesis_failover_reset_storm () =
  let dir_p = temp_dir () and dir_r1 = temp_dir () in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r1)
  @@ fun () ->
  let ppid, pport = fork_server ~dir:dir_p ~hub_heartbeat_s:0.05 () in
  pids := ppid :: !pids;
  let xpid, xport = fork_chaos ~seed:66 ~upstream:("127.0.0.1", pport) "delay:1~1" in
  pids := xpid :: !pids;
  let r1pid, r1port =
    fork_server ~dir:dir_r1 ~empty:true ~replica_of:(rconfig ~replica_id:1 ~port:xport ()) ()
  in
  pids := r1pid :: !pids;
  let cxpid, cxport =
    fork_chaos ~seed:67 ~upstream:("127.0.0.1", pport) "delay:1~2,reset-all:0.3,reset-all:0.8"
  in
  pids := cxpid :: !pids;
  let rec_ = History.recorder () in
  let rng = Prng.create ~seed:6 in
  let all_edges = fresh_edges ~seed:6 ~count:40 in
  let edges = List.filteri (fun i _ -> i < 30) all_edges in
  let edges2 = List.filteri (fun i _ -> i >= 30) all_edges in
  let cx =
    Client.connect ~port:cxport ~attempts:4 ~retries:2 ~timeout_s:1.5 ~backoff_base_s:0.02
      ~backoff_max_s:0.25 ~seed:6 ()
  in
  let nacked = drive ~rec_ ~conn:0 ~rng cx edges in
  (try Client.close cx with _ -> ());
  Alcotest.(check bool) "some epoch-0 writes were acknowledged" true (nacked > 0);
  (* every applied write (acked or ambiguous) must reach the replica
     before the kill — this is the --wait-replication discipline *)
  let cp = Client.connect ~port:pport ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  let cr1 = Client.connect ~port:r1port ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  ignore (wait_replica_applied ~what:"replica catch-up before kill" cp cr1);
  Client.close cp;
  kill_quiet ppid;
  pids := List.filter (fun p -> p <> ppid) !pids;
  (match Client.call cr1 Wire.Promote_primary with
  | Wire.Ok_reply { epoch; _ } -> Alcotest.(check int) "promotion bumps the epoch" 1 epoch
  | Wire.Error_reply { message; _ } -> Alcotest.fail ("promote failed: " ^ message)
  | _ -> Alcotest.fail "expected Ok_reply for Promote_primary");
  (* epoch-1 traffic on the new primary *)
  let cr1b = Client.connect ~port:r1port ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  let nacked2 = drive ~rec_ ~conn:1 ~rng cr1b edges2 in
  Alcotest.(check int) "promoted primary accepts every write" (List.length edges2) nacked2;
  Alcotest.(check bool) "acks carry epoch 1" true
    (List.exists
       (fun e ->
         match e.History.outcome with History.Acked { epoch } -> epoch = 1 | _ -> false)
       (History.entries rec_));
  probe_all ~rec_ ~conn:11 ~endpoint:1 cr1b all_edges;
  let final = final_sweep cr1b all_edges in
  ignore
    (require_consistent ~name:"failover-reset-storm" ~staleness_bound_ms:3_600_000 ~final rec_);
  Client.close cr1;
  Client.close cr1b

(* ----------------------------------------------------------------- *)

let () =
  Alcotest.run "chaos"
    [
      ( "spec",
        [
          to_alcotest spec_roundtrip;
          Alcotest.test_case "malformed nemesis specs are rejected" `Quick test_spec_errors;
        ] );
      ( "checker",
        [
          to_alcotest checker_checks;
          Alcotest.test_case "history save/load round-trips" `Quick test_history_roundtrip;
        ] );
      ( "read-faults",
        [
          Alcotest.test_case "WAL replay under read faults" `Quick test_wal_read_faults;
          Alcotest.test_case "checkpoint recovery falls back on a flipped bit" `Quick
            test_checkpoint_read_faults;
          Alcotest.test_case "container open under an injected reader" `Quick
            test_container_read_injector;
        ] );
      ( "client",
        [
          Alcotest.test_case "an ambiguous write is never silently resent" `Quick
            test_write_never_resent;
          Alcotest.test_case "circuit breaker opens, fails fast, re-opens" `Quick
            test_circuit_breaker;
        ] );
      ( "overload",
        [
          Alcotest.test_case "slow-loris clients are evicted; others unharmed" `Quick
            test_slow_loris_eviction;
          Alcotest.test_case "admission control sheds with typed Overloaded" `Quick
            test_admission_control;
        ] );
      ( "nemesis",
        [
          Alcotest.test_case "partition and heal" `Quick test_nemesis_partition_heal;
          Alcotest.test_case "truncate mid-replication-stream" `Quick test_nemesis_truncate_stream;
          Alcotest.test_case "reset storm on the client path" `Quick test_nemesis_reset_storm;
          Alcotest.test_case "stalled feed: staleness bound enforced" `Quick
            test_nemesis_stall_staleness;
          Alcotest.test_case "delayed heartbeats: auto-promote + fencing" `Quick
            test_nemesis_autopromote_fencing;
          Alcotest.test_case "failover under a reset storm" `Quick
            test_nemesis_failover_reset_storm;
        ] );
    ]
