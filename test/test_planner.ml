(* Cost-based query planner: statistics catalog correctness and
   laziness, plan enumeration/ranking, executor equivalence (every
   candidate access path answers bit for bit like direct evaluation),
   and robustness of the whole family under update churn. *)

open Dkindex_graph
open Dkindex_core
open Testlib
module Cost = Dkindex_pathexpr.Cost
module Path_ast = Dkindex_pathexpr.Path_ast
module Path_parser = Dkindex_pathexpr.Path_parser
module Matcher = Dkindex_pathexpr.Matcher
module Query_gen = Dkindex_workload.Query_gen
module Miner = Dkindex_workload.Miner
module Stats_catalog = Dkindex_planner.Stats_catalog
module Plan = Dkindex_planner.Plan
module Planner = Dkindex_planner.Planner
module Prng = Dkindex_datagen.Prng

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

(* The full family the CLI registers, in the same order. *)
let build_family ?(with_cache = true) ?(k = 2) ?(seed = 42) ?(workload = 20) g =
  let queries = Query_gen.generate ~seed ~count:workload g in
  let reqs = Miner.mine g queries in
  let pl = Planner.create g in
  let reg name idx =
    if with_cache then Planner.register pl ~name ~cache:(Validation_cache.create idx) idx
    else Planner.register pl ~name idx
  in
  reg "dk" (Dk_index.build g ~reqs);
  reg "ak" (A_k_index.build g ~k);
  reg "1-index" (One_index.build g);
  reg "label-split" (Label_split.build g);
  reg "fb" (Fb_index.build g);
  Planner.observe_workload pl queries;
  (pl, queries)

let oracle g path =
  let cost = Cost.create () in
  Matcher.eval_label_path g path ~cost

let expr_of_path g path =
  Path_ast.seq_of_labels
    (List.map (Label.Pool.name (Data_graph.pool g)) (Array.to_list path))

(* Execute every enumerated plan for [path] plus every forced pairwise
   intersection, requiring all node lists to equal the raw oracle. *)
let check_all_plans_agree pl g path =
  if Array.length path > 0 then begin
    let expr = expr_of_path g path in
    let want = oracle g path in
    let ranked = Planner.plans pl expr in
    List.iter
      (fun p ->
        let r = Planner.execute pl p expr in
        if r.Query_eval.nodes <> want then
          Alcotest.failf "plan %s disagrees with oracle (%d vs %d nodes)"
            (Plan.describe p) (List.length r.Query_eval.nodes) (List.length want))
      ranked;
    (* Forced intersections, whether or not the enumerator priced them. *)
    let names = Planner.names pl in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a < b then begin
              let p =
                {
                  Plan.access = Plan.Intersect (a, b);
                  est_index_visits = 0.0;
                  est_candidates = 0.0;
                  est_data_visits = 0.0;
                  est_total = 0.0;
                  certain = false;
                }
              in
              let r = Planner.execute pl p expr in
              if r.Query_eval.nodes <> want then
                Alcotest.failf "intersect(%s,%s) disagrees with oracle" a b
            end)
          names)
      names
  end

(* ------------------------------------------------------------------ *)
(* Statistics catalog                                                  *)

let catalog_tests =
  [
    test "catalog rows match a direct recount" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:9 ~scale:10 () in
        let idx = A_k_index.build g ~k:2 in
        let cat = Stats_catalog.create idx in
        check_int "n_inodes" (Index_graph.n_nodes idx) (Stats_catalog.n_inodes cat);
        check_int "n_iedges" (Index_graph.n_edges idx) (Stats_catalog.n_iedges cat);
        check_int "n_data_nodes" (Data_graph.n_nodes g) (Stats_catalog.n_data_nodes cat);
        check_int "n_data_edges" (Data_graph.n_edges g) (Stats_catalog.n_data_edges cat);
        (* recount one label's rows by hand *)
        let pool = Data_graph.pool g in
        for code = 0 to Label.Pool.count pool - 1 do
          let l = Label.of_int code in
          let inodes = ref 0 and extent = ref 0 and mx = ref 0 and cov1 = ref 0 in
          Index_graph.iter_alive idx (fun nd ->
              if Label.equal nd.Index_graph.label l then begin
                incr inodes;
                extent := !extent + nd.Index_graph.extent_size;
                if nd.Index_graph.extent_size > !mx then mx := nd.Index_graph.extent_size;
                if nd.Index_graph.k >= 1 then cov1 := !cov1 + nd.Index_graph.extent_size
              end);
          check_int "label_inodes" !inodes (Stats_catalog.label_inodes cat l);
          check_int "label_extent" !extent (Stats_catalog.label_extent cat l);
          check_int "label_max_extent" !mx (Stats_catalog.label_max_extent cat l);
          check_int "covered_extent m=1" !cov1 (Stats_catalog.covered_extent cat l 1);
          check_int "covered + uncovered = extent" !extent
            (Stats_catalog.covered_extent cat l 1 + Stats_catalog.uncovered_extent cat l 1)
        done;
        (* k histogram covers every live node *)
        let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Stats_catalog.k_histogram cat) in
        check_int "k_histogram total" (Index_graph.n_nodes idx) total);
    test "covered_extent is monotone in m and saturates at k_cap" (fun () ->
        let g = random_graph ~seed:31 ~nodes:120 in
        let idx = A_k_index.build g ~k:3 in
        let cat = Stats_catalog.create idx in
        let pool = Data_graph.pool g in
        for code = 0 to Label.Pool.count pool - 1 do
          let l = Label.of_int code in
          check_int "m=0 covers whole label" (Stats_catalog.label_extent cat l)
            (Stats_catalog.covered_extent cat l 0);
          let prev = ref max_int in
          for m = 0 to Stats_catalog.k_cap do
            let c = Stats_catalog.covered_extent cat l m in
            if c > !prev then Alcotest.failf "covered_extent not monotone at m=%d" m;
            prev := c
          done;
          check_int "beyond cap = at cap"
            (Stats_catalog.covered_extent cat l Stats_catalog.k_cap)
            (Stats_catalog.covered_extent cat l (Stats_catalog.k_cap + 40))
        done);
    test "refresh is generation-gated" (fun () ->
        let g = random_graph ~seed:77 ~nodes:80 in
        let queries = Query_gen.generate ~seed:77 ~count:10 g in
        let idx = Dk_index.build g ~reqs:(Miner.mine g queries) in
        let cat = Stats_catalog.create idx in
        check_int "one sweep at create" 1 (Stats_catalog.refreshes cat);
        Stats_catalog.refresh cat;
        Stats_catalog.refresh cat;
        check_int "no-op refreshes" 1 (Stats_catalog.refreshes cat);
        let u = 0 and v = Data_graph.n_nodes g - 1 in
        if not (Data_graph.has_edge g u v) then Dk_update.add_edge idx u v;
        Stats_catalog.refresh cat;
        check_int "resweep after mutation" 2 (Stats_catalog.refreshes cat);
        check_int "generation tracked" (Index_graph.generation idx)
          (Stats_catalog.generation cat));
    test "cache hit rate feeds from observe_cache" (fun () ->
        let g = random_graph ~seed:5 ~nodes:40 in
        let idx = One_index.build g in
        let cat = Stats_catalog.create idx in
        Alcotest.(check (float 1e-9)) "no observations" 0.0 (Stats_catalog.cache_hit_rate cat);
        Stats_catalog.observe_cache cat ~hits:3 ~misses:1;
        Alcotest.(check (float 1e-9)) "3/4" 0.75 (Stats_catalog.cache_hit_rate cat));
  ]

(* ------------------------------------------------------------------ *)
(* Index_stats.source (satellite: lazy recompute off the generation
   counter)                                                            *)

let index_stats_tests =
  [
    test "Index_stats.source recomputes only when the index moves" (fun () ->
        let g = random_graph ~seed:51 ~nodes:100 in
        let queries = Query_gen.generate ~seed:51 ~count:10 g in
        let idx = Dk_index.build g ~reqs:(Miner.mine g queries) in
        let src = Index_stats.source idx in
        assert (Index_stats.source_index src == idx);
        check_int "lazy before first get" 0 (Index_stats.recomputes src);
        let s1 = Index_stats.get src in
        let s2 = Index_stats.get src in
        check_int "one compute" 1 (Index_stats.recomputes src);
        assert (s1 == s2);
        check_int "matches direct compute" (Index_stats.compute idx).Index_stats.n_nodes
          s1.Index_stats.n_nodes;
        let u = 0 and v = Data_graph.n_nodes g - 1 in
        if not (Data_graph.has_edge g u v) then Dk_update.add_edge idx u v;
        let s3 = Index_stats.get src in
        check_int "recompute after mutation" 2 (Index_stats.recomputes src);
        check_int "fresh stats" (Index_stats.compute idx).Index_stats.n_nodes
          s3.Index_stats.n_nodes);
  ]

(* ------------------------------------------------------------------ *)
(* Enumeration and ranking                                             *)

let plan_tests =
  [
    test "plans are ranked, deterministic, raw-terminated" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:3 ~scale:8 () in
        let pl, _ = build_family g in
        let expr = Path_parser.parse "site.regions.africa.item" in
        let ranked = Planner.plans pl expr in
        (match List.rev ranked with
        | last :: _ -> assert (last.Plan.access = Plan.Raw)
        | [] -> Alcotest.fail "no plans");
        let costs = List.filter_map
            (fun p -> if p.Plan.access = Plan.Raw then None else Some p.Plan.est_total)
            ranked
        in
        let rec sorted = function
          | a :: (b :: _ as rest) -> a <= b && sorted rest
          | _ -> true
        in
        assert (sorted costs);
        (* deterministic: same ranked list on every call *)
        assert (List.map Plan.describe ranked = List.map Plan.describe (Planner.plans pl expr));
        assert (Plan.describe (Planner.choose pl expr) = Plan.describe (List.hd ranked)));
    test "unknown label plans as an empty raw no-op" (fun () ->
        let g = random_graph ~seed:8 ~nodes:30 in
        let pl, _ = build_family g in
        let expr = Path_parser.parse "no_such_label.l0" in
        (match Planner.plans pl expr with
        | [ p ] ->
          assert (p.Plan.access = Plan.Raw);
          let r = Planner.execute pl p expr in
          check_int_list "empty" [] r.Query_eval.nodes
        | ps -> Alcotest.failf "expected 1 plan, got %d" (List.length ps)));
    test "explain marks the chosen plan" (fun () ->
        let g = random_graph ~seed:12 ~nodes:60 in
        let pl, _ = build_family g in
        let lines = Planner.explain pl (Path_parser.parse "l0.l1") in
        assert (List.length lines >= 2);
        (match lines with
        | _header :: first :: _ ->
          assert (
            String.length first > 10
            && String.sub first (String.length first - 9) 9 = "<- chosen")
        | _ -> Alcotest.fail "explain too short"));
    test "register rejects duplicates, raw, and foreign indexes" (fun () ->
        let g = random_graph ~seed:13 ~nodes:20 in
        let g2 = random_graph ~seed:14 ~nodes:20 in
        let pl = Planner.create g in
        Planner.register pl ~name:"one" (One_index.build g);
        let expect_invalid f =
          match f () with
          | () -> Alcotest.fail "expected Invalid_argument"
          | exception Invalid_argument _ -> ()
        in
        expect_invalid (fun () -> Planner.register pl ~name:"one" (Label_split.build g));
        expect_invalid (fun () -> Planner.register pl ~name:"raw" (Label_split.build g));
        expect_invalid (fun () -> Planner.register pl ~name:"foreign" (One_index.build g2)));
    test "execute on an unregistered index raises" (fun () ->
        let g = random_graph ~seed:15 ~nodes:20 in
        let pl, _ = build_family g in
        let bogus =
          {
            Plan.access = Plan.Scan "nope";
            est_index_visits = 0.0;
            est_candidates = 0.0;
            est_data_visits = 0.0;
            est_total = 0.0;
            certain = true;
          }
        in
        match Planner.execute pl bogus (Path_parser.parse "l0.l1") with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    test "planner catalogs refresh lazily through plans" (fun () ->
        let g = random_graph ~seed:16 ~nodes:60 in
        let pl, _ = build_family g in
        let expr = Path_parser.parse "l0.l1" in
        ignore (Planner.plans pl expr);
        let cat = Option.get (Planner.catalog pl "dk") in
        let before = Stats_catalog.refreshes cat in
        ignore (Planner.plans pl expr);
        ignore (Planner.plans pl expr);
        check_int "no resweep without mutation" before (Stats_catalog.refreshes cat);
        let idx = Option.get (Planner.find pl "dk") in
        let u = 0 and v = Data_graph.n_nodes g - 1 in
        if not (Data_graph.has_edge g u v) then begin
          Dk_update.add_edge idx u v;
          ignore (Planner.plans pl expr);
          check_int "resweep after mutation" (before + 1) (Stats_catalog.refreshes cat)
        end);
  ]

(* ------------------------------------------------------------------ *)
(* Executor equivalence                                                *)

let executor_tests =
  [
    test "all access paths agree on XMark fixtures" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:21 ~scale:10 () in
        let pl, queries = build_family g in
        List.iter (check_all_plans_agree pl g) queries);
    test "all access paths agree on NASA fixtures" (fun () ->
        let g = Dkindex_datagen.Nasa.graph ~seed:22 ~scale:10 () in
        let pl, queries = build_family g in
        List.iter (check_all_plans_agree pl g) queries);
    test "eval_planned returns the chosen plan's exact result" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:23 ~scale:8 () in
        let pl, queries = build_family g in
        List.iter
          (fun path ->
            if Array.length path > 0 then begin
              let expr = expr_of_path g path in
              let plan, r = Planner.eval_planned pl expr in
              assert (Plan.describe plan = Plan.describe (Planner.choose pl expr));
              check_int_list "nodes = oracle" (oracle g path) r.Query_eval.nodes
            end)
          queries;
        check_int "no fallbacks" 0 (Planner.fallbacks pl));
    test "eval_planned_path observes the workload" (fun () ->
        let g = random_graph ~seed:24 ~nodes:60 in
        let pl = Planner.create g in
        Planner.register pl ~name:"1-index" (One_index.build g);
        let before = Planner.observed_queries pl in
        let pool = Data_graph.pool g in
        let path =
          [| Option.get (Label.Pool.find_opt pool "l0"); Option.get (Label.Pool.find_opt pool "l1") |]
        in
        let _, r = Planner.eval_planned_path pl path in
        check_int "observed" (before + 1) (Planner.observed_queries pl);
        check_int_list "nodes = oracle" (oracle g path) r.Query_eval.nodes);
    test "general expressions route through scans and raw identically" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:25 ~scale:8 () in
        let pl, _ = build_family g in
        List.iter
          (fun s ->
            let expr = Path_parser.parse s in
            let ranked = Planner.plans pl expr in
            let results =
              List.map (fun p -> (Planner.execute pl p expr).Query_eval.nodes) ranked
            in
            match results with
            | first :: rest ->
              List.iteri
                (fun i r ->
                  if r <> first then
                    Alcotest.failf "%s: plan %d disagrees" s (i + 1))
                rest
            | [] -> Alcotest.fail "no plans")
          [ "site.(regions|people).(item|person)"; "site.(people)*.person.name" ]);
  ]

(* ------------------------------------------------------------------ *)
(* qcheck: every candidate plan agrees with the raw oracle and with
   its own repeat execution on random graphs, through update churn.   *)

let churn g pl ~seed ~rounds =
  let idx = Option.get (Planner.find pl "dk") in
  let rng = Prng.create ~seed in
  let added = ref [] in
  for _ = 1 to rounds do
    match (Prng.int rng 2, !added) with
    | 0, _ | _, [] ->
      let u = Prng.int rng (Data_graph.n_nodes g)
      and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
      if not (Data_graph.has_edge g u v) then begin
        Dk_update.add_edge idx u v;
        added := (u, v) :: !added
      end
    | _, (u, v) :: rest ->
      Dk_update.remove_edge idx u v;
      added := rest
  done

(* After churn the maintained D(k) index stays registered while the
   rest of the family is rebuilt against the mutated graph: the mix of
   an incrementally-updated summary and freshly-built ones is exactly
   what the planner must keep coherent. *)
let rebuilt_family g dk =
  let pl = Planner.create g in
  Planner.register pl ~name:"dk" ~cache:(Validation_cache.create dk) dk;
  let reg name idx = Planner.register pl ~name ~cache:(Validation_cache.create idx) idx in
  reg "ak" (A_k_index.build g ~k:2);
  reg "1-index" (One_index.build g);
  reg "label-split" (Label_split.build g);
  reg "fb" (Fb_index.build g);
  pl

let prop_plans_agree_through_churn =
  QCheck.Test.make ~count:25 ~name:"every candidate plan = raw oracle, through churn"
    (QCheck.make
       ~print:(fun (seed, nodes) -> Printf.sprintf "seed=%d nodes=%d" seed nodes)
       QCheck.Gen.(pair (int_bound 10_000) (int_range 10 80)))
    (fun (seed, nodes) ->
      let g = random_graph ~seed ~nodes in
      let pl, queries = build_family g ~seed in
      List.iter (check_all_plans_agree pl g) queries;
      churn g pl ~seed:(seed * 7) ~rounds:12;
      let dk = Option.get (Planner.find pl "dk") in
      Index_graph.check_invariants dk;
      let pl' = rebuilt_family g dk in
      List.iter (check_all_plans_agree pl' g) queries;
      true)

let prop_plan_results_reproducible =
  QCheck.Test.make ~count:25
    ~name:"per-plan (nodes, n_candidates, n_certain) reproducible; scans = Query_eval"
    (QCheck.make
       ~print:(fun (seed, nodes) -> Printf.sprintf "seed=%d nodes=%d" seed nodes)
       QCheck.Gen.(pair (int_bound 10_000) (int_range 10 80)))
    (fun (seed, nodes) ->
      let g = random_graph ~seed ~nodes in
      (* no caches: costs must also be bit-for-bit reproducible *)
      let pl, queries = build_family g ~with_cache:false ~seed in
      List.iter
        (fun path ->
          if Array.length path > 0 then begin
            let expr = expr_of_path g path in
            List.iter
              (fun p ->
                let triple (r : Query_eval.result) =
                  (r.Query_eval.nodes, r.Query_eval.n_candidates, r.Query_eval.n_certain)
                in
                let r1 = Planner.execute pl p expr in
                let r2 = Planner.execute pl p expr in
                if triple r1 <> triple r2 then
                  Alcotest.failf "plan %s not reproducible" (Plan.describe p);
                match p.Plan.access with
                | Plan.Scan name ->
                  let direct =
                    Query_eval.eval_path ~strategy:`Auto
                      (Option.get (Planner.find pl name))
                      path
                  in
                  if triple r1 <> triple direct then
                    Alcotest.failf "plan %s differs from direct Query_eval"
                      (Plan.describe p)
                | Plan.Intersect _ | Plan.Raw -> ())
              (Planner.plans pl expr)
          end)
        queries;
      true)

let props = List.map to_alcotest [ prop_plans_agree_through_churn; prop_plan_results_reproducible ]

let () =
  Alcotest.run "planner"
    [
      ("catalog", catalog_tests);
      ("index_stats_source", index_stats_tests);
      ("plans", plan_tests);
      ("executors", executor_tests);
      ("properties", props);
    ]
