(* Shared test helpers: small fixture graphs and naive reference
   implementations (k-bisimilarity by definition, regex word matching
   by structural recursion) that the optimized library code is checked
   against. *)

open Dkindex_graph
module B = Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int_list = Alcotest.(check (list int))
let check_string_list = Alcotest.(check (list string))

let test name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Fixture graphs                                                      *)

(* ROOT -> a -> b -> c (a chain). *)
let chain_graph labels =
  let b = B.create () in
  let rec go parent = function
    | [] -> ()
    | l :: rest -> go (B.add_child b ~parent l) rest
  in
  go (B.root b) labels;
  B.build b

(* The movie database of the paper's Figure 1 (condensed): movies under
   directors and under the db, actors referencing movies. *)
type movie_fixture = {
  g : Data_graph.t;
  movie_db : int;
  director1 : int;
  director2 : int;
  movie1 : int;  (* directed by d1, referenced by both actors *)
  movie2 : int;  (* directed by d2, no actor references *)
  movie3 : int;  (* directly under movieDB, referenced by actor2 *)
  title1 : int;
  title2 : int;
  title3 : int;
  actor1 : int;
  actor2 : int;
}

let movie_graph () =
  let b = B.create () in
  let movie_db = B.add_child b ~parent:(B.root b) "movieDB" in
  let director1 = B.add_child b ~parent:movie_db "director" in
  let director2 = B.add_child b ~parent:movie_db "director" in
  let name_of parent = ignore (B.add_value b ~parent:(B.add_child b ~parent "name")) in
  name_of director1;
  name_of director2;
  let movie1 = B.add_child b ~parent:director1 "movie" in
  let movie2 = B.add_child b ~parent:director2 "movie" in
  let movie3 = B.add_child b ~parent:movie_db "movie" in
  let title_of parent =
    let t = B.add_child b ~parent "title" in
    ignore (B.add_value b ~parent:t);
    t
  in
  let title1 = title_of movie1 in
  let title2 = title_of movie2 in
  let title3 = title_of movie3 in
  let actor1 = B.add_child b ~parent:movie_db "actor" in
  let actor2 = B.add_child b ~parent:movie_db "actor" in
  name_of actor1;
  name_of actor2;
  B.add_edge b actor1 movie1;
  B.add_edge b actor2 movie1;
  B.add_edge b actor2 movie3;
  (* actor credits inside the movies that have actors *)
  name_of (B.add_child b ~parent:movie1 "actor");
  name_of (B.add_child b ~parent:movie3 "actor");
  {
    g = B.build b;
    movie_db;
    director1;
    director2;
    movie1;
    movie2;
    movie3;
    title1;
    title2;
    title3;
    actor1;
    actor2;
  }

(* A small cyclic graph: ROOT -> a -> b -> a (back edge), b -> c. *)
let cyclic_graph () =
  let b = B.create () in
  let a = B.add_child b ~parent:(B.root b) "a" in
  let bb = B.add_child b ~parent:a "b" in
  let c = B.add_child b ~parent:bb "c" in
  B.add_edge b bb a;
  (B.build b, a, bb, c)

let random_graph ~seed ~nodes =
  Dkindex_datagen.Random_graph.graph ~seed ~nodes ~n_labels:5
    ~extra_edges:(nodes / 4) ()

(* ------------------------------------------------------------------ *)
(* Reference k-bisimilarity (Definition 2), memoized                   *)

let k_bisimilar g =
  let memo : (int * int * int, bool) Hashtbl.t = Hashtbl.create 1024 in
  let rec bisim u v k =
    if u = v then true
    else if not (Label.equal (Data_graph.label g u) (Data_graph.label g v)) then false
    else if k = 0 then true
    else begin
      let u, v = if u < v then (u, v) else (v, u) in
      match Hashtbl.find_opt memo (u, v, k) with
      | Some r -> r
      | None ->
        let covered a b =
          List.for_all
            (fun a' -> List.exists (fun b' -> bisim a' b' (k - 1)) (Data_graph.parents g b))
            (Data_graph.parents g a)
        in
        let r = bisim u v (k - 1) && covered u v && covered v u in
        Hashtbl.add memo (u, v, k) r;
        r
    end
  in
  bisim

(* All extents of an index are pairwise k-bisimilar at their declared
   local similarity (the Theorem 1 premise). *)
let assert_extents_bisimilar ?(cap = 8) g idx =
  let bisim = k_bisimilar g in
  Dkindex_core.Index_graph.iter_alive idx (fun nd ->
      let k = min cap nd.Dkindex_core.Index_graph.k in
      match Array.to_list nd.Dkindex_core.Index_graph.extent with
      | [] -> ()
      | first :: rest ->
        List.iter
          (fun other ->
            if not (bisim first other k) then
              Alcotest.failf "extent of index node %d is not %d-bisimilar (%d vs %d)"
                nd.Dkindex_core.Index_graph.id k first other)
          rest)

(* ------------------------------------------------------------------ *)
(* Reference regex word matching by structural recursion               *)

let rec word_matches ast word i j =
  match ast with
  | Dkindex_pathexpr.Path_ast.Any -> j = i + 1
  | Label l -> j = i + 1 && String.equal word.(i) l
  | Seq (a, b) ->
    let rec try_split m =
      m <= j && ((word_matches a word i m && word_matches b word m j) || try_split (m + 1))
    in
    try_split i
  | Alt (a, b) -> word_matches a word i j || word_matches b word i j
  | Opt a -> i = j || word_matches a word i j
  | Star a ->
    i = j
    ||
    let rec try_split m =
      m <= j
      && ((word_matches a word i m && word_matches ast word m j) || try_split (m + 1))
    in
    try_split (i + 1)

let word_in_lang ast word =
  let arr = Array.of_list word in
  word_matches ast arr 0 (Array.length arr)

(* ------------------------------------------------------------------ *)
(* Query equivalence helper                                            *)

let assert_index_matches_data ?(msg = "query") g idx queries =
  List.iter
    (fun q ->
      let expected =
        Dkindex_pathexpr.Matcher.eval_label_path g q
          ~cost:(Dkindex_pathexpr.Cost.create ())
      in
      let got = (Dkindex_core.Query_eval.eval_path idx q).Dkindex_core.Query_eval.nodes in
      Alcotest.(check (list int)) msg expected got)
    queries

let labels_of_strings g names =
  let pool = Data_graph.pool g in
  Array.of_list (List.map (fun n -> Label.Pool.intern pool n) names)

(* ------------------------------------------------------------------ *)
(* Reference incoming label-path sets                                  *)

(* The set of label paths of length exactly [j] (in labels) ending at a
   node.  This is the property the D(k)-index actually guarantees after
   in-place updates: extent members share their incoming label-path
   sets up to the node's similarity (sufficient for Theorem 1), even
   when they are no longer fully k-bisimilar. *)
let label_path_sets g =
  let module Paths = Set.Make (struct
    type t = int list

    let compare = compare
  end) in
  let memo : (int * int, Paths.t) Hashtbl.t = Hashtbl.create 256 in
  let rec paths u j =
    if j <= 1 then Paths.singleton [ Label.to_int (Data_graph.label g u) ]
    else
      match Hashtbl.find_opt memo (u, j) with
      | Some set -> set
      | None ->
        let own = Label.to_int (Data_graph.label g u) in
        let set =
          List.fold_left
            (fun acc p ->
              Paths.fold (fun path acc -> Paths.add (path @ [ own ]) acc) (paths p (j - 1)) acc)
            Paths.empty (Data_graph.parents g u)
        in
        Hashtbl.add memo (u, j) set;
        set
  in
  fun u j -> Paths.elements (paths u j)

(* Extents share incoming label-path sets up to their similarity. *)
let assert_extents_path_equivalent ?(cap = 6) g idx =
  let sets = label_path_sets g in
  Dkindex_core.Index_graph.iter_alive idx (fun nd ->
      let k = min cap nd.Dkindex_core.Index_graph.k in
      match Array.to_list nd.Dkindex_core.Index_graph.extent with
      | [] -> ()
      | first :: rest ->
        for j = 1 to k + 1 do
          let expected = sets first j in
          List.iter
            (fun other ->
              if sets other j <> expected then
                Alcotest.failf
                  "extent of index node %d: label-path sets of length %d differ (%d vs %d)"
                  nd.Dkindex_core.Index_graph.id j first other)
            rest
        done)

(* ------------------------------------------------------------------ *)
(* Naive tree-pattern matching (no memoization, no index) — the
   reference for Tree_pattern.eval. *)

let rec naive_pattern_sat g (n : Dkindex_pathexpr.Tree_pattern.node) u =
  let label_ok =
    match n.Dkindex_pathexpr.Tree_pattern.label with
    | None -> true
    | Some l -> String.equal l (Data_graph.label_name g u)
  in
  let value_ok =
    match n.Dkindex_pathexpr.Tree_pattern.value_test with
    | None -> true
    | Some expected ->
      let matches w =
        match Data_graph.value g w with Some s -> String.equal s expected | None -> false
      in
      matches u
      || List.exists
           (fun c -> String.equal (Data_graph.label_name g c) Label.value_name && matches c)
           (Data_graph.children g u)
  in
  label_ok && value_ok
  && List.for_all
       (fun (axis, sub) ->
         let candidates =
           match axis with
           | Dkindex_pathexpr.Tree_pattern.Child -> Data_graph.children g u
           | Dkindex_pathexpr.Tree_pattern.Descendant ->
             let seen = Hashtbl.create 16 in
             let rec collect w =
               List.iter
                 (fun c ->
                   if not (Hashtbl.mem seen c) then begin
                     Hashtbl.add seen c ();
                     collect c
                   end)
                 (Data_graph.children g w)
             in
             collect u;
             Hashtbl.fold (fun c () acc -> c :: acc) seen []
         in
         List.exists (naive_pattern_sat g sub) candidates)
       n.Dkindex_pathexpr.Tree_pattern.preds

let naive_pattern_eval g (t : Dkindex_pathexpr.Tree_pattern.t) =
  let axis_set axis u =
    match axis with
    | Dkindex_pathexpr.Tree_pattern.Child -> Data_graph.children g u
    | Dkindex_pathexpr.Tree_pattern.Descendant ->
      let seen = Hashtbl.create 16 in
      let rec collect w =
        List.iter
          (fun c ->
            if not (Hashtbl.mem seen c) then begin
              Hashtbl.add seen c ();
              collect c
            end)
          (Data_graph.children g w)
      in
      collect u;
      Hashtbl.fold (fun c () acc -> c :: acc) seen []
  in
  let step frontier (axis, n) =
    List.concat_map (fun u -> List.filter (naive_pattern_sat g n) (axis_set axis u)) frontier
    |> List.sort_uniq compare
  in
  List.fold_left step [ Data_graph.root g ] t.Dkindex_pathexpr.Tree_pattern.steps
