(* The Verify auditing module: it must bless healthy indexes and flag
   each kind of corruption. *)
open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph

let healthy_tests =
  [
    test "a fresh D(k)-index passes all checks" (fun () ->
        let g = random_graph ~seed:401 ~nodes:150 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:401 ~count:30 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let report = Verify.run ~queries idx in
        check_bool "clean" true (report.Verify.issues = []);
        check_int "queries counted" 30 report.Verify.checked_queries);
    test "an updated index still passes" (fun () ->
        let g = random_graph ~seed:402 ~nodes:120 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:402 ~count:20 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let rng = Dkindex_datagen.Prng.create ~seed:403 in
        for _ = 1 to 15 do
          let u = rng |> fun r -> Dkindex_datagen.Prng.int r (Data_graph.n_nodes g) in
          let v = 1 + Dkindex_datagen.Prng.int rng (Data_graph.n_nodes g - 1) in
          Dk_update.add_edge idx u v
        done;
        check_bool "clean" true ((Verify.run ~queries idx).Verify.issues = []));
    test "all baseline indexes pass" (fun () ->
        let g = random_graph ~seed:404 ~nodes:100 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:404 ~count:15 g in
        List.iter
          (fun idx -> check_bool "clean" true ((Verify.run ~queries idx).Verify.issues = []))
          [ Label_split.build g; A_k_index.build g ~k:2; One_index.build g; Fb_index.build g ]);
    test "quick mode skips the soundness pass" (fun () ->
        let g = random_graph ~seed:405 ~nodes:300 in
        let idx = One_index.build g in
        let report = Verify.run ~quick:true idx in
        check_bool "clean" true (report.Verify.issues = []));
  ]

let corruption_tests =
  [
    test "an inflated similarity is caught by the soundness check" (fun () ->
        (* Claim k=3 on the label-split index: extents share labels but
           not deeper paths. *)
        let g = random_graph ~seed:411 ~nodes:100 in
        let idx = Label_split.build g in
        Index_graph.iter_alive idx (fun nd -> Index_graph.set_k idx nd.Index_graph.id 3);
        let issues = Verify.soundness idx in
        check_bool "caught" true (issues <> []));
    test "a Definition 3 violation is caught by the structure check" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let idx = A_k_index.build g ~k:1 in
        Index_graph.set_k idx (Index_graph.cls idx 2) 9;
        check_bool "caught" true (Verify.structure idx <> []));
    test "an unsound index produces query issues" (fun () ->
        let g = random_graph ~seed:412 ~nodes:150 in
        let idx = Label_split.build g in
        (* Claim soundness the index does not have: long queries then
           return whole extents without validation. *)
        Index_graph.iter_alive idx (fun nd -> Index_graph.set_k idx nd.Index_graph.id 9);
        let queries = Dkindex_workload.Query_gen.generate ~seed:412 ~count:30 g in
        check_bool "caught" true (Verify.queries idx queries <> []));
    test "report pretty-printing mentions the issue" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let idx = A_k_index.build g ~k:1 in
        Index_graph.set_k idx (Index_graph.cls idx 2) 9;
        let text = Format.asprintf "%a" Verify.pp_report (Verify.run ~quick:true idx) in
        check_bool "has issue text" true
          (let needle = "issue" in
           let rec find i =
             i + String.length needle <= String.length text
             && (String.sub text i (String.length needle) = needle || find (i + 1))
           in
           find 0));
  ]

let () = Alcotest.run "verify" [ ("healthy", healthy_tests); ("corruption", corruption_tests) ]
