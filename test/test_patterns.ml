(* Tree patterns (branching path queries), the F&B-index, and pattern
   evaluation through indexes. *)
open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Tree_pattern = Dkindex_pathexpr.Tree_pattern
module Cost = Dkindex_pathexpr.Cost
module B = Dkindex_graph.Builder

let eval_data g src =
  let pattern = Tree_pattern.parse src in
  Tree_pattern.eval (Tree_pattern.data_view g ~cost:(Cost.create ())) pattern

let parser_tests =
  [
    test "single rooted step" (fun () ->
        let p = Tree_pattern.parse "/a" in
        check_int "one step" 1 (List.length p.Tree_pattern.steps);
        check_string "round trip" "/a" (Tree_pattern.to_string p));
    test "descendant axis" (fun () ->
        check_string "round trip" "//a/b//c" (Tree_pattern.to_string (Tree_pattern.parse "//a/b//c")));
    test "predicates parse and print" (fun () ->
        check_string "round trip" "//movie[./actor][.//name]/title"
          (Tree_pattern.to_string (Tree_pattern.parse "//movie[./actor][.//name]/title")));
    test "predicate chains fold into nested predicates" (fun () ->
        let p = Tree_pattern.parse "//a[b/c]" in
        match p.Tree_pattern.steps with
        | [ (_, { Tree_pattern.preds = [ (Tree_pattern.Child, b) ]; _ }) ] ->
          check_string "b" "b" (Option.get b.Tree_pattern.label);
          check_int "c nested" 1 (List.length b.Tree_pattern.preds)
        | _ -> Alcotest.fail "bad shape");
    test "wildcard steps" (fun () ->
        let p = Tree_pattern.parse "//*/a" in
        match p.Tree_pattern.steps with
        | (_, { Tree_pattern.label = None; _ }) :: _ -> ()
        | _ -> Alcotest.fail "expected wildcard");
    test "missing leading axis fails" (fun () ->
        check_bool "raises" true
          (match Tree_pattern.parse "a/b" with
          | _ -> false
          | exception Tree_pattern.Parse_error _ -> true));
    test "unclosed predicate fails" (fun () ->
        check_bool "raises" true
          (match Tree_pattern.parse "//a[b" with
          | _ -> false
          | exception Tree_pattern.Parse_error _ -> true));
    test "trailing garbage fails" (fun () ->
        check_bool "raises" true
          (match Tree_pattern.parse "//a]" with
          | _ -> false
          | exception Tree_pattern.Parse_error _ -> true));
  ]

let eval_tests =
  [
    test "child vs descendant from the root" (fun () ->
        let m = movie_graph () in
        (* movieDB is a child of ROOT; title is deeper. *)
        check_bool "child finds movieDB" true (eval_data m.g "/movieDB" = [ m.movie_db ]);
        check_int_list "descendant finds all titles"
          (List.sort compare [ m.title1; m.title2; m.title3 ])
          (eval_data m.g "//title"));
    test "main path navigation" (fun () ->
        let m = movie_graph () in
        check_int_list "director movies" (List.sort compare [ m.movie1; m.movie2 ])
          (eval_data m.g "//director/movie");
        check_int_list "their titles" (List.sort compare [ m.title1; m.title2 ])
          (eval_data m.g "//director/movie/title"));
    test "predicates filter the main path" (fun () ->
        let m = movie_graph () in
        (* movies with an actor credit: movie1 and movie3 *)
        check_int_list "with actor child" (List.sort compare [ m.movie1; m.movie3 ])
          (eval_data m.g "//movie[./actor]");
        (* titles of movies that have an actor credit AND a director parent *)
        check_int_list "branching" [ m.title1 ] (eval_data m.g "//director/movie[./actor]/title"));
    test "descendant predicate" (fun () ->
        let m = movie_graph () in
        check_int_list "movie with some name below" (List.sort compare [ m.movie1; m.movie3 ])
          (eval_data m.g "//movie[.//name]"));
    test "empty result" (fun () ->
        let m = movie_graph () in
        check_int_list "no such" [] (eval_data m.g "//director[./ghost]"));
    test "cycles terminate" (fun () ->
        let g, a, _, c = cyclic_graph () in
        check_bool "a matched" true (List.mem a (eval_data g "//b/a"));
        check_int_list "c below a twice" [ c ] (eval_data g "//a//c"));
    test "wildcard main path step" (fun () ->
        let m = movie_graph () in
        check_int_list "any grandchild titles"
          (List.sort compare [ m.title1; m.title2; m.title3 ])
          (eval_data m.g "//*/title"));
  ]

let fb_tests =
  [
    test "F&B refines the 1-index" (fun () ->
        let g = random_graph ~seed:251 ~nodes:150 in
        let fb = Fb_index.build g and one = One_index.build g in
        check_bool "at least as many classes" true
          (Index_graph.n_nodes fb >= Index_graph.n_nodes one);
        (* refinement: each F&B class sits inside a 1-index class *)
        Index_graph.iter_alive fb (fun nd ->
            match Array.to_list nd.Index_graph.extent with
            | [] -> ()
            | first :: rest ->
              List.iter
                (fun u -> check_int "inside" (Index_graph.cls one first) (Index_graph.cls one u))
                rest);
        Index_graph.check_invariants fb);
    test "F&B edges are universal in both directions" (fun () ->
        let g = random_graph ~seed:252 ~nodes:120 in
        let fb = Fb_index.build g in
        Index_graph.iter_alive fb (fun nd ->
            Index_graph.iter_children fb nd.Index_graph.id (fun child_id ->
                let child = Index_graph.node fb child_id in
                (* every member of the child has a parent in nd *)
                Array.iter
                  (fun u ->
                    check_bool "backward universal" true
                      (List.exists
                         (fun p -> Index_graph.cls fb p = nd.Index_graph.id)
                         (Data_graph.parents g u)))
                  child.Index_graph.extent;
                (* every member of nd has a child in the child class *)
                Array.iter
                  (fun u ->
                    check_bool "forward universal" true
                      (List.exists
                         (fun c -> Index_graph.cls fb c = child_id)
                         (Data_graph.children g u)))
                  nd.Index_graph.extent)));
    test "on a chain the F&B index equals the 1-index" (fun () ->
        let g = chain_graph [ "a"; "b"; "c" ] in
        check_int "same size" (Index_graph.n_nodes (One_index.build g))
          (Index_graph.n_nodes (Fb_index.build g)));
    test "rounds is finite on cyclic data" (fun () ->
        let g, _, _, _ = cyclic_graph () in
        check_bool "small" true (Fb_index.rounds g < 10));
  ]

let eval_pattern_tests =
  [
    test "F&B answers patterns exactly without validation" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:100 in
            let fb = Fb_index.build g in
            List.iter
              (fun src ->
                let expected = eval_data g src in
                let r = Query_eval.eval_pattern ~validate:false fb (Tree_pattern.parse src) in
                check_int_list src expected r.Query_eval.nodes;
                check_int "no data touched" 0 r.Query_eval.cost.Cost.data_visits)
              [ "//l0"; "//l1[./l2]"; "//l0/l1//l2"; "//l2[.//l3]/l0"; "/l0[./l1][./l2]" ])
          [ 261; 262; 263 ]);
    test "validated patterns are exact on any index" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:100 in
            let indexes =
              [ Label_split.build g; A_k_index.build g ~k:2; One_index.build g ]
            in
            List.iter
              (fun src ->
                let expected = eval_data g src in
                List.iter
                  (fun idx ->
                    let r = Query_eval.eval_pattern idx (Tree_pattern.parse src) in
                    check_int_list src expected r.Query_eval.nodes)
                  indexes)
              [ "//l0"; "//l1[./l2]"; "//l0/l1//l2"; "//l2[.//l3]/l0"; "/l0/l2[./l1]" ])
          [ 264; 265 ]);
    test "label-split without validation over-approximates" (fun () ->
        let m = movie_graph () in
        let a0 = Label_split.build m.g in
        let pattern = Tree_pattern.parse "//director/movie/title" in
        let loose = Query_eval.eval_pattern ~validate:false a0 pattern in
        let exact = Query_eval.eval_pattern a0 pattern in
        check_int_list "exact result" (List.sort compare [ m.title1; m.title2 ])
          exact.Query_eval.nodes;
        check_bool "superset" true
          (List.for_all (fun u -> List.mem u loose.Query_eval.nodes) exact.Query_eval.nodes);
        check_bool "strictly larger" true
          (List.length loose.Query_eval.nodes > List.length exact.Query_eval.nodes));
    test "validation does not admit unreachable lookalikes" (fun () ->
        (* An unreachable 'x' node structurally similar to a reachable
           one must not appear in //x results. *)
        let pool = Dkindex_graph.Label.Pool.create () in
        let l n = Dkindex_graph.Label.Pool.intern pool n in
        let labels = [| l "ROOT"; l "x"; l "x" |] in
        let g = Data_graph.make ~pool ~labels ~edges:[ (0, 1) ] () in
        let a0 = Label_split.build g in
        let r = Query_eval.eval_pattern a0 (Tree_pattern.parse "//x") in
        check_int_list "only the reachable one" [ 1 ] r.Query_eval.nodes);
    test "movie fixture through the F&B index" (fun () ->
        let m = movie_graph () in
        let fb = Fb_index.build m.g in
        let r =
          Query_eval.eval_pattern ~validate:false fb
            (Tree_pattern.parse "//director/movie[./actor]/title")
        in
        check_int_list "title1" [ m.title1 ] r.Query_eval.nodes);
  ]

let serial_tests =
  [
    test "index round trip preserves partition, k, and req" (fun () ->
        let g = random_graph ~seed:271 ~nodes:120 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:271 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let idx' = Index_serial.of_string (Index_serial.to_string idx) in
        Index_graph.check_invariants idx';
        check_bool "same signature" true
          (Index_graph.partition_signature idx = Index_graph.partition_signature idx');
        assert_index_matches_data g idx' queries);
    test "1-index round trip keeps infinite similarity" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let one = One_index.build g in
        let one' = Index_serial.of_string (Index_serial.to_string one) in
        Index_graph.iter_alive one' (fun nd ->
            check_bool "infinite" true (nd.Index_graph.k >= Index_graph.k_infinite)));
    test "a loaded index accepts updates" (fun () ->
        let g = random_graph ~seed:272 ~nodes:100 in
        let idx = Dk_index.build g ~reqs:[ ("l0", 2) ] in
        let idx' = Index_serial.of_string (Index_serial.to_string idx) in
        Dk_update.add_edge idx' 3 7;
        Index_graph.check_invariants idx';
        let g' = Index_graph.data idx' in
        assert_index_matches_data g' idx'
          (Dkindex_workload.Query_gen.generate ~seed:273 ~count:10 g'));
    test "bad magic fails" (fun () ->
        check_bool "raises" true
          (match Index_serial.of_string "garbage" with
          | _ -> false
          | exception Failure _ -> true));
    test "file save/load" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let idx = A_k_index.build g ~k:1 in
        let path = Filename.temp_file "dkindex" ".index" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Index_serial.save path idx;
            let idx' = Index_serial.load path in
            check_int "size" (Index_graph.n_nodes idx) (Index_graph.n_nodes idx')));
  ]

let value_tests =
  [
    test "value predicates parse and print" (fun () ->
        let src = {|//person[./name[.="Kian"]]/phone|} in
        check_string "round trip" src (Tree_pattern.to_string (Tree_pattern.parse src)));
    test "value predicate filters on payloads" (fun () ->
        let b = B.create () in
        let person name phone =
          let p = B.add_child b ~parent:0 "person" in
          let n = B.add_child b ~parent:p "name" in
          ignore (B.add_value ~text:name b ~parent:n);
          let ph = B.add_child b ~parent:p "phone" in
          ignore (B.add_value ~text:phone b ~parent:ph);
          p
        in
        let kian = person "Kian" "111" in
        let _andrew = person "Andrew" "222" in
        let g = B.build b in
        let result = eval_data g {|//person[./name[.="Kian"]]|} in
        check_int_list "only kian" [ kian ] result);
    test "value predicate on the node itself" (fun () ->
        let b = B.create () in
        let n = B.add_child b ~parent:0 "x" in
        B.set_value b n "direct";
        let g = B.build b in
        check_int_list "matches" [ n ] (eval_data g {|//x[.="direct"]|});
        check_int_list "no match" [] (eval_data g {|//x[.="other"]|}));
    test "index evaluation with value predicates validates and stays exact" (fun () ->
        let b = B.create () in
        let item name =
          let i = B.add_child b ~parent:0 "item" in
          let nm = B.add_child b ~parent:i "name" in
          ignore (B.add_value ~text:name b ~parent:nm);
          i
        in
        let gold = item "gold" in
        let _silver = item "silver" in
        let _gold2 = item "gold" in
        let g = B.build b in
        let pattern = Tree_pattern.parse {|//item[./name[.="gold"]]|} in
        let expected = Tree_pattern.eval (Tree_pattern.data_view g ~cost:(Cost.create ())) pattern in
        check_bool "two golds" true (List.length expected = 2 && List.mem gold expected);
        List.iter
          (fun idx ->
            (* even with ~validate:false the value test forces validation *)
            let r = Query_eval.eval_pattern ~validate:false idx pattern in
            check_int_list "exact" expected r.Query_eval.nodes)
          [ Label_split.build g; One_index.build g; Fb_index.build g ]);
    test "xml text round-trips into payloads" (fun () ->
        let doc = Dkindex_xml.Xml_parser.parse_string
            {|<catalog><book genre="fiction"><title>Dune</title></book></catalog>|} in
        let g = Dkindex_xml.Xml_to_graph.graph_of_doc doc in
        check_int_list "by title" (eval_data g {|//book[./title[.="Dune"]]|})
          (eval_data g "//book");
        check_int_list "by attribute" (eval_data g {|//book[./genre[.="fiction"]]|})
          (eval_data g "//book");
        check_int_list "miss" [] (eval_data g {|//book[./title[.="Other"]]|}));
    test "streaming loader also records payloads" (fun () ->
        let text = {|<a><b>hello</b></a>|} in
        let g =
          (Dkindex_xml.Xml_to_graph.convert_events (Dkindex_xml.Xml_sax.of_string text)).Dkindex_xml.Xml_to_graph.graph
        in
        check_int_list "match" (eval_data g {|//b[.="hello"]|}) (eval_data g "//b"));
    test "has_value_test" (fun () ->
        check_bool "yes" true (Tree_pattern.has_value_test (Tree_pattern.parse {|//a[.="x"]|}));
        check_bool "nested" true
          (Tree_pattern.has_value_test (Tree_pattern.parse {|//a[./b[.="x"]]|}));
        check_bool "no" false (Tree_pattern.has_value_test (Tree_pattern.parse "//a[./b]")));
    test "unterminated string fails" (fun () ->
        check_bool "raises" true
          (match Tree_pattern.parse {|//a[.="x]|} with
          | _ -> false
          | exception Tree_pattern.Parse_error _ -> true));
  ]

let serial_error_tests =
  [
    test "class out of range is rejected" (fun () ->
        let text =
          "dkindex-index 1\ngraph 31\ndkindex-graph 1\nnodes 1\nROOT\nedges 0\ncls\n5\nclasses 1\n0 0\n"
        in
        check_bool "raises" true
          (match Index_serial.of_string text with _ -> false | exception Failure _ -> true));
    test "truncated class table is rejected" (fun () ->
        let g = chain_graph [ "a" ] in
        let idx = Label_split.build g in
        let text = Index_serial.to_string idx in
        let cut = String.sub text 0 (String.length text - 5) in
        check_bool "raises" true
          (match Index_serial.of_string cut with _ -> false | exception Failure _ -> true));
    test "declared counts disagreeing with the body are rejected" (fun () ->
        let g = chain_graph [ "a"; "b"; "c" ] in
        let idx = Label_split.build g in
        let text = Index_serial.to_string idx in
        let lines = String.split_on_char '\n' text in
        (* Line 1 is "counts <nodes> <edges> <classes>"; perturb each
           field in turn and expect rejection. *)
        let counts =
          match List.nth lines 1 |> String.split_on_char ' ' with
          | [ "counts"; n; e; m ] -> (int_of_string n, int_of_string e, int_of_string m)
          | _ -> Alcotest.fail "expected a counts line"
        in
        let with_counts (n, e, m) =
          List.mapi
            (fun i l -> if i = 1 then Printf.sprintf "counts %d %d %d" n e m else l)
            lines
          |> String.concat "\n"
        in
        let n, e, m = counts in
        List.iter
          (fun tampered ->
            check_bool "raises" true
              (match Index_serial.of_string (with_counts tampered) with
              | _ -> false
              | exception Failure _ -> true))
          [ (n + 1, e, m); (n, e + 1, m); (n, e, m + 1) ];
        (* Sanity: the untampered document still loads. *)
        check_int "size" (Index_graph.n_nodes idx)
          (Index_graph.n_nodes (Index_serial.of_string (with_counts counts))));
    test "version-1 documents (no counts line) still load" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let idx = Label_split.build g in
        let v2 = Index_serial.to_string idx in
        let v1 =
          String.split_on_char '\n' v2
          |> List.filteri (fun i _ -> i <> 1)
          |> List.map (fun l -> if l = "dkindex-index 2" then "dkindex-index 1" else l)
          |> String.concat "\n"
        in
        check_int "size" (Index_graph.n_nodes idx)
          (Index_graph.n_nodes (Index_serial.of_string v1)));
  ]

let () =
  Alcotest.run "patterns"
    [
      ("parser", parser_tests);
      ("data_eval", eval_tests);
      ("fb_index", fb_tests);
      ("eval_pattern", eval_pattern_tests);
      ("value_predicates", value_tests);
      ("index_serial", serial_tests);
      ("index_serial_errors", serial_error_tests);
    ]
