(* Out-of-core tier tests: the on-disk container format, mmap-backed
   graphs, streaming datagen byte-identity, the external-memory
   refinement path, and index-container persistence. *)

open Dkindex_graph
open Dkindex_core
open Testlib
module Query_gen = Dkindex_workload.Query_gen
module Prng = Dkindex_datagen.Prng

let to_alcotest = QCheck_alcotest.to_alcotest

let with_tmp_dir f =
  let dir = Filename.temp_file "dkcont" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let flip_byte path pos =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1))

let truncate_to path len =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)

let expect_error what f =
  match f () with
  | exception Container.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected Container.Error" what

(* --------------------------------------------------------------- *)
(* Round-trip                                                        *)

let graph_params =
  QCheck.make
    ~print:(fun (seed, nodes, extra) ->
      Printf.sprintf "seed=%d nodes=%d extra=%d" seed nodes extra)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 2 150) (int_bound 50))

let prop_roundtrip =
  QCheck.Test.make ~name:"container round-trip preserves the graph exactly" ~count:60
    graph_params (fun (seed, nodes, extra) ->
      let g =
        Dkindex_datagen.Random_graph.graph ~seed ~nodes ~n_labels:5 ~extra_edges:extra
          ~value_fraction:0.3 ()
      in
      with_tmp_dir (fun dir ->
          let path = Filename.concat dir "g.dkc" in
          Container.save_graph g path;
          let g' = Container.open_graph ~verify:true path in
          (* The text serialization is canonical: equal strings iff equal
             graphs (nodes, labels, edges, values). *)
          String.equal (Serial.to_string g) (Serial.to_string g')))

let roundtrip_tests =
  [
    to_alcotest prop_roundtrip;
    test "probe classifies files" (fun () ->
        with_tmp_dir (fun dir ->
            let gp = Filename.concat dir "g.dkc" in
            let g = Dkindex_datagen.Random_graph.graph ~seed:31 ~nodes:40 ~n_labels:3 ~extra_edges:5 () in
            Container.save_graph g gp;
            (match Container.probe gp with
            | Some Container.Graph -> ()
            | _ -> Alcotest.fail "expected Some Graph");
            let ip = Filename.concat dir "i.dkc" in
            Index_serial.save_container ip (Label_split.build g);
            (match Container.probe ip with
            | Some Container.Index -> ()
            | _ -> Alcotest.fail "expected Some Index");
            let tp = Filename.concat dir "t.graph" in
            Serial.save tp g;
            check_bool "text graph is not a container" true (Container.probe tp = None);
            check_bool "missing file" true (Container.probe (Filename.concat dir "nope") = None)));
    test "a mapped graph accepts updates like a heap graph" (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "g.dkc" in
            let g0 = Dkindex_datagen.Xmark.graph ~seed:32 ~scale:8 () in
            Container.save_graph g0 path;
            let g = Container.open_graph path in
            let n = Data_graph.n_nodes g in
            let rng = Prng.create ~seed:33 in
            for _ = 1 to 50 do
              let u = Prng.int rng n and v = 1 + Prng.int rng (n - 1) in
              if not (Data_graph.has_edge g0 u v) then begin
                Data_graph.add_edge g0 u v;
                Data_graph.add_edge g u v
              end
            done;
            check_string "updated graphs equal" (Serial.to_string g0) (Serial.to_string g)));
  ]

(* --------------------------------------------------------------- *)
(* Corruption and truncation                                         *)

let corruption_tests =
  [
    test "bad magic, truncation, header and body corruption are typed errors" (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "g.dkc" in
            let g = Dkindex_datagen.Xmark.graph ~seed:41 ~scale:8 () in
            Container.save_graph g path;
            let bytes = read_file path in
            let len = String.length bytes in
            let restore () =
              let oc = open_out_bin path in
              output_string oc bytes;
              close_out oc
            in
            (* Not a container at all. *)
            let junk = Filename.concat dir "junk" in
            let oc = open_out_bin junk in
            output_string oc (String.init 4096 (fun i -> Char.chr (33 + (i mod 90))));
            close_out oc;
            (match Container.open_graph junk with
            | exception Container.Error Container.Bad_magic -> ()
            | _ -> Alcotest.fail "expected Bad_magic");
            (* Truncations at every interesting boundary are caught at
               open time, before any section is read. *)
            List.iter
              (fun keep ->
                restore ();
                truncate_to path keep;
                expect_error (Printf.sprintf "truncate to %d" keep) (fun () ->
                    Container.open_graph path))
              [ 0; 4; 39; 4095; len / 2; len - 1 ];
            (* A flipped header byte fails the header CRC. *)
            restore ();
            flip_byte path 16;
            (match Container.open_graph path with
            | exception Container.Error _ -> ()
            | _ -> Alcotest.fail "header flip undetected");
            (* A flipped section-body byte fails ~verify.  Sections are
               page-aligned, so the first body byte is at 4096 (the
               label pool, never empty); padding between sections is
               not CRC'd, so flip inside the body proper. *)
            restore ();
            flip_byte path 4100;
            (match Container.open_graph ~verify:true path with
            | exception Container.Error (Container.Crc_mismatch _) -> ()
            | exception Container.Error _ -> ()
            | _ -> Alcotest.fail "body flip undetected under verify");
            (* Kind confusion is typed. *)
            restore ();
            (match Index_serial.load_container path with
            | exception Container.Error (Container.Bad_kind _) -> ()
            | _ -> Alcotest.fail "expected Bad_kind")));
    test "index container corruption is rejected" (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "i.dkc" in
            let g = Dkindex_datagen.Xmark.graph ~seed:42 ~scale:8 () in
            let idx = Dk_index.build g ~reqs:[ ("item", 2) ] in
            Index_serial.save_container path idx;
            let len = (Unix.stat path).Unix.st_size in
            flip_byte path (len / 2);
            match Index_serial.load_container ~verify:true path with
            | exception Container.Error _ -> ()
            | _ -> Alcotest.fail "expected Container.Error"));
  ]

(* --------------------------------------------------------------- *)
(* Streaming byte-identity                                           *)

let streaming_tests =
  let check_identical name saved streamed =
    check_string (name ^ ": streamed container is byte-identical")
      (Digest.to_hex (Digest.file saved))
      (Digest.to_hex (Digest.file streamed));
    check_bool (name ^ ": reopens under full verification") true
      (Serial.to_string (Container.open_graph ~verify:true streamed) <> "")
  in
  [
    test "xmark: stream = materialize + save, spills forced" (fun () ->
        with_tmp_dir (fun dir ->
            let saved = Filename.concat dir "saved.dkc" in
            let streamed = Filename.concat dir "streamed.dkc" in
            Container.save_graph (Dkindex_datagen.Xmark.graph ~seed:51 ~scale:12 ()) saved;
            (* A 4K-word budget forces the external sorter to spill runs
               even at this scale. *)
            ignore
              (Dkindex_datagen.Xmark.stream ~seed:51 ~scale:12 ~mem_budget:(1 lsl 12)
                 ~tmp_dir:dir ~path:streamed ());
            check_identical "xmark" saved streamed));
    test "nasa: stream = materialize + save" (fun () ->
        with_tmp_dir (fun dir ->
            let saved = Filename.concat dir "saved.dkc" in
            let streamed = Filename.concat dir "streamed.dkc" in
            Container.save_graph (Dkindex_datagen.Nasa.graph ~seed:52 ~scale:10 ()) saved;
            ignore
              (Dkindex_datagen.Nasa.stream ~seed:52 ~scale:10 ~mem_budget:(1 lsl 12)
                 ~tmp_dir:dir ~path:streamed ());
            check_identical "nasa" saved streamed));
    test "random: stream = materialize + save" (fun () ->
        with_tmp_dir (fun dir ->
            let saved = Filename.concat dir "saved.dkc" in
            let streamed = Filename.concat dir "streamed.dkc" in
            Container.save_graph
              (Dkindex_datagen.Random_graph.graph ~seed:53 ~nodes:3000 ~n_labels:8
                 ~extra_edges:900 ~value_fraction:0.2 ())
              saved;
            Dkindex_datagen.Random_graph.stream ~seed:53 ~nodes:3000 ~n_labels:8
              ~extra_edges:900 ~value_fraction:0.2 ~mem_budget:(1 lsl 12) ~tmp_dir:dir
              ~path:streamed ();
            check_identical "random" saved streamed));
  ]

(* --------------------------------------------------------------- *)
(* Mapped vs in-RAM equivalence through churn                        *)

let equivalence_tests =
  let run_case name g =
    with_tmp_dir (fun dir ->
        let path = Filename.concat dir "g.dkc" in
        Container.save_graph g path;
        let gm = Container.open_graph path in
        let queries = Query_gen.generate ~seed:61 ~count:30 ~min_len:2 ~max_len:4 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx_ram = Dk_index.build g ~reqs in
        let idx_map = Dk_index.build gm ~reqs in
        let check_all tag =
          List.iter
            (fun q ->
              let a = Query_eval.eval_path idx_ram q in
              let b = Query_eval.eval_path idx_map q in
              check_int_list
                (Printf.sprintf "%s/%s" name tag)
                a.Query_eval.nodes b.Query_eval.nodes)
            queries
        in
        check_bool (name ^ ": same partition") true
          (Index_graph.partition_signature idx_ram = Index_graph.partition_signature idx_map);
        check_all "fresh";
        (* Identical churn on both sides: the mapped graph migrates to
           its heap overflow layer, answers must stay in lockstep. *)
        let n = Data_graph.n_nodes g in
        let rng = Prng.create ~seed:62 in
        let added = ref [] in
        for _ = 1 to 40 do
          let u = Prng.int rng n and v = 1 + Prng.int rng (n - 1) in
          if not (Data_graph.has_edge g u v) then begin
            Dk_update.add_edge idx_ram u v;
            Dk_update.add_edge idx_map u v;
            added := (u, v) :: !added
          end
        done;
        List.iteri
          (fun i (u, v) ->
            if i mod 2 = 0 then begin
              Dk_update.remove_edge idx_ram u v;
              Dk_update.remove_edge idx_map u v
            end)
          !added;
        check_all "churned";
        Index_graph.check_invariants idx_map)
  in
  [
    test "xmark: mapped index answers = in-RAM through churn" (fun () ->
        run_case "xmark" (Dkindex_datagen.Xmark.graph ~seed:63 ~scale:12 ()));
    test "nasa: mapped index answers = in-RAM through churn" (fun () ->
        run_case "nasa" (Dkindex_datagen.Nasa.graph ~seed:64 ~scale:10 ()));
  ]

(* --------------------------------------------------------------- *)
(* External-memory refinement and index persistence                  *)

let external_tests =
  [
    test "external refine partition = in-RAM on every builder" (fun () ->
        List.iter
          (fun (name, g) ->
            let queries = Query_gen.generate ~seed:71 ~count:25 g in
            let reqs = Dkindex_workload.Miner.mine g queries in
            (* to_string covers the partition, k/req values and the
               full index adjacency, so this also pins the external
               edge projection to the in-RAM CSR bit for bit. *)
            let pairs =
              [
                ( Index_serial.to_string (Dk_index.build ~mode:`In_ram g ~reqs),
                  Index_serial.to_string (Dk_index.build ~mode:`External g ~reqs) );
                ( Index_serial.to_string (A_k_index.build ~mode:`In_ram g ~k:2),
                  Index_serial.to_string (A_k_index.build ~mode:`External g ~k:2) );
                ( Index_serial.to_string (One_index.build ~mode:`In_ram g),
                  Index_serial.to_string (One_index.build ~mode:`External g) );
              ]
            in
            List.iteri
              (fun i (a, b) ->
                check_bool (Printf.sprintf "%s builder %d" name i) true (String.equal a b))
              pairs)
          [
            ("xmark", Dkindex_datagen.Xmark.graph ~seed:72 ~scale:10 ());
            ("random", random_graph ~seed:73 ~nodes:300);
          ]);
    test "index container round-trips partition, k/req and adjacency" (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "i.dkc" in
            let g = Dkindex_datagen.Xmark.graph ~seed:74 ~scale:10 () in
            let queries = Query_gen.generate ~seed:75 ~count:30 g in
            let idx = Dk_index.build g ~reqs:(Dkindex_workload.Miner.mine g queries) in
            Index_serial.save_container path idx;
            let idx' = Index_serial.load_container ~verify:true path in
            Index_graph.check_invariants idx';
            check_int "n_nodes" (Index_graph.n_nodes idx) (Index_graph.n_nodes idx');
            check_int "n_edges" (Index_graph.n_edges idx) (Index_graph.n_edges idx');
            check_bool "partition" true
              (Index_graph.partition_signature idx = Index_graph.partition_signature idx');
            (* Same answers, and the same text serialization as the
               established format. *)
            List.iter
              (fun q ->
                check_int_list "answers"
                  (Query_eval.eval_path idx q).Query_eval.nodes
                  (Query_eval.eval_path idx' q).Query_eval.nodes)
              queries;
            check_string "text form" (Index_serial.to_string idx) (Index_serial.to_string idx')));
  ]

let () =
  Alcotest.run "container"
    [
      ("round-trip", roundtrip_tests);
      ("corruption", corruption_tests);
      ("streaming", streaming_tests);
      ("mmap-vs-ram", equivalence_tests);
      ("external-refine", external_tests);
    ]
