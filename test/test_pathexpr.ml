open Dkindex_pathexpr
open Testlib
module Label = Dkindex_graph.Label
module Data_graph = Dkindex_graph.Data_graph

let parse = Path_parser.parse
let ast = Alcotest.testable (Fmt.of_to_string Path_ast.to_string) Path_ast.equal

let parser_tests =
  let open Path_ast in
  [
    test "single label" (fun () -> Alcotest.check ast "a" (Label "a") (parse "a"));
    test "wildcard" (fun () -> Alcotest.check ast "_" Any (parse "_"));
    test "sequence" (fun () ->
        Alcotest.check ast "a.b" (Seq (Label "a", Label "b")) (parse "a.b"));
    test "alternation binds looser than sequence" (fun () ->
        Alcotest.check ast "a.b|c"
          (Alt (Seq (Label "a", Label "b"), Label "c"))
          (parse "a.b|c"));
    test "postfix star" (fun () ->
        Alcotest.check ast "a*" (Star (Label "a")) (parse "a*"));
    test "postfix opt" (fun () -> Alcotest.check ast "a?" (Opt (Label "a")) (parse "a?"));
    test "stacked postfix" (fun () ->
        Alcotest.check ast "a*?" (Opt (Star (Label "a"))) (parse "a*?"));
    test "parentheses group" (fun () ->
        Alcotest.check ast "(a|b).c"
          (Seq (Alt (Label "a", Label "b"), Label "c"))
          (parse "(a|b).c"));
    test "star applies to the atom only" (fun () ->
        Alcotest.check ast "a.b*" (Seq (Label "a", Star (Label "b"))) (parse "a.b*"));
    test "grouped star" (fun () ->
        Alcotest.check ast "(a.b)*" (Star (Seq (Label "a", Label "b"))) (parse "(a.b)*"));
    test "whitespace tolerated" (fun () ->
        Alcotest.check ast "spaces" (Seq (Label "a", Label "b")) (parse " a . b "));
    test "the paper's example expression parses" (fun () ->
        Alcotest.check ast "movieDB"
          (Seq (Label "movieDB", Seq (Opt Any, Seq (Label "movie", Seq (Label "actor", Label "name")))))
          (parse "movieDB.(_)?.movie.actor.name"));
    test "xml-ish names" (fun () ->
        Alcotest.check ast "name" (Label "ns:tag-x") (parse "ns:tag-x"));
    test "unbalanced paren fails" (fun () ->
        check_bool "raises" true
          (match parse "(a.b" with _ -> false | exception Path_parser.Parse_error _ -> true));
    test "trailing garbage fails" (fun () ->
        check_bool "raises" true
          (match parse "a)" with _ -> false | exception Path_parser.Parse_error _ -> true));
    test "empty input fails" (fun () ->
        check_bool "raises" true
          (match parse "" with _ -> false | exception Path_parser.Parse_error _ -> true));
    test "dangling dot fails" (fun () ->
        check_bool "raises" true
          (match parse "a." with _ -> false | exception Path_parser.Parse_error _ -> true));
    test "parse_opt returns None on error" (fun () ->
        check_bool "none" true (Option.is_none (Path_parser.parse_opt "|")));
  ]

let ast_tests =
  let open Path_ast in
  [
    test "seq_of_labels builds a left spine" (fun () ->
        Alcotest.check ast "abc" (Seq (Seq (Label "a", Label "b"), Label "c"))
          (seq_of_labels [ "a"; "b"; "c" ]));
    test "seq_of_labels rejects empty" (fun () ->
        check_bool "raises" true
          (match seq_of_labels [] with _ -> false | exception Invalid_argument _ -> true));
    test "as_label_seq inverts seq_of_labels" (fun () ->
        check_string_list "inverse" [ "a"; "b"; "c" ]
          (Option.get (as_label_seq (seq_of_labels [ "a"; "b"; "c" ]))));
    test "as_label_seq refuses stars and wildcards" (fun () ->
        check_bool "star" true (Option.is_none (as_label_seq (parse "a.b*")));
        check_bool "any" true (Option.is_none (as_label_seq (parse "a._"))));
    test "max_word_length of a plain path" (fun () ->
        check_int "3" 3 (Option.get (max_word_length (parse "a.b.c"))));
    test "max_word_length takes the longer alternative" (fun () ->
        check_int "alt" 2 (Option.get (max_word_length (parse "a|b.c"))));
    test "max_word_length of opt keeps the inner bound" (fun () ->
        check_int "opt" 3 (Option.get (max_word_length (parse "a.b?.c"))));
    test "max_word_length unbounded under star" (fun () ->
        check_bool "none" true (Option.is_none (max_word_length (parse "a.b*"))));
    test "min_word_length" (fun () ->
        check_int "path" 3 (min_word_length (parse "a.b.c"));
        check_int "star free" 1 (min_word_length (parse "a.b*"));
        check_int "alt" 1 (min_word_length (parse "a|b.c")));
    test "labels lists distinct names in order" (fun () ->
        check_string_list "labels" [ "a"; "b"; "c" ] (labels (parse "a.b|a.c*")));
    test "pp / parse round trip" (fun () ->
        List.iter
          (fun s ->
            let e = parse s in
            Alcotest.check ast s e (parse (to_string e)))
          [ "a"; "a.b.c"; "a|b|c"; "(a|b).c*"; "a?.b"; "_.a._"; "movieDB.(_)?.movie" ]);
  ]

let bitset_tests =
  [
    test "add and mem" (fun () ->
        let s = Bitset.create 100 in
        Bitset.add s 0;
        Bitset.add s 63;
        Bitset.add s 99;
        check_bool "0" true (Bitset.mem s 0);
        check_bool "63" true (Bitset.mem s 63);
        check_bool "99" true (Bitset.mem s 99);
        check_bool "50" false (Bitset.mem s 50));
    test "out of range raises" (fun () ->
        let s = Bitset.create 10 in
        check_bool "raises" true
          (match Bitset.add s 10 with _ -> false | exception Invalid_argument _ -> true));
    test "cardinal and is_empty" (fun () ->
        let s = Bitset.create 70 in
        check_bool "empty" true (Bitset.is_empty s);
        Bitset.add s 1;
        Bitset.add s 65;
        check_int "two" 2 (Bitset.cardinal s);
        check_bool "not empty" false (Bitset.is_empty s));
    test "union_into reports change" (fun () ->
        let a = Bitset.create 10 and b = Bitset.create 10 in
        Bitset.add b 3;
        check_bool "changed" true (Bitset.union_into ~dst:a b);
        check_bool "unchanged" false (Bitset.union_into ~dst:a b);
        check_bool "member" true (Bitset.mem a 3));
    test "subset" (fun () ->
        let a = Bitset.create 10 and b = Bitset.create 10 in
        Bitset.add a 1;
        Bitset.add b 1;
        Bitset.add b 2;
        check_bool "a <= b" true (Bitset.subset a b);
        check_bool "b <= a" false (Bitset.subset b a));
    test "inter_nonempty" (fun () ->
        let a = Bitset.create 10 and b = Bitset.create 10 in
        Bitset.add a 4;
        Bitset.add b 5;
        check_bool "disjoint" false (Bitset.inter_nonempty a b);
        Bitset.add b 4;
        check_bool "overlap" true (Bitset.inter_nonempty a b));
    test "iter ascends" (fun () ->
        let s = Bitset.create 80 in
        List.iter (Bitset.add s) [ 70; 3; 41 ];
        let seen = ref [] in
        Bitset.iter s (fun i -> seen := i :: !seen);
        check_int_list "sorted" [ 3; 41; 70 ] (List.rev !seen));
    test "clear and copy" (fun () ->
        let s = Bitset.create 10 in
        Bitset.add s 5;
        let c = Bitset.copy s in
        Bitset.clear s;
        check_bool "cleared" true (Bitset.is_empty s);
        check_bool "copy kept" true (Bitset.mem c 5));
    test "capacity mismatch raises" (fun () ->
        let a = Bitset.create 10 and b = Bitset.create 20 in
        check_bool "raises" true
          (match Bitset.subset a b with _ -> false | exception Invalid_argument _ -> true));
  ]

(* NFA acceptance against the reference word matcher. *)
let nfa_tests =
  let pool = Label.Pool.create () in
  let l name = Label.Pool.intern pool name in
  let a = l "a" and b = l "b" and c = l "c" in
  let accepts expr word = Nfa.accepts_word (Nfa.compile pool (parse expr)) word in
  [
    test "label matches itself only" (fun () ->
        check_bool "a" true (accepts "a" [ a ]);
        check_bool "b" false (accepts "a" [ b ]);
        check_bool "empty" false (accepts "a" []));
    test "sequence order matters" (fun () ->
        check_bool "ab" true (accepts "a.b" [ a; b ]);
        check_bool "ba" false (accepts "a.b" [ b; a ]);
        check_bool "a" false (accepts "a.b" [ a ]));
    test "alternation" (fun () ->
        check_bool "a" true (accepts "a|b" [ a ]);
        check_bool "b" true (accepts "a|b" [ b ]);
        check_bool "c" false (accepts "a|b" [ c ]));
    test "star accepts zero and many" (fun () ->
        check_bool "empty" true (accepts "a*" []);
        check_bool "aaa" true (accepts "a*" [ a; a; a ]);
        check_bool "aab" false (accepts "a*" [ a; a; b ]));
    test "opt" (fun () ->
        check_bool "empty" true (accepts "a?" []);
        check_bool "a" true (accepts "a?" [ a ]);
        check_bool "aa" false (accepts "a?" [ a; a ]));
    test "wildcard matches any label" (fun () ->
        check_bool "a" true (accepts "_" [ a ]);
        check_bool "c" true (accepts "_" [ c ]));
    test "composite expression" (fun () ->
        check_bool "a c b" true (accepts "a.(b|c)*.b" [ a; c; b ]);
        check_bool "a b" true (accepts "a.(b|c)*.b" [ a; b ]);
        check_bool "a" false (accepts "a.(b|c)*.b" [ a ]));
    test "unknown label can never match" (fun () ->
        check_bool "ghost" false (accepts "ghost" [ a ]));
    test "agrees with the reference matcher on an exhaustive word set" (fun () ->
        let exprs =
          List.map parse [ "a"; "a.b"; "a|b"; "a*"; "a?.b"; "(a|b).c"; "a.(b.c)*"; "_.b" ]
        in
        let alphabet = [ ("a", a); ("b", b); ("c", c) ] in
        (* All words of length <= 3. *)
        let words =
          let rec gen n = if n = 0 then [ [] ] else
            List.concat_map (fun w -> List.map (fun s -> s :: w) alphabet) (gen (n - 1))
          in
          List.concat_map gen [ 0; 1; 2; 3 ]
        in
        List.iter
          (fun expr ->
            let nfa = Nfa.compile pool expr in
            List.iter
              (fun word ->
                let names = List.map fst word and codes = List.map snd word in
                check_bool
                  (Printf.sprintf "%s on %s" (Path_ast.to_string expr) (String.concat "." names))
                  (word_in_lang expr names)
                  (Nfa.accepts_word nfa codes))
              words)
          exprs);
  ]

let dfa_tests =
  let pool = Label.Pool.create () in
  let l name = Label.Pool.intern pool name in
  let a = l "a" and b = l "b" and c = l "c" in
  [
    test "DFA accepts exactly what the NFA accepts" (fun () ->
        let exprs =
          List.map parse [ "a"; "a.b"; "a|b"; "a*"; "a?.b"; "(a|b).c"; "a.(b.c)*"; "_.b"; "a.(b|c)*.b" ]
        in
        let alphabet = [ a; b; c ] in
        let words =
          let rec gen n =
            if n = 0 then [ [] ]
            else List.concat_map (fun w -> List.map (fun s -> s :: w) alphabet) (gen (n - 1))
          in
          List.concat_map gen [ 0; 1; 2; 3; 4 ]
        in
        List.iter
          (fun expr ->
            let nfa = Nfa.compile pool expr in
            let dfa = Dfa.compile pool expr in
            List.iter
              (fun word ->
                check_bool
                  (Path_ast.to_string expr)
                  (Nfa.accepts_word nfa word) (Dfa.accepts_word dfa word))
              words)
          exprs);
    test "dead state stays dead" (fun () ->
        let dfa = Dfa.compile pool (parse "a.b") in
        let s = Dfa.step dfa (Dfa.start dfa) c in
        check_int "dead" (-1) s;
        check_int "still dead" (-1) (Dfa.step dfa s a);
        check_bool "not accepting" false (Dfa.accepting dfa (-1)));
    test "determinization is capped" (fun () ->
        check_bool "raises" true
          (match Dfa.compile ~max_states:1 pool (parse "a.b.c") with
          | _ -> false
          | exception Dfa.Too_large _ -> true));
    test "eval_dfa equals eval_nfa on graphs" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:150 in
            let gpool = Data_graph.pool g in
            List.iter
              (fun src ->
                let expr = parse src in
                let by_nfa = Matcher.eval_nfa g (Nfa.compile gpool expr) ~cost:(Cost.create ()) in
                let by_dfa = Matcher.eval_dfa g (Dfa.compile gpool expr) ~cost:(Cost.create ()) in
                check_int_list src by_nfa by_dfa)
              [ "l0.l1"; "l0.(l1|l2)*"; "_.l3?"; "l2.l0.l1|l4" ])
          [ 301; 302; 303 ]);
  ]

let matcher_tests =
  [
    test "eval_label_path on the movie graph" (fun () ->
        let m = movie_graph () in
        let q = labels_of_strings m.g [ "director"; "movie"; "title" ] in
        let result = Matcher.eval_label_path m.g q ~cost:(Cost.create ()) in
        check_int_list "titles" (List.sort compare [ m.title1; m.title2 ]) result);
    test "eval_label_path crosses reference edges" (fun () ->
        let m = movie_graph () in
        let q = labels_of_strings m.g [ "actor"; "movie"; "title" ] in
        let result = Matcher.eval_label_path m.g q ~cost:(Cost.create ()) in
        check_int_list "titles" (List.sort compare [ m.title1; m.title3 ]) result);
    test "eval_label_path counts visits" (fun () ->
        let m = movie_graph () in
        let cost = Cost.create () in
        ignore (Matcher.eval_label_path m.g (labels_of_strings m.g [ "movie"; "title" ]) ~cost);
        check_bool "visited something" true (cost.Cost.data_visits > 0);
        check_int "no index visits" 0 cost.Cost.index_visits);
    test "eval_nfa agrees with eval_label_path on plain paths" (fun () ->
        let g = random_graph ~seed:12 ~nodes:200 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:12 ~count:15 g in
        let pool = Data_graph.pool g in
        List.iter
          (fun q ->
            let by_path = Matcher.eval_label_path g q ~cost:(Cost.create ()) in
            let names = Array.to_list (Array.map (Label.Pool.name pool) q) in
            let nfa = Nfa.compile pool (Path_ast.seq_of_labels names) in
            let by_nfa = Matcher.eval_nfa g nfa ~cost:(Cost.create ()) in
            check_int_list "same" by_path by_nfa)
          queries);
    test "eval_nfa handles cycles under star" (fun () ->
        let g, a, bb, _c = cyclic_graph () in
        let pool = Data_graph.pool g in
        let nfa = Nfa.compile pool (parse "a.(b.a)*") in
        let result = Matcher.eval_nfa g nfa ~cost:(Cost.create ()) in
        check_bool "a in" true (List.mem a result);
        check_bool "b out" false (List.mem bb result));
    test "path validator accepts true matches and rejects others" (fun () ->
        let m = movie_graph () in
        let q = labels_of_strings m.g [ "director"; "movie"; "title" ] in
        let validator = Matcher.make_path_validator m.g q ~cost:(Cost.create ()) in
        check_bool "title1" true (validator m.title1);
        check_bool "title3 not under a director" false (validator m.title3);
        check_bool "a movie is not a title" false (validator m.movie1));
    test "path validator memoizes across candidates" (fun () ->
        let g = chain_graph [ "a"; "b"; "b" ] in
        let q = labels_of_strings g [ "ROOT"; "a"; "b" ] in
        let cost = Cost.create () in
        let validator = Matcher.make_path_validator g q ~cost in
        ignore (validator 2);
        let after_first = cost.Cost.data_visits in
        ignore (validator 2);
        check_int "no growth on repeat" after_first cost.Cost.data_visits);
    test "node_matches_nfa agrees with full evaluation" (fun () ->
        let g = random_graph ~seed:13 ~nodes:120 in
        let pool = Data_graph.pool g in
        let expr = parse "l0.(l1|l2)._" in
        let nfa = Nfa.compile pool expr in
        let all = Matcher.eval_nfa g nfa ~cost:(Cost.create ()) in
        Data_graph.iter_nodes g (fun u ->
            let expected = List.mem u all in
            let got = Matcher.node_matches_nfa g nfa ~node:u ~cost:(Cost.create ()) in
            check_bool (Printf.sprintf "node %d" u) expected got));
    test "empty query returns nothing" (fun () ->
        let m = movie_graph () in
        check_int_list "empty" [] (Matcher.eval_label_path m.g [||] ~cost:(Cost.create ())));
  ]

let cost_tests =
  [
    test "cost accumulates and totals" (fun () ->
        let c = Cost.create () in
        Cost.visit_index c;
        Cost.visit_data c;
        Cost.visit_data c;
        check_int "total" 3 (Cost.total c);
        let acc = Cost.create () in
        Cost.add acc c;
        Cost.add acc c;
        check_int "acc" 6 (Cost.total acc));
  ]

let () =
  Alcotest.run "pathexpr"
    [
      ("parser", parser_tests);
      ("ast", ast_tests);
      ("bitset", bitset_tests);
      ("nfa", nfa_tests);
      ("dfa", dfa_tests);
      ("matcher", matcher_tests);
      ("cost", cost_tests);
    ]
