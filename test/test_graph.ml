open Dkindex_graph
open Testlib

(* ------------------------------------------------------------------ *)
(* Label pool                                                          *)

let label_tests =
  [
    test "intern is idempotent" (fun () ->
        let pool = Label.Pool.create () in
        let a = Label.Pool.intern pool "a" in
        let a' = Label.Pool.intern pool "a" in
        check_bool "same code" true (Label.equal a a'));
    test "distinct names get distinct codes" (fun () ->
        let pool = Label.Pool.create () in
        let a = Label.Pool.intern pool "a" and b = Label.Pool.intern pool "b" in
        check_bool "different" false (Label.equal a b));
    test "name round-trips" (fun () ->
        let pool = Label.Pool.create () in
        let a = Label.Pool.intern pool "hello" in
        check_string "name" "hello" (Label.Pool.name pool a));
    test "name of unknown code raises" (fun () ->
        let pool = Label.Pool.create () in
        Alcotest.check_raises "invalid" (Invalid_argument "Label.Pool.name: unknown code 5")
          (fun () -> ignore (Label.Pool.name pool (Label.of_int 5))));
    test "find_opt misses unknown names" (fun () ->
        let pool = Label.Pool.create () in
        check_bool "none" true (Option.is_none (Label.Pool.find_opt pool "nope")));
    test "count grows with interning" (fun () ->
        let pool = Label.Pool.create () in
        ignore (Label.Pool.intern pool "a");
        ignore (Label.Pool.intern pool "b");
        ignore (Label.Pool.intern pool "a");
        check_int "count" 2 (Label.Pool.count pool));
    test "many labels force growth" (fun () ->
        let pool = Label.Pool.create () in
        for i = 0 to 99 do
          ignore (Label.Pool.intern pool (string_of_int i))
        done;
        check_int "count" 100 (Label.Pool.count pool);
        check_string "name 73" "73" (Label.Pool.name pool (Label.of_int 73)));
    test "copy is independent" (fun () ->
        let pool = Label.Pool.create () in
        ignore (Label.Pool.intern pool "a");
        let copy = Label.Pool.copy pool in
        ignore (Label.Pool.intern copy "b");
        check_int "original unchanged" 1 (Label.Pool.count pool);
        check_int "copy grew" 2 (Label.Pool.count copy));
    test "fold visits labels in code order" (fun () ->
        let pool = Label.Pool.create () in
        List.iter (fun n -> ignore (Label.Pool.intern pool n)) [ "x"; "y"; "z" ];
        let names = List.rev (Label.Pool.fold (fun _ n acc -> n :: acc) pool []) in
        check_string_list "order" [ "x"; "y"; "z" ] names);
    test "compare is consistent with codes" (fun () ->
        let pool = Label.Pool.create () in
        let a = Label.Pool.intern pool "a" and b = Label.Pool.intern pool "b" in
        check_bool "a < b" true (Label.compare a b < 0));
  ]

(* ------------------------------------------------------------------ *)
(* Data graph construction and accessors                               *)

let simple_graph () =
  (* ROOT -> a, ROOT -> b, a -> c, b -> c *)
  let pool = Label.Pool.create () in
  let l n = Label.Pool.intern pool n in
  let labels = [| l "ROOT"; l "a"; l "b"; l "c" |] in
  Data_graph.make ~pool ~labels ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ] ()

let graph_tests =
  [
    test "basic accessors" (fun () ->
        let g = simple_graph () in
        check_int "nodes" 4 (Data_graph.n_nodes g);
        check_int "edges" 4 (Data_graph.n_edges g);
        check_int "root" 0 (Data_graph.root g);
        check_string "root label" "ROOT" (Data_graph.label_name g 0);
        check_string "c label" "c" (Data_graph.label_name g 3));
    test "children and parents are symmetric" (fun () ->
        let g = simple_graph () in
        check_int_list "children of root" [ 1; 2 ]
          (List.sort compare (Data_graph.children g 0));
        check_int_list "parents of c" [ 1; 2 ] (List.sort compare (Data_graph.parents g 3));
        check_int_list "parents of root" [] (Data_graph.parents g 0));
    test "duplicate edges are kept once" (fun () ->
        let pool = Label.Pool.create () in
        let labels = [| Label.Pool.intern pool "ROOT"; Label.Pool.intern pool "a" |] in
        let g = Data_graph.make ~pool ~labels ~edges:[ (0, 1); (0, 1); (0, 1) ] () in
        check_int "edges" 1 (Data_graph.n_edges g));
    test "out-of-range edge raises" (fun () ->
        let pool = Label.Pool.create () in
        let labels = [| Label.Pool.intern pool "ROOT" |] in
        Alcotest.check_raises "invalid"
          (Invalid_argument "Data_graph: edge (0, 3) out of range") (fun () ->
            ignore (Data_graph.make ~pool ~labels ~edges:[ (0, 3) ] ())));
    test "empty node set raises" (fun () ->
        let pool = Label.Pool.create () in
        Alcotest.check_raises "invalid" (Invalid_argument "Data_graph.make: no nodes")
          (fun () -> ignore (Data_graph.make ~pool ~labels:[||] ~edges:[] ())));
    test "degrees" (fun () ->
        let g = simple_graph () in
        check_int "out of root" 2 (Data_graph.out_degree g 0);
        check_int "in of c" 2 (Data_graph.in_degree g 3);
        check_int "in of root" 0 (Data_graph.in_degree g 0));
    test "nodes_with_label lists increasing ids" (fun () ->
        let g = chain_graph [ "x"; "y"; "x"; "x" ] in
        let pool = Data_graph.pool g in
        let x = Option.get (Label.Pool.find_opt pool "x") in
        check_int_list "xs" [ 1; 3; 4 ] (Data_graph.nodes_with_label g x));
    test "nodes_with_label of absent label is empty" (fun () ->
        let g = simple_graph () in
        check_int_list "none" [] (Data_graph.nodes_with_label g (Label.of_int 0) |> List.filter (fun _ -> false)));
    test "has_edge" (fun () ->
        let g = simple_graph () in
        check_bool "0->1" true (Data_graph.has_edge g 0 1);
        check_bool "1->0" false (Data_graph.has_edge g 1 0));
    test "add_edge links both directions" (fun () ->
        let g = simple_graph () in
        Data_graph.add_edge g 3 1;
        check_bool "present" true (Data_graph.has_edge g 3 1);
        check_bool "parent recorded" true (List.mem 3 (Data_graph.parents g 1));
        check_int "edge count" 5 (Data_graph.n_edges g));
    test "add_edge is idempotent" (fun () ->
        let g = simple_graph () in
        Data_graph.add_edge g 0 3;
        Data_graph.add_edge g 0 3;
        check_int "edges" 5 (Data_graph.n_edges g));
    test "self-loops are allowed" (fun () ->
        let g = simple_graph () in
        Data_graph.add_edge g 3 3;
        check_bool "self" true (Data_graph.has_edge g 3 3);
        check_bool "own parent" true (List.mem 3 (Data_graph.parents g 3)));
    test "iter_edges visits each edge once" (fun () ->
        let g = simple_graph () in
        let count = ref 0 in
        Data_graph.iter_edges g (fun _ _ -> incr count);
        check_int "count" (Data_graph.n_edges g) !count);
    test "fold_nodes covers all ids" (fun () ->
        let g = simple_graph () in
        let sum = Data_graph.fold_nodes g ~init:0 ~f:( + ) in
        check_int "sum of ids" 6 sum);
    test "copy is deeply independent" (fun () ->
        let g = simple_graph () in
        let g' = Data_graph.copy g in
        Data_graph.add_edge g' 3 1;
        check_bool "copy has it" true (Data_graph.has_edge g' 3 1);
        check_bool "original does not" false (Data_graph.has_edge g 3 1);
        ignore (Label.Pool.intern (Data_graph.pool g') "fresh");
        check_bool "pools independent" true
          (Option.is_none (Label.Pool.find_opt (Data_graph.pool g) "fresh")));
  ]

(* ------------------------------------------------------------------ *)
(* Graft                                                               *)

let graft_tests =
  [
    test "graft merges roots and offsets ids" (fun () ->
        let g = chain_graph [ "a" ] in
        let h = chain_graph [ "x"; "y" ] in
        let g', offset = Data_graph.graft g h in
        (* g has 2 nodes, h has 3, minus h's dropped root. *)
        check_int "nodes" 4 (Data_graph.n_nodes g');
        check_int "offset" 2 offset;
        (* h's node 1 ("x") becomes a child of g's root. *)
        let x = 1 - 1 + offset in
        check_bool "root -> x" true (Data_graph.has_edge g' 0 x);
        check_string "x label" "x" (Data_graph.label_name g' x);
        check_string "y label" "y" (Data_graph.label_name g' (2 - 1 + offset)));
    test "graft preserves original edges" (fun () ->
        let g = simple_graph () in
        let h = chain_graph [ "z" ] in
        let g', _ = Data_graph.graft g h in
        check_bool "0->1" true (Data_graph.has_edge g' 0 1);
        check_bool "1->3" true (Data_graph.has_edge g' 1 3));
    test "graft does not mutate the inputs" (fun () ->
        let g = simple_graph () in
        let h = chain_graph [ "z" ] in
        let n_g = Data_graph.n_nodes g and n_h = Data_graph.n_nodes h in
        ignore (Data_graph.graft g h);
        check_int "g unchanged" n_g (Data_graph.n_nodes g);
        check_int "h unchanged" n_h (Data_graph.n_nodes h));
    test "graft keeps the result reachable" (fun () ->
        let g = random_graph ~seed:1 ~nodes:50 in
        let h = random_graph ~seed:2 ~nodes:30 in
        let g', _ = Data_graph.graft g h in
        check_int "unreachable" 0 (Data_graph.stats g').Data_graph.unreachable);
  ]

(* ------------------------------------------------------------------ *)
(* Stats and traversal                                                 *)

let traversal_tests =
  [
    test "stats of a chain" (fun () ->
        let g = chain_graph [ "a"; "b"; "c" ] in
        let s = Data_graph.stats g in
        check_int "depth" 3 s.Data_graph.max_depth;
        check_int "unreachable" 0 s.Data_graph.unreachable;
        check_int "labels" 4 s.Data_graph.labels);
    test "depths" (fun () ->
        let g = simple_graph () in
        let d = Traversal.depths g in
        check_int "root" 0 d.(0);
        check_int "a" 1 d.(1);
        check_int "c" 2 d.(3));
    test "depths marks unreachable nodes" (fun () ->
        let pool = Label.Pool.create () in
        let l n = Label.Pool.intern pool n in
        let g = Data_graph.make ~pool ~labels:[| l "ROOT"; l "a" |] ~edges:[] () in
        check_int "unreachable" (-1) (Traversal.depths g).(1));
    test "bfs_order starts at the root and covers reachable nodes" (fun () ->
        let g = simple_graph () in
        let order = Traversal.bfs_order g in
        check_int "first" 0 order.(0);
        check_int "length" 4 (Array.length order));
    test "reachable is forward-only" (fun () ->
        let g = simple_graph () in
        let r = Traversal.reachable g ~from:1 in
        check_bool "1 itself" true r.(1);
        check_bool "3 below" true r.(3);
        check_bool "2 is a sibling" false r.(2);
        check_bool "root above" false r.(0));
    test "label_path_to walks up to the root" (fun () ->
        let g = chain_graph [ "a"; "b"; "c" ] in
        let path = Traversal.label_path_to g 3 ~max_len:10 in
        check_string_list "labels"
          [ "ROOT"; "a"; "b"; "c" ]
          (List.map (Label.Pool.name (Data_graph.pool g)) path));
    test "label_path_to respects max_len" (fun () ->
        let g = chain_graph [ "a"; "b"; "c" ] in
        check_int "len" 2 (List.length (Traversal.label_path_to g 3 ~max_len:2)));
    test "label_counts sorted by population" (fun () ->
        let g = chain_graph [ "x"; "x"; "y" ] in
        match Traversal.label_counts g with
        | (top, n) :: _ ->
          check_string "top" "x" top;
          check_int "count" 2 n
        | [] -> Alcotest.fail "empty");
  ]

(* ------------------------------------------------------------------ *)
(* Value payloads                                                      *)

let value_tests =
  [
    test "values attach and read back" (fun () ->
        let b = Builder.create () in
        let x = Builder.add_child b ~parent:0 "x" in
        let v = Builder.add_value ~text:"payload" b ~parent:x in
        let plain = Builder.add_value b ~parent:x in
        let g = Builder.build b in
        check_string "payload" "payload" (Option.get (Data_graph.value g v));
        check_bool "plain VALUE has none" true (Option.is_none (Data_graph.value g plain));
        check_bool "element has none" true (Option.is_none (Data_graph.value g x)));
    test "set_value on an arbitrary node" (fun () ->
        let b = Builder.create () in
        let x = Builder.add_child b ~parent:0 "x" in
        Builder.set_value b x "direct";
        let g = Builder.build b in
        check_string "direct" "direct" (Option.get (Data_graph.value g x)));
    test "copy and graft carry values" (fun () ->
        let b = Builder.create () in
        let x = Builder.add_child b ~parent:0 "x" in
        ignore (Builder.add_value ~text:"v" b ~parent:x);
        let g = Builder.build b in
        let g' = Data_graph.copy g in
        check_string "copied" "v" (Option.get (Data_graph.value g' 2));
        let host = chain_graph [ "a" ] in
        let combined, offset = Data_graph.graft host g in
        check_string "grafted" "v" (Option.get (Data_graph.value combined (2 - 1 + offset))));
    test "serialization round-trips values, including newlines" (fun () ->
        let b = Builder.create () in
        let x = Builder.add_child b ~parent:0 "x" in
        ignore (Builder.add_value ~text:"line1\nline2 100% \r" b ~parent:x);
        let g = Builder.build b in
        let g' = Serial.of_string (Serial.to_string g) in
        check_string "payload" "line1\nline2 100% \r" (Option.get (Data_graph.value g' 2)));
    test "legacy v1 serializations still load" (fun () ->
        let v1 = "dkindex-graph 1\nnodes 2\nROOT\na\nedges 1\n0 1\n" in
        let g = Serial.of_string v1 in
        check_int "nodes" 2 (Data_graph.n_nodes g);
        check_bool "no values" true (Option.is_none (Data_graph.value g 1)));
  ]

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let serial_tests =
  [
    test "round trip preserves structure" (fun () ->
        let g = random_graph ~seed:3 ~nodes:80 in
        let g' = Serial.of_string (Serial.to_string g) in
        check_int "nodes" (Data_graph.n_nodes g) (Data_graph.n_nodes g');
        check_int "edges" (Data_graph.n_edges g) (Data_graph.n_edges g');
        Data_graph.iter_nodes g (fun u ->
            check_string "label" (Data_graph.label_name g u) (Data_graph.label_name g' u);
            check_int_list "children"
              (List.sort compare (Data_graph.children g u))
              (List.sort compare (Data_graph.children g' u))));
    test "bad magic fails" (fun () ->
        check_bool "raises" true
          (match Serial.of_string "nonsense\n" with
          | _ -> false
          | exception Failure _ -> true));
    test "truncated labels fail" (fun () ->
        check_bool "raises" true
          (match Serial.of_string "dkindex-graph 1\nnodes 3\nROOT\n" with
          | _ -> false
          | exception Failure _ -> true));
    test "truncated edges fail" (fun () ->
        check_bool "raises" true
          (match Serial.of_string "dkindex-graph 1\nnodes 1\nROOT\nedges 2\n0 0\n" with
          | _ -> false
          | exception Failure _ -> true));
    test "file save/load" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let path = Filename.temp_file "dkindex" ".graph" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Serial.save path g;
            let g' = Serial.load path in
            check_int "nodes" 3 (Data_graph.n_nodes g')));
  ]

(* ------------------------------------------------------------------ *)
(* Dot and builder                                                     *)

let misc_tests =
  [
    test "dot output mentions every node" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let dot = Dot.to_dot g in
        check_bool "has a" true
          (Option.is_some (String.index_opt dot 'a'));
        check_bool "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
        check_bool "edge" true
          (let needle = "n0 -> n1" in
           let rec find i =
             i + String.length needle <= String.length dot
             && (String.sub dot i (String.length needle) = needle || find (i + 1))
           in
           find 0));
    test "dot caps nodes" (fun () ->
        let g = random_graph ~seed:4 ~nodes:100 in
        let dot = Dot.to_dot ~max_nodes:10 g in
        check_bool "mentions elision" true
          (let needle = "elided" in
           let rec find i =
             i + String.length needle <= String.length dot
             && (String.sub dot i (String.length needle) = needle || find (i + 1))
           in
           find 0));
    test "builder wires children and values" (fun () ->
        let b = Builder.create () in
        let a = Builder.add_child b ~parent:(Builder.root b) "a" in
        let v = Builder.add_value b ~parent:a in
        let g = Builder.build b in
        check_string "value label" Label.value_name (Data_graph.label_name g v);
        check_bool "edge" true (Data_graph.has_edge g a v));
    test "builder with custom root label" (fun () ->
        let b = Builder.create_with_root "myroot" in
        let g = Builder.build b in
        check_string "root" "myroot" (Data_graph.label_name g 0));
    test "builder can be rebuilt after more additions" (fun () ->
        let b = Builder.create () in
        ignore (Builder.add_child b ~parent:(Builder.root b) "a");
        let g1 = Builder.build b in
        ignore (Builder.add_child b ~parent:(Builder.root b) "b");
        let g2 = Builder.build b in
        check_int "first" 2 (Data_graph.n_nodes g1);
        check_int "second" 3 (Data_graph.n_nodes g2));
  ]

let () =
  Alcotest.run "graph"
    [
      ("label", label_tests);
      ("data_graph", graph_tests);
      ("graft", graft_tests);
      ("traversal", traversal_tests);
      ("values", value_tests);
      ("serial", serial_tests);
      ("misc", misc_tests);
    ]
