(* Integrity tests: the incremental digest tree (qcheck-proven equal to
   a full recompute through update churn), digest localization and
   section repair, the at-rest scrubber with quarantine, and end-to-end
   anti-entropy: a replica that silently dropped a replicated record
   (or whose checkpoint rotted on disk) detects the divergence against
   the primary's digests and repairs itself.

   As in test_chaos, every server runs in a forked child process —
   OCaml 5 forbids Unix.fork once a domain exists, so the parent stays
   single-threaded and drives plain blocking clients. *)

open Dkindex_core
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module Wire = Dkindex_server.Wire
module Server = Dkindex_server.Server
module Client = Dkindex_server.Client
module Wal = Dkindex_server.Wal
module Checkpoint = Dkindex_server.Checkpoint
module Replication = Dkindex_server.Replication
module Faults = Dkindex_server.Faults
module Scrub = Dkindex_server.Scrub
module Integrity = Dkindex_server.Integrity
module Prng = Dkindex_datagen.Prng

let to_alcotest = QCheck_alcotest.to_alcotest
let now () = Unix.gettimeofday ()

(* ----------------------------------------------------------------- *)
(* Scratch directories (recursive: quarantine/ subdirectories) *)

let temp_dir () =
  let path = Filename.temp_file "dkintegrity" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n ->
        let p = Filename.concat dir n in
        if (try Sys.is_directory p with Sys_error _ -> false) then rm_rf p
        else try Sys.remove p with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* ----------------------------------------------------------------- *)
(* Deterministic base indexes *)

let build_base () =
  let g =
    Dkindex_datagen.Random_graph.graph ~seed:23 ~nodes:300 ~n_labels:5 ~extra_edges:120 ()
  in
  Dk_index.build g ~reqs:[ ("l0", 2); ("l1", 3); ("l2", 2) ]

(* Big enough to span several digest ranges (1 lsl range_shift ids per
   range), for the localization test. *)
let build_wide () =
  let g =
    Dkindex_datagen.Random_graph.graph ~seed:29
      ~nodes:(3 * (1 lsl Integrity.range_shift))
      ~n_labels:6 ~extra_edges:1500 ()
  in
  Dk_index.build g ~reqs:[ ("l0", 2); ("l1", 2) ]

let empty_index () =
  let pool = Label.Pool.create () in
  let root = Label.Pool.intern pool Label.root_name in
  let g = Data_graph.make ~pool ~labels:[| root |] ~edges:[] () in
  Dk_index.build g ~reqs:[]

(* Node pairs absent from the base graph, pairwise distinct. *)
let fresh_edges ~seed ~count =
  let g = Index_graph.data (build_base ()) in
  let n = Data_graph.n_nodes g in
  let rng = Prng.create ~seed in
  let seen = Hashtbl.create 64 in
  let rec pick () =
    let u = Prng.int rng n and v = Prng.int rng n in
    if u = v || Data_graph.has_edge g u v || Hashtbl.mem seen (u, v) then pick ()
    else begin
      Hashtbl.replace seen (u, v) ();
      (u, v)
    end
  in
  List.init count (fun _ -> pick ())

(* ----------------------------------------------------------------- *)
(* 1. The tracker is exact: refresh through churn equals compute_full *)

(* Mirror the mutator's discipline: apply, note, attach the (possibly
   brand-new) index, commit, and only then refresh. *)
let churn_step rng idx t =
  let g = Index_graph.data !idx in
  let n = Data_graph.n_nodes g in
  let m =
    match Prng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
      let u = Prng.int rng n and v = Prng.int rng n in
      Wal.Add_edge { u; v }
    | 5 | 6 | 7 ->
      let u = Prng.int rng n and v = Prng.int rng n in
      Wal.Remove_edge { u; v }
    | 8 -> Wal.Promote [ ("l1", 4) ]
    | _ -> Wal.Demote [ ("l2", 1) ]
  in
  match Checkpoint.apply_mutation !idx m with
  | idx' ->
    Integrity.note_mutation t m;
    Integrity.attach t idx';
    idx := idx';
    Integrity.commit t
  | exception _ -> () (* invalid mutation (duplicate edge, self-loop): skipped *)

let incremental_matches_full =
  QCheck.Test.make ~count:25 ~name:"integrity: refresh equals compute_full through churn"
    QCheck.(make ~print:string_of_int Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Prng.create ~seed in
      let idx = ref (build_base ()) in
      let t = Integrity.create () in
      Integrity.attach t !idx;
      let check_now what =
        let inc = Integrity.refresh t !idx in
        let full = Integrity.compute_full !idx in
        if inc <> full then
          QCheck.Test.fail_reportf "%s: incremental root %x <> full root %x" what
            inc.Integrity.root full.Integrity.root
      in
      for i = 1 to 30 do
        churn_step rng idx t;
        if Prng.int rng 3 = 0 then check_now (Printf.sprintf "after step %d" i)
      done;
      check_now "final";
      true)

let test_content_canonical () =
  let a = Integrity.compute_full (build_base ()) in
  let b = Integrity.compute_full (build_base ()) in
  Alcotest.(check bool) "independent builds digest identically" true (a = b);
  Alcotest.(check bool) "root is nonzero" true (a.Integrity.root <> 0);
  let c = Integrity.compute_full (empty_index ()) in
  Alcotest.(check bool) "different content, different root" true
    (a.Integrity.root <> c.Integrity.root)

(* ----------------------------------------------------------------- *)
(* 2. Localization + section repair: a one-edge divergence names one
   range, and shipping that range's section converges the copies. *)

let test_section_repair () =
  let a = ref (build_wide ()) in
  let b = ref (build_wide ()) in
  let g = Index_graph.data !a in
  let u = (1 lsl Integrity.range_shift) + 137 in
  let v =
    let rec find v = if v <> u && not (Data_graph.has_edge g u v) then v else find (v + 1) in
    find 0
  in
  a := Checkpoint.apply_mutation !a (Wal.Add_edge { u; v });
  let da = Integrity.compute_full !a in
  let db = Integrity.compute_full !b in
  Alcotest.(check bool) "divergence shows in the root" true
    (da.Integrity.root <> db.Integrity.root);
  Alcotest.(check (list int)) "exactly the mutated source's range differs"
    [ u lsr Integrity.range_shift ]
    (Integrity.diff_data_ranges da db);
  (* the repair protocol in miniature: fetch the divergent section from
     [a], diff it against [b], apply the resulting mutations *)
  List.iter
    (fun r ->
      let theirs = Integrity.section !a r in
      let ms = Integrity.section_diff (Index_graph.data !b) ~range:r ~theirs in
      Alcotest.(check bool) "diff proposes repairs" true (ms <> []);
      List.iter (fun m -> b := Checkpoint.apply_mutation !b m) ms)
    (Integrity.diff_data_ranges da db);
  Alcotest.(check bool) "repaired copy digests identically" true
    (Integrity.compute_full !b = da);
  (* agreeing rows propose nothing *)
  Alcotest.(check int) "no-op diff on agreeing rows" 0
    (List.length
       (Integrity.section_diff (Index_graph.data !b) ~range:0 ~theirs:(Integrity.section !a 0)))

(* ----------------------------------------------------------------- *)
(* 3. The scrubber: flips are found, torn tails are tolerated,
   quarantine moves the evidence aside. *)

(* Checkpoint.start spawns a background writer domain, and this OCaml
   forbids Unix.fork in any process that has ever created a domain —
   so the durable-directory setup runs in a forked child (exactly like
   the servers below), leaving the parent free to keep forking. *)
let populate_data_dir ~dir =
  match Unix.fork () with
  | 0 ->
    let status =
      try
        let idx = ref (build_base ()) in
        let cfg = { (Checkpoint.default_config ~dir) with sync = Wal.Always } in
        let d = Checkpoint.start cfg !idx in
        let edges = fresh_edges ~seed:31 ~count:12 in
        List.iteri
          (fun i (u, v) ->
            let m = Wal.Add_edge { u; v } in
            idx := Checkpoint.apply_mutation !idx m;
            Checkpoint.log_mutation d m;
            if i = 5 then
              match Checkpoint.checkpoint_now d !idx with
              | Ok () -> ()
              | Error e -> failwith e)
          edges;
        match Checkpoint.close d !idx with Ok () -> 0 | Error _ -> 1
      with _ -> 2
    in
    Unix._exit status
  | pid -> (
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> Alcotest.fail "data-dir setup child failed")

let test_scrub_pass () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir)
  @@ fun () ->
  populate_data_dir ~dir;
  let clean = Scrub.scan ~dir () in
  Alcotest.(check int) "clean directory scans clean" 0 (List.length clean.Scrub.corrupt);
  Alcotest.(check bool) "files were scanned" true (clean.Scrub.files_scanned > 0);
  Alcotest.(check bool) "bytes were read" true (clean.Scrub.bytes_read > 0);
  (* flip one bit in the newest checkpoint: the sidecar contradicts it *)
  let cseq = List.fold_left max 0 (Checkpoint.checkpoint_seqs dir) in
  let cfile = Checkpoint.checkpoint_file ~dir ~seq:cseq in
  Faults.flip_bit_at_rest cfile ~off:(Faults.file_size cfile / 2) ~bit:0;
  (match
     Checkpoint.check_sidecar ~dir ~seq:cseq (Faults.read_all None cfile)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sidecar must contradict the flipped snapshot");
  (* ... and recovery falls back a generation rather than loading it *)
  let r = Checkpoint.recover ~dir () in
  Alcotest.(check int) "recovery skipped the corrupt generation" 1
    r.Checkpoint.fallback_checkpoints;
  Alcotest.(check bool) "an index was still recovered" true (r.Checkpoint.index <> None);
  (* flip one payload bit of a sealed WAL's first record (offset 9 is
     inside the payload: 8 header bytes, then tag + ids) *)
  let wseq = List.hd (Checkpoint.wal_seqs dir) in
  let wfile = Checkpoint.wal_file ~dir ~seq:wseq in
  Faults.flip_bit_at_rest wfile ~off:9 ~bit:3;
  (* a torn tail — a record with fewer bytes than its header claims —
     is a crash artifact, not corruption *)
  let torn_seq = 9000 in
  let torn = Checkpoint.wal_file ~dir ~seq:torn_seq in
  let w = Wal.create ~sync:Wal.Always torn in
  List.iter (fun (u, v) -> Wal.append w (Wal.Add_edge { u; v })) (fresh_edges ~seed:32 ~count:3);
  Wal.close w;
  Faults.truncate_at_rest torn ~size:(Faults.file_size torn - 3);
  let report = Scrub.scan ~dir () in
  let kinds = List.sort compare (List.map (fun c -> c.Scrub.what) report.Scrub.corrupt) in
  Alcotest.(check bool) "exactly the two flipped files are corrupt" true
    (kinds = List.sort compare [ `Checkpoint cseq; `Wal wseq ]);
  (* quarantine moves them aside; a rescan is clean *)
  let moved = Scrub.quarantine ~dir (List.map (fun c -> c.Scrub.file) report.Scrub.corrupt) in
  Alcotest.(check int) "both files moved" 2 (List.length moved);
  List.iter
    (fun name ->
      Alcotest.(check bool) ("evidence kept: " ^ name) true
        (Sys.file_exists (Filename.concat (Scrub.quarantine_dir dir) name));
      Alcotest.(check bool) ("removed from the chain: " ^ name) false
        (Sys.file_exists (Filename.concat dir name)))
    moved;
  Alcotest.(check int) "post-quarantine rescan is clean" 0
    (List.length (Scrub.scan ~dir ()).Scrub.corrupt);
  (* already-missing files are skipped, not errors *)
  Alcotest.(check int) "quarantining a missing file is a no-op" 0
    (List.length (Scrub.quarantine ~dir [ "checkpoint-000009999.index" ]))

(* ----------------------------------------------------------------- *)
(* Forked servers (the test_chaos pattern, plus integrity knobs) *)

let read_port_line fd =
  let buf = Buffer.create 16 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> failwith "child died before reporting its port"
    | _ ->
      if Bytes.get b 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        go ()
      end
  in
  int_of_string (go ())

let fork_server ?(sync = Wal.Always) ?(checkpoint_records = 1000) ?replica_of
    ?(empty = false) ?hub_heartbeat_s ?(repl_drop_nth = 0) ?(config_f = fun c -> c) ~dir ()
    =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let status =
      try
        let base = if empty then empty_index () else build_base () in
        let recovery = Checkpoint.recover ~dir () in
        let index = match recovery.Checkpoint.index with Some i -> i | None -> base in
        let cfg = { (Checkpoint.default_config ~dir) with sync; checkpoint_records } in
        let d = Checkpoint.start ~recovery cfg index in
        match
          Server.run ~handle_signals:false ~durability:d ?replica_of ?hub_heartbeat_s
            ~repl_drop_nth
            ~on_ready:(fun port ->
              let line = string_of_int port ^ "\n" in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w)
            (config_f { Server.default_config with port = 0; workers = 1; deadline_s = 0.0 })
            index
        with
        | Ok () -> 0
        | Error _ -> 1
      with _ -> 2
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    (pid, port)

let rconfig ?(replica_id = 1) ~port () =
  {
    (Replication.default_rconfig ~host:"127.0.0.1" ~port ~replica_id) with
    failover_timeout_s = 3600.0;
    staleness_bound_s = 3600.0;
  }

let kill_quiet pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let stats c =
  match Client.call c Wire.Stats with
  | Wire.Stats_reply kvs -> kvs
  | _ -> Alcotest.fail "expected Stats_reply"

let stat kvs key = Option.value (List.assoc_opt key kvs) ~default:""
let istat kvs key = Option.value (int_of_string_opt (stat kvs key)) ~default:0

let wait_for ?(timeout_s = 60.0) ~what c pred =
  let deadline = now () +. timeout_s in
  let rec go () =
    let kvs = stats c in
    if pred kvs then kvs
    else if now () > deadline then
      Alcotest.fail
        (Printf.sprintf "timed out waiting for %s; last stats: %s" what
           (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)))
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let replica_caught_up kvs =
  stat kvs "replication_connected" = "true"
  && stat kvs "replication_bytes_behind" = "0"
  && int_of_string_opt (stat kvs "replication_applied_seq") <> Some (-1)

let add_edges c edges =
  List.iter
    (fun (u, v) ->
      match Client.call c (Wire.Add_edge { u; v }) with
      | Wire.Ok_reply _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "write (%d,%d) was refused" u v))
    edges

let probe c u v =
  match Client.call c (Wire.Has_edge { u; v }) with
  | Wire.Edge_reply { present; _ } -> present
  | _ -> Alcotest.fail "expected Edge_reply"

let digest_of c =
  match Client.call c Wire.Digest_request with
  | Wire.Digest_reply { seq; offset; n_nodes; root; label_edges; _ } ->
    (seq, offset, n_nodes, root, label_edges)
  | _ -> Alcotest.fail "expected Digest_reply"

let wait_digests_equal ?(timeout_s = 60.0) ~what cp cr =
  let deadline = now () +. timeout_s in
  let rec go () =
    let ((pseq, _, _, _, _) as p) = digest_of cp in
    let r = digest_of cr in
    if pseq >= 0 && p = r then ()
    else if now () > deadline then
      let show (s, o, n, root, le) = Printf.sprintf "(%d,%d n=%d root=%x le=%x)" s o n root le in
      Alcotest.fail
        (Printf.sprintf "%s: digests never converged: primary %s, replica %s" what (show p)
           (show r))
    else begin
      Unix.sleepf 0.1;
      go ()
    end
  in
  go ()

(* ----------------------------------------------------------------- *)
(* 4. Digest_request / Repair_fetch over the wire *)

let test_digest_request () =
  let dir = temp_dir () in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir)
  @@ fun () ->
  let ppid, pport = fork_server ~dir () in
  pids := [ ppid ];
  let c = Client.connect ~port:pport ~timeout_s:10.0 () in
  let ((s1, _, n1, r1, _) as d1) = digest_of c in
  Alcotest.(check bool) "a durable primary has a stable position" true (s1 >= 0);
  Alcotest.(check bool) "digests are deterministic" true (d1 = digest_of c);
  let u, v = List.hd (fresh_edges ~seed:41 ~count:1) in
  add_edges c [ (u, v) ];
  let s2, o2, n2, r2, _ = digest_of c in
  Alcotest.(check bool) "a write moves the root" true (r2 <> r1);
  Alcotest.(check int) "node count is unchanged by an edge" n1 n2;
  Alcotest.(check bool) "the position advanced" true
    (s2 > s1 || (s2 = s1 && o2 > 0));
  (* Repair_fetch ships the adjacency section of a live range *)
  (match Client.call c (Wire.Repair_fetch { ranges = [ 0; 99999 ] }) with
  | Wire.Repair_reply { sections; _ } -> (
    match sections with
    | [ (0, edges) ] ->
      Alcotest.(check bool) "range 0 has edges" true (Array.length edges > 0);
      Alcotest.(check bool) "the fresh edge is in its section" true
        (Array.exists (fun e -> e = (u, v)) edges)
    | _ -> Alcotest.fail "expected exactly the one live range back")
  | _ -> Alcotest.fail "expected Repair_reply");
  Client.close c

(* ----------------------------------------------------------------- *)
(* 5. Anti-entropy end-to-end: a replica that silently dropped one
   replicated record diverges invisibly (its stream position still
   advances) — the digest comparison catches it and the repair (or the
   snapshot-resync fallback) converges the pair. *)

let test_anti_entropy_repairs_drop () =
  let dir_p = temp_dir () and dir_r = temp_dir () in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r)
  @@ fun () ->
  let ppid, pport = fork_server ~dir:dir_p ~hub_heartbeat_s:0.05 () in
  pids := ppid :: !pids;
  let rpid, rport =
    fork_server ~dir:dir_r ~empty:true
      ~replica_of:(rconfig ~port:pport ())
      ~repl_drop_nth:3
      ~config_f:(fun c -> { c with Server.anti_entropy_interval_s = 0.25 })
      ()
  in
  pids := rpid :: !pids;
  let cp = Client.connect ~port:pport ~timeout_s:10.0 () in
  let cr = Client.connect ~port:rport ~timeout_s:10.0 () in
  (* writes only start once the replica is streaming, so the dropped
     record is a streamed one *)
  ignore (wait_for ~what:"replica subscribed" cr replica_caught_up);
  let edges = fresh_edges ~seed:51 ~count:8 in
  add_edges cp edges;
  let kvs =
    wait_for ~what:"divergence detected" cr (fun kvs -> istat kvs "replica_divergences" >= 1)
  in
  Alcotest.(check bool) "anti-entropy rounds ran" true (istat kvs "anti_entropy_rounds" >= 1);
  ignore
    (wait_for ~what:"repair or resync" cr (fun kvs ->
         istat kvs "ranges_repaired" >= 1 || istat kvs "integrity_resyncs" >= 1));
  wait_digests_equal ~what:"post-repair convergence" cp cr;
  (* the dropped write is now served by the replica like any other *)
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) (Printf.sprintf "replica serves (%d,%d)" u v) true (probe cr u v))
    edges;
  Client.close cp;
  Client.close cr

(* ----------------------------------------------------------------- *)
(* 6. At-rest corruption end-to-end: flip one bit in the newest
   checkpoint underneath a running, scrubbing replica.  The scrubber
   finds and counts it, re-checkpoints from the live (known-good)
   index before the corrupt generation leaves the recovery chain, and
   later passes stop re-finding it; the served state never diverged,
   so digests stay converged throughout. *)

let test_scrub_finds_bitrot_e2e () =
  let dir_p = temp_dir () and dir_r = temp_dir () in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r)
  @@ fun () ->
  let ppid, pport = fork_server ~dir:dir_p ~hub_heartbeat_s:0.05 () in
  pids := ppid :: !pids;
  let rpid, rport =
    fork_server ~dir:dir_r ~empty:true
      ~replica_of:(rconfig ~port:pport ())
      ~config_f:(fun c ->
        { c with Server.scrub_interval_s = 0.3; anti_entropy_interval_s = 0.25 })
      ()
  in
  pids := rpid :: !pids;
  let cp = Client.connect ~port:pport ~timeout_s:10.0 () in
  let cr = Client.connect ~port:rport ~timeout_s:10.0 () in
  ignore (wait_for ~what:"replica subscribed" cr replica_caught_up);
  let edges = fresh_edges ~seed:61 ~count:8 in
  add_edges cp edges;
  wait_digests_equal ~what:"healthy convergence" cp cr;
  (* bit rot under the running replica: its newest checkpoint.  The
     server never rereads it in steady state — only the scrubber (or a
     crash recovery) can notice. *)
  let cseq = List.fold_left max 0 (Checkpoint.checkpoint_seqs dir_r) in
  let cfile = Checkpoint.checkpoint_file ~dir:dir_r ~seq:cseq in
  Faults.flip_bit_at_rest cfile ~off:(Faults.file_size cfile / 2) ~bit:2;
  let kvs =
    wait_for ~what:"scrub finds the flipped checkpoint" cr (fun kvs ->
        istat kvs "scrub_corruptions_found" >= 1)
  in
  Alcotest.(check bool) "scrub passes are counted" true (istat kvs "scrub_passes" >= 1);
  (* the finding is handled once — re-checkpoint, then quarantine (or
     the rotation's own prune) — so later passes stop re-counting it *)
  let found = istat kvs "scrub_corruptions_found" in
  let p0 = istat kvs "scrub_passes" in
  let kvs' =
    wait_for ~what:"two more scrub passes" cr (fun kvs -> istat kvs "scrub_passes" >= p0 + 2)
  in
  Alcotest.(check int) "the corruption is not re-found" found
    (istat kvs' "scrub_corruptions_found");
  (* a fresh generation replaced the rotten one: recovery material is
     intact and the pair never diverged *)
  Alcotest.(check bool) "a replacement checkpoint was written" true
    (List.fold_left max 0 (Checkpoint.checkpoint_seqs dir_r) > cseq);
  wait_digests_equal ~what:"post-bitrot convergence" cp cr;
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "replica serves (%d,%d) after bit rot" u v)
        true (probe cr u v))
    edges;
  Client.close cp;
  Client.close cr

(* ----------------------------------------------------------------- *)

let () =
  Alcotest.run "integrity"
    [
      ( "digest",
        [
          to_alcotest incremental_matches_full;
          Alcotest.test_case "digests are content-canonical" `Quick test_content_canonical;
          Alcotest.test_case "divergence localizes; section repair converges" `Quick
            test_section_repair;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "flips found, torn tails tolerated, quarantine" `Quick
            test_scrub_pass;
        ] );
      ( "wire",
        [
          Alcotest.test_case "Digest_request and Repair_fetch round-trip" `Quick
            test_digest_request;
        ] );
      ( "anti-entropy",
        [
          Alcotest.test_case "a dropped record is detected and repaired" `Quick
            test_anti_entropy_repairs_drop;
          Alcotest.test_case "at-rest bit rot: scrubbed, quarantined, converged" `Quick
            test_scrub_finds_bitrot_e2e;
        ] );
    ]
