open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module B = Dkindex_graph.Builder
module Prng = Dkindex_datagen.Prng

(* The scenario of the paper's Figure 3: D-labeled nodes all have a
   C-labeled parent, so a new C -> D edge does not change D's
   label-level parents and D's similarity survives at >= 1 -- but the
   new parent c3 hangs under an X node, so paths of length 2 through it
   (X.C) do not match D and the similarity cannot stay at 2. *)
let figure3_graph () =
  let b = B.create () in
  let c1 = B.add_child b ~parent:0 "C" in
  let c2 = B.add_child b ~parent:0 "C" in
  let x = B.add_child b ~parent:0 "X" in
  let c3 = B.add_child b ~parent:x "C" in
  let d1 = B.add_child b ~parent:c1 "D" in
  let d2 = B.add_child b ~parent:c2 "D" in
  let e1 = B.add_child b ~parent:d1 "E" in
  let e2 = B.add_child b ~parent:d2 "E" in
  (B.build b, c1, c2, c3, d1, d2, e1, e2)

let uls_tests =
  [
    test "same-label parent keeps similarity at least 1" (fun () ->
        let g, _, _, c3, _, d2, _, _ = figure3_graph () in
        let reqs = [ ("C", 1); ("D", 2); ("E", 3) ] in
        let idx = Dk_index.build g ~reqs in
        let u = Index_graph.cls idx c3 and v = Index_graph.cls idx d2 in
        let k_n = Dk_update.update_local_similarity idx ~u ~v in
        check_bool "at least 1" true (k_n >= 1));
    test "foreign-label parent forces similarity 0" (fun () ->
        (* Adding an edge from a label that was never a parent of the
           target: no length-1 path through it matches. *)
        let b = B.create () in
        let x = B.add_child b ~parent:0 "X" in
        let c = B.add_child b ~parent:0 "C" in
        let d = B.add_child b ~parent:c "D" in
        let g = B.build b in
        let idx = Dk_index.build g ~reqs:[ ("D", 2) ] in
        let k_n =
          Dk_update.update_local_similarity idx ~u:(Index_graph.cls idx x)
            ~v:(Index_graph.cls idx d)
        in
        check_int "zero" 0 k_n);
    test "result never exceeds min(kU+1, kV)" (fun () ->
        let g = random_graph ~seed:111 ~nodes:100 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:111 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let rng = Prng.create ~seed:112 in
        for _ = 1 to 30 do
          let u = Index_graph.cls idx (Prng.int rng (Data_graph.n_nodes g)) in
          let v = Index_graph.cls idx (Prng.int rng (Data_graph.n_nodes g)) in
          let ku = (Index_graph.node idx u).Index_graph.k in
          let kv = (Index_graph.node idx v).Index_graph.k in
          let k_n = Dk_update.update_local_similarity idx ~u ~v in
          check_bool "bounded" true (k_n <= min (ku + 1) kv && k_n >= 0)
        done);
    test "identical-structure parent preserves the full bound" (fun () ->
        (* All D's have a C parent whose own parent is ROOT, and the new
           edge comes from such a C: every path matches, so k_N hits the
           upper bound. *)
        let b = B.create () in
        let c1 = B.add_child b ~parent:0 "C" in
        let c2 = B.add_child b ~parent:0 "C" in
        let c3 = B.add_child b ~parent:0 "C" in
        let d1 = B.add_child b ~parent:c1 "D" in
        let d2 = B.add_child b ~parent:c2 "D" in
        ignore (d1, c3);
        let g = B.build b in
        let reqs = [ ("C", 1); ("D", 2) ] in
        let idx = Dk_index.build g ~reqs in
        let u = Index_graph.cls idx c3 and v = Index_graph.cls idx d2 in
        let kv = (Index_graph.node idx v).Index_graph.k in
        let ku = (Index_graph.node idx u).Index_graph.k in
        check_int "full bound" (min (ku + 1) kv) (Dk_update.update_local_similarity idx ~u ~v));
  ]

let add_edge_tests =
  [
    test "figure 3: D keeps k=1, E drops to 2" (fun () ->
        let g, _, _, c3, _, d2, _, _ = figure3_graph () in
        let reqs = [ ("C", 1); ("D", 2); ("E", 3) ] in
        let idx = Dk_index.build g ~reqs in
        Dk_update.add_edge idx c3 d2;
        Index_graph.check_invariants idx;
        let d_node = Index_graph.node idx (Index_graph.cls idx d2) in
        check_int "D lowered to 1" 1 d_node.Index_graph.k;
        let e_node = Index_graph.node idx (Index_graph.cls idx 8 (* e2 *)) in
        check_bool "E at most 2" true (e_node.Index_graph.k <= 2));
    test "add_edge updates the data graph and the index edge" (fun () ->
        let g, _, _, c3, _, d2, _, _ = figure3_graph () in
        let idx = Dk_index.build g ~reqs:[ ("D", 2) ] in
        Dk_update.add_edge idx c3 d2;
        check_bool "data edge" true (Data_graph.has_edge g c3 d2);
        check_bool "index edge" true
          (Index_graph.has_index_edge idx (Index_graph.cls idx c3) (Index_graph.cls idx d2)));
    test "extents never change during edge updates" (fun () ->
        let g = random_graph ~seed:121 ~nodes:150 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:121 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let size_before = Index_graph.n_nodes idx in
        let rng = Prng.create ~seed:122 in
        for _ = 1 to 25 do
          let u = Prng.int rng (Data_graph.n_nodes g)
          and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
          Dk_update.add_edge idx u v
        done;
        check_int "same size" size_before (Index_graph.n_nodes idx));
    test "similarities only decrease" (fun () ->
        let g = random_graph ~seed:123 ~nodes:150 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:123 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let before = Index_graph.fold_alive idx ~init:[] ~f:(fun acc nd ->
            (nd.Index_graph.id, nd.Index_graph.k) :: acc) in
        let rng = Prng.create ~seed:124 in
        for _ = 1 to 25 do
          let u = Prng.int rng (Data_graph.n_nodes g)
          and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
          Dk_update.add_edge idx u v
        done;
        List.iter
          (fun (id, k_before) ->
            check_bool "no increase" true ((Index_graph.node idx id).Index_graph.k <= k_before))
          before);
    test "queries remain exact after many random edge updates" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:150 in
            let queries = Dkindex_workload.Query_gen.generate ~seed ~count:20 g in
            let reqs = Dkindex_workload.Miner.mine g queries in
            let idx = Dk_index.build g ~reqs in
            let rng = Prng.create ~seed:(seed * 3) in
            for _ = 1 to 30 do
              let u = Prng.int rng (Data_graph.n_nodes g)
              and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
              Dk_update.add_edge idx u v
            done;
            Index_graph.check_invariants idx;
            (* old queries, plus fresh queries that see the new edges *)
            assert_index_matches_data g idx queries;
            assert_index_matches_data g idx
              (Dkindex_workload.Query_gen.generate ~seed:(seed * 5) ~count:15 g))
          [ 125; 126; 127 ]);
    test "adding an existing edge is harmless" (fun () ->
        let g, _, _, _, d1, _, _, _ = figure3_graph () in
        let c1 = 1 in
        let idx = Dk_index.build g ~reqs:[ ("D", 2); ("E", 3) ] in
        let sig_before = Index_graph.partition_signature idx in
        Dk_update.add_edge idx c1 d1;
        (* The edge was already there; extents unchanged, only k may
           conservatively drop. *)
        let sig_after = Index_graph.partition_signature idx in
        check_int "same classes" 0
          (compare
             (Array.map fst sig_before)
             (Array.map fst sig_after));
        Index_graph.check_invariants idx);
  ]

let subgraph_tests =
  [
    test "incremental subgraph addition equals scratch rebuild" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:100 in
            let h = random_graph ~seed:(seed + 1) ~nodes:40 in
            let queries = Dkindex_workload.Query_gen.generate ~seed ~count:20 g in
            let reqs = Dkindex_workload.Miner.mine g queries in
            let idx = Dk_index.build g ~reqs in
            let g', incremental = Dk_update.add_subgraph idx h ~reqs in
            Index_graph.check_invariants incremental;
            let scratch = Dk_index.build g' ~reqs in
            check_bool "identical" true
              (Index_graph.partition_signature incremental
              = Index_graph.partition_signature scratch))
          [ 131; 132; 133 ]);
    test "combined graph contains both node sets" (fun () ->
        let g = random_graph ~seed:134 ~nodes:100 in
        let h = random_graph ~seed:135 ~nodes:40 in
        let idx = Dk_index.build g ~reqs:[] in
        let g', _ = Dk_update.add_subgraph idx h ~reqs:[] in
        check_int "nodes" (100 + 40 - 1) (Data_graph.n_nodes g'));
    test "queries on the combined index are exact" (fun () ->
        let g = random_graph ~seed:136 ~nodes:100 in
        let h = random_graph ~seed:137 ~nodes:50 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:136 ~count:15 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let g', idx' = Dk_update.add_subgraph idx h ~reqs in
        assert_index_matches_data g' idx'
          (Dkindex_workload.Query_gen.generate ~seed:138 ~count:20 g'));
    test "xmark document insertion (the paper's 'new file' case)" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:1 ~scale:30 () in
        let queries = Dkindex_workload.Query_gen.generate ~seed:139 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let h = Dkindex_datagen.Xmark.graph ~seed:2 ~scale:5 () in
        let g', idx' = Dk_update.add_subgraph idx h ~reqs in
        Index_graph.check_invariants idx';
        let scratch = Dk_index.build g' ~reqs in
        check_bool "identical" true
          (Index_graph.partition_signature idx' = Index_graph.partition_signature scratch));
  ]

let remove_edge_tests =
  [
    test "removing a redundant parent edge keeps similarities" (fun () ->
        (* v has two parents in the same class; dropping one changes no
           label-path set. *)
        let b = B.create () in
        let c1 = B.add_child b ~parent:0 "C" in
        let c2 = B.add_child b ~parent:0 "C" in
        let d = B.add_child b ~parent:c1 "D" in
        B.add_edge b c2 d;
        let g = B.build b in
        let idx = Dk_index.build g ~reqs:[ ("D", 2) ] in
        let k_before = (Index_graph.node idx (Index_graph.cls idx d)).Index_graph.k in
        Dk_update.remove_edge idx c2 d;
        Index_graph.check_invariants idx;
        check_int "k unchanged" k_before
          (Index_graph.node idx (Index_graph.cls idx d)).Index_graph.k;
        check_bool "index edge kept (c1 -> d remains)" true
          (Index_graph.has_index_edge idx (Index_graph.cls idx c1) (Index_graph.cls idx d)));
    test "removing the last parent from a class lowers k and drops the edge" (fun () ->
        let b = B.create () in
        let c1 = B.add_child b ~parent:0 "C" in
        let d1 = B.add_child b ~parent:c1 "D" in
        let e1 = B.add_child b ~parent:d1 "E" in
        ignore e1;
        let g = B.build b in
        let idx = Dk_index.build g ~reqs:[ ("D", 2); ("E", 3) ] in
        Dk_update.remove_edge idx c1 d1;
        Index_graph.check_invariants idx;
        check_int "k dropped" 0 (Index_graph.node idx (Index_graph.cls idx d1)).Index_graph.k;
        check_bool "index edge gone" false
          (Index_graph.has_index_edge idx (Index_graph.cls idx c1) (Index_graph.cls idx d1));
        check_bool "child lowered" true
          ((Index_graph.node idx (Index_graph.cls idx e1)).Index_graph.k <= 1));
    test "removing a non-existent edge raises" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let idx = Label_split.build g in
        check_bool "raises" true
          (match Dk_update.remove_edge idx 2 1 with
          | _ -> false
          | exception Invalid_argument _ -> true));
    test "queries stay exact through interleaved additions and removals" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:120 in
            let queries = Dkindex_workload.Query_gen.generate ~seed ~count:15 g in
            let reqs = Dkindex_workload.Miner.mine g queries in
            let idx = Dk_index.build g ~reqs in
            let rng = Prng.create ~seed:(seed * 11) in
            let added = ref [] in
            for _ = 1 to 40 do
              match (Prng.int rng 2, !added) with
              | 0, _ | _, [] ->
                let u = Prng.int rng (Data_graph.n_nodes g)
                and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
                if not (Data_graph.has_edge g u v) then begin
                  Dk_update.add_edge idx u v;
                  added := (u, v) :: !added
                end
              | _, (u, v) :: rest ->
                Dk_update.remove_edge idx u v;
                added := rest
            done;
            Index_graph.check_invariants idx;
            assert_index_matches_data g idx queries;
            assert_index_matches_data g idx
              (Dkindex_workload.Query_gen.generate ~seed:(seed * 13) ~count:15 g))
          [ 181; 182; 183 ]);
    test "removal keeps the label-path-set property" (fun () ->
        let g = random_graph ~seed:184 ~nodes:40 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:184 ~count:10 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let rng = Prng.create ~seed:185 in
        (* add some edges, then remove a few existing tree edges *)
        for _ = 1 to 8 do
          let u = Prng.int rng (Data_graph.n_nodes g)
          and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
          Dk_update.add_edge idx u v
        done;
        for v = 10 to 14 do
          match Data_graph.parents g v with
          | p :: _ -> Dk_update.remove_edge idx p v
          | [] -> ()
        done;
        Index_graph.check_invariants idx;
        assert_extents_path_equivalent g idx);
  ]

let interplay_tests =
  [
    test "subgraph addition onto an updated (stale) index stays exact" (fun () ->
        let g = random_graph ~seed:191 ~nodes:100 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:191 ~count:15 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        (* stale the index: edge churn lowers similarities *)
        let rng = Prng.create ~seed:192 in
        for _ = 1 to 15 do
          let u = Prng.int rng (Data_graph.n_nodes g)
          and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
          Dk_update.add_edge idx u v
        done;
        let h = random_graph ~seed:193 ~nodes:40 in
        let g', idx' = Dk_update.add_subgraph idx h ~reqs in
        Index_graph.check_invariants idx';
        assert_extents_path_equivalent g' idx';
        assert_index_matches_data g' idx'
          (Dkindex_workload.Query_gen.generate ~seed:194 ~count:20 g'));
    test "promote after removals restores sound answering" (fun () ->
        let g = random_graph ~seed:195 ~nodes:120 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:195 ~count:20 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        (* add then remove edges to degrade similarities *)
        let rng = Prng.create ~seed:196 in
        let added = ref [] in
        for _ = 1 to 12 do
          let u = Prng.int rng (Data_graph.n_nodes g)
          and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
          if not (Data_graph.has_edge g u v) then begin
            Dk_update.add_edge idx u v;
            added := (u, v) :: !added
          end
        done;
        List.iter (fun (u, v) -> Dk_update.remove_edge idx u v) !added;
        Dk_tune.promote_to_requirements idx;
        Index_graph.check_invariants idx;
        (* the data is back to its original shape, so the mined load
           must again be answered without validation *)
        List.iter
          (fun q ->
            check_int "no validation" 0 (Query_eval.eval_path idx q).Query_eval.n_candidates)
          queries;
        assert_index_matches_data g idx queries);
    test "demote after removals keeps exactness" (fun () ->
        let g = random_graph ~seed:197 ~nodes:100 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:197 ~count:15 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        (match Data_graph.parents g 7 with
        | p :: _ -> Dk_update.remove_edge idx p 7
        | [] -> ());
        let demoted = Dk_tune.demote idx ~reqs:(List.map (fun (l, k) -> (l, k / 2)) reqs) in
        Index_graph.check_invariants demoted;
        assert_index_matches_data g demoted queries);
  ]

let ak_update_tests =
  [
    test "restores exact k-bisimilarity after an edge insertion" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:60 in
            List.iter
              (fun k ->
                let g = Data_graph.copy g in
                let idx = A_k_index.build g ~k in
                let rng = Prng.create ~seed:(seed * 7) in
                for _ = 1 to 10 do
                  let u = Prng.int rng (Data_graph.n_nodes g)
                  and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
                  Ak_update.add_edge idx ~k u v
                done;
                Index_graph.check_invariants idx;
                assert_extents_bisimilar g idx)
              [ 1; 2; 3 ])
          [ 141; 142 ]);
    test "queries stay exact after A(k) updates" (fun () ->
        let g = random_graph ~seed:143 ~nodes:120 in
        let idx = A_k_index.build g ~k:2 in
        let rng = Prng.create ~seed:144 in
        for _ = 1 to 20 do
          let u = Prng.int rng (Data_graph.n_nodes g)
          and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
          Ak_update.add_edge idx ~k:2 u v
        done;
        assert_index_matches_data g idx
          (Dkindex_workload.Query_gen.generate ~seed:145 ~count:20 g));
    test "A(k) updates can grow the index, D(k) updates cannot" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:3 ~scale:20 () in
        let edges =
          let rng = Prng.create ~seed:146 in
          List.init 20 (fun _ ->
              (Prng.int rng (Data_graph.n_nodes g), 1 + Prng.int rng (Data_graph.n_nodes g - 1)))
        in
        let ga = Data_graph.copy g and gd = Data_graph.copy g in
        let ak = A_k_index.build ga ~k:2 in
        let ak_before = Index_graph.n_nodes ak in
        List.iter (fun (u, v) -> Ak_update.add_edge ak ~k:2 u v) edges;
        check_bool "A(k) grew" true (Index_graph.n_nodes ak > ak_before);
        let queries = Dkindex_workload.Query_gen.generate ~seed:147 gd in
        let reqs = Dkindex_workload.Miner.mine gd queries in
        let dk = Dk_index.build gd ~reqs in
        let dk_before = Index_graph.n_nodes dk in
        List.iter (fun (u, v) -> Dk_update.add_edge dk u v) edges;
        check_int "D(k) size constant" dk_before (Index_graph.n_nodes dk));
  ]

let ak_subgraph_tests =
  [
    test "A(k) document insertion equals a scratch A(k) build" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:100 in
            let h = random_graph ~seed:(seed + 1) ~nodes:40 in
            List.iter
              (fun k ->
                let idx = A_k_index.build (Data_graph.copy g) ~k in
                let g', incremental = Ak_update.add_subgraph idx ~k h in
                Index_graph.check_invariants incremental;
                let scratch = A_k_index.build g' ~k in
                check_bool "identical" true
                  (Index_graph.partition_signature incremental
                  = Index_graph.partition_signature scratch))
              [ 1; 2; 3 ])
          [ 361; 362 ]);
    test "queries exact after A(k) document insertion" (fun () ->
        let g = random_graph ~seed:363 ~nodes:100 in
        let h = random_graph ~seed:364 ~nodes:50 in
        let idx = A_k_index.build (Data_graph.copy g) ~k:2 in
        let g', idx' = Ak_update.add_subgraph idx ~k:2 h in
        assert_index_matches_data g' idx'
          (Dkindex_workload.Query_gen.generate ~seed:365 ~count:15 g'));
  ]

let () =
  Alcotest.run "updates"
    [
      ("update_local_similarity", uls_tests);
      ("edge_addition", add_edge_tests);
      ("subgraph_addition", subgraph_tests);
      ("edge_removal", remove_edge_tests);
      ("interplay", interplay_tests);
      ("ak_baseline", ak_update_tests);
      ("ak_subgraph", ak_subgraph_tests);
    ]
