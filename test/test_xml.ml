open Dkindex_xml
open Testlib

let parse = Xml_parser.parse_string

let root_of s = (parse s).Xml_ast.root

let parser_tests =
  [
    test "simple element" (fun () ->
        let el = root_of "<a/>" in
        check_string "tag" "a" el.Xml_ast.tag;
        check_int "children" 0 (List.length el.Xml_ast.children));
    test "nested elements" (fun () ->
        let el = root_of "<a><b><c/></b></a>" in
        match el.Xml_ast.children with
        | [ Xml_ast.Element b ] ->
          check_string "b" "b" b.Xml_ast.tag;
          check_int "c inside" 1 (List.length b.Xml_ast.children)
        | _ -> Alcotest.fail "bad shape");
    test "attributes in both quote styles" (fun () ->
        let el = root_of {|<a x="1" y='2'/>|} in
        check_string "x" "1" (Option.get (Xml_ast.attr_opt el "x"));
        check_string "y" "2" (Option.get (Xml_ast.attr_opt el "y")));
    test "attribute entity decoding" (fun () ->
        let el = root_of {|<a t="x &amp; &lt;y&gt; &quot;z&quot;"/>|} in
        check_string "decoded" {|x & <y> "z"|} (Option.get (Xml_ast.attr_opt el "t")));
    test "text content with entities" (fun () ->
        match (root_of "<a>1 &amp; 2 &#65; &#x42;</a>").Xml_ast.children with
        | [ Xml_ast.Text t ] -> check_string "text" "1 & 2 A B" t
        | _ -> Alcotest.fail "expected text");
    test "whitespace-only text is dropped" (fun () ->
        let el = root_of "<a>\n  <b/>\n  <c/>\n</a>" in
        check_int "only elements" 2 (List.length el.Xml_ast.children));
    test "mixed content is preserved" (fun () ->
        match (root_of "<a>x<b/>y</a>").Xml_ast.children with
        | [ Xml_ast.Text "x"; Xml_ast.Element _; Xml_ast.Text "y" ] -> ()
        | _ -> Alcotest.fail "bad mixed content");
    test "CDATA is literal text" (fun () ->
        match (root_of "<a><![CDATA[<not-xml> & raw]]></a>").Xml_ast.children with
        | [ Xml_ast.Text t ] -> check_string "cdata" "<not-xml> & raw" t
        | _ -> Alcotest.fail "expected text");
    test "comments are skipped everywhere" (fun () ->
        let el = root_of "<!-- top --><a><!-- in --><b/><!-- tail --></a>" in
        check_int "children" 1 (List.length el.Xml_ast.children));
    test "processing instructions are skipped" (fun () ->
        let el = root_of "<?xml version=\"1.0\"?><a><?pi data?><b/></a>" in
        check_int "children" 1 (List.length el.Xml_ast.children));
    test "DOCTYPE with internal subset is skipped" (fun () ->
        let el = root_of "<!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b/></a>" in
        check_string "tag" "a" el.Xml_ast.tag);
    test "mismatched closing tag is an error" (fun () ->
        check_bool "raises" true
          (match parse "<a><b></a></b>" with
          | _ -> false
          | exception Xml_parser.Parse_error _ -> true));
    test "unterminated element is an error" (fun () ->
        check_bool "raises" true
          (match parse "<a><b>" with
          | _ -> false
          | exception Xml_parser.Parse_error _ -> true));
    test "trailing content is an error" (fun () ->
        check_bool "raises" true
          (match parse "<a/><b/>" with
          | _ -> false
          | exception Xml_parser.Parse_error _ -> true));
    test "unknown entity is an error" (fun () ->
        check_bool "raises" true
          (match parse "<a>&nope;</a>" with
          | _ -> false
          | exception Xml_parser.Parse_error _ -> true));
    test "error carries a line number" (fun () ->
        match parse "<a>\n<b>\n</c>\n</a>" with
        | _ -> Alcotest.fail "should fail"
        | exception Xml_parser.Parse_error { line; _ } -> check_bool "line >= 3" true (line >= 3));
    test "names can contain colon dash dot digits" (fun () ->
        let el = root_of "<ns:a-b.c2/>" in
        check_string "tag" "ns:a-b.c2" el.Xml_ast.tag);
  ]

let writer_tests =
  [
    test "writer escapes text and attributes" (fun () ->
        let doc =
          { Xml_ast.root = Xml_ast.element ~attrs:[ ("t", "a<b\"") ] "x" [ Xml_ast.text "1 & 2 <3" ] }
        in
        let s = Xml_writer.doc_to_string doc in
        check_bool "escaped amp" true
          (let rec find i needle =
             i + String.length needle <= String.length s
             && (String.sub s i (String.length needle) = needle || find (i + 1) needle)
           in
           find 0 "1 &amp; 2 &lt;3" && find 0 "a&lt;b&quot;"));
    test "round trip: handcrafted document" (fun () ->
        let doc =
          {
            Xml_ast.root =
              Xml_ast.element ~attrs:[ ("id", "r1") ] "r"
                [
                  Xml_ast.Element (Xml_ast.element "a" [ Xml_ast.text "hello & goodbye" ]);
                  Xml_ast.Element (Xml_ast.element ~attrs:[ ("ref", "r1") ] "b" []);
                ];
          }
        in
        let doc' = Xml_parser.parse_string (Xml_writer.doc_to_string doc) in
        check_bool "equal" true (Xml_ast.equal_doc doc doc'));
    test "round trip: generated XMark document" (fun () ->
        let doc = Dkindex_datagen.Xmark.doc ~seed:9 ~scale:5 () in
        let doc' = Xml_parser.parse_string (Xml_writer.doc_to_string doc) in
        check_int "elements" (Xml_ast.n_elements doc) (Xml_ast.n_elements doc');
        check_bool "equal" true (Xml_ast.equal_doc doc doc'));
    test "round trip: generated NASA document" (fun () ->
        let doc = Dkindex_datagen.Nasa.doc ~seed:9 ~scale:5 () in
        let doc' = Xml_parser.parse_string (Xml_writer.doc_to_string doc) in
        check_bool "equal" true (Xml_ast.equal_doc doc doc'));
    test "compact mode also round trips" (fun () ->
        let doc = Dkindex_datagen.Xmark.doc ~seed:10 ~scale:3 () in
        let doc' = Xml_parser.parse_string (Xml_writer.doc_to_string ~indent:false doc) in
        check_bool "equal" true (Xml_ast.equal_doc doc doc'));
  ]

let escape_tests =
  [
    test "escape_text leaves quotes alone" (fun () ->
        check_string "text" "a&lt;b&gt;c&amp;d\"e'f" (Xml_writer.escape_text "a<b>c&d\"e'f"));
    test "escape_attr escapes quotes" (fun () ->
        check_string "attr" "&quot;x&apos;" (Xml_writer.escape_attr "\"x'"));
  ]

let ast_tests =
  [
    test "n_elements counts the root" (fun () ->
        check_int "count" 3 (Xml_ast.n_elements (parse "<a><b/><c/></a>")));
    test "iter_elements is pre-order" (fun () ->
        let doc = parse "<a><b><c/></b><d/></a>" in
        let tags = ref [] in
        Xml_ast.iter_elements doc (fun el -> tags := el.Xml_ast.tag :: !tags);
        check_string_list "order" [ "a"; "b"; "c"; "d" ] (List.rev !tags));
    test "attr_opt returns the first match" (fun () ->
        let el = root_of {|<a k="1"/>|} in
        check_bool "missing" true (Option.is_none (Xml_ast.attr_opt el "nope")));
  ]

let to_graph_tests =
  let module G = Dkindex_graph.Data_graph in
  [
    test "elements become labeled nodes under ROOT" (fun () ->
        let g = Xml_to_graph.graph_of_doc (parse "<a><b/><b/></a>") in
        check_int "nodes: ROOT a b b" 4 (G.n_nodes g);
        check_string "root" "ROOT" (G.label_name g 0);
        check_string "doc root" "a" (G.label_name g 1));
    test "text becomes VALUE leaves" (fun () ->
        let g = Xml_to_graph.graph_of_doc (parse "<a>hi<b>there</b></a>") in
        let values =
          G.fold_nodes g ~init:0 ~f:(fun acc u ->
              if String.equal (G.label_name g u) "VALUE" then acc + 1 else acc)
        in
        check_int "values" 2 values);
    test "plain attributes become name + VALUE nodes" (fun () ->
        let g = Xml_to_graph.graph_of_doc (parse {|<a size="3"/>|}) in
        (* ROOT, a, size, VALUE *)
        check_int "nodes" 4 (G.n_nodes g);
        let size =
          G.fold_nodes g ~init:(-1) ~f:(fun acc u ->
              if String.equal (G.label_name g u) "size" then u else acc)
        in
        check_bool "size exists" true (size >= 0);
        check_int "value child" 1 (G.out_degree g size));
    test "id attributes register, not materialize" (fun () ->
        let g = Xml_to_graph.graph_of_doc (parse {|<a id="x"/>|}) in
        check_int "nodes: ROOT a" 2 (G.n_nodes g));
    test "idref creates a reference edge" (fun () ->
        let result = Xml_to_graph.convert (parse {|<a><b id="t"/><c ref="t"/></a>|}) in
        let g = result.Xml_to_graph.graph in
        check_int "ref edges" 1 result.Xml_to_graph.n_reference_edges;
        let find l =
          G.fold_nodes g ~init:(-1) ~f:(fun acc u ->
              if String.equal (G.label_name g u) l then u else acc)
        in
        check_bool "c -> b" true (G.has_edge g (find "c") (find "b")));
    test "IDREFS values split on spaces" (fun () ->
        let result =
          Xml_to_graph.convert (parse {|<a><b id="t1"/><b id="t2"/><c ref="t1 t2"/></a>|})
        in
        check_int "two edges" 2 result.Xml_to_graph.n_reference_edges);
    test "unresolved references are reported" (fun () ->
        let result = Xml_to_graph.convert (parse {|<a><c ref="ghost"/></a>|}) in
        check_string_list "unresolved" [ "ghost" ] result.Xml_to_graph.unresolved_refs;
        check_int "no edge" 0 result.Xml_to_graph.n_reference_edges);
    test "custom config renames id/idref attributes" (fun () ->
        let config = { Xml_to_graph.id_attrs = [ "key" ]; idref_attrs = [ "to" ] } in
        let result =
          Xml_to_graph.convert ~config (parse {|<a><b key="k"/><c to="k"/></a>|})
        in
        check_int "edge" 1 result.Xml_to_graph.n_reference_edges);
    test "default idref names are not special under custom config" (fun () ->
        let config = { Xml_to_graph.id_attrs = [ "id" ]; idref_attrs = [ "to" ] } in
        let result = Xml_to_graph.convert ~config (parse {|<a><b id="k"/><c ref="k"/></a>|}) in
        (* ref becomes an ordinary attribute: a node + VALUE. *)
        check_int "no ref edge" 0 result.Xml_to_graph.n_reference_edges;
        check_int "nodes: ROOT a b c ref VALUE" 6 (G.n_nodes result.Xml_to_graph.graph));
    test "whole graph stays reachable from ROOT" (fun () ->
        let g = Xml_to_graph.graph_of_doc ~config:Dkindex_datagen.Xmark.config
            (Dkindex_datagen.Xmark.doc ~seed:5 ~scale:10 ()) in
        check_int "unreachable" 0 (G.stats g).G.unreachable);
  ]

let sax_events src =
  List.rev
    (Xml_sax.fold_string src ~init:[] ~f:(fun acc e -> e :: acc))

let sax_tests =
  [
    test "event stream of a small document" (fun () ->
        match sax_events "<a x=\"1\"><b>hi</b><c/></a>" with
        | [
            Xml_sax.Start_element { tag = "a"; attrs = [ { Xml_ast.name = "x"; value = "1" } ] };
            Xml_sax.Start_element { tag = "b"; attrs = [] };
            Xml_sax.Text "hi";
            Xml_sax.End_element "b";
            Xml_sax.Start_element { tag = "c"; attrs = [] };
            Xml_sax.End_element "c";
            Xml_sax.End_element "a";
          ] -> ()
        | events -> Alcotest.failf "unexpected events (%d)" (List.length events));
    test "prolog, comments and PIs are skipped" (fun () ->
        let events =
          sax_events "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a (b)>]><!-- c --><a><?pi?><b/></a>"
        in
        check_int "events" 4 (List.length events));
    test "entities and CDATA in the stream" (fun () ->
        match sax_events "<a>1 &amp; 2<![CDATA[<raw>]]></a>" with
        | [ _; Xml_sax.Text "1 & 2"; Xml_sax.Text "<raw>"; _ ] -> ()
        | _ -> Alcotest.fail "bad events");
    test "mismatched tags fail" (fun () ->
        check_bool "raises" true
          (match sax_events "<a><b></a></b>" with
          | _ -> false
          | exception Xml_sax.Parse_error _ -> true));
    test "unclosed element fails" (fun () ->
        check_bool "raises" true
          (match sax_events "<a><b>" with
          | _ -> false
          | exception Xml_sax.Parse_error _ -> true));
    test "trailing content fails" (fun () ->
        check_bool "raises" true
          (match sax_events "<a/><b/>" with
          | _ -> false
          | exception Xml_sax.Parse_error _ -> true));
    test "tiny buffer forces refills across every construct" (fun () ->
        let doc = Dkindex_datagen.Xmark.doc ~seed:13 ~scale:3 () in
        let text = Xml_writer.doc_to_string doc in
        let path = Filename.temp_file "dkindex" ".xml" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () ->
                let stream = Xml_sax.of_channel ~buffer_size:64 ic in
                let from_chan = Xml_sax.fold stream ~init:0 ~f:(fun n _ -> n + 1) in
                let from_string = Xml_sax.fold_string text ~init:0 ~f:(fun n _ -> n + 1) in
                check_int "same event count" from_string from_chan)));
    test "tokens larger than the buffer force growth, not failure" (fun () ->
        let big = String.make 1000 'x' in
        let text = Printf.sprintf {|<a attr="%s"><b>%s</b></a>|} big big in
        let path = Filename.temp_file "dkindex" ".xml" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () ->
                let stream = Xml_sax.of_channel ~buffer_size:64 ic in
                let texts = ref [] in
                Xml_sax.fold stream ~init:() ~f:(fun () e ->
                    match e with
                    | Xml_sax.Text t -> texts := t :: !texts
                    | Xml_sax.Start_element { attrs = [ { Xml_ast.value; _ } ]; _ } ->
                      check_int "attr intact" 1000 (String.length value)
                    | _ -> ());
                check_int "text intact" 1000 (String.length (List.hd !texts)))));
    test "event counts match the DOM" (fun () ->
        let doc = Dkindex_datagen.Nasa.doc ~seed:14 ~scale:3 () in
        let text = Xml_writer.doc_to_string doc in
        let starts =
          Xml_sax.fold_string text ~init:0 ~f:(fun n e ->
              match e with Xml_sax.Start_element _ -> n + 1 | _ -> n)
        in
        check_int "elements" (Xml_ast.n_elements doc) starts);
    test "streaming loader builds the identical graph" (fun () ->
        let doc = Dkindex_datagen.Xmark.doc ~seed:15 ~scale:5 () in
        let text = Xml_writer.doc_to_string doc in
        let config = Dkindex_datagen.Xmark.config in
        let via_dom = Xml_to_graph.convert ~config doc in
        let via_sax = Xml_to_graph.convert_events ~config (Xml_sax.of_string text) in
        let module G = Dkindex_graph.Data_graph in
        check_int "ref edges" via_dom.Xml_to_graph.n_reference_edges
          via_sax.Xml_to_graph.n_reference_edges;
        check_string "identical serialization"
          (Dkindex_graph.Serial.to_string via_dom.Xml_to_graph.graph)
          (Dkindex_graph.Serial.to_string via_sax.Xml_to_graph.graph));
    test "convert_file streams from disk" (fun () ->
        let doc = Dkindex_datagen.Nasa.doc ~seed:16 ~scale:4 () in
        let path = Filename.temp_file "dkindex" ".xml" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Xml_writer.write_file path doc;
            let config = Dkindex_datagen.Nasa.config in
            let streamed = Xml_to_graph.convert_file ~config path in
            let dom = Xml_to_graph.convert ~config (Xml_parser.parse_file path) in
            check_string "identical"
              (Dkindex_graph.Serial.to_string dom.Xml_to_graph.graph)
              (Dkindex_graph.Serial.to_string streamed.Xml_to_graph.graph)));
  ]

let () =
  Alcotest.run "xml"
    [
      ("parser", parser_tests);
      ("writer", writer_tests);
      ("escape", escape_tests);
      ("ast", ast_tests);
      ("to_graph", to_graph_tests);
      ("sax", sax_tests);
    ]
