open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module B = Dkindex_graph.Builder
module Prng = Dkindex_datagen.Prng

let promote_tests =
  [
    test "promoting a label-split node yields k-bisimilar fragments" (fun () ->
        let g = random_graph ~seed:151 ~nodes:100 in
        let idx = Label_split.build g in
        let target = Index_graph.cls idx 5 in
        let fresh = Dk_tune.promote idx target ~k:2 in
        Index_graph.check_invariants idx;
        List.iter
          (fun id -> check_int "k raised" 2 (Index_graph.node idx id).Index_graph.k)
          fresh;
        assert_extents_bisimilar g idx);
    test "promotion to the current k is a no-op" (fun () ->
        let g = random_graph ~seed:152 ~nodes:80 in
        let idx = A_k_index.build g ~k:2 in
        let target = Index_graph.cls idx 3 in
        let size = Index_graph.n_nodes idx in
        check_int_list "same id" [ target ] (Dk_tune.promote idx target ~k:1);
        check_int "no growth" size (Index_graph.n_nodes idx));
    test "promotion raises req alongside k" (fun () ->
        let g = random_graph ~seed:153 ~nodes:80 in
        let idx = Label_split.build g in
        let target = Index_graph.cls idx 7 in
        let fresh = Dk_tune.promote idx target ~k:2 in
        List.iter
          (fun id -> check_bool "req" true ((Index_graph.node idx id).Index_graph.req >= 2))
          fresh);
    test "promote accepts retired ids via forwarding" (fun () ->
        let g = random_graph ~seed:154 ~nodes:80 in
        let idx = Label_split.build g in
        let target = Index_graph.cls idx 9 in
        ignore (Dk_tune.promote idx target ~k:1);
        (* target may now be dead; promoting it further must follow the
           forwarding and not raise. *)
        let fresh = Dk_tune.promote idx target ~k:2 in
        check_bool "nonempty" true (fresh <> []);
        Index_graph.check_invariants idx);
    test "promotion on a cyclic index terminates" (fun () ->
        let g, a, _, _ = cyclic_graph () in
        let idx = Label_split.build g in
        let fresh = Dk_tune.promote idx (Index_graph.cls idx a) ~k:3 in
        check_bool "done" true (fresh <> []);
        Index_graph.check_invariants idx);
    test "promotion on a self-loop class terminates" (fun () ->
        let b = B.create () in
        let x1 = B.add_child b ~parent:0 "x" in
        let x2 = B.add_child b ~parent:x1 "x" in
        B.add_edge b x2 x1;
        let g = B.build b in
        let idx = Label_split.build g in
        ignore (Dk_tune.promote idx (Index_graph.cls idx x1) ~k:4);
        Index_graph.check_invariants idx);
    test "queries stay exact after promotion" (fun () ->
        let g = random_graph ~seed:155 ~nodes:120 in
        let idx = Label_split.build g in
        let rng = Prng.create ~seed:156 in
        for _ = 1 to 10 do
          let u = Prng.int rng (Data_graph.n_nodes g) in
          ignore (Dk_tune.promote idx (Index_graph.cls idx u) ~k:(1 + Prng.int rng 3))
        done;
        Index_graph.check_invariants idx;
        assert_index_matches_data g idx
          (Dkindex_workload.Query_gen.generate ~seed:157 ~count:20 g));
    test "promote_to_requirements restores degraded similarities" (fun () ->
        let g = random_graph ~seed:158 ~nodes:150 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:158 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let rng = Prng.create ~seed:159 in
        for _ = 1 to 20 do
          let u = Prng.int rng (Data_graph.n_nodes g)
          and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
          Dk_update.add_edge idx u v
        done;
        Dk_tune.promote_to_requirements idx;
        Index_graph.iter_alive idx (fun nd ->
            check_bool "k >= req" true (nd.Index_graph.k >= nd.Index_graph.req));
        Index_graph.check_invariants idx;
        assert_index_matches_data g idx queries);
    test "promote_to_requirements eliminates validation for the mined load" (fun () ->
        let g = random_graph ~seed:160 ~nodes:150 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:160 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let rng = Prng.create ~seed:161 in
        for _ = 1 to 15 do
          let u = Prng.int rng (Data_graph.n_nodes g)
          and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
          Dk_update.add_edge idx u v
        done;
        Dk_tune.promote_to_requirements idx;
        List.iter
          (fun q ->
            let r = Query_eval.eval_path idx q in
            check_int "no candidates" 0 r.Query_eval.n_candidates)
          queries);
    test "promote_labels processes every node of the label" (fun () ->
        let g = random_graph ~seed:162 ~nodes:100 in
        let idx = Label_split.build g in
        Dk_tune.promote_labels idx [ ("l0", 2); ("l1", 1) ];
        let pool = Data_graph.pool g in
        Index_graph.iter_alive idx (fun nd ->
            match Label.Pool.name pool nd.Index_graph.label with
            | "l0" -> check_bool "l0 at 2" true (nd.Index_graph.k >= 2)
            | "l1" -> check_bool "l1 at 1" true (nd.Index_graph.k >= 1)
            | _ -> ());
        Index_graph.check_invariants idx);
    test "promote_labels ignores unknown labels" (fun () ->
        let g = random_graph ~seed:163 ~nodes:50 in
        let idx = Label_split.build g in
        Dk_tune.promote_labels idx [ ("ghost", 3) ];
        check_int "unchanged" (Index_graph.n_nodes (Label_split.build g))
          (Index_graph.n_nodes idx));
    test "promoting up to A(k) level refines A(k); demoting recovers it" (fun () ->
        let g = random_graph ~seed:164 ~nodes:80 in
        let idx = Label_split.build g in
        let pool = Data_graph.pool g in
        let all = Label.Pool.fold (fun _ name acc -> (name, 2) :: acc) pool [] in
        Dk_tune.promote_labels idx all;
        let a2 = A_k_index.build g ~k:2 in
        (* Promotion may split by finer-than-necessary parents, so the
           result refines A(2): every promoted class sits inside one
           A(2) class. *)
        check_bool "at least as fine" true
          (Index_graph.n_nodes idx >= Index_graph.n_nodes a2);
        Index_graph.iter_alive idx (fun nd ->
            match Array.to_list nd.Index_graph.extent with
            | [] -> ()
            | first :: rest ->
              List.iter
                (fun u ->
                  check_int "inside one A(2) class" (Index_graph.cls a2 first)
                    (Index_graph.cls a2 u))
                rest);
        (* And a Theorem-2 rebuild at the uniform requirement recovers
           the exact A(2) partition. *)
        let recovered = Dk_tune.demote idx ~reqs:all in
        check_bool "recovered" true
          (Index_graph.partition_signature recovered = Index_graph.partition_signature a2));
  ]

let demote_tests =
  [
    test "demote equals a fresh build under the lower reqs" (fun () ->
        let g = random_graph ~seed:171 ~nodes:120 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:171 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let lower = List.map (fun (l, k) -> (l, k / 2)) reqs in
        let demoted = Dk_tune.demote idx ~reqs:lower in
        let direct = Dk_index.build g ~reqs:lower in
        check_bool "identical" true
          (Index_graph.partition_signature demoted = Index_graph.partition_signature direct));
    test "demote leaves the original index untouched" (fun () ->
        let g = random_graph ~seed:172 ~nodes:100 in
        let idx = Dk_index.build g ~reqs:[ ("l0", 3) ] in
        let sig_before = Index_graph.partition_signature idx in
        ignore (Dk_tune.demote idx ~reqs:[]);
        check_bool "unchanged" true (sig_before = Index_graph.partition_signature idx));
    test "demote after updates still answers queries exactly" (fun () ->
        let g = random_graph ~seed:173 ~nodes:120 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:173 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let rng = Prng.create ~seed:174 in
        for _ = 1 to 15 do
          let u = Prng.int rng (Data_graph.n_nodes g)
          and v = 1 + Prng.int rng (Data_graph.n_nodes g - 1) in
          Dk_update.add_edge idx u v
        done;
        let demoted = Dk_tune.demote idx ~reqs:(List.map (fun (l, k) -> (l, k / 2)) reqs) in
        Index_graph.check_invariants demoted;
        (* The input is stale (data changed since construction), so the
           rebuild must cap similarities honestly: extent members must
           still share their incoming label-path sets. *)
        assert_extents_path_equivalent g demoted;
        assert_index_matches_data g demoted queries);
    test "promote then demote round-trips the partition" (fun () ->
        let g = random_graph ~seed:175 ~nodes:100 in
        let reqs = [ ("l0", 2); ("l2", 1) ] in
        let idx = Dk_index.build g ~reqs in
        let sig_orig = Index_graph.partition_signature idx in
        Dk_tune.promote_labels idx [ ("l1", 3) ];
        let back = Dk_tune.demote idx ~reqs in
        check_bool "identical" true (sig_orig = Index_graph.partition_signature back));
  ]

let () = Alcotest.run "tune" [ ("promote", promote_tests); ("demote", demote_tests) ]
