open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module Cost = Dkindex_pathexpr.Cost
module Path_parser = Dkindex_pathexpr.Path_parser

let eval_path_tests =
  [
    test "director.movie.title on the movie graph" (fun () ->
        let m = movie_graph () in
        let idx = Dk_index.build m.g ~reqs:[ ("title", 2) ] in
        let r =
          Query_eval.eval_path idx (labels_of_strings m.g [ "director"; "movie"; "title" ])
        in
        check_int_list "titles" (List.sort compare [ m.title1; m.title2 ]) r.Query_eval.nodes;
        check_int "no validation" 0 r.Query_eval.n_candidates);
    test "a sound query costs no data visits" (fun () ->
        let m = movie_graph () in
        let idx = Dk_index.build m.g ~reqs:[ ("title", 2) ] in
        let r =
          Query_eval.eval_path idx (labels_of_strings m.g [ "director"; "movie"; "title" ])
        in
        check_int "data visits" 0 r.Query_eval.cost.Cost.data_visits;
        check_bool "index visits counted" true (r.Query_eval.cost.Cost.index_visits > 0));
    test "an approximate index validates and still answers exactly" (fun () ->
        let m = movie_graph () in
        let a0 = Label_split.build m.g in
        let q = labels_of_strings m.g [ "director"; "movie"; "title" ] in
        let r = Query_eval.eval_path a0 q in
        check_int_list "titles" (List.sort compare [ m.title1; m.title2 ]) r.Query_eval.nodes;
        check_bool "validated" true (r.Query_eval.n_candidates > 0);
        check_bool "data visits charged" true (r.Query_eval.cost.Cost.data_visits > 0));
    test "extent members of sound nodes are free" (fun () ->
        (* A(0) answering a single-label query is sound: k=0 >= 0. *)
        let g = Dkindex_datagen.Xmark.graph ~seed:5 ~scale:10 () in
        let a0 = Label_split.build g in
        let r = Query_eval.eval_path a0 (labels_of_strings g [ "item" ]) in
        check_bool "many results" true (List.length r.Query_eval.nodes > 1);
        check_int "one index node visited" 1 r.Query_eval.cost.Cost.index_visits;
        check_int "no data visits" 0 r.Query_eval.cost.Cost.data_visits);
    test "single-label queries are sound on every index" (fun () ->
        let g = random_graph ~seed:201 ~nodes:100 in
        let a0 = Label_split.build g in
        let r = Query_eval.eval_path a0 (labels_of_strings g [ "l1" ]) in
        check_int "no candidates" 0 r.Query_eval.n_candidates);
    test "empty and unknown queries return nothing" (fun () ->
        let m = movie_graph () in
        let idx = Label_split.build m.g in
        check_int_list "empty" [] (Query_eval.eval_path idx [||]).Query_eval.nodes;
        check_int_list "unknown" []
          (Query_eval.eval_path_strings idx [ "nothing"; "here" ]).Query_eval.nodes);
    test "eval_path_strings equals eval_path on known labels" (fun () ->
        let m = movie_graph () in
        let idx = One_index.build m.g in
        let by_strings = Query_eval.eval_path_strings idx [ "movie"; "title" ] in
        let by_labels = Query_eval.eval_path idx (labels_of_strings m.g [ "movie"; "title" ]) in
        check_int_list "same" by_labels.Query_eval.nodes by_strings.Query_eval.nodes);
    test "all indexes agree with the data graph on random workloads" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:150 in
            let queries = Dkindex_workload.Query_gen.generate ~seed ~count:25 g in
            let reqs = Dkindex_workload.Miner.mine g queries in
            List.iter
              (fun idx -> assert_index_matches_data g idx queries)
              [
                Label_split.build g;
                A_k_index.build g ~k:1;
                A_k_index.build g ~k:3;
                One_index.build g;
                Dk_index.build g ~reqs;
              ])
          [ 202; 203 ]);
    test "D(k) mined for the load never validates it" (fun () ->
        let g = Dkindex_datagen.Nasa.graph ~seed:6 ~scale:20 () in
        let queries = Dkindex_workload.Query_gen.generate ~seed:204 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        List.iter
          (fun q ->
            check_int "no candidates" 0 (Query_eval.eval_path idx q).Query_eval.n_candidates)
          queries);
    test "n_certain counts sound matched nodes" (fun () ->
        let m = movie_graph () in
        let one = One_index.build m.g in
        let r = Query_eval.eval_path one (labels_of_strings m.g [ "movie"; "title" ]) in
        check_bool "all certain" true (r.Query_eval.n_certain > 0);
        check_int "none validated" 0 r.Query_eval.n_candidates);
  ]

let eval_expr_tests =
  [
    test "regex equals plain path evaluation on label sequences" (fun () ->
        let g = random_graph ~seed:211 ~nodes:120 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:211 ~count:15 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let pool = Data_graph.pool g in
        List.iter
          (fun q ->
            let names = Array.to_list (Array.map (Label.Pool.name pool) q) in
            let expr = Dkindex_pathexpr.Path_ast.seq_of_labels names in
            let by_expr = (Query_eval.eval_expr idx expr).Query_eval.nodes in
            let by_path = (Query_eval.eval_path idx q).Query_eval.nodes in
            check_int_list "same" by_path by_expr)
          queries);
    test "the paper's optional-wildcard query" (fun () ->
        let m = movie_graph () in
        let idx = Dk_index.build m.g ~reqs:[ ("name", 3) ] in
        let expr = Path_parser.parse "movieDB.(_)?.movie.actor.name" in
        let r = Query_eval.eval_expr idx expr in
        let expected =
          Dkindex_pathexpr.Matcher.eval_nfa m.g
            (Dkindex_pathexpr.Nfa.compile (Data_graph.pool m.g) expr)
            ~cost:(Cost.create ())
        in
        check_int_list "same as data" expected r.Query_eval.nodes);
    test "star queries match the data graph on every index" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:100 in
            let pool = Data_graph.pool g in
            List.iter
              (fun src ->
                let expr = Path_parser.parse src in
                let expected =
                  Dkindex_pathexpr.Matcher.eval_nfa g (Dkindex_pathexpr.Nfa.compile pool expr)
                    ~cost:(Cost.create ())
                in
                List.iter
                  (fun idx ->
                    check_int_list src expected (Query_eval.eval_expr idx expr).Query_eval.nodes)
                  [ Label_split.build g; A_k_index.build g ~k:2; One_index.build g ])
              [ "l0.l1*"; "l2.(l0|l1).l3?"; "_.l0._*"; "l4|l3.l2" ])
          [ 212; 213 ]);
    test "alternation of different lengths" (fun () ->
        let m = movie_graph () in
        let idx = Label_split.build m.g in
        let expr = Path_parser.parse "movie.title|name" in
        let r = Query_eval.eval_expr idx expr in
        let expected =
          Dkindex_pathexpr.Matcher.eval_nfa m.g
            (Dkindex_pathexpr.Nfa.compile (Data_graph.pool m.g) expr)
            ~cost:(Cost.create ())
        in
        check_int_list "same" expected r.Query_eval.nodes);
    test "cyclic data under a star query stays exact" (fun () ->
        let g, _, _, _ = cyclic_graph () in
        let idx = Label_split.build g in
        let expr = Path_parser.parse "a.(b.a)*.b" in
        let expected =
          Dkindex_pathexpr.Matcher.eval_nfa g
            (Dkindex_pathexpr.Nfa.compile (Data_graph.pool g) expr)
            ~cost:(Cost.create ())
        in
        check_int_list "same" expected (Query_eval.eval_expr idx expr).Query_eval.nodes);
    test "regex on the 1-index of bounded queries skips validation" (fun () ->
        let m = movie_graph () in
        let one = One_index.build m.g in
        let expr = Path_parser.parse "director.movie.title" in
        let r = Query_eval.eval_expr one expr in
        check_int "no candidates" 0 r.Query_eval.n_candidates);
  ]

let strategy_tests =
  [
    test "all strategies agree on random workloads" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:150 in
            let queries = Dkindex_workload.Query_gen.generate ~seed ~count:20 g in
            let reqs = Dkindex_workload.Miner.mine g queries in
            let idx = Dk_index.build g ~reqs in
            List.iter
              (fun q ->
                let fwd = Query_eval.eval_path ~strategy:`Forward idx q in
                let bwd = Query_eval.eval_path ~strategy:`Backward idx q in
                let auto = Query_eval.eval_path ~strategy:`Auto idx q in
                check_int_list "fwd=bwd" fwd.Query_eval.nodes bwd.Query_eval.nodes;
                check_int_list "fwd=auto" fwd.Query_eval.nodes auto.Query_eval.nodes)
              queries)
          [ 321; 322 ]);
    test "backward is cheaper when the target label is rare" (fun () ->
        (* 30 structurally distinct `a` classes (different parents) but
           a single rare `b` target under one of them: forward scans
           every `a` class, backward starts from the one `b` class. *)
        let bld = Dkindex_graph.Builder.create () in
        let first_a = ref (-1) in
        for i = 1 to 30 do
          let x = Dkindex_graph.Builder.add_child bld ~parent:0 (Printf.sprintf "x%d" i) in
          let a = Dkindex_graph.Builder.add_child bld ~parent:x "a" in
          if !first_a < 0 then first_a := a
        done;
        ignore (Dkindex_graph.Builder.add_child bld ~parent:!first_a "b");
        let g = Dkindex_graph.Builder.build bld in
        let idx = A_k_index.build g ~k:2 in
        let q = labels_of_strings g [ "a"; "b" ] in
        let fwd = Query_eval.eval_path ~strategy:`Forward idx q in
        let bwd = Query_eval.eval_path ~strategy:`Backward idx q in
        check_int_list "same" fwd.Query_eval.nodes bwd.Query_eval.nodes;
        check_bool "bwd visits fewer index nodes" true
          (bwd.Query_eval.cost.Cost.index_visits < fwd.Query_eval.cost.Cost.index_visits));
    test "auto picks the cheaper side on a rare-target query" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:10 ~scale:30 () in
        let idx = A_k_index.build g ~k:2 in
        (* first label VALUE is the most populous: auto must go backward *)
        let q = labels_of_strings g [ "description"; "VALUE" ] in
        let fwd = Query_eval.eval_path ~strategy:`Forward idx q in
        let auto = Query_eval.eval_path ~strategy:`Auto idx q in
        check_int_list "same" fwd.Query_eval.nodes auto.Query_eval.nodes);
    test "backward on a cyclic index terminates" (fun () ->
        let g, a, _, _ = cyclic_graph () in
        let idx = Label_split.build g in
        let q = labels_of_strings g [ "a"; "b"; "a" ] in
        let r = Query_eval.eval_path ~strategy:`Backward idx q in
        check_int_list "a matched" [ a ] r.Query_eval.nodes);
    test "validation behavior is identical across strategies" (fun () ->
        let g = random_graph ~seed:323 ~nodes:120 in
        let a0 = Label_split.build g in
        let q = labels_of_strings g [ "l0"; "l1"; "l2" ] in
        let fwd = Query_eval.eval_path ~strategy:`Forward a0 q in
        let bwd = Query_eval.eval_path ~strategy:`Backward a0 q in
        check_int "same candidates" fwd.Query_eval.n_candidates bwd.Query_eval.n_candidates);
  ]

let cracking_tests =
  [
    test "a validated query promotes; the repeat is validation-free" (fun () ->
        let g = random_graph ~seed:351 ~nodes:150 in
        let idx = Label_split.build g in
        let q = labels_of_strings g [ "l0"; "l1"; "l2" ] in
        let first = Cracking.eval_path idx q in
        let second = Cracking.eval_path idx q in
        check_int_list "same answers" first.Query_eval.nodes second.Query_eval.nodes;
        check_bool "first validated" true (first.Query_eval.n_candidates > 0);
        check_int "second is sound" 0 second.Query_eval.n_candidates;
        check_bool "second is cheaper" true
          (Cost.total second.Query_eval.cost < Cost.total first.Query_eval.cost);
        Index_graph.check_invariants idx);
    test "answers always match direct data evaluation" (fun () ->
        let g = random_graph ~seed:352 ~nodes:150 in
        let idx = Label_split.build g in
        let queries = Dkindex_workload.Query_gen.generate ~seed:352 ~count:30 g in
        List.iter
          (fun q ->
            let expected =
              Dkindex_pathexpr.Matcher.eval_label_path g q ~cost:(Cost.create ())
            in
            check_int_list "exact" expected (Cracking.eval_path idx q).Query_eval.nodes)
          queries;
        Index_graph.check_invariants idx);
    test "a query stream converges to the mined D(k) shape" (fun () ->
        let g = random_graph ~seed:353 ~nodes:200 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:353 ~count:60 g in
        let cracked = Label_split.build g in
        List.iter (fun q -> ignore (Cracking.eval_path cracked q)) queries;
        (* after one pass, every workload query is answered soundly *)
        List.iter
          (fun q ->
            check_int "sound now" 0 (Query_eval.eval_path cracked q).Query_eval.n_candidates)
          queries;
        (* and the size is in the same ballpark as the offline D(k) *)
        let reqs = Dkindex_workload.Miner.mine g queries in
        let offline = Dk_index.build g ~reqs in
        check_bool "comparable size" true
          (Index_graph.n_nodes cracked <= 2 * Index_graph.n_nodes offline));
    test "sound queries do not promote (no size creep)" (fun () ->
        let g = random_graph ~seed:354 ~nodes:120 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:354 ~count:20 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let size = Index_graph.n_nodes idx in
        List.iter (fun q -> ignore (Cracking.eval_path idx q)) queries;
        check_int "size unchanged" size (Index_graph.n_nodes idx));
    test "single-label queries never crack" (fun () ->
        let g = random_graph ~seed:355 ~nodes:80 in
        let idx = Label_split.build g in
        let size = Index_graph.n_nodes idx in
        ignore (Cracking.eval_path idx (labels_of_strings g [ "l1" ]));
        check_int "unchanged" size (Index_graph.n_nodes idx));
  ]

let cost_model_tests =
  [
    test "coarser indexes visit fewer index nodes but validate more" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:7 ~scale:20 () in
        let q = labels_of_strings g [ "person"; "watches"; "watch"; "open_auction" ] in
        let a0 = Label_split.build g and a4 = A_k_index.build g ~k:4 in
        let r0 = Query_eval.eval_path a0 q and r4 = Query_eval.eval_path a4 q in
        check_bool "A(0) visits fewer index nodes" true
          (r0.Query_eval.cost.Cost.index_visits <= r4.Query_eval.cost.Cost.index_visits);
        check_bool "A(0) pays validation" true
          (r0.Query_eval.cost.Cost.data_visits >= r4.Query_eval.cost.Cost.data_visits);
        check_int_list "same answer" r0.Query_eval.nodes r4.Query_eval.nodes);
    test "total cost is the sum of parts" (fun () ->
        let g = random_graph ~seed:221 ~nodes:100 in
        let idx = Label_split.build g in
        let q = labels_of_strings g [ "l0"; "l1"; "l2" ] in
        let r = Query_eval.eval_path idx q in
        check_int "sum" (Cost.total r.Query_eval.cost)
          (r.Query_eval.cost.Cost.index_visits + r.Query_eval.cost.Cost.data_visits));
  ]

let () =
  Alcotest.run "eval"
    [
      ("eval_path", eval_path_tests);
      ("eval_expr", eval_expr_tests);
      ("strategies", strategy_tests);
      ("cracking", cracking_tests);
      ("cost_model", cost_model_tests);
    ]
