An end-to-end run of the command-line tool: generate a dataset, inspect
it, build and persist an index, query through it, and audit it.
(Timing numbers are normalized with sed; everything else is
deterministic for the fixed seed.)

  $ dkindex generate --dataset xmark --scale 20 --seed 7 -o auction.xml
  wrote auction.xml

  $ dkindex stats -i auction.xml --idref-attrs category,item,person,open_auction,from,to | head -1
  nodes=1541 edges=1715 labels=69 max_out=20 max_in=29 max_depth=8 unreachable=0

  $ dkindex build -i auction.xml --idref-attrs category,item,person,open_auction,from,to --index dk --save auction.index | sed 's/in [0-9.]* ms/in N ms/' | head -4
  dk built in N ms
  saved to auction.index
  index nodes   621
  index edges   796

  $ dkindex query -i auction.xml --load-index auction.index "open_auction.itemref.item.name" | head -1
  9 matching nodes (cost: index=16 data=0 total=16; 0 candidates validated, 6 sound index nodes)

  $ dkindex query -i auction.xml --idref-attrs category,item,person,open_auction,from,to --index fb "//open_auction[./bidder]/itemref" | head -1
  10 matching nodes (cost: index=1707 data=0 total=1707; 0 candidates validated, 10 sound index nodes)

  $ dkindex verify -i auction.xml --load-index auction.index
  OK: 621 index nodes and 50 queries verified

  $ dkindex workload -i auction.xml --count 5 | head -1
  generated 5 queries:

The other generators and the Graphviz export:

  $ dkindex generate --dataset treebank --scale 5 --seed 3 -o tb.xml
  wrote tb.xml
  $ dkindex generate --dataset nasa --scale 5 --seed 3 -o nasa.graph
  wrote nasa.graph
  $ dkindex stats -i nasa.graph | head -1
  nodes=448 edges=469 labels=44 max_out=11 max_in=5 max_depth=9 unreachable=0
  $ dkindex dot -i nasa.graph -o nasa.dot --max-nodes 10
  wrote nasa.dot
  $ head -1 nasa.dot
  digraph data_graph {
