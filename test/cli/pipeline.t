An end-to-end run of the command-line tool: generate a dataset, inspect
it, build and persist an index, query through it, and audit it.
(Timing numbers are normalized with sed; everything else is
deterministic for the fixed seed.)

  $ dkindex generate --dataset xmark --scale 20 --seed 7 -o auction.xml
  wrote auction.xml

  $ dkindex stats -i auction.xml --idref-attrs category,item,person,open_auction,from,to | head -1
  nodes=1480 edges=1643 labels=69 max_out=20 max_in=26 max_depth=8 unreachable=0

  $ dkindex build -i auction.xml --idref-attrs category,item,person,open_auction,from,to --index dk --save auction.index | sed 's/in [0-9.]* ms/in N ms/' | head -4
  dk built in N ms
  saved to auction.index
  index nodes   643
  index edges   815

  $ dkindex query -i auction.xml --load-index auction.index "open_auction.itemref.item.name" | head -1
  9 matching nodes (cost: index=20 data=0 total=20; 0 candidates validated, 8 sound index nodes)

  $ dkindex query -i auction.xml --idref-attrs category,item,person,open_auction,from,to --index fb "//open_auction[./bidder]/itemref" | head -1
  7 matching nodes (cost: index=1584 data=0 total=1584; 0 candidates validated, 7 sound index nodes)

  $ dkindex verify -i auction.xml --load-index auction.index
  OK: 643 index nodes and 50 queries verified

  $ dkindex workload -i auction.xml --count 5 | head -1
  generated 5 queries:

The other generators and the Graphviz export:

  $ dkindex generate --dataset treebank --scale 5 --seed 3 -o tb.xml
  wrote tb.xml
  $ dkindex generate --dataset nasa --scale 5 --seed 3 -o nasa.graph
  wrote nasa.graph
  $ dkindex stats -i nasa.graph | head -1
  nodes=448 edges=469 labels=44 max_out=11 max_in=5 max_depth=9 unreachable=0
  $ dkindex dot -i nasa.graph -o nasa.dot --max-nodes 10
  wrote nasa.dot
  $ head -1 nasa.dot
  digraph data_graph {
