open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module B = Dkindex_graph.Builder

let broadcast_tests =
  [
    test "no requirements means all zeros" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let req = Broadcast.run g ~reqs:[] in
        Array.iter (fun k -> check_int "zero" 0 k) req);
    test "requirement propagates to ancestors, decreasing by one" (fun () ->
        let g = chain_graph [ "a"; "b"; "c"; "d" ] in
        let pool = Data_graph.pool g in
        let code n = Label.to_int (Option.get (Label.Pool.find_opt pool n)) in
        let req = Broadcast.run g ~reqs:[ ("d", 3) ] in
        check_int "d" 3 req.(code "d");
        check_int "c" 2 req.(code "c");
        check_int "b" 1 req.(code "b");
        check_int "a" 0 req.(code "a");
        check_int "ROOT" 0 req.(code "ROOT"));
    test "existing higher requirements win" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let pool = Data_graph.pool g in
        let code n = Label.to_int (Option.get (Label.Pool.find_opt pool n)) in
        let req = Broadcast.run g ~reqs:[ ("b", 2); ("a", 4) ] in
        check_int "a stays 4" 4 req.(code "a");
        check_int "ROOT from a" 3 req.(code "ROOT"));
    test "multiple requirements take the max per label" (fun () ->
        let g = chain_graph [ "a" ] in
        let pool = Data_graph.pool g in
        let code n = Label.to_int (Option.get (Label.Pool.find_opt pool n)) in
        let req = Broadcast.run g ~reqs:[ ("a", 1); ("a", 3); ("a", 2) ] in
        check_int "max" 3 req.(code "a"));
    test "unknown labels are ignored" (fun () ->
        let g = chain_graph [ "a" ] in
        let req = Broadcast.run g ~reqs:[ ("ghost", 9) ] in
        Array.iter (fun k -> check_int "zero" 0 k) req);
    test "negative requirement raises" (fun () ->
        let g = chain_graph [ "a" ] in
        check_bool "raises" true
          (match Broadcast.run g ~reqs:[ ("a", -1) ] with
          | _ -> false
          | exception Invalid_argument _ -> true));
    test "label cycles converge" (fun () ->
        (* a -> b -> a label cycle. *)
        let b = B.create () in
        let a1 = B.add_child b ~parent:0 "a" in
        let b1 = B.add_child b ~parent:a1 "b" in
        B.add_edge b b1 a1;
        let g = B.build b in
        let pool = Data_graph.pool g in
        let code n = Label.to_int (Option.get (Label.Pool.find_opt pool n)) in
        let req = Broadcast.run g ~reqs:[ ("a", 4) ] in
        check_int "a" 4 req.(code "a");
        (* b is a parent of a: needs >= 3; a is a parent of b: >= 2 held. *)
        check_int "b" 3 req.(code "b"));
    test "self-loop label is its own parent" (fun () ->
        let b = B.create () in
        let a1 = B.add_child b ~parent:0 "a" in
        let a2 = B.add_child b ~parent:a1 "a" in
        ignore a2;
        let g = B.build b in
        let pool = Data_graph.pool g in
        let code n = Label.to_int (Option.get (Label.Pool.find_opt pool n)) in
        let req = Broadcast.run g ~reqs:[ ("a", 5) ] in
        check_int "a keeps 5" 5 req.(code "a");
        check_int "ROOT raised" 4 req.(code "ROOT"));
    test "label_parents reflects edges" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let pool = Data_graph.pool g in
        let code n = Label.to_int (Option.get (Label.Pool.find_opt pool n)) in
        let parents = Broadcast.label_parents g in
        check_bool "a parent of b" true (Int_set.mem (code "a") parents.(code "b"));
        check_bool "b not parent of a" false (Int_set.mem (code "b") parents.(code "a")));
  ]

(* The construction example of the paper's Figure 2: E requires local
   similarity 2, all other labels require 1; after broadcasting, E's
   parents must carry at least 1 (they already do). *)
let figure2_graph () =
  let b = B.create () in
  let a1 = B.add_child b ~parent:0 "A" in
  let a2 = B.add_child b ~parent:0 "A" in
  let b1 = B.add_child b ~parent:a1 "B" in
  let c1 = B.add_child b ~parent:a1 "C" in
  let b2 = B.add_child b ~parent:a2 "B" in
  let e1 = B.add_child b ~parent:b1 "E" in
  let e2 = B.add_child b ~parent:b2 "E" in
  let e3 = B.add_child b ~parent:c1 "E" in
  (B.build b, a1, a2, b1, b2, c1, e1, e2, e3)

let construction_tests =
  [
    test "figure 2: per-node similarities honor requirements" (fun () ->
        let g, _, _, _, _, _, _, _, _ = figure2_graph () in
        let reqs = [ ("A", 1); ("B", 1); ("C", 1); ("E", 2) ] in
        let idx = Dk_index.build g ~reqs in
        Index_graph.check_invariants idx;
        let pool = Data_graph.pool g in
        Index_graph.iter_alive idx (fun nd ->
            let name = Label.Pool.name pool nd.Index_graph.label in
            match name with
            | "E" -> check_int "E has k=2" 2 nd.Index_graph.k
            | "B" | "C" -> check_int (name ^ " has k=1") 1 nd.Index_graph.k
            | _ -> ()));
    test "figure 2: E classes split by grandparent structure" (fun () ->
        let g, _, _, _, _, _, e1, e2, e3 = figure2_graph () in
        let reqs = [ ("A", 1); ("B", 1); ("C", 1); ("E", 2) ] in
        let idx = Dk_index.build g ~reqs in
        (* e1, e2 are both A.B.E - 2-bisimilar; e3 is A.C.E. *)
        check_int "e1 e2 share" (Index_graph.cls idx e1) (Index_graph.cls idx e2);
        check_bool "e3 separate" true (Index_graph.cls idx e3 <> Index_graph.cls idx e1));
    test "figure 2: with k=1 everywhere the E classes merge" (fun () ->
        let g, _, _, _, _, _, e1, e2, e3 = figure2_graph () in
        let idx = Dk_index.build g ~reqs:[ ("A", 1); ("B", 1); ("C", 1); ("E", 1) ] in
        check_int "e1 e2 share" (Index_graph.cls idx e1) (Index_graph.cls idx e2);
        check_bool "e3 separate (different parent label)" true
          (Index_graph.cls idx e3 <> Index_graph.cls idx e1));
    test "zero requirements reproduce the label-split graph" (fun () ->
        let g = random_graph ~seed:91 ~nodes:100 in
        let dk = Dk_index.build g ~reqs:[] in
        let ls = Label_split.build g in
        check_bool "same" true
          (Index_graph.partition_signature dk = Index_graph.partition_signature ls));
    test "uniform requirements reproduce the A(k) partition" (fun () ->
        let g = random_graph ~seed:92 ~nodes:100 in
        let pool = Data_graph.pool g in
        let all_labels = Label.Pool.fold (fun _ name acc -> (name, 2) :: acc) pool [] in
        let dk = Dk_index.build g ~reqs:all_labels in
        let a2 = A_k_index.build g ~k:2 in
        check_bool "same" true
          (Index_graph.partition_signature dk = Index_graph.partition_signature a2));
    test "extents are pairwise k-bisimilar at their similarity" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:60 in
            let queries = Dkindex_workload.Query_gen.generate ~seed ~count:20 g in
            let reqs = Dkindex_workload.Miner.mine g queries in
            let idx = Dk_index.build g ~reqs in
            Index_graph.check_invariants idx;
            assert_extents_bisimilar g idx)
          [ 93; 94; 95 ]);
    test "D(k) is never larger than the matching A(kmax)" (fun () ->
        let g = random_graph ~seed:96 ~nodes:200 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:96 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let kmax = List.fold_left (fun acc (_, k) -> max acc k) 0 reqs in
        let dk = Dk_index.build g ~reqs in
        let ak = A_k_index.build g ~k:kmax in
        check_bool "smaller or equal" true
          (Index_graph.n_nodes dk <= Index_graph.n_nodes ak));
    test "effective_reqs exposes the broadcast result" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let pool = Data_graph.pool g in
        let code n = Label.to_int (Option.get (Label.Pool.find_opt pool n)) in
        let eff = Dk_index.effective_reqs g ~reqs:[ ("b", 2) ] in
        check_int "a" 1 eff.(code "a"));
  ]

let rebuild_tests =
  [
    test "rebuild with identical reqs is the identity (Theorem 2)" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:120 in
            let queries = Dkindex_workload.Query_gen.generate ~seed ~count:30 g in
            let reqs = Dkindex_workload.Miner.mine g queries in
            let idx = Dk_index.build g ~reqs in
            let idx' = Dk_index.rebuild idx ~reqs in
            check_bool "identical" true
              (Index_graph.partition_signature idx = Index_graph.partition_signature idx'))
          [ 101; 102; 103 ]);
    test "rebuild from a finer refinement recovers the index" (fun () ->
        let g = random_graph ~seed:104 ~nodes:120 in
        let reqs = [ ("l0", 1); ("l1", 2) ] in
        (* The 1-index refines every D(k); rebuilding it under the lower
           reqs must give exactly the direct D(k) construction. *)
        let fine = One_index.build g in
        let recovered = Dk_index.rebuild fine ~reqs in
        let direct = Dk_index.build g ~reqs in
        check_bool "identical" true
          (Index_graph.partition_signature recovered = Index_graph.partition_signature direct));
    test "rebuild to lower reqs shrinks the index" (fun () ->
        let g = random_graph ~seed:105 ~nodes:150 in
        let queries = Dkindex_workload.Query_gen.generate ~seed:105 g in
        let reqs = Dkindex_workload.Miner.mine g queries in
        let idx = Dk_index.build g ~reqs in
        let lower = Dk_index.rebuild idx ~reqs:[] in
        check_bool "smaller" true (Index_graph.n_nodes lower <= Index_graph.n_nodes idx);
        check_int "label-split size" (Index_graph.n_nodes (Label_split.build g))
          (Index_graph.n_nodes lower));
  ]

let () =
  Alcotest.run "dk"
    [
      ("broadcast", broadcast_tests);
      ("construction", construction_tests);
      ("rebuild", rebuild_tests);
    ]
