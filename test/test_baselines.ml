(* The baseline summary structures: label-split / A(k) / 1-index /
   strong DataGuide. *)
open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module Cost = Dkindex_pathexpr.Cost

let ak_tests =
  [
    test "A(0) equals label-split" (fun () ->
        let g = random_graph ~seed:61 ~nodes:100 in
        let a0 = A_k_index.build g ~k:0 and ls = Label_split.build g in
        check_bool "same partition" true
          (Index_graph.partition_signature a0 = Index_graph.partition_signature ls));
    test "A(k) extents are exactly k-bisimilar classes" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:50 in
            List.iter
              (fun k ->
                let idx = A_k_index.build g ~k in
                assert_extents_bisimilar g idx;
                (* maximality: no two distinct classes are k-bisimilar *)
                let bisim = k_bisimilar g in
                let reps =
                  Index_graph.fold_alive idx ~init:[] ~f:(fun acc nd ->
                      nd.Index_graph.extent.(0) :: acc)
                in
                List.iteri
                  (fun i u ->
                    List.iteri
                      (fun j v -> if i < j then check_bool "maximal" false (bisim u v k))
                      reps)
                  reps)
              [ 1; 2; 3 ])
          [ 62; 63 ]);
    test "negative k is rejected" (fun () ->
        let g = chain_graph [ "a" ] in
        check_bool "raises" true
          (match A_k_index.build g ~k:(-1) with
          | _ -> false
          | exception Invalid_argument _ -> true));
    test "A(k) size grows with k up to the 1-index" (fun () ->
        let g = random_graph ~seed:64 ~nodes:200 in
        let one = Index_graph.n_nodes (One_index.build g) in
        let prev = ref 0 in
        List.iter
          (fun k ->
            let n = Index_graph.n_nodes (A_k_index.build g ~k) in
            check_bool "monotone" true (n >= !prev);
            check_bool "bounded by 1-index" true (n <= one);
            prev := n)
          [ 0; 1; 2; 3; 4; 5 ]);
    test "A(k) nodes carry k as similarity and requirement" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let idx = A_k_index.build g ~k:2 in
        Index_graph.iter_alive idx (fun nd ->
            check_int "k" 2 nd.Index_graph.k;
            check_int "req" 2 nd.Index_graph.req));
  ]

let one_index_tests =
  [
    test "1-index is stable under further refinement" (fun () ->
        let g = random_graph ~seed:71 ~nodes:150 in
        let one = One_index.build g in
        let depth = One_index.bisimulation_depth g in
        let deep = A_k_index.build g ~k:(depth + 2) in
        check_int "same size" (Index_graph.n_nodes deep) (Index_graph.n_nodes one));
    test "1-index answers any query soundly without validation" (fun () ->
        let g = random_graph ~seed:72 ~nodes:150 in
        let one = One_index.build g in
        let queries = Dkindex_workload.Query_gen.generate ~seed:72 ~count:20 g in
        List.iter
          (fun q ->
            let r = Query_eval.eval_path one q in
            check_int "no validation" 0 r.Query_eval.n_candidates;
            check_int "no data visits" 0 r.Query_eval.cost.Cost.data_visits)
          queries);
    test "on a tree with unique rooted paths the 1-index is tiny" (fun () ->
        let g = chain_graph [ "a"; "b"; "c" ] in
        check_int "one class per node" 4 (Index_graph.n_nodes (One_index.build g)));
    test "bisimulation depth of a label chain" (fun () ->
        check_int "depth" 3 (One_index.bisimulation_depth (chain_graph [ "a"; "a"; "a"; "a" ])));
  ]

let dataguide_tests =
  [
    test "on a tree, states = distinct rooted label paths" (fun () ->
        (* ROOT(a(x), b(x)): rooted label paths ROOT, ROOT.a, ROOT.b,
           ROOT.a.x, ROOT.b.x -> 5 states. *)
        let b = Dkindex_graph.Builder.create () in
        let a = Dkindex_graph.Builder.add_child b ~parent:0 "a" in
        let bb = Dkindex_graph.Builder.add_child b ~parent:0 "b" in
        ignore (Dkindex_graph.Builder.add_child b ~parent:a "x");
        ignore (Dkindex_graph.Builder.add_child b ~parent:bb "x");
        let g = Dkindex_graph.Builder.build b in
        let dg = Dataguide.build g in
        check_int "states" 5 (Dataguide.n_states dg));
    test "extents may overlap (unlike bisimulation indexes)" (fun () ->
        (* Two paths reach partially-overlapping target sets. *)
        let b = Dkindex_graph.Builder.create () in
        let a = Dkindex_graph.Builder.add_child b ~parent:0 "a" in
        let c = Dkindex_graph.Builder.add_child b ~parent:0 "c" in
        let x1 = Dkindex_graph.Builder.add_child b ~parent:a "x" in
        let x2 = Dkindex_graph.Builder.add_child b ~parent:c "x" in
        Dkindex_graph.Builder.add_edge b a x2;
        let g = Dkindex_graph.Builder.build b in
        let dg = Dataguide.build g in
        (* state {x1,x2} for a.x and {x2} for c.x both exist *)
        check_bool "more than one x state" true (Dataguide.n_states dg >= 5);
        ignore (x1, x2));
    test "evaluation agrees with the data graph" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:60 in
            let dg = Dataguide.build g in
            let queries = Dkindex_workload.Query_gen.generate ~seed ~count:15 g in
            List.iter
              (fun q ->
                let expected =
                  Dkindex_pathexpr.Matcher.eval_label_path g q ~cost:(Cost.create ())
                in
                let got = Dataguide.eval_label_path dg q ~cost:(Cost.create ()) in
                check_int_list "same result" expected got)
              queries)
          [ 81; 82 ]);
    test "max_states cap raises Too_large" (fun () ->
        let g = random_graph ~seed:83 ~nodes:200 in
        check_bool "raises" true
          (match Dataguide.build ~max_states:3 g with
          | _ -> false
          | exception Dataguide.Too_large _ -> true));
    test "subset construction terminates on cyclic graphs" (fun () ->
        let g, a, bb, c = cyclic_graph () in
        let dg = Dataguide.build g in
        check_bool "finite" true (Dataguide.n_states dg < 20);
        let q = labels_of_strings g [ "a"; "b"; "c" ] in
        check_int_list "eval" [ c ]
          (Dataguide.eval_label_path dg q ~cost:(Dkindex_pathexpr.Cost.create ()));
        ignore (a, bb));
    test "n_edges counts transitions" (fun () ->
        let g = chain_graph [ "a"; "b" ] in
        let dg = Dataguide.build g in
        check_int "two transitions" 2 (Dataguide.n_edges dg));
  ]

let canonical (p : Kbisim.partition) =
  let buckets = Hashtbl.create 16 in
  Array.iteri
    (fun u c ->
      Hashtbl.replace buckets c (u :: Option.value (Hashtbl.find_opt buckets c) ~default:[]))
    p.Kbisim.cls;
  Hashtbl.fold (fun _ m acc -> List.sort compare m :: acc) buckets [] |> List.sort compare

let paige_tarjan_tests =
  [
    test "equals hash refinement on random graphs" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:120 in
            check_bool "same partition" true
              (canonical (fst (Kbisim.stable_partition g))
              = canonical (Paige_tarjan.stable_partition g)))
          [ 311; 312; 313; 314 ]);
    test "equals hash refinement on cyclic graphs" (fun () ->
        let g, _, _, _ = cyclic_graph () in
        check_bool "same" true
          (canonical (fst (Kbisim.stable_partition g))
          = canonical (Paige_tarjan.stable_partition g)));
    test "handles a deep uniform chain (worst case for round hashing)" (fun () ->
        let g = chain_graph (List.init 300 (fun _ -> "a")) in
        let p = Paige_tarjan.stable_partition g in
        (* every chain position is its own class *)
        check_int "discrete" (Data_graph.n_nodes g) p.Kbisim.n_classes);
    test "equals hash refinement on XMark" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:9 ~scale:15 () in
        check_bool "same" true
          (canonical (fst (Kbisim.stable_partition g))
          = canonical (Paige_tarjan.stable_partition g)));
    test "build_one_index matches One_index.build" (fun () ->
        let g = random_graph ~seed:315 ~nodes:150 in
        let a = Paige_tarjan.build_one_index g and b = One_index.build g in
        Index_graph.check_invariants a;
        check_int "size" (Index_graph.n_nodes b) (Index_graph.n_nodes a);
        (* identical grouping *)
        Data_graph.iter_nodes g (fun u ->
            Data_graph.iter_nodes g (fun v ->
                check_bool "same grouping" 
                  (Index_graph.cls b u = Index_graph.cls b v)
                  (Index_graph.cls a u = Index_graph.cls a v))));
    test "single node graph" (fun () ->
        let g = chain_graph [] in
        check_int "one class" 1 (Paige_tarjan.stable_partition g).Kbisim.n_classes);
  ]

let () =
  Alcotest.run "baselines"
    [
      ("a_k", ak_tests);
      ("one_index", one_index_tests);
      ("dataguide", dataguide_tests);
      ("paige_tarjan", paige_tarjan_tests);
    ]
