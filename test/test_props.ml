(* Property-based tests (qcheck, registered through alcotest): the
   optimized implementations are compared against naive reference
   implementations and against each other on randomized inputs. *)

open Dkindex_core
open Testlib
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module Cost = Dkindex_pathexpr.Cost
module Path_ast = Dkindex_pathexpr.Path_ast
module Nfa = Dkindex_pathexpr.Nfa
module Matcher = Dkindex_pathexpr.Matcher
module Prng = Dkindex_datagen.Prng

let to_alcotest = QCheck_alcotest.to_alcotest

(* --------------------------------------------------------------- *)
(* Generators                                                        *)

let graph_params =
  QCheck.make
    ~print:(fun (seed, nodes, extra) -> Printf.sprintf "seed=%d nodes=%d extra=%d" seed nodes extra)
    QCheck.Gen.(
      triple (int_bound 10_000) (int_range 2 120) (int_bound 40))

let graph_of (seed, nodes, extra) =
  Dkindex_datagen.Random_graph.graph ~seed ~nodes ~n_labels:4 ~extra_edges:extra ()

let small_graph_params =
  QCheck.make
    ~print:(fun (seed, nodes, extra) -> Printf.sprintf "seed=%d nodes=%d extra=%d" seed nodes extra)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 2 35) (int_bound 12))

(* Random regular path expressions over l0..l3. *)
let expr_gen =
  let open QCheck.Gen in
  let label = map (fun i -> Path_ast.Label (Printf.sprintf "l%d" i)) (int_bound 3) in
  sized_size (int_bound 6) (fun n ->
      fix
        (fun self n ->
          if n <= 0 then oneof [ label; return Path_ast.Any ]
          else
            frequency
              [
                (2, label);
                (1, return Path_ast.Any);
                (3, map2 (fun a b -> Path_ast.Seq (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Path_ast.Alt (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map (fun a -> Path_ast.Opt a) (self (n - 1)));
                (1, map (fun a -> Path_ast.Star a) (self (n - 1)));
              ])
        n)

let expr_arb = QCheck.make ~print:Path_ast.to_string expr_gen

let word_gen =
  QCheck.Gen.(list_size (int_bound 4) (map (fun i -> Printf.sprintf "l%d" i) (int_bound 3)))

(* --------------------------------------------------------------- *)
(* Properties                                                        *)

let prop_nfa_matches_reference =
  QCheck.Test.make ~count:300 ~name:"NFA acceptance = reference word matching"
    (QCheck.pair expr_arb (QCheck.make ~print:(String.concat ".") word_gen))
    (fun (expr, word) ->
      let pool = Label.Pool.create () in
      for i = 0 to 3 do
        ignore (Label.Pool.intern pool (Printf.sprintf "l%d" i))
      done;
      let nfa = Nfa.compile pool expr in
      let codes = List.map (fun n -> Option.get (Label.Pool.find_opt pool n)) word in
      Nfa.accepts_word nfa codes = word_in_lang expr word)

let prop_dfa_matches_nfa =
  QCheck.Test.make ~count:300 ~name:"DFA acceptance = NFA acceptance"
    (QCheck.pair expr_arb (QCheck.make ~print:(String.concat ".") word_gen))
    (fun (expr, word) ->
      let pool = Label.Pool.create () in
      for i = 0 to 3 do
        ignore (Label.Pool.intern pool (Printf.sprintf "l%d" i))
      done;
      let codes = List.map (fun n -> Option.get (Label.Pool.find_opt pool n)) word in
      match Dkindex_pathexpr.Dfa.compile ~max_states:2000 pool expr with
      | dfa ->
        Dkindex_pathexpr.Dfa.accepts_word dfa codes
        = Nfa.accepts_word (Nfa.compile pool expr) codes
      | exception Dkindex_pathexpr.Dfa.Too_large _ -> true)

let prop_pp_parse_roundtrip =
  (* Reparsing can re-associate Alt/Seq chains, so require the printed
     form to be a fixpoint rather than the AST itself. *)
  QCheck.Test.make ~count:300 ~name:"print/parse/print fixpoint" expr_arb (fun expr ->
      let printed = Path_ast.to_string expr in
      let reparsed = Dkindex_pathexpr.Path_parser.parse printed in
      String.equal printed (Path_ast.to_string reparsed)
      (* and the two accept the same test words *)
      && List.for_all
           (fun w -> word_in_lang expr w = word_in_lang reparsed w)
           [ []; [ "l0" ]; [ "l0"; "l1" ]; [ "l2"; "l2"; "l3" ]; [ "l1"; "l0"; "l1"; "l2" ] ])

let prop_serial_roundtrip =
  QCheck.Test.make ~count:60 ~name:"graph serialization round trip" graph_params
    (fun params ->
      let g = graph_of params in
      let g' = Dkindex_graph.Serial.of_string (Dkindex_graph.Serial.to_string g) in
      Dkindex_graph.Serial.to_string g = Dkindex_graph.Serial.to_string g')

let prop_ak_matches_reference =
  QCheck.Test.make ~count:40 ~name:"A(k) partition = definitional k-bisimilarity"
    (QCheck.pair small_graph_params (QCheck.make QCheck.Gen.(int_bound 3)))
    (fun (params, k) ->
      let g = graph_of params in
      let idx = A_k_index.build g ~k in
      let bisim = k_bisimilar g in
      let ok = ref true in
      Data_graph.iter_nodes g (fun u ->
          Data_graph.iter_nodes g (fun v ->
              let same = Index_graph.cls idx u = Index_graph.cls idx v in
              if same <> bisim u v k then ok := false));
      !ok)

let prop_paige_tarjan =
  QCheck.Test.make ~count:60 ~name:"Paige-Tarjan = round-hashing fixpoint" graph_params
    (fun params ->
      let g = graph_of params in
      let canonical (p : Kbisim.partition) =
        let buckets = Hashtbl.create 16 in
        Array.iteri
          (fun u c ->
            Hashtbl.replace buckets c
              (u :: Option.value (Hashtbl.find_opt buckets c) ~default:[]))
          p.Kbisim.cls;
        Hashtbl.fold (fun _ m acc -> List.sort compare m :: acc) buckets []
        |> List.sort compare
      in
      canonical (fst (Kbisim.stable_partition g)) = canonical (Paige_tarjan.stable_partition g))

let prop_index_eval_exact =
  QCheck.Test.make ~count:40 ~name:"index path evaluation = data evaluation" graph_params
    (fun params ->
      let g = graph_of params in
      let queries = Dkindex_workload.Query_gen.generate ~seed:(Hashtbl.hash params) ~count:10 g in
      let reqs = Dkindex_workload.Miner.mine g queries in
      let indexes =
        [ Label_split.build g; A_k_index.build g ~k:2; One_index.build g; Dk_index.build g ~reqs ]
      in
      List.for_all
        (fun idx ->
          List.for_all
            (fun q ->
              (Query_eval.eval_path idx q).Query_eval.nodes
              = Matcher.eval_label_path g q ~cost:(Cost.create ()))
            queries)
        indexes)

let prop_expr_eval_exact =
  QCheck.Test.make ~count:60 ~name:"index regex evaluation = data evaluation"
    (QCheck.pair small_graph_params expr_arb)
    (fun (params, expr) ->
      let g = graph_of params in
      let expected = Matcher.eval_nfa g (Nfa.compile (Data_graph.pool g) expr) ~cost:(Cost.create ()) in
      List.for_all
        (fun idx -> (Query_eval.eval_expr idx expr).Query_eval.nodes = expected)
        [ Label_split.build g; A_k_index.build g ~k:1; One_index.build g ])

let prop_dataguide_eval_exact =
  QCheck.Test.make ~count:40 ~name:"DataGuide evaluation = data evaluation" small_graph_params
    (fun params ->
      let g = graph_of params in
      let dg = Dataguide.build g in
      let queries = Dkindex_workload.Query_gen.generate ~seed:(Hashtbl.hash params) ~count:8 g in
      List.for_all
        (fun q ->
          Dataguide.eval_label_path dg q ~cost:(Cost.create ())
          = Matcher.eval_label_path g q ~cost:(Cost.create ()))
        queries)

let prop_broadcast_postcondition =
  QCheck.Test.make ~count:60 ~name:"broadcast: parent req >= child req - 1, and >= input"
    graph_params
    (fun params ->
      let g = graph_of params in
      let rng = Prng.create ~seed:(Hashtbl.hash params) in
      let reqs =
        List.init 3 (fun i -> (Printf.sprintf "l%d" i, Prng.int rng 5))
      in
      let eff = Dk_index.effective_reqs g ~reqs in
      let parents = Broadcast.label_parents g in
      let ok = ref true in
      Array.iteri
        (fun child ps ->
          Int_set.iter (fun p -> if eff.(p) < eff.(child) - 1 then ok := false) ps)
        parents;
      List.iter
        (fun (name, k) ->
          match Label.Pool.find_opt (Data_graph.pool g) name with
          | Some l -> if eff.(Label.to_int l) < k then ok := false
          | None -> ())
        reqs;
      !ok)

let prop_rebuild_identity =
  QCheck.Test.make ~count:40 ~name:"Theorem 2: rebuild with equal reqs is the identity"
    graph_params
    (fun params ->
      let g = graph_of params in
      let queries = Dkindex_workload.Query_gen.generate ~seed:(Hashtbl.hash params) ~count:10 g in
      let reqs = Dkindex_workload.Miner.mine g queries in
      let idx = Dk_index.build g ~reqs in
      Index_graph.partition_signature idx
      = Index_graph.partition_signature (Dk_index.rebuild idx ~reqs))

(* Random interleavings of the whole mutable API: edge additions,
   promotions, and A(k)-style refinement must preserve every invariant
   and exact query answering. *)
let prop_update_soup =
  QCheck.Test.make ~count:30 ~name:"random update interleavings keep the D(k)-index exact"
    graph_params
    (fun params ->
      let g = graph_of params in
      let n = Data_graph.n_nodes g in
      let seed = Hashtbl.hash params in
      let queries = Dkindex_workload.Query_gen.generate ~seed ~count:8 g in
      let reqs = Dkindex_workload.Miner.mine g queries in
      let idx = Dk_index.build g ~reqs in
      let rng = Prng.create ~seed in
      let added = ref [] in
      for _ = 1 to 30 do
        match (Prng.int rng 4, !added) with
        | 0, _ | 3, [] ->
          let u = Prng.int rng n and v = if n > 1 then 1 + Prng.int rng (n - 1) else 0 in
          if v > 0 && not (Data_graph.has_edge g u v) then begin
            Dk_update.add_edge idx u v;
            added := (u, v) :: !added
          end
        | 3, (u, v) :: rest ->
          Dk_update.remove_edge idx u v;
          added := rest
        | 1, _ ->
          let u = Prng.int rng n in
          ignore (Dk_tune.promote idx (Index_graph.cls idx u) ~k:(Prng.int rng 4))
        | _, _ -> Dk_tune.promote_to_requirements idx
      done;
      Index_graph.check_invariants idx;
      List.for_all
        (fun q ->
          (Query_eval.eval_path idx q).Query_eval.nodes
          = Matcher.eval_label_path g q ~cost:(Cost.create ()))
        queries)

let prop_updates_keep_extents_honest =
  QCheck.Test.make ~count:20 ~name:"extents keep equal label-path sets through updates and demote"
    small_graph_params
    (fun params ->
      let g = graph_of params in
      let n = Data_graph.n_nodes g in
      let seed = Hashtbl.hash params in
      let queries = Dkindex_workload.Query_gen.generate ~seed ~count:8 g in
      let reqs = Dkindex_workload.Miner.mine g queries in
      let idx = Dk_index.build g ~reqs in
      let rng = Prng.create ~seed in
      for _ = 1 to 12 do
        let u = Prng.int rng n and v = if n > 1 then 1 + Prng.int rng (n - 1) else 0 in
        if v > 0 then Dk_update.add_edge idx u v
      done;
      (* In-place updates preserve the (weaker, sufficient) label-path
         set property, not full bisimilarity. *)
      assert_extents_path_equivalent g idx;
      let demoted = Dk_tune.demote idx ~reqs:(List.map (fun (l, k) -> (l, k / 2)) reqs) in
      assert_extents_path_equivalent g demoted;
      true)

let prop_subgraph_addition =
  QCheck.Test.make ~count:25 ~name:"Algorithm 3 refines the from-scratch construction"
    (QCheck.pair small_graph_params small_graph_params)
    (fun (p1, p2) ->
      let g = graph_of p1 and h = graph_of p2 in
      let queries = Dkindex_workload.Query_gen.generate ~seed:(Hashtbl.hash p1) ~count:8 g in
      let reqs = Dkindex_workload.Miner.mine g queries in
      let idx = Dk_index.build g ~reqs in
      let g', incremental = Dk_update.add_subgraph idx h ~reqs in
      Index_graph.check_invariants incremental;
      let scratch = Dk_index.build g' ~reqs in
      (* The incremental index refines the scratch one (it may be
         strictly finer when the graft escalates label requirements and
         the repair promotion over-splits), with the same per-node
         similarity, and answers the load identically. *)
      let refines = ref true in
      Index_graph.iter_alive incremental (fun nd ->
          match Array.to_list nd.Index_graph.extent with
          | [] -> ()
          | first :: rest ->
            List.iter
              (fun u -> if Index_graph.cls scratch u <> Index_graph.cls scratch first then refines := false)
              rest);
      let same_k = ref true in
      Data_graph.iter_nodes g' (fun u ->
          let ki = (Index_graph.node incremental (Index_graph.cls incremental u)).Index_graph.k in
          let ks = (Index_graph.node scratch (Index_graph.cls scratch u)).Index_graph.k in
          if ki < ks then same_k := false);
      let queries' = Dkindex_workload.Query_gen.generate ~seed:(Hashtbl.hash p2) ~count:8 g' in
      !refines && !same_k
      && List.for_all
           (fun q ->
             (Query_eval.eval_path incremental q).Query_eval.nodes
             = (Query_eval.eval_path scratch q).Query_eval.nodes)
           queries')

let prop_bitset_vs_set =
  QCheck.Test.make ~count:200 ~name:"Bitset agrees with Set on random element lists"
    QCheck.(pair (list (int_bound 199)) (list (int_bound 199)))
    (fun (xs, ys) ->
      let open Dkindex_pathexpr in
      let a = Bitset.create 200 and b = Bitset.create 200 in
      List.iter (Bitset.add a) xs;
      List.iter (Bitset.add b) ys;
      let sa = Int_set.of_list xs and sb = Int_set.of_list ys in
      Bitset.cardinal a = Int_set.cardinal sa
      && Bitset.subset a b = Int_set.subset sa sb
      && Bitset.inter_nonempty a b = not (Int_set.is_empty (Int_set.inter sa sb))
      && Bitset.equal a b = Int_set.equal sa sb)

let prop_xml_roundtrip =
  QCheck.Test.make ~count:40 ~name:"XML write/parse round trip on random documents"
    (QCheck.make QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Prng.create ~seed in
      let open Dkindex_xml in
      let rec element depth =
        let tag = Printf.sprintf "t%d" (Prng.int rng 5) in
        let attrs =
          List.init (Prng.int rng 3) (fun i ->
              (Printf.sprintf "a%d" i, Printf.sprintf "v<&\"'%d" (Prng.int rng 100)))
        in
        let children =
          if depth = 0 then []
          else begin
            (* no two adjacent text nodes: a parser merges them *)
            let last_was_text = ref false in
            List.init (Prng.int rng 4) (fun _ ->
                if (not !last_was_text) && Prng.bool rng 0.4 then begin
                  last_was_text := true;
                  Xml_ast.text (Printf.sprintf "text&<%d" (Prng.int rng 50))
                end
                else begin
                  last_was_text := false;
                  Xml_ast.Element (element (depth - 1))
                end)
          end
        in
        Xml_ast.element ~attrs tag children
      in
      let doc = { Xml_ast.root = element 3 } in
      Xml_ast.equal_doc doc (Xml_parser.parse_string (Xml_writer.doc_to_string doc)))

(* Random tree patterns over l0..l3 with child/descendant axes and
   nested predicates. *)
let pattern_gen =
  let open QCheck.Gen in
  let axis = oneofl [ Dkindex_pathexpr.Tree_pattern.Child; Dkindex_pathexpr.Tree_pattern.Descendant ] in
  let label = oneof [ map (fun i -> Some (Printf.sprintf "l%d" i)) (int_bound 3); return None ] in
  let rec pnode depth =
    if depth = 0 then
      map
        (fun label -> { Dkindex_pathexpr.Tree_pattern.label; value_test = None; preds = [] })
        label
    else
      map2
        (fun label preds -> { Dkindex_pathexpr.Tree_pattern.label; value_test = None; preds })
        label
        (list_size (int_bound 2) (pair axis (pnode (depth - 1))))
  in
  map2
    (fun first rest -> { Dkindex_pathexpr.Tree_pattern.steps = first :: rest })
    (pair axis (pnode 2))
    (list_size (int_bound 2) (pair axis (pnode 1)))

let pattern_arb = QCheck.make ~print:Dkindex_pathexpr.Tree_pattern.to_string pattern_gen

let prop_pattern_roundtrip =
  QCheck.Test.make ~count:200 ~name:"tree pattern print/parse round trip" pattern_arb
    (fun pattern ->
      let printed = Dkindex_pathexpr.Tree_pattern.to_string pattern in
      String.equal printed
        (Dkindex_pathexpr.Tree_pattern.to_string (Dkindex_pathexpr.Tree_pattern.parse printed)))

(* Patterns with value predicates, evaluated on graphs carrying random
   payloads. *)
let valued_pattern_gen =
  let open QCheck.Gen in
  let axis = oneofl [ Dkindex_pathexpr.Tree_pattern.Child; Dkindex_pathexpr.Tree_pattern.Descendant ] in
  let label = oneof [ map (fun i -> Some (Printf.sprintf "l%d" i)) (int_bound 3); return None ] in
  let value_test =
    oneof [ return None; map (fun i -> Some (Printf.sprintf "v%d" i)) (int_bound 4) ]
  in
  let rec pnode depth =
    if depth = 0 then
      map2
        (fun label value_test -> { Dkindex_pathexpr.Tree_pattern.label; value_test; preds = [] })
        label value_test
    else
      map3
        (fun label value_test preds -> { Dkindex_pathexpr.Tree_pattern.label; value_test; preds })
        label value_test
        (list_size (int_bound 2) (pair axis (pnode (depth - 1))))
  in
  map2
    (fun first rest -> { Dkindex_pathexpr.Tree_pattern.steps = first :: rest })
    (pair axis (pnode 2))
    (list_size (int_bound 2) (pair axis (pnode 1)))

let valued_pattern_arb = QCheck.make ~print:Dkindex_pathexpr.Tree_pattern.to_string valued_pattern_gen

let prop_value_predicates_exact =
  QCheck.Test.make ~count:60 ~name:"value predicates: index+validation = naive reference"
    (QCheck.pair small_graph_params valued_pattern_arb)
    (fun ((seed, nodes, extra), pattern) ->
      let g =
        Dkindex_datagen.Random_graph.graph ~seed ~value_fraction:0.5 ~nodes ~n_labels:4
          ~extra_edges:extra ()
      in
      let expected = naive_pattern_eval g pattern in
      let data_eval =
        Dkindex_pathexpr.Tree_pattern.eval
          (Dkindex_pathexpr.Tree_pattern.data_view g ~cost:(Cost.create ()))
          pattern
      in
      data_eval = expected
      (* non-covering indexes validate by default *)
      && List.for_all
           (fun idx -> (Query_eval.eval_pattern idx pattern).Query_eval.nodes = expected)
           [ Label_split.build g; One_index.build g ]
      (* on the covering F&B index, validate:false is exact for purely
         structural patterns, and value tests override it *)
      && (Query_eval.eval_pattern ~validate:false (Fb_index.build g) pattern).Query_eval.nodes
         = expected)

let prop_pattern_data_eval_matches_naive =
  QCheck.Test.make ~count:80 ~name:"Tree_pattern.eval = naive reference on the data graph"
    (QCheck.pair small_graph_params pattern_arb)
    (fun (params, pattern) ->
      let g = graph_of params in
      Dkindex_pathexpr.Tree_pattern.eval
        (Dkindex_pathexpr.Tree_pattern.data_view g ~cost:(Cost.create ()))
        pattern
      = naive_pattern_eval g pattern)

let prop_pattern_eval_exact =
  QCheck.Test.make ~count:60 ~name:"validated pattern evaluation = data evaluation"
    (QCheck.pair small_graph_params pattern_arb)
    (fun (params, pattern) ->
      let g = graph_of params in
      let expected =
        Dkindex_pathexpr.Tree_pattern.eval
          (Dkindex_pathexpr.Tree_pattern.data_view g ~cost:(Cost.create ()))
          pattern
      in
      List.for_all
        (fun idx -> (Query_eval.eval_pattern idx pattern).Query_eval.nodes = expected)
        [ Label_split.build g; A_k_index.build g ~k:2; One_index.build g ])

let prop_fb_covers_patterns =
  QCheck.Test.make ~count:60 ~name:"F&B index covers tree patterns without validation"
    (QCheck.pair small_graph_params pattern_arb)
    (fun (params, pattern) ->
      let g = graph_of params in
      let expected =
        Dkindex_pathexpr.Tree_pattern.eval
          (Dkindex_pathexpr.Tree_pattern.data_view g ~cost:(Cost.create ()))
          pattern
      in
      let fb = Fb_index.build g in
      (Query_eval.eval_pattern ~validate:false fb pattern).Query_eval.nodes = expected)

let prop_index_serial_roundtrip =
  QCheck.Test.make ~count:40 ~name:"index serialization round trip" graph_params
    (fun params ->
      let g = graph_of params in
      let queries = Dkindex_workload.Query_gen.generate ~seed:(Hashtbl.hash params) ~count:8 g in
      let reqs = Dkindex_workload.Miner.mine g queries in
      let idx = Dk_index.build g ~reqs in
      let idx' = Index_serial.of_string (Index_serial.to_string idx) in
      Index_graph.partition_signature idx = Index_graph.partition_signature idx')

let prop_sax_equals_dom =
  QCheck.Test.make ~count:40 ~name:"streaming load = DOM load on random documents"
    (QCheck.make QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Prng.create ~seed in
      let open Dkindex_xml in
      let rec element depth =
        let tag = Printf.sprintf "t%d" (Prng.int rng 5) in
        let attrs =
          List.init (Prng.int rng 3) (fun i ->
              (Printf.sprintf "a%d" i, Printf.sprintf "v&<%d" (Prng.int rng 100)))
        in
        let children =
          if depth = 0 then []
          else
            let last_was_text = ref false in
            List.init (Prng.int rng 4) (fun _ ->
                if (not !last_was_text) && Prng.bool rng 0.4 then begin
                  last_was_text := true;
                  Xml_ast.text (Printf.sprintf "text %d" (Prng.int rng 50))
                end
                else begin
                  last_was_text := false;
                  Xml_ast.Element (element (depth - 1))
                end)
        in
        Xml_ast.element ~attrs tag children
      in
      let doc = { Xml_ast.root = element 3 } in
      let text = Xml_writer.doc_to_string doc in
      let dom = Xml_to_graph.convert doc in
      let sax = Xml_to_graph.convert_events (Xml_sax.of_string text) in
      Dkindex_graph.Serial.to_string dom.Xml_to_graph.graph
      = Dkindex_graph.Serial.to_string sax.Xml_to_graph.graph)

(* Reference for Algorithm 4: enumerate label paths in the index graph
   and compute the true largest kN <= min(kU+1, kV) such that every
   label path of length kN into V through the new edge U->V already
   matches V.  Path sets are over the index graph, as in the paper. *)
let reference_update_local_similarity idx ~u ~v =
  let node = Index_graph.node idx in
  let label id = (node id).Index_graph.label in
  (* label paths of length exactly len (in labels) ending at [id],
     walking parent edges *)
  let rec paths_into id len =
    if len = 1 then [ [ label id ] ]
    else
      List.fold_left
        (fun acc p ->
          List.fold_left (fun acc path -> (path @ [ label id ]) :: acc) acc (paths_into p (len - 1)))
        []
        (Index_graph.parents_list idx id)
  in
  let module S = Set.Make (struct
    type t = Dkindex_graph.Label.t list

    let compare = compare
  end) in
  let ku = (node u).Index_graph.k and kv = (node v).Index_graph.k in
  let upbound = min (ku + 1) kv in
  (* ok k: every label path of length 1..k ending at u (the paths into v
     through the new edge, with v's label dropped) already matches some
     old path of the same length into v. *)
  let ok k_candidate =
    let rec check len =
      len > k_candidate
      ||
      let through = S.of_list (paths_into u len) in
      let old_paths =
        List.fold_left
          (fun acc p -> List.fold_left (fun acc x -> S.add x acc) acc (paths_into p len))
          S.empty
          (Index_graph.parents_list idx v)
      in
      S.subset through old_paths && check (len + 1)
    in
    check 1
  in
  let rec best k = if k >= upbound then k else if ok (k + 1) then best (k + 1) else k in
  best 0

let prop_alg4_matches_reference =
  QCheck.Test.make ~count:40 ~name:"Algorithm 4 = brute-force label-path comparison"
    (QCheck.make
       ~print:(fun (p, a, b) ->
         Printf.sprintf "(%d,%d,%d) seed=%d" (let s, _, _ = p in s) a b (Hashtbl.hash p))
       QCheck.Gen.(triple (triple (int_bound 10_000) (int_range 2 25) (int_bound 8)) (int_bound 24) (int_bound 24)))
    (fun ((gseed, nodes, extra), ui, vi) ->
      let g = Dkindex_datagen.Random_graph.graph ~seed:gseed ~nodes ~n_labels:3 ~extra_edges:extra () in
      let queries = Dkindex_workload.Query_gen.generate ~seed:gseed ~count:8 g in
      let reqs = Dkindex_workload.Miner.mine g queries in
      let idx = Dk_index.build g ~reqs in
      let n = Data_graph.n_nodes g in
      let u = Index_graph.cls idx (ui mod n) and v = Index_graph.cls idx (vi mod n) in
      Dk_update.update_local_similarity idx ~u ~v = reference_update_local_similarity idx ~u ~v)

(* Fuzzing: the parsers must reject garbage with Parse_error, never any
   other exception, and agree with each other on acceptance. *)
let fuzz_gen =
  QCheck.Gen.(
    oneof
      [
        (* pure noise *)
        string_size ~gen:(map Char.chr (int_range 1 127)) (int_bound 80);
        (* XML-ish noise: random markup fragments glued together *)
        map (String.concat "")
          (list_size (int_bound 12)
             (oneofl
                [ "<a>"; "</a>"; "<b x='1'"; ">"; "text"; "&amp;"; "&"; "<!--"; "-->";
                  "<![CDATA["; "]]>"; "<?pi?>"; "\""; "'"; "<"; "/>"; "<a/>"; " " ]));
      ])

let prop_parser_total =
  QCheck.Test.make ~count:500 ~name:"DOM parser: garbage in, Parse_error (or a doc) out"
    (QCheck.make ~print:String.escaped fuzz_gen)
    (fun src ->
      match Dkindex_xml.Xml_parser.parse_string src with
      | _ -> true
      | exception Dkindex_xml.Xml_parser.Parse_error _ -> true)

let prop_sax_total =
  QCheck.Test.make ~count:500 ~name:"SAX parser: garbage in, Parse_error (or events) out"
    (QCheck.make ~print:String.escaped fuzz_gen)
    (fun src ->
      match Dkindex_xml.Xml_sax.fold_string src ~init:0 ~f:(fun n _ -> n + 1) with
      | _ -> true
      | exception Dkindex_xml.Xml_sax.Parse_error _ -> true)

let prop_parsers_agree_on_acceptance =
  QCheck.Test.make ~count:500 ~name:"DOM and SAX accept exactly the same inputs"
    (QCheck.make ~print:String.escaped fuzz_gen)
    (fun src ->
      let dom_ok =
        match Dkindex_xml.Xml_parser.parse_string src with
        | _ -> true
        | exception Dkindex_xml.Xml_parser.Parse_error _ -> false
      in
      let sax_ok =
        match Dkindex_xml.Xml_sax.fold_string src ~init:0 ~f:(fun n _ -> n + 1) with
        | _ -> true
        | exception Dkindex_xml.Xml_sax.Parse_error _ -> false
      in
      dom_ok = sax_ok)

let prop_path_parser_total =
  QCheck.Test.make ~count:500 ~name:"path expression parser is total"
    (QCheck.make ~print:String.escaped
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_bound 40)))
    (fun src ->
      match Dkindex_pathexpr.Path_parser.parse src with
      | _ -> true
      | exception Dkindex_pathexpr.Path_parser.Parse_error _ -> true)

let prop_pattern_parser_total =
  QCheck.Test.make ~count:500 ~name:"tree pattern parser is total"
    (QCheck.make ~print:String.escaped
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_bound 40)))
    (fun src ->
      match Dkindex_pathexpr.Tree_pattern.parse src with
      | _ -> true
      | exception Dkindex_pathexpr.Tree_pattern.Parse_error _ -> true)

let () =
  Alcotest.run "properties"
    [
      ( "pathexpr",
        List.map to_alcotest [ prop_nfa_matches_reference; prop_dfa_matches_nfa; prop_pp_parse_roundtrip; prop_bitset_vs_set ] );
      ("graph", List.map to_alcotest [ prop_serial_roundtrip; prop_xml_roundtrip; prop_sax_equals_dom ]);
      ( "index",
        List.map to_alcotest
          [
            prop_ak_matches_reference;
            prop_paige_tarjan;
            prop_index_eval_exact;
            prop_expr_eval_exact;
            prop_dataguide_eval_exact;
            prop_broadcast_postcondition;
            prop_rebuild_identity;
            prop_alg4_matches_reference;
          ] );
      ( "updates",
        List.map to_alcotest
          [ prop_update_soup; prop_updates_keep_extents_honest; prop_subgraph_addition ] );
      ( "fuzz",
        List.map to_alcotest
          [
            prop_parser_total;
            prop_sax_total;
            prop_parsers_agree_on_acceptance;
            prop_path_parser_total;
            prop_pattern_parser_total;
          ] );
      ( "patterns",
        List.map to_alcotest
          [
            prop_pattern_roundtrip;
            prop_pattern_data_eval_matches_naive;
            prop_value_predicates_exact;
            prop_pattern_eval_exact;
            prop_fb_covers_patterns;
            prop_index_serial_roundtrip;
          ] );
    ]
