(* Replication tests for dkserve: WAL shipping, snapshot catch-up,
   failover, and epoch fencing.

   Every server in these tests runs in a forked child process (OCaml 5
   forbids Unix.fork once a domain exists, so the parent stays
   single-threaded and all domain-spawning happens in children).  The
   parent drives real TCP clients and compares answers against an
   in-process oracle built from the same deterministic seeds — as in
   test_recovery, equality of answers *including validation costs*
   means equality of index state.

   - convergence: a replica tails the primary's WAL and answers every
     query bit-for-bit; writes to it are refused with Not_primary.
   - failover: SIGKILL the primary after the replica caught up; an
     operator Promote_primary turns the replica into a primary (epoch
     1) that remembers every acknowledged write and accepts new ones.
   - fencing: promoting a replica while the old primary still lives
     (split-brain) fences the deposed primary — its writes are refused
     with Fenced, and a cluster client routes around it.
   - bootstrap: a replica joining after the primary pruned its early
     WAL generations catches up via snapshot transfer.
   - torn streams: a replication link that tears mid-frame makes the
     replica reconnect and still converge.
   - auto-promotion: with --auto-promote, a replica whose primary goes
     silent past the failover timeout promotes itself. *)

open Dkindex_core
module Data_graph = Dkindex_graph.Data_graph
module Label = Dkindex_graph.Label
module Wire = Dkindex_server.Wire
module Server = Dkindex_server.Server
module Client = Dkindex_server.Client
module Wal = Dkindex_server.Wal
module Checkpoint = Dkindex_server.Checkpoint
module Replication = Dkindex_server.Replication
module Faults = Dkindex_server.Faults
module Prng = Dkindex_datagen.Prng

(* ----------------------------------------------------------------- *)
(* Scratch directories *)

let temp_dir () =
  let path = Filename.temp_file "dkrepl" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* ----------------------------------------------------------------- *)
(* Deterministic base index, mutation stream, oracle (as in
   test_recovery: same seeds on both sides). *)

let build_base () =
  let g = Dkindex_datagen.Random_graph.graph ~seed:23 ~nodes:300 ~n_labels:5 ~extra_edges:120 () in
  Dk_index.build g ~reqs:[ ("l0", 2); ("l1", 3); ("l2", 2) ]

let empty_index () =
  let pool = Label.Pool.create () in
  let root = Label.Pool.intern pool Label.root_name in
  let g = Data_graph.make ~pool ~labels:[| root |] ~edges:[] () in
  Dk_index.build g ~reqs:[]

let queries =
  [ [ "l0" ]; [ "l1"; "l2" ]; [ "l0"; "l1" ]; [ "l2"; "l3"; "l0" ]; [ "l3"; "l3" ]; [ "l4" ] ]

let make_stream ~seed ~count =
  let idx = build_base () in
  let g = Index_graph.data idx in
  let n = Data_graph.n_nodes g in
  let rng = Prng.create ~seed in
  let present = Hashtbl.create 64 in
  let added = ref [] in
  let has (u, v) = Data_graph.has_edge g u v || Hashtbl.mem present (u, v) in
  let rec fresh_edge tries =
    let e = (Prng.int rng n, Prng.int rng n) in
    if has e && tries < 50 then fresh_edge (tries + 1) else e
  in
  List.init count (fun _ ->
      match !added with
      | e :: rest when Prng.bool rng 0.25 ->
        added := rest;
        Hashtbl.remove present e;
        Wal.Remove_edge { u = fst e; v = snd e }
      | _ when Prng.bool rng 0.06 -> Wal.Promote []
      | _ ->
        let e = fresh_edge 0 in
        Hashtbl.replace present e ();
        added := e :: !added;
        Wal.Add_edge { u = fst e; v = snd e })

let request_of_mutation : Wal.mutation -> Wire.request = function
  | Wal.Add_edge { u; v } -> Wire.Add_edge { u; v }
  | Wal.Remove_edge { u; v } -> Wire.Remove_edge { u; v }
  | Wal.Add_subgraph { graph; reqs } -> Wire.Add_subgraph { graph; reqs }
  | Wal.Promote pairs -> Wire.Promote pairs
  | Wal.Demote reqs -> Wire.Demote reqs

let oracle_after stream =
  List.fold_left (fun idx m -> Checkpoint.apply_mutation idx m) (build_base ()) stream

let eval_all idx =
  Index_graph.prepare_serving idx;
  let pool = Data_graph.pool (Index_graph.data idx) in
  let interned =
    List.map (fun labels -> Array.of_list (List.map (Label.Pool.intern pool) labels)) queries
  in
  Query_eval.eval_batch ~domains:1 ~strategy:`Forward ~cache:false idx interned

(* Every query answered by [c] must match the oracle bit-for-bit,
   validation costs included. *)
let check_serves_oracle ~what c oracle_idx =
  let want = eval_all oracle_idx in
  List.iteri
    (fun i labels ->
      match Client.call c (Wire.Query_path { flags = { no_cache = true }; labels }) with
      | Wire.Result r ->
        let w = want.(i) in
        let name = Printf.sprintf "%s: query %d" what i in
        Alcotest.(check (list int)) (name ^ " nodes") w.Query_eval.nodes (Array.to_list r.Wire.nodes);
        Alcotest.(check int)
          (name ^ " index_visits") w.cost.Dkindex_pathexpr.Cost.index_visits r.Wire.index_visits;
        Alcotest.(check int)
          (name ^ " data_visits") w.cost.Dkindex_pathexpr.Cost.data_visits r.Wire.data_visits;
        Alcotest.(check int) (name ^ " n_candidates") w.n_candidates r.Wire.n_candidates;
        Alcotest.(check int) (name ^ " n_certain") w.n_certain r.Wire.n_certain
      | Wire.Error_reply { message; _ } -> Alcotest.fail (what ^ ": server error: " ^ message)
      | _ -> Alcotest.fail (what ^ ": expected Result"))
    queries

(* ----------------------------------------------------------------- *)
(* Forked servers *)

let read_port_line fd =
  let buf = Buffer.create 16 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> failwith "server died before reporting its port"
    | _ ->
      if Bytes.get b 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        go ()
      end
  in
  int_of_string (go ())

(* Fork a durable server over [dir].  [replica_of] makes it a replica;
   [empty] starts it from a one-node index (what a fresh replica does)
   instead of the deterministic base.  [hub_faults] builds the fault
   injector inside the child (closures survive fork). *)
let fork_server ?(sync = Wal.Always) ?(checkpoint_records = 1000) ?replica_of ?(empty = false)
    ?hub_faults ?hub_heartbeat_s ~dir () =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let status =
      try
        let base = if empty then empty_index () else build_base () in
        let recovery = Checkpoint.recover ~dir () in
        let index = match recovery.Checkpoint.index with Some i -> i | None -> base in
        let cfg = { (Checkpoint.default_config ~dir) with sync; checkpoint_records } in
        let d = Checkpoint.start ~recovery cfg index in
        match
          Server.run ~handle_signals:false ~durability:d ?replica_of ?hub_faults
            ?hub_heartbeat_s
            ~on_ready:(fun port ->
              let line = string_of_int port ^ "\n" in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w)
            { Server.default_config with port = 0; workers = 1; deadline_s = 0.0 }
            index
        with
        | Ok () -> 0
        | Error _ -> 1
      with _ -> 2
    in
    Unix._exit status
  | pid ->
    Unix.close w;
    let port = read_port_line r in
    Unix.close r;
    (pid, port)

let rconfig ?(replica_id = 1) ?(auto_promote = false) ?(failover_timeout_s = 3600.0)
    ?(staleness_bound_s = 3600.0) ~port () =
  {
    (Replication.default_rconfig ~host:"127.0.0.1" ~port ~replica_id) with
    auto_promote;
    failover_timeout_s;
    staleness_bound_s;
  }

let kill_quiet pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let shutdown c pid =
  (match Client.call c Wire.Shutdown with
  | Wire.Ok_reply _ -> ()
  | _ -> Alcotest.fail "expected Ok_reply for Shutdown");
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "clean exit" true (status = Unix.WEXITED 0)

let stats c =
  match Client.call c Wire.Stats with
  | Wire.Stats_reply kvs -> kvs
  | _ -> Alcotest.fail "expected Stats_reply"

let stat kvs key = Option.value (List.assoc_opt key kvs) ~default:""

(* Poll [pred (stats c)] until true or [timeout_s] elapses. *)
let wait_for ?(timeout_s = 60.0) ~what c pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let kvs = stats c in
    if pred kvs then kvs
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail
        (Printf.sprintf "timed out waiting for %s; last stats: %s" what
           (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)))
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

(* Caught up = connected to the current lineage with zero bytes of WAL
   left to apply (heartbeats keep the primary position fresh). *)
let replica_caught_up kvs =
  stat kvs "replication_connected" = "true"
  && stat kvs "replication_bytes_behind" = "0"
  && int_of_string_opt (stat kvs "replication_applied_seq") <> Some (-1)

(* Race-free catch-up ("wait for LSN"): capture the primary's WAL
   position once every write is acked, then wait until the replica (a)
   has *heard of* that position — a stale heartbeat cannot fake this —
   and (b) reports zero bytes behind, which covers both the
   heartbeat-known gap and received-but-unapplied records sitting in
   the apply queue. *)
let primary_wal_position cp =
  let kvs = stats cp in
  (int_of_string (stat kvs "wal_seq"), int_of_string (stat kvs "wal_bytes"))

let replica_applied_to (pseq, poff) kvs =
  replica_caught_up kvs
  &&
  match
    ( int_of_string_opt (stat kvs "replication_primary_seq"),
      int_of_string_opt (stat kvs "replication_primary_offset") )
  with
  | Some kseq, Some koff -> kseq > pseq || (kseq = pseq && koff >= poff)
  | _ -> false

let wait_replica_applied ?timeout_s ~what cp cr =
  let pos = primary_wal_position cp in
  wait_for ?timeout_s ~what cr (replica_applied_to pos)

let send_stream c stream =
  List.iter
    (fun m ->
      match Client.call c (request_of_mutation m) with
      | Wire.Ok_reply _ -> ()
      | Wire.Error_reply { message; _ } -> Alcotest.fail ("mutation rejected: " ^ message)
      | _ -> Alcotest.fail "unexpected response to mutation")
    stream

(* ----------------------------------------------------------------- *)
(* Convergence: replica answers bit-for-bit, refuses writes *)

let test_convergence () =
  let dir_p = temp_dir () and dir_r = temp_dir () in
  let pids = ref [] in
  Fun.protect ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r)
  @@ fun () ->
  let ppid, pport = fork_server ~dir:dir_p ~hub_heartbeat_s:0.05 () in
  pids := [ ppid ];
  let rpid, rport =
    fork_server ~dir:dir_r ~empty:true ~replica_of:(rconfig ~port:pport ()) ()
  in
  pids := [ ppid; rpid ];
  let stream = make_stream ~seed:31 ~count:25 in
  let cp = Client.connect ~port:pport () in
  send_stream cp stream;
  let cr = Client.connect ~port:rport () in
  let kvs = wait_replica_applied ~what:"replica catch-up" cp cr in
  Alcotest.(check string) "replica role" "replica" (stat kvs "role");
  Alcotest.(check bool) "snapshot bootstrap happened" true
    (int_of_string (stat kvs "replication_snapshots_installed") >= 1);
  (* Bit-for-bit equality with the oracle, costs included. *)
  check_serves_oracle ~what:"replica after catch-up" cr (oracle_after stream);
  (* Writes are refused with a redirect to the primary. *)
  (match Client.call cr (Wire.Add_edge { u = 0; v = 1 }) with
  | Wire.Not_primary { host; port } ->
    Alcotest.(check string) "redirect host" "127.0.0.1" host;
    Alcotest.(check int) "redirect port" pport port
  | _ -> Alcotest.fail "expected Not_primary from the replica");
  (* The primary sees its subscriber. *)
  let pkvs = stats cp in
  Alcotest.(check string) "primary sees one replica" "1" (stat pkvs "replicas_connected");
  Alcotest.(check string) "primary role" "primary" (stat pkvs "role");
  (* Incremental shipping: more writes arrive without a new snapshot. *)
  let more = make_stream ~seed:32 ~count:40 in
  send_stream cp more;
  let kvs = wait_replica_applied ~what:"incremental catch-up" cp cr in
  Alcotest.(check bool) "no extra snapshot for incremental records" true
    (int_of_string (stat kvs "replication_records_applied") > 0);
  check_serves_oracle ~what:"replica after more writes" cr
    (oracle_after (stream @ more));
  shutdown cr rpid;
  pids := [ ppid ];
  shutdown cp ppid;
  pids := []

(* ----------------------------------------------------------------- *)
(* Failover: SIGKILL the primary, promote the replica *)

let test_failover_promote () =
  let dir_p = temp_dir () and dir_r = temp_dir () in
  let pids = ref [] in
  Fun.protect ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r)
  @@ fun () ->
  let ppid, pport = fork_server ~dir:dir_p ~hub_heartbeat_s:0.05 () in
  pids := [ ppid ];
  let rpid, rport =
    fork_server ~dir:dir_r ~empty:true ~replica_of:(rconfig ~port:pport ()) ()
  in
  pids := [ ppid; rpid ];
  let stream = make_stream ~seed:41 ~count:30 in
  let cp = Client.connect ~port:pport () in
  send_stream cp stream;
  (* Replication is asynchronous: an acknowledged write is only
     failover-durable once the replica caught up, so wait before the
     kill — this is exactly what dkindex-loadgen --wait-replication
     does in CI. *)
  let cr = Client.connect ~port:rport () in
  ignore (wait_replica_applied ~what:"replica catch-up before kill" cp cr);
  Unix.kill ppid Sys.sigkill;
  ignore (Unix.waitpid [] ppid);
  pids := [ rpid ];
  (* Operator failover. *)
  (match Client.call cr Wire.Promote_primary with
  | Wire.Ok_reply { epoch; _ } -> Alcotest.(check int) "promotion bumps the epoch" 1 epoch
  | Wire.Error_reply { message; _ } -> Alcotest.fail ("promote failed: " ^ message)
  | _ -> Alcotest.fail "expected Ok_reply for Promote_primary");
  let kvs = stats cr in
  Alcotest.(check string) "promoted role" "primary" (stat kvs "role");
  Alcotest.(check string) "promoted epoch" "1" (stat kvs "epoch");
  (* Every acknowledged write survived the failover. *)
  check_serves_oracle ~what:"promoted replica" cr (oracle_after stream);
  (* And it accepts new writes, stamped with the new epoch. *)
  let more = make_stream ~seed:42 ~count:8 in
  List.iter
    (fun m ->
      match Client.call cr (request_of_mutation m) with
      | Wire.Ok_reply { epoch; _ } -> Alcotest.(check int) "acks carry epoch 1" 1 epoch
      | _ -> Alcotest.fail "promoted replica refused a write")
    more;
  check_serves_oracle ~what:"promoted replica after new writes" cr
    (oracle_after (stream @ more));
  shutdown cr rpid;
  pids := []

(* ----------------------------------------------------------------- *)
(* Fencing: a deposed primary cannot acknowledge into a stale lineage *)

let test_fencing_deposed_primary () =
  let dir_p = temp_dir () and dir_r = temp_dir () in
  let pids = ref [] in
  Fun.protect ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r)
  @@ fun () ->
  let ppid, pport = fork_server ~dir:dir_p ~hub_heartbeat_s:0.05 () in
  pids := [ ppid ];
  let rpid, rport =
    fork_server ~dir:dir_r ~empty:true ~replica_of:(rconfig ~port:pport ()) ()
  in
  pids := [ ppid; rpid ];
  let stream = make_stream ~seed:51 ~count:10 in
  let cp = Client.connect ~port:pport () in
  send_stream cp stream;
  let cr = Client.connect ~port:rport () in
  ignore (wait_replica_applied ~what:"replica catch-up" cp cr);
  (* Split-brain: promote the replica while the old primary still
     lives and still believes it leads. *)
  (match Client.call cr Wire.Promote_primary with
  | Wire.Ok_reply { epoch = 1; _ } -> ()
  | _ -> Alcotest.fail "expected promotion to epoch 1");
  (* A cluster client that has seen epoch 1 fences the deposed primary
     before writing to it: its Hello carries the newer epoch, so the
     write lands on the real primary. *)
  let cl =
    Client.cluster_connect ~retries:2
      ~endpoints:[ ("127.0.0.1", pport); ("127.0.0.1", rport) ]
      ()
  in
  Alcotest.(check int) "cluster learned the new epoch" 1 (Client.cluster_epoch cl);
  let m = Wire.Add_edge { u = 2; v = 3 } in
  (match Client.cluster_call cl m with
  | Wire.Ok_reply { epoch; _ } -> Alcotest.(check int) "write acked in epoch 1" 1 epoch
  | Wire.Error_reply { message; _ } -> Alcotest.fail ("cluster write failed: " ^ message)
  | _ -> Alcotest.fail "expected Ok_reply via the cluster");
  Alcotest.(check (option (pair string int))) "cluster routed to the promoted replica"
    (Some ("127.0.0.1", rport)) (Client.cluster_primary cl);
  (* The deposed primary is now fenced: direct writes are refused. *)
  let cp2 = Client.connect ~port:pport ~epoch:1 () in
  (match Client.call cp2 (Wire.Add_edge { u = 4; v = 5 }) with
  | Wire.Fenced { epoch } -> Alcotest.(check int) "fenced against epoch 1" 1 epoch
  | _ -> Alcotest.fail "expected Fenced from the deposed primary");
  let pkvs = stats cp in
  Alcotest.(check string) "deposed primary reports fenced" "true" (stat pkvs "fenced");
  (* Reads on the fenced primary still work (it can serve its own
     lineage's data); cluster reads round-robin over both. *)
  (match Client.call cp2 Wire.Ping with
  | Wire.Pong -> ()
  | _ -> Alcotest.fail "fenced primary must still answer reads");
  (match Client.cluster_call cl Wire.Ping with
  | Wire.Pong -> ()
  | _ -> Alcotest.fail "cluster read failed");
  Client.cluster_close cl;
  Client.close cp2;
  shutdown cr rpid;
  pids := [ ppid ];
  shutdown cp ppid;
  pids := []

(* ----------------------------------------------------------------- *)
(* Snapshot bootstrap when the WAL history is gone *)

let test_bootstrap_after_prune () =
  let dir_p = temp_dir () and dir_r = temp_dir () in
  let pids = ref [] in
  Fun.protect ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r)
  @@ fun () ->
  (* Tiny rotation threshold: 20 mutations force several checkpoint
     rotations, and the pruner deletes all but the newest generations
     — a late-joining replica cannot tail from generation 0. *)
  let ppid, pport = fork_server ~dir:dir_p ~checkpoint_records:4 ~hub_heartbeat_s:0.05 () in
  pids := [ ppid ];
  let stream = make_stream ~seed:61 ~count:20 in
  let cp = Client.connect ~port:pport () in
  send_stream cp stream;
  let rpid, rport =
    fork_server ~dir:dir_r ~empty:true ~replica_of:(rconfig ~port:pport ()) ()
  in
  pids := [ ppid; rpid ];
  let cr = Client.connect ~port:rport () in
  let kvs = wait_replica_applied ~what:"bootstrap catch-up" cp cr in
  Alcotest.(check bool) "caught up via snapshot transfer" true
    (int_of_string (stat kvs "replication_snapshots_installed") >= 1);
  check_serves_oracle ~what:"replica after pruned-WAL bootstrap" cr (oracle_after stream);
  shutdown cr rpid;
  pids := [ ppid ];
  shutdown cp ppid;
  pids := []

(* ----------------------------------------------------------------- *)
(* Torn replication streams: reconnect and converge *)

let test_torn_stream_reconnects () =
  let dir_p = temp_dir () and dir_r = temp_dir () in
  let pids = ref [] in
  Fun.protect ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r)
  @@ fun () ->
  (* The first two replication connections tear mid-frame after ~1500
     bytes (the snapshot is bigger than that, so the bootstrap itself
     is torn); the third connection is clean.  The closure runs inside
     the forked primary. *)
  let hub_faults =
    let attaches = Atomic.make 0 in
    fun (_ : int) ->
      if Atomic.fetch_and_add attaches 1 < 2 then
        Some (Faults.create (Faults.Drop_after_bytes 1500))
      else None
  in
  let ppid, pport = fork_server ~dir:dir_p ~hub_faults ~hub_heartbeat_s:0.05 () in
  pids := [ ppid ];
  let stream = make_stream ~seed:71 ~count:15 in
  let cp = Client.connect ~port:pport () in
  send_stream cp stream;
  let rpid, rport =
    fork_server ~dir:dir_r ~empty:true ~replica_of:(rconfig ~port:pport ()) ()
  in
  pids := [ ppid; rpid ];
  let cr = Client.connect ~port:rport () in
  let kvs = wait_replica_applied ~what:"catch-up through torn streams" cp cr in
  Alcotest.(check bool) "replica reconnected at least twice" true
    (int_of_string (stat kvs "replication_reconnects") >= 2);
  check_serves_oracle ~what:"replica after torn streams" cr (oracle_after stream);
  shutdown cr rpid;
  pids := [ ppid ];
  shutdown cp ppid;
  pids := []

(* ----------------------------------------------------------------- *)
(* Auto-promotion on heartbeat timeout *)

let test_auto_promotion () =
  let dir_p = temp_dir () and dir_r = temp_dir () in
  let pids = ref [] in
  Fun.protect ~finally:(fun () ->
      List.iter kill_quiet !pids;
      rm_rf dir_p;
      rm_rf dir_r)
  @@ fun () ->
  let ppid, pport = fork_server ~dir:dir_p ~hub_heartbeat_s:0.05 () in
  pids := [ ppid ];
  let rpid, rport =
    fork_server ~dir:dir_r ~empty:true
      ~replica_of:(rconfig ~auto_promote:true ~failover_timeout_s:1.0 ~port:pport ())
      ()
  in
  pids := [ ppid; rpid ];
  let stream = make_stream ~seed:81 ~count:12 in
  let cp = Client.connect ~port:pport () in
  send_stream cp stream;
  let cr = Client.connect ~port:rport () in
  ignore (wait_replica_applied ~what:"catch-up before primary death" cp cr);
  Unix.kill ppid Sys.sigkill;
  ignore (Unix.waitpid [] ppid);
  pids := [ rpid ];
  (* The watchdog fires after ~1 s of silence and the replica promotes
     itself. *)
  let kvs =
    wait_for ~what:"auto-promotion" cr (fun kvs ->
        stat kvs "role" = "primary")
  in
  Alcotest.(check string) "auto-promoted epoch" "1" (stat kvs "epoch");
  check_serves_oracle ~what:"auto-promoted replica" cr (oracle_after stream);
  (match Client.call cr (Wire.Add_edge { u = 1; v = 2 }) with
  | Wire.Ok_reply { epoch = 1; _ } -> ()
  | _ -> Alcotest.fail "auto-promoted replica must accept writes");
  shutdown cr rpid;
  pids := []

let () =
  Alcotest.run "replication"
    [
      ( "replication",
        [
          Alcotest.test_case "replica converges bit-for-bit, redirects writes" `Quick
            test_convergence;
          Alcotest.test_case "SIGKILL primary; promoted replica keeps every ack" `Quick
            test_failover_promote;
          Alcotest.test_case "deposed primary is fenced; cluster routes around it" `Quick
            test_fencing_deposed_primary;
          Alcotest.test_case "late replica bootstraps over a pruned WAL" `Quick
            test_bootstrap_after_prune;
          Alcotest.test_case "torn streams reconnect and still converge" `Quick
            test_torn_stream_reconnects;
          Alcotest.test_case "auto-promotion after heartbeat silence" `Quick
            test_auto_promotion;
        ] );
    ]
