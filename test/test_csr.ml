(* Golden-equivalence tests for the CSR memory layout: the flat-array
   Data_graph and the array-extent Index_graph must behave exactly like
   the original list-based structures.  A naive edge-set model plays
   the role of the seed implementation for adjacency; the seed's
   list-key refinement is re-implemented here as the oracle for the
   hash-signature Kbisim. *)

open Dkindex_graph
open Dkindex_core
module Prng = Dkindex_datagen.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_int_list = Alcotest.(check (list int))

let test name f = Alcotest.test_case name `Quick f

let random_graph ~seed ~nodes =
  Dkindex_datagen.Random_graph.graph ~seed ~nodes ~n_labels:6
    ~extra_edges:(nodes / 3) ()

(* ------------------------------------------------------------------ *)
(* Reference adjacency model: a plain edge set *)

module Model = struct
  type t = { mutable edges : (int * int, unit) Hashtbl.t; n : int }

  let of_graph g =
    let edges = Hashtbl.create 256 in
    Data_graph.iter_edges g (fun u v -> Hashtbl.replace edges (u, v) ());
    { edges; n = Data_graph.n_nodes g }

  let has_edge m u v = Hashtbl.mem m.edges (u, v)
  let add_edge m u v = Hashtbl.replace m.edges (u, v) ()
  let remove_edge m u v = Hashtbl.remove m.edges (u, v)
  let n_edges m = Hashtbl.length m.edges

  let children m u =
    List.sort compare
      (Hashtbl.fold (fun (a, b) () acc -> if a = u then b :: acc else acc) m.edges [])

  let parents m v =
    List.sort compare
      (Hashtbl.fold (fun (a, b) () acc -> if b = v then a :: acc else acc) m.edges [])
end

let collect_iter iter = List.rev (iter (fun acc x -> x :: acc) [])

let check_node_against_model g m u =
  let tag fmt = Printf.sprintf fmt u in
  check_int_list (tag "children of %d") (Model.children m u) (Data_graph.children g u);
  check_int_list (tag "parents of %d") (Model.parents m u) (Data_graph.parents g u);
  check_int (tag "out_degree of %d")
    (List.length (Model.children m u))
    (Data_graph.out_degree g u);
  check_int (tag "in_degree of %d") (List.length (Model.parents m u)) (Data_graph.in_degree g u);
  (* iterators visit the same neighbors as the materialized lists
     (pending overflow entries may come out of order, so compare as
     sorted multisets) *)
  let via_iter f = collect_iter (fun g' init -> let acc = ref init in f (fun x -> acc := g' !acc x); !acc) in
  check_int_list (tag "iter_children of %d")
    (Data_graph.children g u)
    (List.sort compare (via_iter (Data_graph.iter_children g u)));
  check_int_list (tag "iter_parents of %d")
    (Data_graph.parents g u)
    (List.sort compare (via_iter (Data_graph.iter_parents g u)))

let check_graph_against_model g m =
  check_int "n_edges" (Model.n_edges m) (Data_graph.n_edges g);
  for u = 0 to Data_graph.n_nodes g - 1 do
    check_node_against_model g m u
  done

(* Drive a graph and its model through a random update sequence long
   enough to cross the CSR rebuild threshold several times. *)
let churn ~seed ~rounds g m =
  let rng = Prng.create ~seed in
  let n = Data_graph.n_nodes g in
  for round = 1 to rounds do
    let u = Prng.int rng n and v = Prng.int rng n in
    if Prng.bool rng 0.6 then begin
      (* add (possibly a duplicate: must be a no-op) *)
      Data_graph.add_edge g u v;
      Model.add_edge m u v
    end
    else if Model.has_edge m u v then begin
      Data_graph.remove_edge g u v;
      Model.remove_edge m u v
    end
    else
      (* removing an absent edge must raise and change nothing *)
      Alcotest.check_raises "remove absent raises"
        (Invalid_argument (Printf.sprintf "Data_graph.remove_edge: no edge (%d, %d)" u v))
        (fun () -> Data_graph.remove_edge g u v);
    (* spot-check both endpoints every round, everything occasionally *)
    check_bool "has_edge" (Model.has_edge m u v) (Data_graph.has_edge g u v);
    check_node_against_model g m u;
    check_node_against_model g m v;
    if round mod 50 = 0 then check_graph_against_model g m
  done;
  check_graph_against_model g m

let graph_cases =
  [
    test "random graphs match the edge-set model through churn" (fun () ->
        List.iter
          (fun seed ->
            let g = random_graph ~seed ~nodes:120 in
            let m = Model.of_graph g in
            check_graph_against_model g m;
            churn ~seed:(seed * 7 + 1) ~rounds:400 g m)
          [ 11; 12; 13 ]);
    test "xmark graph matches the model through churn" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:5 ~scale:4 () in
        let m = Model.of_graph g in
        check_graph_against_model g m;
        churn ~seed:99 ~rounds:300 g m);
    test "nasa graph matches the model through churn" (fun () ->
        let g = Dkindex_datagen.Nasa.graph ~seed:6 ~scale:3 () in
        let m = Model.of_graph g in
        check_graph_against_model g m;
        churn ~seed:100 ~rounds:300 g m);
    test "children and parents come out sorted and deduplicated" (fun () ->
        let g = random_graph ~seed:21 ~nodes:200 in
        Data_graph.iter_nodes g (fun u ->
            let cs = Data_graph.children g u in
            check_int_list "children sorted" (List.sort_uniq compare cs) cs;
            let ps = Data_graph.parents g u in
            check_int_list "parents sorted" (List.sort_uniq compare ps) ps));
    test "exists helpers agree with list search" (fun () ->
        let g = random_graph ~seed:22 ~nodes:100 in
        let rng = Prng.create ~seed:23 in
        for _ = 1 to 200 do
          let u = Prng.int rng (Data_graph.n_nodes g) in
          let x = Prng.int rng (Data_graph.n_nodes g) in
          check_bool "exists_children"
            (List.mem x (Data_graph.children g u))
            (Data_graph.exists_children g u (fun c -> c = x));
          check_bool "exists_parents"
            (List.mem x (Data_graph.parents g u))
            (Data_graph.exists_parents g u (fun p -> p = x))
        done);
    test "csr views match the iterators, before and after churn" (fun () ->
        let g = random_graph ~seed:24 ~nodes:80 in
        let check_views () =
          let run_of off arr u =
            List.init
              (Int_vec.get off (u + 1) - Int_vec.get off u)
              (fun i -> Int_vec.get arr (Int_vec.get off u + i))
          in
          let off, arr = Data_graph.csr_children g in
          Data_graph.iter_nodes g (fun u ->
              check_int_list "children run" (Data_graph.children g u) (run_of off arr u));
          let off, arr = Data_graph.csr_parents g in
          Data_graph.iter_nodes g (fun u ->
              check_int_list "parents run" (Data_graph.parents g u) (run_of off arr u))
        in
        check_views ();
        let m = Model.of_graph g in
        churn ~seed:25 ~rounds:150 g m;
        check_views ());
    test "graft keeps both sides intact" (fun () ->
        let g = random_graph ~seed:31 ~nodes:60 in
        let h = Dkindex_datagen.Xmark.graph ~seed:7 ~scale:2 () in
        let ng = Data_graph.n_nodes g in
        let g', offset = Data_graph.graft g h in
        check_int "offset" ng offset;
        check_int "node count" (ng + Data_graph.n_nodes h - 1) (Data_graph.n_nodes g');
        (* g's edges survive verbatim *)
        Data_graph.iter_edges g (fun u v ->
            check_bool "g edge kept" true (Data_graph.has_edge g' u v));
        (* h's non-root structure survives under the remap *)
        let remap u = if u = 0 then Data_graph.root g' else u - 1 + offset in
        Data_graph.iter_edges h (fun u v ->
            check_bool "h edge kept" true (Data_graph.has_edge g' (remap u) (remap v)));
        let pool' = Data_graph.pool g' in
        for u = 1 to Data_graph.n_nodes h - 1 do
          check_bool "label kept" true
            (String.equal (Data_graph.label_name h u)
               (Label.Pool.name pool' (Data_graph.label g' (remap u))))
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Index graph with array extents *)

let all_labels g =
  let pool = Data_graph.pool g in
  Label.Pool.fold (fun l _ acc -> l :: acc) pool []

let check_label_bookkeeping idx g =
  List.iter
    (fun l ->
      let listed = Index_graph.nodes_with_label idx l in
      check_int "count_with_label = |nodes_with_label|" (List.length listed)
        (Index_graph.count_with_label idx l);
      List.iter
        (fun id ->
          check_bool "listed node alive" true (Index_graph.is_alive idx id);
          check_bool "label matches" true
            (Label.equal (Index_graph.node idx id).Index_graph.label l))
        listed)
    (all_labels g)

let index_cases =
  [
    test "extents are sorted arrays partitioning the data nodes" (fun () ->
        List.iter
          (fun (name, build) ->
            let g = random_graph ~seed:41 ~nodes:150 in
            let idx = build g in
            Index_graph.check_invariants idx;
            let seen = Array.make (Data_graph.n_nodes g) false in
            Index_graph.iter_alive idx (fun nd ->
                check_int
                  (name ^ ": extent_size")
                  (Array.length nd.Index_graph.extent)
                  nd.Index_graph.extent_size;
                check_int (name ^ ": extent_min") nd.Index_graph.extent.(0)
                  (Index_graph.extent_min nd);
                Array.iter
                  (fun u ->
                    check_bool (name ^ ": no overlap") false seen.(u);
                    seen.(u) <- true;
                    check_bool (name ^ ": extent_mem") true (Index_graph.extent_mem nd u))
                  nd.Index_graph.extent;
                check_bool (name ^ ": extent_mem miss") false
                  (Index_graph.extent_mem nd (-1)));
            check_bool (name ^ ": covers") true (Array.for_all Fun.id seen))
          [
            ("label-split", Label_split.build);
            ("A(2)", fun g -> A_k_index.build g ~k:2);
            ("1-index", fun g -> One_index.build g);
            ("F&B", Fb_index.build);
          ]);
    test "label counts stay exact through splits and updates" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:8 ~scale:4 () in
        let reqs = [ ("personref", 3); ("bidder", 2); ("interest", 3) ] in
        let idx = Dk_index.build g ~reqs in
        check_label_bookkeeping idx g;
        let rng = Prng.create ~seed:55 in
        let n = Data_graph.n_nodes g in
        for _ = 1 to 25 do
          let u = Prng.int rng n and v = Prng.int rng n in
          if not (Data_graph.has_edge g u v) then Dk_update.add_edge idx u v;
          check_label_bookkeeping idx g
        done;
        Index_graph.check_invariants idx);
    test "nodes_with_label skips compaction when nothing died" (fun () ->
        let g = random_graph ~seed:42 ~nodes:100 in
        let idx = Label_split.build g in
        List.iter
          (fun l ->
            let first = Index_graph.nodes_with_label idx l in
            (* No kill in between: the exact same list must come back. *)
            check_bool "physically cached" true (first == Index_graph.nodes_with_label idx l))
          (all_labels g);
        (* After a split the bucket must drop the dead id. *)
        let victim =
          Index_graph.fold_alive idx ~init:None ~f:(fun acc nd ->
              match acc with
              | Some _ -> acc
              | None -> if nd.Index_graph.extent_size >= 2 then Some nd else None)
        in
        match victim with
        | None -> Alcotest.fail "no splittable class in fixture"
        | Some nd ->
          let label = nd.Index_graph.label in
          let extent = nd.Index_graph.extent in
          let fresh =
            Index_graph.split idx nd.Index_graph.id
              [ [| extent.(0) |]; Array.sub extent 1 (Array.length extent - 1) ]
          in
          let listed = Index_graph.nodes_with_label idx label in
          check_bool "dead id dropped" false (List.mem nd.Index_graph.id listed);
          List.iter (fun id -> check_bool "fresh listed" true (List.mem id listed)) fresh;
          check_int "count tracks split" (List.length listed)
            (Index_graph.count_with_label idx label));
  ]

(* ------------------------------------------------------------------ *)
(* Hash-signature refinement vs the original list-key oracle *)

(* The seed implementation: intern (own class, sorted parent-class
   set) list keys, class ids by first occurrence in node order. *)
let refine_oracle g (p : Kbisim.partition) =
  let n = Data_graph.n_nodes g in
  let table : (int * int list, int) Hashtbl.t = Hashtbl.create 64 in
  let cls = Array.make n 0 in
  let count = ref 0 in
  for u = 0 to n - 1 do
    let parents_key = ref [] in
    Data_graph.iter_parents g u (fun v -> parents_key := p.Kbisim.cls.(v) :: !parents_key);
    let key = (p.Kbisim.cls.(u), List.sort_uniq compare !parents_key) in
    let c' =
      match Hashtbl.find_opt table key with
      | Some c' -> c'
      | None ->
        let c' = !count in
        incr count;
        Hashtbl.add table key c';
        c'
    in
    cls.(u) <- c'
  done;
  (cls, !count)

let check_partition_equal name (a : Kbisim.partition) (b : Kbisim.partition) =
  check_int (name ^ ": n_classes") a.Kbisim.n_classes b.Kbisim.n_classes;
  check_bool (name ^ ": cls") true (a.Kbisim.cls = b.Kbisim.cls);
  check_bool (name ^ ": parent_class") true (a.Kbisim.parent_class = b.Kbisim.parent_class)

let kbisim_cases =
  [
    test "signature refinement equals the list-key oracle" (fun () ->
        List.iter
          (fun g ->
            let p = ref (Kbisim.label_partition g) in
            for _ = 1 to 6 do
              let p', _ = Kbisim.refine g !p ~eligible:(fun _ -> true) in
              let cls, n_classes = refine_oracle g !p in
              check_int "round classes" n_classes p'.Kbisim.n_classes;
              check_bool "round cls" true (cls = p'.Kbisim.cls);
              p := p'
            done)
          [
            random_graph ~seed:61 ~nodes:300;
            Dkindex_datagen.Xmark.graph ~seed:9 ~scale:4 ();
            Dkindex_datagen.Nasa.graph ~seed:10 ~scale:3 ();
          ]);
    test "refine ~domains:4 is bit-for-bit refine ~domains:1" (fun () ->
        (* Large enough to take the parallel path (n >= 4096). *)
        let g = random_graph ~seed:62 ~nodes:6000 in
        let p1 = Kbisim.k_partition g ~k:3 ~domains:1 in
        let p4 = Kbisim.k_partition g ~k:3 ~domains:4 in
        check_partition_equal "k_partition" p1 p4;
        let s1, r1 = Kbisim.stable_partition g ~domains:1 in
        let s4, r4 = Kbisim.stable_partition g ~domains:4 in
        check_int "rounds" r1 r4;
        check_partition_equal "stable" s1 s4;
        let b1, ch1 = Kbisim.refine_by_children g p1 ~domains:1 in
        let b4, ch4 = Kbisim.refine_by_children g p1 ~domains:4 in
        check_bool "children changed flag" ch1 ch4;
        check_partition_equal "by_children" b1 b4);
    test "domain counts 2, 3 and 5 also agree" (fun () ->
        let g = Dkindex_datagen.Xmark.graph ~seed:11 ~scale:70 () in
        check_bool "big enough for the parallel path" true (Data_graph.n_nodes g >= 4096);
        let p1 = Kbisim.k_partition g ~k:2 ~domains:1 in
        List.iter
          (fun d -> check_partition_equal (Printf.sprintf "domains:%d" d) p1
               (Kbisim.k_partition g ~k:2 ~domains:d))
          [ 2; 3; 5 ]);
  ]

let () =
  Alcotest.run "csr"
    [ ("data_graph", graph_cases); ("index_graph", index_cases); ("kbisim", kbisim_cases) ]
