(** Candidate access paths and their priced plans.

    A plan is one way to answer a parsed path expression: scan a
    single registered index (validating under-refined extents), scan
    two indexes and validate only the intersection of their candidate
    extents, or fall back to direct NFA evaluation on the data graph.
    The planner ({!Planner}) emits one plan per valid access path,
    priced from the {!Stats_catalog}; plans order by estimated total
    visits with a deterministic name tie-break, and the raw-graph
    fallback is always present (and always executable), closing the
    fallback chain. *)

type access =
  | Scan of string  (** single registered index, validate as needed *)
  | Intersect of string * string
      (** candidate extents of both indexes intersected; only the
          survivors outside either side's certain extents are
          validated *)
  | Raw  (** direct evaluation on the data graph — always sound *)

type t = {
  access : access;
  est_index_visits : float;  (** traversal cost over the index graph(s) *)
  est_candidates : float;  (** data nodes expected to need validation *)
  est_data_visits : float;  (** validation cost after the cache discount *)
  est_total : float;  (** what the ranking orders by *)
  certain : bool;  (** no validation expected (soundness covers the query) *)
}

val access_name : access -> string
(** ["scan(dk)"], ["intersect(dk,1-index)"], ["raw"]. *)

val describe : t -> string
(** One line: access path, estimates, certainty — the EXPLAIN row and
    the [Planned_result] plan tag. *)

val compare : t -> t -> int
(** Ascending estimated total; ties broken by {!access_name} so the
    ranking is deterministic. *)

val pp : Format.formatter -> t -> unit
