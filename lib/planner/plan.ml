type access =
  | Scan of string
  | Intersect of string * string
  | Raw

type t = {
  access : access;
  est_index_visits : float;
  est_candidates : float;
  est_data_visits : float;
  est_total : float;
  certain : bool;
}

let access_name = function
  | Scan n -> "scan(" ^ n ^ ")"
  | Intersect (a, b) -> "intersect(" ^ a ^ "," ^ b ^ ")"
  | Raw -> "raw"

let describe t =
  if t.access = Raw then
    Printf.sprintf "raw: est %.0f data visits (no index)" t.est_total
  else if t.certain then
    Printf.sprintf "%s: est %.0f index visits, certain (no validation)"
      (access_name t.access) t.est_index_visits
  else
    Printf.sprintf "%s: est %.0f total (%.0f index visits + %.0f validation over %.0f candidates)"
      (access_name t.access) t.est_total t.est_index_visits t.est_data_visits
      t.est_candidates

let compare a b =
  let c = Float.compare a.est_total b.est_total in
  if c <> 0 then c else String.compare (access_name a.access) (access_name b.access)

let pp ppf t = Format.pp_print_string ppf (describe t)
