(** Per-index statistics catalog for the cost-based planner.

    One catalog is bound to one {!Index_graph.t} and derives, in a
    single sweep over the live index nodes, everything the cost model
    prices: per-label index-node counts and extent populations (label
    selectivity), the per-label local-similarity coverage profile
    (how much of a label's data sits under nodes refined to at least
    [k] — the "under-refined D(k) class" signal), index fanout, and
    the global k histogram.

    Refresh is {e generation-gated}: {!refresh} compares the index's
    {!Index_graph.generation} counter against the one recorded at the
    last sweep and does nothing when they match, so consulting the
    catalog on every query never recomputes statistics and the stats
    can never be stale after an update (the next refresh sees the
    bumped counter).  All consultation functions are O(1) array reads
    and allocation-free; only {!refresh} after a mutation allocates.

    The catalog also records externally-observed {!Validation_cache}
    traffic ({!observe_cache}), from which the cost model discounts
    validation work for warm workloads. *)

open Dkindex_graph
open Dkindex_core

type t

val k_cap : int
(** Coverage profiles saturate at this similarity: a node with
    [k >= k_cap] (including 1-index nodes, [k = k_infinite]) counts as
    covering every query length the profile can ask about. *)

val create : Index_graph.t -> t
(** Bind a catalog to an index and run the first sweep. *)

val index : t -> Index_graph.t

val refresh : t -> unit
(** Re-sweep if (and only if) the index generation moved. *)

val refreshes : t -> int
(** Number of sweeps performed so far (1 after {!create}); tests use
    this to assert the generation gating. *)

val generation : t -> int
(** Index generation at the last sweep. *)

(** {1 Global statistics} *)

val n_inodes : t -> int
val n_iedges : t -> int
val n_data_nodes : t -> int
val n_data_edges : t -> int

val index_fanout : t -> float
(** Mean out-degree of live index nodes (0 on an empty index). *)

val data_fanout : t -> float

val k_histogram : t -> (int * int) list
(** Capped local similarity ([k_cap] stands for anything at or above
    it, including infinite) -> live index node count, ascending. *)

(** {1 Per-label statistics}

    All take an interned label; [*_name] variants intern first and
    return zero statistics for labels the data graph never saw. *)

val label_inodes : t -> Label.t -> int
(** Live index nodes carrying the label. *)

val label_fanout : t -> Label.t -> float
(** Mean index out-degree of the label's nodes ({!index_fanout} when
    the label has no swept row).  Hub labels sit far above the global
    mean, which is what makes a coarse summary expensive to walk. *)

val label_extent : t -> Label.t -> int
(** Data nodes under the label (extents partition the data nodes, so
    this is also the label's data population). *)

val label_max_extent : t -> Label.t -> int

val label_selectivity : t -> Label.t -> float
(** [label_extent / n_data_nodes], in [0, 1]. *)

val covered_inodes : t -> Label.t -> int -> int
(** [covered_inodes t l m]: this label's index nodes with
    [min k k_cap >= min m k_cap] — the nodes certain for a query of
    [m + 1] labels. *)

val covered_extent : t -> Label.t -> int -> int
(** Data population of the nodes {!covered_inodes} counts. *)

val uncovered_extent : t -> Label.t -> int -> int
(** [label_extent - covered_extent]: data nodes that would need
    validation if every node of the label matched a query of [m + 1]
    labels. *)

val label_inodes_name : t -> string -> int
val label_extent_name : t -> string -> int

(** {1 Validation-cache observation} *)

val observe_cache : t -> hits:int -> misses:int -> unit
(** Record cumulative hit/miss counters from a {!Validation_cache}
    serving this index (latest observation wins). *)

val cache_hit_rate : t -> float
(** Hits over total observed probes; 0 before any observation. *)

val pp : Format.formatter -> t -> unit
(** One-line summary, for logs and EXPLAIN headers. *)
