open Dkindex_graph
open Dkindex_core

let k_cap = 32

(* Per-label row.  [cov.(j)] / [covd.(j)] are suffix counts: index
   nodes (resp. their data population) whose capped similarity is at
   least [j], for j in [0 .. k_cap].  Consultation indexes straight
   into these arrays — no hashing, no allocation. *)
type row = {
  mutable inodes : int;
  mutable extent : int;
  mutable max_extent : int;
  mutable out_edges : int;  (* index out-edges of this label's nodes *)
  cov : int array;
  covd : int array;
}

type t = {
  idx : Index_graph.t;
  mutable gen : int;
  mutable refreshes : int;
  mutable rows : row array;  (* indexed by label code; may grow *)
  mutable n_inodes : int;
  mutable n_iedges : int;
  mutable n_data_nodes : int;
  mutable n_data_edges : int;
  mutable k_hist : int array;  (* capped k -> live node count *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let cap_k k = if k >= k_cap then k_cap else k

let sweep t =
  let pool = Data_graph.pool (Index_graph.data t.idx) in
  let n_labels = Label.Pool.count pool in
  let rows =
    Array.init n_labels (fun _ ->
        {
          inodes = 0;
          extent = 0;
          max_extent = 0;
          out_edges = 0;
          cov = Array.make (k_cap + 1) 0;
          covd = Array.make (k_cap + 1) 0;
        })
  in
  let k_hist = Array.make (k_cap + 1) 0 in
  let data_nodes = ref 0 in
  Index_graph.iter_alive t.idx (fun nd ->
      let r = rows.(Label.to_int nd.Index_graph.label) in
      let size = nd.Index_graph.extent_size in
      let kc = cap_k nd.Index_graph.k in
      r.inodes <- r.inodes + 1;
      r.extent <- r.extent + size;
      r.out_edges <- r.out_edges + Index_graph.out_degree t.idx nd.Index_graph.id;
      if size > r.max_extent then r.max_extent <- size;
      (* bucket counts first; suffix-summed below *)
      r.cov.(kc) <- r.cov.(kc) + 1;
      r.covd.(kc) <- r.covd.(kc) + size;
      k_hist.(kc) <- k_hist.(kc) + 1;
      data_nodes := !data_nodes + size);
  Array.iter
    (fun r ->
      for j = k_cap - 1 downto 0 do
        r.cov.(j) <- r.cov.(j) + r.cov.(j + 1);
        r.covd.(j) <- r.covd.(j) + r.covd.(j + 1)
      done)
    rows;
  t.rows <- rows;
  t.k_hist <- k_hist;
  t.n_inodes <- Index_graph.n_nodes t.idx;
  t.n_iedges <- Index_graph.n_edges t.idx;
  t.n_data_nodes <- !data_nodes;
  t.n_data_edges <- Data_graph.n_edges (Index_graph.data t.idx);
  t.gen <- Index_graph.generation t.idx;
  t.refreshes <- t.refreshes + 1

let create idx =
  let t =
    {
      idx;
      gen = -1;
      refreshes = 0;
      rows = [||];
      n_inodes = 0;
      n_iedges = 0;
      n_data_nodes = 0;
      n_data_edges = 0;
      k_hist = [||];
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  sweep t;
  t

let index t = t.idx
let refresh t = if Index_graph.generation t.idx <> t.gen then sweep t
let refreshes t = t.refreshes
let generation t = t.gen
let n_inodes t = t.n_inodes
let n_iedges t = t.n_iedges
let n_data_nodes t = t.n_data_nodes
let n_data_edges t = t.n_data_edges

let index_fanout t =
  if t.n_inodes = 0 then 0.0 else float_of_int t.n_iedges /. float_of_int t.n_inodes

let data_fanout t =
  if t.n_data_nodes = 0 then 0.0
  else float_of_int t.n_data_edges /. float_of_int t.n_data_nodes

let k_histogram t =
  let acc = ref [] in
  for j = k_cap downto 0 do
    if t.k_hist.(j) > 0 then acc := (j, t.k_hist.(j)) :: !acc
  done;
  !acc

(* The pool can grow (a mutation grafting a subgraph interns fresh
   labels) without bumping our recorded generation snapshot's row
   array; codes beyond the last sweep simply have no statistics yet. *)
let row t l =
  let code = Label.to_int l in
  if code < Array.length t.rows then Some t.rows.(code) else None

let label_inodes t l = match row t l with Some r -> r.inodes | None -> 0

(* Mean index out-degree of this label's nodes; the global fanout when
   the label has no statistics (fresh label, empty row).  Hub labels
   (document roots, container elements) have out-degrees far above the
   index-wide mean, and they are exactly the nodes every path query
   walks through first. *)
let label_fanout t l =
  match row t l with
  | Some r when r.inodes > 0 -> float_of_int r.out_edges /. float_of_int r.inodes
  | _ -> index_fanout t
let label_extent t l = match row t l with Some r -> r.extent | None -> 0
let label_max_extent t l = match row t l with Some r -> r.max_extent | None -> 0

let label_selectivity t l =
  if t.n_data_nodes = 0 then 0.0
  else float_of_int (label_extent t l) /. float_of_int t.n_data_nodes

let covered_inodes t l m =
  match row t l with Some r -> r.cov.(cap_k (max 0 m)) | None -> 0

let covered_extent t l m =
  match row t l with Some r -> r.covd.(cap_k (max 0 m)) | None -> 0

let uncovered_extent t l m = label_extent t l - covered_extent t l m

let interned t name = Label.Pool.find_opt (Data_graph.pool (Index_graph.data t.idx)) name

let label_inodes_name t name =
  match interned t name with Some l -> label_inodes t l | None -> 0

let label_extent_name t name =
  match interned t name with Some l -> label_extent t l | None -> 0

let observe_cache t ~hits ~misses =
  t.cache_hits <- hits;
  t.cache_misses <- misses

let cache_hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "catalog gen=%d: %d inodes, %d iedges (fanout %.2f), %d data nodes, vcache hit rate %.2f"
    t.gen t.n_inodes t.n_iedges (index_fanout t) t.n_data_nodes (cache_hit_rate t)
