open Dkindex_graph
open Dkindex_core
open Dkindex_pathexpr

type entry = {
  name : string;
  idx : Index_graph.t;
  cat : Stats_catalog.t;
  cache : Validation_cache.t option;
  mutable gen : int;
      (* graph generation the catalog was last swept at — a local
         mirror of [Stats_catalog.generation] so the per-query
         freshness check reads one field per entry *)
}

type t = {
  dg : Data_graph.t;
  mutable entries : entry list;  (* registration order *)
  mutable freq : int array;  (* label code -> observed last-label count *)
  mutable observed : int;
  mutable fallbacks : int;
  plan_cache : (Label.t array, (Plan.t * (Label.t array -> Query_eval.result)) list) Hashtbl.t;
      (* memoized ranked plans per label path, each pre-bound to its
         executor, valid for one generation stamp; see
         [plans_of_path] *)
  mutable cache_stamp : int;
  (* one-entry MRU in front of the hashtable: the serving hot path is
     dominated by runs of the same query *)
  mutable last_path : Label.t array;
  mutable last_plans : (Plan.t * (Label.t array -> Query_eval.result)) list;
}

let create dg =
  {
    dg;
    entries = [];
    freq = [||];
    observed = 0;
    fallbacks = 0;
    plan_cache = Hashtbl.create 64;
    cache_stamp = min_int;
    last_path = [||];
    last_plans = [];
  }

let register t ~name ?cache idx =
  if name = "raw" then invalid_arg "Planner.register: \"raw\" is reserved";
  if List.exists (fun e -> e.name = name) t.entries then
    invalid_arg ("Planner.register: duplicate name " ^ name);
  if not (Index_graph.data idx == t.dg) then
    invalid_arg "Planner.register: index summarizes a different data graph";
  t.entries <- t.entries @ [ { name; idx; cat = Stats_catalog.create idx; cache; gen = -1 } ];
  Hashtbl.reset t.plan_cache;
  t.cache_stamp <- min_int;
  t.last_path <- [||]

let names t = List.map (fun e -> e.name) t.entries
let find_entry t name = List.find_opt (fun e -> e.name = name) t.entries
let find t name = Option.map (fun e -> e.idx) (find_entry t name)
let catalog t name = Option.map (fun e -> e.cat) (find_entry t name)
let data t = t.dg

(* Refresh every catalog and return the family's generation stamp in
   the same pass.  Pulling validation-cache counters only when a sweep
   actually happens is deliberate: ranked plans are memoized against
   the stamp (see [plans_of_path]), so a fresher hit rate could not
   influence anything until the next sweep anyway. *)
let refresh_stamp t =
  let rec go acc = function
    | [] -> acc
    | e :: rest ->
      let g = Index_graph.generation e.idx in
      if g <> e.gen then begin
        (match e.cache with
        | Some c ->
          let hits, misses = Validation_cache.stats c in
          Stats_catalog.observe_cache e.cat ~hits ~misses
        | None -> ());
        Stats_catalog.refresh e.cat;
        e.gen <- g
      end;
      go (acc + g) rest
  in
  go 0 t.entries

let refresh t = ignore (refresh_stamp t)

(* ------------------------------------------------------------------ *)
(* Workload observation: per-label frequency of query endpoints, the
   signal for how likely a validation memo is already warm. *)

let bump_freq t code =
  if code >= Array.length t.freq then begin
    let fresh = Array.make (max 16 ((code + 1) * 2)) 0 in
    Array.blit t.freq 0 fresh 0 (Array.length t.freq);
    t.freq <- fresh
  end;
  t.freq.(code) <- t.freq.(code) + 1;
  t.observed <- t.observed + 1

let observe_path t path =
  let m = Array.length path in
  if m > 0 then bump_freq t (Label.to_int path.(m - 1))

let observe_workload t queries = List.iter (observe_path t) queries
let observed_queries t = t.observed
let fallbacks t = t.fallbacks

(* Share of the observed workload ending at this label — 1.0 before
   any observation (assume the global cache hit rate applies). *)
let repeat_share t code =
  if t.observed = 0 then 1.0
  else if code < Array.length t.freq then
    float_of_int t.freq.(code) /. float_of_int t.observed
  else 0.0

let discount t cat code =
  Float.min 0.95 (Stats_catalog.cache_hit_rate cat *. repeat_share t code)

(* ------------------------------------------------------------------ *)
(* Cost model.  All formulas are documented in DESIGN.md §14; they
   estimate the paper's visit count (index visits + validation data
   visits), which is what Query_eval charges to Cost.t. *)

(* Frontier walk over per-label index populations: visits of a
   label-path traversal, and the estimated final frontier size.  The
   executor charges a visit per matched frontier node, so each step's
   cost is the next frontier: at most the next label's population, and
   at most the current frontier times the mean out-degree of the
   current label's nodes.  Per-label fanout matters — a coarse summary
   (1-index, F&B) splits container elements into many classes, so a
   hub label's fanout sits far above the index-wide mean and the
   frontier saturates at the full label population within a step or
   two, which is exactly what makes those indexes expensive to walk
   even when every matched node is certain. *)
let frontier_walk pops fanouts =
  let m = Array.length pops in
  let f = ref (float_of_int pops.(0)) in
  let visits = ref !f in
  for i = 1 to m - 1 do
    f := Float.min (float_of_int pops.(i)) (!f *. fanouts.(i - 1));
    visits := !visits +. !f
  done;
  (!visits, !f)

let scan_estimates t e (path : Label.t array) =
  let cat = e.cat in
  let m = Array.length path in
  let pops = Array.map (fun l -> Stats_catalog.label_inodes cat l) path in
  let fanouts = Array.map (fun l -> Stats_catalog.label_fanout cat l) path in
  (* Mirror the executor's `Auto direction choice (fewer end-label
     index nodes => backward) so the estimate prices the walk that
     will actually run.  The backward walk crosses the same edges in
     reverse, so its step costs reuse the forward fanouts, shifted. *)
  let backward = pops.(m - 1) < pops.(0) in
  let pops = if backward then Array.init m (fun i -> pops.(m - 1 - i)) else pops in
  let fanouts =
    if backward then Array.init m (fun i -> fanouts.(m - 1 - ((i + 1) mod m))) else fanouts
  in
  let iv, f_final = frontier_walk pops fanouts in
  let last = path.(m - 1) in
  let last_inodes = Stats_catalog.label_inodes cat last in
  let matched_share =
    if last_inodes = 0 then 0.0 else Float.min 1.0 (f_final /. float_of_int last_inodes)
  in
  (* Data nodes sitting in extents not refined far enough for a query
     of m labels (certainty needs k >= m - 1), scaled by how much of
     the label the traversal is expected to match. *)
  let uncovered = Stats_catalog.uncovered_extent cat last (m - 1) in
  let cand = float_of_int uncovered *. matched_share in
  let disc = discount t cat (Label.to_int last) in
  let dv = cand *. float_of_int m *. (1.0 -. disc) in
  (iv, cand, dv, uncovered = 0)

let scan_plan t e path =
  let iv, cand, dv, certain = scan_estimates t e path in
  {
    Plan.access = Plan.Scan e.name;
    est_index_visits = iv;
    est_candidates = cand;
    est_data_visits = dv;
    est_total = iv +. dv;
    certain;
  }

(* Intersecting two candidate sets scans both sides' matched extents
   once (the merge) and validates only the survivors; candidate
   survivorship is estimated under independence within the end label's
   data population. *)
let intersect_plan t ea a eb b path =
  let m = Array.length path in
  let last = path.(m - 1) in
  let pop = float_of_int (max 1 (Stats_catalog.label_extent ea.cat last)) in
  let matched d =
    (* matched data volume on one side: candidates + certain extents *)
    let share =
      let inl = Stats_catalog.label_inodes d.cat last in
      if inl = 0 then 0.0 else 1.0
    in
    float_of_int (Stats_catalog.label_extent d.cat last) *. share
  in
  let cand = a.Plan.est_candidates *. b.Plan.est_candidates /. pop in
  let disc = discount t ea.cat (Label.to_int last) in
  let merge_cost = 0.25 *. (matched ea +. matched eb) in
  let dv = cand *. float_of_int m *. (1.0 -. disc) in
  let iv = a.Plan.est_index_visits +. b.Plan.est_index_visits in
  {
    Plan.access = Plan.Intersect (ea.name, eb.name);
    est_index_visits = iv;
    est_candidates = cand;
    est_data_visits = dv;
    est_total = iv +. merge_cost +. dv;
    certain = false;
  }

let raw_path_plan t path =
  match t.entries with
  | [] ->
    (* No catalog to price from: the raw plan is the only plan, so its
       estimate does not matter — mark it zero. *)
    {
      Plan.access = Plan.Raw;
      est_index_visits = 0.0;
      est_candidates = 0.0;
      est_data_visits = 0.0;
      est_total = 0.0;
      certain = true;
    }
  | e :: _ ->
    let cat = e.cat in
    let pops = Array.map (fun l -> Stats_catalog.label_extent cat l) path in
    let fanouts = Array.map (fun _ -> Stats_catalog.data_fanout cat) path in
    let visits, _ = frontier_walk pops fanouts in
    {
      Plan.access = Plan.Raw;
      est_index_visits = 0.0;
      est_candidates = 0.0;
      est_data_visits = visits;
      est_total = visits;
      certain = true;
    }

(* General expressions: cruder pricing.  The index side pays a sweep
   bounded by the live index nodes; validation is estimated from the
   coverage profile of every mentioned label at the expression's
   shortest word. *)
let expr_scan_plan t e expr =
  let cat = e.cat in
  let pool = Data_graph.pool t.dg in
  let mentioned =
    List.filter_map (fun name -> Label.Pool.find_opt pool name) (Path_ast.labels expr)
  in
  let min_len = max 1 (Path_ast.min_word_length expr) in
  let iv = float_of_int (Stats_catalog.n_inodes cat) in
  let horizon =
    match Path_ast.max_word_length expr with
    | Some mw -> mw - 1
    | None -> Stats_catalog.k_cap
  in
  let uncovered =
    List.fold_left (fun acc l -> acc + Stats_catalog.uncovered_extent cat l horizon) 0 mentioned
  in
  let cand = 0.5 *. float_of_int uncovered in
  let disc =
    match mentioned with
    | [] -> 0.0
    | l :: _ -> discount t cat (Label.to_int l)
  in
  let dv = cand *. float_of_int min_len *. (1.0 -. disc) in
  {
    Plan.access = Plan.Scan e.name;
    est_index_visits = iv;
    est_candidates = cand;
    est_data_visits = dv;
    est_total = iv +. dv;
    certain = uncovered = 0;
  }

let raw_expr_plan t =
  let visits =
    float_of_int (Data_graph.n_nodes t.dg) +. float_of_int (Data_graph.n_edges t.dg)
  in
  {
    Plan.access = Plan.Raw;
    est_index_visits = 0.0;
    est_candidates = 0.0;
    est_data_visits = visits;
    est_total = visits;
    certain = true;
  }

(* ------------------------------------------------------------------ *)
(* Enumeration *)

let intern_path t labels =
  let pool = Data_graph.pool t.dg in
  let interned = List.map (Label.Pool.find_opt pool) labels in
  if List.exists Option.is_none interned then None
  else Some (Array.of_list (List.map Option.get interned))

(* An unknown label means the answer is empty on every access path:
   plan as a raw no-op. *)
let empty_query_plan =
  {
    Plan.access = Plan.Raw;
    est_index_visits = 0.0;
    est_candidates = 0.0;
    est_data_visits = 0.0;
    est_total = 0.0;
    certain = true;
  }

let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

let compute_plans_of_path t path =
  if Array.length path = 0 then [ empty_query_plan ]
  else begin
    let scans = List.map (fun e -> (e, scan_plan t e path)) t.entries in
    let intersects =
      List.filter_map
        (fun ((ea, a), (eb, b)) ->
          if a.Plan.est_candidates > 0.0 && b.Plan.est_candidates > 0.0 then
            Some (intersect_plan t ea a eb b path)
          else None)
        (pairs scans)
    in
    let ranked =
      List.sort Plan.compare (List.map snd scans @ intersects)
    in
    ranked @ [ raw_path_plan t path ]
  end


(* ------------------------------------------------------------------ *)
(* Execution *)

let empty_result () =
  { Query_eval.nodes = []; cost = Cost.create (); n_candidates = 0; n_certain = 0 }

(* Sorted, duplicate-free int array set algebra for the intersection
   executor. *)
let inter_sorted a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (min la lb) 0 in
  let i = ref 0 and j = ref 0 and w = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      out.(!w) <- x;
      incr w;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Array.sub out 0 !w

let diff_sorted a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let i = ref 0 and j = ref 0 and w = ref 0 in
  while !i < la do
    if !j >= lb || a.(!i) < b.(!j) then begin
      out.(!w) <- a.(!i);
      incr w;
      incr i
    end
    else if a.(!i) = b.(!j) then begin
      incr i;
      incr j
    end
    else incr j
  done;
  Array.sub out 0 !w

let dedup_sorted a =
  let n = Array.length a in
  if n = 0 then a
  else begin
    let w = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!w - 1) then begin
        a.(!w) <- a.(i);
        incr w
      end
    done;
    Array.sub a 0 !w
  end

let exec_scan e expr =
  match e.cache with
  | Some cache -> Query_eval.eval_expr ~cache e.idx expr
  | None -> Query_eval.eval_expr e.idx expr

let exec_scan_path e path =
  match e.cache with
  | Some cache -> Query_eval.eval_path ~strategy:`Auto ~cache e.idx path
  | None -> Query_eval.eval_path ~strategy:`Auto e.idx path

(* Intersection: every sound index's matched extents are a superset of
   the answer, and certain extents are subsets of it, so

      answer = certain(A) ∪ certain(B)
             ∪ { u ∈ (matched(A) ∩ matched(B)) \ certain : validate u }.

   [n_certain] counts the certain matched index nodes across both
   sides (Query_eval's convention per index); [n_candidates] counts
   the data nodes actually validated. *)
let exec_intersect t ea eb path =
  let m = Array.length path in
  let cost = Cost.create () in
  let side e =
    let finals, c = Query_eval.eval_path_finals ~strategy:`Auto e.idx path in
    Cost.add cost c;
    let certain, uncertain =
      List.partition (fun id -> (Index_graph.node e.idx id).Index_graph.k >= m - 1) finals
    in
    let extents ids =
      Int_arr.merge_many (List.map (fun id -> (Index_graph.node e.idx id).Index_graph.extent) ids)
    in
    (extents (certain @ uncertain), extents certain, List.length certain)
  in
  let matched_a, certain_a, nca = side ea in
  let matched_b, certain_b, ncb = side eb in
  let certain_all = dedup_sorted (Int_arr.merge certain_a certain_b) in
  let survivors = diff_sorted (inter_sorted matched_a matched_b) certain_all in
  let validate =
    match ea.cache with
    | Some c -> Validation_cache.path_validator c path ~cost
    | None -> Matcher.make_path_validator t.dg path ~cost
  in
  let kept = Array.of_list (List.filter validate (Array.to_list survivors)) in
  {
    Query_eval.nodes = Int_arr.to_list (Int_arr.merge certain_all kept);
    cost;
    n_candidates = Array.length survivors;
    n_certain = nca + ncb;
  }

let exec_raw_path t path =
  let cost = Cost.create () in
  let nodes = Matcher.eval_label_path t.dg path ~cost in
  { Query_eval.nodes; cost; n_candidates = 0; n_certain = 0 }

let exec_raw_expr t expr =
  let cost = Cost.create () in
  let nfa = Nfa.compile (Data_graph.pool t.dg) expr in
  let nodes = Matcher.eval_nfa t.dg nfa ~cost in
  { Query_eval.nodes; cost; n_candidates = 0; n_certain = 0 }

let entry_exn t name =
  match find_entry t name with
  | Some e -> e
  | None -> invalid_arg ("Planner.execute: unregistered index " ^ name)

let execute t plan expr =
  let path () =
    match Path_ast.as_label_seq expr with
    | Some labels -> intern_path t labels
    | None -> None
  in
  match plan.Plan.access with
  | Plan.Raw -> (
    match path () with
    | Some p when Array.length p > 0 -> exec_raw_path t p
    | Some _ -> empty_result ()
    | None -> (
      match Path_ast.as_label_seq expr with
      | Some _ -> empty_result ()  (* label path with unknown labels *)
      | None -> exec_raw_expr t expr))
  | Plan.Scan name -> (
    let e = entry_exn t name in
    match path () with
    | Some p when Array.length p > 0 -> exec_scan_path e p
    | Some _ -> empty_result ()
    | None -> (
      match Path_ast.as_label_seq expr with
      | Some _ -> empty_result ()
      | None -> exec_scan e expr))
  | Plan.Intersect (a, b) -> (
    let ea = entry_exn t a and eb = entry_exn t b in
    match path () with
    | Some p when Array.length p > 0 -> exec_intersect t ea eb p
    | Some _ -> empty_result ()
    | None ->
      invalid_arg "Planner.execute: intersection plans require a plain label path")

(* Ranked plans are memoized per path against a stamp of the family's
   generation counters (computed by [refresh_stamp], which the callers
   below have just run), so the steady-state planned query pays a
   one-entry MRU check or a hashtable probe, not a re-enumeration.
   Each cached plan carries its executor with index entries already
   resolved, so execution skips the by-name lookup too.  Cost
   estimates can go stale against a drifting cache hit rate between
   index mutations, which only reorders plans — every access path
   stays exact. *)
let path_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (Label.equal a.(i) b.(i) && go (i - 1)) in
  go (Array.length a - 1)

let executor_of_plan t plan =
  match plan.Plan.access with
  | Plan.Raw -> exec_raw_path t
  | Plan.Scan name ->
    let e = entry_exn t name in
    exec_scan_path e
  | Plan.Intersect (a, b) ->
    let ea = entry_exn t a and eb = entry_exn t b in
    exec_intersect t ea eb

let plans_of_path t ~stamp path =
  if stamp <> t.cache_stamp then begin
    Hashtbl.reset t.plan_cache;
    t.cache_stamp <- stamp;
    t.last_path <- [||]
  end;
  if path_equal path t.last_path then t.last_plans
  else begin
    let key, ranked =
      match Hashtbl.find_opt t.plan_cache path with
      | Some ranked -> (path, ranked)
      | None ->
        let key = Array.copy path in
        let ranked =
          List.map (fun p -> (p, executor_of_plan t p)) (compute_plans_of_path t path)
        in
        Hashtbl.add t.plan_cache key ranked;
        (key, ranked)
    in
    t.last_path <- key;
    t.last_plans <- ranked;
    ranked
  end

let plans t expr =
  let stamp = refresh_stamp t in
  match Path_ast.as_label_seq expr with
  | Some labels -> (
    match intern_path t labels with
    | Some path -> List.map fst (plans_of_path t ~stamp path)
    | None -> [ empty_query_plan ])
  | None ->
    let scans = List.sort Plan.compare (List.map (fun e -> expr_scan_plan t e expr) t.entries) in
    scans @ [ raw_expr_plan t ]

let choose t expr = List.hd (plans t expr)

let choose_path t path =
  let stamp = refresh_stamp t in
  fst (List.hd (plans_of_path t ~stamp path))

let explain t expr =
  let ranked = plans t expr in
  let header =
    Printf.sprintf "query %s: %d candidate plan(s) over [%s]" (Path_ast.to_string expr)
      (List.length ranked)
      (String.concat ", " (names t @ [ "raw" ]))
  in
  header
  :: List.mapi
       (fun i p ->
         Printf.sprintf "  %d. %s%s" (i + 1) (Plan.describe p) (if i = 0 then "  <- chosen" else ""))
       ranked


(* The fallback chain: try plans in rank order; the raw plan closes
   the chain and cannot fail. *)
let eval_ranked_with t exec ranked =
  let rec go = function
    | [] -> assert false  (* ranked always ends with Raw *)
    | [ last ] -> (last, exec last)
    | p :: rest -> (
      match exec p with
      | r -> (p, r)
      | exception _ ->
        t.fallbacks <- t.fallbacks + 1;
        go rest)
  in
  go ranked

let eval_ranked t ranked expr = eval_ranked_with t (fun p -> execute t p expr) ranked

let eval_planned t expr =
  (match Path_ast.as_label_seq expr with
  | Some labels -> (
    match intern_path t labels with Some p -> observe_path t p | None -> ())
  | None -> ());
  eval_ranked t (plans t expr) expr

let eval_planned_path t path =
  if Array.length path = 0 then (empty_query_plan, empty_result ())
  else begin
    observe_path t path;
    let stamp = refresh_stamp t in
    let rec go = function
      | [] -> assert false  (* ranked always ends with Raw *)
      | [ (p, f) ] -> (p, f path)
      | (p, f) :: rest -> (
        match f path with
        | r -> (p, r)
        | exception _ ->
          t.fallbacks <- t.fallbacks + 1;
          go rest)
    in
    go (plans_of_path t ~stamp path)
  end
