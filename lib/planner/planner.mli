(** Cost-based plan selection across the index family.

    A planner holds a family of access paths over one data graph: any
    number of registered index graphs (D(k), A(k), 1-index,
    label-split, F&B — anything speaking {!Index_graph}) plus the raw
    data graph itself.  For a parsed query it emits every valid plan
    ({!plans}), prices each from the per-index {!Stats_catalog}, and
    executes the cheapest with a deterministic fallback chain
    ({!eval_planned}): plans are tried in rank order and the raw-graph
    evaluation — always last, always executable — closes the chain.

    Catalogs refresh lazily off {!Index_graph.generation}, so a
    planner owned by a serving loop stays correct across updates
    without ever recomputing statistics for an unchanged index.

    {b Estimates never affect answers.}  The cost model only orders
    plans; every plan's executor is exact (index scans validate
    under-refined extents through {!Query_eval}, intersections
    validate the surviving candidates, the raw path is exact by
    construction), so a wrong estimate can cost time, never
    correctness. *)

open Dkindex_graph
open Dkindex_core
open Dkindex_pathexpr

type t

val create : Data_graph.t -> t
(** A planner over the data graph with no indexes yet: only the raw
    access path is available until {!register} is called. *)

val register : t -> name:string -> ?cache:Validation_cache.t -> Index_graph.t -> unit
(** Add an index to the family under a unique name.  [cache] is used
    by this index's scan executor and its hit/miss counters feed the
    catalog's validation discount.  @raise Invalid_argument if the
    name is taken, the name is ["raw"], or the index summarizes a
    different data graph. *)

val names : t -> string list
(** Registered index names, in registration order. *)

val find : t -> string -> Index_graph.t option
val catalog : t -> string -> Stats_catalog.t option
val data : t -> Data_graph.t

val refresh : t -> unit
(** Generation-gated refresh of every catalog, plus a pull of each
    registered cache's hit/miss counters.  Called implicitly by
    {!plans} / {!eval_planned}; O(#indexes) comparisons when nothing
    changed. *)

val observe_workload : t -> Label.t array list -> unit
(** Feed an observed (e.g. mined) workload: per-label query frequencies
    sharpen the validation-cache discount.  {!eval_planned} also
    observes each query it serves, so the discount adapts online. *)

val observed_queries : t -> int

val fallbacks : t -> int
(** Cumulative number of times {!eval_planned} had to skip a failing
    plan and fall through the chain. *)

(** {1 Planning} *)

val plans : t -> Path_ast.t -> Plan.t list
(** Every valid access path for the query, priced and ranked (cheapest
    first, deterministic tie-break).  Always non-empty; the last plan
    is always {!Plan.Raw}.  Label-sequence queries additionally get
    intersection plans for every index pair whose scans both expect
    validation work. *)

val choose : t -> Path_ast.t -> Plan.t

val choose_path : t -> Label.t array -> Plan.t
(** [choose] for a pre-interned label path: the planning step of
    {!eval_planned_path} alone (catalog refresh check + memoized plan
    lookup), without expression conversion or execution. *)

val explain : t -> Path_ast.t -> string list
(** Human-readable ranking: one header line, then one numbered line
    per plan ({!Plan.describe}), the chosen plan marked. *)

(** {1 Execution} *)

val execute : t -> Plan.t -> Path_ast.t -> Query_eval.result
(** Run one specific plan.  @raise Invalid_argument if the plan names
    an unregistered index, or an intersection plan is applied to a
    query that is not a plain label sequence. *)

val eval_planned : t -> Path_ast.t -> Plan.t * Query_eval.result
(** Plan, then execute down the fallback chain; returns the plan that
    actually produced the answer. *)

val eval_planned_path : t -> Label.t array -> Plan.t * Query_eval.result
(** {!eval_planned} for an already-interned label path (the workload
    form); an empty path yields an empty result on the raw plan. *)
