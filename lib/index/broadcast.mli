(** Algorithm 1: the local similarity broadcast algorithm.

    Input: per-label local-similarity requirements mined from the query
    load.  Because Definition 3 demands [k(parent) >= k(child) - 1] on
    every index edge, a requirement on a label forces requirements on
    the labels of its ancestors in the label-split graph.  The
    broadcast processes requirements in decreasing buckets, raising
    each parent label to at least (k - 1); it runs in O(m) over the
    label-split index graph. *)

open Dkindex_graph

val run : Data_graph.t -> reqs:(string * int) list -> int array
(** [run g ~reqs] returns the effective requirement per label code.
    Labels absent from [reqs] start at 0 (the paper's default);
    unknown label names in [reqs] are ignored.
    @raise Invalid_argument on a negative requirement. *)

val label_parents : Data_graph.t -> Int_set.t array
(** Adjacency of the label-split graph: for each label code, the codes
    of labels occurring as a parent of some node with that label. *)
