open Dkindex_graph
open Dkindex_pathexpr

(* One clock slot per interned table (path memo or NFA node memo).
   Tables themselves are never evicted — compiled automata are cheap to
   keep and expensive to rebuild — only their memoized answers are
   dropped, which is exactly what grows without bound under churn. *)
type slot = {
  mutable s_ref : bool;  (* second-chance bit, set on every lookup *)
  s_size : unit -> int;  (* live memoized answers in this table *)
  s_drop : unit -> unit;  (* reset the table's answers *)
}

type nfa_entry = {
  nfa : Nfa.t;
  table : Nfa.table;
  node_memo : (int, bool) Hashtbl.t;
      (* data node -> does some matching path end here?  Both polarities
         are cacheable: [Matcher.node_matches_nfa] is a fixpoint over
         the node's ancestor closure, deterministic on a fixed graph. *)
  nfa_slot : slot;
}

type t = {
  idx : Index_graph.t;
  mutable gen : int;
  path_memos : (int list, (int * int, bool) Hashtbl.t * slot) Hashtbl.t;
      (* label-code word -> (node, position) -> prefix-match answer *)
  nfa_entries : (Path_ast.t, nfa_entry) Hashtbl.t;
  max_entries : int;
  mutable slots : slot array;  (* clock ring; grows, never shrinks *)
  mutable n_slots : int;
  mutable hand : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_max_entries = 1 lsl 20

let create ?(max_entries = default_max_entries) idx =
  if max_entries < 1 then invalid_arg "Validation_cache.create: max_entries < 1";
  {
    idx;
    gen = Index_graph.generation idx;
    path_memos = Hashtbl.create 16;
    nfa_entries = Hashtbl.create 8;
    max_entries;
    slots = Array.make 8 { s_ref = false; s_size = (fun () -> 0); s_drop = ignore };
    n_slots = 0;
    hand = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let index t = t.idx

let add_slot t s =
  if t.n_slots = Array.length t.slots then begin
    let bigger = Array.make (2 * t.n_slots) s in
    Array.blit t.slots 0 bigger 0 t.n_slots;
    t.slots <- bigger
  end;
  t.slots.(t.n_slots) <- s;
  t.n_slots <- t.n_slots + 1

let entry_count t =
  let total = ref 0 in
  for i = 0 to t.n_slots - 1 do
    total := !total + t.slots.(i).s_size ()
  done;
  !total

(* Clock (second-chance) sweep: slots touched since the last sweep get
   their bit cleared and survive; the rest have their answers dropped,
   until the total is back under the cap.  Two full revolutions always
   suffice (after one revolution every bit is clear). *)
let enforce_cap t =
  let total = ref (entry_count t) in
  if !total > t.max_entries && t.n_slots > 0 then begin
    let steps = ref (2 * t.n_slots) in
    while !total > t.max_entries && !steps > 0 do
      let s = t.slots.(t.hand) in
      t.hand <- (t.hand + 1) mod t.n_slots;
      decr steps;
      if s.s_ref then s.s_ref <- false
      else begin
        let sz = s.s_size () in
        if sz > 0 then begin
          s.s_drop ();
          t.evictions <- t.evictions + sz;
          total := !total - sz
        end
      end
    done
  end

let invalidate t =
  Hashtbl.iter (fun _ (memo, _) -> Hashtbl.reset memo) t.path_memos;
  (* Compiled automata depend only on the expression and the label
     pool, which never change under an index mutation — only the
     per-node answers go. *)
  Hashtbl.iter (fun _ e -> Hashtbl.reset e.node_memo) t.nfa_entries;
  t.gen <- Index_graph.generation t.idx

(* Every lookup passes through here: a generation moved by any index or
   data mutation (split, promotion, demotion, edge updates — all bump
   it, see {!Index_graph.generation}) drops the memoized answers before
   they can be served stale. *)
let sync t = if Index_graph.generation t.idx <> t.gen then invalidate t

let path_validator t path ~cost =
  sync t;
  enforce_cap t;
  let key = Array.fold_right (fun l acc -> Label.to_int l :: acc) path [] in
  let memo =
    match Hashtbl.find_opt t.path_memos key with
    | Some (memo, slot) ->
      t.hits <- t.hits + 1;
      slot.s_ref <- true;
      memo
    | None ->
      t.misses <- t.misses + 1;
      let memo = Hashtbl.create 256 in
      let slot =
        {
          s_ref = true;
          s_size = (fun () -> Hashtbl.length memo);
          s_drop = (fun () -> Hashtbl.reset memo);
        }
      in
      Hashtbl.add t.path_memos key (memo, slot);
      add_slot t slot;
      memo
  in
  Matcher.make_path_validator ~memo (Index_graph.data t.idx) path ~cost

let nfa_entry t expr =
  sync t;
  enforce_cap t;
  match Hashtbl.find_opt t.nfa_entries expr with
  | Some e ->
    t.hits <- t.hits + 1;
    e.nfa_slot.s_ref <- true;
    e
  | None ->
    t.misses <- t.misses + 1;
    let data = Index_graph.data t.idx in
    let nfa = Nfa.compile (Data_graph.pool data) expr in
    let table = Nfa.transition_table nfa ~n_labels:(Label.Pool.count (Data_graph.pool data)) in
    let node_memo = Hashtbl.create 256 in
    let slot =
      {
        s_ref = true;
        s_size = (fun () -> Hashtbl.length node_memo);
        s_drop = (fun () -> Hashtbl.reset node_memo);
      }
    in
    let e = { nfa; table; node_memo; nfa_slot = slot } in
    Hashtbl.add t.nfa_entries expr e;
    add_slot t slot;
    e

let nfa t expr =
  let e = nfa_entry t expr in
  (e.nfa, e.table)

let nfa_validator t expr ~cost =
  let e = nfa_entry t expr in
  let data = Index_graph.data t.idx in
  fun u ->
    match Hashtbl.find_opt e.node_memo u with
    | Some r -> r
    | None ->
      let r = Matcher.node_matches_nfa data e.nfa ~node:u ~cost in
      Hashtbl.add e.node_memo u r;
      r

let stats t = (t.hits, t.misses)
let evictions t = t.evictions
