open Dkindex_graph
open Dkindex_pathexpr

type nfa_entry = {
  nfa : Nfa.t;
  table : Nfa.table;
  node_memo : (int, bool) Hashtbl.t;
      (* data node -> does some matching path end here?  Both polarities
         are cacheable: [Matcher.node_matches_nfa] is a fixpoint over
         the node's ancestor closure, deterministic on a fixed graph. *)
}

type t = {
  idx : Index_graph.t;
  mutable gen : int;
  path_memos : (int list, (int * int, bool) Hashtbl.t) Hashtbl.t;
      (* label-code word -> (node, position) -> prefix-match answer *)
  nfa_entries : (Path_ast.t, nfa_entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create idx =
  {
    idx;
    gen = Index_graph.generation idx;
    path_memos = Hashtbl.create 16;
    nfa_entries = Hashtbl.create 8;
    hits = 0;
    misses = 0;
  }

let index t = t.idx

let invalidate t =
  Hashtbl.reset t.path_memos;
  (* Compiled automata depend only on the expression and the label
     pool, which never change under an index mutation — only the
     per-node answers go. *)
  Hashtbl.iter (fun _ e -> Hashtbl.reset e.node_memo) t.nfa_entries;
  t.gen <- Index_graph.generation t.idx

(* Every lookup passes through here: a generation moved by any index or
   data mutation (split, promotion, demotion, edge updates — all bump
   it, see {!Index_graph.generation}) drops the memoized answers before
   they can be served stale. *)
let sync t = if Index_graph.generation t.idx <> t.gen then invalidate t

let path_validator t path ~cost =
  sync t;
  let key = Array.fold_right (fun l acc -> Label.to_int l :: acc) path [] in
  let memo =
    match Hashtbl.find_opt t.path_memos key with
    | Some memo ->
      t.hits <- t.hits + 1;
      memo
    | None ->
      t.misses <- t.misses + 1;
      let memo = Hashtbl.create 256 in
      Hashtbl.add t.path_memos key memo;
      memo
  in
  Matcher.make_path_validator ~memo (Index_graph.data t.idx) path ~cost

let nfa_entry t expr =
  sync t;
  match Hashtbl.find_opt t.nfa_entries expr with
  | Some e ->
    t.hits <- t.hits + 1;
    e
  | None ->
    t.misses <- t.misses + 1;
    let data = Index_graph.data t.idx in
    let nfa = Nfa.compile (Data_graph.pool data) expr in
    let table = Nfa.transition_table nfa ~n_labels:(Label.Pool.count (Data_graph.pool data)) in
    let e = { nfa; table; node_memo = Hashtbl.create 256 } in
    Hashtbl.add t.nfa_entries expr e;
    e

let nfa t expr =
  let e = nfa_entry t expr in
  (e.nfa, e.table)

let nfa_validator t expr ~cost =
  let e = nfa_entry t expr in
  let data = Index_graph.data t.idx in
  fun u ->
    match Hashtbl.find_opt e.node_memo u with
    | Some r -> r
    | None ->
      let r = Matcher.node_matches_nfa data e.nfa ~node:u ~cost in
      Hashtbl.add e.node_memo u r;
      r

let stats t = (t.hits, t.misses)
