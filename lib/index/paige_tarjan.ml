open Dkindex_graph

(* The relational coarsest partition algorithm of Paige and Tarjan,
   instantiated for backward bisimilarity: x E p iff p is a parent of
   x, so E^{-1}(S) is "nodes with a parent in S" and a stable partition
   groups nodes whose parents hit exactly the same blocks — Definition
   1 of the D(k) paper.

   P-blocks are intrusive doubly-linked lists over node ids; X-blocks
   group P-blocks and the worklist holds compound X-blocks (those with
   at least two P-blocks).  Each refinement picks the smaller half of a
   compound block as the splitter B, splits every P-block into
   (parents-in-B-and-elsewhere | parents-only-in-B | no-parents-in-B)
   using per-(node, X-block) parent counts, and updates the counts.
   Every node changes splitter side O(log n) times, giving the
   O(m log n) bound. *)

type state = {
  g : Data_graph.t;
  (* intrusive lists *)
  next : int array;
  prev : int array;
  pblock_of : int array;  (* node -> P-block *)
  head : int array;  (* P-block -> first node or -1 *)
  size : int array;  (* P-block -> size *)
  mutable n_pblocks : int;
  xblock_of : int array;  (* P-block -> X-block *)
  xmembers : int list array;  (* X-block -> its P-blocks *)
  xcount : int array;  (* X-block -> number of P-blocks *)
  mutable n_xblocks : int;
  counts : (int, int) Hashtbl.t;
      (* node * max_blocks + X-block -> parents inside.  The packed
         immediate-int key avoids allocating a tuple per lookup and the
         tuple traversal inside the generic hash. *)
  stride : int;  (* = max_blocks, the packing factor *)
  mutable worklist : int list;  (* compound X-blocks *)
  queued : bool array;  (* X-block -> already on the worklist *)
}

let count_get st x xb =
  match Hashtbl.find st.counts ((x * st.stride) + xb) with
  | c -> c
  | exception Not_found -> 0

let count_set st x xb v =
  let key = (x * st.stride) + xb in
  if v > 0 then Hashtbl.replace st.counts key v else Hashtbl.remove st.counts key

let detach st x =
  let b = st.pblock_of.(x) in
  let p = st.prev.(x) and n = st.next.(x) in
  if p >= 0 then st.next.(p) <- n else st.head.(b) <- n;
  if n >= 0 then st.prev.(n) <- p;
  st.size.(b) <- st.size.(b) - 1

let attach st x b =
  let h = st.head.(b) in
  st.next.(x) <- h;
  st.prev.(x) <- -1;
  if h >= 0 then st.prev.(h) <- x;
  st.head.(b) <- x;
  st.pblock_of.(x) <- b;
  st.size.(b) <- st.size.(b) + 1

let iter_pblock st b f =
  let x = ref st.head.(b) in
  while !x >= 0 do
    let nx = st.next.(!x) in
    f !x;
    x := nx
  done

let fresh_pblock st xb =
  let b = st.n_pblocks in
  st.n_pblocks <- b + 1;
  st.head.(b) <- -1;
  st.size.(b) <- 0;
  st.xblock_of.(b) <- xb;
  st.xmembers.(xb) <- b :: st.xmembers.(xb);
  st.xcount.(xb) <- st.xcount.(xb) + 1;
  b

let enqueue_if_compound st xb =
  if st.xcount.(xb) >= 2 && not st.queued.(xb) then begin
    st.queued.(xb) <- true;
    st.worklist <- xb :: st.worklist
  end

(* Split the P-blocks of the marked nodes: every marked node moves into
   a sibling block (per original block).  Calls [on_new old_b new_b]
   for every split that actually separated a block. *)
let split_marked st marked ~on_new =
  let sibling : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let b = st.pblock_of.(x) in
      let b' =
        match Hashtbl.find_opt sibling b with
        | Some b' -> b'
        | None ->
          let b' = fresh_pblock st st.xblock_of.(b) in
          Hashtbl.add sibling b b';
          b'
      in
      detach st x;
      attach st x b')
    marked;
  Hashtbl.iter
    (fun b b' ->
      if st.size.(b) = 0 then begin
        (* everything moved: undo the split by renaming, keeping b'.
           The X-block gained no real block. *)
        st.xcount.(st.xblock_of.(b)) <- st.xcount.(st.xblock_of.(b)) - 1;
        st.xmembers.(st.xblock_of.(b)) <-
          List.filter (fun p -> p <> b) st.xmembers.(st.xblock_of.(b))
      end
      else begin
        on_new b b';
        enqueue_if_compound st st.xblock_of.(b)
      end)
    sibling

let stable_partition g =
  let n = Data_graph.n_nodes g in
  let max_blocks = (4 * n) + 8 in
  let st =
    {
      g;
      next = Array.make n (-1);
      prev = Array.make n (-1);
      pblock_of = Array.make n 0;
      head = Array.make max_blocks (-1);
      size = Array.make max_blocks 0;
      n_pblocks = 0;
      xblock_of = Array.make max_blocks 0;
      xmembers = Array.make max_blocks [];
      xcount = Array.make max_blocks 0;
      n_xblocks = 0;
      counts = Hashtbl.create (4 * n);
      stride = max_blocks;
      worklist = [];
      queued = Array.make max_blocks false;
    }
  in
  (* Splitter scratch, reused across iterations: parents-in-B counts as
     a flat array plus an explicit stack of touched nodes to reset. *)
  let count_b = Array.make n 0 in
  let touched = Array.make n 0 in
  let n_touched = ref 0 in
  (* X-block 0 holds everything. *)
  st.n_xblocks <- 1;
  (* Initial P: the label partition. *)
  let label_block : (int, int) Hashtbl.t = Hashtbl.create 64 in
  for x = n - 1 downto 0 do
    let code = Label.to_int (Data_graph.label g x) in
    let b =
      match Hashtbl.find_opt label_block code with
      | Some b -> b
      | None ->
        let b = fresh_pblock st 0 in
        Hashtbl.add label_block code b;
        b
    in
    attach st x b
  done;
  (* counts w.r.t. the universe = in-degree *)
  for x = 0 to n - 1 do
    let d = Data_graph.in_degree g x in
    if d > 0 then count_set st x 0 d
  done;
  (* Make P stable w.r.t. the universe: a block mixing parentless and
     parented nodes must separate them. *)
  let mixed_block b =
    let has_orphan = ref false and has_parented = ref false in
    iter_pblock st b (fun y ->
        if Data_graph.in_degree g y = 0 then has_orphan := true else has_parented := true);
    !has_orphan && !has_parented
  in
  let orphans = ref [] in
  for x = 0 to n - 1 do
    if Data_graph.in_degree g x = 0 && mixed_block st.pblock_of.(x) then
      orphans := x :: !orphans
  done;
  split_marked st !orphans ~on_new:(fun _ _ -> ());
  enqueue_if_compound st 0;
  (* Main refinement loop. *)
  while st.worklist <> [] do
    let s =
      match st.worklist with
      | s :: rest ->
        st.worklist <- rest;
        st.queued.(s) <- false;
        s
      | [] -> assert false
    in
    if st.xcount.(s) >= 2 then begin
      (* B: the smaller of the first two P-blocks of S. *)
      let b, rest =
        match st.xmembers.(s) with
        | b1 :: b2 :: rest ->
          if st.size.(b1) <= st.size.(b2) then (b1, b2 :: rest) else (b2, b1 :: rest)
        | _ -> assert false
      in
      st.xmembers.(s) <- rest;
      st.xcount.(s) <- st.xcount.(s) - 1;
      (* New X-block holding only B. *)
      let xb = st.n_xblocks in
      st.n_xblocks <- xb + 1;
      st.xmembers.(xb) <- [ b ];
      st.xcount.(xb) <- 1;
      st.xblock_of.(b) <- xb;
      if st.xcount.(s) >= 2 then enqueue_if_compound st s;
      (* count_b.(x) = parents of x inside B, with [touched] recording
         which entries are live so the reset is O(|touched|). *)
      n_touched := 0;
      iter_pblock st b (fun p ->
          Data_graph.iter_children g p (fun c ->
              if count_b.(c) = 0 then begin
                touched.(!n_touched) <- c;
                incr n_touched
              end;
              count_b.(c) <- count_b.(c) + 1));
      let marked = ref [] in
      for i = !n_touched - 1 downto 0 do
        marked := touched.(i) :: !marked
      done;
      (* (1) split by E^{-1}(B): nodes with some parent in B move out *)
      split_marked st !marked ~on_new:(fun _ _ -> ());
      (* (2) split by E^{-1}(B) \ E^{-1}(S-B): among the touched, nodes
         whose every S-parent lies in B move out of their block. *)
      let only_b =
        List.filter (fun x -> count_get st x s = count_b.(x)) !marked
      in
      split_marked st only_b ~on_new:(fun _ _ -> ());
      (* (3) update counts: move B's share from S to XB. *)
      for i = 0 to !n_touched - 1 do
        let x = touched.(i) in
        let cb = count_b.(x) in
        count_set st x xb cb;
        count_set st x s (count_get st x s - cb);
        count_b.(x) <- 0
      done;
      enqueue_if_compound st xb
    end
  done;
  (* Emit a dense partition. *)
  let dense = Hashtbl.create st.n_pblocks in
  let n_classes = ref 0 in
  let cls =
    Array.init n (fun x ->
        let b = st.pblock_of.(x) in
        match Hashtbl.find_opt dense b with
        | Some c -> c
        | None ->
          let c = !n_classes in
          incr n_classes;
          Hashtbl.add dense b c;
          c)
  in
  { Kbisim.cls; n_classes = !n_classes; parent_class = Array.init !n_classes Fun.id }

let build_one_index g =
  let p = stable_partition g in
  Index_graph.of_partition g ~cls:p.Kbisim.cls ~n_classes:p.Kbisim.n_classes
    ~k_of_class:(fun _ -> Index_graph.k_infinite)
    ~req_of_class:(fun _ -> Index_graph.k_infinite)
