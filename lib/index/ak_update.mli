(** Edge-addition update for the A(k)-index — the baseline of the
    paper's Table 1.

    No native A(k) update algorithm existed, so the paper adapts the
    1-index propagate strategy of Kaushik et al. (VLDB 2002): the
    target node of the new edge is moved into its own index node, and
    descendant index nodes within distance (k - 1) are re-partitioned
    against the {e data graph} until their extents are again truly
    k-bisimilar.  The data-graph touching is what makes this expensive
    as k grows — the effect Table 1 measures. *)

val add_edge : Index_graph.t -> k:int -> int -> int -> unit
(** [add_edge t ~k u v] with data node ids; [t] must be an A(k)-index
    (or any index whose nodes all carry local similarity [k]). *)

val add_subgraph :
  Index_graph.t ->
  k:int ->
  Dkindex_graph.Data_graph.t ->
  Dkindex_graph.Data_graph.t * Index_graph.t
(** Document insertion for the A(k)-index — the paper notes that the
    1-index update for document insertion "can be easily generalized to
    apply in the A(k)-index context" (Section 2).  Builds the A(k) of
    the new document, grafts it beside the old index, and recomputes
    the A(k) partition over the combined index graph (the same
    Theorem 2 machinery as {!Dk_update.add_subgraph}, with uniform
    requirements).  Returns the combined data graph and its index. *)
