open Dkindex_graph

type partition = { cls : int array; n_classes : int; parent_class : int array }

let label_partition g =
  let n = Data_graph.n_nodes g in
  let cls = Array.make n 0 in
  (* Label codes are dense pool indices, so a flat array replaces the
     hash table (and the option its lookup would allocate per node). *)
  let by_label = Array.make (Label.Pool.count (Data_graph.pool g)) (-1) in
  let count = ref 0 in
  for u = 0 to n - 1 do
    let code = Label.to_int (Data_graph.label g u) in
    let c =
      let c = by_label.(code) in
      if c >= 0 then c
      else begin
        let c = !count in
        incr count;
        by_label.(code) <- c;
        c
      end
    in
    cls.(u) <- c
  done;
  { cls; n_classes = !count; parent_class = Array.init !count Fun.id }

let class_labels g p =
  let labels = Array.make p.n_classes (Label.of_int 0) in
  Data_graph.iter_nodes g (fun u -> labels.(p.cls.(u)) <- Data_graph.label g u);
  labels

(* A node's key for the next round is (own class, set of adjacent
   classes).  Rather than materializing and sorting that set per node,
   we hash it into a 64-bit signature with an order-insensitive combine
   (sum + xor of mixed class ids, so duplicates are dropped by a stamp
   array and ordering never matters), intern signatures in an
   int-keyed table, and verify every signature hit against a stored
   representative node to rule out collisions.  Per-node work is
   O(degree) with no lists built. *)

let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x27D4EB2F165667C5 in
  x lxor (x lsr 32)

(* The refinement passes read adjacency through the graph's flat CSR
   arrays (offsets [off], neighbors [arr]) rather than the
   closure-taking iterators: a closure per node would itself be a
   per-node allocation, and these loops must stay allocation-free. *)

(* Signature of node [u]: ineligible classes pass through unsplit, so
   their nodes hash as if they had no adjacent classes — the same key
   shape an eligible node with no neighbors gets (matching the
   list-key semantics, where both were [(c, [])]).  [seen] is a
   per-class stamp array, stamped with the node id, so deduplication
   needs no clearing between nodes. *)
let signature p ~eligible ~seen ~off ~arr u =
  let c = p.cls.(u) in
  if eligible c then begin
    let sum = ref 0 and xr = ref 0 and cnt = ref 0 in
    for i = Int_vec.get off u to Int_vec.get off (u + 1) - 1 do
      let pc = p.cls.(Int_vec.unsafe_get arr i) in
      if seen.(pc) <> u then begin
        seen.(pc) <- u;
        let h = mix pc in
        sum := !sum + h;
        xr := !xr lxor h;
        incr cnt
      end
    done;
    mix (c + (!sum lxor (!xr * 31) lxor (!cnt * 0x27D4EB2F165667C5)))
  end
  else mix c

(* Exact key equality of node [u] against representative [rep] (both
   known to be in old class [c]): ineligible classes compare equal
   outright; otherwise their adjacent-class sets must coincide.  The
   ticket-stamped [vstamp] array marks the representative's distinct
   classes with ticket [t] and the candidate's matches with [t + 1],
   so set equality is two O(degree) scans with no clearing. *)
let same_key p ~eligible ~vstamp ~ticket ~off ~arr u ~rep c =
  if not (eligible c) then true
  else begin
    ticket := !ticket + 2;
    let t = !ticket in
    let distinct = ref 0 in
    for i = Int_vec.get off rep to Int_vec.get off (rep + 1) - 1 do
      let pc = p.cls.(Int_vec.unsafe_get arr i) in
      if vstamp.(pc) <> t then begin
        vstamp.(pc) <- t;
        incr distinct
      end
    done;
    let ok = ref true and matched = ref 0 in
    for i = Int_vec.get off u to Int_vec.get off (u + 1) - 1 do
      let pc = p.cls.(Int_vec.unsafe_get arr i) in
      if vstamp.(pc) = t then begin
        vstamp.(pc) <- t + 1;
        incr matched
      end
      else if vstamp.(pc) <> t + 1 then ok := false
    done;
    !ok && !matched = !distinct
  end

(* Interning state: per-class side arrays (growable, doubled) plus an
   int-keyed table from signature to the head of a chain of classes
   sharing that signature (collisions are resolved by [same_key]). *)
type intern = {
  mutable n : int;
  mutable rep : int array;  (* class -> representative node *)
  mutable old : int array;  (* class -> source class in the argument partition *)
  mutable sg : int array;  (* class -> signature *)
  mutable nxt : int array;  (* class -> next class with the same signature *)
  table : (int, int) Hashtbl.t;  (* signature -> chain head *)
}

let intern_create hint =
  let cap = max 256 hint in
  {
    n = 0;
    rep = Array.make cap 0;
    old = Array.make cap 0;
    sg = Array.make cap 0;
    nxt = Array.make cap (-1);
    table = Hashtbl.create (2 * cap);
  }

let grow a = Array.append a (Array.make (Array.length a) 0)

let intern_push it ~rep ~old ~sg ~nxt =
  if it.n = Array.length it.rep then begin
    it.rep <- grow it.rep;
    it.old <- grow it.old;
    it.sg <- grow it.sg;
    it.nxt <- grow it.nxt
  end;
  let cid = it.n in
  it.n <- cid + 1;
  it.rep.(cid) <- rep;
  it.old.(cid) <- old;
  it.sg.(cid) <- sg;
  it.nxt.(cid) <- nxt;
  cid

(* Find or allocate the class of node [u] with signature [sg] and old
   class [c].  A plain while-loop over the chain: no closure, no
   allocation on the hit path (the common one). *)
let intern_assign it p ~eligible ~vstamp ~ticket ~off ~arr u sg c =
  let head = try Hashtbl.find it.table sg with Not_found -> -1 in
  let cid = ref head and found = ref (-1) in
  while !found < 0 && !cid >= 0 do
    if
      it.old.(!cid) = c
      && same_key p ~eligible ~vstamp ~ticket ~off ~arr u ~rep:it.rep.(!cid) c
    then found := !cid
    else cid := it.nxt.(!cid)
  done;
  if !found >= 0 then !found
  else begin
    let cid = intern_push it ~rep:u ~old:c ~sg ~nxt:head in
    Hashtbl.replace it.table sg cid;
    cid
  end

let refine_gen ?(domains = 1) g p ~eligible ~off ~arr =
  let n = Data_graph.n_nodes g in
  let nc = p.n_classes in
  let cls = Array.make n 0 in
  if domains <= 1 || n < 4096 then begin
    (* Sequential: one fused pass computing each node's signature and
       assigning its class. *)
    let seen = Array.make nc (-1) in
    let vstamp = Array.make nc 0 in
    let ticket = ref 0 in
    let it = intern_create nc in
    (* An ineligible class passes through unsplit, so all its nodes land
       in one new class: resolve it once and skip the hash lookup for
       the rest of the class. *)
    let direct = Array.make nc (-1) in
    for u = 0 to n - 1 do
      let c = p.cls.(u) in
      if not (eligible c) then begin
        let d = direct.(c) in
        if d >= 0 then cls.(u) <- d
        else begin
          let cid = intern_assign it p ~eligible ~vstamp ~ticket ~off ~arr u (mix c) c in
          direct.(c) <- cid;
          cls.(u) <- cid
        end
      end
      else begin
        let sg = signature p ~eligible ~seen ~off ~arr u in
        cls.(u) <- intern_assign it p ~eligible ~vstamp ~ticket ~off ~arr u sg c
      end
    done;
    ({ cls; n_classes = it.n; parent_class = Array.sub it.old 0 it.n }, it.n <> nc)
  end
  else begin
    (* Parallel: each domain interns its contiguous chunk of nodes
       into a local table (local class ids ascend by first occurrence
       within the chunk, written into [cls] as placeholders); the
       local tables are then merged sequentially in domain order.
       Because the chunks partition [0 .. n) in ascending order, the
       merge meets keys in exactly global first-occurrence order, so
       class ids come out bit-for-bit equal to the sequential pass.
       A final parallel pass remaps placeholders through the per-domain
       translation tables. *)
    let chunk = (n + domains - 1) / domains in
    let locals = Array.make domains None in
    let worker d () =
      let lo = d * chunk and hi = min n ((d + 1) * chunk) in
      let seen = Array.make nc (-1) in
      let vstamp = Array.make nc 0 in
      let ticket = ref 0 in
      let it = intern_create (1 + ((nc - 1) / domains)) in
      let direct = Array.make nc (-1) in
      for u = lo to hi - 1 do
        let c = p.cls.(u) in
        if not (eligible c) then begin
          let d = direct.(c) in
          if d >= 0 then cls.(u) <- d
          else begin
            let cid = intern_assign it p ~eligible ~vstamp ~ticket ~off ~arr u (mix c) c in
            direct.(c) <- cid;
            cls.(u) <- cid
          end
        end
        else begin
          let sg = signature p ~eligible ~seen ~off ~arr u in
          cls.(u) <- intern_assign it p ~eligible ~vstamp ~ticket ~off ~arr u sg c
        end
      done;
      locals.(d) <- Some it
    in
    let spawned = List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
    worker 0 ();
    List.iter Domain.join spawned;
    let vstamp = Array.make nc 0 in
    let ticket = ref 0 in
    let global = intern_create nc in
    let trans =
      Array.map
        (function
          | None -> [||]
          | Some it ->
            Array.init it.n (fun lid ->
                intern_assign global p ~eligible ~vstamp ~ticket ~off ~arr it.rep.(lid)
                  it.sg.(lid) it.old.(lid)))
        locals
    in
    let remap d () =
      let lo = d * chunk and hi = min n ((d + 1) * chunk) in
      let t = trans.(d) in
      for u = lo to hi - 1 do
        cls.(u) <- t.(cls.(u))
      done
    in
    let spawned = List.init (domains - 1) (fun d -> Domain.spawn (remap (d + 1))) in
    remap 0 ();
    List.iter Domain.join spawned;
    ( { cls; n_classes = global.n; parent_class = Array.sub global.old 0 global.n },
      global.n <> nc )
  end

(* External-memory refinement (after Hellings et al., "I/O efficient
   bisimulation partitioning"): instead of interning keys in a hash
   table, write each node's exact key as a sorted record
   [old class; #distinct parent classes; those classes ascending; node id]
   to an external sorter, then group equal keys in one merged scan.
   RAM use is O(n) words (class arrays) regardless of m — the O(m)
   key data lives in the sorter's spill runs, and adjacency is read
   once in CSR order (sequential page faults on a mapped graph).

   Numbering: within a group records sort by the trailing node id, so
   the group's first record carries its minimum node; ranking groups
   by that minimum reproduces the first-occurrence class numbering of
   the in-RAM pass exactly — the two paths agree bit-for-bit.  An
   ineligible class emits [c; 0; u] for every node, which is also the
   key an eligible class of parentless nodes gets; the shapes can
   never meet, because eligibility is a property of the class. *)
let refine_external ?tmp_dir ?mem_budget g p ~eligible ~off ~arr =
  let n = Data_graph.n_nodes g in
  let nc = p.n_classes in
  let sorter = Ext_sort.Records.create ?mem_budget ?tmp_dir () in
  Fun.protect ~finally:(fun () -> Ext_sort.Records.close sorter) @@ fun () ->
  let scratch = ref (Array.make 64 0) in
  let seen = Array.make nc (-1) in
  for u = 0 to n - 1 do
    let c = p.cls.(u) in
    if eligible c then begin
      let lo = Int_vec.get off u and hi = Int_vec.get off (u + 1) in
      if Array.length !scratch < hi - lo + 3 then
        scratch := Array.make (2 * (hi - lo + 3)) 0;
      let s = !scratch in
      let d = ref 0 in
      for i = lo to hi - 1 do
        let pc = p.cls.(Int_vec.unsafe_get arr i) in
        if seen.(pc) <> u then begin
          seen.(pc) <- u;
          s.(2 + !d) <- pc;
          incr d
        end
      done;
      Int_arr.sort_range s ~lo:2 ~hi:(2 + !d);
      s.(0) <- c;
      s.(1) <- !d;
      s.(2 + !d) <- u;
      Ext_sort.Records.add sorter s ~len:(3 + !d)
    end
    else begin
      let s = !scratch in
      s.(0) <- c;
      s.(1) <- 0;
      s.(2) <- u;
      Ext_sort.Records.add sorter s ~len:3
    end
  done;
  (* Merged scan: records with equal key prefixes form one new class. *)
  let cls_prov = Int_vec.create n in
  let cap0 = max 256 nc in
  let min_u = ref (Array.make cap0 0) in
  let old_c = ref (Array.make cap0 0) in
  let key = ref (Array.make 64 0) in
  let key_len = ref (-1) in
  let gid = ref (-1) in
  Ext_sort.Records.iter_merged sorter (fun buf len ->
      let klen = len - 1 in
      let same =
        !key_len = klen
        &&
        let i = ref 0 in
        while !i < klen && (!key).(!i) = buf.(!i) do
          incr i
        done;
        !i = klen
      in
      let u = buf.(klen) in
      if not same then begin
        incr gid;
        if Array.length !key < klen then key := Array.make (2 * klen) 0;
        Array.blit buf 0 !key 0 klen;
        key_len := klen;
        if !gid = Array.length !min_u then begin
          min_u := Array.append !min_u (Array.make !gid 0);
          old_c := Array.append !old_c (Array.make !gid 0)
        end;
        (!min_u).(!gid) <- u;
        (!old_c).(!gid) <- buf.(0)
      end;
      Int_vec.set cls_prov u !gid);
  let ng = !gid + 1 in
  (* Rank groups by their minimum node = global first occurrence. *)
  let order = Array.init ng Fun.id in
  let min_u = !min_u and old_c = !old_c in
  Array.sort (fun a b -> Int.compare min_u.(a) min_u.(b)) order;
  let final = Array.make ng 0 in
  Array.iteri (fun rank grp -> final.(grp) <- rank) order;
  let cls = Array.init n (fun u -> final.(Int_vec.get cls_prov u)) in
  let parent_class = Array.init ng (fun rank -> old_c.(order.(rank))) in
  ({ cls; n_classes = ng; parent_class }, ng <> nc)

type mode = [ `Auto | `In_ram | `External ]

(* Auto cutover: below this many edges the in-RAM hash-interning path
   (with its parallel option) wins easily; above it, key records no
   longer fit comfortably in RAM and the sort/scan pass takes over. *)
let auto_threshold = 1 lsl 24

let resolve_mode mode g : [ `In_ram | `External ] =
  match mode with
  | (`In_ram | `External) as m -> m
  | `Auto -> if Data_graph.n_edges g >= auto_threshold then `External else `In_ram

let refine_dispatch ?domains ~mode g p ~eligible ~off ~arr =
  match resolve_mode mode g with
  | `In_ram -> refine_gen ?domains g p ~eligible ~off ~arr
  | `External -> refine_external g p ~eligible ~off ~arr

let refine ?domains ?(mode = `Auto) g p ~eligible =
  let off, arr = Data_graph.csr_parents g in
  refine_dispatch ?domains ~mode g p ~eligible ~off ~arr

let refine_by_children ?domains ?(mode = `Auto) g p =
  let off, arr = Data_graph.csr_children g in
  refine_dispatch ?domains ~mode g p ~eligible:(fun _ -> true) ~off ~arr

(* Round-to-round eligibility.  When a round is over, a class of the
   new partition can only split in the next round if some node in it
   has a parent whose class just split: classes formed by earlier
   rounds hold nodes with equal parent-class sets, and an unsplit
   parent class changes those sets only by the uniform old->new
   renaming, which preserves their equality.  Driving [refine] with
   that eligible set turns late rounds (where almost nothing moves)
   into O(n) pass-throughs instead of full re-hashing passes, and an
   empty set proves stability without a confirming round.  Because
   pass-through and no-split classes land on the same first-occurrence
   ids either way, partitions and numbering stay bit-for-bit identical
   to always-eligible refinement. *)
let next_eligible ~off ~arr n p p' =
  let kids = Array.make p.n_classes 0 in
  Array.iter (fun oc -> kids.(oc) <- kids.(oc) + 1) p'.parent_class;
  (* new class -> did its source class split this round *)
  let moved = Array.map (fun oc -> kids.(oc) >= 2) p'.parent_class in
  let e = Array.make p'.n_classes false in
  for u = 0 to n - 1 do
    let hot = ref false in
    for i = Int_vec.get off u to Int_vec.get off (u + 1) - 1 do
      if moved.(p'.cls.(Int_vec.unsafe_get arr i)) then hot := true
    done;
    if !hot then e.(p'.cls.(u)) <- true
  done;
  e

let all_false e = not (Array.exists Fun.id e)

let k_partition ?domains ?(mode = `Auto) g ~k =
  let off, arr = Data_graph.csr_parents g in
  let n = Data_graph.n_nodes g in
  let p = ref (label_partition g) in
  let elig = ref None in
  (try
     for _ = 1 to k do
       let eligible =
         match !elig with
         | None -> fun _ -> true
         | Some e -> if all_false e then raise Exit else fun c -> e.(c)
       in
       let p', changed = refine_dispatch ?domains ~mode g !p ~eligible ~off ~arr in
       if not changed then begin
         p := p';
         raise Exit
       end;
       elig := Some (next_eligible ~off ~arr n !p p');
       p := p'
     done
   with Exit -> ());
  !p

let stable_partition ?domains ?(mode = `Auto) g =
  let off, arr = Data_graph.csr_parents g in
  let n = Data_graph.n_nodes g in
  let rec go p rounds elig =
    match elig with
    | Some e when all_false e -> (p, rounds)
    | _ ->
      let eligible =
        match elig with None -> fun _ -> true | Some e -> fun c -> e.(c)
      in
      let p', changed = refine_dispatch ?domains ~mode g p ~eligible ~off ~arr in
      if not changed then (p, rounds)
      else go p' (rounds + 1) (Some (next_eligible ~off ~arr n p p'))
  in
  go (label_partition g) 0 None
