open Dkindex_graph

type partition = { cls : int array; n_classes : int; parent_class : int array }

let label_partition g =
  let n = Data_graph.n_nodes g in
  let cls = Array.make n 0 in
  let by_label = Hashtbl.create 64 in
  let count = ref 0 in
  for u = 0 to n - 1 do
    let code = Label.to_int (Data_graph.label g u) in
    let c =
      match Hashtbl.find_opt by_label code with
      | Some c -> c
      | None ->
        let c = !count in
        incr count;
        Hashtbl.add by_label code c;
        c
    in
    cls.(u) <- c
  done;
  { cls; n_classes = !count; parent_class = Array.init !count Fun.id }

let class_labels g p =
  let labels = Array.make p.n_classes (Label.of_int 0) in
  Data_graph.iter_nodes g (fun u -> labels.(p.cls.(u)) <- Data_graph.label g u);
  labels

(* Key of a node for the next round: its class and the de-duplicated
   sorted classes of its parents (empty for ineligible classes, which
   must pass through unsplit). *)
let node_key g p ~eligible u =
  let c = p.cls.(u) in
  if eligible c then begin
    let parents_key = ref [] in
    Data_graph.iter_parents g u (fun v -> parents_key := p.cls.(v) :: !parents_key);
    (c, List.sort_uniq compare !parents_key)
  end
  else (c, [])

let compute_keys ~domains g p ~eligible =
  let n = Data_graph.n_nodes g in
  let keys = Array.make n (0, []) in
  if domains <= 1 || n < 4096 then
    for u = 0 to n - 1 do
      keys.(u) <- node_key g p ~eligible u
    done
  else begin
    let chunk = (n + domains - 1) / domains in
    let worker d () =
      let lo = d * chunk and hi = min n ((d + 1) * chunk) in
      for u = lo to hi - 1 do
        keys.(u) <- node_key g p ~eligible u
      done
    in
    let spawned = List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
    worker 0 ();
    List.iter Domain.join spawned
  end;
  keys

let refine ?(domains = 1) g p ~eligible =
  let n = Data_graph.n_nodes g in
  let keys = compute_keys ~domains g p ~eligible in
  let table : (int * int list, int) Hashtbl.t = Hashtbl.create (p.n_classes * 2) in
  let cls = Array.make n 0 in
  let count = ref 0 in
  let parent_class = ref [] in
  for u = 0 to n - 1 do
    let key = keys.(u) in
    let c' =
      match Hashtbl.find_opt table key with
      | Some c' -> c'
      | None ->
        let c' = !count in
        incr count;
        Hashtbl.add table key c';
        parent_class := fst key :: !parent_class;
        c'
    in
    cls.(u) <- c'
  done;
  let parent_class = Array.of_list (List.rev !parent_class) in
  ({ cls; n_classes = !count; parent_class }, !count <> p.n_classes)

let k_partition ?domains g ~k =
  let p = ref (label_partition g) in
  for _ = 1 to k do
    let p', _ = refine ?domains g !p ~eligible:(fun _ -> true) in
    p := p'
  done;
  !p

let stable_partition ?domains g =
  let rec go p rounds =
    let p', changed = refine ?domains g p ~eligible:(fun _ -> true) in
    if changed then go p' (rounds + 1) else (p, rounds)
  in
  go (label_partition g) 0
