open Dkindex_graph

type partition = { cls : int array; n_classes : int; parent_class : int array }

let label_partition g =
  let n = Data_graph.n_nodes g in
  let cls = Array.make n 0 in
  (* Label codes are dense pool indices, so a flat array replaces the
     hash table (and the option its lookup would allocate per node). *)
  let by_label = Array.make (Label.Pool.count (Data_graph.pool g)) (-1) in
  let count = ref 0 in
  for u = 0 to n - 1 do
    let code = Label.to_int (Data_graph.label g u) in
    let c =
      let c = by_label.(code) in
      if c >= 0 then c
      else begin
        let c = !count in
        incr count;
        by_label.(code) <- c;
        c
      end
    in
    cls.(u) <- c
  done;
  { cls; n_classes = !count; parent_class = Array.init !count Fun.id }

let class_labels g p =
  let labels = Array.make p.n_classes (Label.of_int 0) in
  Data_graph.iter_nodes g (fun u -> labels.(p.cls.(u)) <- Data_graph.label g u);
  labels

(* A node's key for the next round is (own class, set of adjacent
   classes).  Rather than materializing and sorting that set per node,
   we hash it into a 64-bit signature with an order-insensitive combine
   (sum + xor of mixed class ids, so duplicates are dropped by a stamp
   array and ordering never matters), intern signatures in an
   int-keyed table, and verify every signature hit against a stored
   representative node to rule out collisions.  Per-node work is
   O(degree) with no lists built. *)

let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x27D4EB2F165667C5 in
  x lxor (x lsr 32)

(* The refinement passes read adjacency through the graph's flat CSR
   arrays (offsets [off], neighbors [arr]) rather than the
   closure-taking iterators: a closure per node would itself be a
   per-node allocation, and these loops must stay allocation-free. *)

(* Signature of node [u]: ineligible classes pass through unsplit, so
   their nodes hash as if they had no adjacent classes — the same key
   shape an eligible node with no neighbors gets (matching the
   list-key semantics, where both were [(c, [])]).  [seen] is a
   per-class stamp array, stamped with the node id, so deduplication
   needs no clearing between nodes. *)
let signature p ~eligible ~seen ~off ~arr u =
  let c = p.cls.(u) in
  if eligible c then begin
    let sum = ref 0 and xr = ref 0 and cnt = ref 0 in
    for i = off.(u) to off.(u + 1) - 1 do
      let pc = p.cls.(arr.(i)) in
      if seen.(pc) <> u then begin
        seen.(pc) <- u;
        let h = mix pc in
        sum := !sum + h;
        xr := !xr lxor h;
        incr cnt
      end
    done;
    mix (c + (!sum lxor (!xr * 31) lxor (!cnt * 0x27D4EB2F165667C5)))
  end
  else mix c

(* Exact key equality of node [u] against representative [rep] (both
   known to be in old class [c]): ineligible classes compare equal
   outright; otherwise their adjacent-class sets must coincide.  The
   ticket-stamped [vstamp] array marks the representative's distinct
   classes with ticket [t] and the candidate's matches with [t + 1],
   so set equality is two O(degree) scans with no clearing. *)
let same_key p ~eligible ~vstamp ~ticket ~off ~arr u ~rep c =
  if not (eligible c) then true
  else begin
    ticket := !ticket + 2;
    let t = !ticket in
    let distinct = ref 0 in
    for i = off.(rep) to off.(rep + 1) - 1 do
      let pc = p.cls.(arr.(i)) in
      if vstamp.(pc) <> t then begin
        vstamp.(pc) <- t;
        incr distinct
      end
    done;
    let ok = ref true and matched = ref 0 in
    for i = off.(u) to off.(u + 1) - 1 do
      let pc = p.cls.(arr.(i)) in
      if vstamp.(pc) = t then begin
        vstamp.(pc) <- t + 1;
        incr matched
      end
      else if vstamp.(pc) <> t + 1 then ok := false
    done;
    !ok && !matched = !distinct
  end

(* Interning state: per-class side arrays (growable, doubled) plus an
   int-keyed table from signature to the head of a chain of classes
   sharing that signature (collisions are resolved by [same_key]). *)
type intern = {
  mutable n : int;
  mutable rep : int array;  (* class -> representative node *)
  mutable old : int array;  (* class -> source class in the argument partition *)
  mutable sg : int array;  (* class -> signature *)
  mutable nxt : int array;  (* class -> next class with the same signature *)
  table : (int, int) Hashtbl.t;  (* signature -> chain head *)
}

let intern_create hint =
  let cap = max 256 hint in
  {
    n = 0;
    rep = Array.make cap 0;
    old = Array.make cap 0;
    sg = Array.make cap 0;
    nxt = Array.make cap (-1);
    table = Hashtbl.create (2 * cap);
  }

let grow a = Array.append a (Array.make (Array.length a) 0)

let intern_push it ~rep ~old ~sg ~nxt =
  if it.n = Array.length it.rep then begin
    it.rep <- grow it.rep;
    it.old <- grow it.old;
    it.sg <- grow it.sg;
    it.nxt <- grow it.nxt
  end;
  let cid = it.n in
  it.n <- cid + 1;
  it.rep.(cid) <- rep;
  it.old.(cid) <- old;
  it.sg.(cid) <- sg;
  it.nxt.(cid) <- nxt;
  cid

(* Find or allocate the class of node [u] with signature [sg] and old
   class [c].  A plain while-loop over the chain: no closure, no
   allocation on the hit path (the common one). *)
let intern_assign it p ~eligible ~vstamp ~ticket ~off ~arr u sg c =
  let head = try Hashtbl.find it.table sg with Not_found -> -1 in
  let cid = ref head and found = ref (-1) in
  while !found < 0 && !cid >= 0 do
    if
      it.old.(!cid) = c
      && same_key p ~eligible ~vstamp ~ticket ~off ~arr u ~rep:it.rep.(!cid) c
    then found := !cid
    else cid := it.nxt.(!cid)
  done;
  if !found >= 0 then !found
  else begin
    let cid = intern_push it ~rep:u ~old:c ~sg ~nxt:head in
    Hashtbl.replace it.table sg cid;
    cid
  end

let refine_gen ?(domains = 1) g p ~eligible ~off ~arr =
  let n = Data_graph.n_nodes g in
  let nc = p.n_classes in
  let cls = Array.make n 0 in
  if domains <= 1 || n < 4096 then begin
    (* Sequential: one fused pass computing each node's signature and
       assigning its class. *)
    let seen = Array.make nc (-1) in
    let vstamp = Array.make nc 0 in
    let ticket = ref 0 in
    let it = intern_create nc in
    (* An ineligible class passes through unsplit, so all its nodes land
       in one new class: resolve it once and skip the hash lookup for
       the rest of the class. *)
    let direct = Array.make nc (-1) in
    for u = 0 to n - 1 do
      let c = p.cls.(u) in
      if not (eligible c) then begin
        let d = direct.(c) in
        if d >= 0 then cls.(u) <- d
        else begin
          let cid = intern_assign it p ~eligible ~vstamp ~ticket ~off ~arr u (mix c) c in
          direct.(c) <- cid;
          cls.(u) <- cid
        end
      end
      else begin
        let sg = signature p ~eligible ~seen ~off ~arr u in
        cls.(u) <- intern_assign it p ~eligible ~vstamp ~ticket ~off ~arr u sg c
      end
    done;
    ({ cls; n_classes = it.n; parent_class = Array.sub it.old 0 it.n }, it.n <> nc)
  end
  else begin
    (* Parallel: each domain interns its contiguous chunk of nodes
       into a local table (local class ids ascend by first occurrence
       within the chunk, written into [cls] as placeholders); the
       local tables are then merged sequentially in domain order.
       Because the chunks partition [0 .. n) in ascending order, the
       merge meets keys in exactly global first-occurrence order, so
       class ids come out bit-for-bit equal to the sequential pass.
       A final parallel pass remaps placeholders through the per-domain
       translation tables. *)
    let chunk = (n + domains - 1) / domains in
    let locals = Array.make domains None in
    let worker d () =
      let lo = d * chunk and hi = min n ((d + 1) * chunk) in
      let seen = Array.make nc (-1) in
      let vstamp = Array.make nc 0 in
      let ticket = ref 0 in
      let it = intern_create (1 + ((nc - 1) / domains)) in
      let direct = Array.make nc (-1) in
      for u = lo to hi - 1 do
        let c = p.cls.(u) in
        if not (eligible c) then begin
          let d = direct.(c) in
          if d >= 0 then cls.(u) <- d
          else begin
            let cid = intern_assign it p ~eligible ~vstamp ~ticket ~off ~arr u (mix c) c in
            direct.(c) <- cid;
            cls.(u) <- cid
          end
        end
        else begin
          let sg = signature p ~eligible ~seen ~off ~arr u in
          cls.(u) <- intern_assign it p ~eligible ~vstamp ~ticket ~off ~arr u sg c
        end
      done;
      locals.(d) <- Some it
    in
    let spawned = List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
    worker 0 ();
    List.iter Domain.join spawned;
    let vstamp = Array.make nc 0 in
    let ticket = ref 0 in
    let global = intern_create nc in
    let trans =
      Array.map
        (function
          | None -> [||]
          | Some it ->
            Array.init it.n (fun lid ->
                intern_assign global p ~eligible ~vstamp ~ticket ~off ~arr it.rep.(lid)
                  it.sg.(lid) it.old.(lid)))
        locals
    in
    let remap d () =
      let lo = d * chunk and hi = min n ((d + 1) * chunk) in
      let t = trans.(d) in
      for u = lo to hi - 1 do
        cls.(u) <- t.(cls.(u))
      done
    in
    let spawned = List.init (domains - 1) (fun d -> Domain.spawn (remap (d + 1))) in
    remap 0 ();
    List.iter Domain.join spawned;
    ( { cls; n_classes = global.n; parent_class = Array.sub global.old 0 global.n },
      global.n <> nc )
  end

let refine ?domains g p ~eligible =
  let off, arr = Data_graph.csr_parents g in
  refine_gen ?domains g p ~eligible ~off ~arr

let refine_by_children ?domains g p =
  let off, arr = Data_graph.csr_children g in
  refine_gen ?domains g p ~eligible:(fun _ -> true) ~off ~arr

(* Round-to-round eligibility.  When a round is over, a class of the
   new partition can only split in the next round if some node in it
   has a parent whose class just split: classes formed by earlier
   rounds hold nodes with equal parent-class sets, and an unsplit
   parent class changes those sets only by the uniform old->new
   renaming, which preserves their equality.  Driving [refine] with
   that eligible set turns late rounds (where almost nothing moves)
   into O(n) pass-throughs instead of full re-hashing passes, and an
   empty set proves stability without a confirming round.  Because
   pass-through and no-split classes land on the same first-occurrence
   ids either way, partitions and numbering stay bit-for-bit identical
   to always-eligible refinement. *)
let next_eligible ~off ~arr n p p' =
  let kids = Array.make p.n_classes 0 in
  Array.iter (fun oc -> kids.(oc) <- kids.(oc) + 1) p'.parent_class;
  (* new class -> did its source class split this round *)
  let moved = Array.map (fun oc -> kids.(oc) >= 2) p'.parent_class in
  let e = Array.make p'.n_classes false in
  for u = 0 to n - 1 do
    let hot = ref false in
    for i = off.(u) to off.(u + 1) - 1 do
      if moved.(p'.cls.(arr.(i))) then hot := true
    done;
    if !hot then e.(p'.cls.(u)) <- true
  done;
  e

let all_false e = not (Array.exists Fun.id e)

let k_partition ?domains g ~k =
  let off, arr = Data_graph.csr_parents g in
  let n = Data_graph.n_nodes g in
  let p = ref (label_partition g) in
  let elig = ref None in
  (try
     for _ = 1 to k do
       let eligible =
         match !elig with
         | None -> fun _ -> true
         | Some e -> if all_false e then raise Exit else fun c -> e.(c)
       in
       let p', changed = refine_gen ?domains g !p ~eligible ~off ~arr in
       if not changed then begin
         p := p';
         raise Exit
       end;
       elig := Some (next_eligible ~off ~arr n !p p');
       p := p'
     done
   with Exit -> ());
  !p

let stable_partition ?domains g =
  let off, arr = Data_graph.csr_parents g in
  let n = Data_graph.n_nodes g in
  let rec go p rounds elig =
    match elig with
    | Some e when all_false e -> (p, rounds)
    | _ ->
      let eligible =
        match elig with None -> fun _ -> true | Some e -> fun c -> e.(c)
      in
      let p', changed = refine_gen ?domains g p ~eligible ~off ~arr in
      if not changed then (p, rounds)
      else go p' (rounds + 1) (Some (next_eligible ~off ~arr n p p'))
  in
  go (label_partition g) 0 None
