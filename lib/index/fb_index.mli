(** The F&B-index (Kaushik, Bohannon, Naughton, Korth, SIGMOD 2002) —
    the covering index for branching path queries that the D(k) paper
    names as the next research direction.

    The partition is stable {e forwards and backwards}: refinement by
    parent classes (as in the 1-index) alternates with refinement by
    child classes, to a fixpoint.  At the fixpoint every index edge is
    universal in both directions — each member of a class has a parent
    in every parent class {e and} a child in every child class — so
    evaluating a tree pattern on the index graph returns exactly the
    data-graph answer, including descendant axes and predicate
    branches, with no validation.

    The price is size: the F&B partition refines the 1-index, often
    substantially (experiment ExtF). *)

val build : Dkindex_graph.Data_graph.t -> Index_graph.t
(** Nodes carry {!Index_graph.k_infinite} (sound for any query). *)

val rounds : Dkindex_graph.Data_graph.t -> int
(** Number of alternating refinement rounds until the fixpoint. *)
