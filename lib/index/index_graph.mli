(** The index graph: the common representation of every structural
    summary in this library (label-split, A(k), 1-index, D(k)).

    An index graph over a data graph [G] partitions [G]'s nodes into
    extents.  Each index node carries:
    - its (shared) label,
    - its extent (the data nodes it summarizes),
    - its local similarity [k]: the guarantee that all data nodes of
      the extent are at least k-bisimilar (Definition 2),
    - its requirement [req]: the local similarity the current query
      load asks of this label (Section 4.2).

    There is an index edge [A -> B] exactly when some data edge runs
    from a node of [extent A] to a node of [extent B].

    Index nodes can be split in place ({!split}); this is the
    primitive behind D(k) promotion and the A(k) propagate update.
    Splitting retires the old node id and allocates fresh ids, so ids
    are stable for as long as a node is alive.

    Adjacency is stored CSR-style (flat offsets + neighbor arrays per
    direction) with an overflow layer absorbing mutations, folded back
    in amortized batches — the same layout {!Data_graph} uses.  All
    [iter_*]/[exists_*] traversals are allocation-free. *)

open Dkindex_graph

type inode = private {
  id : int;
  label : Label.t;
  mutable extent : int array;  (** sorted increasing; do not mutate *)
  mutable extent_size : int;
  mutable k : int;
  mutable req : int;
}

type t

val k_infinite : int
(** Local similarity of 1-index nodes: sound for any query length. *)

(** {1 Construction} *)

val of_partition :
  ?mode:[ `Auto | `In_ram | `External ] ->
  Data_graph.t ->
  cls:int array ->
  n_classes:int ->
  k_of_class:(int -> int) ->
  req_of_class:(int -> int) ->
  t
(** Build an index graph from a partition of the data nodes given as a
    [cls] map (data node -> class id in [0 .. n_classes-1]).  Index
    node ids coincide with class ids.  @raise Invalid_argument if a
    class is empty or mixes labels.

    [mode] selects how the data edges are projected and deduplicated
    into the index CSR: [`In_ram] keeps the distinct (class, class)
    pairs in a hash table / byte matrix, [`External] streams every
    projected pair through {!Dkindex_graph.Ext_sort} so the working
    set is bounded by the sorter budget rather than the number of
    distinct index edges.  [`Auto] (the default) picks [`External] at
    the same edge-count threshold as {!Kbisim.refine}.  Both paths
    produce bit-identical CSRs. *)

val of_partition_with_edges :
  Data_graph.t ->
  cls:int array ->
  n_classes:int ->
  k_of_class:(int -> int) ->
  req_of_class:(int -> int) ->
  children:(int array * int array) ->
  t
(** {!of_partition}, but installing the given index adjacency
    ([children] = CSR offsets + sorted neighbor runs over class ids;
    parents are derived by counting sort) instead of projecting every
    data edge — O(n + index edges) instead of O(data edges).  The
    loader for index containers, whose stored CSR came from this
    module in the first place.  Only the CSR {i shape} is validated;
    callers vouch for its content. *)

(** {1 Accessors} *)

val data : t -> Data_graph.t
val node : t -> int -> inode
(** @raise Invalid_argument if the id is dead or out of range. *)

val is_alive : t -> int -> bool
val cls : t -> int -> int
(** Index node id of a data node. *)

val root_node : t -> int
(** Index node containing the data root. *)

val n_nodes : t -> int
(** Number of live index nodes (the "index size" of the figures). *)

val max_id : t -> int
(** One past the largest id ever allocated (dead or alive).  Dense
    per-node working arrays should be sized by this. *)

val n_edges : t -> int
(** Number of live index edges, in O(1). *)

val iter_alive : t -> (inode -> unit) -> unit
val fold_alive : t -> init:'a -> f:('a -> inode -> 'a) -> 'a
val nodes_with_label : t -> Label.t -> int list
(** Live index nodes carrying the label.  The per-label bucket is only
    compacted when a node with that label has actually died since the
    last read; otherwise this returns the cached list as-is. *)

val count_with_label : t -> Label.t -> int
(** Number of live index nodes carrying the label, in O(1). *)

val extent_mem : inode -> int -> bool
(** Whether a data node belongs to the extent (binary search). *)

val extent_min : inode -> int
(** Smallest data node id in the extent (its canonical
    representative). *)

val max_k : t -> int
(** Largest finite local similarity among live nodes (0 for an empty
    index). *)

(** {1 Adjacency} *)

val iter_children : t -> int -> (int -> unit) -> unit
(** Apply to every index child of a node.  Allocation-free on the CSR
    portion.  Order is unspecified (CSR run first, then overflow). *)

val iter_parents : t -> int -> (int -> unit) -> unit

val exists_children : t -> int -> (int -> bool) -> bool
(** Short-circuiting existential over the children. *)

val exists_parents : t -> int -> (int -> bool) -> bool

val children_list : t -> int -> int list
(** Children as a sorted, duplicate-free list (allocates). *)

val parents_list : t -> int -> int list

val has_index_edge : t -> int -> int -> bool
(** [has_index_edge t a b] — whether the index edge [a -> b] exists.
    Binary search on the CSR run plus an overflow probe. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val csr_children : t -> int array * int array
(** [(off, arr)] — flat child adjacency: children of [id] are
    [arr.(off.(id)) .. arr.(off.(id+1) - 1)], sorted increasing.
    Flattens any pending overflow first; the arrays remain valid until
    the next mutation. *)

val csr_parents : t -> int array * int array

(** {1 Mutation} *)

val split : t -> int -> int array list -> int list
(** [split t id groups] replaces index node [id] by one node per group;
    [groups] must be a partition of [id]'s extent into non-empty,
    sorted arrays.  New nodes inherit label, [k] and [req]; edges are
    recomputed from the data graph.  Returns the new ids ([ [id] ]
    unchanged if a single group is passed).  @raise Invalid_argument if
    the groups do not partition the extent. *)

val resolve : t -> int -> int list
(** Live index nodes descending from a possibly-retired id (follows
    {!split} forwarding).  The identity on live ids. *)

val add_index_edge : t -> int -> int -> unit
(** Record an index edge (used right after a data edge insertion).
    No-op if present. *)

val remove_index_edge : t -> int -> int -> unit
(** Drop an index edge (used after a data edge deletion left no edge
    between the two extents).  No-op if absent. *)

val set_k : t -> int -> int -> unit
val set_req : t -> int -> int -> unit

(** {1 Cache invalidation} *)

val generation : t -> int
(** Monotone counter bumped by every mutation ({!split},
    {!add_index_edge}, {!remove_index_edge}, {!set_k}, {!set_req},
    {!touch}).  Caches over query results snapshot it and drop their
    contents when it moves ({!Validation_cache}). *)

val touch : t -> unit
(** Explicitly bump {!generation}.  Update drivers call this when they
    change state the index graph cannot see itself (e.g. a data-graph
    edge insertion that maps to an already-present index edge but
    still changes validation answers). *)

val set_tracer : t -> (int -> unit) option -> unit
(** Install (or clear) a structural-change observer.  The callback
    receives the id of every index node whose summary-relevant state
    changes: the retired id on {!split}, both endpoints of
    {!add_index_edge} / {!remove_index_edge}, and the target of
    {!set_k} / {!set_req}.  Ids may be dead by the time the observer
    acts on them — {!resolve} follows the forwarding history.  Purely
    in-memory rebuilds (CSR flattening, bucket compaction) are not
    structural changes and are not reported.  Used by the integrity
    digest tree to mark dirty ranges incrementally. *)

(** {1 Serving} *)

val prepare_serving : t -> unit
(** Make the structure safe for concurrent read-only access from
    multiple domains: flatten index and data adjacency into pure CSR
    form, compact every label bucket, and force lazily-built tables.
    After this, all query-side reads are mutation-free until the next
    update.  {!Query_eval.eval_batch} calls it before spawning. *)

(** {1 Derived views} *)

val as_data_graph : t -> Data_graph.t * int array
(** View the live index graph as a data graph (Theorem 2: an index can
    be rebuilt from any of its refinements).  Returns the derived graph
    and a map from derived node id to index node id.  The derived node
    [0] is the index node holding the data root. *)

val compact : t -> t
(** A fresh, densely-numbered copy of the live index over the same data
    graph (many splits leave retired slots behind).  Forwarding history
    is dropped. *)

val partition_signature : t -> (int * int) array
(** For testing: array indexed by data node of
    [(canonical class representative, k of its class)], where the
    representative is the smallest data node id in the class.  Two
    index graphs are structurally equal iff their signatures are. *)

val check_invariants : t -> unit
(** Validate internal consistency and the D(k)-index definition
    (Definition 3: [k(parent) >= k(child) - 1] on every edge); raises
    [Failure] with a description otherwise.  For tests. *)

val stats_line : t -> string
