let build g =
  let p = Kbisim.label_partition g in
  Index_graph.of_partition g ~cls:p.cls ~n_classes:p.n_classes
    ~k_of_class:(fun _ -> 0)
    ~req_of_class:(fun _ -> 0)
