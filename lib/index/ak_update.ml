open Dkindex_graph

(* Split a class so that members agree on their exact set of parent
   classes, consulting the data graph; returns the resulting ids and
   whether anything split. *)
let refine_class t id =
  let data = Index_graph.data t in
  let nd = Index_graph.node t id in
  let table : (int list, int list) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun u ->
      let ps = ref [] in
      Data_graph.iter_parents data u (fun p -> ps := Index_graph.cls t p :: !ps);
      let key = List.sort_uniq Int.compare !ps in
      match Hashtbl.find_opt table key with
      | None ->
        order := key :: !order;
        Hashtbl.add table key [ u ]
      | Some members -> Hashtbl.replace table key (u :: members))
    nd.extent;
  let groups = List.rev_map (fun key -> Int_arr.of_list (Hashtbl.find table key)) !order in
  let ids = Index_graph.split t id groups in
  (ids, match ids with [ _ ] -> false | _ -> true)

let add_edge t ~k u v =
  let data = Index_graph.data t in
  Data_graph.add_edge data u v;
  Index_graph.touch t;
  let iu = Index_graph.cls t u and iv = Index_graph.cls t v in
  (* v's incoming paths changed: isolate it in a fresh index node. *)
  let nv = Index_graph.node t iv in
  let start_ids =
    if nv.extent_size = 1 then begin
      Index_graph.add_index_edge t iu iv;
      [ iv ]
    end
    else begin
      let rest = Array.make (nv.extent_size - 1) 0 in
      let w = ref 0 in
      Array.iter
        (fun x ->
          if x <> v then begin
            rest.(!w) <- x;
            incr w
          end)
        nv.extent;
      Index_graph.split t iv [ [| v |]; rest ]
    end
  in
  (* Propagate: descendants within distance k - 1 are re-partitioned
     against the data graph; stop early along branches that no longer
     split. *)
  let frontier = ref (Int_set.of_list start_ids) in
  let continue_ = ref true in
  let distance = ref 1 in
  while !continue_ && !distance <= k - 1 do
    let children =
      Int_set.fold
        (fun id acc ->
          if Index_graph.is_alive t id then begin
            let acc = ref acc in
            Index_graph.iter_children t id (fun c -> acc := Int_set.add c !acc);
            !acc
          end
          else acc)
        !frontier Int_set.empty
    in
    let next = ref Int_set.empty in
    Int_set.iter
      (fun child ->
        if Index_graph.is_alive t child then begin
          let ids, changed = refine_class t child in
          if changed then next := Int_set.union !next (Int_set.of_list ids)
        end)
      children;
    frontier := !next;
    continue_ := not (Int_set.is_empty !next);
    incr distance
  done

let add_subgraph t ~k h =
  let g = Index_graph.data t in
  let g', offset = Data_graph.graft g h in
  let ih = A_k_index.build h ~k in
  let h_root_class = Index_graph.cls ih (Data_graph.root h) in
  if (Index_graph.node ih h_root_class).Index_graph.extent_size <> 1 then
    invalid_arg "Ak_update.add_subgraph: subgraph root label must be unique in it";
  let n' = Data_graph.n_nodes g' in
  let cls' = Array.make n' 0 in
  let count = ref 0 in
  let assign () =
    let id = !count in
    incr count;
    id
  in
  let dense_of_t = Hashtbl.create 256 in
  Index_graph.iter_alive t (fun nd ->
      Hashtbl.add dense_of_t nd.Index_graph.id (assign ()));
  for u = 0 to Data_graph.n_nodes g - 1 do
    cls'.(u) <- Hashtbl.find dense_of_t (Index_graph.cls t u)
  done;
  Index_graph.iter_alive ih (fun nd ->
      if nd.Index_graph.id <> h_root_class then begin
        let id = assign () in
        Array.iter (fun m -> cls'.(m - 1 + offset) <- id) nd.Index_graph.extent
      end);
  let combined =
    Index_graph.of_partition g' ~cls:cls' ~n_classes:!count
      ~k_of_class:(fun _ -> k)
      ~req_of_class:(fun _ -> k)
  in
  (* Uniform requirements: the Theorem 2 rebuild over the combined index
     graph is exactly the A(k) recomputation, at index-node cost. *)
  let pool' = Data_graph.pool g' in
  let reqs =
    Dkindex_graph.Label.Pool.fold
      (fun _ name acc -> (name, k) :: acc)
      pool' []
  in
  (g', Dk_index.rebuild combined ~reqs)
