(** Query-driven index cracking.

    The paper closes with: "Currently, the update and evaluation
    processes are executed independently.  Potentially, they can be
    combined to speed up the D(k)-index's processing of path queries."
    This module is that combination, in the spirit of database
    cracking: when a query has to fall back to validation (its target
    index nodes' local similarity is below the query length), the
    evaluation answer is returned as usual — and the target label is
    then promoted to the query's length, so every later query of that
    shape is answered from the index alone.

    Starting from the cheapest index (label-split), a query stream
    incrementally refines exactly the labels it touches, converging to
    the same structure the offline-mined D(k)-index would have built —
    without ever seeing the workload in advance (experiment ExtJ). *)

open Dkindex_graph

val eval_path : Index_graph.t -> Label.t array -> Query_eval.result
(** Evaluate like {!Query_eval.eval_path}; afterwards, if validation
    was needed, promote the query's target label to [length - 1].  The
    returned result (and its cost) is the evaluation itself; the
    promotion is the reinvestment. *)

val eval_path_strings : Index_graph.t -> string list -> Query_eval.result
