(** k-bisimulation partition refinement (Definition 2).

    Round [k] refines the [k-1] partition by splitting every class on
    the key {i (own class, set of parent classes)}; the result is
    exactly the [k]-bisimilarity partition.  This computes the same
    fixpoint as the split-by-[Succ] loop of the A(k) / D(k)
    construction algorithms, in O(m) time per round. *)

open Dkindex_graph

type partition = {
  cls : int array;  (** data node -> class id, dense in [0 .. n) *)
  n_classes : int;
  parent_class : int array;
      (** class id -> the class it was split from in the previous round
          (the identity for the initial label partition) *)
}

val label_partition : Data_graph.t -> partition
(** 0-bisimilarity: one class per distinct label.  Class ids follow
    first occurrence in node order, so the root's class is 0. *)

val class_labels : Data_graph.t -> partition -> Label.t array
(** Label carried by each class. *)

type mode = [ `Auto | `In_ram | `External ]
(** How a refinement round runs.  [`In_ram] is the hash-interning
    pass below (optionally parallel); [`External] is a sort/scan pass
    that writes each node's exact key record to an external merge
    sorter and groups equal keys in one merged stream — O(n) words of
    RAM regardless of edge count, with the O(m) key data in spilled
    temp-file runs (after Hellings et al., {i I/O efficient
    bisimulation partitioning}).  [`Auto] (the default everywhere)
    picks [`External] at ≥ 2{^24} edges.  Both paths assign classes in
    global first-occurrence order, so results — ids included — are
    bit-for-bit identical whichever runs. *)

val refine :
  ?domains:int ->
  ?mode:mode ->
  Data_graph.t ->
  partition ->
  eligible:(int -> bool) ->
  partition * bool
(** One refinement round splitting only classes for which [eligible]
    holds; returns the new partition and whether anything split.
    [parent_class] of the result maps into the argument partition.

    Keys are hashed into 64-bit order-insensitive signatures (no
    per-node lists or sorting; O(degree) per node with every signature
    hit verified against a representative node, so hash collisions
    cannot merge distinct keys).

    [domains] (default 1) parallelizes both the signature/interning
    pass (per-domain chunks with local tables) and the final class
    remap across that many OCaml 5 domains; local tables are merged
    sequentially in domain order, which preserves global
    first-occurrence numbering, so the result is bit-for-bit
    independent of [domains].  [eligible] must be safe to call from
    multiple domains (a pure array read qualifies). *)

val refine_by_children :
  ?domains:int -> ?mode:mode -> Data_graph.t -> partition -> partition * bool
(** One backward refinement round: splits every class on the key
    {i (own class, set of child classes)}.  The mirror of {!refine}
    used by the F&B-index construction; same determinism guarantees. *)

val k_partition : ?domains:int -> ?mode:mode -> Data_graph.t -> k:int -> partition
(** The A(k) partition: [k] full rounds from the label partition. *)

val stable_partition : ?domains:int -> ?mode:mode -> Data_graph.t -> partition * int
(** The full bisimulation (1-index) partition: refine to fixpoint.
    Also returns the number of rounds taken (the graph's bisimulation
    depth). *)
