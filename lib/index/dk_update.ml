open Dkindex_graph

module Path_map = Map.Make (struct
  type t = int list  (* label codes, outermost (farthest) label first *)

  let compare = compare
end)

let label_code t id = Label.to_int (Index_graph.node t id).label

(* Extend every path by one step: prepend the label of each parent of
   each witness node, accumulating witness sets per extended path. *)
let extend t set =
  Path_map.fold
    (fun path witnesses acc ->
      Int_set.fold
        (fun w acc ->
          let acc = ref acc in
          Index_graph.iter_parents t w (fun x ->
              let key = label_code t x :: path in
              acc :=
                Path_map.update key
                  (function
                    | None -> Some (Int_set.singleton x)
                    | Some s -> Some (Int_set.add x s))
                  !acc);
          !acc)
        witnesses acc)
    set Path_map.empty

let update_local_similarity t ~u ~v =
  let nu = Index_graph.node t u and nv = Index_graph.node t v in
  let upbound = min (nu.k + 1) nv.k in
  if upbound <= 0 then 0
  else begin
    let new_set = Path_map.singleton [ label_code t u ] (Int_set.singleton u) in
    let old_set =
      let acc = ref Path_map.empty in
      Index_graph.iter_parents t v (fun p ->
          acc :=
            Path_map.update
              [ label_code t p ]
              (function
                | None -> Some (Int_set.singleton p)
                | Some s -> Some (Int_set.add p s))
              !acc);
      !acc
    in
    let rec loop k_new new_set old_set =
      if k_new >= upbound then k_new
      else if Path_map.for_all (fun key _ -> Path_map.mem key old_set) new_set then begin
        (* All new label paths of this length match v in the original
           index; keep only the old paths that are also new paths (the
           only ones whose extensions can still be compared) and grow
           both sets one step backwards. *)
        let old_set = Path_map.filter (fun key _ -> Path_map.mem key new_set) old_set in
        loop (k_new + 1) (extend t new_set) (extend t old_set)
      end
      else k_new
    in
    loop 0 new_set old_set
  end

(* Lower an index node's similarity and broadcast the decrease: along
   every edge W -> X we need k(X) <= k(W) + 1; stop where it holds. *)
let lower_and_broadcast t iv k_new =
  Index_graph.set_k t iv (min k_new (Index_graph.node t iv).k);
  let queue = Queue.create () in
  Queue.add iv queue;
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    let kw = (Index_graph.node t w).k in
    Index_graph.iter_children t w (fun x ->
        let nx = Index_graph.node t x in
        if kw + 1 < nx.k then begin
          Index_graph.set_k t x (kw + 1);
          Queue.add x queue
        end)
  done

let add_edge t u v =
  let data = Index_graph.data t in
  let iu = Index_graph.cls t u and iv = Index_graph.cls t v in
  let k_n = update_local_similarity t ~u:iu ~v:iv in
  Log.debug (fun m ->
      m "edge %d->%d: index %d->%d, k(%d) %d -> %d" u v iu iv iv
        (Index_graph.node t iv).k k_n);
  Data_graph.add_edge data u v;
  (* The data edge changes validation answers even when the index edge
     (and every k) is already in place. *)
  Index_graph.touch t;
  Index_graph.add_index_edge t iu iv;
  lower_and_broadcast t iv k_n

let remove_edge t u v =
  let data = Index_graph.data t in
  Data_graph.remove_edge data u v;
  Index_graph.touch t;
  let iu = Index_graph.cls t u and iv = Index_graph.cls t v in
  let in_class w cls = Index_graph.cls t w = cls in
  let retains_parent = Data_graph.exists_parents data v (fun p -> in_class p iu) in
  if not retains_parent then begin
    (* v lost every parent from that extent: its incoming label-path
       set diverged from its siblings' already at length 1. *)
    lower_and_broadcast t iv 0;
    let edge_remains =
      Array.exists
        (fun w -> Data_graph.exists_children data w (fun c -> in_class c iv))
        (Index_graph.node t iu).extent
    in
    if not edge_remains then Index_graph.remove_index_edge t iu iv
  end

let add_subgraph t h ~reqs =
  let g = Index_graph.data t in
  let g', offset = Data_graph.graft g h in
  (* "The index nodes with the same label in the original I_G and I_H
     should have the same local similarity" (Section 5.1): broadcast
     once over the combined graph and hand the closed-form requirements
     to both the subgraph construction and the final rebuild. *)
  let eff = Broadcast.run g' ~reqs in
  let pool' = Data_graph.pool g' in
  let reqs =
    Dkindex_graph.Label.Pool.fold
      (fun code name acc ->
        let k = eff.(Dkindex_graph.Label.to_int code) in
        if k > 0 then (name, k) :: acc else acc)
      pool' []
  in
  let ih = Dk_index.build h ~reqs in
  let h_root_class = Index_graph.cls ih (Data_graph.root h) in
  if (Index_graph.node ih h_root_class).extent_size <> 1 then
    invalid_arg "Dk_update.add_subgraph: subgraph root label must be unique in it";
  (* Combined partition over g': the original classes, then the
     subgraph's classes (minus its root class, which merges with the
     original root's class when the subgraph is grafted). *)
  let n' = Data_graph.n_nodes g' in
  let cls' = Array.make n' 0 in
  let ks = ref [] and count = ref 0 in
  let assign () =
    let id = !count in
    incr count;
    id
  in
  let dense_of_t = Hashtbl.create 256 in
  Index_graph.iter_alive t (fun nd ->
      let id = assign () in
      Hashtbl.add dense_of_t nd.id id;
      ks := (id, nd.k) :: !ks);
  for u = 0 to Data_graph.n_nodes g - 1 do
    cls'.(u) <- Hashtbl.find dense_of_t (Index_graph.cls t u)
  done;
  Index_graph.iter_alive ih (fun nd ->
      if nd.id <> h_root_class then begin
        let id = assign () in
        ks := (id, nd.k) :: !ks;
        Array.iter (fun m -> cls'.(m - 1 + offset) <- id) nd.extent
      end);
  let k_of = Array.make !count 0 in
  List.iter (fun (id, k) -> k_of.(id) <- k) !ks;
  let combined =
    Index_graph.of_partition g' ~cls:cls' ~n_classes:!count
      ~k_of_class:(fun c -> k_of.(c))
      ~req_of_class:(fun c -> k_of.(c))
  in
  let result = Dk_index.rebuild combined ~reqs in
  (* The graft can escalate a label's broadcast requirement beyond what
     the original I_G was refined to (H may introduce new label
     adjacencies).  The rebuild never splits input classes, so promote
     any class whose honest similarity still lags its requirement. *)
  Dk_tune.promote_to_requirements result;
  (g', result)
