(** Descriptive statistics of an index graph, for tooling and reports
    (the CLI's [build] command and the examples print these). *)

type t = {
  n_nodes : int;
  n_edges : int;
  n_data_nodes : int;
  compression : float;  (** data nodes per index node *)
  largest_extent : int;
  singleton_extents : int;
  k_histogram : (int * int) list;
      (** local similarity (-1 for infinite) -> number of index nodes,
          ascending *)
  label_rows : (string * int * int) list;
      (** label, index nodes, data nodes; descending by index nodes *)
}

val compute : Index_graph.t -> t
val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report ([label_rows] capped at 12). *)

(** {1 Generation-gated recomputation}

    A [source] memoizes {!compute} against the index's
    {!Index_graph.generation} counter: {!get} returns the cached
    record (physically the same value) until a mutation bumps the
    counter, then recomputes once.  Callers polling statistics (the
    server's [Stats] request) never pay a full sweep for an unchanged
    index and can never observe stale numbers after an update.
    Thread-safe: [get] may be called from any domain. *)

type source

val source : Index_graph.t -> source
(** Lazy: no sweep happens until the first {!get}. *)

val source_index : source -> Index_graph.t
val get : source -> t
val recomputes : source -> int
(** Number of sweeps performed so far; tests assert the gating. *)
