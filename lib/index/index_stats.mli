(** Descriptive statistics of an index graph, for tooling and reports
    (the CLI's [build] command and the examples print these). *)

type t = {
  n_nodes : int;
  n_edges : int;
  n_data_nodes : int;
  compression : float;  (** data nodes per index node *)
  largest_extent : int;
  singleton_extents : int;
  k_histogram : (int * int) list;
      (** local similarity (-1 for infinite) -> number of index nodes,
          ascending *)
  label_rows : (string * int * int) list;
      (** label, index nodes, data nodes; descending by index nodes *)
}

val compute : Index_graph.t -> t
val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report ([label_rows] capped at 12). *)
