open Dkindex_graph

let magic_v1 = "dkindex-index 1"
let magic = "dkindex-index 2"

let to_string t =
  let data = Index_graph.data t in
  let n = Data_graph.n_nodes data in
  (* Dense class ids in first-touch order over data nodes. *)
  let dense = Hashtbl.create 256 in
  let order = ref [] and count = ref 0 in
  let tail = Buffer.create (n * 4) in
  Buffer.add_string tail "cls\n";
  for u = 0 to n - 1 do
    let id = Index_graph.cls t u in
    let c =
      match Hashtbl.find_opt dense id with
      | Some c -> c
      | None ->
        let c = !count in
        incr count;
        Hashtbl.add dense id c;
        order := id :: !order;
        c
    in
    Buffer.add_string tail (string_of_int c);
    Buffer.add_char tail '\n'
  done;
  Buffer.add_string tail (Printf.sprintf "classes %d\n" !count);
  List.iter
    (fun id ->
      let nd = Index_graph.node t id in
      let enc k = if k >= Index_graph.k_infinite then -1 else k in
      Buffer.add_string tail
        (Printf.sprintf "%d %d\n" (enc nd.Index_graph.k) (enc nd.Index_graph.req)))
    (List.rev !order);
  let buf = Buffer.create (n * 8) in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "counts %d %d %d\n" n (Data_graph.n_edges data) !count);
  let graph_text = Serial.to_string data in
  Buffer.add_string buf (Printf.sprintf "graph %d\n" (String.length graph_text));
  Buffer.add_string buf graph_text;
  Buffer.add_buffer buf tail;
  Buffer.contents buf

let of_string s =
  let fail fmt = Printf.ksprintf failwith fmt in
  let len = String.length s in
  let line_end pos = match String.index_from_opt s pos '\n' with
    | Some i -> i
    | None -> fail "Index_serial.of_string: truncated"
  in
  let read_line pos =
    let e = line_end pos in
    (String.sub s pos (e - pos), e + 1)
  in
  let header, pos = read_line 0 in
  let version =
    if String.equal header magic then 2
    else if String.equal header magic_v1 then 1
    else fail "Index_serial.of_string: bad magic"
  in
  (* v2 declares the shape up front; the declaration is checked against
     what the body actually decodes to, so a snapshot whose graph or
     partition was truncated or spliced is rejected even when each part
     parses on its own. *)
  let declared, pos =
    if version = 1 then (None, pos)
    else
      let counts_line, pos = read_line pos in
      match String.split_on_char ' ' counts_line with
      | [ "counts"; a; b; c ] -> (
        match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
        | Some a, Some b, Some c when a >= 0 && b >= 0 && c >= 0 -> (Some (a, b, c), pos)
        | _ -> fail "Index_serial.of_string: bad counts line")
      | _ -> fail "Index_serial.of_string: expected 'counts <nodes> <edges> <classes>'"
  in
  let graph_line, pos = read_line pos in
  let graph_len =
    match String.split_on_char ' ' graph_line with
    | [ "graph"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 && pos + n <= len -> n
      | _ -> fail "Index_serial.of_string: bad graph length")
    | _ -> fail "Index_serial.of_string: expected 'graph <len>'"
  in
  let data = Serial.of_string (String.sub s pos graph_len) in
  let pos = pos + graph_len in
  let marker, pos = read_line pos in
  if not (String.equal marker "cls") then fail "Index_serial.of_string: expected 'cls'";
  let n = Data_graph.n_nodes data in
  let cls = Array.make n 0 in
  let pos = ref pos in
  for u = 0 to n - 1 do
    let line, next = read_line !pos in
    (match int_of_string_opt line with
    | Some c when c >= 0 -> cls.(u) <- c
    | _ -> fail "Index_serial.of_string: bad class for node %d" u);
    pos := next
  done;
  let classes_line, next = read_line !pos in
  pos := next;
  let m =
    match String.split_on_char ' ' classes_line with
    | [ "classes"; m ] -> (
      match int_of_string_opt m with
      | Some m when m > 0 -> m
      | _ -> fail "Index_serial.of_string: bad class count")
    | _ -> fail "Index_serial.of_string: expected 'classes <m>'"
  in
  Array.iter (fun c -> if c >= m then fail "Index_serial.of_string: class out of range") cls;
  (match declared with
  | None -> ()
  | Some (dn, de, dm) ->
    if dn <> n then
      fail "Index_serial.of_string: declared %d nodes, graph has %d" dn n;
    if de <> Data_graph.n_edges data then
      fail "Index_serial.of_string: declared %d edges, graph has %d" de
        (Data_graph.n_edges data);
    if dm <> m then fail "Index_serial.of_string: declared %d classes, body has %d" dm m);
  let ks = Array.make m 0 and reqs = Array.make m 0 in
  for c = 0 to m - 1 do
    let line, next = read_line !pos in
    (match String.split_on_char ' ' line with
    | [ k; req ] -> (
      match (int_of_string_opt k, int_of_string_opt req) with
      | Some k, Some req ->
        ks.(c) <- (if k < 0 then Index_graph.k_infinite else k);
        reqs.(c) <- (if req < 0 then Index_graph.k_infinite else req)
      | _ -> fail "Index_serial.of_string: bad class line %d" c)
    | _ -> fail "Index_serial.of_string: bad class line %d" c);
    pos := next
  done;
  Index_graph.of_partition data ~cls ~n_classes:m
    ~k_of_class:(fun c -> ks.(c))
    ~req_of_class:(fun c -> reqs.(c))

(* Write-to-temp + rename: a crash mid-save leaves the previous
   snapshot intact, never a torn file under the final name. *)
let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Container persistence: the binary counterpart of the text format
   above — the embedded data graph as mappable sections plus the
   partition (dense first-touch class ids, exactly the numbering
   [to_string] uses), per-class k/req, and the index adjacency itself,
   so loading skips both the text parse and the O(data edges) edge
   projection. *)

let container_sections = Container.graph_n_sections + 6

(* Dense first-touch remap over data nodes, shared with [to_string]. *)
let dense_classes t =
  let data = Index_graph.data t in
  let n = Data_graph.n_nodes data in
  let dense = Hashtbl.create 256 in
  let order = ref [] and count = ref 0 in
  let cls = Int_vec.create n in
  for u = 0 to n - 1 do
    let id = Index_graph.cls t u in
    let c =
      match Hashtbl.find_opt dense id with
      | Some c -> c
      | None ->
        let c = !count in
        incr count;
        Hashtbl.add dense id c;
        order := id :: !order;
        c
    in
    Int_vec.set cls u c
  done;
  (cls, Array.of_list (List.rev !order), dense)

let save_container path t =
  let data = Index_graph.data t in
  let cls, order, dense = dense_classes t in
  let nc = Array.length order in
  let enc k = if k >= Index_graph.k_infinite then -1 else k in
  let ks = Int_vec.init nc (fun c -> enc (Index_graph.node t order.(c)).Index_graph.k) in
  let rqs =
    Int_vec.init nc (fun c -> enc (Index_graph.node t order.(c)).Index_graph.req)
  in
  (* Index child CSR in dense-class space; runs re-sorted because the
     dense remap does not preserve id order. *)
  let kids =
    Array.map
      (fun id ->
        let l = List.sort Int.compare (List.map (Hashtbl.find dense) (Index_graph.children_list t id)) in
        Array.of_list l)
      order
  in
  let im = Array.fold_left (fun acc a -> acc + Array.length a) 0 kids in
  let ioff = Int_vec.zeros (nc + 1) in
  Array.iteri (fun c a -> Int_vec.set ioff (c + 1) (Array.length a)) kids;
  for c = 1 to nc do
    Int_vec.set ioff c (Int_vec.get ioff c + Int_vec.get ioff (c - 1))
  done;
  let w = Container.Writer.create path ~kind:Container.Index ~n_sections:container_sections in
  (try
     Container.write_graph_sections w data;
     Container.Writer.int_section w "cls" cls;
     Container.Writer.int_section w "clsk" ks;
     Container.Writer.int_section w "clsrq" rqs;
     Container.Writer.int_section w "ioff" ioff;
     Container.Writer.begin_section w "iarr";
     Array.iter (fun a -> Array.iter (Container.Writer.write_int w) a) kids;
     Container.Writer.end_section w;
     Container.Writer.begin_section w "imeta";
     Container.Writer.write_int w nc;
     Container.Writer.write_int w im;
     Container.Writer.end_section w
   with e ->
     Container.Writer.abort w;
     raise e);
  Container.Writer.finish w

let load_container ?verify path =
  Container.Reader.with_file ?verify ~kind:Container.Index path (fun h ->
      let malformed what = raise (Container.Error (Container.Malformed what)) in
      let data = Container.Reader.graph h in
      let n = Data_graph.n_nodes data in
      let cls_v = Container.Reader.int_vec h "cls" in
      let ks = Container.Reader.int_vec h "clsk" in
      let rqs = Container.Reader.int_vec h "clsrq" in
      let ioff_v = Container.Reader.int_vec h "ioff" in
      let iarr_v = Container.Reader.int_vec h "iarr" in
      let imeta = Container.Reader.int_vec h "imeta" in
      if Int_vec.length imeta < 2 then malformed "imeta";
      let nc = Int_vec.get imeta 0 and im = Int_vec.get imeta 1 in
      if nc < 1 || im < 0 then malformed "imeta counts";
      if Int_vec.length cls_v <> n then malformed "cls length";
      if Int_vec.length ks <> nc || Int_vec.length rqs <> nc then malformed "class table";
      if Int_vec.length ioff_v <> nc + 1 || Int_vec.length iarr_v <> im then
        malformed "index csr shape";
      let cls = Array.init n (fun u -> Int_vec.get cls_v u) in
      let coff = Array.init (nc + 1) (fun c -> Int_vec.get ioff_v c) in
      let carr = Array.init im (fun i -> Int_vec.get iarr_v i) in
      let dec k = if k < 0 then Index_graph.k_infinite else k in
      try
        Index_graph.of_partition_with_edges data ~cls ~n_classes:nc
          ~k_of_class:(fun c -> dec (Int_vec.get ks c))
          ~req_of_class:(fun c -> dec (Int_vec.get rqs c))
          ~children:(coff, carr)
      with Invalid_argument msg -> malformed msg)
