open Dkindex_graph

let magic = "dkindex-index 1"

let to_string t =
  let data = Index_graph.data t in
  let n = Data_graph.n_nodes data in
  let buf = Buffer.create (n * 8) in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  let graph_text = Serial.to_string data in
  Buffer.add_string buf (Printf.sprintf "graph %d\n" (String.length graph_text));
  Buffer.add_string buf graph_text;
  (* Dense class ids in first-touch order over data nodes. *)
  let dense = Hashtbl.create 256 in
  let order = ref [] and count = ref 0 in
  Buffer.add_string buf "cls\n";
  for u = 0 to n - 1 do
    let id = Index_graph.cls t u in
    let c =
      match Hashtbl.find_opt dense id with
      | Some c -> c
      | None ->
        let c = !count in
        incr count;
        Hashtbl.add dense id c;
        order := id :: !order;
        c
    in
    Buffer.add_string buf (string_of_int c);
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "classes %d\n" !count);
  List.iter
    (fun id ->
      let nd = Index_graph.node t id in
      let enc k = if k >= Index_graph.k_infinite then -1 else k in
      Buffer.add_string buf
        (Printf.sprintf "%d %d\n" (enc nd.Index_graph.k) (enc nd.Index_graph.req)))
    (List.rev !order);
  Buffer.contents buf

let of_string s =
  let fail fmt = Printf.ksprintf failwith fmt in
  let len = String.length s in
  let line_end pos = match String.index_from_opt s pos '\n' with
    | Some i -> i
    | None -> fail "Index_serial.of_string: truncated"
  in
  let read_line pos =
    let e = line_end pos in
    (String.sub s pos (e - pos), e + 1)
  in
  let header, pos = read_line 0 in
  if not (String.equal header magic) then fail "Index_serial.of_string: bad magic";
  let graph_line, pos = read_line pos in
  let graph_len =
    match String.split_on_char ' ' graph_line with
    | [ "graph"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 && pos + n <= len -> n
      | _ -> fail "Index_serial.of_string: bad graph length")
    | _ -> fail "Index_serial.of_string: expected 'graph <len>'"
  in
  let data = Serial.of_string (String.sub s pos graph_len) in
  let pos = pos + graph_len in
  let marker, pos = read_line pos in
  if not (String.equal marker "cls") then fail "Index_serial.of_string: expected 'cls'";
  let n = Data_graph.n_nodes data in
  let cls = Array.make n 0 in
  let pos = ref pos in
  for u = 0 to n - 1 do
    let line, next = read_line !pos in
    (match int_of_string_opt line with
    | Some c when c >= 0 -> cls.(u) <- c
    | _ -> fail "Index_serial.of_string: bad class for node %d" u);
    pos := next
  done;
  let classes_line, next = read_line !pos in
  pos := next;
  let m =
    match String.split_on_char ' ' classes_line with
    | [ "classes"; m ] -> (
      match int_of_string_opt m with
      | Some m when m > 0 -> m
      | _ -> fail "Index_serial.of_string: bad class count")
    | _ -> fail "Index_serial.of_string: expected 'classes <m>'"
  in
  Array.iter (fun c -> if c >= m then fail "Index_serial.of_string: class out of range") cls;
  let ks = Array.make m 0 and reqs = Array.make m 0 in
  for c = 0 to m - 1 do
    let line, next = read_line !pos in
    (match String.split_on_char ' ' line with
    | [ k; req ] -> (
      match (int_of_string_opt k, int_of_string_opt req) with
      | Some k, Some req ->
        ks.(c) <- (if k < 0 then Index_graph.k_infinite else k);
        reqs.(c) <- (if req < 0 then Index_graph.k_infinite else req)
      | _ -> fail "Index_serial.of_string: bad class line %d" c)
    | _ -> fail "Index_serial.of_string: bad class line %d" c);
    pos := next
  done;
  Index_graph.of_partition data ~cls ~n_classes:m
    ~k_of_class:(fun c -> ks.(c))
    ~req_of_class:(fun c -> reqs.(c))

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
