(** Sets of node / index-node identifiers. *)

include Set.Make (Int)

let of_list_rev l = List.fold_left (fun acc x -> add x acc) empty l
