(** The strong DataGuide of Goldman and Widom (VLDB 1997).

    Built by determinizing the data graph from the root (subset
    construction): each state is the target set of one or more rooted
    label paths.  Unlike the bisimulation indexes, extents may overlap
    and the number of states can be exponential in the data size —
    which is why the paper rules it out for complex graph data; it is
    provided here as the related-work comparison point (experiment
    ExtD). *)

open Dkindex_graph

type t

exception Too_large of int

val build : ?max_states:int -> Data_graph.t -> t
(** @raise Too_large when more than [max_states] (default 1_000_000)
    states would be created. *)

val n_states : t -> int
val n_edges : t -> int

val eval_label_path : t -> Label.t array -> cost:Dkindex_pathexpr.Cost.t -> int list
(** Evaluate a plain label path (matching anywhere, like
    {!Matcher.eval_label_path}); exact, no validation needed. *)
