(** The label-split index: one index node per distinct label.

    This is "the simplest index graph", i.e. the D(k)-index with all
    local similarities 0, and equal to the A(0)-index. *)

val build : Dkindex_graph.Data_graph.t -> Index_graph.t
