open Dkindex_graph
module Cost = Dkindex_pathexpr.Cost

type issue = { subject : string; problem : string }
type report = { issues : issue list; checked_nodes : int; checked_queries : int }

let structure t =
  match Index_graph.check_invariants t with
  | () -> []
  | exception Failure msg -> [ { subject = "index structure"; problem = msg } ]

(* Label-path sets of length exactly [j] ending at a data node. *)
let path_sets g =
  let module Paths = Set.Make (struct
    type t = int list

    let compare = compare
  end) in
  let memo : (int * int, Paths.t) Hashtbl.t = Hashtbl.create 1024 in
  let rec paths u j =
    if j <= 1 then Paths.singleton [ Label.to_int (Data_graph.label g u) ]
    else
      match Hashtbl.find_opt memo (u, j) with
      | Some set -> set
      | None ->
        let own = Label.to_int (Data_graph.label g u) in
        let set =
          List.fold_left
            (fun acc p ->
              Paths.fold (fun path acc -> Paths.add (path @ [ own ]) acc) (paths p (j - 1)) acc)
            Paths.empty (Data_graph.parents g u)
        in
        Hashtbl.add memo (u, j) set;
        set
  in
  fun u j -> Paths.elements (paths u j)

let take n a = Array.to_list (Array.sub a 0 (min n (Array.length a)))

let soundness ?(max_k = 5) ?(max_extent = 64) t =
  let g = Index_graph.data t in
  let sets = path_sets g in
  let issues = ref [] in
  Index_graph.iter_alive t (fun nd ->
      let k = min max_k nd.Index_graph.k in
      match take max_extent nd.Index_graph.extent with
      | [] | [ _ ] -> ()
      | first :: rest ->
        (try
           for j = 1 to k + 1 do
             let expected = sets first j in
             List.iter
               (fun other ->
                 if not (Stdlib.( = ) (sets other j) expected) then begin
                   issues :=
                     {
                       subject = Printf.sprintf "index node %d" nd.Index_graph.id;
                       problem =
                         Printf.sprintf
                           "extent members %d and %d disagree on incoming label paths of length %d (k=%d)"
                           first other j nd.Index_graph.k;
                     }
                     :: !issues;
                   raise Exit
                 end)
               rest
           done
         with Exit -> ()));
  List.rev !issues

let check_queries t workload =
  (* exported as [queries] *)
  let g = Index_graph.data t in
  let pool = Data_graph.pool g in
  List.filter_map
    (fun q ->
      let expected = Dkindex_pathexpr.Matcher.eval_label_path g q ~cost:(Cost.create ()) in
      let got = (Query_eval.eval_path t q).Query_eval.nodes in
      if Stdlib.( = ) expected got then None
      else
        Some
          {
            subject =
              Printf.sprintf "query %s"
                (String.concat "."
                   (Array.to_list (Array.map (Label.Pool.name pool) q)));
            problem =
              Printf.sprintf "index answered %d nodes, data graph %d" (List.length got)
                (List.length expected);
          })
    workload

let run ?(quick = false) ?(queries = ([] : Label.t array list)) t =
  let query_issues = check_queries t queries in
  let structural = structure t in
  let sound = if quick then [] else soundness t in
  {
    issues = structural @ sound @ query_issues;
    checked_nodes = Index_graph.n_nodes t;
    checked_queries = List.length queries;
  }

let pp_report ppf r =
  if r.issues = [] then
    Format.fprintf ppf "OK: %d index nodes and %d queries verified@." r.checked_nodes
      r.checked_queries
  else begin
    Format.fprintf ppf "%d issue(s) found:@." (List.length r.issues);
    List.iter (fun i -> Format.fprintf ppf "  %s: %s@." i.subject i.problem) r.issues
  end

let queries = check_queries
