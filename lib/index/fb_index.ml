open Dkindex_graph

(* One backward round (split by child classes), mirroring
   Kbisim.refine's forward round. *)
let refine_by_children g (p : Kbisim.partition) =
  let n = Data_graph.n_nodes g in
  let table : (int * int list, int) Hashtbl.t = Hashtbl.create (p.n_classes * 2) in
  let cls = Array.make n 0 in
  let count = ref 0 and parent_class = ref [] in
  for u = 0 to n - 1 do
    let children_key = ref [] in
    Data_graph.iter_children g u (fun v -> children_key := p.cls.(v) :: !children_key);
    let key = (p.cls.(u), List.sort_uniq compare !children_key) in
    let c' =
      match Hashtbl.find_opt table key with
      | Some c' -> c'
      | None ->
        let c' = !count in
        incr count;
        Hashtbl.add table key c';
        parent_class := p.cls.(u) :: !parent_class;
        c'
    in
    cls.(u) <- c'
  done;
  ( { Kbisim.cls; n_classes = !count; parent_class = Array.of_list (List.rev !parent_class) },
    !count <> p.n_classes )

let fixpoint g =
  let rec go p rounds =
    let p1, fwd = Kbisim.refine g p ~eligible:(fun _ -> true) in
    let p2, bwd = refine_by_children g p1 in
    if fwd || bwd then go p2 (rounds + 1) else (p, rounds)
  in
  go (Kbisim.label_partition g) 0

let build g =
  let p, _ = fixpoint g in
  Index_graph.of_partition g ~cls:p.Kbisim.cls ~n_classes:p.Kbisim.n_classes
    ~k_of_class:(fun _ -> Index_graph.k_infinite)
    ~req_of_class:(fun _ -> Index_graph.k_infinite)

let rounds g = snd (fixpoint g)
