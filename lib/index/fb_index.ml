let fixpoint g =
  let rec go p rounds =
    let p1, fwd = Kbisim.refine g p ~eligible:(fun _ -> true) in
    let p2, bwd = Kbisim.refine_by_children g p1 in
    if fwd || bwd then go p2 (rounds + 1) else (p, rounds)
  in
  go (Kbisim.label_partition g) 0

let build g =
  let p, _ = fixpoint g in
  Index_graph.of_partition g ~cls:p.Kbisim.cls ~n_classes:p.Kbisim.n_classes
    ~k_of_class:(fun _ -> Index_graph.k_infinite)
    ~req_of_class:(fun _ -> Index_graph.k_infinite)

let rounds g = snd (fixpoint g)
