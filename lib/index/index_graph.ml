open Dkindex_graph

type inode = {
  id : int;
  label : Label.t;
  mutable extent : int array;  (* sorted increasing *)
  mutable extent_size : int;
  mutable k : int;
  mutable req : int;
}

(* Index adjacency mirrors Data_graph's layout: one flat offsets array
   plus one flat neighbor array per direction (each run sorted
   increasing), with an overflow layer — per-node extra-edge lists for
   additions, a tombstone table for deletions — folded back into fresh
   CSR arrays once it grows past a fraction of the edge count.  Index
   node ids allocated after the last rebuild ([id >= csr_n]) live
   purely in the overflow until the next fold. *)
type adj = {
  mutable off : int array;  (* csr_n + 1 offsets into arr *)
  mutable arr : int array;  (* neighbor runs, each sorted increasing *)
  mutable csr_n : int;  (* node-id space covered by the offsets *)
}

type t = {
  data : Data_graph.t;
  cls : int array;
  mutable nodes : inode option array;
  mutable next_id : int;
  mutable n_alive : int;
  mutable n_iedges : int;  (* live index edges, maintained exactly *)
  children : adj;
  parents : adj;
  mutable extra_children : int list array;  (* capacity tracks [nodes] *)
  mutable extra_parents : int list array;
  deleted : (int, unit) Hashtbl.t;  (* tombstoned CSR edges, keyed by [edge_key] *)
  mutable del_out : int array;  (* id -> tombstoned out-edges; capacity tracks [nodes] *)
  mutable del_in : int array;  (* id -> tombstoned in-edges *)
  mutable n_extra : int;
  mutable n_deleted : int;
  mutable rebuild_at : int;  (* overflow size that triggers a rebuild *)
  by_label : int list array;
      (* label code -> index node ids, possibly stale; appended to on
         allocation and compacted on read only when [dead_in_bucket]
         says something in the bucket actually died *)
  dead_in_bucket : int array;  (* label code -> dead ids still in bucket *)
  live_count : int array;  (* label code -> live index nodes *)
  forwards : (int, int list) Hashtbl.t;  (* dead id -> ids that replaced it *)
  mutable generation : int;
      (* bumped on every mutation; validation caches snapshot it *)
  mutable tracer : (int -> unit) option;
      (* structural-change observer: called with every index node id
         whose summary-relevant state changes (see [set_tracer]) *)
  mutable stamp_arr : int array;  (* scratch for [attach_edges] dedup *)
  mutable stamp : int;
  mutable scratch : int array;
}

let k_infinite = max_int / 4

let data t = t.data

let node t id =
  if id < 0 || id >= t.next_id then
    invalid_arg (Printf.sprintf "Index_graph.node: id %d out of range" id)
  else
    match t.nodes.(id) with
    | Some nd -> nd
    | None -> invalid_arg (Printf.sprintf "Index_graph.node: id %d is dead" id)

let is_alive t id = id >= 0 && id < t.next_id && Option.is_some t.nodes.(id)
let cls t u = t.cls.(u)
let root_node t = t.cls.(Data_graph.root t.data)
let n_nodes t = t.n_alive
let max_id t = t.next_id
let n_edges t = t.n_iedges
let generation t = t.generation
let touch t = t.generation <- t.generation + 1
let set_tracer t f = t.tracer <- f
let trace t id = match t.tracer with Some f -> f id | None -> ()

let extent_mem nd u =
  Int_arr.mem_range nd.extent ~lo:0 ~hi:(Array.length nd.extent) u

let extent_min nd = nd.extent.(0)

let iter_alive t f =
  for id = 0 to t.next_id - 1 do
    match t.nodes.(id) with Some nd -> f nd | None -> ()
  done

let fold_alive t ~init ~f =
  let acc = ref init in
  iter_alive t (fun nd -> acc := f !acc nd);
  !acc

(* ------------------------------------------------------------------ *)
(* Adjacency: CSR run (skipping tombstones when any exist) + overflow *)

(* Tombstones are keyed by one immediate int, not an (int * int) tuple:
   membership tests sit on the iteration hot path, and hashing a tuple
   both allocates and follows pointers.  Index-node ids are array
   indexes, far below 2^31, so the packing cannot collide.  [del_out] /
   [del_in] count tombstones per endpoint so iteration over the vast
   majority of nodes — whose runs contain no tombstoned edge — skips
   the table entirely even mid-churn. *)
let edge_key a b = (a lsl 31) lor b

let iter_children t id f =
  if id < t.children.csr_n then begin
    let off = t.children.off and arr = t.children.arr in
    if t.del_out.(id) = 0 then
      for i = off.(id) to off.(id + 1) - 1 do
        f arr.(i)
      done
    else
      for i = off.(id) to off.(id + 1) - 1 do
        if not (Hashtbl.mem t.deleted (edge_key id arr.(i))) then f arr.(i)
      done
  end;
  if t.n_extra > 0 then List.iter f t.extra_children.(id)

let iter_parents t id f =
  if id < t.parents.csr_n then begin
    let off = t.parents.off and arr = t.parents.arr in
    if t.del_in.(id) = 0 then
      for i = off.(id) to off.(id + 1) - 1 do
        f arr.(i)
      done
    else
      for i = off.(id) to off.(id + 1) - 1 do
        if not (Hashtbl.mem t.deleted (edge_key arr.(i) id)) then f arr.(i)
      done
  end;
  if t.n_extra > 0 then List.iter f t.extra_parents.(id)

let exists_children t id pred =
  let found = ref false in
  if id < t.children.csr_n then begin
    let off = t.children.off and arr = t.children.arr in
    let i = ref off.(id) and hi = off.(id + 1) in
    if t.del_out.(id) = 0 then
      while (not !found) && !i < hi do
        if pred arr.(!i) then found := true;
        incr i
      done
    else
      while (not !found) && !i < hi do
        if (not (Hashtbl.mem t.deleted (edge_key id arr.(!i)))) && pred arr.(!i) then found := true;
        incr i
      done
  end;
  !found || (t.n_extra > 0 && List.exists pred t.extra_children.(id))

let exists_parents t id pred =
  let found = ref false in
  if id < t.parents.csr_n then begin
    let off = t.parents.off and arr = t.parents.arr in
    let i = ref off.(id) and hi = off.(id + 1) in
    if t.del_in.(id) = 0 then
      while (not !found) && !i < hi do
        if pred arr.(!i) then found := true;
        incr i
      done
    else
      while (not !found) && !i < hi do
        if (not (Hashtbl.mem t.deleted (edge_key arr.(!i) id))) && pred arr.(!i) then found := true;
        incr i
      done
  end;
  !found || (t.n_extra > 0 && List.exists pred t.extra_parents.(id))

let collect_sorted t a ~extra ~ndel ~del id =
  let base = ref [] in
  if id < a.csr_n then begin
    let off = a.off and arr = a.arr in
    for i = off.(id + 1) - 1 downto off.(id) do
      if ndel = 0 || not (Hashtbl.mem t.deleted (del id arr.(i))) then
        base := arr.(i) :: !base
    done
  end;
  match (if t.n_extra = 0 then [] else extra.(id)) with
  | [] -> !base
  | extras -> List.merge Int.compare !base (List.sort Int.compare extras)

let children_list t id =
  collect_sorted t t.children ~extra:t.extra_children ~ndel:t.del_out.(id) ~del:edge_key id

let parents_list t id =
  collect_sorted t t.parents ~extra:t.extra_parents ~ndel:t.del_in.(id)
    ~del:(fun a b -> edge_key b a) id

let out_degree t id =
  let d = ref 0 in
  iter_children t id (fun _ -> incr d);
  !d

let in_degree t id =
  let d = ref 0 in
  iter_parents t id (fun _ -> incr d);
  !d

let in_csr t a b =
  a < t.children.csr_n
  && Int_arr.mem_range t.children.arr ~lo:t.children.off.(a) ~hi:t.children.off.(a + 1) b

let has_index_edge t a b =
  (not (t.del_out.(a) > 0 && Hashtbl.mem t.deleted (edge_key a b)))
  && (in_csr t a b || (t.n_extra > 0 && List.memq b t.extra_children.(a)))

(* Balances split bursts against read speed: rebuilding at m/4 made an
   update cascade rebuild the CSR several times over, while letting the
   overflow grow to m leaves enough edges outside the flat arrays to
   slow query traversal measurably.  (Serving paths sidestep the
   tradeoff entirely via [prepare_serving].)  The threshold also charges
   for the id space: [rebuild_csr] scans every id ever allocated, and
   split cascades grow [next_id] well past the live edge count, so a
   threshold in edges alone made cascades rebuild ever more expensively
   at the same frequency. *)
let rebuild_threshold ~next_id m = max 64 ((m + next_id) / 2)

(* Fold the overflow layer back into flat arrays covering every id
   allocated so far.  Amortized: runs after O(n_iedges) overflow
   operations and costs O(next_id + edges). *)
let rebuild_csr t =
  let n = t.next_id in
  let deg = Array.make (n + 1) 0 in
  for id = 0 to n - 1 do
    iter_children t id (fun _ -> deg.(id + 1) <- deg.(id + 1) + 1)
  done;
  for i = 1 to n do
    deg.(i) <- deg.(i) + deg.(i - 1)
  done;
  let fill = Array.copy deg in
  let arr = Array.make deg.(n) 0 in
  for id = 0 to n - 1 do
    iter_children t id (fun c ->
        arr.(fill.(id)) <- c;
        fill.(id) <- fill.(id) + 1)
  done;
  for id = 0 to n - 1 do
    Int_arr.sort_range arr ~lo:deg.(id) ~hi:deg.(id + 1)
  done;
  (* Reverse direction: scanning sources ascending appends each parent
     in increasing order, so runs come out sorted without a sort. *)
  let pdeg = Array.make (n + 1) 0 in
  Array.iter (fun v -> pdeg.(v + 1) <- pdeg.(v + 1) + 1) arr;
  for i = 1 to n do
    pdeg.(i) <- pdeg.(i) + pdeg.(i - 1)
  done;
  let pfill = Array.copy pdeg in
  let parr = Array.make (Array.length arr) 0 in
  for id = 0 to n - 1 do
    for i = deg.(id) to deg.(id + 1) - 1 do
      let v = arr.(i) in
      parr.(pfill.(v)) <- id;
      pfill.(v) <- pfill.(v) + 1
    done
  done;
  t.children.off <- deg;
  t.children.arr <- arr;
  t.children.csr_n <- n;
  t.parents.off <- pdeg;
  t.parents.arr <- parr;
  t.parents.csr_n <- n;
  let cap = Array.length t.nodes in
  t.extra_children <- Array.make cap [];
  t.extra_parents <- Array.make cap [];
  Hashtbl.reset t.deleted;
  t.del_out <- Array.make cap 0;
  t.del_in <- Array.make cap 0;
  t.n_extra <- 0;
  t.n_deleted <- 0;
  t.rebuild_at <- rebuild_threshold ~next_id:t.next_id t.n_iedges

let maybe_rebuild t = if t.n_extra + t.n_deleted > t.rebuild_at then rebuild_csr t

let flatten t =
  if t.n_extra + t.n_deleted > 0 || t.children.csr_n < t.next_id then rebuild_csr t

let csr_children t =
  flatten t;
  (t.children.off, t.children.arr)

let csr_parents t =
  flatten t;
  (t.parents.off, t.parents.arr)

(* Raw edge insert/delete: exact dedup, exact [n_iedges], amortized
   rebuild.  Do not bump [generation] here — the public entry points
   do, once per logical operation. *)
let add_edge_raw t a b =
  if t.del_out.(a) > 0 && Hashtbl.mem t.deleted (edge_key a b) then begin
    (* The slot still exists in the CSR: just lift the tombstone. *)
    Hashtbl.remove t.deleted (edge_key a b);
    t.del_out.(a) <- t.del_out.(a) - 1;
    t.del_in.(b) <- t.del_in.(b) - 1;
    t.n_deleted <- t.n_deleted - 1;
    t.n_iedges <- t.n_iedges + 1
  end
  else if
    not (in_csr t a b || (t.n_extra > 0 && List.memq b t.extra_children.(a)))
  then begin
    t.extra_children.(a) <- b :: t.extra_children.(a);
    t.extra_parents.(b) <- a :: t.extra_parents.(b);
    t.n_extra <- t.n_extra + 1;
    t.n_iedges <- t.n_iedges + 1;
    maybe_rebuild t
  end

let remove_once x l =
  let rec go acc = function
    | [] -> None
    | y :: rest -> if y = x then Some (List.rev_append acc rest) else go (y :: acc) rest
  in
  go [] l

(* No-op if the edge is absent. *)
let remove_edge_raw t a b =
  if t.del_out.(a) > 0 && Hashtbl.mem t.deleted (edge_key a b) then ()
  else if in_csr t a b then begin
    Hashtbl.replace t.deleted (edge_key a b) ();
    t.del_out.(a) <- t.del_out.(a) + 1;
    t.del_in.(b) <- t.del_in.(b) + 1;
    t.n_deleted <- t.n_deleted + 1;
    t.n_iedges <- t.n_iedges - 1;
    maybe_rebuild t
  end
  else
    match remove_once b t.extra_children.(a) with
    | None -> ()
    | Some rest ->
      t.extra_children.(a) <- rest;
      (match remove_once a t.extra_parents.(b) with
      | Some rest -> t.extra_parents.(b) <- rest
      | None -> assert false);
      t.n_extra <- t.n_extra - 1;
      t.n_iedges <- t.n_iedges - 1

(* ------------------------------------------------------------------ *)
(* Node allocation *)

let grow_capacity t =
  let cap = max 16 (2 * Array.length t.nodes) in
  let nodes = Array.make cap None in
  Array.blit t.nodes 0 nodes 0 t.next_id;
  t.nodes <- nodes;
  let ec = Array.make cap [] and ep = Array.make cap [] in
  Array.blit t.extra_children 0 ec 0 t.next_id;
  Array.blit t.extra_parents 0 ep 0 t.next_id;
  t.extra_children <- ec;
  t.extra_parents <- ep;
  let dout = Array.make cap 0 and din = Array.make cap 0 in
  Array.blit t.del_out 0 dout 0 t.next_id;
  Array.blit t.del_in 0 din 0 t.next_id;
  t.del_out <- dout;
  t.del_in <- din

let alloc t ~label ~extent ~k ~req =
  if t.next_id >= Array.length t.nodes then grow_capacity t;
  let id = t.next_id in
  let nd = { id; label; extent; extent_size = Array.length extent; k; req } in
  t.nodes.(id) <- Some nd;
  t.next_id <- id + 1;
  t.n_alive <- t.n_alive + 1;
  let code = Label.to_int label in
  t.by_label.(code) <- id :: t.by_label.(code);
  t.live_count.(code) <- t.live_count.(code) + 1;
  nd

let kill t id =
  match t.nodes.(id) with
  | Some nd ->
    t.nodes.(id) <- None;
    t.n_alive <- t.n_alive - 1;
    let code = Label.to_int nd.label in
    t.dead_in_bucket.(code) <- t.dead_in_bucket.(code) + 1;
    t.live_count.(code) <- t.live_count.(code) - 1
  | None -> ()

(* Drop every edge incident to [id] (both directions).  Only called on
   a node about to be retired by [split], so this is a bulk path: the
   generic [remove_edge_raw] pays a [remove_once] list scan per edge,
   which goes quadratic when the node's adjacency sits entirely in the
   overflow layer (the common case for a freshly-split node that splits
   again during an update cascade).  Here the CSR runs are tombstoned
   wholesale — skipping the tombstone table entirely when the node has
   no tombstones yet — and the node's own overflow lists are cleared in
   one sweep, leaving only the unavoidable neighbor-side removals. *)
let detach_all t id =
  (* CSR-resident out-edges. *)
  if id < t.children.csr_n then begin
    let off = t.children.off and arr = t.children.arr in
    let lo = off.(id) and hi = off.(id + 1) in
    if t.del_out.(id) = 0 then begin
      (* No tombstone can name this node as source: every slot is live. *)
      for i = lo to hi - 1 do
        let c = arr.(i) in
        Hashtbl.replace t.deleted (edge_key id c) ();
        t.del_in.(c) <- t.del_in.(c) + 1;
        t.n_deleted <- t.n_deleted + 1;
        t.n_iedges <- t.n_iedges - 1
      done;
      t.del_out.(id) <- t.del_out.(id) + (hi - lo)
    end
    else
      for i = lo to hi - 1 do
        let c = arr.(i) in
        if not (Hashtbl.mem t.deleted (edge_key id c)) then begin
          Hashtbl.replace t.deleted (edge_key id c) ();
          t.del_out.(id) <- t.del_out.(id) + 1;
          t.del_in.(c) <- t.del_in.(c) + 1;
          t.n_deleted <- t.n_deleted + 1;
          t.n_iedges <- t.n_iedges - 1
        end
      done
  end;
  (* CSR-resident in-edges.  A self-loop tombstoned above left
     [del_in id > 0], routing this loop through the probing branch. *)
  if id < t.parents.csr_n then begin
    let off = t.parents.off and arr = t.parents.arr in
    let lo = off.(id) and hi = off.(id + 1) in
    if t.del_in.(id) = 0 then begin
      for i = lo to hi - 1 do
        let p = arr.(i) in
        Hashtbl.replace t.deleted (edge_key p id) ();
        t.del_out.(p) <- t.del_out.(p) + 1;
        t.n_deleted <- t.n_deleted + 1;
        t.n_iedges <- t.n_iedges - 1
      done;
      t.del_in.(id) <- t.del_in.(id) + (hi - lo)
    end
    else
      for i = lo to hi - 1 do
        let p = arr.(i) in
        if not (Hashtbl.mem t.deleted (edge_key p id)) then begin
          Hashtbl.replace t.deleted (edge_key p id) ();
          t.del_out.(p) <- t.del_out.(p) + 1;
          t.del_in.(id) <- t.del_in.(id) + 1;
          t.n_deleted <- t.n_deleted + 1;
          t.n_iedges <- t.n_iedges - 1
        end
      done
  end;
  (* Overflow edges: clear this node's lists wholesale; only the
     neighbor-side lists need a scan.  A self-loop appears in both of
     the node's own lists but is one edge — count it once. *)
  let removed = ref 0 in
  (match t.extra_children.(id) with
  | [] -> ()
  | mine ->
    List.iter
      (fun c ->
        incr removed;
        if c <> id then
          match remove_once id t.extra_parents.(c) with
          | Some rest -> t.extra_parents.(c) <- rest
          | None -> assert false)
      mine;
    t.extra_children.(id) <- []);
  (match t.extra_parents.(id) with
  | [] -> ()
  | mine ->
    List.iter
      (fun p ->
        if p <> id then begin
          incr removed;
          match remove_once id t.extra_children.(p) with
          | Some rest -> t.extra_children.(p) <- rest
          | None -> assert false
        end)
      mine;
    t.extra_parents.(id) <- []);
  if !removed > 0 then begin
    t.n_extra <- t.n_extra - !removed;
    t.n_iedges <- t.n_iedges - !removed
  end;
  maybe_rebuild t

let nodes_with_label t l =
  let code = Label.to_int l in
  if code < 0 || code >= Array.length t.by_label then []
  else if t.dead_in_bucket.(code) = 0 then t.by_label.(code)
  else begin
    let live = List.filter (is_alive t) t.by_label.(code) in
    t.by_label.(code) <- live;
    t.dead_in_bucket.(code) <- 0;
    live
  end

let count_with_label t l =
  let code = Label.to_int l in
  if code < 0 || code >= Array.length t.live_count then 0 else t.live_count.(code)

let max_k t =
  fold_alive t ~init:0 ~f:(fun acc nd ->
      if nd.k < k_infinite && nd.k > acc then nd.k else acc)

let ensure_scratch t =
  if Array.length t.stamp_arr < t.next_id then begin
    let cap = max 64 (2 * t.next_id) in
    t.stamp_arr <- Array.make cap 0;
    t.scratch <- Array.make cap 0;
    t.stamp <- 0
  end

(* Recompute [nd]'s adjacency from the data graph and patch neighbors'
   runs to point back.  [t.cls] must already map nd's extent to nd.id.
   The distinct neighbor classes are collected first with a stamp-array
   dedup so [add_edge_raw] (tombstone probe, binary search, overflow
   scan) runs once per distinct index edge, not once per data edge. *)
let attach_edges t nd =
  ensure_scratch t;
  let stamp_arr = t.stamp_arr and scratch = t.scratch in
  t.stamp <- t.stamp + 1;
  let s = t.stamp in
  let n = ref 0 in
  Array.iter
    (fun u ->
      Data_graph.iter_parents t.data u (fun p ->
          let ip = t.cls.(p) in
          if stamp_arr.(ip) <> s then begin
            stamp_arr.(ip) <- s;
            scratch.(!n) <- ip;
            incr n
          end))
    nd.extent;
  for i = 0 to !n - 1 do
    add_edge_raw t scratch.(i) nd.id
  done;
  t.stamp <- t.stamp + 1;
  let s = t.stamp in
  n := 0;
  Array.iter
    (fun u ->
      Data_graph.iter_children t.data u (fun c ->
          let ic = t.cls.(c) in
          if stamp_arr.(ic) <> s then begin
            stamp_arr.(ic) <- s;
            scratch.(!n) <- ic;
            incr n
          end))
    nd.extent;
  for i = 0 to !n - 1 do
    add_edge_raw t nd.id scratch.(i)
  done

(* Nodes, extents and the [cls] map of a partition — everything but
   the index edges, shared by [of_partition] (which projects the data
   edges) and [of_partition_with_edges] (which installs a precomputed
   CSR, e.g. from an index container). *)
let partition_nodes ~fname g ~cls ~n_classes ~k_of_class ~req_of_class =
  let n = Data_graph.n_nodes g in
  if Array.length cls <> n then invalid_arg (fname ^ ": cls size mismatch");
  let sizes = Array.make n_classes 0 in
  let labels = Array.make n_classes None in
  for u = 0 to n - 1 do
    let c = cls.(u) in
    if c < 0 || c >= n_classes then invalid_arg (fname ^ ": class out of range");
    sizes.(c) <- sizes.(c) + 1;
    let l = Data_graph.label g u in
    match labels.(c) with
    | None -> labels.(c) <- Some l
    | Some l' ->
      if not (Label.equal l l') then invalid_arg (fname ^ ": class mixes labels")
  done;
  (* Fill extents by a second ascending scan: each comes out sorted. *)
  let extents = Array.map (fun s -> Array.make s 0) sizes in
  let fill = Array.make n_classes 0 in
  for u = 0 to n - 1 do
    let c = cls.(u) in
    extents.(c).(fill.(c)) <- u;
    fill.(c) <- fill.(c) + 1
  done;
  let t =
    {
      data = g;
      cls = Array.copy cls;
      nodes = Array.make (max 16 n_classes) None;
      next_id = 0;
      n_alive = 0;
      n_iedges = 0;
      children = { off = [| 0 |]; arr = [||]; csr_n = 0 };
      parents = { off = [| 0 |]; arr = [||]; csr_n = 0 };
      extra_children = Array.make (max 16 n_classes) [];
      extra_parents = Array.make (max 16 n_classes) [];
      deleted = Hashtbl.create 8;
      del_out = Array.make (max 16 n_classes) 0;
      del_in = Array.make (max 16 n_classes) 0;
      n_extra = 0;
      n_deleted = 0;
      rebuild_at = 32;
      by_label = Array.make (Label.Pool.count (Data_graph.pool g)) [];
      dead_in_bucket = Array.make (Label.Pool.count (Data_graph.pool g)) 0;
      live_count = Array.make (Label.Pool.count (Data_graph.pool g)) 0;
      forwards = Hashtbl.create 64;
      generation = 0;
      tracer = None;
      stamp_arr = [||];
      stamp = 0;
      scratch = [||];
    }
  in
  for c = 0 to n_classes - 1 do
    match labels.(c) with
    | None -> invalid_arg (fname ^ ": empty class")
    | Some label ->
      ignore (alloc t ~label ~extent:extents.(c) ~k:(k_of_class c) ~req:(req_of_class c))
  done;
  t

(* Install a child CSR and derive the parent CSR from it by counting
   sort (deterministic: parent runs come out sorted because [a]
   ascends). *)
let install_from_children t n_classes ~coff ~carr =
  let m = Array.length carr in
  let pdeg = Array.make (n_classes + 1) 0 in
  Array.iter (fun v -> pdeg.(v + 1) <- pdeg.(v + 1) + 1) carr;
  for i = 1 to n_classes do
    pdeg.(i) <- pdeg.(i) + pdeg.(i - 1)
  done;
  let pfill = Array.copy pdeg in
  let parr = Array.make m 0 in
  for a = 0 to n_classes - 1 do
    for i = coff.(a) to coff.(a + 1) - 1 do
      let b = carr.(i) in
      parr.(pfill.(b)) <- a;
      pfill.(b) <- pfill.(b) + 1
    done
  done;
  t.children.off <- coff;
  t.children.arr <- carr;
  t.children.csr_n <- n_classes;
  t.parents.off <- pdeg;
  t.parents.arr <- parr;
  t.parents.csr_n <- n_classes;
  t.n_iedges <- m;
  t.rebuild_at <- rebuild_threshold ~next_id:t.next_id m

(* Same cutover point as [Kbisim.auto_threshold]: past ~16M data
   edges the in-RAM dedup structures dominate the heap, and the
   external sorter's sequential passes win anyway. *)
let external_edge_threshold = 1 lsl 24

(* Out-of-core edge projection: stream every projected (class, class)
   pair through the external sorter, then consume the globally sorted
   merge, skipping duplicates.  The merge order (src ascending, dst
   ascending within a run) IS the CSR layout, so the neighbor array
   fills left to right with no counting sort and no per-run sort —
   bit-identical to the in-RAM path's output.  Heap usage is the final
   CSR plus the [n_classes + 1] degree array; the sorter buffer is
   off-heap and spills past its budget. *)
let project_edges_external t g ~n_classes ~deg =
  let sorter = Ext_sort.Pairs.create () in
  Data_graph.iter_edges g (fun u v ->
      Ext_sort.Pairs.add sorter t.cls.(u) t.cls.(v));
  (* Distinct-pair count is unknown until the merge, so stage the
     neighbor column in an off-heap buffer sized by the (known) total
     and copy the deduplicated prefix into an exact-size array. *)
  let buf = Int_vec.create (max 1 (Ext_sort.Pairs.total sorter)) in
  let m = ref 0 in
  let prev_a = ref (-1) and prev_b = ref (-1) in
  Ext_sort.Pairs.iter_merged sorter (fun a b ->
      if a <> !prev_a || b <> !prev_b then begin
        prev_a := a;
        prev_b := b;
        Int_vec.unsafe_set buf !m b;
        incr m;
        deg.(a + 1) <- deg.(a + 1) + 1
      end);
  let carr = Array.init !m (fun i -> Int_vec.unsafe_get buf i) in
  for i = 1 to n_classes do
    deg.(i) <- deg.(i) + deg.(i - 1)
  done;
  install_from_children t n_classes ~coff:deg ~carr

(* In-RAM edge projection: project every data edge to its
   (class, class) pair, dedup, then counting-sort the distinct pairs
   straight into the CSR layout.  A flat byte matrix keeps the
   per-edge check to two loads when the class count is small; huge
   partitions fall back to a hash table. *)
let project_edges_in_ram t g ~n_classes ~deg =
  let srcs = ref (Array.make 1024 0) and dsts = ref (Array.make 1024 0) in
  let m = ref 0 in
  let push a b =
    if !m >= Array.length !srcs then begin
      let cap = 2 * Array.length !srcs in
      let s = Array.make cap 0 and d = Array.make cap 0 in
      Array.blit !srcs 0 s 0 !m;
      Array.blit !dsts 0 d 0 !m;
      srcs := s;
      dsts := d
    end;
    !srcs.(!m) <- a;
    !dsts.(!m) <- b;
    incr m;
    deg.(a + 1) <- deg.(a + 1) + 1
  in
  if n_classes * n_classes <= 1 lsl 22 then begin
    let seen = Bytes.make (n_classes * n_classes) '\000' in
    Data_graph.iter_edges g (fun u v ->
        let a = t.cls.(u) and b = t.cls.(v) in
        let i = (a * n_classes) + b in
        if Bytes.unsafe_get seen i = '\000' then begin
          Bytes.unsafe_set seen i '\001';
          push a b
        end)
  end
  else begin
    let seen = Hashtbl.create 256 in
    Data_graph.iter_edges g (fun u v ->
        let a = t.cls.(u) and b = t.cls.(v) in
        let key = (a * n_classes) + b in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          push a b
        end)
  end;
  for i = 1 to n_classes do
    deg.(i) <- deg.(i) + deg.(i - 1)
  done;
  let cfill = Array.copy deg in
  let carr = Array.make !m 0 in
  for i = 0 to !m - 1 do
    let a = !srcs.(i) in
    carr.(cfill.(a)) <- !dsts.(i);
    cfill.(a) <- cfill.(a) + 1
  done;
  for c = 0 to n_classes - 1 do
    Int_arr.sort_range carr ~lo:deg.(c) ~hi:deg.(c + 1)
  done;
  install_from_children t n_classes ~coff:deg ~carr

let of_partition ?(mode = `Auto) g ~cls ~n_classes ~k_of_class ~req_of_class =
  let t =
    partition_nodes ~fname:"Index_graph.of_partition" g ~cls ~n_classes ~k_of_class
      ~req_of_class
  in
  let project =
    match mode with
    | `External -> project_edges_external
    | `In_ram -> project_edges_in_ram
    | `Auto ->
      if Data_graph.n_edges g >= external_edge_threshold then project_edges_external
      else project_edges_in_ram
  in
  project t g ~n_classes ~deg:(Array.make (n_classes + 1) 0);
  t

let of_partition_with_edges g ~cls ~n_classes ~k_of_class ~req_of_class
    ~children:(coff, carr) =
  let fname = "Index_graph.of_partition_with_edges" in
  let t = partition_nodes ~fname g ~cls ~n_classes ~k_of_class ~req_of_class in
  (* Shape-validate the provided CSR (O(index edges), not O(data
     edges) — skipping the data-edge projection is this entry point's
     whole purpose; content integrity is the container CRC's job). *)
  if Array.length coff <> n_classes + 1 || coff.(0) <> 0 then
    invalid_arg (fname ^ ": bad offsets shape");
  for c = 0 to n_classes - 1 do
    if coff.(c) > coff.(c + 1) then invalid_arg (fname ^ ": offsets not monotone")
  done;
  if coff.(n_classes) <> Array.length carr then
    invalid_arg (fname ^ ": offsets/neighbors length mismatch");
  for c = 0 to n_classes - 1 do
    for i = coff.(c) to coff.(c + 1) - 1 do
      let b = carr.(i) in
      if b < 0 || b >= n_classes then invalid_arg (fname ^ ": neighbor out of range");
      if i > coff.(c) && carr.(i - 1) >= b then
        invalid_arg (fname ^ ": neighbor run not sorted strictly increasing")
    done
  done;
  install_from_children t n_classes ~coff ~carr;
  t

let split t id groups =
  let old = node t id in
  (match groups with
  | [] -> invalid_arg "Index_graph.split: no groups"
  | _ -> ());
  let total = List.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  if total <> old.extent_size then
    invalid_arg "Index_graph.split: groups do not cover the extent";
  match groups with
  | [ _ ] -> [ id ]
  | groups ->
    List.iter
      (fun g -> if Array.length g = 0 then invalid_arg "Index_graph.split: empty group")
      groups;
    touch t;
    trace t id;
    detach_all t id;
    kill t id;
    let fresh =
      List.map
        (fun extent -> alloc t ~label:old.label ~extent ~k:old.k ~req:old.req)
        groups
    in
    List.iter (fun nd -> Array.iter (fun u -> t.cls.(u) <- nd.id) nd.extent) fresh;
    List.iter (fun nd -> attach_edges t nd) fresh;
    let ids = List.map (fun nd -> nd.id) fresh in
    Hashtbl.replace t.forwards id ids;
    ids

let resolve t id =
  let rec go id =
    if is_alive t id then [ id ]
    else
      match Hashtbl.find_opt t.forwards id with
      | Some ids -> List.concat_map go ids
      | None -> invalid_arg (Printf.sprintf "Index_graph.resolve: unknown id %d" id)
  in
  go id

let add_index_edge t a b =
  ignore (node t a);
  ignore (node t b);
  touch t;
  trace t a;
  trace t b;
  add_edge_raw t a b

let remove_index_edge t a b =
  ignore (node t a);
  ignore (node t b);
  touch t;
  trace t a;
  trace t b;
  remove_edge_raw t a b

let set_k t id k =
  let nd = node t id in
  if nd.k <> k then begin
    touch t;
    trace t id;
    nd.k <- k
  end

let set_req t id req =
  let nd = node t id in
  if nd.req <> req then begin
    touch t;
    trace t id;
    nd.req <- req
  end

let prepare_serving t =
  flatten t;
  Array.iteri
    (fun code dead ->
      if dead > 0 then begin
        t.by_label.(code) <- List.filter (is_alive t) t.by_label.(code);
        t.dead_in_bucket.(code) <- 0
      end)
    t.dead_in_bucket;
  Data_graph.flatten t.data;
  (* Force the data graph's lazy label table so concurrent readers
     never race to build it. *)
  ignore (Data_graph.nodes_with_label t.data (Data_graph.label t.data (Data_graph.root t.data)))

let as_data_graph t =
  let map = Array.make t.n_alive 0 in
  let rev = Hashtbl.create t.n_alive in
  (* Derived node 0 must hold the data root. *)
  let root_id = root_node t in
  map.(0) <- root_id;
  Hashtbl.add rev root_id 0;
  let count = ref 1 in
  iter_alive t (fun nd ->
      if nd.id <> root_id then begin
        map.(!count) <- nd.id;
        Hashtbl.add rev nd.id !count;
        incr count
      end);
  let pool = Label.Pool.copy (Data_graph.pool t.data) in
  let labels = Array.map (fun id -> (node t id).label) map in
  let edges = ref [] in
  iter_alive t (fun nd ->
      let du = Hashtbl.find rev nd.id in
      iter_children t nd.id (fun c -> edges := (du, Hashtbl.find rev c) :: !edges));
  (Data_graph.make ~pool ~labels ~edges:!edges (), map)

let compact t =
  let dense = Hashtbl.create t.n_alive in
  let count = ref 0 in
  let ks = ref [] and reqs = ref [] in
  iter_alive t (fun nd ->
      Hashtbl.add dense nd.id !count;
      ks := (!count, nd.k) :: !ks;
      reqs := (!count, nd.req) :: !reqs;
      incr count);
  let k_of = Array.make !count 0 and req_of = Array.make !count 0 in
  List.iter (fun (c, k) -> k_of.(c) <- k) !ks;
  List.iter (fun (c, r) -> req_of.(c) <- r) !reqs;
  let cls = Array.map (fun id -> Hashtbl.find dense id) t.cls in
  of_partition t.data ~cls ~n_classes:!count
    ~k_of_class:(fun c -> k_of.(c))
    ~req_of_class:(fun c -> req_of.(c))

let partition_signature t =
  let n = Data_graph.n_nodes t.data in
  let repr = Hashtbl.create t.n_alive in
  iter_alive t (fun nd -> Hashtbl.add repr nd.id (extent_min nd, nd.k));
  Array.init n (fun u -> Hashtbl.find repr t.cls.(u))

let fail fmt = Printf.ksprintf failwith fmt

let check_invariants t =
  let n = Data_graph.n_nodes t.data in
  (* cls maps into live nodes and extents are consistent with cls. *)
  let counted = Array.make t.next_id 0 in
  for u = 0 to n - 1 do
    let c = t.cls.(u) in
    if not (is_alive t c) then fail "cls(%d) = %d is dead" u c;
    counted.(c) <- counted.(c) + 1
  done;
  iter_alive t (fun nd ->
      if nd.extent_size <> Array.length nd.extent then fail "extent_size mismatch at %d" nd.id;
      if counted.(nd.id) <> nd.extent_size then
        fail "extent of %d has %d members but cls maps %d nodes to it" nd.id nd.extent_size
          counted.(nd.id);
      for i = 1 to Array.length nd.extent - 1 do
        if nd.extent.(i - 1) >= nd.extent.(i) then fail "extent of %d not sorted" nd.id
      done;
      Array.iter
        (fun u ->
          if t.cls.(u) <> nd.id then fail "node %d in extent of %d but cls says %d" u nd.id t.cls.(u);
          if not (Label.equal (Data_graph.label t.data u) nd.label) then
            fail "label mismatch in extent of %d" nd.id)
        nd.extent);
  (* Edge store is internally consistent: runs sorted and deduped,
     both directions agree, dead nodes carry no edges, and the edge
     counter is exact. *)
  let seen_edges = ref 0 in
  for id = 0 to t.next_id - 1 do
    let cl = children_list t id in
    let pl = parents_list t id in
    if not (is_alive t id) && (cl <> [] || pl <> []) then
      fail "dead node %d still has edges" id;
    let rec check_sorted = function
      | a :: (b :: _ as rest) ->
        if a >= b then fail "adjacency run of %d not sorted/deduped" id;
        check_sorted rest
      | _ -> ()
    in
    check_sorted cl;
    check_sorted pl;
    List.iter
      (fun c ->
        incr seen_edges;
        if not (List.mem id (parents_list t c)) then
          fail "edge %d -> %d missing reverse link" id c)
      cl;
    List.iter
      (fun p ->
        if not (List.mem id (children_list t p)) then
          fail "edge %d -> %d missing forward link" p id)
      pl
  done;
  if !seen_edges <> t.n_iedges then
    fail "n_edges counter says %d but the store holds %d" t.n_iedges !seen_edges;
  (* Edges match the data graph exactly. *)
  let expected = Hashtbl.create 256 in
  Data_graph.iter_edges t.data (fun u v -> Hashtbl.replace expected (t.cls.(u), t.cls.(v)) ());
  iter_alive t (fun nd ->
      iter_children t nd.id (fun c ->
          if not (is_alive t c) then fail "edge %d -> dead %d" nd.id c;
          if not (Hashtbl.mem expected (nd.id, c)) then
            fail "index edge %d -> %d has no data counterpart" nd.id c);
      iter_parents t nd.id (fun p ->
          if not (is_alive t p) then fail "edge dead %d -> %d" p nd.id));
  Hashtbl.iter
    (fun (a, b) () ->
      if not (has_index_edge t a b) then
        fail "data edge between extents of %d and %d missing in index" a b)
    expected;
  (* Definition 3: k(parent) >= k(child) - 1 along every index edge. *)
  iter_alive t (fun nd ->
      iter_children t nd.id (fun c ->
          let kc = (node t c).k in
          if nd.k < kc - 1 then fail "D(k) violation: k(%d)=%d < k(%d)=%d - 1" nd.id nd.k c kc))

let stats_line t =
  let extent_total = fold_alive t ~init:0 ~f:(fun acc nd -> acc + nd.extent_size) in
  Printf.sprintf "index nodes=%d edges=%d data nodes=%d" t.n_alive (n_edges t) extent_total
