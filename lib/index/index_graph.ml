open Dkindex_graph

type inode = {
  id : int;
  label : Label.t;
  mutable extent : int array;  (* sorted increasing *)
  mutable extent_size : int;
  mutable k : int;
  mutable req : int;
  mutable parents : Int_set.t;
  mutable children : Int_set.t;
}

type t = {
  data : Data_graph.t;
  cls : int array;
  mutable nodes : inode option array;
  mutable next_id : int;
  mutable n_alive : int;
  by_label : int list array;
      (* label code -> index node ids, possibly stale; appended to on
         allocation and compacted on read only when [dead_in_bucket]
         says something in the bucket actually died *)
  dead_in_bucket : int array;  (* label code -> dead ids still in bucket *)
  live_count : int array;  (* label code -> live index nodes *)
  forwards : (int, int list) Hashtbl.t;  (* dead id -> ids that replaced it *)
}

let k_infinite = max_int / 4

let data t = t.data

let node t id =
  if id < 0 || id >= t.next_id then
    invalid_arg (Printf.sprintf "Index_graph.node: id %d out of range" id)
  else
    match t.nodes.(id) with
    | Some nd -> nd
    | None -> invalid_arg (Printf.sprintf "Index_graph.node: id %d is dead" id)

let is_alive t id = id >= 0 && id < t.next_id && Option.is_some t.nodes.(id)
let cls t u = t.cls.(u)
let root_node t = t.cls.(Data_graph.root t.data)
let n_nodes t = t.n_alive

let extent_mem nd u =
  Int_arr.mem_range nd.extent ~lo:0 ~hi:(Array.length nd.extent) u

let extent_min nd = nd.extent.(0)

let iter_alive t f =
  for id = 0 to t.next_id - 1 do
    match t.nodes.(id) with Some nd -> f nd | None -> ()
  done

let fold_alive t ~init ~f =
  let acc = ref init in
  iter_alive t (fun nd -> acc := f !acc nd);
  !acc

let n_edges t = fold_alive t ~init:0 ~f:(fun acc nd -> acc + Int_set.cardinal nd.children)

let nodes_with_label t l =
  let code = Label.to_int l in
  if code < 0 || code >= Array.length t.by_label then []
  else if t.dead_in_bucket.(code) = 0 then t.by_label.(code)
  else begin
    let live = List.filter (is_alive t) t.by_label.(code) in
    t.by_label.(code) <- live;
    t.dead_in_bucket.(code) <- 0;
    live
  end

let count_with_label t l =
  let code = Label.to_int l in
  if code < 0 || code >= Array.length t.live_count then 0 else t.live_count.(code)

let max_k t =
  fold_alive t ~init:0 ~f:(fun acc nd ->
      if nd.k < k_infinite && nd.k > acc then nd.k else acc)

let alloc t ~label ~extent ~k ~req =
  if t.next_id >= Array.length t.nodes then begin
    let nodes = Array.make (max 16 (2 * Array.length t.nodes)) None in
    Array.blit t.nodes 0 nodes 0 t.next_id;
    t.nodes <- nodes
  end;
  let id = t.next_id in
  let nd =
    {
      id;
      label;
      extent;
      extent_size = Array.length extent;
      k;
      req;
      parents = Int_set.empty;
      children = Int_set.empty;
    }
  in
  t.nodes.(id) <- Some nd;
  t.next_id <- id + 1;
  t.n_alive <- t.n_alive + 1;
  let code = Label.to_int label in
  t.by_label.(code) <- id :: t.by_label.(code);
  t.live_count.(code) <- t.live_count.(code) + 1;
  nd

let kill t id =
  match t.nodes.(id) with
  | Some nd ->
    t.nodes.(id) <- None;
    t.n_alive <- t.n_alive - 1;
    let code = Label.to_int nd.label in
    t.dead_in_bucket.(code) <- t.dead_in_bucket.(code) + 1;
    t.live_count.(code) <- t.live_count.(code) - 1
  | None -> ()

(* Recompute [nd]'s adjacency from the data graph and patch neighbors'
   sets to point back.  [t.cls] must already map nd's extent to nd.id. *)
let attach_edges t nd =
  Array.iter
    (fun u ->
      Data_graph.iter_parents t.data u (fun p ->
          let pc = t.cls.(p) in
          nd.parents <- Int_set.add pc nd.parents;
          (node t pc).children <- Int_set.add nd.id (node t pc).children);
      Data_graph.iter_children t.data u (fun c ->
          let cc = t.cls.(c) in
          nd.children <- Int_set.add cc nd.children;
          (node t cc).parents <- Int_set.add nd.id (node t cc).parents))
    nd.extent

let of_partition g ~cls ~n_classes ~k_of_class ~req_of_class =
  let n = Data_graph.n_nodes g in
  if Array.length cls <> n then invalid_arg "Index_graph.of_partition: cls size mismatch";
  let sizes = Array.make n_classes 0 in
  let labels = Array.make n_classes None in
  for u = 0 to n - 1 do
    let c = cls.(u) in
    if c < 0 || c >= n_classes then invalid_arg "Index_graph.of_partition: class out of range";
    sizes.(c) <- sizes.(c) + 1;
    let l = Data_graph.label g u in
    match labels.(c) with
    | None -> labels.(c) <- Some l
    | Some l' ->
      if not (Label.equal l l') then
        invalid_arg "Index_graph.of_partition: class mixes labels"
  done;
  (* Fill extents by a second ascending scan: each comes out sorted. *)
  let extents = Array.map (fun s -> Array.make s 0) sizes in
  let fill = Array.make n_classes 0 in
  for u = 0 to n - 1 do
    let c = cls.(u) in
    extents.(c).(fill.(c)) <- u;
    fill.(c) <- fill.(c) + 1
  done;
  let t =
    {
      data = g;
      cls = Array.copy cls;
      nodes = Array.make (max 16 n_classes) None;
      next_id = 0;
      n_alive = 0;
      by_label = Array.make (Label.Pool.count (Data_graph.pool g)) [];
      dead_in_bucket = Array.make (Label.Pool.count (Data_graph.pool g)) 0;
      live_count = Array.make (Label.Pool.count (Data_graph.pool g)) 0;
      forwards = Hashtbl.create 64;
    }
  in
  for c = 0 to n_classes - 1 do
    match labels.(c) with
    | None -> invalid_arg "Index_graph.of_partition: empty class"
    | Some label ->
      ignore (alloc t ~label ~extent:extents.(c) ~k:(k_of_class c) ~req:(req_of_class c))
  done;
  (* Edges: project every data edge to its (class, class) pair and
     dedup so the balanced-set inserts run only once per distinct index
     edge (data edges repeat heavily).  A flat byte matrix keeps the
     per-edge check to two loads when the class count is small; huge
     partitions fall back to a hash table. *)
  if n_classes * n_classes <= 1 lsl 22 then begin
    let seen = Bytes.make (n_classes * n_classes) '\000' in
    Data_graph.iter_edges g (fun u v ->
        let a = t.cls.(u) and b = t.cls.(v) in
        let i = (a * n_classes) + b in
        if Bytes.unsafe_get seen i = '\000' then begin
          Bytes.unsafe_set seen i '\001';
          let na = node t a and nb = node t b in
          na.children <- Int_set.add b na.children;
          nb.parents <- Int_set.add a nb.parents
        end)
  end
  else begin
    let seen = Hashtbl.create 256 in
    Data_graph.iter_edges g (fun u v ->
        let a = t.cls.(u) and b = t.cls.(v) in
        let key = (a * n_classes) + b in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          let na = node t a and nb = node t b in
          na.children <- Int_set.add b na.children;
          nb.parents <- Int_set.add a nb.parents
        end)
  end;
  t

let split t id groups =
  let old = node t id in
  (match groups with
  | [] -> invalid_arg "Index_graph.split: no groups"
  | _ -> ());
  let total = List.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  if total <> old.extent_size then
    invalid_arg "Index_graph.split: groups do not cover the extent";
  match groups with
  | [ _ ] -> [ id ]
  | groups ->
    List.iter
      (fun g -> if Array.length g = 0 then invalid_arg "Index_graph.split: empty group")
      groups;
    (* Detach the old node from its neighbors. *)
    Int_set.iter
      (fun p -> if p <> id then (node t p).children <- Int_set.remove id (node t p).children)
      old.parents;
    Int_set.iter
      (fun c -> if c <> id then (node t c).parents <- Int_set.remove id (node t c).parents)
      old.children;
    kill t id;
    let fresh =
      List.map
        (fun extent -> alloc t ~label:old.label ~extent ~k:old.k ~req:old.req)
        groups
    in
    List.iter (fun nd -> Array.iter (fun u -> t.cls.(u) <- nd.id) nd.extent) fresh;
    List.iter (fun nd -> attach_edges t nd) fresh;
    let ids = List.map (fun nd -> nd.id) fresh in
    Hashtbl.replace t.forwards id ids;
    ids

let resolve t id =
  let rec go id =
    if is_alive t id then [ id ]
    else
      match Hashtbl.find_opt t.forwards id with
      | Some ids -> List.concat_map go ids
      | None -> invalid_arg (Printf.sprintf "Index_graph.resolve: unknown id %d" id)
  in
  go id

let add_index_edge t a b =
  let na = node t a and nb = node t b in
  na.children <- Int_set.add b na.children;
  nb.parents <- Int_set.add a nb.parents

let remove_index_edge t a b =
  let na = node t a and nb = node t b in
  na.children <- Int_set.remove b na.children;
  nb.parents <- Int_set.remove a nb.parents

let set_k t id k = (node t id).k <- k
let set_req t id req = (node t id).req <- req

let as_data_graph t =
  let map = Array.make t.n_alive 0 in
  let rev = Hashtbl.create t.n_alive in
  (* Derived node 0 must hold the data root. *)
  let root_id = root_node t in
  map.(0) <- root_id;
  Hashtbl.add rev root_id 0;
  let count = ref 1 in
  iter_alive t (fun nd ->
      if nd.id <> root_id then begin
        map.(!count) <- nd.id;
        Hashtbl.add rev nd.id !count;
        incr count
      end);
  let pool = Label.Pool.copy (Data_graph.pool t.data) in
  let labels = Array.map (fun id -> (node t id).label) map in
  let edges = ref [] in
  iter_alive t (fun nd ->
      let du = Hashtbl.find rev nd.id in
      Int_set.iter (fun c -> edges := (du, Hashtbl.find rev c) :: !edges) nd.children);
  (Data_graph.make ~pool ~labels ~edges:!edges (), map)

let compact t =
  let dense = Hashtbl.create t.n_alive in
  let count = ref 0 in
  let ks = ref [] and reqs = ref [] in
  iter_alive t (fun nd ->
      Hashtbl.add dense nd.id !count;
      ks := (!count, nd.k) :: !ks;
      reqs := (!count, nd.req) :: !reqs;
      incr count);
  let k_of = Array.make !count 0 and req_of = Array.make !count 0 in
  List.iter (fun (c, k) -> k_of.(c) <- k) !ks;
  List.iter (fun (c, r) -> req_of.(c) <- r) !reqs;
  let cls = Array.map (fun id -> Hashtbl.find dense id) t.cls in
  of_partition t.data ~cls ~n_classes:!count
    ~k_of_class:(fun c -> k_of.(c))
    ~req_of_class:(fun c -> req_of.(c))

let partition_signature t =
  let n = Data_graph.n_nodes t.data in
  let repr = Hashtbl.create t.n_alive in
  iter_alive t (fun nd -> Hashtbl.add repr nd.id (extent_min nd, nd.k));
  Array.init n (fun u -> Hashtbl.find repr t.cls.(u))

let fail fmt = Printf.ksprintf failwith fmt

let check_invariants t =
  let n = Data_graph.n_nodes t.data in
  (* cls maps into live nodes and extents are consistent with cls. *)
  let counted = Array.make t.next_id 0 in
  for u = 0 to n - 1 do
    let c = t.cls.(u) in
    if not (is_alive t c) then fail "cls(%d) = %d is dead" u c;
    counted.(c) <- counted.(c) + 1
  done;
  iter_alive t (fun nd ->
      if nd.extent_size <> Array.length nd.extent then fail "extent_size mismatch at %d" nd.id;
      if counted.(nd.id) <> nd.extent_size then
        fail "extent of %d has %d members but cls maps %d nodes to it" nd.id nd.extent_size
          counted.(nd.id);
      for i = 1 to Array.length nd.extent - 1 do
        if nd.extent.(i - 1) >= nd.extent.(i) then fail "extent of %d not sorted" nd.id
      done;
      Array.iter
        (fun u ->
          if t.cls.(u) <> nd.id then fail "node %d in extent of %d but cls says %d" u nd.id t.cls.(u);
          if not (Label.equal (Data_graph.label t.data u) nd.label) then
            fail "label mismatch in extent of %d" nd.id)
        nd.extent);
  (* Edges match the data graph exactly. *)
  let expected = Hashtbl.create 256 in
  Data_graph.iter_edges t.data (fun u v -> Hashtbl.replace expected (t.cls.(u), t.cls.(v)) ());
  iter_alive t (fun nd ->
      Int_set.iter
        (fun c ->
          if not (is_alive t c) then fail "edge %d -> dead %d" nd.id c;
          if not (Hashtbl.mem expected (nd.id, c)) then
            fail "index edge %d -> %d has no data counterpart" nd.id c;
          if not (Int_set.mem nd.id (node t c).parents) then
            fail "edge %d -> %d missing reverse link" nd.id c)
        nd.children;
      Int_set.iter
        (fun p ->
          if not (is_alive t p) then fail "edge dead %d -> %d" p nd.id;
          if not (Int_set.mem nd.id (node t p).children) then
            fail "edge %d -> %d missing forward link" p nd.id)
        nd.parents);
  Hashtbl.iter
    (fun (a, b) () ->
      if not (Int_set.mem b (node t a).children) then
        fail "data edge between extents of %d and %d missing in index" a b)
    expected;
  (* Definition 3: k(parent) >= k(child) - 1 along every index edge. *)
  iter_alive t (fun nd ->
      Int_set.iter
        (fun c ->
          let kc = (node t c).k in
          if nd.k < kc - 1 then fail "D(k) violation: k(%d)=%d < k(%d)=%d - 1" nd.id nd.k c kc)
        nd.children)

let stats_line t =
  let extent_total = fold_alive t ~init:0 ~f:(fun acc nd -> acc + nd.extent_size) in
  Printf.sprintf "index nodes=%d edges=%d data nodes=%d" t.n_alive (n_edges t) extent_total
