(** Plain-text persistence for index graphs.

    The serialization embeds the underlying data graph, the partition
    (class of every data node, dense ids) and each class's local
    similarity and requirement, so a loaded index is immediately
    queryable and updatable.

    Format (version 2):
    {v
    dkindex-index 2
    counts <n_nodes> <n_edges> <n_classes>
    graph <byte length of the embedded Serial graph text>
    <embedded graph>
    cls
    <class of data node 0>
    ...
    classes <m>
    <k or -1 for infinite> <req or -1>
    ...
    v}

    The [counts] line is validated against the decoded body: a
    snapshot whose declared node/edge/class counts disagree with what
    its graph and partition actually contain is rejected.  Version-1
    documents (no [counts] line) are still read. *)

val to_string : Index_graph.t -> string
val of_string : string -> Index_graph.t
(** @raise Failure on malformed input. *)

val save : string -> Index_graph.t -> unit
(** Atomic: writes [path ^ ".tmp"], then renames over [path]. *)

val load : string -> Index_graph.t

(** {1 Container persistence}

    The binary counterpart of the text format: a
    {!Dkindex_graph.Container} of kind [Index] holding the embedded
    data graph as mappable sections plus the partition (dense
    first-touch class ids — the same numbering {!to_string} uses),
    per-class k/req, and the index adjacency itself.  Loading maps the
    data CSR in place and installs the stored index CSR directly
    ({!Index_graph.of_partition_with_edges}), so the cost is
    O(data nodes + index edges), never O(data edges). *)

val save_container : string -> Index_graph.t -> unit
(** Atomic (container tmp + rename). *)

val load_container : ?verify:bool -> string -> Index_graph.t
(** @raise Dkindex_graph.Container.Error on validation failure
    ([~verify:true] additionally streams every section CRC). *)
