(** Plain-text persistence for index graphs.

    The serialization embeds the underlying data graph, the partition
    (class of every data node, dense ids) and each class's local
    similarity and requirement, so a loaded index is immediately
    queryable and updatable.

    Format (version 2):
    {v
    dkindex-index 2
    counts <n_nodes> <n_edges> <n_classes>
    graph <byte length of the embedded Serial graph text>
    <embedded graph>
    cls
    <class of data node 0>
    ...
    classes <m>
    <k or -1 for infinite> <req or -1>
    ...
    v}

    The [counts] line is validated against the decoded body: a
    snapshot whose declared node/edge/class counts disagree with what
    its graph and partition actually contain is rejected.  Version-1
    documents (no [counts] line) are still read. *)

val to_string : Index_graph.t -> string
val of_string : string -> Index_graph.t
(** @raise Failure on malformed input. *)

val save : string -> Index_graph.t -> unit
(** Atomic: writes [path ^ ".tmp"], then renames over [path]. *)

val load : string -> Index_graph.t
