open Dkindex_graph
open Dkindex_pathexpr

type result = {
  nodes : int list;
  cost : Cost.t;
  n_candidates : int;
  n_certain : int;
}

let empty_result cost = { nodes = []; cost; n_candidates = 0; n_certain = 0 }

(* Extents are sorted arrays and (being a partition) pairwise disjoint,
   so the result list is a linear-time merge — no comparison sort. *)
let finish t cost finals ~certain ~validate =
  let n_candidates = ref 0 and n_certain = ref 0 in
  let validate = lazy (validate ()) in
  let pieces =
    List.map
      (fun id ->
        let nd = Index_graph.node t id in
        if certain nd then begin
          incr n_certain;
          nd.Index_graph.extent
        end
        else begin
          n_candidates := !n_candidates + nd.Index_graph.extent_size;
          let v = Lazy.force validate in
          let kept = Array.make nd.Index_graph.extent_size 0 in
          let w = ref 0 in
          Array.iter
            (fun u ->
              if v u then begin
                kept.(!w) <- u;
                incr w
              end)
            nd.Index_graph.extent;
          Array.sub kept 0 !w
        end)
      finals
  in
  {
    nodes = Int_arr.to_list (Int_arr.merge_many pieces);
    cost;
    n_candidates = !n_candidates;
    n_certain = !n_certain;
  }

(* Backward evaluation: does some index path matching path.(0..pos)
   end at [id]?  [pos] strictly decreases, so memoization is sound even
   on cyclic index graphs.  The memo is a flat byte plane (0 unknown,
   1 yes, 2 no) over (id, pos) — no hashing on the hot path. *)
let eval_path_backward t path ~cost =
  let m = Array.length path in
  let memo = Bytes.make (Index_graph.max_id t * m) '\000' in
  let rec matches id pos =
    Label.equal (Index_graph.node t id).Index_graph.label path.(pos)
    && (pos = 0
       ||
       let slot = (id * m) + pos in
       match Bytes.unsafe_get memo slot with
       | '\001' -> true
       | '\002' -> false
       | _ ->
         Cost.visit_index cost;
         let r = Index_graph.exists_parents t id (fun p -> matches p (pos - 1)) in
         Bytes.unsafe_set memo slot (if r then '\001' else '\002');
         r)
  in
  let targets = Index_graph.nodes_with_label t path.(m - 1) in
  List.iter (fun _ -> Cost.visit_index cost) targets;
  List.filter (fun id -> matches id (m - 1)) targets

(* Scratch for [eval_path_forward], reused across calls (domain-local,
   so batch worker domains cannot race).  The stamp array is never
   cleared: each call claims a fresh band of stamp values above [gen],
   so stale marks from earlier calls can never collide. *)
type scratch = {
  mutable stamp : int array;
  mutable cur : int array;
  mutable nxt : int array;
  mutable gen : int;
}

let scratch_key =
  Domain.DLS.new_key (fun () -> { stamp = [||]; cur = [||]; nxt = [||]; gen = 0 })

let get_scratch n =
  let s = Domain.DLS.get scratch_key in
  if Array.length s.stamp < n then begin
    s.stamp <- Array.make n 0;
    s.cur <- Array.make n 0;
    s.nxt <- Array.make n 0;
    s.gen <- 0
  end;
  s

(* Forward evaluation with flat int-array frontiers and stamp-array
   dedup, mirroring [Matcher.eval_label_path]. *)
let eval_path_forward t path ~cost =
  let m = Array.length path in
  let start = Index_graph.nodes_with_label t path.(0) in
  List.iter (fun _ -> Cost.visit_index cost) start;
  if m = 1 then start
  else begin
    let n = Index_graph.max_id t in
    let s = get_scratch n in
    let stamp = s.stamp in
    let base = s.gen in
    s.gen <- base + m;
    let cur = ref s.cur and next = ref s.nxt in
    let cur_len = ref 0 in
    List.iter
      (fun id ->
        !cur.(!cur_len) <- id;
        incr cur_len)
      start;
    for i = 1 to m - 1 do
      let w = ref 0 in
      let nxt = !next in
      for j = 0 to !cur_len - 1 do
        Index_graph.iter_children t !cur.(j) (fun child ->
            if
              stamp.(child) <> base + i
              && Label.equal (Index_graph.node t child).Index_graph.label path.(i)
            then begin
              stamp.(child) <- base + i;
              nxt.(!w) <- child;
              incr w;
              Cost.visit_index cost
            end)
      done;
      let tmp = !cur in
      cur := !next;
      next := tmp;
      cur_len := !w
    done;
    let finals = ref [] in
    for j = !cur_len - 1 downto 0 do
      finals := !cur.(j) :: !finals
    done;
    !finals
  end

(* Strategy selection shared by [eval_path] and [eval_path_finals]. *)
let matched_finals strategy t path ~cost =
  let m = Array.length path in
  let backward =
    match strategy with
    | `Forward -> false
    | `Backward -> true
    | `Auto ->
      Index_graph.count_with_label t path.(m - 1) < Index_graph.count_with_label t path.(0)
  in
  if backward then eval_path_backward t path ~cost else eval_path_forward t path ~cost

let eval_path_finals ?(strategy = `Forward) t path =
  let cost = Cost.create () in
  if Array.length path = 0 then ([], cost)
  else (matched_finals strategy t path ~cost, cost)

let eval_path ?(strategy = `Forward) ?cache t path =
  let cost = Cost.create () in
  let m = Array.length path in
  if m = 0 then empty_result cost
  else begin
    let finals = matched_finals strategy t path ~cost in
    let data = Index_graph.data t in
    finish t cost finals
      ~certain:(fun nd -> nd.Index_graph.k >= m - 1)
      ~validate:(fun () ->
        match cache with
        | Some c -> Validation_cache.path_validator c path ~cost
        | None -> Matcher.make_path_validator data path ~cost)
  end

let eval_path_strings t labels =
  let pool = Data_graph.pool (Index_graph.data t) in
  let interned = List.map (Label.Pool.find_opt pool) labels in
  if List.exists Option.is_none interned then empty_result (Cost.create ())
  else eval_path t (Array.of_list (List.map Option.get interned))

let eval_expr ?cache t expr =
  let cost = Cost.create () in
  let data = Index_graph.data t in
  let nfa, table =
    match cache with
    | Some c -> Validation_cache.nfa c expr
    | None ->
      let nfa = Nfa.compile (Data_graph.pool data) expr in
      (nfa, Nfa.transition_table nfa ~n_labels:(Label.Pool.count (Data_graph.pool data)))
  in
  let n_states = Nfa.n_states nfa in
  let n = Index_graph.max_id t in
  (* Track matching path lengths only as far as they can influence the
     soundness decision: for a bounded expression, its longest word; for
     an unbounded one, just beyond the largest finite similarity. *)
  let cap =
    match Path_ast.max_word_length expr with
    | Some m -> m + 1
    | None -> Index_graph.max_k t + 2
  in
  (* dist.(id * n_states + q): length (in labels) of the longest
     matching path reaching NFA state q at index node id, capped;
     -1 = unreached.  One flat plane replaces the per-node hashtable of
     rows; [touched] records which nodes gained any state, so the final
     acceptance scan does not sweep the whole plane. *)
  let dist = Array.make (n * n_states) (-1) in
  let touched = Array.make n 0 in
  let n_touched = ref 0 in
  let on_queue = Bytes.make n '\000' in
  let queue = Queue.create () in
  let relax id q len =
    let len = min len cap in
    let slot = (id * n_states) + q in
    if len > dist.(slot) then begin
      if Bytes.unsafe_get on_queue id = '\000' then begin
        (* first state ever for this node *)
        touched.(!n_touched) <- id;
        incr n_touched;
        Bytes.unsafe_set on_queue id '\001'
      end;
      dist.(slot) <- len;
      Queue.add id queue
    end
  in
  let init = Nfa.initial nfa in
  Index_graph.iter_alive t (fun nd ->
      let code = Label.to_int nd.Index_graph.label in
      Bitset.iter init (fun q ->
          Bitset.iter (Nfa.table_step table q code) (fun q' ->
              relax nd.Index_graph.id q' 1)));
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if Index_graph.is_alive t id then begin
      Cost.visit_index cost;
      let base = id * n_states in
      Index_graph.iter_children t id (fun child ->
          let child_code = Label.to_int (Index_graph.node t child).Index_graph.label in
          for q = 0 to n_states - 1 do
            let d = dist.(base + q) in
            if d >= 0 then
              Bitset.iter (Nfa.table_step table q child_code) (fun q' ->
                  relax child q' (d + 1))
          done)
    end
  done;
  (* Matched index nodes and the longest accepted-path length each.
     States in the plane always come from epsilon-closed sets, so
     testing each against the precomputed accepting bitset is exact. *)
  let finals = ref [] in
  let max_len = Array.make n (-1) in
  for j = !n_touched - 1 downto 0 do
    let id = touched.(j) in
    if Index_graph.is_alive t id then begin
      let base = id * n_states in
      let best = ref (-1) in
      for q = 0 to n_states - 1 do
        let d = dist.(base + q) in
        if d > !best && Nfa.is_accepting_state nfa q then best := d
      done;
      if !best >= 0 then begin
        finals := id :: !finals;
        max_len.(id) <- !best
      end
    end
  done;
  finish t cost !finals
    ~certain:(fun nd ->
      (* 1-index nodes are sound for any expression; others when the
         longest matching path (uncapped) fits their similarity. *)
      nd.Index_graph.k >= Index_graph.k_infinite
      ||
      let len = max_len.(nd.Index_graph.id) in
      len < cap && nd.Index_graph.k >= len - 1)
    ~validate:(fun () ->
      match cache with
      | Some c -> Validation_cache.nfa_validator c expr ~cost
      | None -> fun u -> Matcher.node_matches_nfa data nfa ~node:u ~cost)

(* ------------------------------------------------------------------ *)
(* Branching path queries                                               *)

let index_view t ~cost =
  {
    Tree_pattern.root = Index_graph.root_node t;
    label_name =
      (fun id ->
        Label.Pool.name (Data_graph.pool (Index_graph.data t)) (Index_graph.node t id).Index_graph.label);
    children = (fun id -> Index_graph.children_list t id);
    (* Index nodes carry no payloads: value predicates over-approximate
       here and are settled by validation. *)
    check_value = (fun _ _ -> true);
    visit = (fun _ -> Cost.visit_index cost);
  }

(* Exact per-node validation of a pattern candidate: the node must
   satisfy the last step's own subtree (predicates, downward) and some
   chain of ancestors must realize the main path (upward).  Only
   positive prefix results are cached: negative ones can depend on the
   visited set in cyclic graphs. *)
let make_pattern_validator g (pattern : Tree_pattern.t) ~cost =
  let view = Tree_pattern.data_view g ~cost in
  let steps = Array.of_list pattern.Tree_pattern.steps in
  let m = Array.length steps in
  let root = Data_graph.root g in
  (* Strict descendants of the root, for a leading '//': an index
     extent may contain structurally-equivalent but unreachable nodes,
     which must not be validated in. *)
  let root_descendants =
    lazy (Int_set.of_list (Tree_pattern.descendants view root))
  in
  let true_memo : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec prefix_matches u i =
    Hashtbl.mem true_memo (u, i)
    ||
    let axis, node = steps.(i) in
    Cost.visit_data cost;
    let here = Tree_pattern.matches_at view node u in
    let ok =
      here
      &&
      if i = 0 then begin
        match axis with
        | Tree_pattern.Child -> Data_graph.has_edge g root u
        | Tree_pattern.Descendant -> Int_set.mem u (Lazy.force root_descendants)
      end
      else begin
        match axis with
        | Tree_pattern.Child ->
          Data_graph.exists_parents g u (fun p -> prefix_matches p (i - 1))
        | Tree_pattern.Descendant -> ancestor_matches (Int_set.singleton u) u (i - 1)
      end
    in
    if ok then Hashtbl.replace true_memo (u, i) ();
    ok
  and ancestor_matches visited u i =
    (* [visited] only guards re-expansion: a node can be its own strict
       ancestor through a cycle, so the prefix test itself must run on
       every parent, visited or not. *)
    Data_graph.exists_parents g u (fun p ->
        prefix_matches p i
        || ((not (Int_set.mem p visited)) && ancestor_matches (Int_set.add p visited) p i))
  in
  fun u -> m > 0 && prefix_matches u (m - 1)

let eval_pattern ?(validate = true) t pattern =
  let cost = Cost.create () in
  (* Value predicates cannot be decided on the index (no payloads);
     force validation so results stay exact even on a covering index. *)
  let validate = validate || Tree_pattern.has_value_test pattern in
  let view = index_view t ~cost in
  let finals = Tree_pattern.eval view pattern in
  if not validate then
    let pieces = List.map (fun id -> (Index_graph.node t id).Index_graph.extent) finals in
    {
      nodes = Int_arr.to_list (Int_arr.merge_many pieces);
      cost;
      n_candidates = 0;
      n_certain = List.length finals;
    }
  else begin
    let data = Index_graph.data t in
    finish t cost finals
      ~certain:(fun _ -> false)
      ~validate:(fun () -> make_pattern_validator data pattern ~cost)
  end

(* ------------------------------------------------------------------ *)
(* Batch serving                                                        *)

let merge_costs results =
  let acc = Cost.create () in
  Array.iter (fun r -> Cost.add acc r.cost) results;
  acc

(* Below this many queries a batch runs its slices sequentially:
   Domain.spawn + join overhead dominates evaluation time for small
   batches (the "d2" serving benchmark regressed 1.5x when every
   64-query batch paid two spawns). *)
let batch_parallel_threshold = 128

let eval_batch ?(domains = 1) ?(strategy = `Forward) ?(cache = true) t queries =
  if domains < 1 then invalid_arg "Query_eval.eval_batch: domains must be >= 1";
  let queries = Array.of_list queries in
  let nq = Array.length queries in
  let results = Array.make nq None in
  let run_slice first step =
    (* Round-robin static assignment: query i belongs to domain
       [i mod domains], independent of timing, so the per-query results
       (and, with [cache:false], the per-query costs) are identical for
       every domain count. *)
    let vcache = if cache then Some (Validation_cache.create t) else None in
    let i = ref first in
    while !i < nq do
      results.(!i) <- Some (eval_path ~strategy ?cache:vcache t queries.(!i));
      i := !i + step
    done
  in
  if domains = 1 then run_slice 0 1
  else if nq < batch_parallel_threshold then
    (* Sequential fast path: spawning domains costs more than it saves
       on small batches.  Running the same round-robin slices one after
       another — each with its own validation cache, exactly as the
       spawned domains would — keeps every per-query result and cost
       bit-for-bit identical to the parallel schedule. *)
    for d = 0 to domains - 1 do
      run_slice d domains
    done
  else begin
    (* Freeze all lazily-materialized state so worker domains only ever
       read: label buckets compacted, index and data adjacency in pure
       CSR form. *)
    Index_graph.prepare_serving t;
    let spawned =
      List.init (domains - 1) (fun d -> Domain.spawn (fun () -> run_slice (d + 1) domains))
    in
    run_slice 0 domains;
    List.iter Domain.join spawned
  end;
  Array.map
    (function
      | Some r -> r
      | None -> assert false)
    results
