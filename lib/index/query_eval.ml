open Dkindex_graph
open Dkindex_pathexpr

type result = {
  nodes : int list;
  cost : Cost.t;
  n_candidates : int;
  n_certain : int;
}

let empty_result cost = { nodes = []; cost; n_candidates = 0; n_certain = 0 }

(* Extents are sorted arrays and (being a partition) pairwise disjoint,
   so the result list is a linear-time merge — no comparison sort. *)
let finish t cost finals ~certain ~validate =
  let n_candidates = ref 0 and n_certain = ref 0 in
  let validate = lazy (validate ()) in
  let pieces =
    List.map
      (fun id ->
        let nd = Index_graph.node t id in
        if certain nd then begin
          incr n_certain;
          nd.Index_graph.extent
        end
        else begin
          n_candidates := !n_candidates + nd.Index_graph.extent_size;
          let v = Lazy.force validate in
          let kept = Array.make nd.Index_graph.extent_size 0 in
          let w = ref 0 in
          Array.iter
            (fun u ->
              if v u then begin
                kept.(!w) <- u;
                incr w
              end)
            nd.Index_graph.extent;
          Array.sub kept 0 !w
        end)
      finals
  in
  {
    nodes = Int_arr.to_list (Int_arr.merge_many pieces);
    cost;
    n_candidates = !n_candidates;
    n_certain = !n_certain;
  }

(* Backward evaluation: does some index path matching path.(0..pos)
   end at [id]?  [pos] strictly decreases, so memoization is sound even
   on cyclic index graphs. *)
let eval_path_backward t path ~cost =
  let m = Array.length path in
  let memo : (int * int, bool) Hashtbl.t = Hashtbl.create 128 in
  let rec matches id pos =
    Label.equal (Index_graph.node t id).Index_graph.label path.(pos)
    && (pos = 0
       ||
       match Hashtbl.find_opt memo (id, pos) with
       | Some r -> r
       | None ->
         Cost.visit_index cost;
         let r =
           Int_set.exists (fun p -> matches p (pos - 1)) (Index_graph.node t id).Index_graph.parents
         in
         Hashtbl.add memo (id, pos) r;
         r)
  in
  let targets = Index_graph.nodes_with_label t path.(m - 1) in
  List.iter (fun _ -> Cost.visit_index cost) targets;
  List.filter (fun id -> matches id (m - 1)) targets

let eval_path_forward t path ~cost =
  let m = Array.length path in
  let start = Index_graph.nodes_with_label t path.(0) in
  List.iter (fun _ -> Cost.visit_index cost) start;
  let frontier = ref start in
  for i = 1 to m - 1 do
    let next = Hashtbl.create 32 in
    List.iter
      (fun id ->
        Int_set.iter
          (fun child ->
            if
              Label.equal (Index_graph.node t child).Index_graph.label path.(i)
              && not (Hashtbl.mem next child)
            then begin
              Hashtbl.add next child ();
              Cost.visit_index cost
            end)
          (Index_graph.node t id).Index_graph.children)
      !frontier;
    frontier := Hashtbl.fold (fun key () acc -> key :: acc) next []
  done;
  !frontier

let eval_path ?(strategy = `Forward) t path =
  let cost = Cost.create () in
  let m = Array.length path in
  if m = 0 then empty_result cost
  else begin
    let backward =
      match strategy with
      | `Forward -> false
      | `Backward -> true
      | `Auto ->
        Index_graph.count_with_label t path.(m - 1)
        < Index_graph.count_with_label t path.(0)
    in
    let finals =
      if backward then eval_path_backward t path ~cost else eval_path_forward t path ~cost
    in
    let data = Index_graph.data t in
    finish t cost finals
      ~certain:(fun nd -> nd.Index_graph.k >= m - 1)
      ~validate:(fun () -> Matcher.make_path_validator data path ~cost)
  end

let eval_path_strings t labels =
  let pool = Data_graph.pool (Index_graph.data t) in
  let interned = List.map (Label.Pool.find_opt pool) labels in
  if List.exists Option.is_none interned then empty_result (Cost.create ())
  else eval_path t (Array.of_list (List.map Option.get interned))

let eval_expr t expr =
  let cost = Cost.create () in
  let data = Index_graph.data t in
  let nfa = Nfa.compile (Data_graph.pool data) expr in
  let n_states = Nfa.n_states nfa in
  (* Track matching path lengths only as far as they can influence the
     soundness decision: for a bounded expression, its longest word; for
     an unbounded one, just beyond the largest finite similarity. *)
  let cap =
    match Path_ast.max_word_length expr with
    | Some m -> m + 1
    | None -> Index_graph.max_k t + 2
  in
  (* dist.(q) for each matched index node: length (in labels) of the
     longest matching path reaching state q at this node, capped. *)
  let dist : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let relax id q len =
    let len = min len cap in
    let row =
      match Hashtbl.find_opt dist id with
      | Some row -> row
      | None ->
        let row = Array.make n_states (-1) in
        Hashtbl.add dist id row;
        row
    in
    if len > row.(q) then begin
      row.(q) <- len;
      Queue.add id queue
    end
  in
  let init = Nfa.initial nfa in
  Index_graph.iter_alive t (fun nd ->
      let s = Nfa.step nfa init nd.Index_graph.label in
      Bitset.iter s (fun q -> relax nd.Index_graph.id q 1));
  let table = Nfa.transition_table nfa ~n_labels:(Label.Pool.count (Data_graph.pool data)) in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if Index_graph.is_alive t id then begin
      Cost.visit_index cost;
      let row = Hashtbl.find dist id in
      let nd = Index_graph.node t id in
      Int_set.iter
        (fun child ->
          let child_code = Label.to_int (Index_graph.node t child).Index_graph.label in
          for q = 0 to n_states - 1 do
            if row.(q) >= 0 then
              Bitset.iter (Nfa.table_step table q child_code) (fun q' ->
                  relax child q' (row.(q) + 1))
          done)
        nd.Index_graph.children
    end
  done;
  (* Matched index nodes and the longest accepted-path length each. *)
  let finals = ref [] in
  let max_len = Hashtbl.create 16 in
  Hashtbl.iter
    (fun id row ->
      if Index_graph.is_alive t id then begin
        let best = ref (-1) in
        for q = 0 to n_states - 1 do
          if row.(q) >= 0 then begin
            let states = Bitset.create n_states in
            Bitset.add states q;
            if Nfa.accepting nfa states && row.(q) > !best then best := row.(q)
          end
        done;
        if !best >= 0 then begin
          finals := id :: !finals;
          Hashtbl.add max_len id !best
        end
      end)
    dist;
  finish t cost !finals
    ~certain:(fun nd ->
      (* 1-index nodes are sound for any expression; others when the
         longest matching path (uncapped) fits their similarity. *)
      nd.Index_graph.k >= Index_graph.k_infinite
      ||
      let len = Hashtbl.find max_len nd.Index_graph.id in
      len < cap && nd.Index_graph.k >= len - 1)
    ~validate:(fun () -> fun u -> Matcher.node_matches_nfa data nfa ~node:u ~cost)

(* ------------------------------------------------------------------ *)
(* Branching path queries                                               *)

let index_view t ~cost =
  {
    Tree_pattern.root = Index_graph.root_node t;
    label_name =
      (fun id ->
        Label.Pool.name (Data_graph.pool (Index_graph.data t)) (Index_graph.node t id).Index_graph.label);
    children = (fun id -> Int_set.elements (Index_graph.node t id).Index_graph.children);
    (* Index nodes carry no payloads: value predicates over-approximate
       here and are settled by validation. *)
    check_value = (fun _ _ -> true);
    visit = (fun _ -> Cost.visit_index cost);
  }

(* Exact per-node validation of a pattern candidate: the node must
   satisfy the last step's own subtree (predicates, downward) and some
   chain of ancestors must realize the main path (upward).  Only
   positive prefix results are cached: negative ones can depend on the
   visited set in cyclic graphs. *)
let make_pattern_validator g (pattern : Tree_pattern.t) ~cost =
  let view = Tree_pattern.data_view g ~cost in
  let steps = Array.of_list pattern.Tree_pattern.steps in
  let m = Array.length steps in
  let root = Data_graph.root g in
  (* Strict descendants of the root, for a leading '//': an index
     extent may contain structurally-equivalent but unreachable nodes,
     which must not be validated in. *)
  let root_descendants =
    lazy (Int_set.of_list (Tree_pattern.descendants view root))
  in
  let true_memo : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec prefix_matches u i =
    Hashtbl.mem true_memo (u, i)
    ||
    let axis, node = steps.(i) in
    Cost.visit_data cost;
    let here = Tree_pattern.matches_at view node u in
    let ok =
      here
      &&
      if i = 0 then begin
        match axis with
        | Tree_pattern.Child -> Data_graph.has_edge g root u
        | Tree_pattern.Descendant -> Int_set.mem u (Lazy.force root_descendants)
      end
      else begin
        match axis with
        | Tree_pattern.Child ->
          Data_graph.exists_parents g u (fun p -> prefix_matches p (i - 1))
        | Tree_pattern.Descendant -> ancestor_matches (Int_set.singleton u) u (i - 1)
      end
    in
    if ok then Hashtbl.replace true_memo (u, i) ();
    ok
  and ancestor_matches visited u i =
    (* [visited] only guards re-expansion: a node can be its own strict
       ancestor through a cycle, so the prefix test itself must run on
       every parent, visited or not. *)
    Data_graph.exists_parents g u (fun p ->
        prefix_matches p i
        || ((not (Int_set.mem p visited)) && ancestor_matches (Int_set.add p visited) p i))
  in
  fun u -> m > 0 && prefix_matches u (m - 1)

let eval_pattern ?(validate = true) t pattern =
  let cost = Cost.create () in
  (* Value predicates cannot be decided on the index (no payloads);
     force validation so results stay exact even on a covering index. *)
  let validate = validate || Tree_pattern.has_value_test pattern in
  let view = index_view t ~cost in
  let finals = Tree_pattern.eval view pattern in
  if not validate then
    let pieces = List.map (fun id -> (Index_graph.node t id).Index_graph.extent) finals in
    {
      nodes = Int_arr.to_list (Int_arr.merge_many pieces);
      cost;
      n_candidates = 0;
      n_certain = List.length finals;
    }
  else begin
    let data = Index_graph.data t in
    finish t cost finals
      ~certain:(fun _ -> false)
      ~validate:(fun () -> make_pattern_validator data pattern ~cost)
  end
