open Dkindex_graph

(* Group an extent by the exact set of parent index nodes of each
   member.  Because those parents are (k-1)-guaranteed classes, members
   sharing the same parent-class set are k-bisimilar (the inductive
   argument behind Algorithm 2 and Theorem 1). *)
let parent_groups t extent =
  let data = Index_graph.data t in
  let table : (int list, int list) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun u ->
      let ps = ref [] in
      Data_graph.iter_parents data u (fun p -> ps := Index_graph.cls t p :: !ps);
      let key = List.sort_uniq Int.compare !ps in
      match Hashtbl.find_opt table key with
      | None ->
        order := key :: !order;
        Hashtbl.add table key [ u ]
      | Some members -> Hashtbl.replace table key (u :: members))
    extent;
  (* Members were prepended during an ascending extent scan, so each
     group reverses back into sorted order. *)
  List.rev_map (fun key -> Int_arr.of_list (Hashtbl.find table key)) !order

let rec promote t id ~k =
  match Index_graph.resolve t id with
  | [ id ] when Index_graph.is_alive t id -> promote_live t id ~k
  | ids -> List.concat_map (fun id' -> promote t id' ~k) ids

and promote_live t id ~k =
  let nd = Index_graph.node t id in
  if nd.k >= k then begin
    Index_graph.set_req t id (max nd.req k);
    [ id ]
  end
  else begin
    (* Parents first (Algorithm 6): raise every parent to k - 1.  A
       parent promotion can split this very node when the index graph
       is cyclic, so re-dispatch if [id] died. *)
    let rec ensure_parents () =
      if Index_graph.is_alive t id then begin
        let weak =
          List.find_opt
            (fun p -> (Index_graph.node t p).k < k - 1)
            (Index_graph.parents_list t id)
        in
        match weak with
        | None -> ()
        | Some p ->
          ignore (promote t p ~k:(k - 1));
          ensure_parents ()
      end
    in
    ensure_parents ();
    if not (Index_graph.is_alive t id) then promote t id ~k
    else begin
      let nd = Index_graph.node t id in
      let groups = parent_groups t nd.extent in
      let fresh = Index_graph.split t id groups in
      List.iter
        (fun nid ->
          Index_graph.set_k t nid k;
          Index_graph.set_req t nid (max (Index_graph.node t nid).req k))
        fresh;
      fresh
    end
  end

let promote_labels t targets =
  let pool = Data_graph.pool (Index_graph.data t) in
  let targets =
    List.filter_map
      (fun (name, k) ->
        match Label.Pool.find_opt pool name with Some l -> Some (l, k) | None -> None)
      targets
  in
  (* Highest similarities first: promoting them raises close ancestors,
     often saving later promotions (paper, end of Section 5.3). *)
  let targets = List.sort (fun (_, a) (_, b) -> compare b a) targets in
  List.iter
    (fun (l, k) ->
      (* A node in the snapshot can be split while a sibling of the same
         label is promoted (labels can be their own ancestors); promote
         follows the forwarding of retired ids to their fragments. *)
      List.iter (fun id -> ignore (promote t id ~k)) (Index_graph.nodes_with_label t l))
    targets

let promote_to_requirements t =
  Log.debug (fun m -> m "promote_to_requirements over %d index nodes" (Index_graph.n_nodes t));
  let lagging =
    Index_graph.fold_alive t ~init:[] ~f:(fun acc nd ->
        if nd.k < nd.req then (nd.id, nd.req) :: acc else acc)
  in
  let lagging = List.sort (fun (_, a) (_, b) -> compare b a) lagging in
  List.iter (fun (id, req) -> ignore (promote t id ~k:req)) lagging

let demote t ~reqs = Dk_index.rebuild t ~reqs
