(** Query-load tuning of the D(k)-index: the promoting process
    (Section 5.3, Algorithm 6) and the demoting process (Section 5.4).

    Both are meant to run periodically: promotion restores local
    similarities degraded by edge-addition updates (or raises them for
    labels that became hot in the query load); demotion shrinks an
    index that refinements made too large. *)



val promote : Index_graph.t -> int -> k:int -> int list
(** Algorithm 6.  [promote t id ~k] raises index node [id]'s local
    similarity to at least [k]: parents are recursively promoted to
    [k - 1] first, then [id]'s extent is split by its (now
    sufficiently-refined) parents.  Returns the ids replacing [id]
    (possibly just [[id]]).  The [req] of the touched nodes is raised
    to the promoted value. *)

val promote_labels : Index_graph.t -> (string * int) list -> unit
(** Promote every index node of each listed label to the given local
    similarity.  Labels are processed in decreasing similarity order
    (the paper's batching note: promoting the highest requirements
    first saves ancestor promotions). *)

val promote_to_requirements : Index_graph.t -> unit
(** Promote every index node whose local similarity fell below its
    recorded requirement back to that requirement — the periodic
    maintenance pass suggested by Section 5.3. *)

val demote : Index_graph.t -> reqs:Dk_index.requirements -> Index_graph.t
(** Section 5.4: shrink the index by rebuilding it (Theorem 2) from the
    current refinement under lower requirements.  Returns a fresh
    index; the argument is unchanged. *)
