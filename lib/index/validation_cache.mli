(** Cross-query validation cache.

    Validation dominates query cost on an index whose similarities do
    not cover the workload: every candidate extent member is checked
    against the data graph, and consecutive queries over the same hot
    labels redo the same parent-chain walks.  This module interns the
    per-query artifacts — compiled automata, transition tables, and the
    positive/negative memo tables behind
    {!Matcher.make_path_validator} and {!Matcher.node_matches_nfa} —
    and keeps them alive across queries against one index.

    {b Invalidation contract.}  Every cached answer is valid only for a
    fixed data graph and partition.  The cache snapshots
    {!Index_graph.generation} and compares it on every lookup: any
    mutation — {!Index_graph.split} (promotion, A(k) propagation),
    {!Index_graph.set_k}/{!Index_graph.set_req} (demotion, broadcast),
    index edge updates, and the explicit {!Index_graph.touch} calls the
    update drivers ({!Dk_update}, {!Ak_update}) issue on data-graph
    edge changes — bumps the generation, so the next lookup drops every
    memo before it can serve a stale answer.  Compiled automata survive
    invalidation (they depend only on the expression and the label
    pool); per-node answers do not.

    {b Bounding.}  Memoized answers are capped at [max_entries] across
    all tables.  When a lookup finds the cache over its cap, a clock
    (second-chance) sweep runs over the interned tables: tables touched
    since the last sweep survive with their bit cleared, the rest have
    their answers dropped, until the total is back under the cap.
    Compiled automata and the tables themselves are kept (they are
    small and expensive to rebuild); only the per-node answers — the
    part that grows with churn — are evicted.

    A cache is single-domain state: {!Query_eval.eval_batch} creates
    one per worker domain. *)

open Dkindex_graph
open Dkindex_pathexpr

type t

val create : ?max_entries:int -> Index_graph.t -> t
(** A fresh cache bound to one index graph (and its data graph).
    [max_entries] (default [2^20]) caps the total memoized answers.
    @raise Invalid_argument if [max_entries < 1]. *)

val index : t -> Index_graph.t

val path_validator : t -> Label.t array -> cost:Cost.t -> int -> bool
(** Like {!Matcher.make_path_validator}, but the [(node, position)]
    memo table is shared by every query asking the same label path
    until the index mutates. *)

val nfa : t -> Path_ast.t -> Nfa.t * Nfa.table
(** Compiled automaton and dense transition table for an expression,
    compiled once per cache lifetime. *)

val nfa_validator : t -> Path_ast.t -> cost:Cost.t -> int -> bool
(** Like {!Matcher.node_matches_nfa} partially applied to the data
    graph, with a per-expression node memo kept across queries. *)

val invalidate : t -> unit
(** Drop all memoized answers now (keeps compiled automata).  Normally
    unnecessary — lookups self-invalidate via the generation check —
    but available to callers that mutate state the index graph cannot
    observe. *)

val stats : t -> int * int
(** [(hits, misses)] over intern lookups, for tests and diagnostics. *)

val entry_count : t -> int
(** Total memoized answers currently held across all tables. *)

val evictions : t -> int
(** Cumulative answers dropped by cap enforcement (not by
    generation-based invalidation). *)
