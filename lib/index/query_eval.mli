(** Path query evaluation on an index graph, with validation.

    Evaluation follows the paper's model: traverse the index graph
    (each index node touched costs one visit); a matched index node
    whose local similarity covers the query length contributes its
    whole extent for free (the D(k)-index soundness property), while a
    matched node with a smaller similarity is only {e approximate} and
    its extent members must be validated against the data graph — each
    data node touched during validation costs one visit
    (Section 6.1). *)

open Dkindex_graph
open Dkindex_pathexpr

type result = {
  nodes : int list;  (** matching data nodes, sorted *)
  cost : Cost.t;
  n_candidates : int;  (** extent members that needed validation *)
  n_certain : int;  (** matched index nodes answered without validation *)
}

val eval_path :
  ?strategy:[ `Forward | `Backward | `Auto ] -> Index_graph.t -> Label.t array -> result
(** Evaluate a plain label path (the experiment workload).  A matched
    index node with [m] labels is certain when [k >= m - 1]
    (property 3 of Section 4.1).

    [strategy] selects the traversal direction over the index graph:
    - [`Forward] (default, the paper's evaluation): start from every
      index node carrying the first label and walk children;
    - [`Backward]: start from the target label's index nodes and search
      parents for a matching prefix (memoized) — far cheaper when the
      target label is rarer than the first label;
    - [`Auto]: pick by comparing the two labels' index populations.

    All strategies return identical results and identical
    validation behavior; only the index-visit cost differs. *)

val eval_path_strings : Index_graph.t -> string list -> result
(** Convenience wrapper interning label names; unknown labels yield an
    empty result. *)

val eval_expr : Index_graph.t -> Path_ast.t -> result
(** General regular path expressions: the index traversal tracks the
    longest matching path length into each matched index node (capped
    just above the index's largest similarity) and validates nodes the
    similarity does not cover. *)

val eval_pattern : ?validate:bool -> Index_graph.t -> Tree_pattern.t -> result
(** Branching path queries (tree patterns).  The pattern is evaluated
    over the index graph; with [validate] (the default) every candidate
    extent member is then checked against the data graph (predicates
    downward, the main path upward), so the result is exact on {e any}
    index.  Pass [~validate:false] only for a covering index
    ({!Fb_index.build}), where the index answer is exact by
    construction — on other indexes that would return a superset. *)
