(** Path query evaluation on an index graph, with validation.

    Evaluation follows the paper's model: traverse the index graph
    (each index node touched costs one visit); a matched index node
    whose local similarity covers the query length contributes its
    whole extent for free (the D(k)-index soundness property), while a
    matched node with a smaller similarity is only {e approximate} and
    its extent members must be validated against the data graph — each
    data node touched during validation costs one visit
    (Section 6.1).

    All traversal state lives in flat arrays sized by
    {!Index_graph.max_id}: int-array frontiers with stamp-array dedup
    for label paths, and one [nodes x NFA-states] distance plane for
    regular expressions — no per-query hashtables on the hot path. *)

open Dkindex_graph
open Dkindex_pathexpr

type result = {
  nodes : int list;  (** matching data nodes, sorted *)
  cost : Cost.t;
  n_candidates : int;  (** extent members that needed validation *)
  n_certain : int;  (** matched index nodes answered without validation *)
}

val eval_path :
  ?strategy:[ `Forward | `Backward | `Auto ] ->
  ?cache:Validation_cache.t ->
  Index_graph.t ->
  Label.t array ->
  result
(** Evaluate a plain label path (the experiment workload).  A matched
    index node with [m] labels is certain when [k >= m - 1]
    (property 3 of Section 4.1).

    [strategy] selects the traversal direction over the index graph:
    - [`Forward] (default, the paper's evaluation): start from every
      index node carrying the first label and walk children;
    - [`Backward]: start from the target label's index nodes and search
      parents for a matching prefix (memoized) — far cheaper when the
      target label is rarer than the first label;
    - [`Auto]: pick by comparing the two labels' index populations.

    All strategies return identical results and identical
    validation behavior; only the index-visit cost differs.

    [cache] shares validation memos across queries (see
    {!Validation_cache}); result nodes are unaffected, only the
    validation cost of repeated queries drops. *)

val eval_path_finals :
  ?strategy:[ `Forward | `Backward | `Auto ] ->
  Index_graph.t ->
  Label.t array ->
  int list * Cost.t
(** The matched final index nodes of a label path — the traversal of
    {!eval_path} without the extent merge or validation.  This is the
    raw material for multi-index plans (the planner intersects the
    extents of two indexes' finals and validates only the survivors).
    The returned cost counts the index visits of the traversal. *)

val eval_path_strings : Index_graph.t -> string list -> result
(** Convenience wrapper interning label names; unknown labels yield an
    empty result. *)

val eval_expr : ?cache:Validation_cache.t -> Index_graph.t -> Path_ast.t -> result
(** General regular path expressions: the index traversal tracks the
    longest matching path length into each matched index node (capped
    just above the index's largest similarity) and validates nodes the
    similarity does not cover.  [cache] additionally reuses the
    compiled automaton and transition table across queries. *)

val eval_pattern : ?validate:bool -> Index_graph.t -> Tree_pattern.t -> result
(** Branching path queries (tree patterns).  The pattern is evaluated
    over the index graph; with [validate] (the default) every candidate
    extent member is then checked against the data graph (predicates
    downward, the main path upward), so the result is exact on {e any}
    index.  Pass [~validate:false] only for a covering index
    ({!Fb_index.build}), where the index answer is exact by
    construction — on other indexes that would return a superset. *)

val eval_batch :
  ?domains:int ->
  ?strategy:[ `Forward | `Backward | `Auto ] ->
  ?cache:bool ->
  Index_graph.t ->
  Label.t array list ->
  result array
(** Serve a workload of label-path queries (as produced by
    {!Query_gen}), fanned out over [domains] worker domains
    (default 1).

    {b Determinism.}  Queries are assigned round-robin (query [i] to
    domain [i mod domains]) and results land in an array slot per
    query, so [nodes], [n_candidates] and [n_certain] of every result
    are bit-for-bit identical for any domain count.  With [cache:true]
    (the default) each domain keeps its own {!Validation_cache}, so a
    query's [cost] can drop when a same-domain predecessor warmed the
    memo; with [cache:false] the per-query costs are also bit-for-bit
    independent of [domains].

    Before spawning, {!Index_graph.prepare_serving} freezes all
    lazily-materialized state, making the fan-out strictly read-only.
    The index must not be mutated concurrently. *)

val merge_costs : result array -> Cost.t
(** Total cost of a batch, accumulated in query order (deterministic
    regardless of how the batch was scheduled). *)
