open Dkindex_graph

type requirements = (string * int) list

let effective_reqs g ~reqs = Broadcast.run g ~reqs

(* Rounds of Algorithm 2 on any source graph: in round k, split only
   classes whose (broadcast) requirement is at least k.  Returns the
   final partition and the per-class requirement, which is also the
   local similarity achieved by each class. *)
let build_partition ?mode g ~label_reqs =
  let p0 = Kbisim.label_partition g in
  let labels = Kbisim.class_labels g p0 in
  let req0 = Array.map (fun l -> label_reqs.(Label.to_int l)) labels in
  let kmax = Array.fold_left max 0 req0 in
  let p = ref p0 and class_req = ref req0 in
  for k = 1 to kmax do
    let cr = !class_req in
    let p', _changed = Kbisim.refine ?mode g !p ~eligible:(fun c -> cr.(c) >= k) in
    class_req := Array.map (fun old_class -> cr.(old_class)) p'.Kbisim.parent_class;
    p := p'
  done;
  (!p, !class_req)

let of_built ?mode g (p : Kbisim.partition) class_req =
  Index_graph.of_partition ?mode g ~cls:p.cls ~n_classes:p.n_classes
    ~k_of_class:(fun c -> class_req.(c))
    ~req_of_class:(fun c -> class_req.(c))

let build ?mode g ~reqs =
  let label_reqs = Broadcast.run g ~reqs in
  let p, class_req = build_partition ?mode g ~label_reqs in
  let t = of_built ?mode g p class_req in
  Log.info (fun m ->
      m "built D(k)-index: %d classes over %d data nodes (kmax=%d)" p.Kbisim.n_classes
        (Data_graph.n_nodes g)
        (Array.fold_left max 0 class_req));
  t

(* Restore Definition 3 after k values were capped: lower every child
   whose similarity exceeds its parent's plus one, to a fixpoint. *)
let enforce_definition3 t =
  let queue = Queue.create () in
  Index_graph.iter_alive t (fun nd -> Queue.add nd.Index_graph.id queue);
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    let kw = (Index_graph.node t w).Index_graph.k in
    Index_graph.iter_children t w (fun x ->
        let nx = Index_graph.node t x in
        if kw + 1 < nx.Index_graph.k then begin
          Index_graph.set_k t x (kw + 1);
          Queue.add x queue
        end)
  done

let rebuild ?mode idx ~reqs =
  let derived, inode_of_derived = Index_graph.as_data_graph idx in
  let label_reqs = Broadcast.run derived ~reqs in
  let p, class_req = build_partition ?mode derived ~label_reqs in
  (* Theorem 2 only guarantees the requirement-level similarity when the
     input is a true refinement of the target index.  After source-data
     updates the input's recorded similarities may be lower than its
     structure suggests, so cap each output class by the minimum
     similarity of its constituents — the honest guarantee — and then
     restore Definition 3.  For clean refinements the cap is vacuous. *)
  let new_k = Array.make p.n_classes max_int in
  Array.iteri
    (fun d inode ->
      let c = p.cls.(d) in
      new_k.(c) <- min new_k.(c) (Index_graph.node idx inode).Index_graph.k)
    inode_of_derived;
  Array.iteri (fun c r -> new_k.(c) <- min new_k.(c) r) class_req;
  (* Compose: data node -> its index node -> derived node -> new class. *)
  let derived_of_inode = Hashtbl.create (Array.length inode_of_derived) in
  Array.iteri (fun d inode -> Hashtbl.add derived_of_inode inode d) inode_of_derived;
  let data = Index_graph.data idx in
  let cls =
    Array.init (Data_graph.n_nodes data) (fun u ->
        p.cls.(Hashtbl.find derived_of_inode (Index_graph.cls idx u)))
  in
  let result =
    Index_graph.of_partition data ~cls ~n_classes:p.n_classes
      ~k_of_class:(fun c -> new_k.(c))
      ~req_of_class:(fun c -> class_req.(c))
  in
  enforce_definition3 result;
  Log.info (fun m ->
      m "rebuilt (Theorem 2): %d -> %d index nodes" (Index_graph.n_nodes idx)
        (Index_graph.n_nodes result));
  result
