(** Paige-Tarjan partition refinement — the O(m log n) algorithm the
    paper cites ([16], SIAM J. Comput. 1987) for 1-index construction.

    {!Kbisim.stable_partition} reaches the same fixpoint by hashing
    whole rounds, which costs O(m) per round and O(m d) total, where d
    is the bisimulation depth of the graph.  Paige-Tarjan's
    "process the smaller half" strategy bounds the total work by
    O(m log n) regardless of depth, which wins on deep or degenerate
    graphs (see the [substrate:*] micro-benchmarks).

    Both produce the coarsest partition P refining the label partition
    that is stable: for any blocks B, S of P, either every node of B
    has a parent in S or none has — i.e. full backward bisimilarity. *)

val stable_partition : Dkindex_graph.Data_graph.t -> Kbisim.partition
(** Same grouping as [fst (Kbisim.stable_partition g)] (class numbering
    may differ); [parent_class] is the identity. *)

val build_one_index : Dkindex_graph.Data_graph.t -> Index_graph.t
(** The 1-index through this algorithm; interchangeable with
    {!One_index.build}. *)
