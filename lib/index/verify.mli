(** Index auditing: check that an index graph is a faithful summary of
    its data graph.

    Meant for operational use (the CLI's [verify] command, test
    harnesses, post-crash checks), not for hot paths: the label-path
    check is exponential in the similarity it verifies, so it is
    capped. *)

type issue = {
  subject : string;  (** e.g. ["index node 42"] or ["query a.b.c"] *)
  problem : string;
}

type report = {
  issues : issue list;
  checked_nodes : int;
  checked_queries : int;
}

val structure : Index_graph.t -> issue list
(** The {!Index_graph.check_invariants} checks, reported instead of
    raised: partition consistency, edge/data agreement, Definition 3. *)

val soundness : ?max_k:int -> ?max_extent:int -> Index_graph.t -> issue list
(** Extents share their incoming label-path sets up to each node's
    local similarity (the Theorem 1 premise) — the property that makes
    validation-free answers exact.  Similarities above [max_k]
    (default 5) are checked only up to the cap; extents larger than
    [max_extent] (default 64) are sampled. *)

val queries :
  Index_graph.t -> Dkindex_graph.Label.t array list -> issue list
(** Evaluate the given label-path queries through the index and compare
    with direct data-graph evaluation (e.g. a
    [Dkindex_workload.Query_gen] workload). *)

val run :
  ?quick:bool -> ?queries:Dkindex_graph.Label.t array list -> Index_graph.t -> report
(** All of the above; [quick] (default false) skips the soundness
    check. *)

val pp_report : Format.formatter -> report -> unit
