open Dkindex_graph
module Cost = Dkindex_pathexpr.Cost

type t = {
  labels : Label.t array;  (* state -> label *)
  extents : int array array;  (* state -> sorted data nodes *)
  children : (Label.t * int) list array;  (* state -> labeled transitions *)
  by_label : int list array;  (* label code -> states *)
}

exception Too_large of int

let build ?(max_states = 1_000_000) g =
  (* State identity: the (sorted) target set.  The root state is the
     singleton {root}. *)
  let table : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
  let labels = ref [] and extents = ref [] and count = ref 0 in
  let transitions : (int * Label.t * int) list ref = ref [] in
  let queue = Queue.create () in
  let intern ~label set =
    match Hashtbl.find_opt table set with
    | Some id -> id
    | None ->
      if !count >= max_states then raise (Too_large !count);
      let id = !count in
      incr count;
      Hashtbl.add table set id;
      labels := label :: !labels;
      extents := set :: !extents;
      Queue.add (id, set) queue;
      id
  in
  let root = Data_graph.root g in
  let root_id = intern ~label:(Data_graph.label g root) [| root |] in
  ignore root_id;
  while not (Queue.is_empty queue) do
    let id, set = Queue.pop queue in
    (* Group the children of the set by label. *)
    let buckets : (int, Int_set.t) Hashtbl.t = Hashtbl.create 16 in
    Array.iter
      (fun u ->
        Data_graph.iter_children g u (fun v ->
            let code = Label.to_int (Data_graph.label g v) in
            let current =
              Option.value (Hashtbl.find_opt buckets code) ~default:Int_set.empty
            in
            Hashtbl.replace buckets code (Int_set.add v current)))
      set;
    Hashtbl.iter
      (fun code members ->
        let target = Array.of_list (Int_set.elements members) in
        let label = Label.of_int code in
        let tid = intern ~label target in
        transitions := (id, label, tid) :: !transitions)
      buckets
  done;
  let n = !count in
  let labels = Array.of_list (List.rev !labels) in
  let extents = Array.of_list (List.rev !extents) in
  let children = Array.make n [] in
  List.iter (fun (s, l, d) -> children.(s) <- (l, d) :: children.(s)) !transitions;
  let by_label = Array.make (Label.Pool.count (Data_graph.pool g)) [] in
  for s = n - 1 downto 0 do
    let code = Label.to_int labels.(s) in
    by_label.(code) <- s :: by_label.(code)
  done;
  { labels; extents; children; by_label }

let n_states t = Array.length t.labels
let n_edges t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.children

let eval_label_path t path ~cost =
  let m = Array.length path in
  if m = 0 then []
  else begin
    let code0 = Label.to_int path.(0) in
    let start = if code0 < Array.length t.by_label then t.by_label.(code0) else [] in
    List.iter (fun _ -> Cost.visit_index cost) start;
    let frontier = ref start in
    for i = 1 to m - 1 do
      let next = Hashtbl.create 32 in
      List.iter
        (fun s ->
          List.iter
            (fun (l, d) ->
              if Label.equal l path.(i) && not (Hashtbl.mem next d) then begin
                Hashtbl.add next d ();
                Cost.visit_index cost
              end)
            t.children.(s))
        !frontier;
      frontier := Hashtbl.fold (fun key () acc -> key :: acc) next []
    done;
    let result = Hashtbl.create 64 in
    List.iter
      (fun s -> Array.iter (fun u -> Hashtbl.replace result u ()) t.extents.(s))
      !frontier;
    List.sort Int.compare (Hashtbl.fold (fun u () acc -> u :: acc) result [])
  end
