let build ?domains ?mode g ~k =
  if k < 0 then invalid_arg "A_k_index.build: k must be non-negative";
  let p = Kbisim.k_partition ?domains ?mode g ~k in
  Index_graph.of_partition ?mode g ~cls:p.cls ~n_classes:p.n_classes
    ~k_of_class:(fun _ -> k)
    ~req_of_class:(fun _ -> k)
