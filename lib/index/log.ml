(** The library's log source: enable with
    [Logs.Src.set_level Dkindex_core.Log.src (Some Logs.Debug)]
    (the CLI's [--verbose] does this). *)

let src = Logs.Src.create "dkindex" ~doc:"D(k)-index operations"

module M = (val Logs.src_log src : Logs.LOG)

let debug = M.debug
let info = M.info
