(** D(k)-index update algorithms (Section 5).

    Two source-data updates are supported, following the paper (and
    Kaushik et al., VLDB 2002): insertion of a whole subgraph (a new
    document) and insertion of a single edge (a small incremental
    change, e.g. a new IDREF).

    The edge-addition update never touches the data graph's extents:
    it only lowers the local similarities of the affected index nodes
    (Algorithms 4 and 5), which is why it is much cheaper than the
    propagate strategy used for the 1-index and A(k)-index. *)

open Dkindex_graph

val update_local_similarity : Index_graph.t -> u:int -> v:int -> int
(** Algorithm 4.  [u], [v] are {e index} node ids; computes the new
    local similarity of [v] under a new index edge [u -> v]: the
    largest [kN <= min (k u + 1) (k v)] such that every label path of
    length [kN] entering [v] through [u] already matches [v] in the
    current index graph.  Call before inserting the edge. *)

val add_edge : Index_graph.t -> int -> int -> unit
(** Algorithm 5.  [add_edge t u v] with {e data} node ids: inserts the
    data edge, the induced index edge, lowers [cls v]'s local
    similarity to the Algorithm 4 value, and broadcasts the decrease
    breadth-first to descendants ([k(X) <= k(W) + 1] along every edge,
    stopping where the constraint already holds). *)

val remove_edge : Index_graph.t -> int -> int -> unit
(** Edge deletion, built on the same local-similarity machinery (the
    paper notes that "all other update operations ... can be built on
    these two basic cases").  [remove_edge t u v] with data node ids
    deletes the data edge.  If [v] retains another parent inside
    [cls u]'s extent, the label-path sets of [cls v]'s members are
    unchanged and no similarity moves; otherwise [cls v]'s similarity
    conservatively drops to 0 and the decrease is broadcast downwards
    (as in Algorithm 5).  The index edge is dropped when no data edge
    between the two extents remains.
    @raise Invalid_argument if the data edge does not exist. *)

val add_subgraph :
  Index_graph.t ->
  Data_graph.t ->
  reqs:Dk_index.requirements ->
  Data_graph.t * Index_graph.t
(** Algorithm 3.  [add_subgraph t h ~reqs] grafts document [h] (its
    root is identified with the data root) into the data graph,
    builds the D(k)-index of [h] alone, places it under the original
    index, and rebuilds (Theorem 2) treating the combined index as a
    data graph.  Returns the new data graph and its D(k)-index. *)
