(** The D(k)-index (Section 4): an index graph whose nodes carry
    individual local similarities, constrained by Definition 3
    ([k(parent) >= k(child) - 1] along every edge) so that a path
    query of length m answered at an index node with k >= m is sound
    (Theorem 1).

    Construction (Algorithm 2) starts from the label-split graph,
    broadcasts the query-load requirements (Algorithm 1), then refines
    round by round, splitting in round k only the classes whose
    requirement is at least k. *)

open Dkindex_graph

type requirements = (string * int) list
(** Per-label local-similarity requirements mined from the query load;
    labels not listed default to 0. *)

val build : ?mode:Kbisim.mode -> Data_graph.t -> reqs:requirements -> Index_graph.t
(** [mode] selects the refinement engine per round (default [`Auto]:
    in-RAM below 2{^24} edges, external sort/scan above); the built
    index is bit-for-bit independent of it. *)

val effective_reqs : Data_graph.t -> reqs:requirements -> int array
(** The per-label-code requirements after the broadcast step. *)

val rebuild : ?mode:Kbisim.mode -> Index_graph.t -> reqs:requirements -> Index_graph.t
(** Theorem 2: the D(k)-index of any refinement of a D(k)-index equals
    the D(k)-index of the data.  [rebuild] treats the given index graph
    as a data graph, constructs the D(k)-index over it, and merges
    extents — the engine behind both subgraph addition (Algorithm 3)
    and the demoting process (Section 5.4).  The result indexes the
    same underlying data graph. *)
