(** The A(k)-index of Kaushik et al. (ICDE 2002): equivalence classes
    of k-bisimilarity, for a uniform k.  Sound for path expressions of
    length at most k; longer queries need validation.  A special case
    of the D(k)-index with every local similarity equal to [k]. *)

val build : ?domains:int -> ?mode:Kbisim.mode -> Dkindex_graph.Data_graph.t -> k:int -> Index_graph.t
(** [domains] parallelizes the refinement key computation
    ({!Kbisim.refine}); the result is independent of it. *)
