let build ?domains ?mode g =
  let p, _rounds = Kbisim.stable_partition ?domains ?mode g in
  Index_graph.of_partition ?mode g ~cls:p.cls ~n_classes:p.n_classes
    ~k_of_class:(fun _ -> Index_graph.k_infinite)
    ~req_of_class:(fun _ -> Index_graph.k_infinite)

let bisimulation_depth g = snd (Kbisim.stable_partition g)
