open Dkindex_graph

let eval_path t path =
  let result = Query_eval.eval_path t path in
  let m = Array.length path in
  if result.Query_eval.n_candidates > 0 && m >= 2 then begin
    let pool = Data_graph.pool (Index_graph.data t) in
    let target = Label.Pool.name pool path.(m - 1) in
    Log.debug (fun m' ->
        m' "cracking: promoting label %s to %d after a validated query" target (m - 1));
    Dk_tune.promote_labels t [ (target, m - 1) ]
  end;
  result

let eval_path_strings t labels =
  let pool = Data_graph.pool (Index_graph.data t) in
  let interned = List.map (Label.Pool.find_opt pool) labels in
  if List.exists Option.is_none interned then Query_eval.eval_path t [||]
  else eval_path t (Array.of_list (List.map Option.get interned))
