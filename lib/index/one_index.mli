(** The 1-index of Milo and Suciu (ICDT 1999): full bisimulation
    equivalence classes.  Safe and sound for every path expression, so
    its nodes carry {!Index_graph.k_infinite} local similarity.  The
    limit of the A(k)-index as k grows. *)

val build : ?domains:int -> ?mode:Kbisim.mode -> Dkindex_graph.Data_graph.t -> Index_graph.t

val bisimulation_depth : Dkindex_graph.Data_graph.t -> int
(** Number of refinement rounds until the partition stabilizes. *)
