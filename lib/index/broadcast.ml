open Dkindex_graph

let label_parents g =
  let n_labels = Label.Pool.count (Data_graph.pool g) in
  let parents = Array.make n_labels Int_set.empty in
  if n_labels * n_labels <= 1 lsl 22 then begin
    (* Small pools: dedup label pairs through a flat byte matrix so the
       edge scan does no set lookups (almost every pair repeats).  The
       scan walks the CSR arrays directly, loading each parent's label
       once per node rather than once per edge. *)
    let seen = Bytes.make (n_labels * n_labels) '\000' in
    let off, arr = Data_graph.csr_children g in
    for u = 0 to Data_graph.n_nodes g - 1 do
      let lu = Label.to_int (Data_graph.label g u) in
      for i = Int_vec.get off u to Int_vec.get off (u + 1) - 1 do
        let lv = Label.to_int (Data_graph.label g (Int_vec.unsafe_get arr i)) in
        let j = (lv * n_labels) + lu in
        if Bytes.unsafe_get seen j = '\000' then begin
          Bytes.unsafe_set seen j '\001';
          parents.(lv) <- Int_set.add lu parents.(lv)
        end
      done
    done
  end
  else
    Data_graph.iter_edges g (fun u v ->
        let lu = Label.to_int (Data_graph.label g u)
        and lv = Label.to_int (Data_graph.label g v) in
        parents.(lv) <- Int_set.add lu parents.(lv));
  parents

let run g ~reqs =
  let pool = Data_graph.pool g in
  let n_labels = Label.Pool.count pool in
  let req = Array.make n_labels 0 in
  List.iter
    (fun (name, k) ->
      if k < 0 then invalid_arg "Broadcast.run: negative requirement";
      match Label.Pool.find_opt pool name with
      | Some l -> req.(Label.to_int l) <- max req.(Label.to_int l) k
      | None -> ())
    reqs;
  let parents = label_parents g in
  let kmax = Array.fold_left max 0 req in
  if kmax > 0 then begin
    (* Buckets of labels by requirement at insertion time; a label whose
       requirement was raised after insertion is skipped when its stale
       bucket entry is reached. *)
    let buckets = Array.make (kmax + 1) [] in
    Array.iteri (fun l k -> if k > 0 then buckets.(k) <- l :: buckets.(k)) req;
    for k = kmax downto 1 do
      List.iter
        (fun l ->
          if req.(l) = k then
            Int_set.iter
              (fun p ->
                if req.(p) < k - 1 then begin
                  req.(p) <- k - 1;
                  buckets.(k - 1) <- p :: buckets.(k - 1)
                end)
              parents.(l))
        buckets.(k)
    done
  end;
  req
