open Dkindex_graph

type t = {
  n_nodes : int;
  n_edges : int;
  n_data_nodes : int;
  compression : float;
  largest_extent : int;
  singleton_extents : int;
  k_histogram : (int * int) list;
  label_rows : (string * int * int) list;
}

let compute idx =
  let pool = Data_graph.pool (Index_graph.data idx) in
  let k_hist = Hashtbl.create 8 in
  let labels : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  let data_nodes = ref 0 and largest = ref 0 and singletons = ref 0 in
  Index_graph.iter_alive idx (fun nd ->
      let k = if nd.Index_graph.k >= Index_graph.k_infinite then -1 else nd.Index_graph.k in
      Hashtbl.replace k_hist k (1 + Option.value (Hashtbl.find_opt k_hist k) ~default:0);
      let size = nd.Index_graph.extent_size in
      data_nodes := !data_nodes + size;
      if size > !largest then largest := size;
      if size = 1 then incr singletons;
      let name = Label.Pool.name pool nd.Index_graph.label in
      let n, d = Option.value (Hashtbl.find_opt labels name) ~default:(0, 0) in
      Hashtbl.replace labels name (n + 1, d + size));
  let n_nodes = Index_graph.n_nodes idx in
  {
    n_nodes;
    n_edges = Index_graph.n_edges idx;
    n_data_nodes = !data_nodes;
    compression = (if n_nodes = 0 then 0.0 else float_of_int !data_nodes /. float_of_int n_nodes);
    largest_extent = !largest;
    singleton_extents = !singletons;
    k_histogram = List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) k_hist []);
    label_rows =
      Hashtbl.fold (fun name (n, d) acc -> (name, n, d) :: acc) labels []
      |> List.sort (fun (_, a, _) (_, b, _) -> compare b a);
  }

type source = {
  idx : Index_graph.t;
  mu : Mutex.t;
  mutable gen : int;  (* generation at the last sweep; -1 = never *)
  mutable cached : t option;
  mutable recomputes : int;
}

let source idx = { idx; mu = Mutex.create (); gen = -1; cached = None; recomputes = 0 }
let source_index s = s.idx

let get s =
  Mutex.lock s.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mu) @@ fun () ->
  match s.cached with
  | Some st when Index_graph.generation s.idx = s.gen -> st
  | _ ->
    (* Snapshot the counter first: a concurrent mutation during the
       sweep at worst forces one extra recompute on the next get. *)
    let gen = Index_graph.generation s.idx in
    let st = compute s.idx in
    s.gen <- gen;
    s.cached <- Some st;
    s.recomputes <- s.recomputes + 1;
    st

let recomputes s = s.recomputes

let pp ppf t =
  Format.fprintf ppf "index nodes   %d@." t.n_nodes;
  Format.fprintf ppf "index edges   %d@." t.n_edges;
  Format.fprintf ppf "data nodes    %d (%.1fx compression)@." t.n_data_nodes t.compression;
  Format.fprintf ppf "extents       largest %d, singletons %d@." t.largest_extent
    t.singleton_extents;
  Format.fprintf ppf "similarity histogram:@.";
  List.iter
    (fun (k, n) ->
      if k < 0 then Format.fprintf ppf "  k=inf  %d nodes@." n
      else Format.fprintf ppf "  k=%-4d %d nodes@." k n)
    t.k_histogram;
  Format.fprintf ppf "busiest labels (index nodes / data nodes):@.";
  List.iteri
    (fun i (name, n, d) ->
      if i < 12 then Format.fprintf ppf "  %-28s %6d / %d@." name n d)
    t.label_rows
