(** Query-load mining: derive per-label local-similarity requirements
    from a workload (paper, Section 6.1).

    "We set a label's local similarity requirement to be the longest
    length of test path queries less one such that no validation will
    be needed": a query of m labels evaluated at a target index node is
    sound when the node's local similarity is at least m - 1, so the
    requirement of a label is the maximum (m - 1) over the workload
    queries that end in it.  Labels never queried default to 0. *)

open Dkindex_graph

val mine : Data_graph.t -> Query_gen.t -> Dkindex_core.Dk_index.requirements
(** Requirement per label name covering every query exactly. *)

val mine_quantile :
  Data_graph.t -> quantile:float -> Query_gen.t -> Dkindex_core.Dk_index.requirements
(** Cheaper variant for the ablation study: per label, the requirement
    covering the given fraction of the queries ending in it (so
    [~quantile:1.0] = {!mine}); the remaining tail pays validation. *)
