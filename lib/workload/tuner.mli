(** Online query-load mining and automatic D(k) maintenance — the
    paper's first future-work direction ("mine query patterns on query
    loads"), built on the promoting and demoting processes of
    Section 5.

    A tuner wraps a D(k)-index.  Every query evaluated through
    {!observe} is recorded in a sliding window; {!run_maintenance}
    (meant to run periodically, like the paper's promote/demote passes)
    compares the similarity requirements mined from the window with
    what the index currently guarantees, promotes labels that queries
    now reach through longer paths than the index can answer soundly,
    and — when the index outgrows its size budget — demotes it to
    exactly the window's requirements. *)

open Dkindex_graph
open Dkindex_core

type config = {
  window : int;  (** queries remembered (default 200) *)
  hot_fraction : float;
      (** a label's requirement is honored once it attracts at least
          this fraction of the window (default 0.01) *)
  size_budget : int option;
      (** demote when the index has more nodes than this (default
          [None]: never demote) *)
}

val default_config : config

type action =
  | Promoted of (string * int) list
      (** labels raised, with their new local similarity *)
  | Demoted of { before : int; after : int }  (** index sizes *)

type t

val create : ?config:config -> Index_graph.t -> t
val index : t -> Index_graph.t
(** The current index (replaced by a demotion). *)

val observe : t -> Label.t array -> Query_eval.result
(** Evaluate a label-path query through the current index and record
    it in the window. *)

val required_now : t -> (string * int) list
(** Requirements mined from the current window: for each hot target
    label, the longest observed query length minus one. *)

val lagging : t -> (string * int) list
(** The subset of {!required_now} the index cannot yet answer soundly
    (some index node of the label has a smaller local similarity). *)

val run_maintenance : t -> action list
(** Promote lagging labels; then demote if over budget.  Returns what
    was done (possibly nothing). *)

val pp_action : Format.formatter -> action -> unit
