open Dkindex_graph
open Dkindex_core

type config = { window : int; hot_fraction : float; size_budget : int option }

let default_config = { window = 200; hot_fraction = 0.01; size_budget = None }

type action =
  | Promoted of (string * int) list
  | Demoted of { before : int; after : int }

type entry = { target : string; need : int }

type t = {
  config : config;
  mutable idx : Index_graph.t;
  window : entry Queue.t;
}

let create ?(config = default_config) idx =
  if config.window <= 0 then invalid_arg "Tuner.create: window must be positive";
  { config; idx; window = Queue.create () }

let index t = t.idx

let observe t query =
  let result = Query_eval.eval_path t.idx query in
  let m = Array.length query in
  if m > 0 then begin
    let pool = Data_graph.pool (Index_graph.data t.idx) in
    let target = Label.Pool.name pool query.(m - 1) in
    Queue.add { target; need = m - 1 } t.window;
    while Queue.length t.window > t.config.window do
      ignore (Queue.pop t.window)
    done
  end;
  result

let required_now t =
  let counts : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  Queue.iter
    (fun { target; need } ->
      let n, k = Option.value (Hashtbl.find_opt counts target) ~default:(0, 0) in
      Hashtbl.replace counts target (n + 1, max k need))
    t.window;
  let hot_count =
    max 1 (int_of_float (ceil (t.config.hot_fraction *. float_of_int (Queue.length t.window))))
  in
  Hashtbl.fold
    (fun target (n, k) acc -> if n >= hot_count then (target, k) :: acc else acc)
    counts []
  |> List.sort (fun (a, ka) (b, kb) ->
         match String.compare a b with 0 -> Int.compare ka kb | c -> c)

(* The smallest local similarity the index currently guarantees for a
   label, or None if the label has no index node. *)
let current_floor t label_name =
  let pool = Data_graph.pool (Index_graph.data t.idx) in
  match Label.Pool.find_opt pool label_name with
  | None -> None
  | Some l -> (
    match Index_graph.nodes_with_label t.idx l with
    | [] -> None
    | ids ->
      Some
        (List.fold_left
           (fun acc id -> min acc (Index_graph.node t.idx id).Index_graph.k)
           max_int ids))

let lagging t =
  List.filter
    (fun (label, k) ->
      match current_floor t label with Some floor -> floor < k | None -> false)
    (required_now t)

let run_maintenance t =
  let actions = ref [] in
  let lag = lagging t in
  if lag <> [] then begin
    Dk_tune.promote_labels t.idx lag;
    actions := Promoted lag :: !actions
  end;
  (match t.config.size_budget with
  | Some budget when Index_graph.n_nodes t.idx > budget ->
    let before = Index_graph.n_nodes t.idx in
    let demoted = Dk_tune.demote t.idx ~reqs:(required_now t) in
    if Index_graph.n_nodes demoted < before then begin
      t.idx <- demoted;
      actions := Demoted { before; after = Index_graph.n_nodes demoted } :: !actions
    end
  | Some _ | None -> ());
  List.rev !actions

let pp_action ppf = function
  | Promoted labels ->
    Format.fprintf ppf "promoted %s"
      (String.concat ", " (List.map (fun (l, k) -> Printf.sprintf "%s->%d" l k) labels))
  | Demoted { before; after } -> Format.fprintf ppf "demoted %d -> %d nodes" before after
