open Dkindex_graph
module Prng = Dkindex_datagen.Prng

type t = Label.t array list

(* Sample a node path ending at a random node by walking parent edges;
   returns the path as a node list, start first. *)
let sample_node_path rng g ~len =
  let n = Data_graph.n_nodes g in
  let v = Prng.int rng n in
  let rec up u acc count =
    if count >= len then acc
    else
      match Data_graph.parents g u with
      | [] -> acc
      | parents ->
        let p = Prng.choose_list rng parents in
        up p (p :: acc) (count + 1)
  in
  up v [ v ] 1

let labels_of g nodes = Array.of_list (List.map (Data_graph.label g) nodes)

let generate ?(seed = 11) ?(count = 100) ?(min_len = 2) ?(max_len = 5) g =
  if min_len < 1 || max_len < min_len then invalid_arg "Query_gen.generate: bad lengths";
  let rng = Prng.create ~seed in
  let n_long = max 1 (count / 5) in
  (* Long paths, kept as node paths so branching variations stay
     non-empty by construction. *)
  let long_paths = ref [] and n_found = ref 0 and attempts = ref 0 in
  while !n_found < n_long && !attempts < n_long * 200 do
    incr attempts;
    let path = sample_node_path rng g ~len:max_len in
    if List.length path >= min_len then begin
      long_paths := Array.of_list path :: !long_paths;
      incr n_found
    end
  done;
  let long_paths = Array.of_list !long_paths in
  if Array.length long_paths = 0 then
    invalid_arg "Query_gen.generate: graph has no path of the minimum length";
  let seen = Hashtbl.create count in
  let queries = ref [] and n_queries = ref 0 in
  let push q =
    let key = Array.map Label.to_int q in
    (* Allow a few duplicates only when the label space is tiny. *)
    if not (Hashtbl.mem seen key) || Hashtbl.length seen < 8 then begin
      Hashtbl.replace seen key ();
      queries := q :: !queries;
      incr n_queries
    end
  in
  (* The long queries themselves. *)
  Array.iter (fun path -> if !n_queries < count then push (labels_of g (Array.to_list path))) long_paths;
  (* Branching variations until the budget is filled. *)
  let attempts = ref 0 in
  while !n_queries < count && !attempts < count * 200 do
    incr attempts;
    let path = long_paths.(Prng.int rng (Array.length long_paths)) in
    let path_len = Array.length path in
    let lo = max 0 (min_len - 2) and hi = min (path_len - 1) (max_len - 2) in
    if hi >= lo then begin
      let j = Prng.range rng lo hi in
      let prefix = Array.to_list (Array.sub path 0 (j + 1)) in
      if Prng.bool rng 0.3 && j + 1 >= min_len then
        (* A plain shorter prefix. *)
        push (labels_of g prefix)
      else begin
        (* Branch: extend the prefix with some child of its endpoint. *)
        let endpoint = path.(j) in
        match Data_graph.children g endpoint with
        | [] -> ()
        | children ->
          let c = Prng.choose_list rng children in
          push (Array.of_list (List.map (Data_graph.label g) prefix @ [ Data_graph.label g c ]))
      end
    end
  done;
  List.rev !queries

let to_strings g t =
  let pool = Data_graph.pool g in
  List.map (fun q -> Array.to_list (Array.map (Label.Pool.name pool) q)) t

let pp_query g ppf q =
  let pool = Data_graph.pool g in
  Format.pp_print_string ppf
    (String.concat "." (Array.to_list (Array.map (Label.Pool.name pool) q)))
