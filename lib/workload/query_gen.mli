(** Test-path workload generator (paper, Section 6.1).

    "We randomly generate 100 test paths with lengths between 2 and 5
    ... First, the program randomly chooses some long query paths;
    then, from these long paths, many shorter branching paths are
    generated" — simulating correlated real-world query patterns: a
    few long navigations plus many shorter variations sharing their
    prefixes.

    Every generated path is guaranteed non-empty on the data graph
    (paths are sampled from label paths that exist in the data). *)

open Dkindex_graph

type t = Label.t array list
(** Queries as label arrays (2 to 5 labels each). *)

val generate :
  ?seed:int ->
  ?count:int ->
  ?min_len:int ->
  ?max_len:int ->
  Data_graph.t ->
  t
(** Defaults reproduce the paper: [count = 100], lengths 2..5.
    Roughly a fifth of the queries are fresh "long" paths of
    [max_len]; the rest are shorter branching variations: a prefix of
    a long path extended by one different label that exists in the
    data. *)

val to_strings : Data_graph.t -> t -> string list list
val pp_query : Data_graph.t -> Format.formatter -> Label.t array -> unit
