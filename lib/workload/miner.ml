open Dkindex_graph

(* Typed comparator for (label name, required k) rows: the polymorphic
   [compare] costs ~6x on these through the generic runtime path. *)
let compare_req (a, ka) (b, kb) =
  match String.compare a b with 0 -> Int.compare ka kb | c -> c

let lengths_by_target g queries =
  let pool = Data_graph.pool g in
  let table : (string, int list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun q ->
      let m = Array.length q in
      if m > 0 then begin
        let target = Label.Pool.name pool q.(m - 1) in
        let need = m - 1 in
        let current = Option.value (Hashtbl.find_opt table target) ~default:[] in
        Hashtbl.replace table target (need :: current)
      end)
    queries;
  table

let mine g queries =
  let table = lengths_by_target g queries in
  Hashtbl.fold (fun label needs acc -> (label, List.fold_left max 0 needs) :: acc) table []
  |> List.sort compare_req

let mine_quantile g ~quantile queries =
  if quantile < 0.0 || quantile > 1.0 then invalid_arg "Miner.mine_quantile";
  let table = lengths_by_target g queries in
  Hashtbl.fold
    (fun label needs acc ->
      let sorted = List.sort Int.compare needs in
      let n = List.length sorted in
      let rank = min (n - 1) (int_of_float (ceil (quantile *. float_of_int n)) - 1) in
      let rank = max 0 rank in
      (label, List.nth sorted rank) :: acc)
    table []
  |> List.sort compare_req
