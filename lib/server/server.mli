(** dkserve: the concurrent D(k)-index query/update server.

    Threading model ("one mutator, N workers, lock-free reads"):
    - the {e main} domain runs an {!Evloop} (poll/epoll readiness
      loop, not a fixed select tick): it accepts, accumulates bytes,
      decodes frames in place from the connection buffer, answers
      cheap reads (ping, query, query-path, stats) {e inline}, and
      routes batch queries and mutations to two bounded queues;
    - [workers] query domains drain the read queue; each evaluates
      against an immutable {e serving snapshot} of the index, with a
      per-domain {!Dkindex_core.Validation_cache};
    - one {e mutator} domain drains the write queue in FIFO order and
      applies each update to a private spare copy of the index, then
      publishes it ({!Dkindex_core.Index_graph.prepare_serving} first,
      one atomic store after) and replays the delta onto the retired
      copy once in-flight readers have drained (left-right scheme).

    Readers therefore never block and never take a lock: acquiring
    the snapshot is an atomic load plus a generation-stamped slot
    store, and a query admitted before a mutation completes on the
    pre-mutation snapshot.

    Responses are written by whichever domain handled the request,
    under a per-connection mutex, and carry the request id.  Because
    the inline fast path answers ahead of queued work, a pipelining
    client {e will} see responses out of order (a ping can overtake an
    earlier batch query); the id is the authoritative correlation.
    Requests on the {e same} queue (all mutations; all batch queries)
    keep their submission order.

    Overload and failure semantics:
    - a full queue sheds the request with {!Wire.Overloaded};
    - a request older than [deadline_s] at dequeue time is answered
      with [`Deadline] instead of being evaluated;
    - a malformed payload in a well-formed frame gets [`Protocol] and
      the connection survives; an oversized frame closes it;
    - connections idle longer than [idle_timeout_s] are closed;
    - SIGTERM/SIGINT (or a {!Wire.Shutdown} request) starts a graceful
      drain: stop accepting, answer in-flight requests, close every
      connection, then write a final snapshot/checkpoint — a failure
      there (disk full, say) is reported as [Error _], never raised
      through the drain.

    Durability: pass [?durability] (a running {!Checkpoint.t}) and the
    mutator logs every applied mutation to the write-ahead log before
    acknowledging it, takes periodic checkpoints, and — should the WAL
    become unwritable — degrades to read-only: mutations are refused
    with {!Wire.Read_only} while queries keep working.  Shutdown then
    writes a final checkpoint and closes the log.

    Replication: a durable primary automatically runs a
    {!Replication.hub}; replicas subscribe with {!Wire.Rep_subscribe}
    (the connection is detached and handed to a dedicated sender
    domain) and receive snapshot bootstraps, WAL chunks, and
    heartbeats.  Pass [?replica_of] and the server starts as a
    {e replica} instead: a tailer domain streams from the primary and
    feeds decoded mutations through the same mutator path client
    writes use; writes are refused with {!Wire.Not_primary}, and reads
    are refused with [`Stale] once the primary has been silent past
    the configured staleness bound.  {!Wire.Promote_primary} (or the
    failover watchdog, when [auto_promote] is set) bumps the persisted
    epoch and flips the replica into a primary in place.  A primary
    that observes a higher epoch in any {!Wire.Hello} or subscription
    fences itself: subsequent writes get {!Wire.Fenced} so a deposed
    primary cannot acknowledge into a lineage it no longer leads. *)

open Dkindex_core

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (reported via [on_ready]) *)
  workers : int;  (** query worker domains, >= 1 *)
  queue_depth : int;  (** per-queue bound before shedding *)
  deadline_s : float;  (** per-request deadline; <= 0 disables *)
  idle_timeout_s : float;  (** idle-connection close; <= 0 disables *)
  max_frame : int;
  snapshot_path : string option;  (** for {!Wire.Snapshot} and the final drain *)
  max_conns : int;
      (** admission control: once this many connections are live, new
          accepts are answered with one {!Wire.Overloaded} frame and
          closed (counted in [rejected_at_admission]); <= 0 disables *)
  read_progress_deadline_s : float;
      (** slow-loris defense: once the first byte of a frame arrives,
          the whole frame must arrive within this window or the
          connection is evicted (counted in [evicted_slow_clients]).
          The clock starts at the first byte of an incomplete frame
          and is {e not} refreshed by trickled bytes; <= 0 disables *)
  scrub_interval_s : float;
      (** background at-rest scrub cadence: every interval, the
          integrity domain re-reads the data directory (checkpoints +
          CRC sidecars, sealed WAL segments, containers) with {!Scrub},
          quarantines anything corrupt after re-checkpointing from the
          live index, and counts findings in
          [scrub_passes]/[scrub_corruptions_found].  Needs
          [durability]; <= 0 disables *)
  scrub_max_bytes_per_s : int;
      (** scrub read-rate bound (the scrubber shares a disk with the
          WAL); <= 0 unlimited *)
  anti_entropy_interval_s : float;
      (** replica-side anti-entropy cadence: every interval the replica
          fetches the primary's {!Integrity} digests, compares at equal
          write-stream positions, and on persistent divergence repairs
          the differing ranges ({!Wire.Repair_fetch}) or falls back to
          a snapshot re-bootstrap — counted in
          [replica_divergences]/[ranges_repaired]/[integrity_resyncs].
          Only meaningful with [replica_of]; <= 0 disables *)
}

val default_config : config
(** 127.0.0.1:7411, 2 workers, depth 256, 10 s deadline, 60 s idle,
    {!Wire.max_frame_default}, no snapshot path, no connection budget,
    no read-progress deadline, no scrubbing, no anti-entropy. *)

val run :
  ?on_ready:(int -> unit) ->
  ?handle_signals:bool ->
  ?durability:Checkpoint.t ->
  ?replica_of:Replication.rconfig ->
  ?hub_faults:(int -> Faults.t option) ->
  ?hub_heartbeat_s:float ->
  ?repl_drop_nth:int ->
  config ->
  Index_graph.t ->
  (unit, string) result
(** Serve [index] until shutdown; blocks.  [on_ready port] fires once
    the socket is bound and listening.  [handle_signals] (default
    [true]) installs SIGTERM/SIGINT handlers that trigger the graceful
    drain — pass [false] when embedding the server in a test or
    benchmark domain and stopping it with {!Wire.Shutdown}.
    [durability] enables WAL + checkpoint logging (see above); the
    caller builds it with {!Checkpoint.start}, typically from a
    {!Checkpoint.recover}ed state.  [replica_of] starts the server as
    a replica of the given primary (see above); [durability] is then
    the replica's own local log, used to survive its own restarts and
    to serve as a primary after promotion.  [hub_faults] injects
    {!Faults} into the replication sender for a given replica id
    (tests: partitions, torn streams, slow links); [hub_heartbeat_s]
    overrides the replication heartbeat interval.  [repl_drop_nth]
    (tests only) makes a replica silently skip the nth fresh record of
    its replication stream — divergence the stream itself cannot see,
    which is exactly what anti-entropy exists to catch.  Returns [Error _]
    if the final snapshot or checkpoint could not be written —
    connections are already cleaned up by then, so callers should log
    it and exit nonzero. *)

(** Bounded MPMC queue used for the server's read/write queues,
    exposed for property tests.  [try_push] sheds when full (returns
    [false]); [push] blocks until there is room; [pop] blocks until an
    element or [close] arrives ([None] only after [close] and drain). *)
module Bqueue : sig
  type 'a t

  val create : int -> 'a t
  val try_push : 'a t -> 'a -> bool
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val close : 'a t -> unit
  val is_empty : 'a t -> bool
  val length : 'a t -> int
end
