open Dkindex_pathexpr

let version = 1
let max_frame_default = 16 * 1024 * 1024

type query_flags = { no_cache : bool }
type role = Primary | Replica

type request =
  | Ping
  | Query of { flags : query_flags; expr : Path_ast.t }
  | Query_path of { flags : query_flags; labels : string list }
  | Batch_query of { flags : query_flags; paths : string list list }
  | Add_edge of { u : int; v : int }
  | Remove_edge of { u : int; v : int }
  | Add_subgraph of { graph : string; reqs : (string * int) list }
  | Promote of (string * int) list
  | Demote of (string * int) list
  | Stats
  | Snapshot
  | Shutdown
  | Hello of { version : int; epoch : int }
  | Rep_subscribe of { replica_id : int; epoch : int; seq : int; offset : int }
  | Promote_primary
  | Query_planned of { flags : query_flags; expr : Path_ast.t }
  | Explain of { expr : Path_ast.t }
  | Has_edge of { u : int; v : int }
  | Digest_request
  | Repair_fetch of { ranges : int list }

type query_result = {
  nodes : int array;
  index_visits : int;
  data_visits : int;
  n_candidates : int;
  n_certain : int;
  generation : int;
  age_ms : int;
}

type error_code = [ `Protocol | `App | `Deadline | `Shutting_down | `Version | `Stale ]

type response =
  | Pong
  | Result of query_result
  | Batch_result of query_result array
  | Ok_reply of { generation : int; epoch : int }
  | Stats_reply of (string * string) list
  | Error_reply of { code : error_code; message : string }
  | Overloaded
  | Read_only
  | Hello_reply of { version : int; epoch : int; role : role }
  | Rep_records of { epoch : int; seq : int; offset : int; data : string }
  | Rep_snapshot of { epoch : int; seq : int; index : string }
  | Rep_heartbeat of { epoch : int; seq : int; offset : int }
  | Not_primary of { host : string; port : int }
  | Fenced of { epoch : int }
  | Planned_result of { plan : string; result : query_result }
  | Explain_reply of string list
  | Edge_reply of { present : bool; generation : int; age_ms : int }
  | Digest_reply of {
      generation : int;
      seq : int;  (** write-stream position the digest reflects; -1 = unstable *)
      offset : int;
      n_nodes : int;
      root : int;
      label_edges : int;
      data_ranges : int array;
      index_ranges : int array;  (** same length as [data_ranges] *)
    }
  | Repair_reply of { generation : int; sections : (int * (int * int) array) list }

(* ------------------------------------------------------------------ *)
(* Primitive encoders, over {!Obuf} so frames can be written (and
   their length slots patched) in place — no [Buffer.to_bytes] copy
   per frame. *)

let add_u8 = Obuf.add_u8
let add_u16 = Obuf.add_u16
let add_u32 = Obuf.add_u32

(* WAL byte offsets can exceed 32 bits; 48 is plenty and keeps frames
   compact.  Generation numbers use u32 with 0xffffffff as a -1
   sentinel (subscribe-from-scratch). *)
let add_u48 buf n =
  add_u16 buf (n lsr 32);
  add_u32 buf n

let add_seq buf n =
  if n < 0 then add_u32 buf 0xffffffff else add_u32 buf n

let add_str16 buf s =
  if String.length s > 0xffff then invalid_arg "Wire: string too long";
  add_u16 buf (String.length s);
  Obuf.add_string buf s

let add_str32 buf s =
  add_u32 buf (String.length s);
  Obuf.add_string buf s

let add_pairs16 buf pairs =
  if List.length pairs > 0xffff then invalid_arg "Wire: too many pairs";
  add_u16 buf (List.length pairs);
  List.iter
    (fun (l, k) ->
      add_str16 buf l;
      add_u32 buf k)
    pairs

let add_labels16 buf labels =
  if List.length labels > 0xffff then invalid_arg "Wire: too many labels";
  add_u16 buf (List.length labels);
  List.iter (add_str16 buf) labels

let flags_byte { no_cache } = if no_cache then 1 else 0
let flags_of_byte b = { no_cache = b land 1 <> 0 }

(* ------------------------------------------------------------------ *)
(* Primitive decoders: a cursor over a slice [lo, hi) of an immutable
   string, so a frame payload can be decoded in place from a
   connection's read buffer without being copied out first.  Every
   bound checks against [hi], never [String.length c.s].  [Bad] is
   caught at the public entry points, which return [result]. *)

exception Bad of string

type cursor = { s : string; mutable pos : int; hi : int }

let need c n = if c.pos + n > c.hi then raise (Bad "truncated")

let u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c =
  let hi = u8 c in
  let lo = u8 c in
  (hi lsl 8) lor lo

let u32 c =
  let a = u16 c in
  let b = u16 c in
  (a lsl 16) lor b

let u48 c =
  let a = u16 c in
  let b = u32 c in
  (a lsl 32) lor b

let seq32 c =
  let n = u32 c in
  if n = 0xffffffff then -1 else n

let str16 c =
  let n = u16 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let str32 c =
  let n = u32 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

(* Guard list/array reads: a declared count beyond what the remaining
   bytes could possibly hold is malformed, not a 4 GiB allocation. *)
let check_count c count ~min_item_bytes =
  if count < 0 || count * min_item_bytes > c.hi - c.pos then
    raise (Bad "count exceeds frame")

let pairs16 c =
  let n = u16 c in
  check_count c n ~min_item_bytes:6;
  List.init n (fun _ ->
      let l = str16 c in
      let k = u32 c in
      (l, k))

let labels16 c =
  let n = u16 c in
  check_count c n ~min_item_bytes:2;
  List.init n (fun _ -> str16 c)

let expect_end c what =
  if c.pos <> c.hi then raise (Bad (what ^ ": trailing bytes"))

(* ------------------------------------------------------------------ *)
(* Frames *)

let frame_of_payload payload =
  let buf = Obuf.create (String.length payload + 4) in
  add_u32 buf (String.length payload);
  Obuf.add_string buf payload;
  Obuf.contents buf

(* Reserve the length slot, write the payload, patch the length in
   place — zero copies, and frames already in the buffer are left
   untouched (so several frames can be batched and flushed with one
   write). *)
let with_frame buf f =
  let start = Obuf.length buf in
  add_u32 buf 0;
  f ();
  Obuf.patch_u32 buf start (Obuf.length buf - start - 4)

(* ------------------------------------------------------------------ *)
(* Requests *)

let request_kind = function
  | Ping -> 0x01
  | Query _ -> 0x02
  | Query_path _ -> 0x03
  | Batch_query _ -> 0x04
  | Add_edge _ -> 0x05
  | Remove_edge _ -> 0x06
  | Add_subgraph _ -> 0x07
  | Promote _ -> 0x08
  | Demote _ -> 0x09
  | Stats -> 0x0a
  | Snapshot -> 0x0b
  | Shutdown -> 0x0c
  | Hello _ -> 0x0d
  | Rep_subscribe _ -> 0x0e
  | Promote_primary -> 0x0f
  | Query_planned _ -> 0x10
  | Explain _ -> 0x11
  | Has_edge _ -> 0x12
  | Digest_request -> 0x13
  | Repair_fetch _ -> 0x14

(* Hello carries its sender's protocol version in the header version
   byte itself, so a server can answer a mismatched peer with a typed
   error instead of failing to decode. *)
let encode_request buf ~id req =
  with_frame buf (fun () ->
      (match req with
      | Hello { version = v; _ } -> add_u8 buf v
      | _ -> add_u8 buf version);
      add_u8 buf (request_kind req);
      add_u32 buf id;
      match req with
      | Ping | Stats | Snapshot | Shutdown | Promote_primary | Digest_request -> ()
      | Repair_fetch { ranges } ->
        if List.length ranges > 0xffff then invalid_arg "Wire: too many ranges";
        add_u16 buf (List.length ranges);
        List.iter (add_u32 buf) ranges
      | Hello { version = _; epoch } -> add_u32 buf epoch
      | Rep_subscribe { replica_id; epoch; seq; offset } ->
        add_u32 buf replica_id;
        add_u32 buf epoch;
        add_seq buf seq;
        add_u48 buf offset
      | Query { flags; expr } ->
        add_u8 buf (flags_byte flags);
        (* Path_ast's codec speaks [Buffer]; ASTs are tiny and Query
           encoding is client-side, so the bounce costs nothing the
           server ever sees. *)
        let b = Buffer.create 64 in
        Path_ast.encode b expr;
        Obuf.add_buffer buf b
      | Query_path { flags; labels } ->
        add_u8 buf (flags_byte flags);
        add_labels16 buf labels
      | Query_planned { flags; expr } ->
        add_u8 buf (flags_byte flags);
        let b = Buffer.create 64 in
        Path_ast.encode b expr;
        Obuf.add_buffer buf b
      | Explain { expr } ->
        let b = Buffer.create 64 in
        Path_ast.encode b expr;
        Obuf.add_buffer buf b
      | Batch_query { flags; paths } ->
        add_u8 buf (flags_byte flags);
        add_u32 buf (List.length paths);
        List.iter (add_labels16 buf) paths
      | Add_edge { u; v } | Remove_edge { u; v } | Has_edge { u; v } ->
        add_u32 buf u;
        add_u32 buf v
      | Add_subgraph { graph; reqs } ->
        add_str32 buf graph;
        add_pairs16 buf reqs
      | Promote pairs | Demote pairs -> add_pairs16 buf pairs)

type 'a decoded = { id : int; msg : 'a }

(* Header version is NOT checked here: Hello frames (kind 0x0d request,
   0x89 response) are decodable at any version so that negotiation can
   reject a mismatched peer with a typed error.  Everything else
   requires an exact version match. *)
let decode_header c =
  let v = u8 c in
  let kind = u8 c in
  let id = u32 c in
  (v, kind, id)

let check_version v kind =
  if v <> version then
    raise (Bad (Printf.sprintf "unsupported version %d for kind 0x%02x" v kind))

let decode_request_at big ~pos ~len =
  let c = { s = big; pos; hi = pos + len } in
  match
    let v, kind, id = decode_header c in
    if kind <> 0x0d then check_version v kind;
    let msg =
      match kind with
      | 0x0d ->
        let epoch = u32 c in
        (* A future version may append fields: tolerate trailing bytes
           so the server still sees a Hello it can refuse politely. *)
        if v = version then expect_end c "hello" else c.pos <- c.hi;
        Hello { version = v; epoch }
      | 0x01 -> Ping
      | 0x02 ->
        let flags = flags_of_byte (u8 c) in
        let expr =
          (* Path_ast bounds against the whole backing string; an AST
             that overruns its own frame leaves [c.pos > c.hi] and is
             rejected by [expect_end] below. *)
          match Path_ast.decode big ~pos:c.pos with
          | Ok (expr, pos) ->
            c.pos <- pos;
            expr
          | Error msg -> raise (Bad msg)
        in
        Query { flags; expr }
      | 0x03 ->
        let flags = flags_of_byte (u8 c) in
        Query_path { flags; labels = labels16 c }
      | 0x04 ->
        let flags = flags_of_byte (u8 c) in
        let n = u32 c in
        check_count c n ~min_item_bytes:2;
        Batch_query { flags; paths = List.init n (fun _ -> labels16 c) }
      | 0x05 ->
        let u = u32 c in
        let v = u32 c in
        Add_edge { u; v }
      | 0x06 ->
        let u = u32 c in
        let v = u32 c in
        Remove_edge { u; v }
      | 0x07 ->
        let graph = str32 c in
        Add_subgraph { graph; reqs = pairs16 c }
      | 0x08 -> Promote (pairs16 c)
      | 0x09 -> Demote (pairs16 c)
      | 0x0a -> Stats
      | 0x0b -> Snapshot
      | 0x0c -> Shutdown
      | 0x0e ->
        let replica_id = u32 c in
        let epoch = u32 c in
        let seq = seq32 c in
        let offset = u48 c in
        Rep_subscribe { replica_id; epoch; seq; offset }
      | 0x0f -> Promote_primary
      | 0x10 ->
        let flags = flags_of_byte (u8 c) in
        let expr =
          match Path_ast.decode big ~pos:c.pos with
          | Ok (expr, pos) ->
            c.pos <- pos;
            expr
          | Error msg -> raise (Bad msg)
        in
        Query_planned { flags; expr }
      | 0x11 ->
        let expr =
          match Path_ast.decode big ~pos:c.pos with
          | Ok (expr, pos) ->
            c.pos <- pos;
            expr
          | Error msg -> raise (Bad msg)
        in
        Explain { expr }
      | 0x12 ->
        let u = u32 c in
        let v = u32 c in
        Has_edge { u; v }
      | 0x13 -> Digest_request
      | 0x14 ->
        let n = u16 c in
        check_count c n ~min_item_bytes:4;
        Repair_fetch { ranges = List.init n (fun _ -> u32 c) }
      | k -> raise (Bad (Printf.sprintf "unknown request kind 0x%02x" k))
    in
    expect_end c "request";
    { id; msg }
  with
  | decoded -> Ok decoded
  | exception Bad msg -> Error msg

let decode_request payload = decode_request_at payload ~pos:0 ~len:(String.length payload)

(* ------------------------------------------------------------------ *)
(* Responses *)

let encode_result buf (r : query_result) =
  add_u32 buf r.index_visits;
  add_u32 buf r.data_visits;
  add_u32 buf r.n_candidates;
  add_u32 buf r.n_certain;
  add_u32 buf r.generation;
  add_u32 buf r.age_ms;
  add_u32 buf (Array.length r.nodes);
  Array.iter (add_u32 buf) r.nodes

let decode_result c =
  let index_visits = u32 c in
  let data_visits = u32 c in
  let n_candidates = u32 c in
  let n_certain = u32 c in
  let generation = u32 c in
  let age_ms = u32 c in
  let n = u32 c in
  check_count c n ~min_item_bytes:4;
  let nodes = Array.init n (fun _ -> u32 c) in
  { nodes; index_visits; data_visits; n_candidates; n_certain; generation; age_ms }

let error_code_byte = function
  | `Protocol -> 0
  | `App -> 1
  | `Deadline -> 2
  | `Shutting_down -> 3
  | `Version -> 4
  | `Stale -> 5

let error_code_of_byte = function
  | 0 -> `Protocol
  | 1 -> `App
  | 2 -> `Deadline
  | 3 -> `Shutting_down
  | 4 -> `Version
  | 5 -> `Stale
  | b -> raise (Bad (Printf.sprintf "unknown error code %d" b))

let role_byte = function Primary -> 0 | Replica -> 1

let role_of_byte = function
  | 0 -> Primary
  | 1 -> Replica
  | b -> raise (Bad (Printf.sprintf "unknown role %d" b))

let response_kind = function
  | Pong -> 0x81
  | Result _ -> 0x82
  | Batch_result _ -> 0x83
  | Ok_reply _ -> 0x84
  | Stats_reply _ -> 0x85
  | Error_reply _ -> 0x86
  | Overloaded -> 0x87
  | Read_only -> 0x88
  | Hello_reply _ -> 0x89
  | Rep_records _ -> 0x8a
  | Rep_snapshot _ -> 0x8b
  | Rep_heartbeat _ -> 0x8c
  | Not_primary _ -> 0x8d
  | Fenced _ -> 0x8e
  | Planned_result _ -> 0x8f
  | Explain_reply _ -> 0x90
  | Edge_reply _ -> 0x91
  | Digest_reply _ -> 0x92
  | Repair_reply _ -> 0x93

let encode_response buf ~id resp =
  with_frame buf (fun () ->
      (match resp with
      | Hello_reply { version = v; _ } -> add_u8 buf v
      | _ -> add_u8 buf version);
      add_u8 buf (response_kind resp);
      add_u32 buf id;
      match resp with
      | Pong | Overloaded | Read_only -> ()
      | Result r -> encode_result buf r
      | Batch_result rs ->
        add_u32 buf (Array.length rs);
        Array.iter (encode_result buf) rs
      | Ok_reply { generation; epoch } ->
        add_u32 buf generation;
        add_u32 buf epoch
      | Hello_reply { version = _; epoch; role } ->
        add_u32 buf epoch;
        add_u8 buf (role_byte role)
      | Rep_records { epoch; seq; offset; data } ->
        add_u32 buf epoch;
        add_seq buf seq;
        add_u48 buf offset;
        add_str32 buf data
      | Rep_snapshot { epoch; seq; index } ->
        add_u32 buf epoch;
        add_seq buf seq;
        add_str32 buf index
      | Rep_heartbeat { epoch; seq; offset } ->
        add_u32 buf epoch;
        add_seq buf seq;
        add_u48 buf offset
      | Not_primary { host; port } ->
        add_str16 buf host;
        add_u16 buf port
      | Fenced { epoch } -> add_u32 buf epoch
      | Planned_result { plan; result } ->
        add_str16 buf plan;
        encode_result buf result
      | Explain_reply lines ->
        if List.length lines > 0xffff then invalid_arg "Wire: too many explain lines";
        add_u16 buf (List.length lines);
        List.iter (add_str16 buf) lines
      | Edge_reply { present; generation; age_ms } ->
        add_u8 buf (if present then 1 else 0);
        add_u32 buf generation;
        add_u32 buf age_ms
      | Digest_reply { generation; seq; offset; n_nodes; root; label_edges; data_ranges; index_ranges } ->
        if Array.length data_ranges <> Array.length index_ranges then
          invalid_arg "Wire: digest range arrays differ";
        add_u32 buf generation;
        add_seq buf seq;
        add_u48 buf offset;
        add_u32 buf n_nodes;
        add_u48 buf root;
        add_u48 buf label_edges;
        add_u32 buf (Array.length data_ranges);
        Array.iter (add_u48 buf) data_ranges;
        Array.iter (add_u48 buf) index_ranges
      | Repair_reply { generation; sections } ->
        if List.length sections > 0xffff then invalid_arg "Wire: too many sections";
        add_u32 buf generation;
        add_u16 buf (List.length sections);
        List.iter
          (fun (range, edges) ->
            add_u32 buf range;
            add_u32 buf (Array.length edges);
            Array.iter
              (fun (u, v) ->
                add_u32 buf u;
                add_u32 buf v)
              edges)
          sections
      | Stats_reply kvs ->
        if List.length kvs > 0xffff then invalid_arg "Wire: too many stats";
        add_u16 buf (List.length kvs);
        List.iter
          (fun (k, v) ->
            add_str16 buf k;
            add_str16 buf v)
          kvs
      | Error_reply { code; message } ->
        add_u8 buf (error_code_byte code);
        add_str16 buf message)

let decode_response_at big ~pos ~len =
  let c = { s = big; pos; hi = pos + len } in
  match
    let v, kind, id = decode_header c in
    if kind <> 0x89 then check_version v kind;
    let msg =
      match kind with
      | 0x81 -> Pong
      | 0x82 -> Result (decode_result c)
      | 0x83 ->
        let n = u32 c in
        check_count c n ~min_item_bytes:28;
        Batch_result (Array.init n (fun _ -> decode_result c))
      | 0x84 ->
        let generation = u32 c in
        let epoch = u32 c in
        Ok_reply { generation; epoch }
      | 0x89 ->
        let epoch = u32 c in
        let role = role_of_byte (u8 c) in
        if v = version then expect_end c "hello_reply" else c.pos <- c.hi;
        Hello_reply { version = v; epoch; role }
      | 0x8a ->
        let epoch = u32 c in
        let seq = seq32 c in
        let offset = u48 c in
        let data = str32 c in
        Rep_records { epoch; seq; offset; data }
      | 0x8b ->
        let epoch = u32 c in
        let seq = seq32 c in
        let index = str32 c in
        Rep_snapshot { epoch; seq; index }
      | 0x8c ->
        let epoch = u32 c in
        let seq = seq32 c in
        let offset = u48 c in
        Rep_heartbeat { epoch; seq; offset }
      | 0x8d ->
        let host = str16 c in
        let port = u16 c in
        Not_primary { host; port }
      | 0x8e -> Fenced { epoch = u32 c }
      | 0x8f ->
        let plan = str16 c in
        Planned_result { plan; result = decode_result c }
      | 0x90 ->
        let n = u16 c in
        check_count c n ~min_item_bytes:2;
        Explain_reply (List.init n (fun _ -> str16 c))
      | 0x91 ->
        let present =
          match u8 c with
          | 0 -> false
          | 1 -> true
          | b -> raise (Bad (Printf.sprintf "bad edge_reply %d" b))
        in
        let generation = u32 c in
        let age_ms = u32 c in
        Edge_reply { present; generation; age_ms }
      | 0x92 ->
        let generation = u32 c in
        let seq = seq32 c in
        let offset = u48 c in
        let n_nodes = u32 c in
        let root = u48 c in
        let label_edges = u48 c in
        let n = u32 c in
        check_count c n ~min_item_bytes:12;
        let data_ranges = Array.init n (fun _ -> u48 c) in
        let index_ranges = Array.init n (fun _ -> u48 c) in
        Digest_reply { generation; seq; offset; n_nodes; root; label_edges; data_ranges; index_ranges }
      | 0x93 ->
        let generation = u32 c in
        let n = u16 c in
        check_count c n ~min_item_bytes:8;
        let sections =
          List.init n (fun _ ->
              let range = u32 c in
              let m = u32 c in
              check_count c m ~min_item_bytes:8;
              let edges =
                Array.init m (fun _ ->
                    let u = u32 c in
                    let v = u32 c in
                    (u, v))
              in
              (range, edges))
        in
        Repair_reply { generation; sections }
      | 0x85 ->
        let n = u16 c in
        check_count c n ~min_item_bytes:4;
        Stats_reply
          (List.init n (fun _ ->
               let k = str16 c in
               let v = str16 c in
               (k, v)))
      | 0x86 ->
        let code = error_code_of_byte (u8 c) in
        let message = str16 c in
        Error_reply { code; message }
      | 0x87 -> Overloaded
      | 0x88 -> Read_only
      | k -> raise (Bad (Printf.sprintf "unknown response kind 0x%02x" k))
    in
    expect_end c "response";
    { id; msg }
  with
  | decoded -> Ok decoded
  | exception Bad msg -> Error msg

let decode_response payload = decode_response_at payload ~pos:0 ~len:(String.length payload)

(* ------------------------------------------------------------------ *)
(* Gathered encoding: for replication frames carrying a large blob
   (a WAL chunk or a whole serialized index), encode everything but
   the blob into [buf] — length prefix patched to account for the
   tail — and hand the blob back to be written from its own string
   (e.g. with {!Evloop.writev}), instead of copying megabytes through
   the frame buffer. *)

let gather_threshold = 4096

let encode_response_gather buf ~id resp =
  let header tail k =
    let start = Obuf.length buf in
    add_u32 buf 0;
    add_u8 buf version;
    add_u8 buf (response_kind resp);
    add_u32 buf id;
    k ();
    add_u32 buf (String.length tail);
    Obuf.patch_u32 buf start (Obuf.length buf - start - 4 + String.length tail);
    Some tail
  in
  match resp with
  | Rep_records { epoch; seq; offset; data } when String.length data >= gather_threshold ->
    header data (fun () ->
        add_u32 buf epoch;
        add_seq buf seq;
        add_u48 buf offset)
  | Rep_snapshot { epoch; seq; index } when String.length index >= gather_threshold ->
    header index (fun () ->
        add_u32 buf epoch;
        add_seq buf seq)
  | _ ->
    encode_response buf ~id resp;
    None

(* ------------------------------------------------------------------ *)
(* Blocking frame reader *)

let read_exact read buf off len =
  let got = ref 0 in
  (try
     while !got < len do
       let n = read buf (off + !got) (len - !got) in
       if n = 0 then raise Exit;
       got := !got + n
     done
   with Exit -> ());
  !got

let read_frame ?(max_frame = max_frame_default) ~read () =
  let hdr = Bytes.create 4 in
  match read_exact read hdr 0 4 with
  | 0 -> `Eof
  | 4 ->
    let len =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if len > max_frame then `Oversized len
    else begin
      let body = Bytes.create len in
      if read_exact read body 0 len < len then failwith "Wire.read_frame: truncated frame";
      `Frame (Bytes.unsafe_to_string body)
    end
  | _ -> failwith "Wire.read_frame: truncated header"
