open Dkindex_graph
open Dkindex_core

type corrupt = {
  file : string;
  what : [ `Checkpoint of int | `Wal of int | `Container ];
  reason : string;
}

type report = { files_scanned : int; bytes_read : int; corrupt : corrupt list }

(* ------------------------------------------------------------------ *)
(* Rate-limited whole-file reads                                      *)

type throttle = { cap : int; t0 : float; mutable bytes : int }

let throttle cap = { cap; t0 = Unix.gettimeofday (); bytes = 0 }

(* Keep the cumulative rate under [cap] by sleeping after each chunk:
   instantaneous bursts are one chunk (256 KiB) long at most. *)
let pay th n =
  th.bytes <- th.bytes + n;
  if th.cap > 0 then begin
    let min_elapsed = float_of_int th.bytes /. float_of_int th.cap in
    let elapsed = Unix.gettimeofday () -. th.t0 in
    if elapsed < min_elapsed then Unix.sleepf (min_elapsed -. elapsed)
  end

let read_file th path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let buf = Buffer.create 65536 in
      let chunk = Bytes.create (256 * 1024) in
      let rec go () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Buffer.contents buf
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          pay th n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ())

(* ------------------------------------------------------------------ *)
(* Per-kind verification                                              *)

let verify_checkpoint ~dir ~seq s =
  match Checkpoint.check_sidecar ~dir ~seq s with
  | Error reason -> Some reason
  | Ok true -> None  (* bytes match the CRC written with them *)
  | Ok false -> (
    (* no sidecar: parse is the only check we have *)
    match Index_serial.of_string s with
    | _ -> None
    | exception e -> Some ("unparsable snapshot: " ^ Printexc.to_string e))

(* A torn tail that looks like a crashed append — fewer bytes than one
   record header, or a header whose record extends past EOF — is not
   corruption.  A complete record that failed CRC/decode is. *)
let verify_wal s =
  let r = Wal.replay_string s in
  if r.Wal.torn_bytes = 0 then None
  else begin
    let off = r.Wal.valid_bytes in
    let torn = r.Wal.torn_bytes in
    if torn < 8 then None
    else
      let len =
        (Char.code s.[off] lsl 24)
        lor (Char.code s.[off + 1] lsl 16)
        lor (Char.code s.[off + 2] lsl 8)
        lor Char.code s.[off + 3]
      in
      if len < 0 || 8 + len > torn then None
      else
        Some
          (Printf.sprintf "complete record at offset %d fails crc/decode (%d torn bytes)"
             off torn)
  end

let verify_container path =
  match Container.probe path with
  | None -> None
  | Some kind -> (
    match Container.Reader.with_file ~verify:true ~kind path (fun _ -> ()) with
    | () -> None
    | exception Container.Error e ->
      Some (Format.asprintf "container: %a" Container.pp_error e)
    | exception e -> Some ("container: " ^ Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* The pass                                                           *)

let quarantine_dir dir = Filename.concat dir "quarantine"

let seq_of name ~prefix ~suffix =
  let pl = String.length prefix and sl = String.length suffix in
  let n = String.length name in
  if n > pl + sl && String.starts_with ~prefix name && String.ends_with ~suffix name then
    int_of_string_opt (String.sub name pl (n - pl - sl))
  else None

let scan ?(max_bytes_per_s = 0) ~dir () =
  let th = throttle max_bytes_per_s in
  let scanned = ref 0 and corrupt = ref [] in
  let note file what reason = corrupt := { file; what; reason } :: !corrupt in
  let names =
    match Sys.readdir dir with
    | exception Sys_error _ -> [||]
    | a ->
      Array.sort compare a;
      a
  in
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      if (not (Filename.check_suffix name ".tmp")) && not (Sys.is_directory path) then
        match seq_of name ~prefix:"checkpoint-" ~suffix:".index" with
        | Some seq -> (
          incr scanned;
          match read_file th path with
          | s -> (
            match verify_checkpoint ~dir ~seq s with
            | Some reason -> note name (`Checkpoint seq) reason
            | None -> ())
          | exception e -> note name (`Checkpoint seq) (Printexc.to_string e))
        | None -> (
          match seq_of name ~prefix:"wal-" ~suffix:".log" with
          | Some seq -> (
            incr scanned;
            match read_file th path with
            | s -> (
              match verify_wal s with
              | Some reason -> note name (`Wal seq) reason
              | None -> ())
            | exception e -> note name (`Wal seq) (Printexc.to_string e))
          | None ->
            if Container.probe path <> None then begin
              incr scanned;
              (match verify_container path with
              | Some reason -> note name `Container reason
              | None -> ());
              pay th (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0)
            end))
    names;
  { files_scanned = !scanned; bytes_read = th.bytes; corrupt = List.rev !corrupt }

let quarantine ~dir files =
  let q = quarantine_dir dir in
  (try Unix.mkdir q 0o755 with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ());
  let moved =
    List.filter
      (fun name ->
        match Unix.rename (Filename.concat dir name) (Filename.concat q name) with
        | () -> true
        | exception Unix.Unix_error _ -> false)
      files
  in
  if moved <> [] then begin
    Checkpoint.fsync_dir q;
    Checkpoint.fsync_dir dir
  end;
  moved
