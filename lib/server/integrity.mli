(** Incremental digest tree over a served index.

    The integrity subsystem needs a cheap, content-canonical summary of
    "what this server is serving" that two cluster members can compare
    without shipping state: a primary and a replica hold physically
    different index graphs (different index-node ids, different label
    pool layouts are possible after independent builds), so every
    digest here is a function of {e logical} content only:

    - {b data-range digests}: the data-node id space is cut into fixed
      ranges of [1 lsl range_shift] ids; each range digests, per node,
      its label {e name} hash and the set of its children (combined
      order-independently, so a repaired edge applied late hashes the
      same as one applied in stream order).
    - {b index-range digests}: the same ranges, digesting per data node
      the canonical representative of its class (the smallest data node
      id in the extent, {!Index_graph.extent_min}) and the class's
      local similarity [k] — the partition signature, by range.
    - {b per-label index-edge buckets}: for every live index edge
      [A -> B], a hash of both endpoints' (label-name hash, canonical
      representative, k) is XOR-folded into the bucket of [A]'s label;
      buckets are combined order-independently into one
      [label_edges] scalar, so pool code layout does not matter.

    All of it rolls into a single [root].  Digests are 48-bit (they
    travel as [u48] on the wire).

    Incrementality: a {!t} caches every layer and recomputes only what
    a mutation could have touched.  Data-edge mutations dirty the
    ranges of their endpoints ({!note_mutation}); structural index
    changes (splits, k/req changes, index-edge flips) are observed via
    {!Index_graph.set_tracer} on every physical copy ({!attach}), and
    resolved to dirty ranges and labels at refresh time.  Wholesale
    changes (subgraph grafts, promote/demote, snapshot installs)
    invalidate everything.  Marks accumulate privately in the mutator
    domain and become visible to {!refresh} only at {!commit} — the
    server commits right after it publishes the new serving snapshot,
    so a concurrent refresh never clears a mark for state it has not
    yet seen.  {!refresh} against a copy equals {!compute_full} of that
    copy — qcheck-proven through update churn. *)

open Dkindex_graph
open Dkindex_core

val range_shift : int
(** log2 of the number of data-node ids per range (protocol constant:
    both sides of an anti-entropy exchange must agree on it). *)

val n_ranges : int -> int
(** Number of ranges covering a data graph of [n] nodes (at least 1). *)

type digests = {
  n_nodes : int;  (** data nodes the digests were computed over *)
  data_ranges : int array;  (** per range: labels + adjacency *)
  index_ranges : int array;  (** per range: partition signature *)
  label_edges : int;  (** all index edges, bucketed by source label *)
  root : int;  (** everything above, folded *)
}

type t

val create : unit -> t
(** An empty tracker; the first {!refresh} computes from scratch. *)

val attach : t -> Index_graph.t -> unit
(** Install this tracker's structural tracer on a physical index copy.
    Call for every copy the mutator writes to (both sides of the
    left-right pair, and any wholesale replacement). *)

val note_mutation : t -> Wal.mutation -> unit
(** Record a mutation about to be (or just) applied: edge mutations
    mark their endpoints' ranges, everything else invalidates all
    layers.  Mutator domain only; cheap. *)

val invalidate : t -> unit
(** Mark everything dirty (pending, like {!note_mutation}): used when a
    snapshot is installed wholesale (replica bootstrap). *)

val commit : t -> unit
(** Publish all pending marks to {!refresh}.  Call after the state the
    marks describe is visible to readers (i.e. after the snapshot
    swap). *)

val refresh : t -> Index_graph.t -> digests
(** Digests of [idx], recomputing only dirty ranges/buckets.  Safe to
    call from any domain (internally locked) as long as [idx] is a
    read-stable snapshot (the caller holds a reader slot).  [idx] must
    reflect every committed mark. *)

val compute_full : Index_graph.t -> digests
(** From-scratch digests, no cache: the oracle {!refresh} is tested
    against, and what one-shot tools use. *)

val diff_data_ranges : digests -> digests -> int list
(** Ranges whose {e data-layer} digests differ, increasing.  Meaningful
    only when both sides have the same [n_nodes] (same range count);
    raises [Invalid_argument] otherwise. *)

val section : Index_graph.t -> int -> (int * int) array
(** [(u, v)] data edges whose source lies in the given range — what a
    primary ships for a {!Wire.Repair_fetch}. *)

val section_diff :
  Data_graph.t -> range:int -> theirs:(int * int) array -> Wal.mutation list
(** Mutations that transform this graph's adjacency rows for sources in
    [range] into [theirs]: [Add_edge] for missing edges, [Remove_edge]
    for spurious ones.  Empty when the rows already agree. *)
