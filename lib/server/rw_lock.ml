type t = {
  mu : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int;  (* active readers *)
  mutable writer : bool;  (* a writer holds the lock *)
  mutable writers_waiting : int;
}

let create () =
  {
    mu = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
    writers_waiting = 0;
  }

let read t f =
  Mutex.lock t.mu;
  while t.writer || t.writers_waiting > 0 do
    Condition.wait t.can_read t.mu
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mu;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock t.mu;
      t.readers <- t.readers - 1;
      if t.readers = 0 then Condition.signal t.can_write;
      Mutex.unlock t.mu)

let write t f =
  Mutex.lock t.mu;
  t.writers_waiting <- t.writers_waiting + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.can_write t.mu
  done;
  t.writers_waiting <- t.writers_waiting - 1;
  t.writer <- true;
  Mutex.unlock t.mu;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock t.mu;
      t.writer <- false;
      if t.writers_waiting > 0 then Condition.signal t.can_write
      else Condition.broadcast t.can_read;
      Mutex.unlock t.mu)
