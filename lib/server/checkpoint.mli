(** Checkpoint + WAL durability for a served D(k)-index.

    A data directory holds numbered generations:
    {v
    checkpoint-<seq>.index   Index_serial snapshot (atomic tmp+rename)
    checkpoint-<seq>.crc     "crc32 length" sidecar of the snapshot
    wal-<seq>.log            mutations applied after that snapshot
    v}

    The sidecar exists because the text snapshot format has no
    whole-file check of its own: a flipped digit can still parse.
    Recovery and the scrubber reject a checkpoint whose sidecar
    contradicts it; a checkpoint {e without} a sidecar (crash between
    the two writes, or written before sidecars existed) is accepted
    on parse alone.

    The single mutator domain owns the log: it applies a mutation in
    memory, {!log_mutation}s it, and only then acknowledges.  When the
    log grows past the configured record/byte thresholds (or the timer
    fires), {!maybe_checkpoint} serializes the index, rotates to
    generation [seq+1], and hands the snapshot bytes to a background
    writer domain — the mutator never blocks on checkpoint I/O.  The
    two newest checkpoint generations are kept; older files are
    pruned only after a newer snapshot is durably renamed, so
    {!recover} can always fall back one generation: newest valid
    checkpoint ⊕ replay of every following WAL, with a torn or
    corrupt tail treated as a clean truncation, never a crash.

    {!start} begins by writing a fresh synchronous checkpoint of the
    index it is given, so a recovered state is made durable (and old
    generations prunable) before the server accepts traffic. *)

open Dkindex_core

type config = {
  dir : string;
  sync : Wal.sync_policy;
  checkpoint_records : int;  (** rotate when the WAL holds this many records; <= 0 disables *)
  checkpoint_bytes : int;  (** ... or this many bytes; <= 0 disables *)
  checkpoint_interval_s : float;
      (** ... or this much time since the last rotation (checked when
          mutations arrive — an idle server has nothing to flush);
          <= 0 disables *)
}

val default_config : dir:string -> config
(** sync [Interval 64], 4096 records, 8 MiB, 60 s. *)

(** {1 Recovery} *)

type recovery = {
  index : Index_graph.t option;  (** [None]: no loadable checkpoint in [dir] *)
  checkpoint_seq : int;  (** generation of the loaded checkpoint; -1 if none *)
  replayed_records : int;  (** WAL records applied on top of it *)
  torn_bytes : int;  (** trailing bytes discarded from torn WAL tails *)
  fallback_checkpoints : int;  (** newer checkpoints skipped as corrupt *)
  replay_errors : int;  (** records that failed to re-apply (always 0 unless files were tampered mid-log) *)
}

val recover : ?read_faults:Faults.t -> dir:string -> unit -> recovery
(** Never raises on corrupt or torn files: it loads the newest
    checkpoint that parses, replays the longest valid prefix of each
    following WAL, and reports what it skipped.  A missing or empty
    directory yields [{ index = None; _ }].  [read_faults] filters
    every checkpoint and WAL read through {!Faults.read}: a flipped
    bit lands in the snapshot decoder or the WAL CRC check (falling
    back / truncating), short reads and EINTR storms are absorbed. *)

val apply_mutation : Index_graph.t -> Wal.mutation -> Index_graph.t
(** Apply one logged mutation (the same code path replay uses, shared
    with the server so live application and recovery cannot diverge).
    Returns the index to use afterwards — subgraph addition and
    demotion replace it wholesale.
    @raise Failure on a semantically invalid mutation. *)

(** {1 Live manager} *)

type t

val start :
  ?wal_faults:Faults.t -> ?checkpoint_faults:Faults.t -> ?recovery:recovery ->
  config -> Index_graph.t -> t
(** Write a fresh synchronous checkpoint of [index] at the next
    generation, open its WAL, and spawn the background checkpoint
    writer.  [recovery] is carried into {!stats}.
    @raise Unix.Unix_error if the initial checkpoint cannot be
    written (a server that cannot persist at startup must not
    pretend it can). *)

val log_mutation : t -> Wal.mutation -> unit
(** Append to the WAL and apply the sync policy.
    @raise Unix.Unix_error on disk failure — the caller must then
    {!note_wal_failure} and degrade to read-only. *)

val maybe_checkpoint : t -> Index_graph.t -> unit
(** Rotate + snapshot in the background if a trigger fired.  No-op in
    read-only mode.  Never raises: a rotation failure degrades to
    read-only instead. *)

val checkpoint_now : t -> Index_graph.t -> (unit, string) result
(** Synchronous rotate + snapshot (the [Snapshot] request). *)

val read_only : t -> bool
val note_wal_failure : t -> string -> unit
(** Flip to read-only and record the error for {!stats}. *)

val stats : t -> (string * string) list
(** WAL/checkpoint/recovery counters, domain-safe. *)

(** {1 Replication hooks} *)

val dir : t -> string

val wal_position : t -> int * int
(** Current [(generation, byte offset)] of the live WAL, readable from
    any domain.  The offset only ever covers complete records, so a
    tailer reading up to it never ships a torn record of its own
    making. *)

val wal_file : dir:string -> seq:int -> string
(** Path of generation [seq]'s WAL file. *)

(** {1 Scrubber hooks} *)

val checkpoint_file : dir:string -> seq:int -> string
val crc_file : dir:string -> seq:int -> string
(** Path of generation [seq]'s checkpoint / CRC sidecar. *)

val checkpoint_seqs : string -> int list
val wal_seqs : string -> int list
(** Generations present in a data directory, increasing. *)

val check_sidecar : dir:string -> seq:int -> string -> (bool, string) result
(** Validate snapshot bytes against their CRC sidecar: [Ok true] =
    sidecar present and matching, [Ok false] = no sidecar,
    [Error reason] = sidecar contradicts the payload. *)

val fsync_dir : string -> unit
(** Best-effort directory fsync, making renames/unlinks durable. *)

val newest_checkpoint : dir:string -> (int * string) option
(** Newest checkpoint generation whose snapshot loads, as raw
    [Index_serial] bytes (what a bootstrap ships to a replica).
    [None] if no checkpoint parses. *)

val close : t -> Index_graph.t -> (unit, string) result
(** Final synchronous checkpoint (if the WAL holds records), stop and
    join the background writer, close the WAL.  [Error] carries the
    reason the final snapshot could not be written. *)
