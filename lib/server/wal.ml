type mutation =
  | Add_edge of { u : int; v : int }
  | Remove_edge of { u : int; v : int }
  | Add_subgraph of { graph : string; reqs : (string * int) list }
  | Promote of (string * int) list
  | Demote of (string * int) list

type sync_policy = Always | Interval of int | Never

let sync_policy_of_string s =
  match String.split_on_char ':' s with
  | [ "always" ] -> Ok Always
  | [ "never" ] -> Ok Never
  | [ "interval" ] -> Ok (Interval 64)
  | [ "interval"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Interval n)
    | _ -> Error (Printf.sprintf "bad sync interval %S" n))
  | _ -> Error (Printf.sprintf "bad sync policy %S (always|never|interval[:N])" s)

let sync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval n -> Printf.sprintf "interval:%d" n

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Payload codec.  Same u8/u16/u32 conventions as Wire, but records
   are self-contained — the WAL must stay readable even if the wire
   protocol moves on. *)

(* A single record's payload is bounded: the largest legal mutation is
   an Add_subgraph carrying a Wire-sized document. *)
let max_payload = 64 * 1024 * 1024

let add_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let add_u16 buf n =
  add_u8 buf (n lsr 8);
  add_u8 buf n

let add_u32 buf n =
  add_u16 buf (n lsr 16);
  add_u16 buf n

let add_str16 buf s =
  if String.length s > 0xffff then invalid_arg "Wal: string too long";
  add_u16 buf (String.length s);
  Buffer.add_string buf s

let add_pairs16 buf pairs =
  if List.length pairs > 0xffff then invalid_arg "Wal: too many pairs";
  add_u16 buf (List.length pairs);
  List.iter
    (fun (l, k) ->
      add_str16 buf l;
      add_u32 buf k)
    pairs

let kind_of = function
  | Add_edge _ -> 0x01
  | Remove_edge _ -> 0x02
  | Add_subgraph _ -> 0x03
  | Promote _ -> 0x04
  | Demote _ -> 0x05

let encode_payload buf m =
  add_u8 buf (kind_of m);
  match m with
  | Add_edge { u; v } | Remove_edge { u; v } ->
    add_u32 buf u;
    add_u32 buf v
  | Add_subgraph { graph; reqs } ->
    add_u32 buf (String.length graph);
    Buffer.add_string buf graph;
    add_pairs16 buf reqs
  | Promote pairs | Demote pairs -> add_pairs16 buf pairs

let encode_mutation buf m =
  let payload = Buffer.create 32 in
  encode_payload payload m;
  let p = Buffer.contents payload in
  add_u32 buf (String.length p);
  add_u32 buf (crc32 p 0 (String.length p));
  Buffer.add_string buf p

exception Bad

type cursor = { s : string; limit : int; mutable pos : int }

let need c n = if c.pos + n > c.limit then raise Bad

let u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c =
  let hi = u8 c in
  let lo = u8 c in
  (hi lsl 8) lor lo

let u32 c =
  let a = u16 c in
  let b = u16 c in
  (a lsl 16) lor b

let str16 c =
  let n = u16 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let pairs16 c =
  let n = u16 c in
  if n * 6 > c.limit - c.pos then raise Bad;
  List.init n (fun _ ->
      let l = str16 c in
      let k = u32 c in
      (l, k))

(* [decode_payload c] reads one payload from [c.pos .. c.limit); the
   caller has already verified the CRC over exactly that span. *)
let decode_payload c =
  let m =
    match u8 c with
    | 0x01 ->
      let u = u32 c in
      let v = u32 c in
      Add_edge { u; v }
    | 0x02 ->
      let u = u32 c in
      let v = u32 c in
      Remove_edge { u; v }
    | 0x03 ->
      let n = u32 c in
      need c n;
      let graph = String.sub c.s c.pos n in
      c.pos <- c.pos + n;
      Add_subgraph { graph; reqs = pairs16 c }
    | 0x04 -> Promote (pairs16 c)
    | 0x05 -> Demote (pairs16 c)
    | _ -> raise Bad
  in
  if c.pos <> c.limit then raise Bad;
  m

(* ------------------------------------------------------------------ *)
(* Writer *)

type t = {
  fd : Unix.file_descr;
  faults : Faults.t option;
  sync_policy : sync_policy;
  buf : Buffer.t;
  mutable n_records : int;
  mutable n_bytes : int;
  mutable unsynced : int;
}

let create ?faults ~sync path =
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_APPEND ] 0o644 in
  let n_bytes = (Unix.fstat fd).st_size in
  { fd; faults; sync_policy = sync; buf = Buffer.create 256; n_records = 0; n_bytes; unsynced = 0 }

let write_all t b off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    match Faults.write t.faults t.fd b !off !len with
    | n ->
      off := !off + n;
      len := !len - n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let sync t =
  if t.unsynced > 0 then begin
    Faults.fsync t.faults t.fd;
    t.unsynced <- 0
  end

let append t m =
  Buffer.clear t.buf;
  encode_mutation t.buf m;
  let b = Buffer.to_bytes t.buf in
  write_all t b 0 (Bytes.length b);
  t.n_records <- t.n_records + 1;
  t.n_bytes <- t.n_bytes + Bytes.length b;
  t.unsynced <- t.unsynced + 1;
  match t.sync_policy with
  | Always -> sync t
  | Interval n -> if t.unsynced >= n then sync t
  | Never -> ()

let records t = t.n_records
let bytes t = t.n_bytes

let close t =
  (try sync t with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Replay *)

type replay = { mutations : mutation list; valid_bytes : int; torn_bytes : int }

let replay_string s =
  let len = String.length s in
  let acc = ref [] in
  let pos = ref 0 in
  let stop = ref false in
  while not !stop do
    if !pos + 8 > len then stop := true
    else begin
      let c = { s; limit = len; pos = !pos } in
      let plen = u32 c in
      let crc = u32 c in
      if plen <= 0 || plen > max_payload || !pos + 8 + plen > len then stop := true
      else if crc32 s (!pos + 8) plen <> crc then stop := true
      else begin
        let c = { s; limit = !pos + 8 + plen; pos = !pos + 8 } in
        match decode_payload c with
        | m ->
          acc := m :: !acc;
          pos := !pos + 8 + plen
        | exception Bad -> stop := true
      end
    end
  done;
  { mutations = List.rev !acc; valid_bytes = !pos; torn_bytes = len - !pos }

let replay ?faults path =
  match Faults.read_all faults path with
  | s -> replay_string s
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
    { mutations = []; valid_bytes = 0; torn_bytes = 0 }
