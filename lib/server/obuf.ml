type t = { mutable buf : Bytes.t; mutable len : int }

let create hint = { buf = Bytes.create (max 16 hint); len = 0 }
let length t = t.len
let clear t = t.len <- 0
let base t = t.buf
let contents t = Bytes.sub_string t.buf 0 t.len

let reserve t n =
  let need = t.len + n in
  let cap = Bytes.length t.buf in
  if need > cap then begin
    let cap' = ref (2 * cap) in
    while !cap' < need do
      cap' := 2 * !cap'
    done;
    let b = Bytes.create !cap' in
    Bytes.blit t.buf 0 b 0 t.len;
    t.buf <- b
  end

let add_u8 t n =
  reserve t 1;
  Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (n land 0xff));
  t.len <- t.len + 1

let add_u16 t n =
  reserve t 2;
  Bytes.unsafe_set t.buf t.len (Char.unsafe_chr ((n lsr 8) land 0xff));
  Bytes.unsafe_set t.buf (t.len + 1) (Char.unsafe_chr (n land 0xff));
  t.len <- t.len + 2

let add_u32 t n =
  reserve t 4;
  Bytes.unsafe_set t.buf t.len (Char.unsafe_chr ((n lsr 24) land 0xff));
  Bytes.unsafe_set t.buf (t.len + 1) (Char.unsafe_chr ((n lsr 16) land 0xff));
  Bytes.unsafe_set t.buf (t.len + 2) (Char.unsafe_chr ((n lsr 8) land 0xff));
  Bytes.unsafe_set t.buf (t.len + 3) (Char.unsafe_chr (n land 0xff));
  t.len <- t.len + 4

let add_substring t s off len =
  reserve t len;
  Bytes.blit_string s off t.buf t.len len;
  t.len <- t.len + len

let add_string t s = add_substring t s 0 (String.length s)

let add_buffer t b =
  let n = Buffer.length b in
  reserve t n;
  Buffer.blit b 0 t.buf t.len n;
  t.len <- t.len + n

let patch_u32 t off v =
  if off < 0 || off + 4 > t.len then invalid_arg "Obuf.patch_u32";
  Bytes.unsafe_set t.buf off (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set t.buf (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set t.buf (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set t.buf (off + 3) (Char.unsafe_chr (v land 0xff))
