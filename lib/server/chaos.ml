module Prng = Dkindex_datagen.Prng

type action = Partition of float | Stall_all of float | Reset_all
type event = { at_s : float; action : action }

type spec = {
  delay_ms : float;
  jitter_ms : float;
  bandwidth_bps : int;
  truncate : (int * int) list;
  reset : (int * int) list;
  stall : (int * int) list;
  events : event list;
}

let no_faults =
  {
    delay_ms = 0.0;
    jitter_ms = 0.0;
    bandwidth_bps = 0;
    truncate = [];
    reset = [];
    stall = [];
    events = [];
  }

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let spec_of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let fl what v =
    match float_of_string_opt (String.trim v) with
    | Some f when f >= 0.0 -> Ok f
    | _ -> err "nemesis: bad %s %S (want a non-negative number)" what v
  in
  let nat what v =
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 0 -> Ok n
    | _ -> err "nemesis: bad %s %S (want a non-negative integer)" what v
  in
  let split2 sep v =
    match String.index_opt v sep with
    | None -> None
    | Some i ->
      Some (String.sub v 0 i, String.sub v (i + 1) (String.length v - i - 1))
  in
  let conn_at what v k =
    match split2 '@' v with
    | None -> err "nemesis: %s wants CONN@BYTES, got %S" what v
    | Some (c, b) -> (
      match (nat "connection number" c, nat "byte offset" b) with
      | Ok c, Ok b when c >= 1 -> k (c, b)
      | Ok _, Ok _ -> err "nemesis: connection numbers are 1-based, got %S" v
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  in
  let at_dur what v k =
    match split2 '+' v with
    | None -> err "nemesis: %s wants AT+DUR, got %S" what v
    | Some (a, d) -> (
      match (fl "time" a, fl "duration" d) with
      | Ok a, Ok d -> k a d
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  in
  let clauses =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go acc = function
    | [] ->
      Ok
        {
          acc with
          truncate = List.rev acc.truncate;
          reset = List.rev acc.reset;
          stall = List.rev acc.stall;
          events = List.rev acc.events;
        }
    | c :: rest -> (
      match split2 ':' c with
      | None -> err "nemesis: bad clause %S (want key:args)" c
      | Some (key, v) -> (
        let continue acc = go acc rest in
        match key with
        | "delay" -> (
          match split2 '~' v with
          | None -> (
            match fl "delay" v with
            | Ok d -> continue { acc with delay_ms = d }
            | Error _ as e -> e)
          | Some (d, j) -> (
            match (fl "delay" d, fl "jitter" j) with
            | Ok d, Ok j -> continue { acc with delay_ms = d; jitter_ms = j }
            | (Error _ as e), _ | _, (Error _ as e) -> e))
        | "bw" -> (
          match nat "bandwidth" v with
          | Ok 0 -> err "nemesis: bw wants a positive byte rate"
          | Ok b -> continue { acc with bandwidth_bps = b }
          | Error _ as e -> e)
        | "truncate" ->
          conn_at "truncate" v (fun p ->
              continue { acc with truncate = p :: acc.truncate })
        | "reset" ->
          conn_at "reset" v (fun p -> continue { acc with reset = p :: acc.reset })
        | "stall" ->
          conn_at "stall" v (fun p -> continue { acc with stall = p :: acc.stall })
        | "partition" ->
          at_dur "partition" v (fun at d ->
              continue
                { acc with events = { at_s = at; action = Partition d } :: acc.events })
        | "stall-all" ->
          at_dur "stall-all" v (fun at d ->
              continue
                { acc with events = { at_s = at; action = Stall_all d } :: acc.events })
        | "reset-all" -> (
          match fl "time" v with
          | Ok at ->
            continue { acc with events = { at_s = at; action = Reset_all } :: acc.events }
          | Error _ as e -> e)
        | _ -> err "nemesis: unknown clause key %S" key))
  in
  go no_faults clauses

let spec_to_string sp =
  let b = Buffer.create 64 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        if Buffer.length b > 0 then Buffer.add_char b ',';
        Buffer.add_string b s)
      fmt
  in
  let num f =
    (* shortest float that round-trips through float_of_string *)
    if Float.is_integer f && Float.abs f < 1e15 then
      string_of_int (int_of_float f)
    else Printf.sprintf "%g" f
  in
  if sp.delay_ms > 0.0 || sp.jitter_ms > 0.0 then
    if sp.jitter_ms > 0.0 then add "delay:%s~%s" (num sp.delay_ms) (num sp.jitter_ms)
    else add "delay:%s" (num sp.delay_ms);
  if sp.bandwidth_bps > 0 then add "bw:%d" sp.bandwidth_bps;
  List.iter (fun (c, n) -> add "truncate:%d@%d" c n) sp.truncate;
  List.iter (fun (c, n) -> add "reset:%d@%d" c n) sp.reset;
  List.iter (fun (c, n) -> add "stall:%d@%d" c n) sp.stall;
  List.iter
    (fun e ->
      match e.action with
      | Partition d -> add "partition:%s+%s" (num e.at_s) (num d)
      | Stall_all d -> add "stall-all:%s+%s" (num e.at_s) (num d)
      | Reset_all -> add "reset-all:%s" (num e.at_s))
    sp.events;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The proxy *)

type stats = {
  accepted : int;
  forwarded_bytes : int;
  truncations : int;
  resets : int;
  stalls : int;
  partitions : int;
}

(* One forwarding direction of a proxied connection: bytes read from
   one side queue here (stamped with a delivery time) until they are
   written to [dst]. *)
type fdir = {
  dst : Unix.file_descr;
  q : (float * Bytes.t * int ref) Queue.t;
  mutable queued : int;  (* bytes waiting in [q] *)
  mutable next_free : float;  (* bandwidth shaping: earliest next release *)
  mutable src_open : bool;  (* the side we read from has not EOF'd *)
  mutable wr_blocked : bool;  (* last write hit EAGAIN / was short *)
  mutable shut : bool;  (* already propagated FIN to [dst] *)
}

type pconn = {
  id : int;  (* 1-based accept order (what specs name) *)
  cfd : Unix.file_descr;  (* client side *)
  ufd : Unix.file_descr;  (* upstream side *)
  c2u : fdir;
  u2c : fdir;
  mutable fwd : int;  (* cumulative bytes read, both directions: the
                         ruler the truncate/reset/stall offsets are
                         measured on *)
  trunc_at : int option;
  reset_at : int option;
  stall_at : int option;
  mutable stalled : bool;
  mutable closing : bool;  (* truncation: drain queues, then close *)
  mutable closed : bool;
}

type t = {
  spec : spec;
  seed : int;
  lfd : Unix.file_descr;
  lport : int;
  upstream : string * int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stopped : bool Atomic.t;
  a_accepted : int Atomic.t;
  a_forwarded : int Atomic.t;
  a_trunc : int Atomic.t;
  a_resets : int Atomic.t;
  a_stalls : int Atomic.t;
  a_partitions : int Atomic.t;
}

let queue_cap = 4 * 1024 * 1024

let create ?(host = "127.0.0.1") ?(port = 0) ~seed ~upstream spec =
  let lfd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd SO_REUSEADDR true;
     Unix.bind lfd (ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen lfd 64;
     Unix.set_nonblock lfd
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  let lport =
    match Unix.getsockname lfd with ADDR_INET (_, p) -> p | _ -> assert false
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_r;
  {
    spec;
    seed;
    lfd;
    lport;
    upstream;
    stop_r;
    stop_w;
    stopped = Atomic.make false;
    a_accepted = Atomic.make 0;
    a_forwarded = Atomic.make 0;
    a_trunc = Atomic.make 0;
    a_resets = Atomic.make 0;
    a_stalls = Atomic.make 0;
    a_partitions = Atomic.make 0;
  }

let port t = t.lport

let stats t =
  {
    accepted = Atomic.get t.a_accepted;
    forwarded_bytes = Atomic.get t.a_forwarded;
    truncations = Atomic.get t.a_trunc;
    resets = Atomic.get t.a_resets;
    stalls = Atomic.get t.a_stalls;
    partitions = Atomic.get t.a_partitions;
  }

let stop t =
  if not (Atomic.exchange t.stopped true) then
    try ignore (Unix.write t.stop_w (Bytes.make 1 '\000') 0 1)
    with Unix.Unix_error _ -> ()

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run t =
  let loop =
    match Evloop.create () with Ok l -> l | Error m -> failwith ("chaos: " ^ m)
  in
  let conns : (Unix.file_descr, pconn) Hashtbl.t = Hashtbl.create 16 in
  let live : pconn list ref = ref [] in
  let prng = Prng.create ~seed:t.seed in
  let started = Unix.gettimeofday () in
  let paused_until = ref 0.0 (* partition: nothing moves *) in
  let stalled_until = ref 0.0 (* global half-open: reads stop, queues drain *) in
  let pending =
    ref (List.stable_sort (fun a b -> compare a.at_s b.at_s) t.spec.events)
  in
  let remove_conn pc =
    if not pc.closed then begin
      pc.closed <- true;
      Evloop.remove loop pc.cfd;
      Evloop.remove loop pc.ufd;
      Hashtbl.remove conns pc.cfd;
      Hashtbl.remove conns pc.ufd;
      live := List.filter (fun c -> c.id <> pc.id) !live
    end
  in
  let close_conn pc =
    if not pc.closed then begin
      remove_conn pc;
      close_fd pc.cfd;
      close_fd pc.ufd
    end
  in
  let abort_conn pc =
    if not pc.closed then begin
      (* SO_LINGER 0 turns close into an RST, the real "reset" *)
      (try Unix.setsockopt_optint pc.cfd SO_LINGER (Some 0)
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      (try Unix.setsockopt_optint pc.ufd SO_LINGER (Some 0)
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      close_conn pc
    end
  in
  let delay_s () =
    let j =
      if t.spec.jitter_ms > 0.0 then
        Prng.float prng (2.0 *. t.spec.jitter_ms) -. t.spec.jitter_ms
      else 0.0
    in
    Float.max 0.0 (t.spec.delay_ms +. j) /. 1000.0
  in
  let enqueue now dir buf len =
    let at = now +. delay_s () in
    let at =
      if t.spec.bandwidth_bps > 0 then begin
        let release = Float.max at dir.next_free in
        dir.next_free <- release +. (float_of_int len /. float_of_int t.spec.bandwidth_bps);
        release
      end
      else at
    in
    Queue.push (at, Bytes.sub buf 0 len, ref 0) dir.q;
    dir.queued <- dir.queued + len
  in
  let rec flush now pc dir =
    if not pc.closed then
      match Queue.peek_opt dir.q with
      | Some (at, b, off) when at <= now -> (
        match Unix.write dir.dst b !off (Bytes.length b - !off) with
        | n ->
          ignore (Atomic.fetch_and_add t.a_forwarded n);
          off := !off + n;
          dir.queued <- dir.queued - n;
          if !off = Bytes.length b then begin
            ignore (Queue.pop dir.q);
            dir.wr_blocked <- false;
            flush now pc dir
          end
          else dir.wr_blocked <- true
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          dir.wr_blocked <- true
        | exception Unix.Unix_error (EINTR, _, _) -> flush now pc dir
        | exception Unix.Unix_error _ -> close_conn pc)
      | Some _ | None -> dir.wr_blocked <- false
  in
  let finalize pc =
    if not pc.closed then begin
      List.iter
        (fun dir ->
          if
            ((not dir.src_open) || pc.closing)
            && Queue.is_empty dir.q && (not dir.shut) && not pc.stalled
          then begin
            (try Unix.shutdown dir.dst SHUTDOWN_SEND with Unix.Unix_error _ -> ());
            dir.shut <- true
          end)
        [ pc.c2u; pc.u2c ];
      let drained = Queue.is_empty pc.c2u.q && Queue.is_empty pc.u2c.q in
      if drained && pc.closing then close_conn pc
      else if drained && (not pc.c2u.src_open) && not pc.u2c.src_open then
        close_conn pc
    end
  in
  let connect_upstream () =
    let host, port = t.upstream in
    let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port)) with
    | () -> Some fd
    | exception Unix.Unix_error _ ->
      close_fd fd;
      None
  in
  let mkdir dst =
    {
      dst;
      q = Queue.create ();
      queued = 0;
      next_free = 0.0;
      src_open = true;
      wr_blocked = false;
      shut = false;
    }
  in
  let rec accept_loop () =
    match Unix.accept ~cloexec:true t.lfd with
    | cfd, _ ->
      let id = Atomic.fetch_and_add t.a_accepted 1 + 1 in
      (match connect_upstream () with
      | None -> close_fd cfd
      | Some ufd ->
        Unix.set_nonblock cfd;
        Unix.set_nonblock ufd;
        (try Unix.setsockopt cfd TCP_NODELAY true with Unix.Unix_error _ -> ());
        (try Unix.setsockopt ufd TCP_NODELAY true with Unix.Unix_error _ -> ());
        let pc =
          {
            id;
            cfd;
            ufd;
            c2u = mkdir ufd;
            u2c = mkdir cfd;
            fwd = 0;
            trunc_at = List.assoc_opt id t.spec.truncate;
            reset_at = List.assoc_opt id t.spec.reset;
            stall_at = List.assoc_opt id t.spec.stall;
            stalled = false;
            closing = false;
            closed = false;
          }
        in
        live := pc :: !live;
        Hashtbl.replace conns cfd pc;
        Hashtbl.replace conns ufd pc);
      accept_loop ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
    | exception Unix.Unix_error _ -> ()
  in
  let rbuf = Bytes.create 65536 in
  let on_readable pc src dir =
    match Unix.read src rbuf 0 (Bytes.length rbuf) with
    | 0 ->
      dir.src_open <- false;
      finalize pc
    | n ->
      let now = Unix.gettimeofday () in
      (* Where does this chunk land on the connection's byte ruler?
         The first trigger inside [fwd, fwd+n) wins. *)
      let hit = function
        | Some at when pc.fwd + n >= at -> Some (max 0 (at - pc.fwd))
        | _ -> None
      in
      let reset = hit pc.reset_at in
      let trunc = if pc.closing then None else hit pc.trunc_at in
      let stall = if pc.stalled then None else hit pc.stall_at in
      pc.fwd <- pc.fwd + n;
      (match (reset, trunc, stall) with
      | Some _, _, _ ->
        ignore (Atomic.fetch_and_add t.a_resets 1);
        abort_conn pc
      | None, Some keep, _ ->
        if keep > 0 then enqueue now dir rbuf keep;
        ignore (Atomic.fetch_and_add t.a_trunc 1);
        pc.closing <- true;
        if now >= !paused_until then flush now pc dir;
        finalize pc
      | None, None, Some keep ->
        if keep > 0 then enqueue now dir rbuf keep;
        ignore (Atomic.fetch_and_add t.a_stalls 1);
        pc.stalled <- true;
        if now >= !paused_until then flush now pc dir
      | None, None, None ->
        enqueue now dir rbuf n;
        if now >= !paused_until then flush now pc dir;
        finalize pc)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn pc
  in
  let process_events now =
    let rec go () =
      match !pending with
      | e :: rest when started +. e.at_s <= now ->
        pending := rest;
        (match e.action with
        | Partition s ->
          paused_until := Float.max !paused_until (now +. s);
          ignore (Atomic.fetch_and_add t.a_partitions 1)
        | Stall_all s -> stalled_until := Float.max !stalled_until (now +. s)
        | Reset_all ->
          List.iter
            (fun pc ->
              ignore (Atomic.fetch_and_add t.a_resets 1);
              abort_conn pc)
            !live);
        go ()
      | _ -> ()
    in
    go ()
  in
  let set_interest fd mask =
    if mask = 0 then Evloop.remove loop fd else Evloop.add loop fd mask
  in
  let compute_interest now =
    let paused = now < !paused_until in
    let gstalled = now < !stalled_until in
    set_interest t.lfd (if paused then 0 else Evloop.rd);
    List.iter
      (fun pc ->
        let rd_ok dir =
          dir.src_open && (not pc.stalled) && (not pc.closing) && (not paused)
          && (not gstalled) && dir.queued < queue_cap
        in
        let wr_ok dir = dir.wr_blocked && not paused in
        set_interest pc.cfd
          ((if rd_ok pc.c2u then Evloop.rd else 0)
          lor if wr_ok pc.u2c then Evloop.wr else 0);
        set_interest pc.ufd
          ((if rd_ok pc.u2c then Evloop.rd else 0)
          lor if wr_ok pc.c2u then Evloop.wr else 0))
      !live
  in
  let next_deadline now =
    let best = ref infinity in
    let upd x = if x < !best then best := x in
    (match !pending with e :: _ -> upd (started +. e.at_s) | [] -> ());
    if !paused_until > now then upd !paused_until;
    if !stalled_until > now then upd !stalled_until;
    if now >= !paused_until then
      List.iter
        (fun pc ->
          List.iter
            (fun dir ->
              if not dir.wr_blocked then
                match Queue.peek_opt dir.q with
                | Some (at, _, _) -> upd at
                | None -> ())
            [ pc.c2u; pc.u2c ])
        !live;
    if !best = infinity then -1
    else max 0 (int_of_float (Float.max 0.0 (!best -. now) *. 1000.0) + 1)
  in
  Evloop.add loop t.stop_r Evloop.rd;
  let drain_stop () =
    let b = Bytes.create 16 in
    let rec go () =
      match Unix.read t.stop_r b 0 16 with
      | 0 -> ()
      | _ -> go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
    in
    go ()
  in
  while not (Atomic.get t.stopped) do
    let now = Unix.gettimeofday () in
    process_events now;
    if now >= !paused_until then
      List.iter
        (fun pc ->
          flush now pc pc.c2u;
          flush now pc pc.u2c;
          finalize pc)
        !live;
    let now = Unix.gettimeofday () in
    compute_interest now;
    let tmo = next_deadline now in
    ignore
      (Evloop.wait loop ~timeout_ms:tmo (fun fd ev ->
           if fd = t.stop_r then drain_stop ()
           else if fd = t.lfd then accept_loop ()
           else
             match Hashtbl.find_opt conns fd with
             | None -> ()
             | Some pc ->
               if ev land Evloop.err <> 0 then close_conn pc
               else begin
                 if ev land Evloop.wr <> 0 then begin
                   let dir = if fd = pc.ufd then pc.c2u else pc.u2c in
                   let now = Unix.gettimeofday () in
                   if now >= !paused_until then begin
                     flush now pc dir;
                     finalize pc
                   end
                 end;
                 if (not pc.closed) && ev land Evloop.rd <> 0 then begin
                   let src, dir =
                     if fd = pc.cfd then (pc.cfd, pc.c2u) else (pc.ufd, pc.u2c)
                   in
                   on_readable pc src dir
                 end
               end))
  done;
  List.iter close_conn !live;
  Evloop.remove loop t.lfd;
  Evloop.remove loop t.stop_r;
  close_fd t.lfd
