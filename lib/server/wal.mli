(** Write-ahead log of applied index mutations.

    An append-only file of self-checking records:
    {v
    record  := u32_be payload_length, u32_be crc32(payload), payload
    payload := u8 kind, body
    v}

    The writing side is single-domain (dkserve's mutator); every
    mutation is appended {e after} it is applied in memory and
    {e before} it is acknowledged, so on restart the log replays to a
    state at least as new as everything the server ever acknowledged.

    The reading side ({!replay}) is total: a torn or corrupt tail —
    a record whose length field runs past end-of-file, whose CRC does
    not match, or whose payload does not decode — is a clean
    truncation point, never an error.  Replay yields exactly the
    longest valid record prefix of the file. *)

type mutation =
  | Add_edge of { u : int; v : int }
  | Remove_edge of { u : int; v : int }
  | Add_subgraph of { graph : string; reqs : (string * int) list }
      (** [graph] is a {!Dkindex_graph.Serial} document, stored
          verbatim so replay re-parses exactly what was applied. *)
  | Promote of (string * int) list
  | Demote of (string * int) list

type sync_policy =
  | Always  (** fsync after every record, before acknowledging *)
  | Interval of int  (** fsync every [n] records (and on close) *)
  | Never  (** leave flushing to the OS *)

val sync_policy_of_string : string -> (sync_policy, string) result
(** ["always"], ["never"], ["interval"], ["interval:N"]. *)

val sync_policy_to_string : sync_policy -> string

val crc32 : string -> int -> int -> int
(** IEEE CRC-32 of a substring (exposed for tests). *)

val encode_mutation : Buffer.t -> mutation -> unit
(** Append one full record (length + CRC + payload) to [buf]. *)

(** {1 Writer} *)

type t

val create : ?faults:Faults.t -> sync:sync_policy -> string -> t
(** Open [path] for appending (created if absent).  The caller must
    have truncated any torn tail first — {!Checkpoint} always starts
    a fresh log, so this never appends after garbage in practice.
    @raise Unix.Unix_error if the file cannot be opened. *)

val append : t -> mutation -> unit
(** Write one record and apply the sync policy.
    @raise Unix.Unix_error when the disk fails; after an error the
    log must be considered unwritable (read-only degradation). *)

val sync : t -> unit
val records : t -> int
val bytes : t -> int
val close : t -> unit
(** Final fsync (best effort) and close. *)

(** {1 Replay} *)

type replay = {
  mutations : mutation list;  (** the longest valid record prefix, in order *)
  valid_bytes : int;  (** byte length of that prefix *)
  torn_bytes : int;  (** bytes discarded after it (0 = clean file) *)
}

val replay : ?faults:Faults.t -> string -> replay
(** Read [path].  A missing file is an empty replay.  [faults] filters
    every read through {!Faults.read} — a bit flip lands in the CRC
    check (truncating the replay there), short reads and EINTR storms
    are absorbed by the read loop.
    @raise Unix.Unix_error only on non-ENOENT open errors. *)

val replay_string : string -> replay
(** {!replay} over in-memory bytes (for the fuzz tests). *)
