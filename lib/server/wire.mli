(** dkserve wire protocol: length-prefixed binary frames.

    {v
    frame   := u32_be payload_length, payload
    payload := u8 version (= 1), u8 kind, u32_be request id, body
    v}

    The payload length is bounded ({!max_frame_default}, configurable
    server-side); a frame whose declared length exceeds the bound is a
    protocol error and the connection is closed (the stream cannot be
    resynchronized against a hostile peer).  A well-framed payload that
    fails to parse is answered with {!Error_reply} [`Protocol] and the
    connection stays usable.

    All decoders are total on arbitrary bytes: malformed input yields
    [Error _], never an exception, a crash, or unbounded work.  Every
    value round-trips: [decode (encode x) = x]. *)

open Dkindex_pathexpr

val version : int
val max_frame_default : int
(** 16 MiB. *)

(** {1 Messages} *)

type query_flags = { no_cache : bool }
(** [no_cache] asks the server to bypass its cross-query validation
    cache, making the returned [cost] bit-for-bit reproducible. *)

type role = Primary | Replica

type request =
  | Ping
  | Query of { flags : query_flags; expr : Path_ast.t }
  | Query_path of { flags : query_flags; labels : string list }
  | Batch_query of { flags : query_flags; paths : string list list }
  | Add_edge of { u : int; v : int }
  | Remove_edge of { u : int; v : int }
  | Add_subgraph of { graph : string; reqs : (string * int) list }
      (** [graph] is a {!Dkindex_graph.Serial} document. *)
  | Promote of (string * int) list
      (** Empty list: promote every node back to its recorded
          requirement (the periodic maintenance pass). *)
  | Demote of (string * int) list
  | Stats
  | Snapshot
  | Shutdown
  | Hello of { version : int; epoch : int }
      (** Version negotiation, sent first on every connection.  The
          header version byte carries [version] itself, so a server
          can decode a Hello from {e any} protocol version and refuse
          a mismatch with [Error_reply `Version] instead of a decode
          failure mid-stream.  [epoch] is the highest primary epoch
          the client has observed (0 when unknown); a primary that
          sees a higher epoch than its own knows it was deposed. *)
  | Rep_subscribe of { replica_id : int; epoch : int; seq : int; offset : int }
      (** Subscribe to the WAL stream from generation [seq] at byte
          [offset].  [seq = -1] requests a snapshot bootstrap.  The
          connection is detached from the request/response loop and
          becomes a one-way replication stream. *)
  | Promote_primary
      (** Operator-triggered failover: the replica bumps its epoch,
          persists it, stops following, and starts serving writes. *)
  | Query_planned of { flags : query_flags; expr : Path_ast.t }
      (** Like {!Query}, but the server routes through its cost-based
          planner (index scan vs raw-graph fallback, priced from the
          live statistics catalog) and reports the chosen plan in the
          {!Planned_result} reply. *)
  | Explain of { expr : Path_ast.t }
      (** Ask for the ranked plan list the planner would consider for
          this query, without executing anything. *)
  | Has_edge of { u : int; v : int }
      (** Point probe: is the data edge [u -> v] present in the serving
          snapshot?  Idempotent; used by the history harness to resolve
          ambiguous (sent-but-unacknowledged) writes after a failure. *)
  | Digest_request
      (** Ask for the server's current {!Dkindex_server.Integrity}
          digests (root + per-range).  Served even by a stale replica —
          anti-entropy needs to see divergence precisely when a replica
          is unhealthy. *)
  | Repair_fetch of { ranges : int list }
      (** Ask the primary to ship the full data-edge contents of the
          named digest ranges (see {!Integrity.section}); the replica
          overwrites its divergent rows from the reply. *)

type query_result = {
  nodes : int array;  (** matching data nodes, sorted *)
  index_visits : int;
  data_visits : int;
  n_candidates : int;
  n_certain : int;
  generation : int;
      (** the serving-snapshot swap generation this read observed —
          monotone per server process (not comparable across servers:
          the on-disk index format carries no generation) *)
  age_ms : int;
      (** staleness of the data answered from: 0 on a primary, and on a
          replica the milliseconds since it last heard from its primary
          (the quantity the [--staleness-bound] refusal is keyed on) *)
}

type error_code = [ `Protocol | `App | `Deadline | `Shutting_down | `Version | `Stale ]
(** [`Version]: protocol version mismatch reported against a Hello.
    [`Stale]: a replica outside its staleness bound refusing reads. *)

type response =
  | Pong
  | Result of query_result
  | Batch_result of query_result array
  | Ok_reply of { generation : int; epoch : int }
      (** [epoch] is the acking server's primary epoch; a client that
          has observed a higher epoch must treat the ack as coming
          from a deposed primary and reject it. *)
  | Stats_reply of (string * string) list
  | Error_reply of { code : error_code; message : string }
  | Overloaded
  | Read_only
      (** the durability layer can no longer log mutations (WAL
          unwritable); writes are refused, reads keep working *)
  | Hello_reply of { version : int; epoch : int; role : role }
      (** Decodable at any header version (see {!Hello}). *)
  | Rep_records of { epoch : int; seq : int; offset : int; data : string }
      (** A chunk of raw WAL bytes from generation [seq]; [offset] is
          the in-generation byte offset {e after} [data].  Records may
          span chunks; the replica reassembles with {!Wal.replay_string}
          semantics. *)
  | Rep_snapshot of { epoch : int; seq : int; index : string }
      (** Snapshot bootstrap: a full {!Dkindex_index.Index_serial}
          document; the stream continues from generation [seq],
          offset 0. *)
  | Rep_heartbeat of { epoch : int; seq : int; offset : int }
      (** Primary liveness + current WAL position (lag measurement,
          failover-timeout reset). *)
  | Not_primary of { host : string; port : int }
      (** Write refused by a replica; [host:port] is its current
          upstream primary (a routing hint, not a guarantee). *)
  | Fenced of { epoch : int }
      (** Write refused by a deposed primary: a peer presented epoch
          [epoch] > ours, so a newer primary exists. *)
  | Planned_result of { plan : string; result : query_result }
      (** Answer to {!Query_planned}; [plan] is the one-line
          description of the plan that produced the result. *)
  | Explain_reply of string list
      (** Answer to {!Explain}: header line plus one line per ranked
          plan, chosen plan marked. *)
  | Edge_reply of { present : bool; generation : int; age_ms : int }
      (** Answer to {!Has_edge}, stamped like {!query_result}:
          [generation] is the serving-snapshot swap generation and
          [age_ms] the replica age (0 on a primary) — what the
          acknowledged-history checker's monotonicity and staleness
          checks run on. *)
  | Digest_reply of {
      generation : int;  (** serving-snapshot swap generation *)
      seq : int;
          (** WAL position (generation) the digest reflects, [-1] when
              the server cannot stamp one; two digests are comparable
              only at equal positions *)
      offset : int;  (** WAL byte offset within [seq] *)
      n_nodes : int;
      root : int;
      label_edges : int;
      data_ranges : int array;
      index_ranges : int array;  (** same length as [data_ranges] *)
    }
      (** Answer to {!Digest_request}: the full {!Integrity.digests}
          content plus the write-stream position it was computed at. *)
  | Repair_reply of { generation : int; sections : (int * (int * int) array) list }
      (** Answer to {!Repair_fetch}: per requested range, every
          [(u, v)] data edge whose source lies in that range. *)

(** {1 Codecs} *)

val encode_request : Obuf.t -> id:int -> request -> unit
(** Append a full frame (length prefix included).  The length slot is
    patched in place, so frames already in the buffer are untouched
    and several frames can be batched and flushed with one write. *)

val encode_response : Obuf.t -> id:int -> response -> unit

val encode_response_gather : Obuf.t -> id:int -> response -> string option
(** Like {!encode_response}, but a response carrying a large blob
    (replication WAL chunks, snapshot bootstraps) has everything {e
    except} the blob encoded into the buffer — length prefix already
    accounting for it — and the blob returned as [Some tail] to be
    written right after the buffer (a gathered/writev-style send),
    instead of being copied through the frame buffer. *)

type 'a decoded = { id : int; msg : 'a }

val decode_request : string -> (request decoded, string) result
(** Decode one frame {e payload} (the length prefix already consumed). *)

val decode_request_at : string -> pos:int -> len:int -> (request decoded, string) result
(** Decode a payload in place from the slice [pos, pos + len) of a
    larger buffer (a connection's read buffer), copying nothing but
    the retained strings.  [decode_request p] is
    [decode_request_at p ~pos:0 ~len:(String.length p)]. *)

val decode_response : string -> (response decoded, string) result
val decode_response_at : string -> pos:int -> len:int -> (response decoded, string) result

(** {1 Framing} *)

val read_frame :
  ?max_frame:int -> read:(bytes -> int -> int -> int) -> unit ->
  [ `Frame of string | `Eof | `Oversized of int ]
(** Blocking frame reader over a [read] function with [Unix.read]
    semantics.  [`Oversized n] reports a declared length beyond
    [max_frame] without consuming the body.
    @raise Failure on a stream that ends mid-frame. *)

val frame_of_payload : string -> string
(** Prepend the length prefix (for tests and hand-rolled clients). *)
