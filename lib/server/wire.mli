(** dkserve wire protocol: length-prefixed binary frames.

    {v
    frame   := u32_be payload_length, payload
    payload := u8 version (= 1), u8 kind, u32_be request id, body
    v}

    The payload length is bounded ({!max_frame_default}, configurable
    server-side); a frame whose declared length exceeds the bound is a
    protocol error and the connection is closed (the stream cannot be
    resynchronized against a hostile peer).  A well-framed payload that
    fails to parse is answered with {!Error_reply} [`Protocol] and the
    connection stays usable.

    All decoders are total on arbitrary bytes: malformed input yields
    [Error _], never an exception, a crash, or unbounded work.  Every
    value round-trips: [decode (encode x) = x]. *)

open Dkindex_pathexpr

val version : int
val max_frame_default : int
(** 16 MiB. *)

(** {1 Messages} *)

type query_flags = { no_cache : bool }
(** [no_cache] asks the server to bypass its cross-query validation
    cache, making the returned [cost] bit-for-bit reproducible. *)

type request =
  | Ping
  | Query of { flags : query_flags; expr : Path_ast.t }
  | Query_path of { flags : query_flags; labels : string list }
  | Batch_query of { flags : query_flags; paths : string list list }
  | Add_edge of { u : int; v : int }
  | Remove_edge of { u : int; v : int }
  | Add_subgraph of { graph : string; reqs : (string * int) list }
      (** [graph] is a {!Dkindex_graph.Serial} document. *)
  | Promote of (string * int) list
      (** Empty list: promote every node back to its recorded
          requirement (the periodic maintenance pass). *)
  | Demote of (string * int) list
  | Stats
  | Snapshot
  | Shutdown

type query_result = {
  nodes : int array;  (** matching data nodes, sorted *)
  index_visits : int;
  data_visits : int;
  n_candidates : int;
  n_certain : int;
}

type error_code = [ `Protocol | `App | `Deadline | `Shutting_down ]

type response =
  | Pong
  | Result of query_result
  | Batch_result of query_result array
  | Ok_reply of { generation : int }
  | Stats_reply of (string * string) list
  | Error_reply of { code : error_code; message : string }
  | Overloaded
  | Read_only
      (** the durability layer can no longer log mutations (WAL
          unwritable); writes are refused, reads keep working *)

(** {1 Codecs} *)

val encode_request : Buffer.t -> id:int -> request -> unit
(** Append a full frame (length prefix included). *)

val encode_response : Buffer.t -> id:int -> response -> unit

type 'a decoded = { id : int; msg : 'a }

val decode_request : string -> (request decoded, string) result
(** Decode one frame {e payload} (the length prefix already consumed). *)

val decode_response : string -> (response decoded, string) result

(** {1 Framing} *)

val read_frame :
  ?max_frame:int -> read:(bytes -> int -> int -> int) -> unit ->
  [ `Frame of string | `Eof | `Oversized of int ]
(** Blocking frame reader over a [read] function with [Unix.read]
    semantics.  [`Oversized n] reports a declared length beyond
    [max_frame] without consuming the body.
    @raise Failure on a stream that ends mid-frame. *)

val frame_of_payload : string -> string
(** Prepend the length prefix (for tests and hand-rolled clients). *)
