type op = Add_edge of { u : int; v : int } | Probe of { u : int; v : int }

type outcome =
  | Acked of { epoch : int }
  | Read_ok of {
      present : bool;
      generation : int;
      age_ms : int;
      endpoint : int;
      epoch : int;
    }
  | Ambiguous of string
  | Refused of string

type entry = {
  conn : int;
  seq : int;
  op : op;
  invoked_at : float;
  completed_at : float;
  outcome : outcome;
}

(* ------------------------------------------------------------------ *)
(* Recording *)

type recorder = { mu : Mutex.t; mutable rev : entry list }

let recorder () = { mu = Mutex.create (); rev = [] }

let record r e =
  Mutex.lock r.mu;
  r.rev <- e :: r.rev;
  Mutex.unlock r.mu

let entries r =
  Mutex.lock r.mu;
  let es = List.rev r.rev in
  Mutex.unlock r.mu;
  es

(* ------------------------------------------------------------------ *)
(* Persistence: "dkhistory 1", one space-separated line per entry,
   reasons percent-escaped, then one "f u v present" line per probed
   final edge. *)

let esc s =
  if s = "" then "-"
  else begin
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        if c = '%' || c <= ' ' || c = '\x7f' then
          Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
        else Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let unesc s =
  if s = "-" then ""
  else begin
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then begin
         Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
         i := !i + 2
       end
       else Buffer.add_char b s.[!i]);
      incr i
    done;
    Buffer.contents b
  end

let save ~entries ~final path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "dkhistory 1\n";
      List.iter
        (fun e ->
          let kind, u, v =
            match e.op with
            | Add_edge { u; v } -> ("w", u, v)
            | Probe { u; v } -> ("r", u, v)
          in
          let out =
            match e.outcome with
            | Acked { epoch } -> Printf.sprintf "ack %d" epoch
            | Read_ok { present; generation; age_ms; endpoint; epoch } ->
              Printf.sprintf "ok %d %d %d %d %d"
                (if present then 1 else 0)
                generation age_ms endpoint epoch
            | Ambiguous r -> "amb " ^ esc r
            | Refused r -> "ref " ^ esc r
          in
          Printf.fprintf oc "%s %d %d %.6f %.6f %d %d %s\n" kind e.conn e.seq
            e.invoked_at e.completed_at u v out)
        entries;
      List.iter
        (fun (u, v, p) -> Printf.fprintf oc "f %d %d %d\n" u v (if p then 1 else 0))
        final)

let load path =
  let bad line msg = failwith (Printf.sprintf "History.load: %s in %S" msg line) in
  let int line s =
    match int_of_string_opt s with Some n -> n | None -> bad line "bad integer"
  in
  let flt line s =
    match float_of_string_opt s with Some f -> f | None -> bad line "bad float"
  in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (match input_line ic with
      | "dkhistory 1" -> ()
      | l -> bad l "bad header"
      | exception End_of_file -> failwith "History.load: empty file");
      let es = ref [] and fin = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then begin
             let fields =
               String.split_on_char ' ' line |> List.filter (fun f -> f <> "")
             in
             match fields with
             | [ "f"; u; v; p ] ->
               fin := (int line u, int line v, int line p <> 0) :: !fin
             | kind :: conn :: seq :: inv :: comp :: u :: v :: out ->
               let u = int line u and v = int line v in
               let op =
                 match kind with
                 | "w" -> Add_edge { u; v }
                 | "r" -> Probe { u; v }
                 | _ -> bad line "bad entry kind"
               in
               let outcome =
                 match out with
                 | [ "ack"; e ] -> Acked { epoch = int line e }
                 | [ "ok"; p; g; a; ep; e ] ->
                   Read_ok
                     {
                       present = int line p <> 0;
                       generation = int line g;
                       age_ms = int line a;
                       endpoint = int line ep;
                       epoch = int line e;
                     }
                 | [ "amb"; r ] -> Ambiguous (unesc r)
                 | [ "ref"; r ] -> Refused (unesc r)
                 | _ -> bad line "bad outcome"
               in
               es :=
                 {
                   conn = int line conn;
                   seq = int line seq;
                   op;
                   invoked_at = flt line inv;
                   completed_at = flt line comp;
                   outcome;
                 }
                 :: !es
             | _ -> bad line "bad entry"
           end
         done
       with End_of_file -> ());
      (List.rev !es, List.rev !fin))

(* ------------------------------------------------------------------ *)
(* Checking *)

type report = {
  ok : bool;
  violations : string list;
  writes_acked : int;
  writes_ambiguous : int;
  writes_refused : int;
  reads_checked : int;
  max_age_ms : int;
}

let max_violations = 20

let check ?(staleness_grace_ms = 250) ~staleness_bound_ms ~final entries =
  let nviol = ref 0 in
  let viols = ref [] in
  let violate fmt =
    Printf.ksprintf
      (fun m ->
        incr nviol;
        if !nviol <= max_violations then viols := m :: !viols)
      fmt
  in
  let ftbl = Hashtbl.create 64 in
  List.iter (fun (u, v, p) -> Hashtbl.replace ftbl (u, v) p) final;
  let writes_acked = ref 0
  and writes_ambiguous = ref 0
  and writes_refused = ref 0
  and reads_checked = ref 0
  and max_age = ref 0 in
  (* 1. acked-write durability (against the final probe sweep) *)
  List.iter
    (fun e ->
      match (e.op, e.outcome) with
      | Add_edge { u; v }, Acked _ -> (
        incr writes_acked;
        match Hashtbl.find_opt ftbl (u, v) with
        | Some true -> ()
        | Some false ->
          violate
            "lost acknowledged write: conn %d op %d edge (%d,%d) was acked but is absent \
             from the final converged state"
            e.conn e.seq u v
        | None ->
          violate
            "unprobed acknowledged write: conn %d op %d edge (%d,%d) never appeared in the \
             final sweep"
            e.conn e.seq u v)
      | Add_edge _, Ambiguous _ -> incr writes_ambiguous
      | Add_edge _, Refused _ -> incr writes_refused
      | _ -> ())
    entries;
  (* 2. per-connection monotonicity, scoped to the answering member,
     and 3. bounded staleness *)
  let by_conn = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let prev = try Hashtbl.find by_conn e.conn with Not_found -> [] in
      Hashtbl.replace by_conn e.conn (e :: prev))
    entries;
  Hashtbl.iter
    (fun conn rev ->
      let es = List.stable_sort (fun a b -> compare a.seq b.seq) (List.rev rev) in
      let last_gen = Hashtbl.create 4 (* endpoint -> generation *) in
      let seen = Hashtbl.create 16 (* (endpoint, edge) -> seq it was first seen *) in
      List.iter
        (fun e ->
          match (e.op, e.outcome) with
          | Probe { u; v }, Read_ok { present; generation; age_ms; endpoint; _ } ->
            incr reads_checked;
            if age_ms > !max_age then max_age := age_ms;
            if staleness_bound_ms > 0 && age_ms > staleness_bound_ms + staleness_grace_ms
            then
              violate
                "staleness bound exceeded: conn %d op %d was served by member %d at age \
                 %d ms (bound %d ms)"
                conn e.seq endpoint age_ms staleness_bound_ms;
            (match Hashtbl.find_opt last_gen endpoint with
            | Some g when generation < g ->
              violate
                "non-monotonic read: conn %d op %d observed generation %d on member %d \
                 after generation %d"
                conn e.seq generation endpoint g
            | _ -> Hashtbl.replace last_gen endpoint generation);
            if present then Hashtbl.replace seen (endpoint, (u, v)) e.seq
            else (
              match Hashtbl.find_opt seen (endpoint, (u, v)) with
              | Some first ->
                violate
                  "read went backwards: conn %d saw edge (%d,%d) on member %d at op %d \
                   but not at op %d"
                  conn u v endpoint first e.seq
              | None -> ())
          | _ -> ())
        es)
    by_conn;
  (* 4. epoch fencing: an acked write may not carry an epoch below one
     already completed before its invocation. *)
  let events =
    List.filter_map
      (fun e ->
        match e.outcome with
        | Acked { epoch } -> Some (e.completed_at, epoch)
        | Read_ok { epoch; _ } -> Some (e.completed_at, epoch)
        | Ambiguous _ | Refused _ -> None)
      entries
    |> Array.of_list
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) events;
  let prefix_max = Array.make (Array.length events) 0 in
  Array.iteri
    (fun i (_, e) -> prefix_max.(i) <- if i = 0 then e else max e prefix_max.(i - 1))
    events;
  (* largest epoch among events completed strictly before [t] *)
  let epoch_before t =
    let lo = ref 0 and hi = ref (Array.length events) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst events.(mid) < t then lo := mid + 1 else hi := mid
    done;
    if !lo = 0 then 0 else prefix_max.(!lo - 1)
  in
  List.iter
    (fun e ->
      match (e.op, e.outcome) with
      | Add_edge { u; v }, Acked { epoch } ->
        let before = epoch_before e.invoked_at in
        if epoch < before then
          violate
            "post-fencing ack accepted: conn %d op %d edge (%d,%d) was acked at epoch %d \
             after epoch %d had already been observed"
            e.conn e.seq u v epoch before
      | _ -> ())
    entries;
  {
    ok = !nviol = 0;
    violations = List.rev !viols;
    writes_acked = !writes_acked;
    writes_ambiguous = !writes_ambiguous;
    writes_refused = !writes_refused;
    reads_checked = !reads_checked;
    max_age_ms = !max_age;
  }

let report_to_string r =
  let b = Buffer.create 256 in
  Printf.bprintf b "history: %s (%d acked writes, %d ambiguous, %d refused, %d reads, max age %d ms)"
    (if r.ok then "CONSISTENT" else "INCONSISTENT")
    r.writes_acked r.writes_ambiguous r.writes_refused r.reads_checked r.max_age_ms;
  List.iter (fun v -> Printf.bprintf b "\n  violation: %s" v) r.violations;
  Buffer.contents b
