(** Blocking dkserve client (used by the load generator, the smoke
    test and the serving benchmarks).

    One [t] is one TCP connection; it is not domain-safe — give each
    concurrent driver its own connection. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** Default host 127.0.0.1.  @raise Unix.Unix_error on refusal. *)

val close : t -> unit

val send : t -> Wire.request -> int
(** Write one request frame; returns the request id (monotonically
    increasing per connection) for matching against {!recv}. *)

val recv : t -> Wire.response Wire.decoded
(** Read one response frame.
    @raise Failure on EOF, an oversized frame, or an undecodable
    response. *)

val call : t -> Wire.request -> Wire.response
(** [send] then [recv] until the matching id comes back (out-of-order
    responses to earlier pipelined requests are discarded). *)

val send_raw_frame : t -> string -> unit
(** Frame an arbitrary payload and write it verbatim — for protocol
    fuzzing; a normal client never needs this. *)
