(** Self-healing blocking dkserve client (used by the load generator,
    the smoke tests and the serving benchmarks).

    One [t] is one logical connection; it is not domain-safe — give
    each concurrent driver its own.  The client owns reconnection:
    when the TCP connection drops (server restart, timeout, refused
    connect) it redials with exponential backoff and full jitter, up
    to [attempts] tries per operation.

    Retry semantics follow idempotence.  Reads (Ping, Query,
    Query_path, Batch_query, Stats) are retried transparently up to
    [retries] times across reconnects.  Writes are {e never} retried
    automatically — a write that dies mid-flight may or may not have
    been applied and acknowledged, so the failure surfaces as a typed
    {!error} and the caller decides (e.g. re-issue an idempotent
    add-edge, or give up). *)

type error =
  | Retryable of string
      (** connection-level: refused, reset, timed out.  Safe to retry
          reads; writes may have been applied — re-issue only if the
          mutation is idempotent. *)
  | Fatal of string
      (** protocol-level: oversized or undecodable response.  Retrying
          will not help. *)

exception Error of error

val error_to_string : error -> string

type t

val connect :
  ?host:string ->
  ?attempts:int ->
  ?retries:int ->
  ?timeout_s:float ->
  ?backoff_base_s:float ->
  ?backoff_max_s:float ->
  ?seed:int ->
  port:int ->
  unit ->
  t
(** Default host 127.0.0.1.  [attempts] (default 1) bounds connect
    tries per operation; [retries] (default 0) bounds transparent
    re-issues of idempotent reads after a connection failure;
    [timeout_s] (default 0 = none) bounds each response wait;
    [backoff_base_s]/[backoff_max_s] (defaults 0.05/2.0) shape the
    exponential backoff, jittered by [seed].  Dials eagerly.
    @raise Error when the initial connect exhausts [attempts]. *)

val close : t -> unit
val reconnects : t -> int
(** Successful re-dials performed after the initial connect. *)

val call : t -> Wire.request -> Wire.response
(** Send, then receive until the matching id comes back (out-of-order
    responses to earlier pipelined requests are discarded).  Heals per
    the policy above.  @raise Error when healing is exhausted (reads)
    or not permitted (writes, protocol errors). *)

(** {1 Pipelining primitives}

    No healing: these operate on the current connection and raise
    [Failure]/[Unix.Unix_error] directly, for tests that need precise
    control of the byte stream. *)

val send : t -> Wire.request -> int
(** Write one request frame; returns the request id (monotonically
    increasing per connection) for matching against {!recv}. *)

val recv : t -> Wire.response Wire.decoded
(** Read one response frame (honoring [timeout_s] if set).
    @raise Failure on EOF, timeout, an oversized frame, or an
    undecodable response. *)

val send_raw_frame : t -> string -> unit
(** Frame an arbitrary payload and write it verbatim — for protocol
    fuzzing; a normal client never needs this. *)
