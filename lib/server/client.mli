(** Self-healing blocking dkserve client (used by the load generator,
    the smoke tests and the serving benchmarks).

    One [t] is one logical connection; it is not domain-safe — give
    each concurrent driver its own.  The client owns reconnection:
    when the TCP connection drops (server restart, timeout, refused
    connect) it redials with exponential backoff and full jitter, up
    to [attempts] tries per operation.

    Retry semantics follow idempotence.  Reads (Ping, Query,
    Query_path, Batch_query, Stats) are retried transparently up to
    [retries] times across reconnects.  Writes are {e never} retried
    automatically — a write that dies mid-flight may or may not have
    been applied and acknowledged, so the failure surfaces as a typed
    {!error} and the caller decides (e.g. re-issue an idempotent
    add-edge, or give up). *)

type error =
  | Retryable of string
      (** connection-level: refused, reset, timed out.  Safe to retry
          reads; writes may have been applied — re-issue only if the
          mutation is idempotent. *)
  | Fatal of string
      (** protocol-level: oversized or undecodable response.  Retrying
          will not help. *)

exception Error of error

val error_to_string : error -> string

type t

val connect :
  ?host:string ->
  ?attempts:int ->
  ?retries:int ->
  ?timeout_s:float ->
  ?backoff_base_s:float ->
  ?backoff_max_s:float ->
  ?seed:int ->
  ?epoch:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  port:int ->
  unit ->
  t
(** Default host 127.0.0.1.  [attempts] (default 1) bounds connect
    tries per operation; [retries] (default 0) bounds transparent
    re-issues of idempotent reads after a connection failure;
    [timeout_s] (default 0 = none) bounds each response wait;
    [backoff_base_s]/[backoff_max_s] (defaults 0.05/2.0) shape the
    exponential backoff, jittered by [seed].  Dials eagerly, and every
    connection (including reconnects) starts with a {!Wire.Hello}
    carrying the highest epoch observed so far (seeded by [epoch],
    default 0) — a version mismatch is a [Fatal] error.
    [breaker_threshold] (default 0 = disabled) arms a circuit breaker:
    after that many {e consecutive} [Retryable] failures of {!call},
    further calls fail fast ([Retryable "circuit breaker open"]) for
    [breaker_cooldown_s] (default 1.0); the first call after the
    cooldown is a half-open probe — success closes the circuit,
    failure reopens it at once.
    @raise Error when the initial connect exhausts [attempts]. *)

val close : t -> unit
val reconnects : t -> int
(** Successful re-dials performed after the initial connect. *)

val set_epoch : t -> int -> unit
(** Raise the epoch this client claims in its Hello.  If the current
    connection was helloed with a lower epoch it is dropped, so the
    next request re-hellos — informing (and thereby fencing) a server
    that has not yet seen the newer epoch. *)

val server_epoch : t -> int
(** Epoch the server reported in the last Hello exchange. *)

val server_role : t -> Wire.role option
(** Role from the last Hello exchange ([None] before any). *)

val call : t -> Wire.request -> Wire.response
(** Send, then receive until the matching id comes back (out-of-order
    responses to earlier pipelined requests are discarded).  Heals per
    the policy above.  @raise Error when healing is exhausted (reads)
    or not permitted (writes, protocol errors), or fast when the
    circuit breaker is open. *)

val circuit_open_count : t -> int
(** Times this client's circuit breaker has opened (0 when the breaker
    is disabled or never tripped). *)

val circuit_open : t -> bool
(** Is the breaker currently failing calls fast? *)

(** {1 Pipelining primitives}

    No healing: these operate on the current connection and raise
    [Failure]/[Unix.Unix_error] directly, for tests that need precise
    control of the byte stream. *)

val send : t -> Wire.request -> int
(** Write one request frame; returns the request id (monotonically
    increasing per connection) for matching against {!recv}. *)

val recv : t -> Wire.response Wire.decoded
(** Read one response frame (honoring [timeout_s] if set).
    @raise Failure on EOF, timeout, an oversized frame, or an
    undecodable response. *)

val send_raw_frame : t -> string -> unit
(** Frame an arbitrary payload and write it verbatim — for protocol
    fuzzing; a normal client never needs this. *)

(** {1 Cluster client}

    A partition-tolerant client over a replica set.  Reads round-robin
    across every reachable member, failing over on connection errors
    and [`Stale] refusals; writes go to the current primary, with
    rediscovery driven by {!Wire.Not_primary} redirects, {!Wire.Fenced}
    refusals, and the role reported in each member's Hello.  The
    cluster tracks the highest epoch observed anywhere and makes every
    member re-hello with it before further use, so a deposed primary
    is fenced before it can acknowledge a write into a stale lineage;
    an [Ok_reply] carrying an older epoch is likewise refused.  Not
    domain-safe — one cluster per driver. *)

type cluster

val cluster_connect :
  ?attempts:int ->
  ?retries:int ->
  ?timeout_s:float ->
  ?seed:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  endpoints:(string * int) list ->
  unit ->
  cluster
(** Eagerly sweeps [endpoints] (learning epochs and the primary);
    unreachable members are retried lazily on use.  [retries] scales
    the failover budget: each operation tries every member up to
    [retries + 1] times before giving up.  [breaker_threshold]
    (default 0 = disabled) arms a per-endpoint circuit breaker kept
    {e outside} the member connection (state survives drops and
    redials): a member whose circuit is open is skipped without
    dialing, so a dead member costs one connect timeout per
    [breaker_cooldown_s] window instead of one per operation. *)

val cluster_call : cluster -> Wire.request -> Wire.response
(** Route per the policy above.  @raise Error when every member has
    been tried and none could serve the request. *)

val cluster_close : cluster -> unit
val cluster_epoch : cluster -> int
(** Highest primary epoch observed across the cluster. *)

val cluster_primary : cluster -> (string * int) option
(** Current believed primary endpoint, if any. *)

val cluster_last_endpoint : cluster -> int
(** Index (into the [endpoints] list) of the member that served the
    last successful response, or -1 before any.  History recording
    uses this to attribute a read to a server, since snapshot
    generations are only comparable within one server process. *)

val cluster_circuit_open_count : cluster -> int
(** Total circuit-breaker opens across all endpoints (per-endpoint
    breakers plus any member-level ones). *)
