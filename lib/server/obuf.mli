(** Growable output buffer for wire encoding.

    Unlike [Stdlib.Buffer] this exposes the backing [Bytes.t] directly
    ({!base}), so a frame can be written to a socket — or patched in
    place ({!patch_u32}) — without the [Buffer.to_bytes] copy per
    frame.  Intended use: one reused buffer per connection or per
    encoding site, [clear]ed between frames; steady-state encoding
    allocates nothing. *)

type t

val create : int -> t
(** [create hint] with an initial capacity of at least [hint] bytes. *)

val length : t -> int
val clear : t -> unit

val base : t -> Bytes.t
(** The backing store; bytes [0 .. length - 1] are valid.  Invalidated
    by any subsequent add (the buffer may grow by reallocating). *)

val contents : t -> string
(** Copy out the valid bytes. *)

val add_u8 : t -> int -> unit
val add_u16 : t -> int -> unit
val add_u32 : t -> int -> unit
val add_string : t -> string -> unit
val add_substring : t -> string -> int -> int -> unit
val add_buffer : t -> Buffer.t -> unit

val patch_u32 : t -> int -> int -> unit
(** [patch_u32 t off v] overwrites the 4 bytes at [off] with [v]
    big-endian; [off + 4 <= length t]. *)
