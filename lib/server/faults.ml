type spec =
  | Fail_nth_write of int
  | Short_write of int
  | Crash_after_bytes of int
  | Enospc_after_bytes of int
  | Drop_after_bytes of int
  | Slow_write of float

type t = { spec : spec; mutable writes : int; mutable bytes : int; mutable tripped : bool }

let create spec = { spec; writes = 0; bytes = 0; tripped = false }
let exit_code = 70
let enospc name = raise (Unix.Unix_error (Unix.ENOSPC, name, "injected fault"))

let write faults fd b off len =
  match faults with
  | None -> Unix.write fd b off len
  | Some t -> (
    t.writes <- t.writes + 1;
    match t.spec with
    | Fail_nth_write n when t.writes = n -> enospc "write"
    | Short_write n when t.writes = n ->
      let half = len / 2 in
      if half > 0 then ignore (Unix.write fd b off half);
      raise (Unix.Unix_error (Unix.EIO, "write", "injected short write"))
    | Slow_write s ->
      Unix.sleepf s;
      let n = Unix.write fd b off len in
      t.bytes <- t.bytes + n;
      n
    | Drop_after_bytes n when t.tripped || t.bytes + len > n ->
      let room = if t.tripped then 0 else max 0 (n - t.bytes) in
      if room > 0 then begin
        ignore (Unix.write fd b off room);
        t.bytes <- t.bytes + room
      end;
      t.tripped <- true;
      raise (Unix.Unix_error (Unix.EPIPE, "write", "injected partition"))
    | (Crash_after_bytes n | Enospc_after_bytes n) when t.tripped || t.bytes + len > n ->
      let room = if t.tripped then 0 else max 0 (n - t.bytes) in
      if room > 0 then begin
        ignore (Unix.write fd b off room);
        t.bytes <- t.bytes + room
      end;
      t.tripped <- true;
      (match t.spec with
      | Crash_after_bytes _ -> Unix._exit exit_code
      | _ -> enospc "write")
    | _ ->
      let n = Unix.write fd b off len in
      t.bytes <- t.bytes + n;
      n)

let fsync faults fd =
  match faults with
  | Some { spec = Enospc_after_bytes _; tripped = true; _ } -> enospc "fsync"
  | _ -> Unix.fsync fd
