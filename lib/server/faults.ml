type spec =
  | Fail_nth_write of int
  | Short_write of int
  | Crash_after_bytes of int
  | Enospc_after_bytes of int
  | Drop_after_bytes of int
  | Slow_write of float
  | Short_read of int
  | Flip_bit_after_bytes of int
  | Eintr_reads of int

type t = {
  spec : spec;
  mutable writes : int;
  mutable bytes : int;
  mutable reads : int;
  mutable rbytes : int;
  mutable tripped : bool;
}

let create spec = { spec; writes = 0; bytes = 0; reads = 0; rbytes = 0; tripped = false }
let exit_code = 70
let enospc name = raise (Unix.Unix_error (Unix.ENOSPC, name, "injected fault"))

let write faults fd b off len =
  match faults with
  | None -> Unix.write fd b off len
  | Some t -> (
    t.writes <- t.writes + 1;
    match t.spec with
    | Fail_nth_write n when t.writes = n -> enospc "write"
    | Short_write n when t.writes = n ->
      let half = len / 2 in
      if half > 0 then ignore (Unix.write fd b off half);
      raise (Unix.Unix_error (Unix.EIO, "write", "injected short write"))
    | Slow_write s ->
      Unix.sleepf s;
      let n = Unix.write fd b off len in
      t.bytes <- t.bytes + n;
      n
    | Drop_after_bytes n when t.tripped || t.bytes + len > n ->
      let room = if t.tripped then 0 else max 0 (n - t.bytes) in
      if room > 0 then begin
        ignore (Unix.write fd b off room);
        t.bytes <- t.bytes + room
      end;
      t.tripped <- true;
      raise (Unix.Unix_error (Unix.EPIPE, "write", "injected partition"))
    | (Crash_after_bytes n | Enospc_after_bytes n) when t.tripped || t.bytes + len > n ->
      let room = if t.tripped then 0 else max 0 (n - t.bytes) in
      if room > 0 then begin
        ignore (Unix.write fd b off room);
        t.bytes <- t.bytes + room
      end;
      t.tripped <- true;
      (match t.spec with
      | Crash_after_bytes _ -> Unix._exit exit_code
      | _ -> enospc "write")
    | _ ->
      let n = Unix.write fd b off len in
      t.bytes <- t.bytes + n;
      n)

let read faults fd b off len =
  match faults with
  | None -> Unix.read fd b off len
  | Some t -> (
    t.reads <- t.reads + 1;
    match t.spec with
    | Eintr_reads n when t.reads <= n ->
      raise (Unix.Unix_error (Unix.EINTR, "read", "injected interrupt"))
    | Short_read cap when len > 0 ->
      let n = Unix.read fd b off (min len (max 1 cap)) in
      t.rbytes <- t.rbytes + n;
      n
    | Flip_bit_after_bytes thresh ->
      let n = Unix.read fd b off len in
      (if (not t.tripped) && n > 0 && t.rbytes + n > thresh then begin
         (* Flip bit [thresh mod 8] of the byte at cumulative offset
            [thresh] — fully determined by the spec, so the same seed
            corrupts the same bit on every run. *)
         let i = off + max 0 (thresh - t.rbytes) in
         let i = min i (off + n - 1) in
         Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (thresh mod 8))));
         t.tripped <- true
       end);
      t.rbytes <- t.rbytes + n;
      n
    | _ ->
      let n = Unix.read fd b off len in
      t.rbytes <- t.rbytes + n;
      n)

let read_all faults path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let buf = Buffer.create 65536 in
      let chunk = Bytes.create 65536 in
      let rec go () =
        match read faults fd chunk 0 (Bytes.length chunk) with
        | 0 -> Buffer.contents buf
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ())

let fsync faults fd =
  match faults with
  | Some { spec = Enospc_after_bytes _; tripped = true; _ } -> enospc "fsync"
  | _ -> Unix.fsync fd

(* ------------------------------------------------------------------ *)
(* At-rest corruption: damage a closed file between runs.  These are
   not part of a [spec] — they model bit rot and torn storage rather
   than a faulty syscall, and drive the scrubber / anti-entropy
   tests. *)

let file_size path = (Unix.stat path).Unix.st_size

let flip_bit_at_rest path ~off ~bit =
  let size = file_size path in
  if off < 0 || off >= size then
    invalid_arg
      (Printf.sprintf "Faults.flip_bit_at_rest: offset %d out of [0, %d)" off size);
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      if Unix.read fd b 0 1 <> 1 then failwith "Faults.flip_bit_at_rest: read";
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl (bit land 7))));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      if Unix.write fd b 0 1 <> 1 then failwith "Faults.flip_bit_at_rest: write";
      Unix.fsync fd)

let truncate_at_rest path ~size =
  if size < 0 then invalid_arg "Faults.truncate_at_rest: negative size";
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd size;
      Unix.fsync fd)
