(* Primary/replica replication: WAL shipping, catch-up, failover.

   The primary side is a [hub]: one sender domain per subscribed
   replica, each tailing the WAL files of the primary's data directory
   directly (never the in-memory log — only complete records are
   claimed by [Checkpoint.wal_position], so a tailer cannot ship a
   torn record of its own making).  A subscriber that asks for a
   position the primary no longer has (pruned generation) is
   bootstrapped with the newest checkpoint snapshot and streamed from
   that generation on.

   The replica side is a tailer loop in its own domain: connect,
   Hello, subscribe from the last applied position (or -1 for a
   snapshot bootstrap), reassemble WAL records from the chunk stream,
   and hand them to the server's mutator as [event]s.  The loop owns
   liveness: any byte from the primary refreshes [last_contact]; when
   the failover timeout elapses with no contact, an [Ev_promote] event
   is pushed (if auto-promotion is enabled) and the mutator performs
   the epoch bump. *)

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Epoch persistence: a tiny "epoch" file in the data directory,
   written atomically.  A promoted replica must remember its epoch
   across restarts or a deposed primary could win fencing again. *)

let epoch_file dir = Filename.concat dir "epoch"

let load_epoch ~dir =
  match open_in_bin (epoch_file dir) with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match int_of_string_opt (String.trim (input_line ic)) with
        | Some e when e >= 0 -> e
        | _ -> 0
        | exception End_of_file -> 0)

let store_epoch ~dir e =
  let tmp = epoch_file dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (string_of_int e);
  output_char oc '\n';
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Unix.rename tmp (epoch_file dir)

(* ------------------------------------------------------------------ *)
(* Shared plumbing *)

let write_all ?faults fd b off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    match Faults.write faults fd b !off !len with
    | n ->
      off := !off + n;
      len := !len - n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let file_size path = match Unix.stat path with s -> s.Unix.st_size | exception Unix.Unix_error _ -> -1

(* ------------------------------------------------------------------ *)
(* Hub: the primary side *)

type sub = {
  sub_id : int;
  sfd : Unix.file_descr;
  sfaults : Faults.t option;
  pos_seq : int Atomic.t;  (* generation currently being shipped *)
  pos_off : int Atomic.t;  (* complete bytes shipped within it *)
  alive : bool Atomic.t;
  boots : int Atomic.t;  (* snapshot bootstraps sent *)
}

type hub = {
  dur : Checkpoint.t;
  hepoch : int Atomic.t;  (* the server's epoch, shared *)
  heartbeat_s : float;
  faults_for : int -> Faults.t option;
  hmu : Mutex.t;
  mutable subs : sub list;
  mutable senders : unit Domain.t list;
  hstop : bool Atomic.t;
}

let chunk_bytes = 256 * 1024

let create_hub ?(faults_for = fun _ -> None) ?(heartbeat_s = 0.25) ~epoch dur =
  {
    dur;
    hepoch = epoch;
    heartbeat_s;
    faults_for;
    hmu = Mutex.create ();
    subs = [];
    senders = [];
    hstop = Atomic.make false;
  }

(* Gathered write of a frame header plus a large blob (WAL chunk,
   snapshot): the blob goes out from its own string via writev, never
   copied through the frame buffer.  Injected faults need byte-level
   control of each write, so a faulted subscriber keeps the
   single-buffer path. *)
let writev_all fd head hlen tail =
  let t = String.length tail in
  let w = ref 0 in
  while !w < hlen + t do
    let hoff = min !w hlen in
    let toff = max 0 (!w - hlen) in
    match Evloop.writev fd head hoff (hlen - hoff) tail toff (t - toff) with
    | n -> w := !w + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      ignore (Unix.select [] [ fd ] [] 1.0)
  done

let send_frame sub resp =
  let buf = Obuf.create 512 in
  match (Wire.encode_response_gather buf ~id:0 resp, sub.sfaults) with
  | None, _ -> write_all ?faults:sub.sfaults sub.sfd (Obuf.base buf) 0 (Obuf.length buf)
  | Some tail, Some _ ->
    (* The gathered header already accounts for the tail's length;
       appending the tail reconstitutes the exact single-buffer frame. *)
    Obuf.add_string buf tail;
    write_all ?faults:sub.sfaults sub.sfd (Obuf.base buf) 0 (Obuf.length buf)
  | Some tail, None -> writev_all sub.sfd (Obuf.base buf) (Obuf.length buf) tail

(* Stream one subscriber.  Returns when the hub stops or the socket
   (or an injected fault) kills the connection. *)
let sender_loop hub sub start_seq start_off () =
  let dir = Checkpoint.dir hub.dur in
  let gen_fd : Unix.file_descr option ref = ref None in
  let close_gen () =
    Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !gen_fd;
    gen_fd := None
  in
  let open_gen seq off =
    close_gen ();
    let fd = Unix.openfile (Checkpoint.wal_file ~dir ~seq) [ O_RDONLY ] 0 in
    if off > 0 then ignore (Unix.lseek fd off SEEK_SET);
    gen_fd := Some fd
  in
  let epoch () = Atomic.get hub.hepoch in
  (* Snapshot bootstrap: ship the newest loadable checkpoint and
     restart the stream at its generation. *)
  let bootstrap () =
    close_gen ();
    match Checkpoint.newest_checkpoint ~dir with
    | None ->
      send_frame sub
        (Wire.Error_reply { code = `App; message = "primary has no loadable checkpoint" });
      raise Exit
    | Some (seq, index) ->
      send_frame sub (Wire.Rep_snapshot { epoch = epoch (); seq; index });
      Atomic.incr sub.boots;
      Atomic.set sub.pos_seq seq;
      Atomic.set sub.pos_off 0;
      open_gen seq 0
  in
  let chunk = Bytes.create chunk_bytes in
  let last_hb = ref 0.0 in
  (* Heartbeats advertise the position this sender has *shipped
     through* — never the live [Checkpoint.wal_position], which may be
     ahead of records still unsent.  Frames are delivered in order, so
     by the time a replica hears of a position, every record before it
     has already arrived: a heartbeat is a stream barrier, and the
     replica's bytes_behind can trust it. *)
  let heartbeat ~force =
    let t = now () in
    if force || t -. !last_hb >= hub.heartbeat_s then begin
      last_hb := t;
      let seq = Atomic.get sub.pos_seq and off = Atomic.get sub.pos_off in
      send_frame sub (Wire.Rep_heartbeat { epoch = epoch (); seq; offset = off })
    end
  in
  (try
     (* Resolve the starting position: an unknown (-1) or implausible
        position, or one whose WAL file is already pruned, becomes a
        snapshot bootstrap. *)
     let cur_seq, cur_off = Checkpoint.wal_position hub.dur in
     let plausible =
       start_seq >= 0
       && (start_seq < cur_seq || (start_seq = cur_seq && start_off <= cur_off))
       &&
       let sz = file_size (Checkpoint.wal_file ~dir ~seq:start_seq) in
       sz >= 0 && (start_seq = cur_seq || start_off <= sz)
     in
     if plausible then begin
       Atomic.set sub.pos_seq start_seq;
       Atomic.set sub.pos_off start_off;
       try open_gen start_seq start_off with Unix.Unix_error _ -> bootstrap ()
     end
     else bootstrap ();
     heartbeat ~force:true;
     while not (Atomic.get hub.hstop) do
       let seq = Atomic.get sub.pos_seq and off = Atomic.get sub.pos_off in
       let cur_seq, cur_off = Checkpoint.wal_position hub.dur in
       (* How many complete-record bytes may we ship from [seq]?  The
          live generation is bounded by the atomic byte counter; a
          retired one by its final size on disk. *)
       let limit =
         if seq = cur_seq then cur_off
         else if seq < cur_seq then file_size (Checkpoint.wal_file ~dir ~seq)
         else 0
       in
       if limit >= 0 && off < limit then begin
         let want = min chunk_bytes (limit - off) in
         let got = match !gen_fd with Some fd -> Unix.read fd chunk 0 want | None -> 0 in
         if got > 0 then begin
           send_frame sub
             (Wire.Rep_records
                {
                  epoch = epoch ();
                  seq;
                  offset = off + got;
                  data = Bytes.sub_string chunk 0 got;
                });
           Atomic.set sub.pos_off (off + got)
         end
         else bootstrap () (* file shrank under us: racing the pruner *)
       end
       else if limit < 0 then bootstrap () (* generation pruned away *)
       else if seq < cur_seq then begin
         (* Retired generation fully shipped: advance. *)
         Atomic.set sub.pos_seq (seq + 1);
         Atomic.set sub.pos_off 0;
         try open_gen (seq + 1) 0 with Unix.Unix_error _ -> bootstrap ()
       end
       else begin
         heartbeat ~force:false;
         Unix.sleepf 0.002
       end
     done
   with Exit | Unix.Unix_error _ | Sys_error _ -> ());
  close_gen ();
  Atomic.set sub.alive false;
  (try Unix.close sub.sfd with Unix.Unix_error _ -> ())

let attach hub ~fd ~replica_id ~seq ~offset =
  let sub =
    {
      sub_id = replica_id;
      sfd = fd;
      sfaults = hub.faults_for replica_id;
      pos_seq = Atomic.make (max seq 0);
      pos_off = Atomic.make (max offset 0);
      alive = Atomic.make true;
      boots = Atomic.make 0;
    }
  in
  Mutex.lock hub.hmu;
  (* A reconnecting replica reuses its id: retire the dead entry. *)
  hub.subs <- sub :: List.filter (fun s -> s.sub_id <> replica_id || Atomic.get s.alive) hub.subs;
  let d = Domain.spawn (sender_loop hub sub seq offset) in
  hub.senders <- d :: hub.senders;
  Mutex.unlock hub.hmu

let sub_lag hub sub =
  if not (Atomic.get sub.alive) then 0
  else begin
    let dir = Checkpoint.dir hub.dur in
    let cur_seq, cur_off = Checkpoint.wal_position hub.dur in
    let seq = Atomic.get sub.pos_seq and off = Atomic.get sub.pos_off in
    if seq >= cur_seq then max 0 (cur_off - off)
    else begin
      let lag = ref (cur_off - 0) in
      (match file_size (Checkpoint.wal_file ~dir ~seq) with
      | -1 -> ()
      | sz -> lag := !lag + max 0 (sz - off));
      for s = seq + 1 to cur_seq - 1 do
        match file_size (Checkpoint.wal_file ~dir ~seq:s) with
        | -1 -> ()
        | sz -> lag := !lag + sz
      done;
      !lag
    end
  end

let hub_subs hub =
  Mutex.lock hub.hmu;
  let subs = hub.subs in
  Mutex.unlock hub.hmu;
  subs

let hub_lag_bytes hub =
  List.fold_left (fun acc s -> max acc (sub_lag hub s)) 0 (hub_subs hub)

let hub_stats hub =
  let subs = hub_subs hub in
  let live = List.filter (fun s -> Atomic.get s.alive) subs in
  ("replicas_connected", string_of_int (List.length live))
  :: List.concat_map
       (fun s ->
         let p = Printf.sprintf "replica.%d." s.sub_id in
         [
           (p ^ "epoch", string_of_int (Atomic.get hub.hepoch));
           (p ^ "wal_seq", string_of_int (Atomic.get s.pos_seq));
           (p ^ "wal_offset", string_of_int (Atomic.get s.pos_off));
           (p ^ "bytes_behind", string_of_int (sub_lag hub s));
           (p ^ "bootstraps", string_of_int (Atomic.get s.boots));
         ])
       live

let stop_hub hub =
  Atomic.set hub.hstop true;
  Mutex.lock hub.hmu;
  let senders = hub.senders in
  let subs = hub.subs in
  hub.senders <- [];
  Mutex.unlock hub.hmu;
  (* Close the sockets too: a sender blocked in write wakes with EPIPE/EBADF. *)
  List.iter (fun s -> try Unix.shutdown s.sfd SHUTDOWN_ALL with Unix.Unix_error _ -> ()) subs;
  List.iter Domain.join senders

(* ------------------------------------------------------------------ *)
(* Replica: the tailer side *)

type rconfig = {
  primary_host : string;
  primary_port : int;
  replica_id : int;
  auto_promote : bool;
  failover_timeout_s : float;
  staleness_bound_s : float;
}

let default_rconfig ~host ~port ~replica_id =
  {
    primary_host = host;
    primary_port = port;
    replica_id;
    auto_promote = false;
    failover_timeout_s = 3.0;
    staleness_bound_s = 10.0;
  }

type event =
  | Ev_snapshot of { index : string; epoch : int; seq : int }
  | Ev_mutations of { muts : Wal.mutation list; epoch : int; seq : int; base : int; offset : int }
  | Ev_promote

type replica = {
  rcfg : rconfig;
  repoch : int Atomic.t;  (* the server's epoch, shared *)
  rmax_seen : int Atomic.t;  (* highest epoch observed anywhere, shared *)
  last_contact : float Atomic.t;
  primary_seq : int Atomic.t;
  primary_off : int Atomic.t;
  applied_seq : int Atomic.t;
  applied_off : int Atomic.t;
  (* Last position the tailer pushed to the apply queue: everything up
     to here was *received*; anything past [applied_*] is queued. *)
  recv_seq : int Atomic.t;
  recv_off : int Atomic.t;
  synced_epoch : int Atomic.t;  (* epoch lineage [applied_*] belongs to; -1 = none *)
  connected : bool Atomic.t;
  promoted : bool Atomic.t;
  rstop : bool Atomic.t;
  snapshots_installed : int Atomic.t;
  records_applied : int Atomic.t;
  reconnects : int Atomic.t;
  (* Anti-entropy escape hatch: drop the stream and re-subscribe with
     seq = -1, forcing a snapshot bootstrap. *)
  resync : bool Atomic.t;
  mutable rdomain : unit Domain.t option;
}

let create_replica rcfg ~epoch ~max_seen =
  {
    rcfg;
    repoch = epoch;
    rmax_seen = max_seen;
    last_contact = Atomic.make 0.0;
    primary_seq = Atomic.make (-1);
    primary_off = Atomic.make 0;
    applied_seq = Atomic.make (-1);
    applied_off = Atomic.make 0;
    recv_seq = Atomic.make (-1);
    recv_off = Atomic.make 0;
    synced_epoch = Atomic.make (-1);
    connected = Atomic.make false;
    promoted = Atomic.make false;
    rstop = Atomic.make false;
    snapshots_installed = Atomic.make 0;
    records_applied = Atomic.make 0;
    reconnects = Atomic.make 0;
    resync = Atomic.make false;
    rdomain = None;
  }

let rconfig_of r = r.rcfg
let force_resync r = Atomic.set r.resync true
let mark_promoted r = Atomic.set r.promoted true
let is_promoted r = Atomic.get r.promoted

let applied_position r = (Atomic.get r.applied_seq, Atomic.get r.applied_off)

let note_applied r ~seq ~offset ~n =
  Atomic.set r.applied_seq seq;
  Atomic.set r.applied_off offset;
  if n > 0 then Atomic.set r.records_applied (Atomic.get r.records_applied + n)

let note_installed r ~epoch ~seq =
  Atomic.incr r.snapshots_installed;
  Atomic.set r.synced_epoch epoch;
  Atomic.set r.applied_seq seq;
  Atomic.set r.applied_off 0

(* Reads on a replica are refused once it has heard nothing from its
   primary for longer than the staleness bound.  A replica that never
   synced at all is stale by definition. *)
let stale r =
  (not (Atomic.get r.promoted))
  && r.rcfg.staleness_bound_s > 0.0
  &&
  let lc = Atomic.get r.last_contact in
  lc = 0.0 || now () -. lc > r.rcfg.staleness_bound_s

(* The quantity the staleness bound is keyed on, exported so reads can
   be stamped with the data age they were answered at.  [None] before
   the first contact; a promoted replica serves its own (fresh) data. *)
let contact_age_s r =
  if Atomic.get r.promoted then Some 0.0
  else
    let lc = Atomic.get r.last_contact in
    if lc = 0.0 then None else Some (now () -. lc)

exception Watchdog
exception Disconnected of string

let watchdog_expired r =
  let lc = Atomic.get r.last_contact in
  r.rcfg.failover_timeout_s > 0.0 && lc > 0.0
  && now () -. lc > r.rcfg.failover_timeout_s

(* [Unix.read] semantics + liveness accounting: every byte from the
   primary refreshes [last_contact]; with no bytes, the failover
   watchdog fires. *)
let watchdog_read r fd b off len =
  let rec go () =
    if Atomic.get r.rstop || Atomic.get r.promoted then raise (Disconnected "stopping");
    if Atomic.get r.resync then raise (Disconnected "resync requested");
    if watchdog_expired r then raise Watchdog;
    match Unix.select [ fd ] [] [] 0.05 with
    | [], _, _ -> go ()
    | _ -> (
      match Unix.read fd b off len with
      | 0 -> 0
      | n ->
        Atomic.set r.last_contact (now ());
        n
      | exception Unix.Unix_error (EINTR, _, _) -> go ())
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  go ()

let read_response r fd =
  match Wire.read_frame ~read:(watchdog_read r fd) () with
  | `Eof -> raise (Disconnected "eof")
  | `Oversized n -> raise (Disconnected (Printf.sprintf "oversized frame (%d bytes)" n))
  | exception Failure msg -> raise (Disconnected msg)
  | exception Unix.Unix_error (e, _, _) -> raise (Disconnected (Unix.error_message e))
  | `Frame payload -> (
    match Wire.decode_response payload with
    | Ok d -> d.Wire.msg
    | Error msg -> raise (Disconnected ("bad frame: " ^ msg)))

let send_request fd req =
  let buf = Obuf.create 64 in
  Wire.encode_request buf ~id:0 req;
  write_all fd (Obuf.base buf) 0 (Obuf.length buf)

(* One session against the primary: Hello, subscribe, stream. *)
let session r push fd =
  send_request fd (Wire.Hello { version = Wire.version; epoch = Atomic.get r.rmax_seen });
  (match read_response r fd with
  | Wire.Hello_reply { version; epoch; role = _ } ->
    if version <> Wire.version then
      raise (Disconnected (Printf.sprintf "protocol version mismatch: primary %d, us %d" version Wire.version));
    if epoch > Atomic.get r.rmax_seen then Atomic.set r.rmax_seen epoch;
    if epoch < Atomic.get r.repoch then raise (Disconnected "primary has an older epoch than us")
  | Wire.Error_reply { code = `Version; message } -> raise (Disconnected ("version refused: " ^ message))
  | _ -> raise (Disconnected "expected hello_reply"));
  let sub_seq, sub_off =
    (* A position is only meaningful within the lineage it was applied
       under; anything else (cold start, new primary) bootstraps.  A
       requested resync bootstraps unconditionally. *)
    if Atomic.exchange r.resync false then (-1, 0)
    else if Atomic.get r.synced_epoch = Atomic.get r.rmax_seen && Atomic.get r.applied_seq >= 0 then
      (Atomic.get r.applied_seq, Atomic.get r.applied_off)
    else (-1, 0)
  in
  send_request fd
    (Wire.Rep_subscribe
       {
         replica_id = r.rcfg.replica_id;
         epoch = Atomic.get r.repoch;
         seq = sub_seq;
         offset = sub_off;
       });
  Atomic.set r.connected true;
  (* Chunk reassembly: [pending] holds bytes from [cur_gen] starting
     at in-generation offset [base]; complete records peel off the
     front through Wal.replay_string (the same canonical decoder WAL
     recovery uses). *)
  let pending = ref "" in
  let cur_gen = ref (-1) in
  let base = ref 0 in
  let reset_at gen off =
    pending := "";
    cur_gen := gen;
    base := off
  in
  while true do
    match read_response r fd with
    | Wire.Rep_heartbeat { epoch; seq; offset } ->
      if epoch > Atomic.get r.rmax_seen then Atomic.set r.rmax_seen epoch;
      Atomic.set r.primary_seq seq;
      Atomic.set r.primary_off offset
    | Wire.Rep_snapshot { epoch; seq; index } ->
      if epoch > Atomic.get r.rmax_seen then Atomic.set r.rmax_seen epoch;
      reset_at seq 0;
      Atomic.set r.recv_seq seq;
      Atomic.set r.recv_off 0;
      push (Ev_snapshot { index; epoch; seq })
    | Wire.Rep_records { epoch; seq; offset; data } ->
      if epoch > Atomic.get r.rmax_seen then Atomic.set r.rmax_seen epoch;
      (* Advance the known primary position from record frames too, not
         just heartbeats: [bytes_behind] must count received-but-unapplied
         bytes, else a stale heartbeat position that matches the applied
         position reports "caught up" while records are still in flight. *)
      if
        seq > Atomic.get r.primary_seq
        || (seq = Atomic.get r.primary_seq && offset > Atomic.get r.primary_off)
      then begin
        Atomic.set r.primary_seq seq;
        Atomic.set r.primary_off offset
      end;
      let start = offset - String.length data in
      if seq <> !cur_gen || start <> !base + String.length !pending then reset_at seq start;
      pending := !pending ^ data;
      let rp = Wal.replay_string !pending in
      if rp.Wal.mutations <> [] then begin
        push
          (Ev_mutations
             {
               muts = rp.Wal.mutations;
               epoch;
               seq;
               base = !base;
               offset = !base + rp.Wal.valid_bytes;
             });
        pending := String.sub !pending rp.Wal.valid_bytes (String.length !pending - rp.Wal.valid_bytes);
        base := !base + rp.Wal.valid_bytes;
        if
          seq > Atomic.get r.recv_seq
          || (seq = Atomic.get r.recv_seq && !base > Atomic.get r.recv_off)
        then begin
          Atomic.set r.recv_seq seq;
          Atomic.set r.recv_off !base
        end
      end
    | Wire.Fenced { epoch } ->
      if epoch > Atomic.get r.rmax_seen then Atomic.set r.rmax_seen epoch;
      raise (Disconnected "primary is fenced")
    | Wire.Not_primary _ -> raise (Disconnected "peer is not a primary")
    | Wire.Error_reply { message; _ } -> raise (Disconnected ("primary refused: " ^ message))
    | _ -> ()
  done

let dial r =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string r.rcfg.primary_host, r.rcfg.primary_port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  fd

let replica_loop r push () =
  let promote_requested = ref false in
  let maybe_auto_promote () =
    if
      r.rcfg.auto_promote && (not !promote_requested) && (not (Atomic.get r.rstop))
      && watchdog_expired r
    then begin
      promote_requested := true;
      push Ev_promote
    end
  in
  let backoff = ref 0.02 in
  while not (Atomic.get r.rstop || Atomic.get r.promoted) do
    (match dial r with
    | exception Unix.Unix_error _ -> ()
    | fd ->
      (try session r push fd
       with Watchdog | Disconnected _ | Unix.Unix_error _ -> ());
      Atomic.set r.connected false;
      Atomic.incr r.reconnects;
      (try Unix.close fd with Unix.Unix_error _ -> ()));
    maybe_auto_promote ();
    if not (Atomic.get r.rstop || Atomic.get r.promoted) then begin
      Unix.sleepf !backoff;
      backoff := min 0.5 (!backoff *. 2.0)
    end
  done;
  Atomic.set r.connected false

let start_replica r ~push = r.rdomain <- Some (Domain.spawn (replica_loop r push))

let stop_replica r =
  Atomic.set r.rstop true;
  (match r.rdomain with
  | Some d ->
    Domain.join d;
    r.rdomain <- None
  | None -> ())

(* How far behind this replica believes it is, in WAL bytes.  Two
   lower bounds, take the larger:

   - the heartbeat-known primary position vs the applied position —
     cross-generation gaps degrade to the current generation's bytes
     (old generations' lengths are unknown here), so a primary that
     merely rotated to an empty new generation reads as caught up;
   - the tailer's received position vs the applied position — bytes
     the tailer already pushed to the apply queue are *definitely*
     pending, whatever the (possibly stale) heartbeats say.  This is
     what makes "bytes_behind = 0" safe to use as a caught-up signal:
     a fast stats path cannot observe 0 while received records sit
     unapplied. *)
let bytes_behind r =
  let aseq = Atomic.get r.applied_seq and aoff = Atomic.get r.applied_off in
  let known =
    let pseq = Atomic.get r.primary_seq and poff = Atomic.get r.primary_off in
    if pseq < 0 || aseq > pseq then 0
    else if aseq = pseq then max 0 (poff - aoff)
    else max 0 poff
  in
  let received =
    let rseq = Atomic.get r.recv_seq and roff = Atomic.get r.recv_off in
    if rseq < 0 || aseq > rseq then 0
    else if aseq = rseq then max 0 (roff - aoff)
    else max 1 roff
  in
  max known received

let replica_stats r =
  let b v = if v then "true" else "false" in
  let lc = Atomic.get r.last_contact in
  [
    ("replication_connected", b (Atomic.get r.connected));
    ("replication_synced_epoch", string_of_int (Atomic.get r.synced_epoch));
    ("replication_applied_seq", string_of_int (Atomic.get r.applied_seq));
    ("replication_applied_offset", string_of_int (Atomic.get r.applied_off));
    ("replication_primary_seq", string_of_int (Atomic.get r.primary_seq));
    ("replication_primary_offset", string_of_int (Atomic.get r.primary_off));
    ("replication_bytes_behind", string_of_int (bytes_behind r));
    ("replication_records_applied", string_of_int (Atomic.get r.records_applied));
    ("replication_snapshots_installed", string_of_int (Atomic.get r.snapshots_installed));
    ("replication_reconnects", string_of_int (Atomic.get r.reconnects));
    ( "replication_contact_age_s",
      if lc = 0.0 then "inf" else Printf.sprintf "%.3f" (now () -. lc) );
    ("replication_stale", b (stale r));
  ]
