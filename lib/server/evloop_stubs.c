/* Readiness and gathered-write primitives for the dkserve event loop.
 *
 * poll(2) is the portable backend; epoll(7) is used on Linux when
 * available (dk_epoll_create reports -1 elsewhere and the OCaml side
 * falls back).  Blocking waits release the OCaml runtime lock, so the
 * interest set is copied into C arrays before the wait and results
 * are copied back after — OCaml arrays may move during a GC that
 * other domains trigger while this one is parked in the kernel.
 *
 * Error conventions (kept as plain return codes so the OCaml side can
 * translate without depending on unixsupport internals):
 *   waits:   >= 0 ready count, -1 EINTR (treat as zero ready)
 *   writev:  >= 0 bytes written, -1 EAGAIN/EWOULDBLOCK, -2 EINTR,
 *            -3 any other error (connection is considered dead)
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <sys/uio.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#define DK_RD 1
#define DK_WR 2
#define DK_ERR 4

#define DK_STACK_FDS 256

CAMLprim value dk_poll(value v_fds, value v_events, value v_revents, value v_nfds,
                       value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_nfds, v_timeout_ms);
  int nfds = Int_val(v_nfds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd stack_pfds[DK_STACK_FDS];
  struct pollfd *pfds = stack_pfds;
  int i, rc;

  if (nfds > DK_STACK_FDS) {
    pfds = malloc(sizeof(struct pollfd) * nfds);
    if (pfds == NULL) caml_failwith("Evloop.poll: out of memory");
  }
  for (i = 0; i < nfds; i++) {
    int interest = Int_val(Field(v_events, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = 0;
    if (interest & DK_RD) pfds[i].events |= POLLIN;
    if (interest & DK_WR) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  rc = poll(pfds, nfds, timeout);
  caml_acquire_runtime_system();

  if (rc < 0) {
    int e = errno;
    if (pfds != stack_pfds) free(pfds);
    if (e == EINTR) CAMLreturn(Val_int(-1));
    caml_failwith("Evloop.poll failed");
  }
  for (i = 0; i < nfds; i++) {
    int out = 0;
    if (pfds[i].revents & (POLLIN | POLLHUP)) out |= DK_RD;
    if (pfds[i].revents & POLLOUT) out |= DK_WR;
    if (pfds[i].revents & (POLLERR | POLLNVAL)) out |= DK_ERR;
    Store_field(v_revents, i, Val_int(out));
  }
  if (pfds != stack_pfds) free(pfds);
  CAMLreturn(Val_int(rc));
}

CAMLprim value dk_epoll_create(value v_unit)
{
#ifdef __linux__
  int fd = epoll_create1(0);
  (void)v_unit;
  return Val_int(fd >= 0 ? fd : -1);
#else
  (void)v_unit;
  return Val_int(-1);
#endif
}

CAMLprim value dk_epoll_ctl(value v_epfd, value v_op, value v_fd, value v_interest)
{
#ifdef __linux__
  struct epoll_event ev;
  int op;
  int interest = Int_val(v_interest);
  memset(&ev, 0, sizeof ev);
  ev.events = 0;
  if (interest & DK_RD) ev.events |= EPOLLIN;
  if (interest & DK_WR) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(v_fd);
  switch (Int_val(v_op)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(v_epfd), op, Int_val(v_fd), &ev) < 0) return Val_int(-1);
  return Val_int(0);
#else
  (void)v_epfd; (void)v_op; (void)v_fd; (void)v_interest;
  return Val_int(-1);
#endif
}

CAMLprim value dk_epoll_wait(value v_epfd, value v_out_fds, value v_out_events,
                             value v_timeout_ms)
{
#ifdef __linux__
  CAMLparam4(v_epfd, v_out_fds, v_out_events, v_timeout_ms);
  int cap = Wosize_val(v_out_fds);
  struct epoll_event stack_evs[DK_STACK_FDS];
  struct epoll_event *evs = stack_evs;
  int i, rc;

  if (cap > DK_STACK_FDS) {
    evs = malloc(sizeof(struct epoll_event) * cap);
    if (evs == NULL) caml_failwith("Evloop.epoll_wait: out of memory");
  }

  caml_release_runtime_system();
  rc = epoll_wait(Int_val(v_epfd), evs, cap, Int_val(v_timeout_ms));
  caml_acquire_runtime_system();

  if (rc < 0) {
    int e = errno;
    if (evs != stack_evs) free(evs);
    if (e == EINTR) CAMLreturn(Val_int(-1));
    caml_failwith("Evloop.epoll_wait failed");
  }
  for (i = 0; i < rc; i++) {
    int out = 0;
    if (evs[i].events & (EPOLLIN | EPOLLHUP)) out |= DK_RD;
    if (evs[i].events & EPOLLOUT) out |= DK_WR;
    if (evs[i].events & EPOLLERR) out |= DK_ERR;
    Store_field(v_out_fds, i, Val_int(evs[i].data.fd));
    Store_field(v_out_events, i, Val_int(out));
  }
  if (evs != stack_evs) free(evs);
  CAMLreturn(Val_int(rc));
#else
  (void)v_epfd; (void)v_out_fds; (void)v_out_events; (void)v_timeout_ms;
  return Val_int(0);
#endif
}

/* Gathered write of (head bytes slice, tail string slice) to a
 * non-blocking fd.  The runtime lock is held — the fd never blocks —
 * so the OCaml heap pointers stay valid across the call. */
CAMLprim value dk_writev(value v_fd, value v_head, value v_hoff, value v_hlen,
                         value v_tail, value v_toff, value v_tlen)
{
  struct iovec iov[2];
  int n = 0;
  ssize_t rc;
  if (Int_val(v_hlen) > 0) {
    iov[n].iov_base = Bytes_val(v_head) + Int_val(v_hoff);
    iov[n].iov_len = Int_val(v_hlen);
    n++;
  }
  if (Int_val(v_tlen) > 0) {
    iov[n].iov_base = (char *)String_val(v_tail) + Int_val(v_toff);
    iov[n].iov_len = Int_val(v_tlen);
    n++;
  }
  if (n == 0) return Val_int(0);
  rc = writev(Int_val(v_fd), iov, n);
  if (rc >= 0) return Val_int((int)rc);
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Val_int(-1);
  if (errno == EINTR) return Val_int(-2);
  return Val_int(-3);
}

CAMLprim value dk_writev_bytecode(value *argv, int argn)
{
  (void)argn;
  return dk_writev(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5], argv[6]);
}
