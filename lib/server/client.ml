module Prng = Dkindex_datagen.Prng

type error = Retryable of string | Fatal of string

exception Error of error

let error_to_string = function
  | Retryable msg -> "retryable: " ^ msg
  | Fatal msg -> "fatal: " ^ msg

type t = {
  host : string;
  port : int;
  attempts : int;
  retries : int;
  timeout_s : float;
  backoff_base_s : float;
  backoff_max_s : float;
  rng : Prng.t;
  buf : Buffer.t;
  mutable fd : Unix.file_descr option;
  mutable next_id : int;
  mutable n_reconnects : int;
}

(* Internal failure classification; converted to [Error] at the
   [call] boundary. *)
exception Conn_failure of string
exception Proto_failure of string

let dial t =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string t.host, t.port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  fd

(* Exponential backoff with full jitter: sleep uniform in
   (0, min(max, base * 2^(attempt-1))]. *)
let backoff_sleep t attempt =
  let cap = min t.backoff_max_s (t.backoff_base_s *. (2.0 ** float_of_int (attempt - 1))) in
  Unix.sleepf (cap *. (0.1 +. Prng.float t.rng 0.9))

let drop t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* Connect if not connected, redialing with backoff up to
   [t.attempts] times. *)
let ensure t =
  match t.fd with
  | Some fd -> fd
  | None ->
    let rec go attempt =
      match dial t with
      | fd ->
        t.fd <- Some fd;
        fd
      | exception Unix.Unix_error (e, _, _) ->
        if attempt >= t.attempts then
          raise (Conn_failure (Printf.sprintf "connect %s:%d: %s" t.host t.port (Unix.error_message e)))
        else begin
          backoff_sleep t attempt;
          go (attempt + 1)
        end
    in
    let fd = go 1 in
    t.n_reconnects <- t.n_reconnects + 1;
    fd

let connect ?(host = "127.0.0.1") ?(attempts = 1) ?(retries = 0) ?(timeout_s = 0.0)
    ?(backoff_base_s = 0.05) ?(backoff_max_s = 2.0) ?(seed = 0) ~port () =
  let t =
    {
      host;
      port;
      attempts = max 1 attempts;
      retries = max 0 retries;
      timeout_s;
      backoff_base_s;
      backoff_max_s;
      rng = Prng.create ~seed;
      buf = Buffer.create 256;
      fd = None;
      next_id = 1;
      n_reconnects = 0;
    }
  in
  (try ignore (ensure t) with Conn_failure msg -> raise (Error (Retryable msg)));
  t.n_reconnects <- 0;
  t

let close = drop
let reconnects t = t.n_reconnects

let write_all fd b off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    match Unix.write fd b !off !len with
    | n ->
      off := !off + n;
      len := !len - n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let send_on t fd req =
  let id = t.next_id in
  t.next_id <- id + 1;
  Buffer.clear t.buf;
  Wire.encode_request t.buf ~id req;
  let b = Buffer.to_bytes t.buf in
  write_all fd b 0 (Bytes.length b);
  id

(* A read function with [Unix.read] semantics that enforces the
   per-request deadline via select. *)
let timed_read fd deadline b off len =
  let rec wait_readable dl =
    let rem = dl -. Unix.gettimeofday () in
    if rem <= 0.0 then raise (Conn_failure "response timed out");
    match Unix.select [ fd ] [] [] rem with
    | [], _, _ -> raise (Conn_failure "response timed out")
    | _ -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> wait_readable dl
  in
  let rec go () =
    Option.iter wait_readable deadline;
    match Unix.read fd b off len with
    | n -> n
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  go ()

let deadline_of t = if t.timeout_s > 0.0 then Some (Unix.gettimeofday () +. t.timeout_s) else None

let recv_on fd deadline =
  match Wire.read_frame ~read:(timed_read fd deadline) () with
  | `Eof -> raise (Conn_failure "connection closed")
  | `Oversized n -> raise (Proto_failure (Printf.sprintf "oversized response frame (%d bytes)" n))
  | exception Failure msg -> raise (Conn_failure msg) (* stream ended mid-frame *)
  | exception Unix.Unix_error (e, _, _) -> raise (Conn_failure (Unix.error_message e))
  | `Frame payload -> (
    match Wire.decode_response payload with
    | Ok d -> d
    | Error msg -> raise (Proto_failure ("bad response: " ^ msg)))

let idempotent = function
  | Wire.Ping | Wire.Query _ | Wire.Query_path _ | Wire.Batch_query _ | Wire.Stats -> true
  | _ -> false

let call_once t req =
  let fd = ensure t in
  let id =
    try send_on t fd req with Unix.Unix_error (e, _, _) -> raise (Conn_failure (Unix.error_message e))
  in
  let deadline = deadline_of t in
  let rec wait () =
    let d = recv_on fd deadline in
    if d.Wire.id = id then d.Wire.msg else wait ()
  in
  wait ()

let call t req =
  let budget = if idempotent req then t.retries + 1 else 1 in
  let rec go attempt =
    match call_once t req with
    | resp -> resp
    | exception Conn_failure msg ->
      drop t;
      if attempt < budget then begin
        backoff_sleep t attempt;
        go (attempt + 1)
      end
      else raise (Error (Retryable msg))
    | exception Proto_failure msg ->
      drop t;
      raise (Error (Fatal msg))
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Pipelining primitives: no healing, errors surface raw. *)

let current_fd t =
  match t.fd with
  | Some fd -> fd
  | None -> ( try ensure t with Conn_failure msg -> failwith ("Client: " ^ msg))

let send t req = send_on t (current_fd t) req

let send_raw_frame t payload =
  let b = Bytes.of_string (Wire.frame_of_payload payload) in
  write_all (current_fd t) b 0 (Bytes.length b)

let recv t =
  match recv_on (current_fd t) (deadline_of t) with
  | d -> d
  | exception Conn_failure msg -> failwith ("Client.recv: " ^ msg)
  | exception Proto_failure msg -> failwith ("Client.recv: " ^ msg)
